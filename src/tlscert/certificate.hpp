// X.509-certificate abstraction — just enough identity surface for the
// paper's Censys fallback (Sec. 4.2.2): subject common name, subject
// alternative names, and a fingerprint. The matching rule implemented in
// matches_domain() is the paper's: the certificate is associated with a
// domain if its Name matches the domain exactly or via a single-label
// wildcard at the SLD or higher, and there is no unrelated SAN.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/fqdn.hpp"
#include "util/hash.hpp"

namespace haystack::tlscert {

/// Minimal certificate identity.
struct Certificate {
  dns::Fqdn subject_cn;             ///< may be a "*.example.com" pattern
  std::vector<dns::Fqdn> sans;      ///< additional names (patterns allowed)
  std::string issuer;

  /// Stable fingerprint over the identity fields (stand-in for the SHA-256
  /// certificate fingerprint Censys indexes on).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    std::uint64_t h = util::fnv1a(subject_cn.str());
    for (const auto& san : sans) h = util::hash_combine(h, san.hash());
    return util::hash_combine(h, util::fnv1a(issuer));
  }
};

/// True when `name` (a cert CN/SAN, possibly wildcard) covers `domain` and
/// the match is anchored at `domain`'s SLD or a deeper label — the paper's
/// "match at least the SLD or higher" requirement.
[[nodiscard]] bool name_covers_at_sld(const dns::Fqdn& name,
                                      const dns::Fqdn& domain);

/// Paper's association rule: every name on the certificate must cover the
/// domain (no unrelated SAN), and at least one name must match at SLD or
/// higher.
[[nodiscard]] bool matches_domain(const Certificate& cert,
                                  const dns::Fqdn& domain);

}  // namespace haystack::tlscert
