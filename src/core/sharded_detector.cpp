#include "core/sharded_detector.hpp"

#include <algorithm>

namespace haystack::core {

ShardedDetector::ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                                 const DetectorConfig& config,
                                 unsigned shards,
                                 std::size_t queue_capacity) {
  const unsigned n = std::max(1u, shards);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Detector>(hitlist, rules, config));
  }
  // Persistent workers: one long-lived thread per shard, consuming that
  // shard's chunk queue. The handler runs on worker s and touches only
  // shards_[s], so the hot path stays lock-free on evidence state.
  pool_ = std::make_unique<pipeline::ShardPool<Chunk>>(
      pipeline::ShardPoolConfig{.shards = n,
                                .queue_capacity = queue_capacity,
                                .max_wave = 64},
      [this](unsigned s, std::vector<Chunk>& wave) {
        Detector& det = *shards_[s];
        for (const Chunk& chunk : wave) {
          for (const Observation& obs : chunk) {
            det.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                        obs.hour);
          }
        }
      });
}

ShardedDetector::~ShardedDetector() { pool_->stop(); }

void ShardedDetector::observe(const Observation& obs) {
  pool_->submit(static_cast<unsigned>(shard_of(obs.subscriber)),
                Chunk{obs});
}

void ShardedDetector::enqueue_batch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  if (n == 1) {
    pool_->submit(0, Chunk{batch.begin(), batch.end()});
    return;
  }
  // Partition preserving per-subscriber order; one chunk per shard keeps
  // queue traffic proportional to shards, not observations.
  std::vector<Chunk> parts(n);
  for (auto& p : parts) p.reserve(batch.size() / n + 1);
  for (const auto& obs : batch) {
    parts[shard_of(obs.subscriber)].push_back(obs);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!parts[s].empty()) {
      pool_->submit(static_cast<unsigned>(s), std::move(parts[s]));
    }
  }
}

void ShardedDetector::process_batch(std::span<const Observation> batch) {
  enqueue_batch(batch);
  pool_->drain();
}

void ShardedDetector::drain() const { pool_->drain(); }

bool ShardedDetector::detected(SubscriberKey subscriber,
                               ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detected(subscriber, service);
}

std::optional<util::HourBin> ShardedDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detection_hour(subscriber, service);
}

Verdict ShardedDetector::verdict(SubscriberKey subscriber,
                                 ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->verdict(subscriber, service);
}

void ShardedDetector::set_observed_loss(double fraction) noexcept {
  drain();
  for (const auto& shard : shards_) shard->set_observed_loss(fraction);
}

void ShardedDetector::restore_evidence(SubscriberKey subscriber,
                                       ServiceId service,
                                       const Evidence& evidence) {
  drain();
  shards_[shard_of(subscriber)]->restore_evidence(subscriber, service,
                                                  evidence);
}

void ShardedDetector::restore_stats(const Detector::Stats& stats) {
  drain();
  shards_[0]->restore_stats(stats);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->restore_stats({});
  }
}

void ShardedDetector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  drain();
  for (const auto& shard : shards_) shard->for_each_evidence(fn);
}

void ShardedDetector::clear() {
  drain();
  for (const auto& shard : shards_) shard->clear();
}

Detector::Stats ShardedDetector::stats() const {
  drain();
  Detector::Stats total;
  for (const auto& shard : shards_) {
    total.flows += shard->stats().flows;
    total.matched += shard->stats().matched;
  }
  return total;
}

telemetry::StageStats ShardedDetector::shard_queue_stats(
    unsigned shard) const {
  return pool_->stats(shard);
}

}  // namespace haystack::core
