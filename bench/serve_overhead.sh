#!/usr/bin/env bash
# Query-serving overhead gate (ISSUE 8).
#
# Builds bench/serve_bench in Release, runs the query-latency-under-ingest
# sweep (0 / 100 / 1000 queries per second against an 8-shard detector at
# full ingest rate), and gates the acceptance budget: serving 100 q/s must
# cost no more than 3% of the ingest-only throughput. BENCH_serve.json
# lands in the repo root with the full sweep (latency quantiles included).
#
#   bench/serve_overhead.sh                 # full run, writes BENCH_serve.json
#   BENCH_REPS=5 bench/serve_overhead.sh    # more repetitions
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="$(nproc)"

cmake -B build-bench-serve -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench-serve -j "${jobs}" --target serve_bench >/dev/null
./build-bench-serve/bench/serve_bench BENCH_serve.json

python3 - <<'PY'
import json

with open("BENCH_serve.json") as f:
    doc = json.load(f)

by_rate = {r["queries_per_sec"]: r for r in doc["rates"]}
gate = by_rate[100]
delta = gate["ingest_delta_vs_idle"]
print(f"ingest delta at 100 q/s: {delta * 100:+.2f}% "
      f"({by_rate[0]['ingest_obs_per_sec']} -> "
      f"{gate['ingest_obs_per_sec']} obs/s)")
if delta > 0.03:
    raise SystemExit(
        f"FAIL: serving 100 q/s costs {delta * 100:.2f}% ingest "
        "throughput, over the 3% budget")
print("query-serving overhead within the 3% budget at 100 q/s")
PY
