#include "telemetry/vantage.hpp"

#include <cassert>

#include "util/hash.hpp"

namespace haystack::telemetry {

namespace {

/// Round-trips `records` through exporter+collector and overwrites them
/// with the decoded result. The count must survive exactly; a codec bug
/// here is a hard failure, not silent data loss.
template <typename Exporter, typename Collector>
std::vector<flow::FlowRecord> roundtrip(Exporter& exporter,
                                        Collector& collector,
                                        const std::vector<flow::FlowRecord>&
                                            records,
                                        std::uint32_t time_token) {
  std::vector<flow::FlowRecord> decoded;
  decoded.reserve(records.size());
  for (const auto& packet : exporter.export_flows(records, time_token)) {
    const bool ok = collector.ingest(packet, decoded);
    assert(ok);
    (void)ok;
  }
  assert(decoded.size() == records.size());
  return decoded;
}

}  // namespace

std::vector<simnet::LabeledFlow> IspVantage::observe(
    const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour) {
  std::vector<simnet::LabeledFlow> survivors;
  std::vector<flow::FlowRecord> records;
  for (const auto& lf : flows) {
    util::Pcg32 rng = util::derive_rng(
        config_.seed, lf.flow.key.hash() ^ lf.flow.start_ms, hour);
    if (auto thin = flow::thin_flow(lf.flow, config_.sampling, rng)) {
      simnet::LabeledFlow out = lf;
      out.flow = *thin;
      survivors.push_back(std::move(out));
      records.push_back(*thin);
    }
  }
  if (config_.wire_roundtrip && !records.empty()) {
    const auto decoded =
        roundtrip(exporter_, collector_, records, 1574000000U + hour * 3600U);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      survivors[i].flow = decoded[i];
    }
  }
  return survivors;
}

std::vector<simnet::LabeledFlow> IxpVantage::observe(
    const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour) {
  std::vector<simnet::LabeledFlow> survivors;
  std::vector<flow::FlowRecord> records;
  for (const auto& lf : flows) {
    util::Pcg32 rng = util::derive_rng(
        config_.seed, lf.flow.key.hash() ^ lf.flow.start_ms, hour);
    auto thin = flow::thin_flow(lf.flow, config_.sampling, rng);
    if (!thin) continue;
    if (config_.require_established_tcp && !thin->shows_established_tcp()) {
      continue;
    }
    simnet::LabeledFlow out = lf;
    out.flow = *thin;
    survivors.push_back(std::move(out));
    records.push_back(*thin);
  }
  if (config_.wire_roundtrip && !records.empty()) {
    const auto decoded =
        roundtrip(exporter_, collector_, records, 1574000000U + hour * 3600U);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      survivors[i].flow = decoded[i];
    }
  }
  return survivors;
}

}  // namespace haystack::telemetry
