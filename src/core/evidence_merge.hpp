// Commutative/idempotent evidence-merge algebra for the multi-vantage
// tier (src/vantage/, ISSUE 7).
//
// Each vantage collector observes a disjoint slice of the subscriber
// traffic and accumulates ordinary Detector evidence. To fuse slices that
// arrive over an unreliable delta channel, per-collector rows are treated
// as elements of a join-semilattice and combined with merge_evidence():
//
//   mask        -> bitwise OR   (set union of seen domain positions)
//   packets     -> max          (values are per-collector CUMULATIVE
//                                counters, so the larger value subsumes
//                                the smaller; never sum two snapshots of
//                                the same counter)
//   first_seen  -> min          (earliest sighting wins)
//   satisfied_hour -> min       (kNever is the largest u32, so "never"
//                                is the identity)
//   distinct    -> recomputed as popcount(mask); apply_match() maintains
//                  the invariant distinct == popcount(mask) exactly
//                  (bits are only set for positions < 128 and distinct
//                  only increments on a fresh bit)
//
// Join properties — merge(a,b) == merge(b,a), merge(a,a) == a,
// merge(merge(a,b),c) == merge(a,merge(b,c)) — are what make dropped,
// duplicated, and reordered deltas harmless: replaying any subset of
// deltas in any order converges to the same row. The property suite in
// tests/vantage_test.cpp checks these over randomized masks/thresholds.
//
// evidence_satisfies() reproduces the satisfaction predicate of
// Detector::apply_match() bit-for-bit so the aggregator can stamp
// satisfied_hour itself when it seals an epoch (the collector never ships
// satisfied_hour: whether a rule fired depends on the *global* mask, which
// no single vantage sees).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "core/detector.hpp"
#include "core/rules.hpp"

namespace haystack::core {

/// Joins `from` into `into` (see file comment for the per-field lattice).
/// `distinct` needs no recompute since the packed Evidence derives it from
/// the mask (DESIGN.md §12).
inline void merge_evidence(Evidence& into, const Evidence& from) noexcept {
  into.or_mask(0, from.mask(0));
  into.or_mask(1, from.mask(1));
  into.set_packets(std::max(into.packets(), from.packets()));
  into.set_first_seen(std::min(into.first_seen(), from.first_seen()));
  into.set_satisfied_hour(
      std::min(into.satisfied_hour(), from.satisfied_hour()));
}

/// The satisfaction predicate of one rule under a fixed threshold,
/// precompiled exactly like Detector's internal RuleFast (required clamped
/// to u16; critical mask nonzero only when the critical domain alone is
/// sufficient and its position fits the 128-bit mask).
struct SatisfyRule {
  std::array<std::uint64_t, 2> critical_mask{0, 0};
  std::uint16_t required = 1;
};

[[nodiscard]] inline SatisfyRule compile_satisfy_rule(
    const DetectionRule& rule, double threshold) noexcept {
  SatisfyRule fast;
  fast.required = static_cast<std::uint16_t>(
      std::min(rule.required_domains(threshold), 0xffffU));
  if (rule.critical_sufficient && rule.critical_monitored_index &&
      *rule.critical_monitored_index < 128) {
    const std::uint16_t idx = *rule.critical_monitored_index;
    fast.critical_mask[idx >> 6] |= std::uint64_t{1} << (idx & 63U);
  }
  return fast;
}

/// Mirrors the `critical_ok || distinct >= required` test in
/// Detector::apply_match().
[[nodiscard]] inline bool evidence_satisfies(
    const Evidence& ev, const SatisfyRule& rule) noexcept {
  const bool critical_ok = ((ev.mask(0) & rule.critical_mask[0]) |
                            (ev.mask(1) & rule.critical_mask[1])) != 0;
  return critical_ok || ev.distinct() >= rule.required;
}

}  // namespace haystack::core
