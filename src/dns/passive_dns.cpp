#include "dns/passive_dns.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace haystack::dns {

namespace {
constexpr std::size_t kMaxChainDepth = 16;
}

void PassiveDnsDb::add(const PdnsRecord& record) {
  if (record.type == RrType::kCname) {
    add_cname(record.name, record.target, record.first_day, record.last_day);
  } else {
    add_a(record.name, record.ip, record.first_day, record.last_day);
  }
}

void PassiveDnsDb::add_a(const Fqdn& name, const net::IpAddress& ip,
                         util::DayBin first, util::DayBin last) {
  auto& entries = addr_[name];
  for (auto& e : entries) {
    if (e.ip == ip && first <= e.last + 1 && last + 1 >= e.first) {
      e.first = std::min(e.first, first);
      e.last = std::max(e.last, last);
      return;
    }
  }
  entries.push_back({ip, first, last});
  index_reverse(ip, name);
  ++records_;
}

void PassiveDnsDb::add_cname(const Fqdn& name, const Fqdn& target,
                             util::DayBin first, util::DayBin last) {
  auto& entries = cname_[name];
  for (auto& e : entries) {
    if (e.target == target && first <= e.last + 1 && last + 1 >= e.first) {
      e.first = std::min(e.first, first);
      e.last = std::max(e.last, last);
      return;
    }
  }
  entries.push_back({target, first, last});
  auto& rev = cname_reverse_[target];
  if (std::find(rev.begin(), rev.end(), name) == rev.end()) {
    rev.push_back(name);
  }
  ++records_;
}

void PassiveDnsDb::index_reverse(const net::IpAddress& ip, const Fqdn& name) {
  auto& names = reverse_[ip];
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    names.push_back(name);
  }
}

bool PassiveDnsDb::has_records(const Fqdn& name, DayWindow window) const {
  if (const auto it = addr_.find(name); it != addr_.end()) {
    for (const auto& e : it->second) {
      if (window.overlaps(e.first, e.last)) return true;
    }
  }
  if (const auto it = cname_.find(name); it != cname_.end()) {
    for (const auto& e : it->second) {
      if (window.overlaps(e.first, e.last)) return true;
    }
  }
  return false;
}

Resolution PassiveDnsDb::resolve(const Fqdn& name, DayWindow window) const {
  Resolution out;
  std::unordered_set<Fqdn> visited;
  std::unordered_set<net::IpAddress> ips;
  std::deque<std::pair<Fqdn, std::size_t>> queue;
  queue.emplace_back(name, 0);

  while (!queue.empty()) {
    const auto [current, depth] = queue.front();
    queue.pop_front();
    if (depth > kMaxChainDepth || !visited.insert(current).second) continue;
    out.chain.push_back(current);

    if (const auto it = addr_.find(current); it != addr_.end()) {
      for (const auto& e : it->second) {
        if (window.overlaps(e.first, e.last) && ips.insert(e.ip).second) {
          out.ips.push_back(e.ip);
        }
      }
    }
    if (const auto it = cname_.find(current); it != cname_.end()) {
      for (const auto& e : it->second) {
        if (window.overlaps(e.first, e.last)) {
          queue.emplace_back(e.target, depth + 1);
        }
      }
    }
  }
  std::sort(out.ips.begin(), out.ips.end());
  std::sort(out.chain.begin(), out.chain.end());
  return out;
}

std::vector<Fqdn> PassiveDnsDb::domains_on(const net::IpAddress& ip,
                                           DayWindow window) const {
  std::unordered_set<Fqdn> names;
  const auto rit = reverse_.find(ip);
  if (rit == reverse_.end()) return {};

  // Direct A/AAAA owners active in the window.
  std::deque<Fqdn> queue;
  for (const auto& name : rit->second) {
    const auto ait = addr_.find(name);
    if (ait == addr_.end()) continue;
    for (const auto& e : ait->second) {
      if (e.ip == ip && window.overlaps(e.first, e.last)) {
        if (names.insert(name).second) queue.push_back(name);
        break;
      }
    }
  }

  // Walk CNAMEs backwards: anything aliasing a name on this IP is also "on"
  // the IP for the exclusivity analysis.
  std::size_t steps = 0;
  while (!queue.empty() && steps < 4096) {
    ++steps;
    const Fqdn current = queue.front();
    queue.pop_front();
    const auto cit = cname_reverse_.find(current);
    if (cit == cname_reverse_.end()) continue;
    for (const auto& alias : cit->second) {
      const auto eit = cname_.find(alias);
      if (eit == cname_.end()) continue;
      for (const auto& e : eit->second) {
        if (e.target == current && window.overlaps(e.first, e.last)) {
          if (names.insert(alias).second) queue.push_back(alias);
          break;
        }
      }
    }
  }

  std::vector<Fqdn> out(names.begin(), names.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PassiveDnsDb::record_count() const noexcept { return records_; }

void PassiveDnsDb::for_each_record(
    const std::function<void(const PdnsRecord&)>& fn) const {
  for (const auto& [name, entries] : addr_) {
    for (const auto& e : entries) {
      PdnsRecord record;
      record.name = name;
      record.type = e.ip.is_v4() ? RrType::kA : RrType::kAaaa;
      record.ip = e.ip;
      record.first_day = e.first;
      record.last_day = e.last;
      fn(record);
    }
  }
  for (const auto& [name, entries] : cname_) {
    for (const auto& e : entries) {
      PdnsRecord record;
      record.name = name;
      record.type = RrType::kCname;
      record.target = e.target;
      record.first_day = e.first;
      record.last_day = e.last;
      fn(record);
    }
  }
}

}  // namespace haystack::dns
