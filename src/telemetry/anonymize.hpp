// Subscriber anonymization and the server-IP heuristic (paper Sec. 2.1,
// "Ethical considerations ISP/IXP").
//
// User addresses are hashed with a keyed hash before any analysis sees
// them; server addresses are kept in the clear because the hitlist must
// match them. An endpoint counts as a server when it talks on a well-known
// service port or originates from a cloud/CDN AS.
#pragma once

#include <cstdint>

#include "flow/record.hpp"
#include "net/asn.hpp"
#include "net/ports.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::telemetry {

/// Anonymized subscriber identifier.
using SubscriberId = std::uint64_t;

/// Keyed hash of a user address. The key never leaves the collector.
[[nodiscard]] inline SubscriberId anonymize(const net::IpAddress& user_ip,
                                            std::uint64_t key) noexcept {
  return util::hash_combine(user_ip.hash(), util::splitmix64(key));
}

/// The paper's server-side heuristic: well-known port, or cloud/CDN origin.
[[nodiscard]] inline bool is_server_endpoint(const net::IpAddress& ip,
                                             std::uint16_t port,
                                             const net::AsnRegistry& asns) {
  return net::is_well_known_server_port(port) || asns.is_cloud_or_cdn(ip);
}

/// Splits one flow into (subscriber side, server side). Flows in this
/// repository are generated subscriber->server, but a real collector sees
/// both directions; this helper normalizes direction using the heuristic.
/// Returns false when neither endpoint looks like a server (the flow is
/// dropped from analysis, as the paper's pipeline drops it).
struct NormalizedFlow {
  net::IpAddress subscriber;
  net::IpAddress server;
  std::uint16_t server_port = 0;
};

[[nodiscard]] inline bool normalize_direction(const flow::FlowRecord& rec,
                                              const net::AsnRegistry& asns,
                                              NormalizedFlow& out) {
  const bool dst_server =
      is_server_endpoint(rec.key.dst, rec.key.dst_port, asns);
  const bool src_server =
      is_server_endpoint(rec.key.src, rec.key.src_port, asns);
  if (dst_server && !src_server) {
    out = {rec.key.src, rec.key.dst, rec.key.dst_port};
    return true;
  }
  if (src_server && !dst_server) {
    out = {rec.key.dst, rec.key.src, rec.key.src_port};
    return true;
  }
  if (dst_server && src_server) {
    // Server-to-server (or ambiguous): keep canonical orientation.
    out = {rec.key.src, rec.key.dst, rec.key.dst_port};
    return true;
  }
  return false;
}

}  // namespace haystack::telemetry
