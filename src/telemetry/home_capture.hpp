// Packet-level Home-VP capture path.
//
// The paper's home vantage point records *packets* (full captures at the
// VPN endpoint), which a metering process then turns into flows. The
// simulator generates flow-level ground truth directly for efficiency;
// this pipeline closes the loop for validation: it expands generated flows
// back into timestamped packet events, runs them through the real
// flow::FlowCache metering process (active/idle timeouts and all), and
// returns the re-aggregated flow records. Conservation tests assert that
// nothing is lost or invented on the packets→flows path.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow_cache.hpp"
#include "simnet/ground_truth.hpp"
#include "util/rng.hpp"

namespace haystack::telemetry {

/// Capture/metering configuration.
struct HomeCaptureConfig {
  std::uint64_t seed = 31337;
  flow::FlowCacheConfig cache{};
  /// Upper bound on packets materialized per input flow; flows beyond the
  /// bound are carried as one synthetic jumbo packet per remainder chunk
  /// so totals stay exact while memory stays bounded.
  std::uint64_t max_packets_per_flow = 4096;
};

/// One hour's metering result.
struct MeteringResult {
  std::vector<flow::FlowRecord> flows;
  std::uint64_t packets_in = 0;   ///< wire packets represented
  std::uint64_t events_in = 0;    ///< packet events materialized (<= packets)
  std::uint64_t bytes_in = 0;
};

/// Expands labeled flows into packet events and meters them.
class HomePacketPipeline {
 public:
  explicit HomePacketPipeline(const HomeCaptureConfig& config)
      : config_{config}, cache_{config.cache} {}

  /// Feeds one hour of traffic through the metering process. Returns the
  /// flow records expired within this hour; call drain() after the last
  /// hour for the remainder.
  [[nodiscard]] MeteringResult meter_hour(
      const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour);

  /// Flushes every remaining cache entry.
  [[nodiscard]] std::vector<flow::FlowRecord> drain();

  [[nodiscard]] std::size_t active_flows() const noexcept {
    return cache_.active_flows();
  }

 private:
  HomeCaptureConfig config_;
  flow::FlowCache cache_;
};

}  // namespace haystack::telemetry
