// Tests for mitigation planning and incident forensics (Sec. 7.2):
// block/redirect plans compiled from the hitlist, and the common-device
// ranking over a simulated botnet.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/detector.hpp"
#include "core/forensics.hpp"
#include "core/mitigation.hpp"
#include "simnet/attack.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace haystack {
namespace {

class MitigationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    rules_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete rules_;
    delete backend_;
    delete catalog_;
  }
  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static core::RuleSet* rules_;
};

simnet::Catalog* MitigationTest::catalog_ = nullptr;
simnet::Backend* MitigationTest::backend_ = nullptr;
core::RuleSet* MitigationTest::rules_ = nullptr;

TEST_F(MitigationTest, BlockPlanCoversServiceInfrastructure) {
  core::MitigationPlanner planner{*rules_,
                                  *net::IpAddress::parse("192.0.2.254")};
  ASSERT_TRUE(planner.request("Yi Camera", core::MitigationAction::kBlock));
  const auto plan = planner.compile(0);
  ASSERT_FALSE(plan.entries().empty());

  // Every day-0 service IP of Yi Camera must be covered.
  const auto* yi = rules_->rule_by_name("Yi Camera");
  std::size_t covered = 0;
  rules_->hitlist.for_each([&](util::DayBin day, const net::IpAddress& ip,
                               std::uint16_t port, const core::Hit& hit) {
    if (day != 0 || hit.service != yi->service) return;
    const auto* entry = plan.match(ip, port);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->action, core::MitigationAction::kBlock);
    ++covered;
  });
  EXPECT_GT(covered, 0u);
  EXPECT_EQ(plan.entries().size(), covered);
}

TEST_F(MitigationTest, RedirectCarriesSinkhole) {
  const auto sinkhole = *net::IpAddress::parse("192.0.2.254");
  core::MitigationPlanner planner{*rules_, sinkhole};
  ASSERT_TRUE(
      planner.request("Ring Doorbell", core::MitigationAction::kRedirect));
  const auto plan = planner.compile(2);
  ASSERT_FALSE(plan.entries().empty());
  for (const auto& entry : plan.entries()) {
    EXPECT_EQ(entry.action, core::MitigationAction::kRedirect);
    EXPECT_EQ(entry.redirect_to, sinkhole);
  }
}

TEST_F(MitigationTest, UnrelatedTrafficUnmatched) {
  core::MitigationPlanner planner{*rules_,
                                  *net::IpAddress::parse("192.0.2.254")};
  planner.request("Yi Camera", core::MitigationAction::kBlock);
  const auto plan = planner.compile(0);
  EXPECT_EQ(plan.match(*net::IpAddress::parse("8.8.8.8"), 443), nullptr);
  // Another service's infrastructure is not touched.
  const auto* ring = rules_->rule_by_name("Ring Doorbell");
  rules_->hitlist.for_each([&](util::DayBin day, const net::IpAddress& ip,
                               std::uint16_t port, const core::Hit& hit) {
    if (day != 0 || hit.service != ring->service) return;
    EXPECT_EQ(plan.match(ip, port), nullptr);
  });
}

TEST_F(MitigationTest, UnknownServiceRequestRejected) {
  core::MitigationPlanner planner{*rules_,
                                  *net::IpAddress::parse("192.0.2.254")};
  EXPECT_FALSE(planner.request("No Such Device",
                               core::MitigationAction::kBlock));
}

TEST(ForensicsTest, BotnetSourceDeviceIdentified) {
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog, {.lines = 40'000}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          simnet::WildIspConfig{}};
  simnet::AttackConfig attack_config;
  attack_config.product_name = "Yi Cam";
  simnet::BotnetSim botnet{population, attack_config};
  ASSERT_GT(botnet.infected().size(), 10u);

  // The ISP's view: detection evidence over a day, plus the set of lines
  // sourcing suspicious (flood) traffic.
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  std::unordered_set<core::SubscriberKey> suspicious;
  for (util::HourBin h = 0; h < 24; ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& o) {
      detector.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                       o.flow.packets, h);
    });
    botnet.hour_attack_observations(h, [&](const simnet::AttackObs& o) {
      // A flood source is suspicious once its sampled volume stands out.
      if (o.flow.packets >= 10) suspicious.insert(o.line);
    });
  }
  ASSERT_GT(suspicious.size(), 10u);

  const auto ranking = core::rank_common_services(detector, suspicious);
  ASSERT_FALSE(ranking.empty());
  // The compromised product's unit tops the lift ranking.
  EXPECT_EQ(ranking.front().name, "Yi Camera");
  EXPECT_GT(ranking.front().lift, 5.0);
  EXPECT_GT(ranking.front().suspicious_share, 0.5);
}

}  // namespace
}  // namespace haystack
