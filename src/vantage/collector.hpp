// One vantage collector of the multi-vantage fleet (ISSUE 7).
//
// A Collector owns a full core::Detector fed only its slice of the
// subscriber traffic (the fleet routes by server address, mirroring
// BorderRouterFleet::router_of). At the end of every hour the fleet calls
// seal_epoch(): the collector encodes the rows it touched during that
// hour — at their CUMULATIVE values, see flow/delta_wire.hpp — into one
// delta datagram addressed to the aggregator, queues it unacked, and
// hands it to the (possibly impaired) delta channel.
//
// Reliability is collector-driven: the aggregator acks the last epoch it
// has MERGED (not merely received — staged-but-unmerged deltas die with
// an aggregator crash and must be re-sent), and the collector retransmits
// every unacked delta with bounded exponential backoff. Retransmissions
// reuse the original datagram bytes and sequence number, so the
// aggregator's SequenceTracker classifies them as replays and the
// idempotent merge absorbs them.
//
// Crash/restart: a restarting collector is a fresh object. The fleet
// installs the aggregator's per-collector snapshot (install_snapshot),
// which reconstructs the detector exactly as it stood at the last merged
// epoch M, then replays the spooled observation hours after M; because
// replay is deterministic, the re-sealed deltas carry the same cumulative
// row values as the lost originals and the merge converges without
// double-counting. `satisfied_hour` is deliberately not recovered — a
// collector never ships it, the aggregator owns it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.hpp"
#include "core/sharded_detector.hpp"
#include "flow/delta_wire.hpp"
#include "obs/observability.hpp"

namespace haystack::vantage {

struct CollectorConfig {
  std::uint32_t id = 0;
  core::DetectorConfig detector{};
  /// Ticks before the first retransmission of an unacked delta.
  std::uint32_t initial_backoff = 1;
  /// Backoff ceiling, in ticks (exponential doubling stops here).
  std::uint32_t max_backoff = 8;
};

class Collector {
 public:
  /// `hitlist`/`rules` must outlive the collector. A non-null `obs` gets
  /// per-collector registry series and resync flight events.
  Collector(const core::Hitlist& hitlist, const core::RuleSet& rules,
            const CollectorConfig& config, obs::Observability* obs = nullptr);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Feeds one observation of this collector's slice. Observations must
  /// arrive hour-ordered (the fleet drives whole hours at a time); the
  /// epoch protocol depends on it.
  void ingest(const core::Observation& obs);

  /// Seals hour `epoch`: encodes the rows touched since the previous seal
  /// into one delta datagram, queues it for retransmission until acked,
  /// and returns the bytes to transmit. An hour with no evidence yields
  /// an empty (zero-row) delta — the fleet still sends it, as both the
  /// epoch-barrier contribution and the collector's heartbeat.
  [[nodiscard]] std::vector<std::uint8_t> seal_epoch(util::HourBin epoch);

  /// Processes a cumulative ack: every unacked delta with epoch <= `epoch`
  /// is retired.
  void handle_ack(util::HourBin epoch);

  /// One retry tick: returns the datagrams whose backoff expired (their
  /// original bytes, verbatim) and doubles their backoff up to the cap.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> tick();

  /// Installs an aggregator snapshot (restart resync / late join): clears
  /// the detector and reconstructs evidence + throughput stats as of the
  /// snapshot's epoch. Returns false — leaving the collector empty — when
  /// the snapshot is not a kSnapshot, was built under a different
  /// threshold, or references a label the rule set cannot resolve.
  bool install_snapshot(const flow::EvidenceDelta& snapshot,
                        std::string* error = nullptr);

  [[nodiscard]] std::uint32_t id() const noexcept { return config_.id; }
  [[nodiscard]] const core::Detector& detector() const noexcept {
    return detector_;
  }
  /// Highest epoch acked by the aggregator (i.e. merged), if any.
  [[nodiscard]] std::optional<util::HourBin> acked_through() const noexcept {
    return acked_;
  }
  [[nodiscard]] std::size_t unacked() const noexcept {
    return unacked_.size();
  }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t deltas_sealed() const noexcept {
    return deltas_sealed_;
  }

 private:
  struct Pending {
    std::vector<std::uint8_t> bytes;
    std::uint32_t ticks_left = 0;
    std::uint32_t backoff = 0;
  };

  core::Detector detector_;
  const core::RuleSet& rules_;
  CollectorConfig config_;
  obs::Observability* obs_ = nullptr;
  std::uint32_t next_seq_ = 0;
  /// Evidence rows touched since the last seal (sorted + deduplicated).
  std::set<std::pair<core::SubscriberKey, core::ServiceId>> touched_;
  std::map<util::HourBin, Pending> unacked_;
  std::optional<util::HourBin> acked_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t deltas_sealed_ = 0;
};

}  // namespace haystack::vantage
