// Figure 12 reproduction: daily drill-down of the Amazon and Samsung
// hierarchies — Alexa Enabled ⊇ Amazon Product ⊇ Fire TV, and
// Samsung IoT ⊇ Samsung TV — at the conservative threshold D=0.4.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto alexa = world.service("Alexa Enabled");
  const auto amazon = world.service("Amazon Product");
  const auto firetv = world.service("Fire TV");
  const auto samsung = world.service("Samsung IoT");
  const auto stv = world.service("Samsung TV");

  struct Row {
    util::DayBin day;
    std::size_t alexa, amazon, firetv, samsung, stv;
  };
  std::vector<Row> rows;

  bench::WildSweep sweep{world};
  sweep.set_daily([&](util::HourBin start, const bench::BinResult& bin) {
    auto count = [&](core::ServiceId s) {
      const auto it = bin.by_service.find(s);
      return it == bin.by_service.end() ? std::size_t{0} : it->second.size();
    };
    rows.push_back({util::day_of(start), count(alexa), count(amazon),
                    count(firetv), count(samsung), count(stv)});
  });
  sweep.run(0, util::kStudyHours);

  util::print_banner(std::cout,
                     "Figure 12: Amazon/Samsung drill-down per day "
                     "(population " +
                         util::fmt_count(world.lines()) + ")");
  util::TextTable table;
  table.header({"Day", "Alexa Enabled", "Amazon Product", "Amazon FireTV",
                "Samsung IoT", "Samsung TV"});
  bool hierarchy_ok = true;
  for (const auto& r : rows) {
    table.row({util::day_label(r.day), util::fmt_count(r.alexa),
               util::fmt_count(r.amazon), util::fmt_count(r.firetv),
               util::fmt_count(r.samsung), util::fmt_count(r.stv)});
    hierarchy_ok = hierarchy_ok && r.alexa >= r.amazon &&
                   r.amazon >= r.firetv && r.samsung >= r.stv;
  }
  table.print(std::cout);
  std::cout << "\nHierarchy invariant (Alexa >= Amazon >= FireTV, Samsung "
               ">= Samsung TV): "
            << (hierarchy_ok ? "holds" : "VIOLATED")
            << ". Paper: specialized products account for a fraction of "
               "each superclass; counts are stable across days.\n";
  return 0;
}
