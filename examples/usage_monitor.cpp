// Usage monitor: distinguish *actively used* Alexa-enabled devices from
// idle ones in sampled flow data (Sec. 7.1, Fig. 18). Streams one day of
// wild ISP traffic and reports, per hour, how many lines crossed the
// active-use packet threshold.
//
// Usage: usage_monitor [lines] [threshold]
#include <cstdlib>
#include <iostream>
#include <set>

#include "core/detector.hpp"
#include "core/usage.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  const std::uint32_t lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50'000;
  const std::uint64_t threshold =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 10;

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog, {.lines = lines}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          simnet::WildIspConfig{}};

  const auto* alexa_rule = rules.rule_by_name("Alexa Enabled");
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  core::UsageClassifier usage{{.packet_threshold = threshold}};

  util::TextTable table;
  table.header({"Hour", "Lines w/ Alexa traffic", "Actively used",
                "Active share"});

  // A Saturday (Nov 23): the paper's usage peaks fall on the weekend.
  const util::DayBin day = 8;
  for (util::HourBin h = util::day_start(day); h < util::day_start(day) + 24;
       ++h) {
    std::set<simnet::LineId> seen;
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      const auto hit = detector.observe(obs.line, obs.flow.key.dst,
                                        obs.flow.key.dst_port,
                                        obs.flow.packets, h);
      if (hit && hit->service == alexa_rule->service) {
        seen.insert(obs.line);
        usage.observe(obs.line, hit->service, obs.flow.packets);
      }
    });
    const auto active = usage.end_hour();
    table.row({util::hour_label(h), util::fmt_count(seen.size()),
               util::fmt_count(active.size()),
               seen.empty() ? "-"
                            : util::fmt_percent(double(active.size()) /
                                                double(seen.size()))});
    detector.clear();
  }
  table.print(std::cout);
  std::cout << "\nActive use = more than " << threshold
            << " sampled packets/hour toward the Alexa service. The "
               "evening peak follows the human diurnal pattern (paper "
               "Fig. 18: ~27k active lines at 15M scale).\n";
  return 0;
}
