// Structure-aware fuzzer for the IPFIX collector.
//
// Corpus: real Exporter messages (templates + data, both families) plus an
// options-template message (sampling announcement). Structure-aware
// mutations target IPFIX framing: the message total-length, set lengths,
// set ids (2 / 3 / 255 / 256 / 257), template field counts, enterprise
// bits, and the variable-length escape bytes.
//
// Properties: ingest() returns cleanly; decoded record count stays bounded
// by message size; rejections are accounted in malformed_messages; the
// collector keeps decoding pristine traffic afterwards.
#include <cstdint>
#include <span>
#include <vector>

#include "flow/ipfix.hpp"
#include "fuzz_harness.hpp"

namespace {

using haystack::fuzz::Bytes;
using namespace haystack::flow;

FlowRecord sample_record(std::uint32_t salt, bool v6) {
  FlowRecord rec;
  if (v6) {
    rec.key.src = haystack::net::IpAddress::v6(0x20010db8ULL << 32, salt);
    rec.key.dst = haystack::net::IpAddress::v6(0x20010db8ULL << 32,
                                               0x20000ULL + salt);
  } else {
    rec.key.src = haystack::net::IpAddress::v4(0x0a000000U + salt);
    rec.key.dst = haystack::net::IpAddress::v4(0x22000000U + salt * 5);
  }
  rec.key.src_port = static_cast<std::uint16_t>(20000 + salt);
  rec.key.dst_port = 8883;
  rec.key.proto = 6;
  rec.tcp_flags = 0x18;
  rec.packets = 2 + salt;
  rec.bytes = 300 + salt * 13;
  rec.start_ms = 0x123456789aULL + salt;
  rec.end_ms = 0x123456789aULL + salt + 250;
  rec.sampling = 10000;
  return rec;
}

std::vector<Bytes> build_corpus() {
  std::vector<Bytes> corpus;
  for (const std::size_t n : {std::size_t{1}, std::size_t{9},
                              std::size_t{50}}) {
    ipfix::Exporter exporter{{.observation_domain = 5, .sampling = 10000,
                              .max_records_per_message = 20,
                              .template_refresh_messages = 1}};
    std::vector<FlowRecord> records;
    for (std::uint32_t i = 0; i < n; ++i) {
      records.push_back(sample_record(i, i % 4 == 0));
    }
    for (auto& message : exporter.export_flows(records, 1574000000)) {
      corpus.push_back(std::move(message));
    }
  }
  corpus.push_back(
      ipfix::encode_sampling_options(5, 10000, 1574000000, 0));
  return corpus;
}

// IPFIX framing: 16-byte header (version, length, export time, sequence,
// domain), then sets at (id u16, length u16) boundaries. In a
// template-first message the field-spec list (type u16, length u16
// pairs) starts at offset 24.
void structure_mutate(Bytes& data, haystack::util::Pcg32& rng) {
  if (data.size() < 20) return;
  const auto put_u16 = [&](std::size_t pos, std::uint16_t v) {
    data[pos] = static_cast<std::uint8_t>(v >> 8);
    data[pos + 1] = static_cast<std::uint8_t>(v);
  };
  switch (rng.bounded(7)) {
    case 0:  // total-length corruption (the header's own length field)
      put_u16(2, static_cast<std::uint16_t>(rng.bounded(0x10000)));
      break;
    case 1:  // first set's length field
      put_u16(18, static_cast<std::uint16_t>(rng.bounded(0x10000)));
      break;
    case 2: {  // set-id swap: template/options/data ids
      constexpr std::uint16_t kIds[] = {2, 3, 255, 256, 257, 400};
      put_u16(16, kIds[rng.bounded(6)]);
      break;
    }
    case 3: {  // poison a u16 deep in the body with the enterprise bit or
               // the varlen escape — hits field specs and lengths
      const std::size_t pos =
          16 + rng.bounded(static_cast<std::uint32_t>(data.size() - 17));
      put_u16(pos, rng.chance(0.5)
                       ? static_cast<std::uint16_t>(0x8000U |
                                                    rng.bounded(0x8000))
                       : 0xffffU);
      break;
    }
    case 4: {  // declared-length lie: a template field's length slot set
               // to 0 / tiny / enormous, so the compiled plan's record
               // length disagrees with the data sets that follow
      constexpr std::uint16_t kLies[] = {0, 1, 3, 5, 0x00ff, 0xfffe};
      const std::size_t pos = 26 + 4 * rng.bounded(8);
      if (pos + 1 >= data.size()) break;
      put_u16(pos, kLies[rng.bounded(6)]);
      break;
    }
    case 5: {  // template redefinition mid-stream: flip a field *type*,
               // so the persistent collector sees this template id
               // re-announced with a different layout and must recompile
               // its plan (offsets shift for every later field)
      const std::size_t pos = 24 + 4 * rng.bounded(8);
      if (pos + 1 >= data.size()) break;
      put_u16(pos, static_cast<std::uint16_t>(rng.bounded(512)));
      break;
    }
    default:  // truncate mid-set, keeping the header length plausible
      data.resize(16 + rng.bounded(
                           static_cast<std::uint32_t>(data.size() - 16)));
      put_u16(2, static_cast<std::uint16_t>(data.size()));
      break;
  }
}

bool check(std::span<const std::uint8_t> input) {
  // Each reference collector is mirrored by a batch collector fed the
  // identical input sequence: ingest() (record-at-a-time walk) and
  // ingest_batch() (compiled-plan zero-copy decode) must agree on the
  // verdict, the statistics, and every decoded row — bit for bit — for
  // ARBITRARY bytes, not just well-formed exporter output. This is the
  // fuzz-shaped form of the differential tier at the decode entry point.
  static ipfix::Collector persistent;
  static ipfix::Collector persistent_batch;
  ipfix::Collector fresh;
  ipfix::Collector fresh_batch;
  struct Pair {
    ipfix::Collector* ref;
    ipfix::Collector* batch;
  };
  for (const Pair p : {Pair{&persistent, &persistent_batch},
                       Pair{&fresh, &fresh_batch}}) {
    std::vector<FlowRecord> out;
    const std::uint64_t malformed_before =
        p.ref->stats().malformed_messages;
    // A template in this message can release sets parked by earlier
    // iterations, so the record-per-byte bound covers those bytes too.
    const std::size_t budget = input.size() + p.ref->pending_bytes();
    const bool accepted = p.ref->ingest(input, out);
    if (out.size() > budget) return false;
    if (!accepted &&
        p.ref->stats().malformed_messages == malformed_before) {
      return false;
    }

    FlowBatch batch;
    if (p.batch->ingest_batch(input, batch) != accepted) return false;
    if (batch.size() != out.size()) return false;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (batch.record(i) != out[i]) return false;
    }
    if (p.batch->stats().malformed_messages !=
            p.ref->stats().malformed_messages ||
        p.batch->stats().records != p.ref->stats().records ||
        p.batch->stats().recovered_records !=
            p.ref->stats().recovered_records) {
      return false;
    }
  }
  // Liveness after arbitrary input. The persistent collectors must keep
  // *returning* on pristine traffic (a fuzzed message may legitimately
  // have registered an options template that shadows this domain's data
  // template id, so the record count is not asserted there); a collector
  // that only ever sees valid messages must keep round-tripping exactly
  // through both decode paths.
  static ipfix::Collector pristine_only;
  static ipfix::Collector pristine_only_batch;
  ipfix::Exporter exporter{{.observation_domain = 991,
                            .template_refresh_messages = 1}};
  std::vector<FlowRecord> records{sample_record(1, false),
                                  sample_record(2, true)};
  std::vector<FlowRecord> decoded;
  std::vector<FlowRecord> ignored;
  FlowBatch decoded_batch;
  FlowBatch ignored_batch;
  for (const auto& message : exporter.export_flows(records, 1574000000)) {
    (void)persistent.ingest(message, ignored);
    (void)persistent_batch.ingest_batch(message, ignored_batch);
    if (!pristine_only.ingest(message, decoded)) return false;
    if (!pristine_only_batch.ingest_batch(message, decoded_batch)) {
      return false;
    }
  }
  if (decoded_batch.size() != decoded.size()) return false;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (decoded_batch.record(i) != decoded[i]) return false;
  }
  return decoded.size() == records.size();
}

}  // namespace

#ifdef HAYSTACK_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)check({data, size});
  return 0;
}
#else
int main(int argc, char** argv) {
  const auto config = haystack::fuzz::parse_args(argc, argv);
  return haystack::fuzz::run_fuzz("fuzz_ipfix", config, build_corpus(),
                                  structure_mutate, check);
}
#endif
