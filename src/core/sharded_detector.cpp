#include "core/sharded_detector.hpp"

#include <algorithm>
#include <thread>

namespace haystack::core {

ShardedDetector::ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                                 const DetectorConfig& config,
                                 unsigned shards) {
  shards_.reserve(std::max(1u, shards));
  for (unsigned s = 0; s < std::max(1u, shards); ++s) {
    shards_.push_back(std::make_unique<Detector>(hitlist, rules, config));
  }
}

void ShardedDetector::observe(const Observation& obs) {
  shards_[shard_of(obs.subscriber)]->observe(obs.subscriber, obs.server,
                                             obs.port, obs.packets,
                                             obs.hour);
}

void ShardedDetector::process_batch(std::span<const Observation> batch) {
  if (shards_.size() == 1) {
    for (const auto& obs : batch) observe(obs);
    return;
  }
  // Partition preserving per-subscriber order.
  std::vector<std::vector<const Observation*>> partitions(shards_.size());
  for (auto& p : partitions) {
    p.reserve(batch.size() / shards_.size() + 1);
  }
  for (const auto& obs : batch) {
    partitions[shard_of(obs.subscriber)].push_back(&obs);
  }
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers.emplace_back([this, s, &partitions] {
      Detector& det = *shards_[s];
      for (const Observation* obs : partitions[s]) {
        det.observe(obs->subscriber, obs->server, obs->port, obs->packets,
                    obs->hour);
      }
    });
  }
  for (auto& w : workers) w.join();
}

bool ShardedDetector::detected(SubscriberKey subscriber,
                               ServiceId service) const {
  return shards_[shard_of(subscriber)]->detected(subscriber, service);
}

std::optional<util::HourBin> ShardedDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  return shards_[shard_of(subscriber)]->detection_hour(subscriber, service);
}

Verdict ShardedDetector::verdict(SubscriberKey subscriber,
                                 ServiceId service) const {
  return shards_[shard_of(subscriber)]->verdict(subscriber, service);
}

void ShardedDetector::set_observed_loss(double fraction) noexcept {
  for (const auto& shard : shards_) shard->set_observed_loss(fraction);
}

void ShardedDetector::restore_evidence(SubscriberKey subscriber,
                                       ServiceId service,
                                       const Evidence& evidence) {
  shards_[shard_of(subscriber)]->restore_evidence(subscriber, service,
                                                  evidence);
}

void ShardedDetector::restore_stats(const Detector::Stats& stats) {
  shards_[0]->restore_stats(stats);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->restore_stats({});
  }
}

void ShardedDetector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  for (const auto& shard : shards_) shard->for_each_evidence(fn);
}

void ShardedDetector::clear() {
  for (const auto& shard : shards_) shard->clear();
}

Detector::Stats ShardedDetector::stats() const {
  Detector::Stats total;
  for (const auto& shard : shards_) {
    total.flows += shard->stats().flows;
    total.matched += shard->stats().matched;
  }
  return total;
}

}  // namespace haystack::core
