// IPFIX message codec (RFC 7011).
//
// The IXP vantage point collects IPFIX across its switching fabric. This
// codec implements the real message format: the 16-byte message header
// (version 10, total length, export time, sequence number counting data
// records, observation domain), template sets (set id 2) and data sets
// (set id >= 256). The decoder additionally understands enterprise-numbered
// fields (high bit of the IE id, RFC 7011 §3.2) and variable-length fields
// (field length 65535, §7), skipping their content, so it survives
// real-world exporters that interleave vendor IEs with the standard ones.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_batch.hpp"
#include "flow/gap_tracker.hpp"
#include "flow/record.hpp"
#include "flow/template_plan.hpp"
#include "flow/wire.hpp"
#include "obs/flight_recorder.hpp"

namespace haystack::flow::ipfix {

/// IANA information element ids used by this implementation.
enum class Ie : std::uint16_t {
  kOctetDeltaCount = 1,
  kPacketDeltaCount = 2,
  kProtocolIdentifier = 4,
  kTcpControlBits = 6,
  kSourceTransportPort = 7,
  kSourceIpv4Address = 8,
  kDestinationTransportPort = 11,
  kDestinationIpv4Address = 12,
  kSourceIpv6Address = 27,
  kDestinationIpv6Address = 28,
  kSamplingInterval = 34,
  kFlowStartMilliseconds = 152,
  kFlowEndMilliseconds = 153,
};

inline constexpr std::uint16_t kTemplateSetId = 2;
inline constexpr std::uint16_t kOptionsTemplateSetId = 3;
inline constexpr std::uint16_t kTemplateV4 = 300;
inline constexpr std::uint16_t kTemplateV6 = 301;
inline constexpr std::uint16_t kSamplingOptionsTemplateId = 400;
/// samplingAlgorithm IE (deprecated in favour of selector IEs, but still
/// what fielded exporters emit alongside samplingInterval).
inline constexpr std::uint16_t kIeSamplingAlgorithm = 35;

/// Encodes a stand-alone IPFIX message announcing the observation domain's
/// sampling configuration through an options template (set id 3, RFC 7011
/// §3.4.2.2) plus one options data record.
[[nodiscard]] std::vector<std::uint8_t> encode_sampling_options(
    std::uint32_t observation_domain, std::uint32_t interval,
    std::uint32_t export_time, std::uint32_t sequence);

/// Exporter configuration.
struct ExporterConfig {
  std::uint32_t observation_domain = 1;
  std::uint32_t sampling = 1;
  std::size_t max_records_per_message = 24;
  std::uint32_t template_refresh_messages = 20;
};

/// Stateful IPFIX exporter.
class Exporter {
 public:
  explicit Exporter(ExporterConfig config) noexcept : config_{config} {}

  /// Encodes `records` into one or more IPFIX messages. The message
  /// sequence number counts cumulative data records per RFC 7011 §3.1.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t export_time);

  [[nodiscard]] std::uint32_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::uint32_t records_sent() const noexcept {
    return records_sent_;
  }

 private:
  void write_templates(ByteWriter& w) const;

  ExporterConfig config_;
  std::uint32_t messages_sent_ = 0;
  std::uint32_t records_sent_ = 0;
};

/// Collector resilience knobs (ISSUE 2), mirroring the NetFlow v9 ones.
/// The IPFIX sequence counts *data records*, so the reorder window is in
/// record units.
struct CollectorConfig {
  /// Bound on parked data sets awaiting their template. 0 disables.
  std::size_t max_pending_sets = 64;
  /// Backward sequence distance (records) still treated as reordering.
  std::uint32_t reorder_window = 2048;
  /// Duplicate-datagram suppression window (datagrams); 0 disables.
  std::size_t dedup_window = 0;
  /// Optional flight recorder: restart/gap/replay/park/recover/evict
  /// events are recorded with source = the observation domain (ISSUE 5).
  obs::FlightRecorder* recorder = nullptr;
};

/// Decoder statistics. Every ingested datagram lands in exactly one of
/// {messages, malformed_messages, duplicate_messages}.
struct CollectorStats {
  std::uint64_t messages = 0;  ///< messages fully decoded
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  std::uint64_t options_templates_learned = 0;
  std::uint64_t unknown_template_sets = 0;
  std::uint64_t malformed_messages = 0;
  std::uint64_t sequence_gaps = 0;  ///< gap events observed
  std::uint64_t estimated_lost_records = 0;  ///< records presumed lost
  std::uint64_t duplicate_messages = 0;      ///< suppressed UDP duplicates
  std::uint64_t reordered_messages = 0;      ///< late (replayed) messages
  std::uint64_t exporter_restarts = 0;       ///< sequence resets detected
  std::uint64_t buffered_sets = 0;           ///< data sets ever parked
  std::uint64_t recovered_sets = 0;          ///< parked, then decoded
  std::uint64_t recovered_records = 0;       ///< records from recovery
  std::uint64_t evicted_sets = 0;            ///< parked, then discarded
  std::uint64_t zero_sampling_announcements = 0;  ///< clamped to 1
};

/// Stateful IPFIX collector with template-loss recovery, duplicate
/// suppression, restart detection, and record-level loss estimation.
class Collector {
 public:
  Collector() : Collector(CollectorConfig{}) {}
  explicit Collector(const CollectorConfig& config)
      : config_{config}, deduper_{config.dedup_window} {}

  /// Decodes one IPFIX message, appending records to `out`. Returns false
  /// on malformed input. This is the record-at-a-time reference walk the
  /// differential tier pins `ingest_batch` against.
  bool ingest(std::span<const std::uint8_t> message,
              std::vector<FlowRecord>& out);

  /// Batch decode: identical protocol handling and statistics to
  /// `ingest`, but fixed-layout data sets decode via the template's
  /// compiled field-offset plan straight into `out`'s columns (ISSUE 6).
  /// Templates with variable-length fields fall back to the reference
  /// walk internally; output is bit-identical either way.
  bool ingest_batch(std::span<const std::uint8_t> message, FlowBatch& out);

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

  /// Sampling interval announced by an observation domain via options data,
  /// or nullopt when none was seen. A zero announcement is clamped to 1
  /// and counted in zero_sampling_announcements.
  [[nodiscard]] std::optional<std::uint32_t> announced_sampling(
      std::uint32_t observation_domain) const;

  /// Per-domain stream health (record-level loss estimate, restarts).
  [[nodiscard]] SourceHealth health(std::uint32_t observation_domain) const;

  /// Aggregate estimated data-record loss fraction across all domains.
  [[nodiscard]] double estimated_loss() const;

  [[nodiscard]] std::size_t pending_sets() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept;

 private:
  struct TemplateField {
    std::uint16_t id;          ///< IE id without the enterprise bit
    std::uint16_t length;      ///< 65535 = variable length
    bool enterprise = false;
  };
  using Template = std::vector<TemplateField>;

  /// A learned template plus its decode plan, compiled at learn time.
  /// `plan.fast` is false for templates with variable-length fields.
  struct TemplateEntry {
    Template fields;
    plan::CompiledPlan plan;
  };

  struct PendingSet {
    std::uint32_t domain = 0;
    std::uint16_t template_id = 0;
    /// Sequence of the message that carried the set: the records inside
    /// start at this position in the domain's record-sequence space.
    std::uint32_t sequence = 0;
    std::vector<std::uint8_t> body;
  };

  struct PerDomain {
    SequenceTracker tracker;
    std::uint32_t restarts = 0;
    /// True when the previous message parked an undecodable data set, so
    /// its record count is unknown and the next forward sequence jump is
    /// a resync (parked records), not loss.
    bool sequence_indeterminate = false;
  };

  // `ingest` and `ingest_batch` share one protocol implementation,
  // parameterized over the record sink (see netflow_v9). Defined in the
  // .cpp; both instantiations live there.
  template <typename Sink>
  bool ingest_impl(std::span<const std::uint8_t> message, Sink& sink);
  template <typename Sink>
  bool decode_template_set(ByteReader& r, std::uint32_t domain, Sink& sink);
  template <typename Sink>
  bool decode_data(ByteReader& r, const TemplateEntry& entry, Sink& sink);
  template <typename Sink>
  void recover_pending(std::uint32_t domain, std::uint16_t template_id,
                       Sink& sink);
  bool decode_options_template_set(ByteReader& r, std::uint32_t domain);
  bool decode_data_set(ByteReader& r, const Template& tmpl,
                       std::vector<FlowRecord>& out);
  bool decode_options_data(ByteReader& r, std::uint16_t set_id,
                           std::uint32_t domain);
  void park_set(std::uint32_t domain, std::uint16_t template_id,
                std::uint32_t sequence, ByteReader& body);
  void handle_restart(std::uint32_t domain, PerDomain& state);

  struct OptionsTemplate {
    std::uint16_t scope_bytes = 0;
    std::vector<TemplateField> fields;
  };
  CollectorConfig config_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, TemplateEntry>
      templates_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, OptionsTemplate>
      options_templates_;
  std::map<std::uint32_t, std::uint32_t> announced_sampling_;
  std::map<std::uint32_t, PerDomain> domains_;
  std::deque<PendingSet> pending_;
  DatagramDeduper deduper_;
  CollectorStats stats_;
};

}  // namespace haystack::flow::ipfix
