// Figure 13 reproduction: cumulative count of subscriber identifiers and of
// /24 aggregates with detected IoT activity across the two weeks, for the
// Amazon/Samsung hierarchy. Identifier rotation inflates the cumulative
// subscriber curve; the /24 view stabilizes.
#include <iostream>
#include <map>
#include <set>

#include "common.hpp"
#include "net/prefix.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const std::vector<std::string> kNames = {"Alexa Enabled", "Amazon Product",
                                           "Fire TV", "Samsung IoT",
                                           "Samsung TV"};
  std::map<core::ServiceId, std::string> names;
  for (const auto& n : kNames) names[world.service(n)] = n;

  // Cumulative sets keyed by the *rotating daily identifier* (address) and
  // by /24 aggregate.
  std::map<core::ServiceId, std::set<net::IpAddress>> cum_ids;
  std::map<core::ServiceId, std::set<net::Prefix>> cum_s24;

  util::TextTable table;
  std::vector<std::string> header{"Day"};
  for (const auto& n : kNames) header.push_back(n + " ids");
  for (const auto& n : kNames) header.push_back(n + " /24s");
  table.header(std::move(header));

  bench::WildSweep sweep{world};
  sweep.set_daily([&](util::HourBin start, const bench::BinResult& bin) {
    const util::DayBin day = util::day_of(start);
    for (const auto& [service, lines] : bin.by_service) {
      if (!names.contains(service)) continue;
      for (const auto line : lines) {
        const auto addr = world.population().address_of(line, day);
        cum_ids[service].insert(addr);
        cum_s24[service].insert(net::aggregate_of(addr));
      }
    }
    std::vector<std::string> row{util::day_label(day)};
    for (const auto& n : kNames) {
      row.push_back(util::fmt_count(cum_ids[world.service(n)].size()));
    }
    for (const auto& n : kNames) {
      row.push_back(util::fmt_count(cum_s24[world.service(n)].size()));
    }
    table.row(std::move(row));
  });
  sweep.run(0, util::kStudyHours);

  util::print_banner(std::cout,
                     "Figure 13: cumulative identifiers and /24s with IoT "
                     "activity (population " +
                         util::fmt_count(world.lines()) + ")");
  table.print(std::cout);
  std::cout << "\nPaper: cumulative identifier counts keep rising through "
               "identifier rotation (double counting); /24 aggregates "
               "stabilize smoothly, faster for popular units.\n";
  return 0;
}
