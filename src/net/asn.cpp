#include "net/asn.hpp"

namespace haystack::net {

void AsnRegistry::add_as(const AsInfo& info) {
  const auto it = index_.find(info.asn);
  if (it != index_.end()) {
    infos_[it->second] = info;
    return;
  }
  index_.emplace(info.asn, infos_.size());
  infos_.push_back(info);
}

void AsnRegistry::announce(const Prefix& prefix, Asn asn) {
  trie_.insert(prefix, asn);
}

std::optional<Asn> AsnRegistry::origin(const IpAddress& addr) const {
  return trie_.lookup(addr);
}

const AsInfo* AsnRegistry::info(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &infos_[it->second];
}

AsRole AsnRegistry::role_of(const IpAddress& addr) const {
  const auto asn = origin(addr);
  if (!asn) return AsRole::kTransit;
  const AsInfo* i = info(*asn);
  return i ? i->role : AsRole::kTransit;
}

bool AsnRegistry::is_cloud_or_cdn(const IpAddress& addr) const {
  const AsRole r = role_of(addr);
  return r == AsRole::kCloud || r == AsRole::kCdn;
}

}  // namespace haystack::net
