// NetFlow v9 options data (RFC 3954 §6.1): exporters announce metering
// metadata — most importantly the packet-sampling interval — via options
// templates (flowset id 1) and matching options data records.
//
// The paper's methodology silently assumes the collector *knows* each
// router's sampling rate ("a consistent sampling rate across all
// routers"); in practice that knowledge arrives through exactly this
// mechanism. The helpers here encode an options announcement and give the
// collector a side-channel to learn per-source sampling state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/wire.hpp"

namespace haystack::flow::nf9 {

/// Scope/field ids used by the sampling options template.
inline constexpr std::uint16_t kScopeSystem = 1;
inline constexpr std::uint16_t kFieldSamplingInterval = 34;   // same IE id
inline constexpr std::uint16_t kFieldSamplingAlgorithm = 35;
inline constexpr std::uint16_t kOptionsTemplateId = 512;

/// Sampling algorithms per RFC 3954.
enum class SamplingAlgorithm : std::uint8_t {
  kDeterministic = 1,
  kRandom = 2,
};

/// One announced sampling configuration.
struct SamplingAnnouncement {
  std::uint32_t source_id = 0;
  std::uint32_t interval = 1;
  SamplingAlgorithm algorithm = SamplingAlgorithm::kRandom;
};

/// Encodes a complete v9 export packet containing the options template
/// (flowset 1) and one options data record announcing `announcement`.
[[nodiscard]] std::vector<std::uint8_t> encode_sampling_announcement(
    const SamplingAnnouncement& announcement, std::uint32_t unix_secs,
    std::uint32_t sequence);

/// Tracks per-source sampling state learned from options data. Feed every
/// incoming export packet to ingest(); it ignores non-options content and
/// returns true when it learned or refreshed an announcement.
class SamplingRegistry {
 public:
  bool ingest(std::span<const std::uint8_t> packet);

  /// Last announced interval for a source id, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> interval_of(
      std::uint32_t source_id) const;

  [[nodiscard]] std::optional<SamplingAlgorithm> algorithm_of(
      std::uint32_t source_id) const;

  [[nodiscard]] std::size_t known_sources() const noexcept {
    return state_.size();
  }

  /// Announcements carrying a zero/absent sampling interval. Such an
  /// announcement would divide-by-zero every upscaling consumer, so the
  /// registry clamps the learned interval to 1 and counts the anomaly
  /// here instead of propagating it.
  [[nodiscard]] std::uint64_t zero_interval_announcements() const noexcept {
    return zero_interval_announcements_;
  }

 private:
  struct State {
    std::uint32_t interval = 1;
    SamplingAlgorithm algorithm = SamplingAlgorithm::kRandom;
  };
  // Learned options-template layouts per (source id, template id).
  struct Layout {
    std::uint16_t scope_bytes = 0;
    std::vector<std::pair<std::uint16_t, std::uint16_t>> fields;
  };
  std::map<std::pair<std::uint32_t, std::uint16_t>, Layout> layouts_;
  std::map<std::uint32_t, State> state_;
  std::uint64_t zero_interval_announcements_ = 0;
};

}  // namespace haystack::flow::nf9
