// Scenario-driven scan: the isp_scan workflow, parameterized by a text
// scenario file instead of recompilation — market-share what-ifs, sampling
// studies, churn sensitivity, export-path impairment.
//
// Usage: scenario_scan <scenario-file> [day]
//
// Example scenario file:
//   lines 60000
//   sampling 2000
//   penetration "Echo Dot" 0.08
//   wild_extra "Alexa Enabled" 0.15
//   impair_drop 0.05
//   impair_seed 7
//
// With any impair_* key the observed flows take the real export path:
// encoded to NetFlow v9, passed through the seeded ImpairedLink, decoded
// at a collector whose sequence-based loss estimate then feeds the
// detector's degradation signal.
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "flow/impairment.hpp"
#include "flow/netflow_v9.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/scenario.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  if (argc < 2) {
    std::cerr << "usage: scenario_scan <scenario-file> [day]\n";
    return 2;
  }
  std::ifstream file{argv[1]};
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::string error;
  const auto scenario = simnet::parse_scenario(file, &error);
  if (!scenario) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }
  const util::DayBin day =
      argc > 2 ? static_cast<util::DayBin>(std::atoi(argv[2])) : 0;

  simnet::Catalog catalog;
  if (!scenario->apply_overrides(catalog, &error)) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{
      catalog, scenario->apply(simnet::PopulationConfig{})};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          scenario->apply(simnet::WildIspConfig{})};

  std::cout << "Scenario: " << population.line_count() << " lines, 1:"
            << wild.config().sampling << " sampling, day "
            << util::day_label(day) << "\n";

  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  const auto impairment = scenario->impairment();
  std::optional<flow::nf9::Exporter> exporter;
  std::optional<flow::ImpairedLink> link;
  std::optional<flow::nf9::Collector> collector;
  if (impairment) {
    exporter.emplace(flow::nf9::ExporterConfig{.source_id = 1});
    link.emplace(*impairment);
    collector.emplace(flow::nf9::CollectorConfig{.dedup_window = 64});
  }
  for (util::HourBin h = util::day_start(day); h < util::day_start(day) + 24;
       ++h) {
    if (!impairment) {
      wild.hour_observations(h, [&](const simnet::WildObs& obs) {
        detector.observe(obs.line, obs.flow.key.dst, obs.flow.key.dst_port,
                         obs.flow.packets, h);
      });
      continue;
    }
    // Impaired export path: encode the hour to NetFlow v9, run the
    // datagrams through the faulty link, and detect on what decodes,
    // re-attaching subscriber lines by flow key.
    std::vector<flow::FlowRecord> records;
    std::unordered_multimap<flow::FlowKey, simnet::LineId> line_of;
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      records.push_back(obs.flow);
      line_of.emplace(obs.flow.key, obs.line);
    });
    std::vector<flow::FlowRecord> decoded;
    const std::uint32_t unix_secs = 1574000000U + h * 3600U;
    for (auto& packet : exporter->export_flows(records, unix_secs)) {
      for (const auto& datagram : link->transmit(std::move(packet))) {
        (void)collector->ingest(datagram, decoded);
      }
    }
    for (const auto& datagram : link->flush()) {
      (void)collector->ingest(datagram, decoded);
    }
    for (const auto& rec : decoded) {
      const auto it = line_of.find(rec.key);
      if (it == line_of.end()) continue;
      detector.observe(it->second, rec.key.dst, rec.key.dst_port,
                       rec.packets, h);
      line_of.erase(it);
    }
  }
  if (collector) {
    detector.set_observed_loss(collector->estimated_loss());
    const auto& ls = link->stats();
    std::cout << "Export path impaired: " << ls.dropped << " dropped, "
              << ls.duplicated << " duplicated, " << ls.reordered
              << " reordered, " << ls.truncated << " truncated of "
              << ls.datagrams_in << " datagrams; estimated loss "
              << util::fmt_percent(collector->estimated_loss())
              << (detector.degraded()
                      ? " — detector degraded, verdicts low-confidence\n"
                      : " — within tolerance\n");
  }

  std::map<core::ServiceId, std::size_t> per_service;
  std::set<core::SubscriberKey> any;
  detector.for_each_evidence([&](core::SubscriberKey line,
                                 core::ServiceId service,
                                 const core::Evidence&) {
    if (detector.detected(line, service)) {
      ++per_service[service];
      any.insert(line);
    }
  });

  util::TextTable table;
  table.header({"Service", "Lines detected", "Share"});
  std::vector<std::pair<std::size_t, const core::DetectionRule*>> ranked;
  for (const auto& rule : rules.rules) {
    const auto it = per_service.find(rule.service);
    ranked.emplace_back(it == per_service.end() ? 0 : it->second, &rule);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [count, rule] : ranked) {
    if (count == 0) break;
    table.row({rule->name, util::fmt_count(count),
               util::fmt_percent(double(count) / population.line_count(),
                                 2)});
  }
  table.print(std::cout);
  std::cout << "\nLines with any IoT activity: "
            << util::fmt_count(any.size()) << " ("
            << util::fmt_percent(double(any.size()) /
                                 population.line_count())
            << ")\n";
  return 0;
}
