// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench builds the same simulated world (catalog, backend, ground
// truth, rules) and differs only in which series it extracts. SimWorld
// bundles the construction; WildSweep runs the two-week wild-ISP loop once
// and fans per-bin detection results out to the caller.
//
// Environment knobs (all optional):
//   HAYSTACK_LINES  — wild population size (default 80000; serve_bench and
//                     vantage_bench override their own default to 20000,
//                     and scale_bench to 1000000 — see README)
//   HAYSTACK_SEED   — global simulation seed (default: the library default)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/rules.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/ixp.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/rates.hpp"
#include "simnet/wild_isp.hpp"
#include "telemetry/vantage.hpp"
#include "util/table.hpp"

namespace haystack::bench {

/// Reads an environment integer with a default.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// The fully constructed simulation world.
class SimWorld {
 public:
  SimWorld();

  [[nodiscard]] const simnet::Catalog& catalog() const { return *catalog_; }
  [[nodiscard]] const simnet::Backend& backend() const { return *backend_; }
  [[nodiscard]] const simnet::GroundTruthSim& gt() const { return *gt_; }
  [[nodiscard]] const core::RuleSet& rules() const { return *rules_; }
  [[nodiscard]] const simnet::DomainRateModel& rates() const {
    return *rates_;
  }
  [[nodiscard]] const simnet::Population& population() const {
    return *population_;
  }
  [[nodiscard]] const simnet::WildIspSim& wild() const { return *wild_; }

  /// Wild population size and the factor mapping it to the paper's 15M
  /// subscriber lines (used to print a "scaled to paper" column).
  [[nodiscard]] std::uint32_t lines() const;
  [[nodiscard]] double scale_to_paper() const {
    return 15e6 / static_cast<double>(lines());
  }

  /// Convenience: service id by rule name (aborts if absent).
  [[nodiscard]] core::ServiceId service(const std::string& name) const;

 private:
  std::unique_ptr<simnet::Catalog> catalog_;
  std::unique_ptr<simnet::Backend> backend_;
  std::unique_ptr<simnet::GroundTruthSim> gt_;
  std::unique_ptr<core::RuleSet> rules_;
  std::unique_ptr<simnet::DomainRateModel> rates_;
  std::unique_ptr<simnet::Population> population_;
  std::unique_ptr<simnet::WildIspSim> wild_;
};

/// Per-bin wild detection results delivered by WildSweep.
struct BinResult {
  /// Detected subscriber-line ids per service in this bin.
  std::map<core::ServiceId, std::set<simnet::LineId>> by_service;
};

/// Runs the wild-ISP simulation over [first_hour, last_hour), feeding a
/// D=0.4 detector, and invokes the callbacks at hour/day bin boundaries.
/// Also forwards every matched observation to `on_match` (may be null) for
/// usage-style analyses.
class WildSweep {
 public:
  using BinCallback = std::function<void(util::HourBin bin_start,
                                         const BinResult&)>;
  using MatchCallback = std::function<void(
      const simnet::WildObs&, const core::Hit&, util::HourBin)>;

  explicit WildSweep(const SimWorld& world) : world_{world} {}

  void set_hourly(BinCallback cb) { hourly_ = std::move(cb); }
  void set_daily(BinCallback cb) { daily_ = std::move(cb); }
  void set_on_match(MatchCallback cb) { on_match_ = std::move(cb); }

  void run(util::HourBin first_hour, util::HourBin last_hour);

 private:
  const SimWorld& world_;
  BinCallback hourly_;
  BinCallback daily_;
  MatchCallback on_match_;
};

/// Sum of detected lines across every service that is neither
/// Alexa/Amazon/Fire TV nor Samsung — the paper's "Other 32 IoT device
/// types" series.
[[nodiscard]] std::size_t other32_count(const SimWorld& world,
                                        const BinResult& bin);

/// Unique subscribers across *all* services in the bin.
[[nodiscard]] std::size_t any_count(const BinResult& bin);

}  // namespace haystack::bench
