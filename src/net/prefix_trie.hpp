// Binary (one bit per level) longest-prefix-match trie.
//
// Maps CIDR prefixes to values of type T; lookup returns the value of the
// most specific prefix covering an address. Used by the AS registry
// (address -> member AS at the IXP) and by the detection hitlist to mark
// server-side infrastructure ranges.
//
// The trie is family-segregated internally: IPv4 and IPv6 prefixes live in
// separate roots, so lookups never cross families.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "net/prefix.hpp"

namespace haystack::net {

/// Longest-prefix-match map from Prefix to T.
///
/// T must be copyable. insert() overwrites on exact duplicate prefix.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts (or replaces) the value stored at `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = &root_for(prefix.family());
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      auto& child = prefix.base().bit(depth) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix match: value of the most specific prefix containing
  /// `addr`, or nullopt when no prefix covers it.
  [[nodiscard]] std::optional<T> lookup(const IpAddress& addr) const {
    const Node* node = &root_for(addr.family());
    std::optional<T> best;
    if (node->value) best = node->value;
    for (unsigned depth = 0; depth < addr.bit_width(); ++depth) {
      const auto& child = addr.bit(depth) ? node->one : node->zero;
      if (!child) break;
      node = child.get();
      if (node->value) best = node->value;
    }
    return best;
  }

  /// Exact-match lookup of a previously inserted prefix.
  [[nodiscard]] std::optional<T> exact(const Prefix& prefix) const {
    const Node* node = &root_for(prefix.family());
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const auto& child = prefix.base().bit(depth) ? node->one : node->zero;
      if (!child) return std::nullopt;
      node = child.get();
    }
    return node->value;
  }

  /// Number of stored prefixes.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visits every (prefix, value) pair in lexicographic bit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(v4_root_, Prefix::of(IpAddress::v4(0), 0), fn, Family::kIpv4, 0, 0, 0);
    walk(v6_root_, Prefix::of(IpAddress::v6(0, 0), 0), fn, Family::kIpv6, 0, 0,
         0);
  }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<T> value;
  };

  Node& root_for(Family f) noexcept {
    return f == Family::kIpv4 ? v4_root_ : v6_root_;
  }
  const Node& root_for(Family f) const noexcept {
    return f == Family::kIpv4 ? v4_root_ : v6_root_;
  }

  template <typename Fn>
  static void walk(const Node& node, const Prefix& /*unused*/, Fn& fn,
                   Family family, std::uint64_t hi, std::uint64_t lo,
                   unsigned depth) {
    if (node.value) {
      const IpAddress base = family == Family::kIpv4
                                 ? IpAddress::v4(static_cast<std::uint32_t>(lo))
                                 : IpAddress::v6(hi, lo);
      fn(Prefix::of(base, depth), *node.value);
    }
    const unsigned width = family == Family::kIpv4 ? 32 : 128;
    if (depth >= width) return;
    auto descend = [&](const std::unique_ptr<Node>& child, bool bit) {
      if (!child) return;
      std::uint64_t nhi = hi;
      std::uint64_t nlo = lo;
      if (bit) {
        if (family == Family::kIpv4) {
          nlo |= std::uint64_t{1} << (31 - depth);
        } else if (depth < 64) {
          nhi |= std::uint64_t{1} << (63 - depth);
        } else {
          nlo |= std::uint64_t{1} << (127 - depth);
        }
      }
      walk(*child, Prefix{}, fn, family, nhi, nlo, depth + 1);
    };
    descend(node.zero, false);
    descend(node.one, true);
  }

  Node v4_root_;
  Node v6_root_;
  std::size_t size_ = 0;
};

}  // namespace haystack::net
