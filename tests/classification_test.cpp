// End-to-end classification statistics (paper Secs. 4.1/4.2): the domain
// classifier and the dedicated-vs-shared pipeline must reproduce the
// paper's headline numbers against the simulated DNS/cert databases.
#include <gtest/gtest.h>

#include "core/domain_classifier.hpp"
#include "core/infra_classifier.hpp"
#include "core/rules.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"

namespace haystack {
namespace {

class ClassificationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    ruleset_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete ruleset_;
    delete backend_;
    delete catalog_;
    ruleset_ = nullptr;
    backend_ = nullptr;
    catalog_ = nullptr;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static core::RuleSet* ruleset_;
};

simnet::Catalog* ClassificationTest::catalog_ = nullptr;
simnet::Backend* ClassificationTest::backend_ = nullptr;
core::RuleSet* ClassificationTest::ruleset_ = nullptr;

TEST_F(ClassificationTest, Sec41DomainClassCounts) {
  // 524 observed domains -> 415 Primary, 19 Support, 90 Generic.
  const core::DomainClassifier classifier{
      simnet::build_domain_knowledge(*catalog_)};
  const auto stats =
      classifier.classify_all(simnet::observed_domains(*catalog_));
  EXPECT_EQ(stats.total, 524u);
  EXPECT_EQ(stats.primary, 415u);
  EXPECT_EQ(stats.support, 19u);
  EXPECT_EQ(stats.generic, 90u);
}

TEST_F(ClassificationTest, Sec42InfraClassCounts) {
  // 434 domains -> 217 dedicated, 202 shared, 15 without DNSDB records;
  // the cert-scan fallback recovers 8 of the 15.
  const auto& stats = ruleset_->stats;
  EXPECT_EQ(stats.domains_total, 415u);  // primary domains only (non-support)
  EXPECT_EQ(stats.dnsdb_missing, 15u);
  EXPECT_EQ(stats.via_cert_scan, 8u);
  EXPECT_EQ(stats.unresolved, 7u);
  // Dedicated via passive DNS; support domains (19, all dedicated) are
  // accounted separately in the paper's 217.
  EXPECT_EQ(stats.dedicated + 19u, 217u);
  EXPECT_EQ(stats.shared, 202u);
}

TEST_F(ClassificationTest, RuleCountsMatchSec432) {
  // 37 detectable units: 20 manufacturer + 11 product + 6 platform rows.
  EXPECT_EQ(ruleset_->rules.size(), 37u);
  unsigned manufacturer = 0;
  unsigned product = 0;
  unsigned platform = 0;
  for (const auto& r : ruleset_->rules) {
    switch (r.level) {
      case core::Level::kPlatform:
        ++platform;
        break;
      case core::Level::kManufacturer:
        ++manufacturer;
        break;
      case core::Level::kProduct:
        ++product;
        break;
    }
  }
  EXPECT_EQ(manufacturer, 20u);
  EXPECT_EQ(product, 11u);
  EXPECT_EQ(platform, 6u);
}

TEST_F(ClassificationTest, ExcludedServicesMatchSec423) {
  // Google Home, Apple TV, Lefun, SwitchBot: shared backends.
  // LG TV: only 1 of 4 domains resolvable. WeMo, Wink: no data at all.
  ASSERT_EQ(ruleset_->excluded.size(), 7u);
  std::map<std::string, core::ExclusionReason> reasons;
  for (const auto& e : ruleset_->excluded) reasons[e.name] = e.reason;

  EXPECT_EQ(reasons.at("Apple TV"), core::ExclusionReason::kSharedBackend);
  EXPECT_EQ(reasons.at("Google Home"), core::ExclusionReason::kSharedBackend);
  EXPECT_EQ(reasons.at("Lefun Cam"), core::ExclusionReason::kSharedBackend);
  EXPECT_EQ(reasons.at("SwitchBot"), core::ExclusionReason::kSharedBackend);
  EXPECT_EQ(reasons.at("LG TV"), core::ExclusionReason::kSharedBackend);
  EXPECT_EQ(reasons.at("WeMo Plug"),
            core::ExclusionReason::kInsufficientData);
  EXPECT_EQ(reasons.at("Wink Hub"),
            core::ExclusionReason::kInsufficientData);
}

TEST_F(ClassificationTest, LgTvKeptOneOfFourDomains) {
  for (const auto& e : ruleset_->excluded) {
    if (e.name == "LG TV") {
      EXPECT_EQ(e.dedicated_domains, 1u);
      EXPECT_EQ(e.total_domains, 4u);
      return;
    }
  }
  FAIL() << "LG TV not in excluded list";
}

TEST_F(ClassificationTest, MonitoredDomainCountsMatchFig10) {
  const auto* alexa = ruleset_->rule_by_name("Alexa Enabled");
  ASSERT_NE(alexa, nullptr);
  EXPECT_EQ(alexa->monitored_domains, 1u);

  const auto* amazon = ruleset_->rule_by_name("Amazon Product");
  ASSERT_NE(amazon, nullptr);
  EXPECT_EQ(amazon->monitored_domains, 33u);

  const auto* firetv = ruleset_->rule_by_name("Fire TV");
  ASSERT_NE(firetv, nullptr);
  EXPECT_EQ(firetv->monitored_domains, 34u);

  const auto* samsung = ruleset_->rule_by_name("Samsung IoT");
  ASSERT_NE(samsung, nullptr);
  EXPECT_EQ(samsung->monitored_domains, 14u);
  EXPECT_TRUE(samsung->critical_sufficient);
  ASSERT_TRUE(samsung->critical_monitored_index.has_value());

  // The cert-scan-recovered devices keep their full Fig. 10 domain counts.
  const auto* wansview = ruleset_->rule_by_name("Wansview Cam.");
  ASSERT_NE(wansview, nullptr);
  EXPECT_EQ(wansview->monitored_domains, 2u);
}

TEST_F(ClassificationTest, HitlistIsPopulatedAndCollisionFree) {
  EXPECT_GT(ruleset_->hitlist.total_size(), 1000u);
  EXPECT_EQ(ruleset_->hitlist.collisions(), 0u);
}

TEST_F(ClassificationTest, ThresholdArithmeticMatchesPaper) {
  const auto* amazon = ruleset_->rule_by_name("Amazon Product");
  ASSERT_NE(amazon, nullptr);
  // max(1, floor(D*N)).
  EXPECT_EQ(amazon->required_domains(0.1), 3u);   // floor(3.3)
  EXPECT_EQ(amazon->required_domains(0.4), 13u);  // floor(13.2)
  EXPECT_EQ(amazon->required_domains(1.0), 33u);
  const auto* alexa = ruleset_->rule_by_name("Alexa Enabled");
  EXPECT_EQ(alexa->required_domains(0.1), 1u);  // max(1, 0)
  EXPECT_EQ(alexa->required_domains(1.0), 1u);
}

}  // namespace
}  // namespace haystack
