// Tests for passive-DNS serialization: round trips (including against the
// full simulated database) and error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "dns/pdns_io.hpp"
#include "simnet/backend.hpp"

namespace haystack::dns {
namespace {

TEST(PdnsIoTest, SmallRoundtrip) {
  PassiveDnsDb db;
  db.add_a(Fqdn{"api.ring.com"}, *net::IpAddress::parse("140.1.2.3"), 0, 5);
  db.add_a(Fqdn{"v6.ring.com"}, *net::IpAddress::parse("2001:db8::9"), 2,
           2);
  db.add_cname(Fqdn{"alias.ring.com"}, Fqdn{"api.ring.com"}, 0, 13);

  std::stringstream stream;
  export_pdns(db, stream);
  std::string error;
  const auto imported = import_pdns(stream, &error);
  ASSERT_TRUE(imported.has_value()) << error;
  EXPECT_EQ(imported->record_count(), db.record_count());
  EXPECT_EQ(imported->resolve(Fqdn{"alias.ring.com"}, {0, 13}).ips.size(),
            1u);
  EXPECT_EQ(imported->resolve(Fqdn{"v6.ring.com"}, {2, 2}).ips[0],
            *net::IpAddress::parse("2001:db8::9"));
  EXPECT_TRUE(imported->resolve(Fqdn{"v6.ring.com"}, {3, 13}).ips.empty());
}

TEST(PdnsIoTest, FullSimulatedDatabaseRoundtrip) {
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const PassiveDnsDb& original = backend.pdns();

  std::stringstream stream;
  export_pdns(original, stream);
  const auto imported = import_pdns(stream);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->record_count(), original.record_count());

  // Spot-check query equivalence on a sample of catalog domains.
  std::size_t checked = 0;
  for (const auto& dom : catalog.domains()) {
    if (++checked % 7 != 0 || dom.dnsdb_missing) continue;
    const auto a = original.resolve(dom.fqdn, {0, util::kStudyDays - 1});
    const auto b = imported->resolve(dom.fqdn, {0, util::kStudyDays - 1});
    EXPECT_EQ(a.ips, b.ips) << dom.fqdn.str();
    EXPECT_EQ(a.chain, b.chain) << dom.fqdn.str();
  }
}

TEST(PdnsIoTest, ErrorsReported) {
  const auto expect_error = [](const std::string& text) {
    std::istringstream is{text};
    std::string error;
    EXPECT_FALSE(import_pdns(is, &error).has_value()) << text;
    EXPECT_FALSE(error.empty());
  };
  expect_error("a api.ring.com not-an-ip 0 3\n");
  expect_error("a api.ring.com 1.2.3.4 5 3\n");   // last < first
  expect_error("mx api.ring.com x 0 3\n");        // unknown kind
  expect_error("cname api.ring.com \n");          // truncated
}

TEST(PdnsIoTest, CommentsIgnored) {
  std::istringstream is{"# header\n\na\tx.example.com\t1.2.3.4\t0\t1\n"};
  const auto imported = import_pdns(is);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->record_count(), 1u);
}

}  // namespace
}  // namespace haystack::dns
