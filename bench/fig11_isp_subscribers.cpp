// Figure 11 reproduction: subscriber lines with detected IoT activity at
// the ISP, (a) per hour and (b) per day, split into Alexa Enabled,
// Samsung IoT, and the other 32 IoT device types, across the two-week
// study window. Counts are also scaled to the paper's 15M-line ISP.
#include <iostream>
#include <numeric>
#include <vector>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto alexa = world.service("Alexa Enabled");
  const auto samsung = world.service("Samsung IoT");
  const double scale = world.scale_to_paper();

  struct HourRow {
    util::HourBin hour;
    std::size_t alexa, samsung, other;
  };
  struct DayRow {
    util::DayBin day;
    std::size_t alexa, samsung, other, any;
  };
  std::vector<HourRow> hours;
  std::vector<DayRow> days;

  bench::WildSweep sweep{world};
  sweep.set_hourly([&](util::HourBin h, const bench::BinResult& bin) {
    auto count = [&](core::ServiceId s) {
      const auto it = bin.by_service.find(s);
      return it == bin.by_service.end() ? std::size_t{0} : it->second.size();
    };
    hours.push_back({h, count(alexa), count(samsung),
                     bench::other32_count(world, bin)});
  });
  sweep.set_daily([&](util::HourBin start, const bench::BinResult& bin) {
    auto count = [&](core::ServiceId s) {
      const auto it = bin.by_service.find(s);
      return it == bin.by_service.end() ? std::size_t{0} : it->second.size();
    };
    days.push_back({util::day_of(start), count(alexa), count(samsung),
                    bench::other32_count(world, bin),
                    bench::any_count(bin)});
  });
  sweep.run(0, util::kStudyHours);

  util::print_banner(std::cout,
                     "Figure 11(a): subscriber lines with IoT activity per "
                     "hour (population " +
                         util::fmt_count(world.lines()) + ", scale x" +
                         util::fmt_double(scale, 0) + " to paper)");
  util::TextTable ht;
  ht.header({"Hour", "Alexa", "Samsung IoT", "Other 32", "Alexa@15M"});
  for (const auto& row : hours) {
    if (row.hour % 4 != 0) continue;
    ht.row({util::hour_label(row.hour), util::fmt_count(row.alexa),
            util::fmt_count(row.samsung), util::fmt_count(row.other),
            util::fmt_count(
                static_cast<std::uint64_t>(row.alexa * scale))});
  }
  ht.print(std::cout);

  util::print_banner(std::cout,
                     "Figure 11(b): subscriber lines with IoT activity per "
                     "day");
  util::TextTable dt;
  dt.header({"Day", "Alexa", "Samsung IoT", "Other 32", "Any IoT",
             "Alexa@15M", "Samsung@15M", "Any %"});
  for (const auto& row : days) {
    dt.row({util::day_label(row.day), util::fmt_count(row.alexa),
            util::fmt_count(row.samsung), util::fmt_count(row.other),
            util::fmt_count(row.any),
            util::fmt_count(static_cast<std::uint64_t>(row.alexa * scale)),
            util::fmt_count(
                static_cast<std::uint64_t>(row.samsung * scale)),
            util::fmt_percent(double(row.any) / world.lines())});
  }
  dt.print(std::cout);

  // Headline ratios.
  double hour_alexa_mean = 0;
  for (const auto& r : hours) hour_alexa_mean += double(r.alexa);
  hour_alexa_mean /= double(hours.size());
  const double day_alexa_mean =
      days.empty() ? 0 : double(days[0].alexa);
  std::cout << "\nAlexa daily/hourly ratio: "
            << util::fmt_double(day_alexa_mean / hour_alexa_mean, 1)
            << " (paper: roughly 2x); Samsung daily/hourly: "
            << util::fmt_double(
                   double(days[0].samsung) /
                       (std::accumulate(hours.begin(), hours.end(), 0.0,
                                        [](double a, const HourRow& r) {
                                          return a + double(r.samsung);
                                        }) /
                        hours.size()),
                   1)
            << " (paper: ~6x). Paper headline: ~20% of lines show IoT "
               "activity; Alexa penetration ~14%.\n";
  return 0;
}
