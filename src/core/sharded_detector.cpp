#include "core/sharded_detector.hpp"

#include <algorithm>

namespace haystack::core {

ShardedDetector::ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                                 const DetectorConfig& config,
                                 unsigned shards,
                                 std::size_t queue_capacity,
                                 obs::Observability* obs) {
  // Compile the boundary signature index (and the rule-name intern table)
  // once; every producer path resolves hitlist lookups through it.
  sig_index_.build(hitlist, rules, &intern_);
  if (obs != nullptr) {
    sig_lookups_ = obs->registry.counter("signature_lookups_total");
    sig_hits_ = obs->registry.counter("signature_hits_total");
    obs->registry.gauge("intern_table_size")
        ->set(static_cast<std::int64_t>(intern_.size()));
    obs->registry.gauge("signature_endpoints")
        ->set(static_cast<std::int64_t>(sig_index_.endpoint_count()));
  }

  const unsigned n = std::max(1u, shards);
  missed_ = std::make_unique<PaddedCount[]>(n);
  pending_.resize(n);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Detector>(hitlist, rules, config));
    if (obs != nullptr) {
      // Per-shard counter/gauge series so hot increments never share a
      // cache line across shards; the time-to-detection histogram is one
      // series (detection transitions are rare).
      const obs::Labels shard_labels{{"shard", std::to_string(s)}};
      DetectorInstruments inst;
      inst.flows = obs->registry.counter("detector_flows_total", shard_labels);
      inst.matched =
          obs->registry.counter("detector_matched_total", shard_labels);
      inst.rules_satisfied =
          obs->registry.counter("detector_rules_satisfied_total", shard_labels);
      inst.evidence_entries =
          obs->registry.gauge("detector_evidence_entries", shard_labels);
      inst.time_to_detection_hours =
          obs->registry.histogram("detector_time_to_detection_hours");
      inst.recorder = &obs->recorder;
      inst.source = s;
      shards_.back()->set_instruments(std::move(inst));
    }
  }
  // Persistent workers: one long-lived thread per shard, consuming that
  // shard's chunk queue. The handler runs on worker s and touches only
  // shards_[s], so the hot path stays lock-free on evidence state.
  pipeline::ShardPoolConfig pool_config{.shards = n,
                                        .queue_capacity = queue_capacity,
                                        .max_wave = 64};
  if (obs != nullptr) {
    // One wave-span series per shard: wave records happen on every worker
    // wake-up, so a single shared histogram would put all workers on the
    // same atomic cache lines — measured at >15% streaming-bench overhead
    // at 8 shards versus ~1% with per-shard series.
    detect_wave_ns_.reserve(n);
    detect_wave_items_.reserve(n);
    pool_config.wave_ns_by_shard.reserve(n);
    pool_config.wave_items_by_shard.reserve(n);
    for (unsigned s = 0; s < n; ++s) {
      const obs::Labels stage{{"shard", std::to_string(s)},
                              {"stage", obs::stage_name(obs::kStageDetect)}};
      detect_wave_ns_.push_back(
          obs->registry.histogram("stage_wave_ns", stage));
      detect_wave_items_.push_back(
          obs->registry.histogram("stage_wave_items", stage));
      pool_config.wave_ns_by_shard.push_back(detect_wave_ns_.back().get());
      pool_config.wave_items_by_shard.push_back(
          detect_wave_items_.back().get());
    }
    pool_config.recorder = &obs->recorder;
    pool_config.stage_tag = obs::kStageDetect;
  }
  pool_ = std::make_unique<pipeline::ShardPool<Chunk>>(
      pool_config,
      [this](unsigned s, std::vector<Chunk>& wave) {
        Detector& det = *shards_[s];
        std::uint64_t flows = 0;
        std::uint64_t matched = 0;
        // Evidence slots for distinct subscribers are effectively random
        // lines in a table far larger than cache, so the apply loop is
        // memory-latency-bound; prefetching a few items ahead overlaps
        // those misses.
        constexpr std::size_t kAhead = 8;
        for (const Chunk& chunk : wave) {
          flows += chunk.size();
          const std::size_t count = chunk.size();
          for (std::size_t i = 0; i < count; ++i) {
            if (i + kAhead < count) {
              const InternedObs& ahead = chunk[i + kAhead];
              det.prefetch_evidence(ahead.subscriber, ahead.sig);
            }
            const InternedObs& o = chunk[i];
            matched += det.observe_interned_uncounted(o.subscriber, o.sig,
                                                      o.packets, o.hour)
                           ? 1U
                           : 0U;
          }
        }
        det.add_observation_counts(flows, matched);
      });
}

ShardedDetector::~ShardedDetector() {
  flush_pending();
  pool_->stop();
}

void ShardedDetector::flush_pending() const {
  std::lock_guard lock{pending_mu_};
  for (std::size_t s = 0; s < pending_.size(); ++s) {
    if (pending_[s].empty()) continue;
    Chunk chunk = std::move(pending_[s]);
    pending_[s] = Chunk{};
    pool_->submit(static_cast<unsigned>(s), std::move(chunk));
  }
}

void ShardedDetector::observe(const Observation& obs) {
  std::uint64_t hits = 0;
  const InternedObs interned = intern_obs(obs, hits);
  bump_sig_counters(1, hits);
  const auto s = shard_of(obs.subscriber);
  if (interned.sig == kNoSig) {
    // Boundary miss filter: a miss only ever bumps the flow counter, so
    // fold it into the shard's miss tally instead of waking its worker.
    count_misses(s, 1);
    return;
  }
  std::lock_guard lock{pending_mu_};
  pending_[s].push_back(interned);
  if (pending_[s].size() >= kCoalesceItems) {
    Chunk full = std::move(pending_[s]);
    pending_[s] = Chunk{};
    pending_[s].reserve(kCoalesceItems);
    // Submit under the mutex: every shard-queue submission happens with
    // pending_mu_ held, so submissions occur in append order and a
    // concurrent flush_pending() can never overtake a full-chunk submit
    // for the same subscriber. Workers never take pending_mu_, so a
    // backpressure block here still makes progress.
    pool_->submit(static_cast<unsigned>(s), std::move(full));
  }
}

void ShardedDetector::enqueue_batch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  std::uint64_t hits = 0;
  std::vector<std::uint64_t> misses(n, 0);
  // Partition preserving per-subscriber order, filtering misses at the
  // boundary (they carry no evidence — only a flow count) and coalescing
  // the matching minority into the per-shard pending chunks. Queue
  // traffic is then proportional to kCoalesceItems flushes, not to
  // producer chunk boundaries, and on wild traffic — where roughly half
  // the flows miss the hitlist — the shard queues carry only matches.
  {
    std::lock_guard lock{pending_mu_};
    for (const auto& obs : batch) {
      const InternedObs interned = intern_obs(obs, hits);
      const auto s = shard_of(obs.subscriber);
      if (interned.sig == kNoSig) {
        ++misses[s];
        continue;
      }
      pending_[s].push_back(interned);
      if (pending_[s].size() >= kCoalesceItems) {
        Chunk full = std::move(pending_[s]);
        pending_[s] = Chunk{};
        pending_[s].reserve(kCoalesceItems);
        // Under the mutex (see observe()): submissions stay in append
        // order relative to concurrent producers and flush_pending().
        pool_->submit(static_cast<unsigned>(s), std::move(full));
      }
    }
  }
  bump_sig_counters(batch.size(), hits);
  for (std::size_t s = 0; s < n; ++s) count_misses(s, misses[s]);
}

void ShardedDetector::enqueue_interned(std::span<const InternedObs> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  std::uint64_t hits = 0;
  std::vector<std::uint64_t> misses(n, 0);
  {
    std::lock_guard lock{pending_mu_};
    for (const auto& o : batch) {
      const auto s = shard_of(o.subscriber);
      if (o.sig == kNoSig) {
        ++misses[s];
        continue;
      }
      hits += 1;
      pending_[s].push_back(o);
      if (pending_[s].size() >= kCoalesceItems) {
        Chunk full = std::move(pending_[s]);
        pending_[s] = Chunk{};
        pending_[s].reserve(kCoalesceItems);
        pool_->submit(static_cast<unsigned>(s), std::move(full));
      }
    }
  }
  bump_sig_counters(batch.size(), hits);
  for (std::size_t s = 0; s < n; ++s) count_misses(s, misses[s]);
}

void ShardedDetector::process_batch(std::span<const Observation> batch) {
  enqueue_batch(batch);
  drain();
}

void ShardedDetector::drain() const {
  flush_pending();
  pool_->drain();
}

bool ShardedDetector::detected(SubscriberKey subscriber,
                               ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detected(subscriber, service);
}

std::optional<util::HourBin> ShardedDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detection_hour(subscriber, service);
}

Verdict ShardedDetector::verdict(SubscriberKey subscriber,
                                 ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->verdict(subscriber, service);
}

void ShardedDetector::set_observed_loss(double fraction) noexcept {
  drain();
  for (const auto& shard : shards_) shard->set_observed_loss(fraction);
}

void ShardedDetector::restore_evidence(SubscriberKey subscriber,
                                       ServiceId service,
                                       const Evidence& evidence) {
  drain();
  shards_[shard_of(subscriber)]->restore_evidence(subscriber, service,
                                                  evidence);
}

void ShardedDetector::restore_stats(const Detector::Stats& stats) {
  drain();
  shards_[0]->restore_stats(stats);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->restore_stats({});
  }
  // The restored totals already include any boundary-filtered misses.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    missed_[s].v.store(0, std::memory_order_relaxed);
  }
}

void ShardedDetector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  drain();
  for (const auto& shard : shards_) shard->for_each_evidence(fn);
}

void ShardedDetector::clear() {
  drain();
  for (const auto& shard : shards_) shard->clear();
}

Detector::Stats ShardedDetector::stats() const {
  drain();
  Detector::Stats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total.flows += shards_[s]->stats().flows +
                   missed_[s].v.load(std::memory_order_relaxed);
    total.matched += shards_[s]->stats().matched;
  }
  return total;
}

telemetry::StageStats ShardedDetector::shard_queue_stats(
    unsigned shard) const {
  return pool_->stats(shard);
}

}  // namespace haystack::core
