// Deterministic in-tree fuzz driver for the wire codecs (ISSUE 1).
//
// Each fuzz target (fuzz_netflow_v9, fuzz_ipfix, fuzz_dns_wire) supplies a
// corpus of *valid* encoded packets, an optional structure-aware mutation
// (length-field corruption at real offsets, template-ID swaps, compression
// pointer injection, ...), and a `check` callback that feeds the bytes to
// the decoder under test and returns false when a correctness property is
// violated. The harness derives one Pcg32 per iteration from (seed,
// iteration), so any failure reproduces from the printed command line
// alone:
//
//     fuzz_netflow_v9 --seed 42 --only-iteration 1234
//
// replays exactly the failing input. Crashes and out-of-bounds reads are
// the sanitizers' department: the same binaries run unchanged under
// HAYSTACK_SANITIZE=address,undefined (tests/run_sanitizers.sh).
//
// When HAYSTACK_FUZZ=ON and the compiler is Clang, the targets are also
// built as libFuzzer binaries (fuzz_*_libfuzzer) whose entry point feeds
// arbitrary coverage-guided input into the same `check`.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace haystack::fuzz {

using Bytes = std::vector<std::uint8_t>;

/// Command-line configuration for a fuzz run.
struct FuzzConfig {
  std::uint64_t iterations = 10'000;
  std::uint64_t seed = 1;
  /// When >= 0, run exactly this one iteration (failure reproduction).
  std::int64_t only_iteration = -1;
};

/// Parses --iterations N, --seed S, --only-iteration K. Unknown arguments
/// abort with usage, so a typo cannot silently shrink coverage.
[[nodiscard]] FuzzConfig parse_args(int argc, char** argv);

/// Structure-blind mutation: applies 1..4 random edits (bit flips, byte
/// stores, 16-bit big-endian field corruption, truncation, extension,
/// region duplication, byte swaps) to `data` in place.
void mutate(Bytes& data, util::Pcg32& rng);

/// Runs the fuzz loop. Per iteration: pick a corpus entry, apply the
/// target's structure-aware mutation and/or the generic mutator, call
/// `check`. Returns the process exit code (0 on success); on failure
/// prints the reproduction command line for the failing iteration.
///
/// `structure_mutate` may be empty; `check` must return true when the
/// decoder behaved correctly (clean accept or clean reject — never a
/// crash, which the harness cannot catch and the sanitizers turn into an
/// abort with a report).
[[nodiscard]] int run_fuzz(
    const std::string& name, const FuzzConfig& config,
    const std::vector<Bytes>& corpus,
    const std::function<void(Bytes&, util::Pcg32&)>& structure_mutate,
    const std::function<bool(std::span<const std::uint8_t>)>& check);

}  // namespace haystack::fuzz
