// Streaming scan: the scenario_scan workflow through the deployment-shape
// streaming pipeline. One day of wild ISP traffic is exported by a border
// fleet as real NetFlow v9 datagrams (options announcements, impairment,
// the lot) and pushed into pipeline::IngestPipeline — concurrent decode /
// normalize / detect stages over bounded backpressured queues — then the
// per-stage telemetry and detection table are printed.
//
// Usage: streaming_scan <scenario-file> [hours] [--metrics] [--flight N]
//
//   --metrics    print the full Prometheus scrape of the run's registry
//   --flight N   print the last N flight-recorder events (default 10)
//
// Scenario keys shaping the pipeline itself:
//   pipeline_shards 8
//   pipeline_queue 1024
//   pipeline_wave 64
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/flight_recorder.hpp"
#include "pipeline/scenario_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  if (argc < 2) {
    std::cerr << "usage: streaming_scan <scenario-file> [hours]\n";
    return 2;
  }
  std::ifstream file{argv[1]};
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::string error;
  const auto scenario = simnet::parse_scenario(file, &error);
  if (!scenario) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  pipeline::StreamingReplayConfig config;
  bool show_metrics = false;
  std::size_t flight_tail = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      show_metrics = true;
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight_tail = 10;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        flight_tail = static_cast<std::size_t>(std::atoi(argv[++i]));
      }
    } else if (std::atoi(argv[i]) > 0) {
      config.hours = static_cast<unsigned>(std::atoi(argv[i]));
    }
  }
  const auto result =
      pipeline::replay_scenario_streaming(*scenario, config, &error);
  if (!result) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  const auto& st = result->stats;
  std::cout << "Streamed " << util::fmt_count(result->datagrams)
            << " export datagrams (" << util::fmt_count(st.flows_decoded)
            << " flows, " << util::fmt_count(result->observations)
            << " observations) through "
            << st.detect_shards.size() << " detector shards over "
            << config.hours << " hours\n\n";

  util::TextTable stages;
  stages.header({"Stage", "Items", "Waves", "Max depth", "Prod stalls",
                 "Cons stalls"});
  const auto stage_row = [&](const char* name,
                             const telemetry::StageStats& s) {
    stages.row({name, util::fmt_count(s.dequeued), util::fmt_count(s.waves),
                util::fmt_count(s.max_depth),
                util::fmt_count(s.producer_stalls),
                util::fmt_count(s.consumer_stalls)});
  };
  stage_row("decode", st.decode);
  stage_row("normalize", st.normalize);
  stage_row("detect (all shards)", st.detect);
  stages.print(std::cout);
  if (st.malformed_datagrams > 0 || st.unknown_version > 0) {
    std::cout << "Malformed: " << st.malformed_datagrams
              << ", unknown version: " << st.unknown_version << "\n";
  }

  std::cout << "\n";
  util::TextTable table;
  table.header({"Service", "Subscribers detected"});
  for (const auto& [name, count] : result->per_service) {
    table.row({name, util::fmt_count(count)});
  }
  table.print(std::cout);
  std::cout << "\nSubscribers with any IoT activity: "
            << util::fmt_count(result->subscribers_detected) << "\n";

  if (!result->self_check.ok) {
    std::cerr << "\nSELF-CHECK FAILED: " << result->self_check.detail << "\n";
  }
  if (flight_tail > 0) {
    const auto& events = result->flight_events;
    const std::size_t n = std::min(flight_tail, events.size());
    std::cout << "\nFlight recorder (last " << n << " of " << events.size()
              << " events):\n";
    for (std::size_t i = events.size() - n; i < events.size(); ++i) {
      const auto& e = events[i];
      std::cout << "  #" << e.seq << " h" << e.hour << " "
                << obs::event_name(e.kind) << " source=" << e.source
                << " a=" << e.a << " b=" << e.b << "\n";
    }
  }
  if (show_metrics) {
    std::cout << "\n# Prometheus scrape of the run\n"
              << result->metrics_prometheus;
  }
  return result->self_check.ok ? 0 : 1;
}
