// Tests for the NetFlow v5 codec: fixed-format round trip, header sampling
// propagation, IPv6 rejection, sequence tracking, malformed input.
#include <gtest/gtest.h>

#include <span>

#include "flow/netflow_v5.hpp"
#include "util/rng.hpp"

namespace haystack::flow::nf5 {
namespace {

FlowRecord make_record(std::uint32_t salt) {
  FlowRecord rec;
  rec.key.src = net::IpAddress::v4(0x64400000 + salt);
  rec.key.dst = net::IpAddress::v4(0x8C000000 + salt);
  rec.key.src_port = static_cast<std::uint16_t>(40000 + salt);
  rec.key.dst_port = 443;
  rec.key.proto = 6;
  rec.tcp_flags = 0x1b;
  rec.packets = 5 + salt;
  rec.bytes = 500 + salt;
  rec.start_ms = salt * 100;
  rec.end_ms = salt * 100 + 50;
  rec.sampling = 1000;
  return rec;
}

TEST(NetFlowV5Test, RoundtripWithSampling) {
  Exporter exporter{{.engine_id = 3, .sampling = 1000}};
  Collector collector;
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 75; ++i) input.push_back(make_record(i));

  std::vector<FlowRecord> output;
  const auto packets = exporter.export_flows(input, 1574000000);
  // 75 records at 30/packet = 3 packets.
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].size(), kHeaderBytes + 30 * kRecordBytes);
  for (const auto& packet : packets) {
    EXPECT_TRUE(collector.ingest(packet, output));
  }
  ASSERT_EQ(output.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(output[i].key, input[i].key);
    EXPECT_EQ(output[i].packets, input[i].packets);
    EXPECT_EQ(output[i].bytes, input[i].bytes);
    EXPECT_EQ(output[i].tcp_flags, input[i].tcp_flags);
    // The per-record sampling comes from the header.
    EXPECT_EQ(output[i].sampling, 1000u);
  }
  EXPECT_EQ(collector.stats().sequence_gaps, 0u);
}

TEST(NetFlowV5Test, Ipv6RecordsAreSkippedAndCounted) {
  Exporter exporter{{}};
  FlowRecord v6 = make_record(1);
  v6.key.src = net::IpAddress::v6(1, 2);
  const auto packets = exporter.export_flows(std::vector{v6}, 1);
  EXPECT_TRUE(packets.empty());
  EXPECT_EQ(exporter.skipped_ipv6(), 1u);
}

TEST(NetFlowV5Test, SequenceGapDetected) {
  Exporter exporter{{}};
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 90; ++i) input.push_back(make_record(i));
  const auto packets = exporter.export_flows(input, 1);
  ASSERT_EQ(packets.size(), 3u);
  Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(packets[0], out));
  EXPECT_TRUE(collector.ingest(packets[2], out));  // packet 1 lost
  EXPECT_EQ(collector.stats().sequence_gaps, 1u);
}

TEST(NetFlowV5Test, MalformedRejected) {
  Collector collector;
  std::vector<FlowRecord> out;
  // Truncated header.
  std::vector<std::uint8_t> junk(10, 0);
  EXPECT_FALSE(collector.ingest(junk, out));
  // Count/size mismatch.
  std::vector<std::uint8_t> bad(kHeaderBytes + kRecordBytes, 0);
  bad[1] = 5;   // version
  bad[3] = 7;   // claims 7 records but carries 1
  EXPECT_FALSE(collector.ingest(bad, out));
  EXPECT_EQ(collector.stats().malformed_packets, 2u);
}

TEST(NetFlowV5Test, EveryPrefixTruncationRejected) {
  // v5 is fixed-format: the header's record count must match the byte count
  // exactly, so every strict prefix of a valid packet is malformed.
  Exporter exporter{{.engine_id = 2, .sampling = 100}};
  std::vector<FlowRecord> input{make_record(0), make_record(1),
                                make_record(2)};
  const auto packets = exporter.export_flows(input, 1574000000);
  ASSERT_EQ(packets.size(), 1u);
  const auto& full = packets[0];
  Collector collector;
  std::vector<FlowRecord> out;
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{full.data(), cut};
    EXPECT_FALSE(collector.ingest(prefix, out)) << "prefix length " << cut;
    EXPECT_TRUE(out.empty());
  }
  EXPECT_EQ(collector.stats().malformed_packets, full.size());
  // The untruncated packet still decodes on the same collector.
  EXPECT_TRUE(collector.ingest(full, out));
  EXPECT_EQ(out.size(), input.size());
}

TEST(NetFlowV5Test, DeterministicGarbageRejected) {
  // Random byte blobs (fixed seed) must be rejected cleanly and accounted.
  Collector collector;
  std::vector<FlowRecord> out;
  util::Pcg32 rng{0x5eed, 5};
  std::uint64_t rejected = 0;
  for (std::uint32_t size = 0; size < 160; size += 7) {
    std::vector<std::uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.bounded(256));
    if (!collector.ingest(blob, out)) ++rejected;
    out.clear();
  }
  EXPECT_EQ(collector.stats().malformed_packets, rejected);
  EXPECT_GT(rejected, 0u);
}

TEST(NetFlowV5Test, UnsampledHeaderYieldsIntervalOne) {
  Exporter exporter{{.engine_id = 1, .sampling = 1}};
  Collector collector;
  std::vector<FlowRecord> out;
  std::vector<FlowRecord> input{make_record(0)};
  for (const auto& p : exporter.export_flows(input, 1)) {
    collector.ingest(p, out);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sampling, 1u);
}

}  // namespace
}  // namespace haystack::flow::nf5
