// Integration tests over the wild simulations: ISP-scale detection rates
// (Fig. 11 shapes) and the IXP pipeline (Figs. 15/16 shapes).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ixp.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace haystack {
namespace {

class WildPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    ruleset_ = new core::RuleSet(simnet::build_ruleset(*backend_));
    rates_ = new simnet::DomainRateModel(*catalog_, 7);
    population_ = new simnet::Population(*catalog_, {.lines = 60'000});
    wild_ = new simnet::WildIspSim(*backend_, *population_, *rates_,
                                   simnet::WildIspConfig{});
  }
  static void TearDownTestSuite() {
    delete wild_;
    delete population_;
    delete rates_;
    delete ruleset_;
    delete backend_;
    delete catalog_;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static core::RuleSet* ruleset_;
  static simnet::DomainRateModel* rates_;
  static simnet::Population* population_;
  static simnet::WildIspSim* wild_;
};

simnet::Catalog* WildPipeline::catalog_ = nullptr;
simnet::Backend* WildPipeline::backend_ = nullptr;
core::RuleSet* WildPipeline::ruleset_ = nullptr;
simnet::DomainRateModel* WildPipeline::rates_ = nullptr;
simnet::Population* WildPipeline::population_ = nullptr;
simnet::WildIspSim* WildPipeline::wild_ = nullptr;

TEST_F(WildPipeline, DailyDetectionRatesMatchFig11Shapes) {
  core::Detector det{ruleset_->hitlist, *ruleset_, {.threshold = 0.4}};
  for (util::HourBin h = 0; h < 24; ++h) {
    wild_->hour_observations(h, [&](const simnet::WildObs& o) {
      det.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                  o.flow.packets, h);
    });
  }
  std::map<core::ServiceId, std::size_t> daily;
  std::set<core::SubscriberKey> any;
  det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                            const core::Evidence&) {
    if (det.detected(s, sv)) {
      ++daily[sv];
      any.insert(s);
    }
  });
  const double n = population_->line_count();
  const auto frac = [&](const char* name) {
    const auto* rule = ruleset_->rule_by_name(name);
    return daily.count(rule->service)
               ? static_cast<double>(daily.at(rule->service)) / n
               : 0.0;
  };
  // Paper (of 15M lines): Alexa ~14%, Amazon below Alexa, Fire TV below
  // Amazon, Samsung IoT ~6.7%, Samsung TV below Samsung IoT.
  EXPECT_NEAR(frac("Alexa Enabled"), 0.14, 0.05);
  EXPECT_NEAR(frac("Samsung IoT"), 0.067, 0.03);
  EXPECT_LT(frac("Amazon Product"), frac("Alexa Enabled"));
  EXPECT_LT(frac("Fire TV"), frac("Amazon Product"));
  EXPECT_LT(frac("Samsung TV"), frac("Samsung IoT"));
  EXPECT_GT(frac("Fire TV"), 0.0);
  // ~20% of lines show IoT activity.
  EXPECT_NEAR(static_cast<double>(any.size()) / n, 0.20, 0.10);
}

TEST_F(WildPipeline, HourlyCountsLowerThanDailyWithDiurnalSwing) {
  // Fig. 11(a): hourly counts are much lower than daily; entertainment
  // devices (Alexa) swing with the diurnal pattern.
  const auto* alexa = ruleset_->rule_by_name("Alexa Enabled");
  const auto* samsung = ruleset_->rule_by_name("Samsung IoT");
  auto hourly_count = [&](util::HourBin h, const core::DetectionRule* r) {
    core::Detector det{ruleset_->hitlist, *ruleset_, {.threshold = 0.4}};
    wild_->hour_observations(h, [&](const simnet::WildObs& o) {
      det.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                  o.flow.packets, h);
    });
    std::size_t count = 0;
    det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                              const core::Evidence&) {
      if (sv == r->service && det.detected(s, sv)) ++count;
    });
    return count;
  };
  const std::size_t alexa_night = hourly_count(4, alexa);    // 04:00
  const std::size_t alexa_evening = hourly_count(19, alexa); // 19:00
  EXPECT_GT(alexa_evening, alexa_night);
  // Significant night baseline remains (idle keep-alives), Sec. 6.2.
  EXPECT_GT(alexa_night,
            static_cast<std::size_t>(0.3 * alexa_evening));
  // Samsung hourly counts are far below Alexa's (daily aggregation is what
  // rescues Samsung, Sec. 6.2).
  EXPECT_LT(hourly_count(19, samsung), alexa_evening / 2);
}

TEST_F(WildPipeline, ObservationsCarryConsistentLabels) {
  std::size_t checked = 0;
  std::size_t v6_flows = 0;
  wild_->hour_observations(10, [&](const simnet::WildObs& o) {
    if (++checked > 2000) return;
    // Destination must belong to the labeled domain's hosting that day
    // (IPv4 daily set, or the stable AAAA set for dual-stack lines).
    const auto& ips = backend_->ips_of(o.unit, o.domain_index, 0);
    const auto& ips6 = backend_->ips6_of(o.unit, o.domain_index);
    const bool in_v4 =
        std::find(ips.begin(), ips.end(), o.flow.key.dst) != ips.end();
    const bool in_v6 =
        std::find(ips6.begin(), ips6.end(), o.flow.key.dst) != ips6.end();
    EXPECT_TRUE(in_v4 || in_v6);
    EXPECT_EQ(o.flow.sampling, 1000u);
    EXPECT_GE(o.flow.packets, 1u);
    if (o.flow.key.src.is_v6()) {
      ++v6_flows;
      EXPECT_TRUE(in_v6);
      EXPECT_EQ(o.flow.key.src, population_->address6_of(o.line));
    } else {
      EXPECT_EQ(o.subscriber, population_->address_of(o.line, 0));
    }
  });
  EXPECT_GT(checked, 100u);
  EXPECT_GT(v6_flows, 0u);  // dual-stack traffic exists
}

TEST(IxpPipeline, DailyCountsShowEyeballSkew) {
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIxpSim ixp{backend, rates,
                         {.eyeball_households = 20'000}};

  std::map<net::Asn, std::set<net::IpAddress>> per_as;
  std::set<net::IpAddress> alexa_ips;
  std::set<net::IpAddress> samsung_ips;
  const auto* alexa = catalog.unit_by_name("Alexa Enabled");
  const auto* samsung = catalog.unit_by_name("Samsung IoT");
  ixp.day_observations(0, [&](const simnet::IxpObs& o) {
    per_as[o.member].insert(o.device_ip);
    if (o.unit == alexa->id) alexa_ips.insert(o.device_ip);
    if (o.unit == samsung->id) samsung_ips.insert(o.device_ip);
    EXPECT_EQ(o.flow.sampling, 10'000u);
  });

  // Alexa devices outnumber Samsung at the IXP (Fig. 15: ~200k vs ~90k).
  EXPECT_GT(alexa_ips.size(), samsung_ips.size());
  EXPECT_GT(samsung_ips.size(), 0u);

  // Skew: the top AS holds a large share; a long tail exists (Fig. 16).
  std::vector<std::size_t> counts;
  for (const auto& [asn, ips] : per_as) counts.push_back(ips.size());
  std::sort(counts.rbegin(), counts.rend());
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  ASSERT_GT(counts.size(), 10u);
  EXPECT_GT(static_cast<double>(counts[0]) / total, 0.10);
  // Non-eyeball members contribute a tail of small counts.
  EXPECT_GT(std::count(counts.begin(), counts.end(), counts.back()), 0);
}

TEST(IxpPipeline, RoutingAsymmetryHidesSomeBackends) {
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIxpSim visible{backend, rates,
                             {.eyeball_households = 5'000,
                              .cross_ixp_probability = 1.0}};
  simnet::WildIxpSim hidden{backend, rates,
                            {.eyeball_households = 5'000,
                             .cross_ixp_probability = 0.0}};
  std::size_t visible_count = 0;
  std::size_t hidden_count = 0;
  visible.day_observations(0,
                           [&](const simnet::IxpObs&) { ++visible_count; });
  hidden.day_observations(0,
                          [&](const simnet::IxpObs&) { ++hidden_count; });
  EXPECT_GT(visible_count, 0u);
  EXPECT_EQ(hidden_count, 0u);
}

}  // namespace
}  // namespace haystack
