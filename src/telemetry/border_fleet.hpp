// Multi-router ISP border fleet.
//
// The paper's ISP "uses NetFlow to monitor the traffic flows at all border
// routers in its network, using a consistent sampling rate across all
// routers". This models that deployment faithfully: N border routers, each
// an independent NetFlow v9 exporter with its own source id and template
// state, each announcing its sampling configuration via options data
// (RFC 3954 §6.1). Flows hash onto routers by destination (routing is
// destination-based); the central collector merges the export streams,
// learns per-source sampling from the announcements, and stamps decoded
// records accordingly — the real provenance chain for the sampling rate
// the methodology depends on.
//
// The export path is UDP, so the fleet optionally runs every router's
// stream through a seeded flow::ImpairedLink (drop/duplicate/reorder/
// truncate) and can kill-and-restart one exporter mid-study (ISSUE 2).
// The collector side absorbs all of it: duplicates are suppressed,
// reordered datagrams decode via buffered templates, restarts reset
// template state, and per-source loss estimates surface through the
// hourly loss series.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flow/impairment.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/options.hpp"
#include "flow/sampler.hpp"
#include "obs/observability.hpp"
#include "simnet/ground_truth.hpp"
#include "telemetry/counters.hpp"
#include "util/rng.hpp"

namespace haystack::telemetry {

/// Fleet configuration.
struct BorderFleetConfig {
  std::uint64_t seed = 2022;
  unsigned routers = 4;
  /// Consistent 1-in-N sampling across the fleet (the paper's setup).
  std::uint32_t sampling = 1000;
  /// Announce sampling via options data every `announce_every` hours.
  unsigned announce_every = 4;
  /// When set, every router's export path runs through an ImpairedLink
  /// seeded from (impairment->seed, router index).
  std::optional<flow::ImpairmentConfig> impairment;
  /// When set, this router's exporter process is killed and restarted at
  /// the start of `restart_hour`: its sequence counter resets and its
  /// templates are re-announced, exactly like a rebooted border router.
  std::optional<unsigned> restart_router;
  util::HourBin restart_hour = 0;
  /// Observability sink (ISSUE 5). When set, the central collector records
  /// restart/gap/replay/park/recover flight events, the fleet records its
  /// own scheduled restarts, and the registry carries fleet loss/delivery
  /// accounting (fleet_estimated_loss_ppm, fleet_exported_datagrams_total,
  /// fleet_unlabeled_records_total, fleet_restarts_total).
  obs::Observability* obs = nullptr;
};

/// The fleet plus its central collector.
class BorderRouterFleet {
 public:
  explicit BorderRouterFleet(const BorderFleetConfig& config);

  /// Processes one hour of traffic: routes each flow to its border router,
  /// samples, exports NetFlow v9 (with periodic options announcements),
  /// passes the datagrams through the (possibly impaired) export path,
  /// ingests everything at the central collector, and returns the decoded
  /// surviving flows with labels re-attached by flow key.
  [[nodiscard]] std::vector<simnet::LabeledFlow> observe(
      const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour);

  /// Wire-side twin of observe() for the streaming pipeline: routes,
  /// samples, and exports one hour of flow records, returning the raw
  /// NetFlow v9 datagrams in delivery order (options announcements first,
  /// then per-router data, post-impairment) instead of ingesting them at
  /// the fleet's own collector. Feed the result to an external collector
  /// such as pipeline::IngestPipeline::push_datagram. Restart scheduling,
  /// announcement cadence, sampling, and impairment behave exactly as in
  /// observe(); don't interleave the two entry points on one instance —
  /// they share exporter sequence state.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_hour(
      const std::vector<flow::FlowRecord>& records, util::HourBin hour);

  /// Sampling state the collector learned from options announcements.
  [[nodiscard]] const flow::nf9::SamplingRegistry& sampling()
      const noexcept {
    return sampling_;
  }

  /// Data-path statistics of the central collector.
  [[nodiscard]] const flow::nf9::CollectorStats& collector_stats()
      const noexcept {
    return collector_.stats();
  }

  /// The central collector (per-source health, pending buffers).
  [[nodiscard]] const flow::nf9::Collector& collector() const noexcept {
    return collector_;
  }

  /// Aggregate datagram impairment accounting across all router links.
  /// Zeroes when no impairment is configured.
  [[nodiscard]] flow::ImpairmentStats impairment_stats() const;

  /// Collector-side estimated export-datagram loss fraction.
  [[nodiscard]] double estimated_loss() const {
    return collector_.estimated_loss();
  }

  /// Estimated loss per observed hour (telemetry series, ISSUE 2).
  [[nodiscard]] const HourlySeries& loss_series() const noexcept {
    return loss_series_;
  }

  /// Decoded records that matched no pending label by flow key (possible
  /// under heavy duplication beyond the suppression window).
  [[nodiscard]] std::uint64_t unlabeled_records() const noexcept {
    return unlabeled_records_;
  }

  /// Exporter restarts performed (0 or 1 per configuration).
  [[nodiscard]] unsigned restarts_performed() const noexcept {
    return restarts_performed_;
  }

  /// Router a destination address is handled by.
  [[nodiscard]] unsigned router_of(const net::IpAddress& dst) const;

  [[nodiscard]] const BorderFleetConfig& config() const noexcept {
    return config_;
  }

 private:
  void maybe_restart(util::HourBin hour, std::uint32_t unix_secs);
  /// Options packets due this hour (empty off-cadence).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> announcements(
      util::HourBin hour, std::uint32_t unix_secs);
  /// Export → (impaired) link for one router; datagrams in delivery order.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_router(
      unsigned router, const std::vector<flow::FlowRecord>& records,
      std::uint32_t unix_secs);

  /// Mirrors an hour's loss estimate into the registry gauge (ppm).
  void note_loss(util::HourBin hour);

  BorderFleetConfig config_;
  std::vector<flow::nf9::Exporter> exporters_;
  std::vector<flow::ImpairedLink> links_;  ///< empty without impairment
  flow::nf9::Collector collector_;
  flow::nf9::SamplingRegistry sampling_;
  HourlySeries loss_series_;
  std::uint32_t announce_sequence_ = 0;
  std::uint64_t unlabeled_records_ = 0;
  unsigned restarts_performed_ = 0;
  // Registry handles; null when no Observability was configured.
  std::shared_ptr<obs::Counter> exported_datagrams_;
  std::shared_ptr<obs::Counter> unlabeled_metric_;
  std::shared_ptr<obs::Counter> restarts_metric_;
  std::shared_ptr<obs::Gauge> loss_ppm_;
};

}  // namespace haystack::telemetry
