#include "tlscert/scan_db.hpp"

#include <algorithm>

namespace haystack::tlscert {

void CertScanDb::add(ScanObservation obs) {
  const std::size_t index = observations_.size();
  by_ip_[obs.ip].push_back(index);
  by_fingerprint_[obs.cert.fingerprint()].push_back(index);
  observations_.push_back(std::move(obs));
}

std::optional<ScanObservation> CertScanDb::observation_for(
    const net::IpAddress& ip, ScanWindow window) const {
  const auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  for (const std::size_t index : it->second) {
    if (overlaps(observations_[index], window)) return observations_[index];
  }
  return std::nullopt;
}

std::vector<net::IpAddress> CertScanDb::ips_serving_domain(
    const dns::Fqdn& domain, std::uint64_t banner_checksum,
    ScanWindow window) const {
  std::vector<net::IpAddress> out;
  for (const auto& obs : observations_) {
    if (!overlaps(obs, window) || obs.banner_checksum != banner_checksum) {
      continue;
    }
    if (matches_domain(obs.cert, domain)) out.push_back(obs.ip);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<net::IpAddress> CertScanDb::ips_with_fingerprint(
    std::uint64_t fingerprint, std::uint64_t banner_checksum,
    ScanWindow window) const {
  std::vector<net::IpAddress> out;
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return out;
  for (const std::size_t index : it->second) {
    const auto& obs = observations_[index];
    if (overlaps(obs, window) && obs.banner_checksum == banner_checksum) {
      out.push_back(obs.ip);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace haystack::tlscert
