#include "vantage/fleet.hpp"

#include <algorithm>

namespace haystack::vantage {

namespace {

AggregatorConfig aggregator_config(const FleetConfig& config) {
  AggregatorConfig acfg;
  acfg.detector = config.detector;
  acfg.reorder_window = config.reorder_window;
  acfg.stale_after = config.stale_after;
  return acfg;
}

}  // namespace

Fleet::Fleet(const core::Hitlist& hitlist, const core::RuleSet& rules,
             const FleetConfig& config, obs::Observability* obs)
    : hitlist_{hitlist},
      rules_{rules},
      config_{config},
      obs_{obs},
      aggregator_{hitlist, rules, aggregator_config(config), obs},
      ack_rng_{util::splitmix64(config.seed ^ 0xac4cULL), config.seed} {
  config_.collectors = std::max(1U, config_.collectors);
}

std::unique_ptr<Collector> Fleet::make_collector(unsigned id) {
  CollectorConfig ccfg;
  ccfg.id = id;
  ccfg.detector = config_.detector;
  ccfg.initial_backoff = config_.initial_backoff;
  ccfg.max_backoff = config_.max_backoff;
  return std::make_unique<Collector>(hitlist_, rules_, ccfg, obs_);
}

void Fleet::start(util::HourBin first_hour) {
  collectors_.reserve(config_.collectors);
  links_.reserve(config_.collectors);
  spool_.resize(config_.collectors);
  for (unsigned id = 0; id < config_.collectors; ++id) {
    collectors_.push_back(make_collector(id));
    if (config_.delta_impairment) {
      flow::ImpairmentConfig link_cfg = *config_.delta_impairment;
      // Independent fault schedule per delta channel.
      link_cfg.seed =
          util::splitmix64(link_cfg.seed + 0x636f6cULL * (id + 1U));
      links_.push_back(std::make_unique<flow::ImpairedLink>(link_cfg));
    } else {
      links_.push_back(nullptr);
    }
    aggregator_.add_collector(id, first_hour);
  }
  started_ = true;
  start_hour_ = first_hour;
}

void Fleet::process_hour(util::HourBin hour,
                         std::span<const core::Observation> observations) {
  if (!started_) start(hour);
  if (config_.kill_collector && config_.kill_hour &&
      *config_.kill_hour == hour) {
    kill(*config_.kill_collector);
  }
  if (config_.kill_collector && config_.restart_hour &&
      *config_.restart_hour == hour) {
    restart(*config_.kill_collector, hour);
  }

  for (const core::Observation& obs : observations) {
    const unsigned id = collector_of(obs.server);
    spool_[id][hour].push_back(obs);
    if (collectors_[id]) collectors_[id]->ingest(obs);
  }
  for (unsigned id = 0; id < config_.collectors; ++id) {
    if (collectors_[id]) transmit(id, collectors_[id]->seal_epoch(hour));
  }
  tick_retries();
  pump_acks();
  last_hour_ = hour;
}

void Fleet::kill(unsigned id) {
  if (id < collectors_.size()) collectors_[id].reset();
}

void Fleet::restart(unsigned id, util::HourBin hour) {
  if (id >= collectors_.size()) return;
  collectors_[id] = make_collector(id);
  util::HourBin resume = start_hour_;
  const auto snap_bytes = aggregator_.snapshot_for(id);
  if (!snap_bytes.empty()) {
    flow::EvidenceDelta snap;
    if (flow::decode_delta(snap_bytes, snap) &&
        collectors_[id]->install_snapshot(snap)) {
      resume = snap.epoch + 1;
    }
  }
  // Replay the spooled hours the aggregator has not merged. Deterministic
  // replay regenerates deltas with the same cumulative row values as the
  // lost originals, so whatever already sits staged joins to a no-op.
  for (util::HourBin h = resume; h < hour; ++h) {
    const auto it = spool_[id].find(h);
    if (it != spool_[id].end()) {
      for (const core::Observation& obs : it->second) {
        collectors_[id]->ingest(obs);
      }
    }
    transmit(id, collectors_[id]->seal_epoch(h));
  }
}

void Fleet::transmit(unsigned id, std::vector<std::uint8_t> datagram) {
  ++datagrams_sent_;
  bytes_sent_ += datagram.size();
  if (links_[id]) {
    for (auto& out : links_[id]->transmit(std::move(datagram))) {
      (void)aggregator_.offer(out);
    }
  } else {
    (void)aggregator_.offer(datagram);
  }
}

void Fleet::tick_retries() {
  for (unsigned id = 0; id < config_.collectors; ++id) {
    if (!collectors_[id]) continue;
    for (auto& datagram : collectors_[id]->tick()) {
      transmit(id, std::move(datagram));
    }
  }
}

void Fleet::flush_links() {
  for (auto& link : links_) {
    if (!link) continue;
    for (auto& out : link->flush()) {
      (void)aggregator_.offer(out);
    }
  }
}

void Fleet::pump_acks() {
  for (unsigned id = 0; id < config_.collectors; ++id) {
    if (!collectors_[id]) continue;
    if (ack_rng_.chance(config_.ack_loss)) continue;  // ack lost
    const auto acked = aggregator_.acked_through(id);
    if (!acked) continue;
    collectors_[id]->handle_ack(*acked);
    auto& spool = spool_[id];
    spool.erase(spool.begin(), spool.upper_bound(*acked));
  }
}

bool Fleet::finish(unsigned max_ticks) {
  if (!started_) return true;
  for (unsigned tick = 0; tick < max_ticks; ++tick) {
    bool done = true;
    for (unsigned id = 0; id < config_.collectors; ++id) {
      if (!collectors_[id]) continue;
      const auto acked = collectors_[id]->acked_through();
      if (!acked || *acked < last_hour_) {
        done = false;
        break;
      }
    }
    if (done) return true;
    tick_retries();
    flush_links();
    pump_acks();
  }
  return false;
}

std::uint64_t Fleet::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& collector : collectors_) {
    if (collector) total += collector->retransmissions();
  }
  return total;
}

}  // namespace haystack::vantage
