// Tests for the telemetry layer: counters, heavy-hitter views, direction
// normalization / anonymization, and the IXP vantage's established-TCP
// guard.
#include <gtest/gtest.h>

#include "net/asn.hpp"
#include "telemetry/anonymize.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/vantage.hpp"

namespace haystack::telemetry {
namespace {

TEST(UniqueCounterTest, CountsDistinct) {
  UniqueCounter<int> counter;
  EXPECT_TRUE(counter.add(1));
  EXPECT_FALSE(counter.add(1));
  EXPECT_TRUE(counter.add(2));
  EXPECT_EQ(counter.count(), 2u);
  EXPECT_TRUE(counter.contains(1));
  counter.clear();
  EXPECT_EQ(counter.count(), 0u);
}

TEST(HeavyHitterTest, TopFractionByBytes) {
  HeavyHitterView hh;
  // Ten IPs, weights 10..1.
  for (std::uint32_t i = 0; i < 10; ++i) {
    hh.add_reference(net::IpAddress::v4(i), (10 - i) * 100);
  }
  // Mark the top-3 and one light IP visible.
  hh.mark_visible(net::IpAddress::v4(0));
  hh.mark_visible(net::IpAddress::v4(1));
  hh.mark_visible(net::IpAddress::v4(2));
  hh.mark_visible(net::IpAddress::v4(9));
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.1), 1.0);   // top-1
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.3), 1.0);   // top-3
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.5), 0.6);   // 3 of top-5
  EXPECT_DOUBLE_EQ(hh.visible_fraction(), 0.4);
  EXPECT_EQ(hh.reference_count(), 10u);
}

TEST(HourlySeriesTest, BoundsAndAccumulation) {
  HourlySeries series;
  series.add(0, 2.0);
  series.add(0, 3.0);
  series.set(10, 7.0);
  EXPECT_DOUBLE_EQ(series.at(0), 5.0);
  EXPECT_DOUBLE_EQ(series.at(10), 7.0);
  EXPECT_DOUBLE_EQ(series.at(1), 0.0);
  EXPECT_EQ(series.values().size(), util::kStudyHours);
  EXPECT_THROW(series.at(util::kStudyHours), std::out_of_range);
}

TEST(AnonymizeTest, KeyedAndStable) {
  const auto ip = *net::IpAddress::parse("100.64.1.2");
  EXPECT_EQ(anonymize(ip, 7), anonymize(ip, 7));
  EXPECT_NE(anonymize(ip, 7), anonymize(ip, 8));
  EXPECT_NE(anonymize(ip, 7),
            anonymize(*net::IpAddress::parse("100.64.1.3"), 7));
}

class DirectionTest : public ::testing::Test {
 protected:
  DirectionTest() {
    asns_.add_as({64520, "CDN", net::AsRole::kCdn});
    asns_.announce(*net::Prefix::parse("23.0.0.0/12"), 64520);
  }
  net::AsnRegistry asns_;
};

TEST_F(DirectionTest, SubscriberToServerKept) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("140.1.0.1");
  rec.key.dst_port = 443;
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.subscriber, rec.key.src);
  EXPECT_EQ(norm.server, rec.key.dst);
  EXPECT_EQ(norm.server_port, 443);
}

TEST_F(DirectionTest, ReverseDirectionFlipped) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("140.1.0.1");
  rec.key.src_port = 443;
  rec.key.dst = *net::IpAddress::parse("100.64.1.2");
  rec.key.dst_port = 50000;
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.subscriber, rec.key.dst);
  EXPECT_EQ(norm.server, rec.key.src);
  EXPECT_EQ(norm.server_port, 443);
}

TEST_F(DirectionTest, CdnOriginCountsAsServerRegardlessOfPort) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("23.0.0.9");
  rec.key.dst_port = 12345;  // odd port, but CDN AS
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.server, rec.key.dst);
}

TEST_F(DirectionTest, PeerToPeerDropped) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("100.64.1.9");
  rec.key.dst_port = 51000;
  NormalizedFlow norm;
  EXPECT_FALSE(normalize_direction(rec, asns_, norm));
}

TEST(IxpVantageTest, EstablishedTcpGuardDropsSynOnly) {
  IxpVantage vantage{{.sampling = 1, .wire_roundtrip = false,
                      .require_established_tcp = true}};
  simnet::LabeledFlow syn_only;
  syn_only.flow.key.src = net::IpAddress::v4(1);
  syn_only.flow.key.dst = net::IpAddress::v4(2);
  syn_only.flow.key.proto = 6;
  syn_only.flow.tcp_flags = flow::tcpflags::kSyn;
  syn_only.flow.packets = 10;

  simnet::LabeledFlow established = syn_only;
  established.flow.tcp_flags =
      flow::tcpflags::kSyn | flow::tcpflags::kAck | flow::tcpflags::kPsh;

  simnet::LabeledFlow udp = syn_only;
  udp.flow.key.proto = 17;
  udp.flow.tcp_flags = 0;

  const auto out =
      vantage.observe({syn_only, established, udp}, 0);
  // SYN-only is dropped; the established TCP flow and UDP pass.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].flow.shows_established_tcp());
  EXPECT_TRUE(out[1].flow.shows_established_tcp());
}

}  // namespace
}  // namespace haystack::telemetry
