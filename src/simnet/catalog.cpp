#include "simnet/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

namespace haystack::simnet {

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kSurveillance:
      return "Surveillance";
    case Category::kSmartHubs:
      return "Smart Hubs";
    case Category::kHomeAutomation:
      return "Home Automation";
    case Category::kVideo:
      return "Video";
    case Category::kAudio:
      return "Audio";
    case Category::kAppliances:
      return "Appliances";
  }
  return "?";
}

std::string_view level_suffix(DetectionLevel l) noexcept {
  switch (l) {
    case DetectionLevel::kPlatform:
      return "Pl.";
    case DetectionLevel::kManufacturer:
      return "Man.";
    case DetectionLevel::kProduct:
      return "Pr.";
  }
  return "?";
}

std::string_view popularity_name(Popularity p) noexcept {
  switch (p) {
    case Popularity::kTop10:
      return "Top 10";
    case Popularity::kTop100:
      return "Top 100";
    case Popularity::kTop200:
      return "Top 200";
    case Popularity::kTop500:
      return "Top 500";
    case Popularity::kTop2k:
      return "Top 2k";
    case Popularity::kTop10k:
      return "10k";
    case Popularity::kNoMarket:
      return "No Market";
    case Popularity::kOther:
      return "Other";
  }
  return "?";
}

namespace {

using DL = DetectionLevel;
using BK = BackendKind;
using Cat = Category;
using Pop = Popularity;

struct UnitSpec {
  const char* name;
  DL level;
  BK backend;
  unsigned primary;       // monitored-candidate primary domains (Fig. 10)
  unsigned support;       // support domains
  unsigned shared_obs;    // observed manufacturer domains on shared infra
  unsigned non_excl;      // dedicated but not IoT-exclusive
  const char* parent;     // detection hierarchy parent, or nullptr
  double idle_rate;       // mean packets/hour per domain while idle
  double active_mult;     // multiplier during active hours
  double duty;            // fraction of domains contacted per idle hour
  const char* sld;        // vendor registrable domain
  double wild_extra;      // wild penetration beyond catalog products
  double diurnal;         // diurnal strength
};

// The 37 detectable units of Fig. 10 plus the 7 excluded backends
// (Apple TV, Google Home, Lefun Cam, LG TV, WeMo Plug, Wink Hub, SwitchBot).
// Primary-domain counts follow Fig. 10's panel grouping; the Amazon/Samsung
// hierarchies follow Sec. 4.3.2 (33 additional Amazon domains below the AVS
// domain; 34 more for Fire TV; 14 Samsung domains with one critical; 16
// additional for Samsung TV).
constexpr UnitSpec kUnitSpecs[] = {
    // --- 1-domain units ------------------------------------------------
    {"Alexa Enabled", DL::kPlatform, BK::kDedicated, 1, 0, 2, 0, nullptr,
     320.0, 6.0, 1.0, "amazon.com", 0.0770, 1.0},
    {"Anova Sousvide", DL::kProduct, BK::kDedicatedCloud, 1, 0, 0, 0, nullptr,
     22.0, 8.0, 1.0, "anovaculinary.com", 0.0, 0.1},
    {"iKettle", DL::kPlatform, BK::kDedicated, 1, 0, 0, 0, nullptr, 60.0, 7.0,
     1.0, "smarter.am", 0.0003, 0.2},
    {"Insteon Hub", DL::kProduct, BK::kDedicatedCloud, 1, 0, 1, 0, nullptr,
     2.0, 9.0, 1.0, "insteon.com", 0.0, 0.1},
    {"Magichome Stripe", DL::kProduct, BK::kDedicatedCloud, 1, 0, 0, 0,
     nullptr, 1.8, 10.0, 1.0, "magichomewifi.com", 0.0, 0.1},
    {"Meross Dooropener", DL::kManufacturer, BK::kDedicatedCloud, 1, 0, 0, 0,
     nullptr, 55.0, 7.0, 1.0, "meross.com", 0.0, 0.1},
    {"Microseven Cam.", DL::kProduct, BK::kDedicated, 1, 0, 0, 0, nullptr,
     1.5, 6.0, 1.0, "microseven.com", 0.0, 0.1},
    {"Netatmo Weather St.", DL::kManufacturer, BK::kDedicated, 1, 1, 0, 0,
     nullptr, 110.0, 3.0, 1.0, "netatmo.net", 0.0, 0.1},
    {"Smarter Coffee", DL::kPlatform, BK::kDedicated, 1, 0, 0, 0, nullptr,
     50.0, 7.0, 1.0, "smarter.am", 0.0002, 0.2},
    // --- 2-domain units ------------------------------------------------
    {"AppKettle", DL::kProduct, BK::kDedicatedCloud, 2, 0, 0, 0, nullptr,
     40.0, 8.0, 0.9, "appkettle.com", 0.0, 0.2},
    {"Blink Hub & Cam.", DL::kManufacturer, BK::kDedicatedCloud, 2, 0, 3, 0,
     nullptr, 90.0, 9.0, 0.9, "immedia-semi.com", 0.0, 0.2},
    {"Flux Bulb", DL::kPlatform, BK::kDedicated, 2, 0, 1, 0, nullptr, 35.0,
     8.0, 0.9, "fluxsmart.com", 0.0004, 0.2},
    {"GE Microwave", DL::kManufacturer, BK::kDedicatedCloud, 2, 0, 0, 0,
     nullptr, 20.0, 6.0, 0.9, "geappliances.com", 0.0, 0.1},
    {"Icsee Doorbell", DL::kProduct, BK::kDedicated, 2, 0, 0, 0, nullptr, 2.2,
     12.0, 0.9, "icseecam.com", 0.0, 0.1},
    {"Lightify Hub", DL::kPlatform, BK::kDedicated, 2, 0, 2, 0, nullptr, 70.0,
     5.0, 0.9, "lightify.com", 0.0005, 0.2},
    {"Luohe Cam.", DL::kProduct, BK::kDedicated, 2, 0, 0, 0, nullptr, 2.5,
     10.0, 0.9, "luohecam.com", 0.0, 0.1},
    {"Reolink Cam.", DL::kProduct, BK::kDedicated, 2, 0, 0, 0, nullptr, 65.0,
     10.0, 0.9, "reolink.com", 0.0, 0.2},
    {"Sengled Dev.", DL::kManufacturer, BK::kDedicated, 2, 1, 3, 0, nullptr,
     75.0, 6.0, 0.9, "sengled.com", 0.0, 0.2},
    {"Smartthings Dev.", DL::kManufacturer, BK::kDedicatedCloud, 2, 0, 4, 0,
     nullptr, 95.0, 6.0, 0.9, "smartthings.com", 0.0, 0.3},
    {"Wansview Cam.", DL::kManufacturer, BK::kDedicated, 2, 0, 0, 0, nullptr,
     60.0, 9.0, 0.9, "wansview.com", 0.0, 0.2},
    // --- 3-domain units ------------------------------------------------
    {"Honeywell T-stat", DL::kManufacturer, BK::kDedicated, 3, 1, 4, 0,
     nullptr, 85.0, 4.0, 0.8, "honeywellhome.com", 0.0, 0.2},
    {"Xiaomi Dev.", DL::kManufacturer, BK::kDedicated, 3, 2, 7, 2, nullptr,
     100.0, 5.0, 0.8, "xiaomi.com", 0.0, 0.3},
    // --- 4-domain units ------------------------------------------------
    {"Nest Device", DL::kManufacturer, BK::kDedicated, 4, 1, 5, 0, nullptr,
     10.0, 4.0, 0.5, "nest.com", 0.0, 0.2},
    {"Ring Doorbell", DL::kManufacturer, BK::kDedicatedCloud, 4, 1, 5, 0,
     nullptr, 95.0, 10.0, 0.7, "ring.com", 0.0, 0.3},
    {"Smartlife", DL::kPlatform, BK::kDedicated, 4, 0, 2, 0, nullptr, 5.0,
     9.0, 0.5, "tuya.com", 0.0010, 0.2},
    {"Ubell Doorbell", DL::kManufacturer, BK::kDedicated, 4, 0, 0, 0, nullptr,
     55.0, 10.0, 0.7, "ubell.com", 0.0, 0.2},
    {"Yi Camera", DL::kManufacturer, BK::kDedicated, 4, 2, 4, 0, nullptr,
     80.0, 8.0, 0.7, "xiaoyi.com", 0.0, 0.2},
    // --- 5+-domain units -----------------------------------------------
    {"Amazon Product", DL::kManufacturer, BK::kDedicated, 33, 3, 14, 5,
     "Alexa Enabled", 130.0, 8.0, 0.45, "amazon.com", 0.0400, 1.0},
    {"Amcrest Cam.", DL::kManufacturer, BK::kDedicated, 6, 0, 3, 0, nullptr,
     70.0, 9.0, 0.6, "amcrest.com", 0.0, 0.2},
    {"Dlink Motion Sens.", DL::kManufacturer, BK::kDedicated, 5, 0, 2, 0,
     nullptr, 60.0, 7.0, 0.6, "mydlink.com", 0.0, 0.2},
    {"Fire TV", DL::kProduct, BK::kDedicated, 34, 0, 18, 0, "Amazon Product",
     150.0, 10.0, 0.45, "amazon.com", 0.0, 1.0},
    {"Philips Dev.", DL::kManufacturer, BK::kDedicated, 5, 2, 8, 2, nullptr,
     115.0, 5.0, 0.7, "meethue.com", 0.0, 0.3},
    {"Roku TV", DL::kProduct, BK::kDedicated, 8, 2, 12, 0, nullptr, 120.0,
     9.0, 0.6, "roku.com", 0.0, 0.9},
    {"Samsung IoT", DL::kManufacturer, BK::kDedicated, 14, 2, 8, 6, nullptr,
     60.0, 6.0, 0.30, "samsung.com", 0.0150, 1.0},
    {"Samsung TV", DL::kProduct, BK::kDedicated, 16, 0, 16, 0, "Samsung IoT",
     2.0, 60.0, 0.3, "samsung.com", 0.0, 1.0},
    {"TP-link Dev.", DL::kManufacturer, BK::kDedicated, 5, 1, 4, 1, nullptr,
     9.0, 7.0, 0.5, "tplinkcloud.com", 0.0, 0.2},
    {"ZModo Doorbell", DL::kManufacturer, BK::kDedicated, 6, 0, 2, 0, nullptr,
     65.0, 9.0, 0.6, "zmodo.com", 0.0, 0.2},
    // --- excluded backends (shared infrastructure / no data) -----------
    {"Apple TV", DL::kProduct, BK::kShared, 45, 0, 0, 0, nullptr, 380.0, 4.0,
     0.5, "apple.com", 0.0, 1.0},
    {"Google Home", DL::kManufacturer, BK::kShared, 20, 0, 0, 0, nullptr,
     330.0, 5.0, 0.6, "google.com", 0.0, 1.0},
    {"Lefun Cam", DL::kManufacturer, BK::kShared, 4, 0, 0, 0, nullptr, 55.0,
     9.0, 0.8, "mipcm.com", 0.0, 0.2},
    {"LG TV", DL::kProduct, BK::kDedicated, 4, 0, 0, 0, nullptr, 100.0, 8.0,
     0.6, "lgtvcommon.com", 0.0, 0.9},
    {"WeMo Plug", DL::kManufacturer, BK::kDedicated, 2, 0, 0, 0, nullptr,
     12.0, 8.0, 0.8, "xbcs.net", 0.0, 0.1},
    {"Wink Hub", DL::kManufacturer, BK::kDedicated, 2, 0, 0, 0, nullptr, 40.0,
     6.0, 0.8, "winkapp.com", 0.0, 0.1},
    {"SwitchBot", DL::kManufacturer, BK::kShared, 3, 0, 0, 0, nullptr, 30.0,
     7.0, 0.8, "switch-bot.com", 0.0, 0.1},
};

struct ProductSpec {
  const char* name;
  const char* vendor;
  Cat category;
  const char* unit;  // detection unit name (may be an excluded backend)
  bool idle_only;
  unsigned instances;  // 1 or 2 testbed instances
  Pop popularity;
  double penetration;  // fraction of ISP subscriber lines in the wild
};

// Table 1, all 56 unique products (96 instances). `instances == 2` means
// the product was deployed in both the EU and US testbeds.
constexpr ProductSpec kProductSpecs[] = {
    // Surveillance (13)
    {"Amcrest Cam", "Amcrest", Cat::kSurveillance, "Amcrest Cam.", false, 2,
     Pop::kTop500, 0.0010},
    {"Blink Cam", "Blink", Cat::kSurveillance, "Blink Hub & Cam.", false, 2,
     Pop::kTop100, 0.0030},
    {"Blink Hub", "Blink", Cat::kSurveillance, "Blink Hub & Cam.", false, 2,
     Pop::kTop100, 0.0020},
    {"Icsee Doorbell", "Icsee", Cat::kSurveillance, "Icsee Doorbell", false,
     1, Pop::kTop10k, 0.0005},
    {"Lefun Cam", "Lefun", Cat::kSurveillance, "Lefun Cam", false, 1,
     Pop::kTop10k, 0.0005},
    {"Luohe Cam", "Luohe", Cat::kSurveillance, "Luohe Cam.", false, 1,
     Pop::kOther, 0.0002},
    {"Microseven Cam", "Microseven", Cat::kSurveillance, "Microseven Cam.",
     false, 1, Pop::kNoMarket, 0.000003},
    {"Reolink Cam", "Reolink", Cat::kSurveillance, "Reolink Cam.", false, 2,
     Pop::kTop500, 0.0010},
    {"Ring Doorbell", "Ring", Cat::kSurveillance, "Ring Doorbell", false, 2,
     Pop::kTop10, 0.0060},
    {"Ubell Doorbell", "Ubell", Cat::kSurveillance, "Ubell Doorbell", false,
     1, Pop::kTop2k, 0.0006},
    {"Wansview Cam", "Wansview", Cat::kSurveillance, "Wansview Cam.", false,
     2, Pop::kTop2k, 0.0008},
    {"Yi Cam", "Yi", Cat::kSurveillance, "Yi Camera", false, 2, Pop::kTop200,
     0.0020},
    {"ZModo Doorbell", "ZModo", Cat::kSurveillance, "ZModo Doorbell", false,
     2, Pop::kTop2k, 0.0008},
    // Smart Hubs (8)
    {"Insteon", "Insteon", Cat::kSmartHubs, "Insteon Hub", false, 1,
     Pop::kTop10k, 0.0004},
    {"Lightify", "Osram", Cat::kSmartHubs, "Lightify Hub", false, 2,
     Pop::kTop500, 0.0020},
    {"Philips Hue", "Philips", Cat::kSmartHubs, "Philips Dev.", false, 2,
     Pop::kTop10, 0.0090},
    {"Sengled", "Sengled", Cat::kSmartHubs, "Sengled Dev.", false, 2,
     Pop::kTop200, 0.0020},
    {"Smartthings", "Samsung", Cat::kSmartHubs, "Smartthings Dev.", false, 2,
     Pop::kTop100, 0.0060},
    {"SwitchBot", "SwitchBot", Cat::kSmartHubs, "SwitchBot", false, 1,
     Pop::kTop2k, 0.0010},
    {"Wink 2", "Wink", Cat::kSmartHubs, "Wink Hub", false, 1, Pop::kOther,
     0.0005},
    {"Xiaomi", "Xiaomi", Cat::kSmartHubs, "Xiaomi Dev.", false, 2, Pop::kTop10,
     0.0040},
    // Home Automation (14)
    {"D-Link Mov Sensor", "D-Link", Cat::kHomeAutomation,
     "Dlink Motion Sens.", false, 2, Pop::kTop500, 0.0010},
    {"Flux Bulb", "Flux", Cat::kHomeAutomation, "Flux Bulb", false, 2,
     Pop::kTop2k, 0.0010},
    {"Honeywell T-stat", "Honeywell", Cat::kHomeAutomation,
     "Honeywell T-stat", false, 2, Pop::kTop200, 0.0020},
    {"Magichome Strip", "Magichome", Cat::kHomeAutomation, "Magichome Stripe",
     false, 2, Pop::kTop2k, 0.0007},
    {"Meross Door Opener", "Meross", Cat::kHomeAutomation,
     "Meross Dooropener", false, 2, Pop::kTop2k, 0.0006},
    {"Nest T-stat", "Nest", Cat::kHomeAutomation, "Nest Device", false, 2,
     Pop::kTop100, 0.0050},
    {"Philips Bulb", "Philips", Cat::kHomeAutomation, "Philips Dev.", false,
     2, Pop::kTop10, 0.0040},
    {"Smartlife Bulb", "Smartlife", Cat::kHomeAutomation, "Smartlife", false,
     2, Pop::kTop100, 0.0030},
    {"Smartlife Remote", "Smartlife", Cat::kHomeAutomation, "Smartlife",
     false, 2, Pop::kTop500, 0.0010},
    {"TP-Link Bulb", "TP-Link", Cat::kHomeAutomation, "TP-link Dev.", false,
     2, Pop::kTop10, 0.0040},
    {"TP-Link Plug", "TP-Link", Cat::kHomeAutomation, "TP-link Dev.", false,
     2, Pop::kTop10, 0.0060},
    {"WeMo Plug", "Belkin", Cat::kHomeAutomation, "WeMo Plug", false, 2,
     Pop::kTop200, 0.0020},
    {"Xiaomi Strip", "Xiaomi", Cat::kHomeAutomation, "Xiaomi Dev.", false, 2,
     Pop::kTop100, 0.0020},
    {"Xiaomi Plug", "Xiaomi", Cat::kHomeAutomation, "Xiaomi Dev.", false, 2,
     Pop::kTop100, 0.0030},
    // Video (5)
    {"Apple TV", "Apple", Cat::kVideo, "Apple TV", false, 2, Pop::kTop10,
     0.0100},
    {"Fire TV", "Amazon", Cat::kVideo, "Fire TV", false, 2, Pop::kTop10,
     0.0220},
    {"LG TV", "LG", Cat::kVideo, "LG TV", false, 1, Pop::kTop100, 0.0100},
    {"Roku TV", "Roku", Cat::kVideo, "Roku TV", false, 2, Pop::kTop200,
     0.0070},
    {"Samsung TV", "Samsung", Cat::kVideo, "Samsung TV", false, 2,
     Pop::kTop10, 0.0450},
    // Audio (6)
    {"Allure with Alexa", "Allure", Cat::kAudio, "Alexa Enabled", false, 1,
     Pop::kTop2k, 0.0005},
    {"Echo Dot", "Amazon", Cat::kAudio, "Amazon Product", false, 2,
     Pop::kTop10, 0.0300},
    {"Echo Spot", "Amazon", Cat::kAudio, "Amazon Product", false, 2,
     Pop::kTop500, 0.0030},
    {"Echo Plus", "Amazon", Cat::kAudio, "Amazon Product", false, 2,
     Pop::kTop100, 0.0070},
    {"Google Home Mini", "Google", Cat::kAudio, "Google Home", false, 2,
     Pop::kTop10, 0.0200},
    {"Google Home", "Google", Cat::kAudio, "Google Home", false, 2,
     Pop::kTop100, 0.0100},
    // Appliances (10)
    {"Anova Sousvide", "Anova", Cat::kAppliances, "Anova Sousvide", false, 1,
     Pop::kTop2k, 0.0004},
    {"Appkettle", "Appkettle", Cat::kAppliances, "AppKettle", false, 1,
     Pop::kOther, 0.0002},
    {"GE Microwave", "GE", Cat::kAppliances, "GE Microwave", false, 1,
     Pop::kNoMarket, 0.0003},
    {"Netatmo Weather", "Netatmo", Cat::kAppliances, "Netatmo Weather St.",
     false, 2, Pop::kTop200, 0.0010},
    {"Samsung Dryer", "Samsung", Cat::kAppliances, "Samsung IoT", true, 1,
     Pop::kTop500, 0.0040},
    {"Samsung Fridge", "Samsung", Cat::kAppliances, "Samsung IoT", true, 1,
     Pop::kTop500, 0.0050},
    {"Smarter Brewer", "Smarter", Cat::kAppliances, "iKettle", false, 1,
     Pop::kOther, 0.0002},
    {"Smarter Coffee Machine", "Smarter", Cat::kAppliances, "Smarter Coffee",
     false, 2, Pop::kOther, 0.0002},
    {"Smarter iKettle", "Smarter", Cat::kAppliances, "iKettle", false, 2,
     Pop::kOther, 0.0003},
    {"Xiaomi Rice Cooker", "Xiaomi", Cat::kAppliances, "Xiaomi Dev.", false,
     2, Pop::kTop2k, 0.0008},
};

// The eight DNSDB-missing-but-HTTPS domains (recoverable via the scan
// dataset; Sec. 4.2.2: "8 out of 15 of the domains which belong to 5
// devices") as (unit name, primary-domain index) pairs.
struct MissingSpec {
  const char* unit;
  unsigned index;
  bool https;  // false: unresolvable (the remaining 7 of 15)
};
constexpr MissingSpec kMissing[] = {
    {"Reolink Cam.", 1, true},   {"Luohe Cam.", 1, true},
    {"Icsee Doorbell", 0, true}, {"Icsee Doorbell", 1, true},
    {"Ubell Doorbell", 2, true}, {"Ubell Doorbell", 3, true},
    {"Wansview Cam.", 0, true},  {"Wansview Cam.", 1, true},
    {"LG TV", 1, false},         {"LG TV", 2, false},
    {"LG TV", 3, false},         {"WeMo Plug", 0, false},
    {"WeMo Plug", 1, false},     {"Wink Hub", 0, false},
    {"Wink Hub", 1, false},
};

// Named generic domains; the rest are generated to reach the paper's 90.
constexpr const char* kNamedGeneric[] = {
    "pool.ntp.org",        "time.microsoft.com", "time.google.com",
    "netflix.com",         "wikipedia.org",      "doubleclick.net",
    "google-analytics.com", "googleapis.com",    "firebaseio.com",
    "spotify.com",         "youtube.com",        "facebook.com",
    "akamaihd.net",        "cloudfront.net",     "windowsupdate.com",
    "ocsp.digicert.com",   "crashlytics.com",    "adsafeprotected.com",
};
constexpr std::size_t kGenericTotal = 90;

std::string stem_of(std::string_view sld) {
  const auto dot = sld.find('.');
  return std::string{sld.substr(0, dot)};
}

constexpr const char* kPrimaryPrefixes[] = {"api",   "device", "mqtt",
                                            "events", "cloud",  "svc",
                                            "ota",   "relay",  "sync"};

std::uint16_t port_for(DomainRole role, unsigned index) {
  if (role == DomainRole::kSharedObserved) return 443;
  switch (index % 6) {
    case 1:
      return 8883;  // MQTT/TLS
    case 3:
      return 80;
    case 5:
      return 8080;
    default:
      return 443;
  }
}

}  // namespace

Catalog::Catalog() {
  std::unordered_map<std::string_view, UnitId> unit_index;

  // Pass 1: create units (parents resolved in pass 2).
  for (const UnitSpec& spec : kUnitSpecs) {
    DetectionUnit unit;
    unit.id = static_cast<UnitId>(units_.size());
    unit.name = spec.name;
    unit.level = spec.level;
    unit.backend = spec.backend;
    unit.primary_domains = spec.primary;
    unit.support_domains = spec.support;
    unit.shared_observed_domains = spec.shared_obs;
    unit.non_exclusive_domains = spec.non_excl;
    unit.critical_domain = 0;
    unit.idle_pkts_per_domain_hour = spec.idle_rate;
    unit.active_multiplier = spec.active_mult;
    unit.idle_domain_duty = spec.duty;
    unit.sld = spec.sld;
    unit.wild_extra_penetration = spec.wild_extra;
    unit.diurnal_strength = spec.diurnal;
    unit_index.emplace(spec.name, unit.id);
    units_.push_back(std::move(unit));
  }
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (kUnitSpecs[i].parent != nullptr) {
      units_[i].parent = unit_index.at(kUnitSpecs[i].parent);
    }
  }

  // Pass 2: products and instances.
  for (const ProductSpec& spec : kProductSpecs) {
    Product p;
    p.id = static_cast<ProductId>(products_.size());
    p.name = spec.name;
    p.vendor = spec.vendor;
    p.category = spec.category;
    p.unit = unit_index.at(spec.unit);
    p.idle_only = spec.idle_only;
    p.instances = spec.instances;
    p.popularity = spec.popularity;
    p.penetration = spec.penetration;
    for (unsigned i = 0; i < spec.instances; ++i) {
      Instance inst;
      inst.id = static_cast<InstanceId>(instances_.size());
      inst.product = p.id;
      inst.testbed = i + 1;
      instances_.push_back(inst);
    }
    products_.push_back(std::move(p));
  }

  // Pass 3: generate unit domains. Names are deterministic functions of
  // (unit sld, role, index) with a handful of real-world special cases.
  std::unordered_map<std::string, UnitId> sld_first_unit;
  for (const DetectionUnit& unit : units_) {
    const std::string stem = stem_of(unit.sld);
    // Units sharing a vendor SLD (iKettle and Smarter Coffee both live
    // under smarter.am) get a distinguishing slug so generated names never
    // collide. The Amazon/Samsung families are special-cased below.
    std::string slug;
    const auto [first_it, first] =
        sld_first_unit.try_emplace(unit.sld, unit.id);
    if (!first && unit.sld != "amazon.com" && unit.sld != "samsung.com") {
      slug = "-u" + std::to_string(unit.id);
    }
    unsigned next_index = 0;
    auto add = [&](DomainRole role, std::string name, std::uint16_t port) {
      UnitDomain d;
      d.unit = unit.id;
      d.index = next_index++;
      d.fqdn = dns::Fqdn{name};
      d.role = role;
      d.port = port;
      d.https = (port == 443 || port == 8443);
      domains_.push_back(std::move(d));
    };

    for (unsigned i = 0; i < unit.primary_domains; ++i) {
      std::string name;
      if (unit.name == "Alexa Enabled") {
        name = "avs-alexa.na.amazon.com";
      } else if (unit.name == "Samsung IoT" && i == 0) {
        name = "samsungotn.net";  // firmware-update domain (Sec. 4.3.1)
      } else if (unit.name == "Amazon Product") {
        name = std::string{kPrimaryPrefixes[i % 9]} + std::to_string(i) +
               ".iot.amazon.com";
      } else if (unit.name == "Fire TV") {
        name = std::string{kPrimaryPrefixes[i % 9]} + std::to_string(i) +
               ".firetv.amazon.com";
      } else if (unit.name == "Samsung TV") {
        name = std::string{kPrimaryPrefixes[i % 9]} + std::to_string(i) +
               ".tv.samsung.com";
      } else {
        name = std::string{kPrimaryPrefixes[i % 9]} +
               (i >= 9 ? std::to_string(i) : std::string{}) + slug + "." +
               unit.sld;
      }
      add(DomainRole::kPrimary, std::move(name),
          port_for(DomainRole::kPrimary, i));
    }
    for (unsigned i = 0; i < unit.support_domains; ++i) {
      static constexpr const char* kPartners[] = {"whisk.com", "voicesvc.net",
                                                  "weatherdata.io"};
      add(DomainRole::kSupport,
          stem + std::to_string(unit.id) + "-support" + std::to_string(i) +
              "." + kPartners[i % 3],
          443);
    }
    for (unsigned i = 0; i < unit.shared_observed_domains; ++i) {
      std::string prefix = unit.name == "Fire TV"       ? "firetv-cdn"
                           : unit.name == "Samsung TV"  ? "tv-cdn"
                           : unit.name == "Amazon Product" ? "iot-cdn"
                                                           : "cdn";
      add(DomainRole::kSharedObserved,
          prefix + std::to_string(i) + slug + "." + unit.sld, 443);
    }
    for (unsigned i = 0; i < unit.non_exclusive_domains; ++i) {
      add(DomainRole::kNonExclusive,
          "www" + std::to_string(i) + slug + "." + unit.sld, 443);
    }
  }

  // Pass 4: apply the DNSDB-coverage gaps.
  for (const MissingSpec& m : kMissing) {
    const UnitId unit = unit_index.at(m.unit);
    unsigned seen = 0;
    for (auto& d : domains_) {
      if (d.unit == unit && d.role == DomainRole::kPrimary) {
        if (seen == m.index) {
          d.dnsdb_missing = true;
          if (m.https) {
            d.port = 443;
            d.https = true;
          } else {
            d.port = 9001;  // proprietary protocol: no certificate to match
            d.https = false;
          }
          break;
        }
        ++seen;
      }
    }
  }

  // Pass 5: generic domains.
  for (const char* name : kNamedGeneric) {
    generic_domains_.emplace_back(name);
  }
  for (std::size_t i = generic_domains_.size(); i < kGenericTotal; ++i) {
    generic_domains_.emplace_back("svc" + std::to_string(i) + ".genericweb" +
                                  std::to_string(i % 7) + ".com");
  }

  // Pass 6: per-unit domain index. `domains_` is stable from here on.
  domain_index_.resize(units_.size());
  for (const auto& d : domains_) domain_index_[d.unit].push_back(&d);
}

std::size_t Catalog::vendor_count() const {
  std::set<std::string_view> vendors;
  for (const auto& p : products_) vendors.insert(p.vendor);
  return vendors.size();
}

std::vector<ProductId> Catalog::products_of(UnitId unit) const {
  std::vector<ProductId> out;
  for (const auto& p : products_) {
    if (p.unit && *p.unit == unit) out.push_back(p.id);
  }
  return out;
}

const DetectionUnit* Catalog::unit_by_name(std::string_view name) const {
  for (const auto& u : units_) {
    if (u.name == name) return &u;
  }
  return nullptr;
}

const Product* Catalog::product_by_name(std::string_view name) const {
  for (const auto& p : products_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace haystack::simnet
