// Persistent worker pool over bounded per-shard queues.
//
// One long-lived consumer thread per shard, each draining its own
// BoundedQueue in adaptive waves — submissions only ever contend with
// their shard's consumer, never with other shards. Because a shard is one
// queue consumed by one thread, per-producer FIFO order is preserved per
// shard; that ordering contract is what the sharded detector's bit-for-bit
// determinism rests on.
//
// Lifecycle protocol:
//   drain()  quiescence barrier — returns once every item submitted
//            before the call has been fully handled. Cheap when idle.
//   stop()   drain-then-stop — closes the queues (pending items are still
//            consumed), joins the workers.
//   start()  restart-after-drain — reopens the queues, respawns workers.
// start()/stop() are owned by one controlling thread; submit()/drain()
// may be called from any number of threads concurrently. Handlers must
// not call drain() (a worker waiting on itself would deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "pipeline/bounded_queue.hpp"

namespace haystack::pipeline {

struct ShardPoolConfig {
  unsigned shards = 1;
  std::size_t queue_capacity = 1024;
  /// Adaptive-batching bound: max items a worker claims per wake-up.
  std::size_t max_wave = 64;

  // Observability (all optional; null/zero disables each hook).
  /// Per-wave handler latency histogram (fallback shared across shards).
  obs::Histogram* wave_ns = nullptr;
  /// Per-wave claimed-item-count histogram (adaptive batching behaviour).
  obs::Histogram* wave_items = nullptr;
  /// Per-shard overrides (index = shard). When a slot exists and is
  /// non-null it replaces the shared pointer for that shard's worker —
  /// multi-shard pools should use these so every worker records into its
  /// own series instead of all workers contending on one histogram's
  /// cache lines every wave.
  std::vector<obs::Histogram*> wave_ns_by_shard;
  std::vector<obs::Histogram*> wave_items_by_shard;
  /// Flight recorder for kBackpressureStall (from the shard queues) and
  /// kSlowWave (handler over slow_wave_ns) events.
  obs::FlightRecorder* recorder = nullptr;
  /// Identifies this pool's stage in recorded events (obs stage tag).
  std::uint32_t stage_tag = 0;
  /// Slow-wave threshold in nanoseconds; 0 disables kSlowWave events.
  std::uint64_t slow_wave_ns = 0;
};

template <typename Item>
class ShardPool {
 public:
  /// Called on the shard's worker thread with a claimed wave of items.
  using Handler = std::function<void(unsigned shard,
                                     std::vector<Item>& wave)>;

  ShardPool(const ShardPoolConfig& config, Handler handler)
      : config_{config}, handler_{std::move(handler)} {
    config_.shards = std::max(1u, config_.shards);
    config_.max_wave = std::max<std::size_t>(1, config_.max_wave);
    state_ = std::make_unique<ShardState[]>(config_.shards);
    queues_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
      queues_.push_back(std::make_unique<BoundedQueue<Item>>(
          config_.queue_capacity, config_.recorder, config_.stage_tag));
    }
    start();
  }

  ~ShardPool() { stop(); }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Blocking submit with backpressure. Returns false when the pool is
  /// stopped (the item is dropped).
  bool submit(unsigned shard, Item item) {
    ShardState& st = state_[shard];
    st.submitted.fetch_add(1, std::memory_order_relaxed);
    if (queues_[shard]->push(std::move(item))) return true;
    st.submitted.fetch_sub(1, std::memory_order_relaxed);  // refused
    return false;
  }

  /// Quiescence barrier: returns once every item submitted before this
  /// call has been handled. Safe from multiple threads; cheap when idle.
  void drain() {
    std::vector<std::uint64_t> targets(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
      targets[s] = state_[s].submitted.load(std::memory_order_relaxed);
    }
    // Announce the waiter before the predicate check so a worker that
    // completes a wave after this store either sees the waiter (and
    // notifies) or its completion is already visible to the predicate.
    drain_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock lock{drain_mu_};
      drain_cv_.wait(lock, [&] {
        for (unsigned s = 0; s < config_.shards; ++s) {
          if (state_[s].completed.load(std::memory_order_seq_cst) <
              targets[s]) {
            return false;
          }
        }
        return true;
      });
    }
    drain_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Drain-then-stop: pending items are still consumed before workers
  /// exit. Idempotent.
  void stop() {
    if (workers_.empty()) return;
    for (auto& q : queues_) q->close();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  /// Restart after stop(). Idempotent while running.
  void start() {
    if (!workers_.empty()) return;
    for (auto& q : queues_) q->reopen();
    workers_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
      workers_.emplace_back([this, s] { run(s); });
    }
  }

  [[nodiscard]] bool running() const noexcept { return !workers_.empty(); }
  [[nodiscard]] unsigned shards() const noexcept { return config_.shards; }

  [[nodiscard]] telemetry::StageStats stats(unsigned shard) const {
    return queues_[shard]->stats();
  }

  [[nodiscard]] telemetry::StageStats stats_total() const {
    telemetry::StageStats total;
    for (unsigned s = 0; s < config_.shards; ++s) total += stats(s);
    return total;
  }

 private:
  struct ShardState {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
  };

  void run(unsigned shard) {
    obs::Histogram* wave_ns = shard < config_.wave_ns_by_shard.size() &&
                                      config_.wave_ns_by_shard[shard]
                                  ? config_.wave_ns_by_shard[shard]
                                  : config_.wave_ns;
    obs::Histogram* wave_items =
        shard < config_.wave_items_by_shard.size() &&
                config_.wave_items_by_shard[shard]
            ? config_.wave_items_by_shard[shard]
            : config_.wave_items;
    std::vector<Item> wave;
    wave.reserve(config_.max_wave);
    for (;;) {
      wave.clear();
      const std::size_t n = queues_[shard]->pop_wave(wave, config_.max_wave);
      if (n == 0) break;  // closed and drained
      if (wave_items != nullptr) wave_items->record(n);
      {
        obs::SpanTimer span{wave_ns, config_.recorder,
                            config_.slow_wave_ns, config_.stage_tag, n};
        handler_(shard, wave);
      }
      state_[shard].completed.fetch_add(n, std::memory_order_seq_cst);
      // Notify only when a drain() is actually parked (ISSUE 6): on the
      // streaming hot path no one is waiting, and the shared-mutex
      // lock/notify per wave was measurable contention across workers.
      // The seq_cst completed-store / waiters-load here pairs with the
      // waiter's seq_cst announce-then-check: either we see the waiter,
      // or the waiter's predicate sees our completion.
      if (drain_waiters_.load(std::memory_order_seq_cst) != 0) {
        // Empty critical section pairs the notify with the waiter's
        // predicate check so no drain() wakeup is lost.
        { std::lock_guard lock{drain_mu_}; }
        drain_cv_.notify_all();
      }
    }
  }

  ShardPoolConfig config_;
  Handler handler_;
  std::unique_ptr<ShardState[]> state_;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> queues_;
  std::vector<std::thread> workers_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::atomic<int> drain_waiters_{0};
};

}  // namespace haystack::pipeline
