// Backend infrastructure builder.
//
// Materializes the Internet-side truth of the simulation: which service IPs
// host every catalog domain on every study day, with realistic structure:
//
//   * dedicated manufacturer infrastructure — a per-vendor address block,
//     a handful of service IPs per domain, daily DNS churn;
//   * exclusive cloud VMs — the paper's EC2-tenant case: the domain CNAMEs
//     into a cloud-provider name, and the IP serves only that chain;
//   * shared CDN hosting — domains CNAME into the CDN namespace and land
//     on IPs serving dozens of unrelated tenants;
//   * generic services (NTP pools, analytics, video CDNs) contacted by the
//     devices but classified out in Sec. 4.1.
//
// From this truth the builder derives the two external datasets the
// methodology consumes — the passive-DNS database (with the catalog's
// deliberate coverage gaps) and the certificate-scan database — plus the
// AS-level topology (ISP eyeball AS, cloud/CDN ASes, manufacturer ASes).
// The detection pipeline never reads the truth directly; it sees only the
// databases and the flows.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dns/passive_dns.hpp"
#include "net/asn.hpp"
#include "simnet/catalog.hpp"
#include "tlscert/scan_db.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// Well-known ASNs of the simulated topology.
namespace topo {
inline constexpr net::Asn kIspAs = 64500;     ///< the residential ISP
inline constexpr net::Asn kCloudAs = 64510;   ///< AWS-like cloud
inline constexpr net::Asn kCdnAs = 64520;     ///< Akamai-like CDN
inline constexpr net::Asn kGenericAs = 64530; ///< generic hosting
/// Manufacturer ASes are assigned from this base upward.
inline constexpr net::Asn kVendorAsBase = 64600;
/// IXP eyeball member ASes occupy [kIxpEyeballBase, +count).
inline constexpr net::Asn kIxpEyeballBase = 65001;
/// Other (non-eyeball) IXP member ASes.
inline constexpr net::Asn kIxpMemberBase = 65101;
}  // namespace topo

/// Tunables for the infrastructure builder.
struct BackendConfig {
  std::uint64_t seed = 42;
  /// Dedicated service IPs per domain: 1 + hash % spread.
  unsigned dedicated_ip_spread = 5;
  /// Probability that a dedicated domain remaps to fresh IPs on a new day.
  double daily_remap_probability = 0.12;
  /// Fraction of dedicated domains whose backend is dual-stack (AAAA).
  double dual_stack_fraction = 0.5;
  /// Size of the shared CDN address pool.
  unsigned cdn_pool_size = 1500;
  /// Shared domains resolve to this many CDN IPs per day.
  unsigned cdn_ips_per_domain = 3;
  /// Unrelated tenant domains recorded per CDN IP in passive DNS (what
  /// makes the exclusivity test fail).
  unsigned cdn_tenants_per_ip = 3;
  /// Number of IXP eyeball member ASes.
  unsigned ixp_eyeball_count = 12;
  /// Number of other IXP member ASes.
  unsigned ixp_member_count = 300;
};

/// One hosted catalog domain with its per-day address sets.
struct HostedDomain {
  const UnitDomain* domain = nullptr;
  bool shared = false;      ///< CDN-hosted
  bool cloud_vm = false;    ///< exclusive cloud-VM hosting
  dns::Fqdn cname;          ///< intermediate CNAME target ("" when direct)
  std::array<std::vector<net::IpAddress>, util::kStudyDays> daily_ips;
  /// IPv6 (AAAA) addresses; non-empty for the ~half of dedicated domains
  /// whose backends are dual-stack. Stable across the window (v6 renumber
  /// churn is rare in practice).
  std::vector<net::IpAddress> v6_ips;
};

/// The built infrastructure.
class Backend {
 public:
  Backend(const Catalog& catalog, const BackendConfig& config);

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// IPv4 service IPs a unit domain resolves to on `day` (simulation
  /// truth).
  [[nodiscard]] const std::vector<net::IpAddress>& ips_of(
      UnitId unit, unsigned domain_index, util::DayBin day) const;

  /// IPv6 service IPs of a unit domain (empty for v4-only backends).
  [[nodiscard]] const std::vector<net::IpAddress>& ips6_of(
      UnitId unit, unsigned domain_index) const;

  /// Hosting record of a unit domain.
  [[nodiscard]] const HostedDomain& hosting_of(UnitId unit,
                                               unsigned domain_index) const;

  /// Service IPs of the catalog's i-th generic domain on `day`.
  [[nodiscard]] const std::vector<net::IpAddress>& generic_ips_of(
      std::size_t generic_index, util::DayBin day) const;

  /// The passive-DNS view of this infrastructure (with coverage gaps).
  [[nodiscard]] const dns::PassiveDnsDb& pdns() const noexcept {
    return pdns_;
  }

  /// The certificate-scan view (Censys substitute).
  [[nodiscard]] const tlscert::CertScanDb& scans() const noexcept {
    return scans_;
  }

  /// AS topology: infra ASes, vendor ASes, ISP and IXP member ASes.
  [[nodiscard]] const net::AsnRegistry& asns() const noexcept { return asns_; }

  /// HTTPS banner checksum served for `domain` (what a scanner or the
  /// ground-truth probe records). Stable per domain.
  [[nodiscard]] std::uint64_t banner_checksum(const dns::Fqdn& domain) const;

  /// Eyeball IXP member ASNs (used by the IXP traffic model).
  [[nodiscard]] const std::vector<net::Asn>& ixp_eyeballs() const noexcept {
    return ixp_eyeballs_;
  }
  /// All IXP member ASNs (eyeballs first).
  [[nodiscard]] const std::vector<net::Asn>& ixp_members() const noexcept {
    return ixp_members_;
  }

  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const BackendConfig& config() const noexcept {
    return config_;
  }

 private:
  void build_topology();
  void host_unit_domains();
  void host_generic_domains();
  void populate_scan_db();

  [[nodiscard]] net::IpAddress alloc_dedicated_ip(const DetectionUnit& unit,
                                                  std::uint64_t salt);

  const Catalog& catalog_;
  BackendConfig config_;
  util::Pcg32 rng_;

  std::unordered_map<std::uint32_t, HostedDomain> hosted_;  // key: unit<<16|idx
  std::vector<std::array<std::vector<net::IpAddress>, util::kStudyDays>>
      generic_hosting_;
  std::vector<net::IpAddress> cdn_pool_;
  dns::PassiveDnsDb pdns_;
  tlscert::CertScanDb scans_;
  net::AsnRegistry asns_;
  std::vector<net::Asn> ixp_eyeballs_;
  std::vector<net::Asn> ixp_members_;
  std::unordered_map<std::string, net::Asn> vendor_as_;
  std::unordered_map<std::string, std::uint32_t> vendor_block_;
  std::uint32_t next_vendor_block_ = 0;
  std::uint32_t next_cloud_ip_ = 0;
  std::uint64_t next_v6_ip_ = 0;
  std::unordered_map<std::string, std::uint32_t> vendor_next_ip_;
};

}  // namespace haystack::simnet
