// String interning (ISSUE 6 tentpole): maps domain / rule-name strings to
// dense u32 handles at the decode boundary, so nothing past decode
// touches a string.
//
// Contract (see DESIGN.md §9):
//   - Handles are dense, assigned in first-intern order, and *stable for
//     the lifetime of the table*: growth/rehash never changes an existing
//     handle, and name(h) stays valid (backing storage is a deque of
//     immutable strings — rehashing moves only string_view keys).
//   - intern() and find()/name() may race from different threads;
//     readers take a shared lock, the insert path an exclusive one.
//   - Handles round-trip through HSCK checkpoints: serialize() writes
//     names in handle order, and restoring them into an empty table via
//     intern() reproduces every handle exactly.
//
// The table is small (rule names + monitored-domain labels in production,
// millions of entries in the property tests) and off the hot path: the
// hot path carries only the u32 handles.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace haystack::core {

class InternTable {
 public:
  /// Returned by find() when the string was never interned. intern()
  /// never returns it (the table is capped below 2^32 - 1 entries).
  static constexpr std::uint32_t kInvalid = 0xffffffffU;

  InternTable() = default;
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  /// Returns the handle for `name`, interning it first if needed.
  std::uint32_t intern(std::string_view name);

  /// Returns the handle for `name`, or kInvalid when absent.
  [[nodiscard]] std::uint32_t find(std::string_view name) const;

  /// The string behind a handle. The returned view stays valid for the
  /// table's lifetime (entries are never removed or moved). `handle`
  /// must be < size().
  [[nodiscard]] std::string_view name(std::uint32_t handle) const;

  [[nodiscard]] std::size_t size() const;

  /// Drops every entry (handles restart at 0).
  void clear();

  /// Appends the table to `out` as: u32 count, then per entry u16 length
  /// + raw bytes, in handle order. Restoring via restore() into an empty
  /// table reproduces every handle.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Restores from a serialize() image, replacing current contents.
  /// Returns false (leaving the table cleared) on a truncated or
  /// malformed image. `data`/`offset` advance past the consumed section.
  bool restore(std::span<const std::uint8_t> data, std::size_t& offset);

 private:
  mutable std::shared_mutex mutex_;
  /// Backing storage. A deque never relocates existing elements on
  /// push_back, which is what makes handles and name() views stable
  /// across growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace haystack::core
