// Streaming scan: the scenario_scan workflow through the deployment-shape
// streaming pipeline. One day of wild ISP traffic is exported by a border
// fleet as real NetFlow v9 datagrams (options announcements, impairment,
// the lot) and pushed into pipeline::IngestPipeline — concurrent decode /
// normalize / detect stages over bounded backpressured queues — then the
// per-stage telemetry and detection table are printed.
//
// Usage: streaming_scan <scenario-file> [hours]
//
// Scenario keys shaping the pipeline itself:
//   pipeline_shards 8
//   pipeline_queue 1024
//   pipeline_wave 64
#include <fstream>
#include <iostream>

#include "pipeline/scenario_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  if (argc < 2) {
    std::cerr << "usage: streaming_scan <scenario-file> [hours]\n";
    return 2;
  }
  std::ifstream file{argv[1]};
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::string error;
  const auto scenario = simnet::parse_scenario(file, &error);
  if (!scenario) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  pipeline::StreamingReplayConfig config;
  if (argc > 2) config.hours = static_cast<unsigned>(std::atoi(argv[2]));
  const auto result =
      pipeline::replay_scenario_streaming(*scenario, config, &error);
  if (!result) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  const auto& st = result->stats;
  std::cout << "Streamed " << util::fmt_count(result->datagrams)
            << " export datagrams (" << util::fmt_count(st.flows_decoded)
            << " flows, " << util::fmt_count(result->observations)
            << " observations) through "
            << st.detect_shards.size() << " detector shards over "
            << config.hours << " hours\n\n";

  util::TextTable stages;
  stages.header({"Stage", "Items", "Waves", "Max depth", "Prod stalls",
                 "Cons stalls"});
  const auto stage_row = [&](const char* name,
                             const telemetry::StageStats& s) {
    stages.row({name, util::fmt_count(s.dequeued), util::fmt_count(s.waves),
                util::fmt_count(s.max_depth),
                util::fmt_count(s.producer_stalls),
                util::fmt_count(s.consumer_stalls)});
  };
  stage_row("decode", st.decode);
  stage_row("normalize", st.normalize);
  stage_row("detect (all shards)", st.detect);
  stages.print(std::cout);
  if (st.malformed_datagrams > 0 || st.unknown_version > 0) {
    std::cout << "Malformed: " << st.malformed_datagrams
              << ", unknown version: " << st.unknown_version << "\n";
  }

  std::cout << "\n";
  util::TextTable table;
  table.header({"Service", "Subscribers detected"});
  for (const auto& [name, count] : result->per_service) {
    table.row({name, util::fmt_count(count)});
  }
  table.print(std::cout);
  std::cout << "\nSubscribers with any IoT activity: "
            << util::fmt_count(result->subscribers_detected) << "\n";
  return 0;
}
