// Tests for the deployment-grade pipelines: the multi-router border fleet
// (sampling provenance via options announcements) and the packet-level
// home capture / metering path (conservation through the flow cache).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/detector.hpp"
#include "pipeline/ingest.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/manual_analysis.hpp"
#include "telemetry/border_fleet.hpp"
#include "telemetry/home_capture.hpp"

namespace haystack {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    gt_ = new simnet::GroundTruthSim(*backend_, simnet::GroundTruthConfig{});
    rules_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete rules_;
    delete gt_;
    delete backend_;
    delete catalog_;
  }
  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static simnet::GroundTruthSim* gt_;
  static core::RuleSet* rules_;
};

simnet::Catalog* PipelineTest::catalog_ = nullptr;
simnet::Backend* PipelineTest::backend_ = nullptr;
simnet::GroundTruthSim* PipelineTest::gt_ = nullptr;
core::RuleSet* PipelineTest::rules_ = nullptr;

TEST_F(PipelineTest, FleetLearnsSamplingFromAnnouncements) {
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  const auto out = fleet.observe(gt_->hour_flows(24), 24);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(fleet.sampling().known_sources(), 4u);
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(fleet.sampling().interval_of(100 + r), 1000u);
  }
  // Every decoded record carries the announced interval, not a per-record
  // field (the exporters zeroed it).
  for (const auto& lf : out) {
    EXPECT_EQ(lf.flow.sampling, 1000u);
  }
  EXPECT_EQ(fleet.collector_stats().malformed_packets, 0u);
}

TEST_F(PipelineTest, FleetRoutesByDestinationConsistently) {
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  const auto flows = gt_->hour_flows(30);
  std::map<net::IpAddress, unsigned> seen;
  for (const auto& lf : flows) {
    const unsigned r = fleet.router_of(lf.flow.key.dst);
    const auto [it, inserted] = seen.emplace(lf.flow.key.dst, r);
    EXPECT_EQ(it->second, r) << "destination flapped between routers";
  }
  // All routers get work.
  std::set<unsigned> used;
  for (const auto& [ip, r] : seen) used.insert(r);
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(PipelineTest, FleetDetectionMatchesSingleVantageStatistically) {
  // The fleet pipeline must not bias detection: over the active window the
  // per-service detection outcomes should agree with the single-exporter
  // vantage for the strong (fast-detected) services.
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  core::Detector det{rules_->hitlist, *rules_, {.threshold = 0.4}};
  for (util::HourBin h = 0; h < 48; ++h) {
    for (const auto& lf : fleet.observe(gt_->hour_flows(h), h)) {
      det.observe(1, lf.flow.key.dst, lf.flow.key.dst_port,
                  lf.flow.packets, h);
    }
  }
  for (const char* name : {"Alexa Enabled", "Amazon Product", "Fire TV",
                           "Philips Dev.", "Yi Camera"}) {
    const auto* rule = rules_->rule_by_name(name);
    ASSERT_NE(rule, nullptr);
    EXPECT_TRUE(det.detected(1, rule->service)) << name;
  }
}

TEST_F(PipelineTest, HomeCaptureConservesEventsAndBytes) {
  telemetry::HomePacketPipeline pipeline{{}};
  const auto flows = gt_->hour_flows(26);
  auto result = pipeline.meter_hour(flows, 26);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());

  std::uint64_t pkts_out = 0;
  std::uint64_t bytes_out = 0;
  for (const auto& rec : result.flows) {
    pkts_out += rec.packets;
    bytes_out += rec.bytes;
  }
  EXPECT_EQ(pkts_out, result.events_in);
  EXPECT_EQ(bytes_out, result.bytes_in);
  // Under the default cap almost all flows materialize 1 event per packet.
  EXPECT_GE(result.events_in, result.packets_in * 95 / 100);
}

TEST_F(PipelineTest, HomeCapturePreservesKeyUniverse) {
  telemetry::HomePacketPipeline pipeline{{}};
  const auto flows = gt_->hour_flows(27);
  auto result = pipeline.meter_hour(flows, 27);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());

  std::set<flow::FlowKey> in_keys;
  std::set<flow::FlowKey> out_keys;
  for (const auto& lf : flows) in_keys.insert(lf.flow.key);
  for (const auto& rec : result.flows) out_keys.insert(rec.key);
  EXPECT_EQ(in_keys, out_keys);
}

TEST_F(PipelineTest, HomeCaptureCapBoundsMemoryNotTotals) {
  telemetry::HomeCaptureConfig config;
  config.max_packets_per_flow = 8;
  telemetry::HomePacketPipeline pipeline{config};
  const auto flows = gt_->hour_flows(28);
  auto result = pipeline.meter_hour(flows, 28);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());
  std::uint64_t bytes_out = 0;
  for (const auto& rec : result.flows) bytes_out += rec.bytes;
  EXPECT_EQ(bytes_out, result.bytes_in);  // bytes exact even when capped
  EXPECT_LE(result.events_in, flows.size() * 8);
}

using EvidenceRow =
    std::tuple<core::SubscriberKey, core::ServiceId, std::uint64_t,
               std::uint64_t, std::uint16_t, std::uint64_t, util::HourBin,
               util::HourBin>;

template <typename DetectorT>
std::vector<EvidenceRow> evidence_snapshot(const DetectorT& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                            const core::Evidence& ev) {
    rows.emplace_back(s, sv, ev.mask(0), ev.mask(1), ev.distinct(), ev.packets(),
                      ev.first_seen(), ev.satisfied_hour());
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_F(PipelineTest, StreamingDatagramPathMatchesSynchronousCollector) {
  // End-to-end wire differential: two identical fleets export the same
  // hours (export_hour is deterministic, asserted datagram-for-datagram);
  // one stream feeds the staged IngestPipeline, the other a synchronous
  // collector + normalizer + detector on the calling thread. Evidence
  // must agree bit for bit.
  constexpr std::uint64_t kKey = 0x5eed;
  telemetry::BorderFleetConfig fcfg;
  fcfg.routers = 3;
  fcfg.sampling = 200;
  telemetry::BorderRouterFleet fleet_a{fcfg};
  telemetry::BorderRouterFleet fleet_b{fcfg};

  pipeline::IngestConfig icfg;
  icfg.shards = 4;
  icfg.queue_capacity = 8;  // small queues: stages genuinely overlap
  icfg.anonymization_key = kKey;
  pipeline::IngestPipeline pipe{rules_->hitlist, *rules_, icfg};

  flow::nf9::Collector sync_collector{
      flow::nf9::CollectorConfig{.dedup_window = icfg.dedup_window}};
  core::Detector sync_det{rules_->hitlist, *rules_, icfg.detector};
  const auto normalize = pipeline::default_normalizer(kKey);

  std::uint64_t datagrams = 0;
  for (util::HourBin h = 0; h < 6; ++h) {
    std::vector<flow::FlowRecord> records;
    for (const auto& lf : gt_->hour_flows(h)) records.push_back(lf.flow);
    auto wire_a = fleet_a.export_hour(records, h);
    const auto wire_b = fleet_b.export_hour(records, h);
    ASSERT_EQ(wire_a, wire_b) << "export_hour not deterministic, hour " << h;
    for (const auto& datagram : wire_b) {
      std::vector<flow::FlowRecord> decoded;
      (void)sync_collector.ingest(datagram, decoded);
      for (const auto& rec : decoded) {
        if (const auto obs = normalize(rec, h)) {
          sync_det.observe(obs->subscriber, obs->server, obs->port,
                           obs->packets, obs->hour);
        }
      }
    }
    for (auto& datagram : wire_a) {
      ASSERT_TRUE(pipe.push_datagram(std::move(datagram), h));
      ++datagrams;
    }
  }
  pipe.shutdown();

  const auto stats = pipe.stats();
  EXPECT_EQ(stats.datagrams, datagrams);
  EXPECT_EQ(stats.malformed_datagrams, 0u);
  EXPECT_EQ(stats.unknown_version, 0u);
  EXPECT_GT(stats.flows_decoded, 0u);
  // The default normalizer never drops a flow.
  EXPECT_EQ(stats.observations, stats.flows_decoded);
  EXPECT_EQ(pipe.detector().stats().flows, sync_det.stats().flows);
  EXPECT_EQ(evidence_snapshot(pipe.detector()), evidence_snapshot(sync_det));
}

TEST_F(PipelineTest, MeteringStageEnforcesCacheBound) {
  // FlowCache::max_entries driven from the streaming metering stage: the
  // resident-flow high-water mark must respect the bound while every
  // packet is conserved into exactly one exported flow.
  pipeline::IngestConfig cfg;
  cfg.shards = 2;
  cfg.metering.max_entries = 64;
  cfg.metering.active_timeout_ms = 3'600'000;  // only the bound can expire
  cfg.metering.idle_timeout_ms = 3'600'000;
  pipeline::IngestPipeline pipe{rules_->hitlist, *rules_, cfg};

  constexpr std::uint64_t kPackets = 5000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    flow::PacketEvent pkt;
    pkt.key.src = net::IpAddress::v4(0x0a000001u);
    pkt.key.dst =
        net::IpAddress::v4(0xC0A80000u + static_cast<std::uint32_t>(i % 97));
    pkt.key.src_port = static_cast<std::uint16_t>(i);  // distinct keys
    pkt.key.dst_port = 443;
    pkt.bytes = 64;
    pkt.timestamp_ms = 1000 + i;
    ASSERT_TRUE(pipe.push_packet(pkt, /*hour=*/0));
  }
  pipe.shutdown();

  const auto stats = pipe.stats();
  EXPECT_EQ(stats.packets_metered, kPackets);
  EXPECT_GT(stats.metering_high_water, 0u);
  EXPECT_LE(stats.metering_high_water, cfg.metering.max_entries);
  EXPECT_EQ(stats.metered_flows, kPackets);        // one flow per key
  EXPECT_EQ(stats.metered_packets_out, kPackets);  // conservation
  EXPECT_EQ(stats.metering_depth, 0u);             // flushed at shutdown
  EXPECT_EQ(stats.observations, kPackets);
  EXPECT_EQ(pipe.detector().stats().flows, kPackets);
}

}  // namespace
}  // namespace haystack
