// Evidence-delta wire format for the multi-vantage collector fleet
// (ISSUE 7): the datagrams a vantage collector ships to the aggregator.
//
// The format is a sibling of the HSCK checkpoint (core/checkpoint): the
// same big-endian ByteWriter primitives, the same label-table idea as the
// v2 "interned" checkpoint — but where a checkpoint is a full, private
// snapshot, a delta is a *per-epoch diff of cumulative state*, built to
// survive an unreliable channel:
//
//   - Rows carry the emitting collector's CUMULATIVE evidence for each
//     (subscriber, label) it touched during the epoch — cumulative mask,
//     cumulative sampled packets, collector-local first-seen hour — not
//     increments. A state-carrying row makes the aggregator's merge a
//     join (bitwise OR / max / min): applying the same delta twice, or
//     applying a stale one after a newer one, is a no-op. Dropped,
//     duplicated, and reordered delta datagrams are therefore harmless by
//     construction (flow::ImpairedLink runs on this channel in the fault
//     suites).
//   - Evidence rows are keyed by an index into the delta's own embedded
//     label table (rule names), never by a raw intern handle or service
//     id: core::InternTable handles are process-local, and two collectors
//     interning the same rule universe in different orders must still
//     merge correctly (pinned by VantageInternOrder tests).
//   - `distinct` and `satisfied_hour` are deliberately absent: the
//     aggregator derives distinct as popcount(mask) and stamps
//     satisfied_hour itself when it seals an epoch, which is what keeps
//     the merged map bit-for-bit equal to a single-process detector.
//
// Layout (big-endian):
//
//   u32  magic   "HSVD" (0x48535644)
//   u32  version (kDeltaVersion)
//   u32  collector id
//   u32  seq     transmission sequence number (retransmissions reuse the
//                original seq, so the aggregator's SequenceTracker
//                classifies them as replays; a collector restart resets
//                the counter and classifies as a restart)
//   u32  epoch   hour bin this delta covers (or, for a snapshot, the
//                epoch the snapshot state is current through)
//   u8   kind    0 = per-epoch delta, 1 = full snapshot (resync/late join)
//   u64  threshold, IEEE-754 bit pattern (a delta merged under a
//                different coverage threshold would be wrong, exactly as
//                for checkpoints)
//   u64  flows   collector-cumulative observation count at end of epoch
//   u64  matched collector-cumulative hitlist-match count
//   u32  label count, then per label: u16 length + raw bytes
//   u64  row count
//   rows, sorted by (subscriber, service) at the emitter so identical
//   state produces identical bytes:
//     u64 subscriber, u32 label index,
//     u64 mask[0], u64 mask[1], u64 packets, u32 first_seen
//
// Version 2 (ISSUE 9, "compact" rows) keeps the entire header and label
// table and changes only the row encoding: each row spends a flag byte to
// drop the second mask word (rarely nonzero — the catalog maximum is 34
// monitored domains) and to narrow the cumulative packet counter:
//
//   rows (v2), same sort order:
//     u64 subscriber, u32 label index
//     u8  flags: bit0 = mask[1] present, bit1 = packets written as u64
//         (canonical: u64 only when the value exceeds 0xffffffff)
//     u64 mask[0]; u64 mask[1] when bit0
//     u32 or u64 packets
//     u32 first_seen
//
// decode_delta() is strict: wrong magic/version/kind, label indices out
// of range, counts the buffer cannot hold, truncation, trailing bytes, or
// (v2) non-canonical field widths all reject the datagram (the
// structure-aware fuzzer in tests/fuzz/fuzz_vantage_delta.cpp hammers
// exactly these guards), and a successful decode re-encodes to
// byte-identical input — the decoded `version` field keeps v1 datagrams
// re-encoding as v1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace haystack::flow {

inline constexpr std::uint32_t kDeltaMagic = 0x48535644U;  // "HSVD"
inline constexpr std::uint32_t kDeltaVersion = 1;
inline constexpr std::uint32_t kDeltaVersionCompact = 2;

enum class DeltaKind : std::uint8_t {
  kDelta = 0,     ///< evidence touched during one epoch (cumulative rows)
  kSnapshot = 1,  ///< full cumulative state (restart resync / late join)
};

/// One evidence row: the emitting collector's cumulative state for a
/// (subscriber, label) pair.
struct DeltaRow {
  std::uint64_t subscriber = 0;
  std::uint32_t label = 0;  ///< index into EvidenceDelta::labels
  std::uint64_t mask0 = 0;
  std::uint64_t mask1 = 0;
  std::uint64_t packets = 0;       ///< cumulative sampled packets
  std::uint32_t first_seen = 0;    ///< collector-local first-seen hour
};

/// A decoded delta (or snapshot) message.
struct EvidenceDelta {
  /// Wire version this message encodes to (and, after decode_delta, the
  /// version it arrived as — re-encoding a decoded message reproduces the
  /// original bytes). New emitters default to the compact v2 rows.
  std::uint32_t version = kDeltaVersionCompact;
  std::uint32_t collector = 0;
  std::uint32_t seq = 0;
  std::uint32_t epoch = 0;
  DeltaKind kind = DeltaKind::kDelta;
  std::uint64_t threshold_bits = 0;
  std::uint64_t flows = 0;
  std::uint64_t matched = 0;
  std::vector<std::string> labels;
  std::vector<DeltaRow> rows;
};

/// Serializes a delta. Rows are emitted in the order given; emitters sort
/// by (subscriber, label) so identical state produces identical bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_delta(
    const EvidenceDelta& delta);

/// Parses a delta datagram. Returns false — leaving `out` unspecified —
/// on any malformed input; `error`, when non-null, receives the reason.
[[nodiscard]] bool decode_delta(std::span<const std::uint8_t> datagram,
                                EvidenceDelta& out,
                                std::string* error = nullptr);

}  // namespace haystack::flow
