// Versioned, precompiled rule state (ISSUE 8 tentpole).
//
// The live control plane hot-reloads rule sets, hitlists, and thresholds
// while ingest runs. That only works if "the rules" are an immutable value
// the hot path can hold by pointer: a CompiledRuleVersion bundles one
// rule set + detector config + the per-service dispatch tables the detect
// loop reads (rule_of / RuleFast) + the boundary SignatureIndex compiled
// from that version's hitlist, all tagged with a monotonically increasing
// version id. Producers and shard workers pass shared_ptrs to these
// around; a reload builds the next version off the hot path and swaps a
// pointer — nothing ever mutates a published version.
//
// The evaluation helpers (eval_detection_hour / eval_verdict) are the ONE
// implementation of the hierarchy-aware read path: the live Detector and
// the epoch-published read views (core/read_view.hpp) both call them, so
// snapshot queries are bit-for-bit the synchronous answers by
// construction, and every Verdict carries the version id it was evaluated
// under.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/evidence_map.hpp"
#include "core/hitlist.hpp"
#include "core/rules.hpp"
#include "core/signature_index.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

class InternTable;

/// Anonymized subscriber identifier (mirrors detector.hpp; declared here
/// so the eval helpers don't need the full detector header).
using SubscriberKey = std::uint64_t;

/// Detector configuration (shared with detector.hpp via this header).
struct DetectorConfig {
  /// Domain-coverage threshold D (Sec. 4.3.2; the paper's conservative
  /// default is 0.4).
  double threshold = 0.4;
  /// Estimated observation-channel loss fraction above which the detector
  /// runs in degraded mode: verdicts become low-confidence, and the
  /// evidence requirement is relaxed in proportion to the loss (ISSUE 2).
  double loss_tolerance = 0.05;
};

/// Confidence qualifier for loss-aware verdicts.
enum class Confidence : std::uint8_t {
  kHigh,  ///< full evidence requirement met on a healthy channel
  kLow,   ///< verdict rendered under a degraded observation channel
};

/// A loss-aware detection verdict (ISSUE 2). On a healthy channel this is
/// just detection_hour() with kHigh confidence. When the estimated loss
/// exceeds the tolerance, missing evidence may be the channel's fault:
/// services satisfying a loss-relaxed requirement are reported detected at
/// kLow confidence (with no hour, since the full requirement never fired),
/// and negative verdicts are themselves flagged kLow.
struct Verdict {
  bool detected = false;
  Confidence confidence = Confidence::kHigh;
  /// Detection hour; set only for full-evidence (kHigh) detections.
  std::optional<util::HourBin> hour;
  /// Rule-set version the verdict was evaluated under (ISSUE 8). Every
  /// verdict is rendered from exactly one CompiledRuleVersion — there is
  /// no way to mix requirements from two versions in one answer.
  std::uint64_t ruleset_version = 0;
};

/// Per-(subscriber, service) evidence state — the per-entry payload of the
/// hottest table in the system, packed for the 15 M-line tier (DESIGN.md
/// §12): 28 bytes, align 4 (the old layout was 40 bytes align 8, 56-byte
/// map slots vs 40 now). Fields are private behind accessors so the wire
/// formats and merge code can't silently depend on the layout:
///  - the distinct-domain count is no longer stored; it is popcount(mask)
///    by invariant (the detector only ever sets fresh bits), so it is
///    derived on read.
///  - hours are stored as u16: a study is 336 hours (util::kStudyHours)
///    and the external HourBin type stays u32, widened/narrowed (with
///    saturation at 0xfffe) at the accessor boundary. kNever round-trips
///    exactly.
///  - the 128-bit domain mask and 64-bit packet counter live in u32
///    halves so the struct stays align-4 and map slots avoid 8-byte tail
///    padding.
struct Evidence {
  static constexpr util::HourBin kNever = 0xffffffffU;

  /// 64-bit word `w` (0 or 1) of the monitored-domain bitset (up to 128
  /// positions; Fire TV's 34 is the catalog maximum).
  [[nodiscard]] std::uint64_t mask(unsigned w) const noexcept {
    return std::uint64_t{mask_[2 * w]} |
           (std::uint64_t{mask_[2 * w + 1]} << 32);
  }
  void set_mask(unsigned w, std::uint64_t bits) noexcept {
    mask_[2 * w] = static_cast<std::uint32_t>(bits);
    mask_[2 * w + 1] = static_cast<std::uint32_t>(bits >> 32);
  }
  void or_mask(unsigned w, std::uint64_t bits) noexcept {
    mask_[2 * w] |= static_cast<std::uint32_t>(bits);
    mask_[2 * w + 1] |= static_cast<std::uint32_t>(bits >> 32);
  }
  void set_bit(std::uint16_t position) noexcept {
    mask_[position >> 5] |= std::uint32_t{1} << (position & 31U);
  }
  [[nodiscard]] bool sees(std::uint16_t position) const noexcept {
    return (mask_[position >> 5] >> (position & 31U)) & 1U;
  }

  /// Distinct monitored domains seen — popcount(mask) by invariant.
  [[nodiscard]] std::uint16_t distinct() const noexcept {
    return static_cast<std::uint16_t>(
        std::popcount(mask_[0]) + std::popcount(mask_[1]) +
        std::popcount(mask_[2]) + std::popcount(mask_[3]));
  }

  /// Cumulative sampled packets.
  [[nodiscard]] std::uint64_t packets() const noexcept {
    return std::uint64_t{packets_lo_} | (std::uint64_t{packets_hi_} << 32);
  }
  void set_packets(std::uint64_t v) noexcept {
    packets_lo_ = static_cast<std::uint32_t>(v);
    packets_hi_ = static_cast<std::uint32_t>(v >> 32);
  }
  void add_packets(std::uint64_t v) noexcept { set_packets(packets() + v); }

  [[nodiscard]] util::HourBin first_seen() const noexcept {
    return first_seen_;
  }
  void set_first_seen(util::HourBin h) noexcept {
    first_seen_ = narrow_hour(h);
  }

  /// Hour the rule's own coverage requirement was first met; kNever until.
  [[nodiscard]] util::HourBin satisfied_hour() const noexcept {
    return satisfied_ == kNever16 ? kNever : satisfied_;
  }
  void set_satisfied_hour(util::HourBin h) noexcept {
    satisfied_ = h == kNever ? kNever16 : narrow_hour(h);
  }
  [[nodiscard]] bool satisfied() const noexcept {
    return satisfied_ != kNever16;
  }

 private:
  static constexpr std::uint16_t kNever16 = 0xffff;

  static std::uint16_t narrow_hour(util::HourBin h) noexcept {
    return h >= kNever16 ? std::uint16_t{0xfffe} : static_cast<std::uint16_t>(h);
  }

  std::uint32_t mask_[4]{0, 0, 0, 0};
  std::uint32_t packets_lo_ = 0;
  std::uint32_t packets_hi_ = 0;
  std::uint16_t first_seen_ = 0;
  std::uint16_t satisfied_ = kNever16;
};
static_assert(sizeof(Evidence) == 28 && alignof(Evidence) == 4,
              "Evidence must stay packed (DESIGN.md §12)");

/// Per-service data precompiled once per version so the interned detect
/// path never dereferences a DetectionRule: the evidence requirement under
/// the version's threshold and the critical-domain bitset (nonzero only
/// when the critical domain alone is sufficient).
struct RuleFast {
  std::array<std::uint64_t, 2> critical_mask{0, 0};
  std::uint16_t required = 1;
  bool has_rule = false;
};

/// One immutable compiled rule version. Built by compile(); never mutated
/// after publication. Shard workers, producers, and read views share it by
/// shared_ptr, so a version stays alive exactly as long as any in-flight
/// chunk, snapshot, or verdict still references it.
struct CompiledRuleVersion {
  /// Monotonic version id; 1 is the construction-time version.
  std::uint64_t id = 1;
  /// The rule set this version compiles. Never null. For the
  /// construction-time version this aliases the caller-owned set (the
  /// pre-reload lifetime contract); for reloaded versions `owned` keeps
  /// it alive.
  const RuleSet* rules = nullptr;
  /// The daily hitlist raw-IP lookups resolve against — usually
  /// &rules->hitlist, but the construction-time version honors a
  /// separately supplied hitlist (the pre-ISSUE-8 constructor contract).
  const Hitlist* hitlist = nullptr;
  std::shared_ptr<const RuleSet> owned;
  DetectorConfig config{};
  /// Rule pointer per service id for O(1) dispatch (into *rules).
  std::vector<const DetectionRule*> rule_of;
  std::vector<RuleFast> fast_rules;  ///< parallel to rule_of
  /// Boundary (IP, port, day) -> Signature index compiled from this
  /// version's hitlist. Null when the version was compiled without one
  /// (a plain single-shard Detector never consults it).
  std::shared_ptr<const SignatureIndex> index;

  [[nodiscard]] const DetectionRule* rule_for(ServiceId service) const {
    return service < rule_of.size() ? rule_of[service] : nullptr;
  }
};

/// Compiles `rules` + `config` into an immutable version. When
/// `build_index` is set, also compiles the SignatureIndex from `hitlist`
/// and interns rule/domain labels into `intern` (which may be null).
/// `owned` carries ownership for reloaded sets and may be null for the
/// construction-time version (caller guarantees lifetime).
[[nodiscard]] std::shared_ptr<const CompiledRuleVersion> compile_rules(
    const Hitlist& hitlist, const RuleSet& rules,
    const DetectorConfig& config, std::uint64_t id,
    std::shared_ptr<const RuleSet> owned, bool build_index,
    InternTable* intern);

/// Hierarchy-aware detection over any evidence map: the hour at which the
/// service and all of its ancestors were satisfied for this subscriber,
/// or nullopt. The single read-path implementation shared by the live
/// Detector and the published read views.
[[nodiscard]] std::optional<util::HourBin> eval_detection_hour(
    const FlatEvidenceMap<Evidence>& evidence, const CompiledRuleVersion& v,
    SubscriberKey subscriber, ServiceId service);

/// Loss-aware verdict over any evidence map, tagged with v.id.
[[nodiscard]] Verdict eval_verdict(const FlatEvidenceMap<Evidence>& evidence,
                                   const CompiledRuleVersion& v,
                                   double observed_loss,
                                   SubscriberKey subscriber,
                                   ServiceId service);

}  // namespace haystack::core
