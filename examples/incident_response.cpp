// Incident response (paper Sec. 7.2): a botnet of compromised cameras
// floods a victim. The ISP (1) flags the lines sourcing the flood from the
// same sampled NetFlow it always collects, (2) asks the detector which IoT
// service is common to those lines, and (3) compiles a mitigation plan
// that blocks the compromised device's control traffic — without touching
// anything else.
//
// Usage: incident_response [lines]
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/detector.hpp"
#include "core/forensics.hpp"
#include "core/mitigation.hpp"
#include "simnet/attack.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  const std::uint32_t lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40'000;

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog, {.lines = lines}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          simnet::WildIspConfig{}};

  // The adversary: Wansview cameras running flood malware.
  simnet::AttackConfig attack;
  attack.product_name = "Wansview Cam";
  simnet::BotnetSim botnet{population, attack};
  std::cout << "Scenario: " << botnet.infected().size()
            << " compromised cameras flooding "
            << attack.victim.to_string() << ":" << attack.victim_port
            << "\n\n";

  // Step 1+2: one day of normal detection, plus suspicious-source flags.
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  std::unordered_set<core::SubscriberKey> suspicious;
  for (util::HourBin h = 0; h < 24; ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& o) {
      detector.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                       o.flow.packets, h);
    });
    botnet.hour_attack_observations(h, [&](const simnet::AttackObs& o) {
      if (o.flow.packets >= 10) suspicious.insert(o.line);
    });
  }
  std::cout << "Flagged " << suspicious.size()
            << " lines sourcing flood traffic\n\n";

  // Step 3: what device do the flooding lines have in common?
  const auto ranking = core::rank_common_services(detector, suspicious);
  util::TextTable table;
  table.header({"Service", "Share of suspicious", "Baseline share",
                "Lift"});
  for (std::size_t i = 0; i < std::min<std::size_t>(ranking.size(), 8);
       ++i) {
    const auto& row = ranking[i];
    table.row({row.name, util::fmt_percent(row.suspicious_share),
               util::fmt_percent(row.baseline_share),
               util::fmt_double(row.lift, 1)});
  }
  table.print(std::cout);
  if (ranking.empty()) return 1;

  // Step 4: compile the mitigation.
  core::MitigationPlanner planner{rules,
                                  *net::IpAddress::parse("192.0.2.254")};
  planner.request(ranking.front().name, core::MitigationAction::kRedirect);
  const auto plan = planner.compile(0);
  std::cout << "\nVerdict: " << ranking.front().name
            << " is the common device. Compiled a redirect plan with "
            << plan.entries().size()
            << " (IP, port) entries pointing its control traffic at the "
               "patch/notice sinkhole.\n";
  return 0;
}
