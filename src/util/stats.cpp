#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace haystack::util {

void Ecdf::freeze() {
  if (!frozen_) {
    std::sort(samples_.begin(), samples_.end());
    frozen_ = true;
  }
}

double Ecdf::fraction_at(double x) const {
  assert(frozen_);
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  assert(frozen_);
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

const std::vector<double>& Ecdf::sorted() const {
  assert(frozen_);
  return samples_;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<std::size_t> top_fraction_indices(
    const std::vector<std::uint64_t>& weights, double fraction) {
  if (weights.empty()) return {};
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(weights.size())));
  count = std::max<std::size_t>(count, 1);
  std::vector<std::size_t> idx(weights.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(count),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return weights[a] > weights[b];
                    });
  idx.resize(count);
  return idx;
}

}  // namespace haystack::util
