// Process-wide metric registry (ISSUE 5).
//
// The paper's in-the-wild deployment (15 M subscriber lines at the ISP,
// 800+ IXP members) stands or falls with the operator's ability to see
// where the collection pipeline is bottlenecked, lossy, or degraded.
// This registry is the measurement substrate: named counters, gauges and
// log2-bucketed histograms whose hot path is a single relaxed atomic op —
// wait-free, no locks, no allocation. Registration (name → metric) is the
// only locked path and happens once per metric at wiring time.
//
// Ownership: the registry hands out std::shared_ptr handles, so a metric
// outlives both the registry snapshot that reads it and any component
// that bumps it — scrape-during-teardown cannot dangle.
//
// Stripping: building with -DHAYSTACK_OBS_STRIPPED compiles
// Histogram::record (and obs::SpanTimer) down to no-ops for the
// instrumentation-overhead baseline (bench/obs_overhead.sh). Counters and
// gauges stay live even when stripped: they replaced the pipeline's
// pre-existing ad-hoc atomics one-for-one and back the Stats facades the
// tier-1 tests assert on.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace haystack::obs {

#ifdef HAYSTACK_OBS_STRIPPED
inline constexpr bool kStripped = true;
#else
inline constexpr bool kStripped = false;
#endif

/// Monotonic event counter. Wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depth, cache residency). Wait-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Monotonic high-water update (lock-free CAS loop, rarely contended).
  void max_of(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram: bucket 0 holds zeros, bucket b (1..62) holds
/// values in [2^(b-1), 2^b), bucket 63 the rest. record() is three relaxed
/// atomic adds — wait-free, no ordering between them, so a concurrent
/// snapshot may see count/sum/buckets a few events apart (documented
/// scrape semantics; each value individually is never torn).
class Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  void record(std::uint64_t v) noexcept {
#ifndef HAYSTACK_OBS_STRIPPED
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  [[nodiscard]] static constexpr unsigned bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0
                  : std::min<unsigned>(kBuckets - 1,
                                       static_cast<unsigned>(
                                           std::bit_width(v)));
  }

  /// Inclusive upper bound of a bucket (the Prometheus `le` value).
  [[nodiscard]] static constexpr std::uint64_t upper_bound(
      unsigned bucket) noexcept {
    if (bucket == 0) return 0;
    if (bucket >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    for (unsigned b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Upper bound of the bucket containing the q-th sample (coarse — log2
/// resolution), 0 on an empty histogram.
[[nodiscard]] std::uint64_t histogram_quantile(
    const Histogram::Snapshot& snapshot, double q) noexcept;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// (key, value) label pairs, e.g. {{"stage", "decode"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metric registry. counter()/gauge()/histogram() are get-or-create:
/// a second call with the same (name, labels) returns the same instance,
/// so independent components can share one series. A kind collision (a
/// gauge requested under a registered counter's name) returns a detached
/// metric that is live but never exported — callers own their naming.
class MetricRegistry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const Labels& labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name,
                               const Labels& labels = {});
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       const Labels& labels = {});

  /// One exported series at snapshot time.
  struct Sample {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    Histogram::Snapshot hist{};
  };

  /// Consistent-ordering snapshot: sorted by (name, labels) so exports are
  /// deterministic. Safe concurrently with every hot-path update.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  /// Drops every registration. Outstanding handles stay valid (shared
  /// ownership) but the metrics stop being exported. Test hygiene only.
  void clear();

  /// Process-wide default registry.
  static MetricRegistry& global();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        MetricKind kind, bool& kind_mismatch);

  mutable std::mutex mu_;
  // Keyed by name + rendered labels; std::map keeps snapshots sorted.
  std::map<std::string, Entry> metrics_;
};

/// Canonical series key, also used by the exporters: name{k="v",...}.
[[nodiscard]] std::string series_key(const std::string& name,
                                     const Labels& labels);

}  // namespace haystack::obs
