// Precompiled signature index (ISSUE 6 tentpole): maps (service IP, port,
// day) to a packed u32 detection signature at the decode/enqueue
// boundary, so shard workers never hash a 128-bit address or touch the
// hitlist's node-based maps on the hot path.
//
// Layout:
//   - Service endpoints (the hitlist's (IP, port) universe) are interned
//     to dense u32 endpoint ids at build time. IPv4 endpoints live in a
//     flat open-addressing table keyed (addr << 16) | port — one
//     multiplicative hash + usually one probe. IPv6 endpoints route
//     through the existing net::PrefixTrie (/128 entries, so the
//     longest-prefix match is exact) to a per-address port list.
//   - Signatures live in a dense day-major table sig[day * stride + id],
//     each packing the hitlist Hit as (service << 16) | domain_index.
//     kNoSig marks (endpoint, day) pairs the hitlist does not cover —
//     mirroring Hitlist::lookup returning nullopt, including for
//     out-of-range days.
//
// The index is immutable after build(); sig_of() is const and safe to
// call concurrently from any number of producer threads.
//
// build() also interns each rule's name and monitored-domain labels into
// an InternTable (when provided): rule names in rule order, so the
// handle space is dense and HSCK v2 checkpoints can key evidence rows by
// interned rule id instead of raw catalog position.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hitlist.hpp"
#include "core/intern.hpp"
#include "core/rules.hpp"
#include "net/prefix_trie.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

/// Packed detection signature: (service << 16) | domain_index, or kNoSig
/// for "no hitlist match".
using Signature = std::uint32_t;

inline constexpr Signature kNoSig = 0xffffffffU;

[[nodiscard]] inline ServiceId sig_service(Signature sig) noexcept {
  return static_cast<ServiceId>(sig >> 16);
}

[[nodiscard]] inline std::uint16_t sig_domain_index(Signature sig) noexcept {
  return static_cast<std::uint16_t>(sig & 0xffffU);
}

class SignatureIndex {
 public:
  SignatureIndex() = default;

  /// Builds the index from the hitlist, and interns rule names (in rule
  /// order) plus monitored-domain labels into `domains` when non-null.
  void build(const Hitlist& hitlist, const RuleSet& rules,
             InternTable* domains = nullptr);

  /// Resolves one endpoint for one day. Exactly equivalent to
  /// `Hitlist::lookup(ip, port, day)`: returns kNoSig iff the lookup
  /// would return nullopt, otherwise packs the Hit it would return.
  [[nodiscard]] Signature sig_of(const net::IpAddress& ip,
                                 std::uint16_t port,
                                 util::DayBin day) const noexcept {
    if (day >= days_ || endpoint_count_ == 0) return kNoSig;
    std::uint32_t id;
    if (ip.is_v4()) {
      if (v4_table_.empty()) return kNoSig;
      const std::uint64_t key =
          (std::uint64_t{ip.v4_value()} << 16) | port;
      std::size_t slot =
          static_cast<std::size_t>((key * kFib) >> v4_shift_);
      for (;;) {
        const V4Slot& s = v4_table_[slot];
        if (s.key == key) {
          id = s.id;
          break;
        }
        if (s.key == kEmptyKey) return kNoSig;
        slot = (slot + 1) & v4_mask_;
      }
    } else {
      const auto group = v6_route_.lookup(ip);
      if (!group) return kNoSig;
      const auto& ports = v6_ports_[*group];
      id = kNoSig;
      for (const auto& [p, pid] : ports) {
        if (p == port) {
          id = pid;
          break;
        }
      }
      if (id == kNoSig) return kNoSig;
    }
    return sig_[static_cast<std::size_t>(day) * stride_ + id];
  }

  /// Distinct (IP, port) service endpoints interned.
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoint_count_;
  }

  /// Days covered (== the hitlist's day range).
  [[nodiscard]] util::DayBin days() const noexcept { return days_; }

 private:
  static constexpr std::uint64_t kFib = 0x9E3779B97F4A7C15ULL;
  /// Real v4 keys have their top 16 bits clear ((u32 << 16) | u16), so
  /// all-ones can never collide with one.
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  util::DayBin days_ = 0;
  std::size_t endpoint_count_ = 0;
  std::size_t stride_ = 0;

  // IPv4 endpoints: open-addressing, linear probing, power-of-two size.
  // Key and id live in one 16-byte slot so a hit costs a single cache
  // touch (the split key/id arrays cost two on every hit).
  struct V4Slot {
    std::uint64_t key = kEmptyKey;
    std::uint32_t id = 0;
  };
  std::vector<V4Slot> v4_table_;
  std::size_t v4_mask_ = 0;
  unsigned v4_shift_ = 0;

  // IPv6 endpoints: /128 routes to a per-address (port -> id) list.
  net::PrefixTrie<std::uint32_t> v6_route_;
  std::vector<std::vector<std::pair<std::uint16_t, std::uint32_t>>>
      v6_ports_;

  // Day-major packed signatures; kNoSig where the hitlist has no entry.
  std::vector<Signature> sig_;
};

}  // namespace haystack::core
