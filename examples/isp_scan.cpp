// ISP-scale scan: detect IoT devices across a whole simulated subscriber
// population for one day, the way Sec. 6.2 of the paper runs in the wild.
//
// Usage: isp_scan [lines] [day]
//   lines — population size (default 50000)
//   day   — study day 0..13 (default 0, Nov 15)
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  const std::uint32_t lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50'000;
  const util::DayBin day =
      argc > 2 ? static_cast<util::DayBin>(std::atoi(argv[2])) : 0;

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog, {.lines = lines}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          simnet::WildIspConfig{}};

  std::cout << "Scanning " << lines << " subscriber lines, day "
            << util::day_label(day) << " ...\n";

  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  std::uint64_t observations = 0;
  for (util::HourBin h = util::day_start(day); h < util::day_start(day) + 24;
       ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      ++observations;
      detector.observe(obs.line, obs.flow.key.dst, obs.flow.key.dst_port,
                       obs.flow.packets, h);
    });
  }

  std::map<core::ServiceId, std::size_t> per_service;
  std::set<core::SubscriberKey> any;
  detector.for_each_evidence([&](core::SubscriberKey line,
                                 core::ServiceId service,
                                 const core::Evidence&) {
    if (detector.detected(line, service)) {
      ++per_service[service];
      any.insert(line);
    }
  });

  util::TextTable table;
  table.header({"Service", "Level", "Lines detected", "Share of lines"});
  std::vector<std::pair<std::size_t, const core::DetectionRule*>> sorted;
  for (const auto& rule : rules.rules) {
    const auto it = per_service.find(rule.service);
    sorted.emplace_back(it == per_service.end() ? 0 : it->second, &rule);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  for (const auto& [count, rule] : sorted) {
    table.row({rule->name, std::string{core::level_name(rule->level)},
               util::fmt_count(count),
               util::fmt_percent(double(count) / lines, 2)});
  }
  table.print(std::cout);

  std::cout << "\n" << util::fmt_count(observations)
            << " sampled flow observations; " << util::fmt_count(any.size())
            << " lines (" << util::fmt_percent(double(any.size()) / lines)
            << ") show IoT activity (paper: ~20% over two weeks)\n";
  return 0;
}
