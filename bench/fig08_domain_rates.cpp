// Figure 8 reproduction: average packets/hour per domain, in idle mode, for
// the 13 devices the paper plots — separating laconic devices (small
// domain sets, modest rates) from gossiping ones (Echo Dot, Apple TV).
#include <algorithm>
#include <iostream>
#include <map>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto& catalog = world.catalog();

  // The paper's 13 devices mapped to their units.
  const std::vector<std::pair<std::string, std::string>> kDevices = {
      {"Apple TV", "Apple TV"},
      {"Blink Hub", "Blink Hub & Cam."},
      {"Echo Dot", "Amazon Product"},
      {"Meross Door Opener", "Meross Dooropener"},
      {"Netatmo Weather Station", "Netatmo Weather St."},
      {"Philips Hub", "Philips Dev."},
      {"Smarter Brewer", "iKettle"},
      {"Smartlife Bulb", "Smartlife"},
      {"Smartthings Hub", "Smartthings Dev."},
      {"Sous vide", "Anova Sousvide"},
      {"TP-Link Bulb", "TP-link Dev."},
      {"Xiaomi Hub", "Xiaomi Dev."},
      {"Yi Camera", "Yi Camera"},
  };

  util::print_banner(std::cout,
                     "Figure 8: average packets/hour per domain (idle)");
  util::TextTable table;
  table.header({"Device", "Domain", "Avg pkts/hour", "Class"});

  for (const auto& [device, unit_name] : kDevices) {
    const auto* unit = catalog.unit_by_name(unit_name);
    if (unit == nullptr) continue;
    std::vector<std::pair<std::string, double>> rows;
    for (const auto* dom : catalog.domains_of(unit->id)) {
      if (dom->role != simnet::DomainRole::kPrimary) continue;
      rows.emplace_back(dom->fqdn.str(),
                        world.gt().domain_idle_rate(unit->id, dom->index));
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const bool gossip = rows.size() >= 10;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (gossip && i >= 8) {
        table.row({device, "... (" + std::to_string(rows.size() - i) +
                               " more domains)",
                   "", gossip ? "gossiping" : "laconic"});
        break;
      }
      table.row({i == 0 ? device : "", rows[i].first,
                 util::fmt_double(rows[i].second, 1),
                 i == 0 ? (gossip ? "gossiping" : "laconic") : ""});
    }
  }
  table.print(std::cout);
  std::cout << "\nLaconic devices keep domain sets under ~10 domains; "
               "gossiping ones (Echo Dot / Apple TV class) reach 30+ "
               "(paper Sec. 4.1)\n";
  return 0;
}
