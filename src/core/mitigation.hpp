// Mitigation planning (paper Sec. 7.2, "Potential Security Benefits").
//
// Once a service is detectable via its dedicated infrastructure, the same
// hitlist supports constructive interventions: block a vulnerable device's
// control traffic, or redirect it to a benign server that serves privacy
// notices / security patches for abandoned products. The planner turns a
// (service, action) request into concrete (IP, port) ACL entries for a
// day, plus an applies-to predicate that a flow pipeline can evaluate in
// O(1).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hitlist.hpp"
#include "core/rules.hpp"

namespace haystack::core {

/// What to do with matching traffic.
enum class MitigationAction : std::uint8_t {
  kBlock,      ///< drop flows to the service's infrastructure
  kRedirect,   ///< rewrite the destination to a benign sinkhole
  kRateLimit,  ///< police to a configured rate (attack damping)
};

[[nodiscard]] constexpr std::string_view action_name(
    MitigationAction a) noexcept {
  switch (a) {
    case MitigationAction::kBlock:
      return "block";
    case MitigationAction::kRedirect:
      return "redirect";
    case MitigationAction::kRateLimit:
      return "rate-limit";
  }
  return "?";
}

/// One ACL entry.
struct AclEntry {
  net::IpAddress ip;
  std::uint16_t port = 0;
  MitigationAction action = MitigationAction::kBlock;
  ServiceId service = 0;
  /// Sinkhole destination for redirects.
  net::IpAddress redirect_to;
};

/// A compiled plan for one day.
class MitigationPlan {
 public:
  /// O(1): the entry applying to (ip, port), or nullptr.
  [[nodiscard]] const AclEntry* match(const net::IpAddress& ip,
                                      std::uint16_t port) const;

  [[nodiscard]] const std::vector<AclEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  friend class MitigationPlanner;
  struct Key {
    net::IpAddress ip;
    std::uint16_t port;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(util::hash_combine(k.ip.hash(), k.port));
    }
  };
  std::vector<AclEntry> entries_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

/// Builds plans from a rule set's hitlist.
class MitigationPlanner {
 public:
  MitigationPlanner(const RuleSet& rules, net::IpAddress sinkhole)
      : rules_{rules}, sinkhole_{sinkhole} {}

  /// Requests an action against a service (by rule name). Unknown names
  /// are ignored; returns whether the service was found.
  bool request(std::string_view service_name, MitigationAction action);

  /// Compiles the plan for one study day from the daily hitlist.
  [[nodiscard]] MitigationPlan compile(util::DayBin day) const;

 private:
  const RuleSet& rules_;
  net::IpAddress sinkhole_;
  std::unordered_map<ServiceId, MitigationAction> requests_;
};

}  // namespace haystack::core
