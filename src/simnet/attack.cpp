#include "simnet/attack.hpp"

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

BotnetSim::BotnetSim(const Population& population,
                     const AttackConfig& config)
    : population_{population}, config_{config} {
  const Catalog& catalog = population.catalog();
  const Product* product = catalog.product_by_name(config.product_name);
  if (product == nullptr) return;

  population.for_each_active_line(
      [&](const LineId line, const std::span<const OwnedDevice> devices) {
        bool owns = false;
        for (const auto& dev : devices) {
          if (dev.product && *dev.product == product->id) {
            owns = true;
            break;
          }
        }
        if (!owns) return;
        util::Pcg32 rng = util::derive_rng(config_.seed ^ 0xb07, line, 0);
        if (rng.chance(config_.infection_rate)) infected_.push_back(line);
      });
}

void BotnetSim::hour_attack_observations(
    util::HourBin hour,
    const std::function<void(const AttackObs&)>& sink) const {
  const util::DayBin day = util::day_of(hour);
  const double inv_n = 1.0 / static_cast<double>(config_.sampling);
  for (const LineId line : infected_) {
    util::Pcg32 rng = util::derive_rng(config_.seed ^ 0xa77ac4, line, hour);
    const std::uint64_t sampled =
        rng.poisson(config_.attack_pkts_per_hour * inv_n);
    if (sampled == 0) continue;
    AttackObs obs;
    obs.line = line;
    obs.subscriber = population_.address_of(line, day);
    flow::FlowRecord& rec = obs.flow;
    rec.key.src = obs.subscriber;
    rec.key.dst = config_.victim;
    rec.key.src_port = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    rec.key.dst_port = config_.victim_port;
    rec.key.proto = 6;
    rec.tcp_flags = flow::tcpflags::kSyn;  // SYN flood
    rec.packets = sampled;
    rec.bytes = sampled * 40;
    rec.start_ms = static_cast<std::uint64_t>(hour) * 3'600'000;
    rec.end_ms = rec.start_ms + 3'599'000;
    rec.sampling = config_.sampling;
    sink(obs);
  }
}

}  // namespace haystack::simnet
