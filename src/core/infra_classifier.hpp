// Dedicated-vs-shared backend classification (paper Sec. 4.2).
//
// For each IoT-specific domain, decide whether its service IPs are
// *dedicated* to the service or *shared* (CDN / multi-tenant hosting), and
// collect the full service-IP footprint beyond what the single ground-truth
// vantage observed:
//
//   1. Passive DNS (Sec. 4.2.1): resolve the domain (following CNAMEs) for
//      every day in the window; a service IP is exclusive when every domain
//      it serves is either on the resolution chain or under the queried
//      domain's registrable domain. The domain is dedicated only when all
//      of its IPs are exclusive on all days.
//   2. Certificate-scan fallback (Sec. 4.2.2): when passive DNS has no
//      record at all, find every IP presenting a certificate that matches
//      the domain (SLD-anchored, no unrelated SAN) together with the
//      ground-truth banner checksum.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dns/passive_dns.hpp"
#include "net/ip_address.hpp"
#include "tlscert/scan_db.hpp"
#include "core/service.hpp"

namespace haystack::core {

/// Classification outcome for one domain's backend.
enum class InfraClass : std::uint8_t {
  kDedicated,      ///< exclusive service IPs on all days (via passive DNS)
  kShared,         ///< at least one IP serves unrelated domains
  kViaCertScan,    ///< no passive-DNS record; recovered via the scan dataset
  kNoData,         ///< no passive-DNS record and no usable certificate
};

[[nodiscard]] constexpr std::string_view infra_class_name(
    InfraClass c) noexcept {
  switch (c) {
    case InfraClass::kDedicated:
      return "Dedicated";
    case InfraClass::kShared:
      return "Shared";
    case InfraClass::kViaCertScan:
      return "ViaCertScan";
    case InfraClass::kNoData:
      return "NoData";
  }
  return "?";
}

/// Result of classifying one domain.
struct InfraResult {
  InfraClass cls = InfraClass::kNoData;
  /// Per-day service IPs (kStudyDays entries) for dedicated/cert-scan
  /// domains; empty for shared/no-data.
  std::vector<std::vector<net::IpAddress>> daily_ips;
};

/// The classifier. Holds references to the external datasets; cheap to
/// copy construct per analysis window.
class InfraClassifier {
 public:
  InfraClassifier(const dns::PassiveDnsDb& pdns,
                  const tlscert::CertScanDb& scans, util::DayBin first_day,
                  util::DayBin last_day) noexcept
      : pdns_{pdns}, scans_{scans}, first_day_{first_day},
        last_day_{last_day} {}

  /// Classifies one service domain.
  [[nodiscard]] InfraResult classify(const ServiceDomain& domain) const;

  /// True when `ip` is exclusively used for `domain` in the window — the
  /// Sec. 4.2.1 rule, exposed separately for tests and diagnostics.
  [[nodiscard]] bool ip_exclusive(const net::IpAddress& ip,
                                  const dns::Fqdn& domain,
                                  const dns::Resolution& resolution,
                                  util::DayBin day) const;

 private:
  const dns::PassiveDnsDb& pdns_;
  const tlscert::CertScanDb& scans_;
  util::DayBin first_day_;
  util::DayBin last_day_;
};

}  // namespace haystack::core
