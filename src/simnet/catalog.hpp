// Device catalog: the reproduction's version of the paper's Table 1.
//
// 96 testbed device instances from 40 vendors, deduplicating to 56 unique
// products across six categories. Each product carries the metadata that
// the rest of the pipeline needs:
//
//   * its *detection unit* — the platform / manufacturer / product rule the
//     device maps to (Fig. 10's row labels), or none when the paper
//     excluded it for relying on a shared backend (Google Home, Apple TV,
//     Lefun Cam, LG TV, WeMo Plug, Wink 2);
//   * the number of primary domains the unit monitors (Fig. 10's panel
//     grouping, up to 67 for Fire TV);
//   * a traffic profile: per-domain idle packet rate and active multiplier,
//     laconic vs gossiping behaviour (Figs. 8/9);
//   * market popularity in the ISP's country (Fig. 14's right-hand
//     annotation) and the wild-deployment penetration used by the
//     population model.
//
// The catalog is static data: hand-maintained tables in catalog.cpp, with
// domain names derived deterministically from vendor/unit identity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/fqdn.hpp"

namespace haystack::simnet {

/// Table 1 category.
enum class Category : std::uint8_t {
  kSurveillance,
  kSmartHubs,
  kHomeAutomation,
  kVideo,
  kAudio,
  kAppliances,
};

[[nodiscard]] std::string_view category_name(Category c) noexcept;

/// Detection granularity (Sec. 4.3.1).
enum class DetectionLevel : std::uint8_t { kPlatform, kManufacturer, kProduct };

[[nodiscard]] std::string_view level_suffix(DetectionLevel l) noexcept;

/// Amazon-ranking popularity bucket in the ISP's country (Fig. 14).
enum class Popularity : std::uint8_t {
  kTop10,
  kTop100,
  kTop200,
  kTop500,
  kTop2k,
  kTop10k,
  kNoMarket,
  kOther,
};

[[nodiscard]] std::string_view popularity_name(Popularity p) noexcept;

/// Backend hosting style of a unit's primary infrastructure (Sec. 4.2).
enum class BackendKind : std::uint8_t {
  kDedicated,      ///< manufacturer-operated, dedicated service IPs
  kDedicatedCloud, ///< exclusive cloud VM IPs (the EC2 tenant case)
  kShared,         ///< CDN / shared hosting: excluded from detection
};

/// Role of a unit domain in the methodology.
enum class DomainRole : std::uint8_t {
  /// IoT-specific primary domain monitored by the unit's detection rule
  /// (when it turns out dedicated).
  kPrimary,
  /// IoT-specific support domain (complementary service, e.g.
  /// samsung-*.whisk.com). Dedicated, counted separately in Sec. 4.1.
  kSupport,
  /// Observed in ground truth and registered to the manufacturer, but
  /// hosted on shared infrastructure — classified out in Sec. 4.2.
  kSharedObserved,
  /// Dedicated infrastructure but contacted by IoT and non-IoT products
  /// alike (the paper's non-exclusive Samsung domains) — observed,
  /// dedicated, excluded from rules.
  kNonExclusive,
};

/// Identifier of a detection unit (index into Catalog::units()).
using UnitId = std::uint16_t;

/// Identifier of a product (index into Catalog::products()).
using ProductId = std::uint16_t;

/// Identifier of a testbed device instance (index into Catalog::instances()).
using InstanceId = std::uint16_t;

/// A detection unit: one row of Fig. 10 — the thing a rule detects.
struct DetectionUnit {
  UnitId id = 0;
  std::string name;            ///< e.g. "Amazon Product"
  DetectionLevel level = DetectionLevel::kManufacturer;
  BackendKind backend = BackendKind::kDedicated;
  /// Number of primary domains monitored for this unit (Fig. 10 grouping).
  unsigned primary_domains = 1;
  /// Number of support domains (complementary services, e.g. whisk.com for
  /// Samsung fridges). Small; 19 across the whole catalog.
  unsigned support_domains = 0;
  /// Observed-but-shared domains (contacted in ground truth, hosted on
  /// CDNs; classified out by Sec. 4.2).
  unsigned shared_observed_domains = 0;
  /// Observed dedicated domains that are not exclusive to this unit's IoT
  /// products and therefore never monitored.
  unsigned non_exclusive_domains = 0;
  /// Parent unit for hierarchical rules (e.g. Amazon Product -> Alexa
  /// Enabled; Fire TV -> Amazon Product; Samsung TV -> Samsung IoT).
  std::optional<UnitId> parent;
  /// Index of the "critical" domain whose observation is mandatory at
  /// product level (e.g. avs-alexa.*.amazon.com; samsungotn.net).
  unsigned critical_domain = 0;
  /// Per-domain mean packets per hour while idle (geometric spread around
  /// this mean reproduces the Fig. 8 laconic/gossip split).
  double idle_pkts_per_domain_hour = 60.0;
  /// Multiplier applied during an hour with active use (Figs. 9/17).
  double active_multiplier = 12.0;
  /// Fraction of this unit's domains contacted in a typical idle hour.
  double idle_domain_duty = 0.8;
  /// Vendor SLD used to derive this unit's domain names, e.g. "amazon.com".
  std::string sld;
  /// Wild-deployment penetration *beyond* the catalog products mapped to
  /// this unit — third-party hardware integrating the same service (Alexa
  /// Enabled in fridges and alarm clocks; Samsung appliances not in the
  /// testbed). Fraction of subscriber lines.
  double wild_extra_penetration = 0.0;
  /// How strongly this unit's wild activity follows the human diurnal
  /// pattern (0 = flat, 1 = full swing). Entertainment devices (Alexa,
  /// Samsung TV) swing; sensors and plugs barely do (Sec. 6.2).
  double diurnal_strength = 0.15;
};

/// A unique product (one of 56).
struct Product {
  ProductId id = 0;
  std::string name;        ///< e.g. "Echo Dot"
  std::string vendor;      ///< e.g. "Amazon" (one of 40)
  Category category = Category::kAudio;
  /// Detection unit, or nullopt when the paper excluded the product
  /// (shared-infrastructure backends).
  std::optional<UnitId> unit;
  /// True when only idle captures exist (Samsung Dryer/Fridge in Table 1).
  bool idle_only = false;
  /// Number of testbed instances (1 or 2: EU + US testbeds).
  unsigned instances = 1;
  Popularity popularity = Popularity::kOther;
  /// Fraction of ISP subscriber lines owning this product in the wild.
  double penetration = 0.0;
};

/// One physical testbed device (96 total).
struct Instance {
  InstanceId id = 0;
  ProductId product = 0;
  /// 1 or 2 — the paper's Testbed 1 (EU) and Testbed 2 (US).
  unsigned testbed = 1;
};

/// A domain belonging to a detection unit.
struct UnitDomain {
  UnitId unit = 0;
  unsigned index = 0;          ///< 0-based within the unit (all roles)
  dns::Fqdn fqdn;
  DomainRole role = DomainRole::kPrimary;
  std::uint16_t port = 443;    ///< dominant service port
  bool https = true;           ///< participates in the Censys fallback
  /// True when the passive-DNS feed never recorded this domain (the
  /// paper's 15 DNSDB-missing domains). Combined with `https`, decides
  /// whether the Censys fallback can recover it (8 of the 15 could).
  bool dnsdb_missing = false;
};

/// Immutable catalog of products, instances, units, and unit domains.
class Catalog {
 public:
  /// Builds the static catalog. Cheap enough to construct per test.
  Catalog();

  [[nodiscard]] const std::vector<Product>& products() const noexcept {
    return products_;
  }
  [[nodiscard]] const std::vector<Instance>& instances() const noexcept {
    return instances_;
  }
  [[nodiscard]] const std::vector<DetectionUnit>& units() const noexcept {
    return units_;
  }
  /// All unit domains, grouped by unit in unit-id order.
  [[nodiscard]] const std::vector<UnitDomain>& domains() const noexcept {
    return domains_;
  }

  /// Domains of one unit (primary first, then support, shared, and
  /// non-exclusive). O(1): backed by a per-unit index built at construction.
  [[nodiscard]] const std::vector<const UnitDomain*>& domains_of(
      UnitId unit) const {
    return domain_index_[unit];
  }

  /// Number of distinct vendors (40 in the paper).
  [[nodiscard]] std::size_t vendor_count() const;

  /// Products mapped to a given unit.
  [[nodiscard]] std::vector<ProductId> products_of(UnitId unit) const;

  /// Unit lookup by name; nullptr when absent.
  [[nodiscard]] const DetectionUnit* unit_by_name(std::string_view name) const;

  /// Product lookup by name; nullptr when absent.
  [[nodiscard]] const Product* product_by_name(std::string_view name) const;

  /// Generic (non-IoT) domains observed in ground-truth traffic — NTP
  /// pools, CDNs, ad services. These are classified *out* in Sec. 4.1.
  [[nodiscard]] const std::vector<dns::Fqdn>& generic_domains() const noexcept {
    return generic_domains_;
  }

  /// Overrides a product's wild penetration (scenario studies).
  void set_penetration(ProductId product, double penetration) {
    products_.at(product).penetration = penetration;
  }

  /// Overrides a unit's wild-extra penetration (scenario studies).
  void set_wild_extra(UnitId unit, double penetration) {
    units_.at(unit).wild_extra_penetration = penetration;
  }

 private:
  std::vector<Product> products_;
  std::vector<Instance> instances_;
  std::vector<DetectionUnit> units_;
  std::vector<UnitDomain> domains_;
  std::vector<std::vector<const UnitDomain*>> domain_index_;
  std::vector<dns::Fqdn> generic_domains_;
};

}  // namespace haystack::simnet
