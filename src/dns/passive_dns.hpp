// Passive-DNS database — the reproduction's stand-in for Farsight DNSDB.
//
// Stores time-ranged observations of A/AAAA and CNAME records and answers
// the two queries the dedicated-vs-shared classifier needs (Sec. 4.2.1):
//
//   * resolve(domain, window): every service IP the domain (following its
//     CNAME chain) mapped to during a day window, and
//   * domains_on(ip, window): every domain observed mapping to the IP in
//     the window — the "what else lives on this IP" reverse view.
//
// Coverage is intentionally incomplete: the simulator only feeds in records
// for domains whose lookups "were seen" by the sensor network, reproducing
// the paper's 15 missing domains that force the Censys fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/fqdn.hpp"
#include "net/ip_address.hpp"
#include "util/sim_clock.hpp"

namespace haystack::dns {

/// Record type subset needed by the methodology.
enum class RrType : std::uint8_t { kA, kAaaa, kCname };

/// One passive-DNS observation: `name` resolved to `ip` (A/AAAA) or to
/// `target` (CNAME) on every day in [first_day, last_day].
struct PdnsRecord {
  Fqdn name;
  RrType type = RrType::kA;
  net::IpAddress ip;  ///< valid for A/AAAA
  Fqdn target;        ///< valid for CNAME
  util::DayBin first_day = 0;
  util::DayBin last_day = 0;
};

/// Inclusive day window for queries.
struct DayWindow {
  util::DayBin first = 0;
  util::DayBin last = 0;

  [[nodiscard]] constexpr bool overlaps(util::DayBin a,
                                        util::DayBin b) const noexcept {
    return a <= last && b >= first;
  }
};

/// Result of resolving a domain: terminal IPs plus every name on the CNAME
/// chain (including the query name itself).
struct Resolution {
  std::vector<net::IpAddress> ips;
  std::vector<Fqdn> chain;
};

/// Interval-indexed passive-DNS store.
class PassiveDnsDb {
 public:
  /// Adds one observation. Observations for the same (name, value) pair on
  /// adjacent/overlapping days are coalesced.
  void add(const PdnsRecord& record);

  /// Convenience: adds an A record spanning [first, last].
  void add_a(const Fqdn& name, const net::IpAddress& ip, util::DayBin first,
             util::DayBin last);

  /// Convenience: adds a CNAME record spanning [first, last].
  void add_cname(const Fqdn& name, const Fqdn& target, util::DayBin first,
                 util::DayBin last);

  /// True when the database holds any record (A/AAAA or CNAME) for `name`
  /// within the window — the "does DNSDB know this domain at all" probe.
  [[nodiscard]] bool has_records(const Fqdn& name, DayWindow window) const;

  /// Follows CNAME chains (cycle-safe, depth-limited) and returns all
  /// terminal IPs observed in the window plus the set of chain names.
  [[nodiscard]] Resolution resolve(const Fqdn& name, DayWindow window) const;

  /// All domains observed resolving (directly, as chain heads, or as CNAME
  /// intermediates) to `ip` in the window.
  [[nodiscard]] std::vector<Fqdn> domains_on(const net::IpAddress& ip,
                                             DayWindow window) const;

  /// Total stored records (after coalescing).
  [[nodiscard]] std::size_t record_count() const noexcept;

  /// Visits every stored record (A/AAAA first, then CNAMEs; order within a
  /// kind is unspecified). Used by the serialization layer.
  void for_each_record(
      const std::function<void(const PdnsRecord&)>& fn) const;

 private:
  struct AddrEntry {
    net::IpAddress ip;
    util::DayBin first;
    util::DayBin last;
  };
  struct CnameEntry {
    Fqdn target;
    util::DayBin first;
    util::DayBin last;
  };

  void index_reverse(const net::IpAddress& ip, const Fqdn& name);

  std::unordered_map<Fqdn, std::vector<AddrEntry>> addr_;
  std::unordered_map<Fqdn, std::vector<CnameEntry>> cname_;
  // Reverse index: IP -> names with at least one A/AAAA entry for it.
  std::unordered_map<net::IpAddress, std::vector<Fqdn>> reverse_;
  // Reverse CNAME index: target -> names pointing at it.
  std::unordered_map<Fqdn, std::vector<Fqdn>> cname_reverse_;
  std::size_t records_ = 0;
};

}  // namespace haystack::dns
