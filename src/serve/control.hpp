// Live control plane over a running ShardedDetector (ISSUE 8 tentpole).
//
// One object wires the three serve-layer capabilities together:
//
//   * snapshot()        — constant-time DetectionSnapshot from the currently
//                         published views (never blocks, never drains;
//                         freshness = last publication per shard).
//   * fresh_snapshot()  — token-refreshed snapshot covering everything
//                         enqueued before the call (blocks only on the
//                         shards' own backlogs, never on other readers,
//                         never quiesces producers).
//   * reload()          — versioned rule/hitlist/threshold hot-reload
//                         with atomic cutover: in-flight waves finish on
//                         the old version, verdicts carry the version
//                         they were evaluated under, producers never
//                         stall.
//   * alerting          — installs the AlertEngine as the detector's
//                         publish hook; threshold crossings land in the
//                         FlightRecorder and the metrics registry.
//
// Construct at wiring time (installs the publish hook) before traffic
// flows. All query/reload entry points are safe from any thread while
// ingest runs at full rate.
#pragma once

#include <cstdint>
#include <memory>

#include "core/sharded_detector.hpp"
#include "serve/alerts.hpp"
#include "serve/query.hpp"

namespace haystack::serve {

class ControlPlane {
 public:
  /// `detector` must outlive the control plane. Installs the alert engine
  /// as the detector's publish hook (wiring time — call before
  /// observations flow).
  explicit ControlPlane(core::ShardedDetector& detector,
                        AlertConfig alert_config = {},
                        obs::Observability* obs = nullptr);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Constant-time snapshot of the currently published views (one
  /// pointer copy per shard; never blocks behind ingest).
  [[nodiscard]] DetectionSnapshot snapshot() const;

  /// Snapshot covering everything enqueued before the call (rides publish
  /// tokens through every shard queue).
  [[nodiscard]] DetectionSnapshot fresh_snapshot() const;

  /// Per-subscriber fresh lookup touching only the owning shard.
  [[nodiscard]] core::Verdict verdict(core::SubscriberKey subscriber,
                                      core::ServiceId service) const {
    return detector_->verdict(subscriber, service);
  }

  /// Hot-reloads rules/hitlist/config; returns the new version id.
  std::uint64_t reload(std::shared_ptr<const core::RuleSet> rules,
                       const core::DetectorConfig& config);

  [[nodiscard]] std::shared_ptr<const core::CompiledRuleVersion>
  current_version() const {
    return detector_->current_version();
  }

  [[nodiscard]] const AlertEngine& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] core::ShardedDetector& detector() noexcept {
    return *detector_;
  }

  /// Snapshots served (live + fresh) and reloads applied.
  [[nodiscard]] std::uint64_t queries_served() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reloads_applied() const noexcept {
    return reloads_.load(std::memory_order_relaxed);
  }

 private:
  core::ShardedDetector* detector_;
  AlertEngine alerts_;
  mutable std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::shared_ptr<obs::Counter> query_counter_;
  std::shared_ptr<obs::Counter> fresh_query_counter_;
  std::shared_ptr<obs::Counter> reload_counter_;
  std::shared_ptr<obs::Histogram> query_ns_;
};

}  // namespace haystack::serve
