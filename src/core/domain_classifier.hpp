// Domain classification (paper Sec. 4.1): every domain observed in ground
// truth is Primary (registered to an IoT manufacturer or service operator),
// Support (third-party service complementing an IoT product), or Generic
// (heavily used by non-IoT clients too — NTP pools, CDNs, analytics).
//
// The paper did this with pattern matching plus manual inspection; the
// classifier here consumes the same kind of side information in machine
// form: the set of manufacturer registrable domains, the known support
// providers, and a generic blocklist, plus name heuristics for the rest.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "dns/fqdn.hpp"

namespace haystack::core {

/// Classification outcome for one domain.
enum class DomainClass : std::uint8_t { kPrimary, kSupport, kGeneric };

[[nodiscard]] constexpr std::string_view domain_class_name(
    DomainClass c) noexcept {
  switch (c) {
    case DomainClass::kPrimary:
      return "Primary";
    case DomainClass::kSupport:
      return "Support";
    case DomainClass::kGeneric:
      return "Generic";
  }
  return "?";
}

/// Side information driving the classification.
struct DomainKnowledge {
  /// Registrable domains of IoT manufacturers / service operators
  /// (amazon.com, tuya.com, ...), from vendor research.
  std::unordered_set<dns::Fqdn> manufacturer_slds;
  /// Registrable domains of known support providers (whisk.com, ...).
  std::unordered_set<dns::Fqdn> support_slds;
  /// Registrable domains of known generic services (netflix.com, NTP
  /// pools, ad networks).
  std::unordered_set<dns::Fqdn> generic_slds;
  /// Exact generic names. Takes precedence over everything: a vendor can
  /// host generic services under its own SLD (time.google.com is generic
  /// even though google.com is a manufacturer SLD).
  std::unordered_set<dns::Fqdn> generic_fqdns;
};

/// Stateless classifier over the knowledge base.
class DomainClassifier {
 public:
  explicit DomainClassifier(DomainKnowledge knowledge)
      : knowledge_{std::move(knowledge)} {}

  /// Classifies one observed domain.
  [[nodiscard]] DomainClass classify(const dns::Fqdn& domain) const;

  /// Aggregate statistics over a domain list (the Sec. 4.1 headline:
  /// 415 Primary + 19 Support of 524 observed).
  struct Stats {
    std::size_t total = 0;
    std::size_t primary = 0;
    std::size_t support = 0;
    std::size_t generic = 0;
  };
  [[nodiscard]] Stats classify_all(const std::vector<dns::Fqdn>& domains) const;

  [[nodiscard]] const DomainKnowledge& knowledge() const noexcept {
    return knowledge_;
  }

 private:
  DomainKnowledge knowledge_;
};

}  // namespace haystack::core
