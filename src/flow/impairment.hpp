// Deterministic UDP export-path impairment injection (ISSUE 2).
//
// NetFlow/IPFIX export rides plain UDP: datagrams get dropped, duplicated,
// reordered, and truncated between the border router and the collector,
// and none of it is reported by the transport. The paper's methodology
// ingests such streams at ISP scale, so the repository needs every one of
// those failure modes on demand — reproducibly. ImpairedLink models the
// exporter→collector path: each configured impairment fires from a seeded
// PRNG, so a (seed, traffic) pair replays the exact same fault schedule
// every run, which is what makes the `fault` test matrix and the loss
// ablation bench deterministic.
//
// Reordering is modeled as bounded delay: a chosen datagram is held back
// and released after later datagrams have passed it (flush() drains
// whatever is still held). The invariant
//
//   datagrams_in + duplicated == delivered + dropped + held()
//
// holds at every point, so tests can account for every datagram.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace haystack::flow {

/// Impairment probabilities and knobs. All probabilities are independent
/// per datagram; 0 disables the corresponding impairment.
struct ImpairmentConfig {
  std::uint64_t seed = 1;   ///< PRNG seed: same seed => same fault schedule
  double drop = 0.0;        ///< datagram silently lost
  double duplicate = 0.0;   ///< datagram delivered twice back-to-back
  double reorder = 0.0;     ///< datagram delayed behind later ones
  double truncate = 0.0;    ///< datagram delivered with its tail cut off
  std::size_t reorder_hold = 3;  ///< max datagrams held back at once
};

/// Datagram accounting. `delivered` counts datagrams that exited the link
/// (including duplicates and truncated ones).
struct ImpairmentStats {
  std::uint64_t datagrams_in = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
};

/// One impaired exporter→collector UDP path.
class ImpairedLink {
 public:
  ImpairedLink() : ImpairedLink(ImpairmentConfig{}) {}
  explicit ImpairedLink(const ImpairmentConfig& config)
      : config_{config}, rng_{util::splitmix64(config.seed ^ 0x1a7a17ULL),
                              config.seed} {}

  /// Passes one datagram through the link; returns the datagrams that come
  /// out the far end right now (possibly none, possibly several).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> transmit(
      std::vector<std::uint8_t> datagram);

  /// Releases any datagrams still held for reordering.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> flush();

  [[nodiscard]] const ImpairmentStats& stats() const noexcept {
    return stats_;
  }
  /// Datagrams currently held back for reordering.
  [[nodiscard]] std::size_t held() const noexcept { return held_.size(); }
  [[nodiscard]] const ImpairmentConfig& config() const noexcept {
    return config_;
  }

 private:
  ImpairmentConfig config_;
  util::Pcg32 rng_;
  std::deque<std::vector<std::uint8_t>> held_;
  ImpairmentStats stats_;
};

}  // namespace haystack::flow
