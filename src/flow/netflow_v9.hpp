// NetFlow v9 export packet codec (RFC 3954).
//
// The ISP vantage point in the paper collects NetFlow v9 from all border
// routers. This codec implements the real wire format: the 20-byte packet
// header, template flowsets (id 0) describing record layouts as
// (field type, length) pairs, and data flowsets carrying back-to-back
// records padded to 32-bit alignment.
//
// The encoder emits one template per address family (IPv4 template 256,
// IPv6 template 257) followed by data flowsets. The decoder is
// template-driven and stateful across packets, exactly as a production
// collector must be: templates learned from earlier packets decode data
// flowsets of later ones; data flowsets whose template is unknown are
// counted and skipped, not errors.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "flow/wire.hpp"

namespace haystack::flow::nf9 {

/// NetFlow v9 field type numbers used by this implementation (RFC 3954 §8).
enum class FieldType : std::uint16_t {
  kInBytes = 1,
  kInPkts = 2,
  kProtocol = 4,
  kTcpFlags = 6,
  kL4SrcPort = 7,
  kIpv4SrcAddr = 8,
  kL4DstPort = 11,
  kIpv4DstAddr = 12,
  kLastSwitched = 21,
  kFirstSwitched = 22,
  kIpv6SrcAddr = 27,
  kIpv6DstAddr = 28,
  kSamplingInterval = 34,
};

/// Template ids chosen by the exporter (must be >= 256).
inline constexpr std::uint16_t kTemplateV4 = 256;
inline constexpr std::uint16_t kTemplateV6 = 257;

/// Exporter configuration.
struct ExporterConfig {
  std::uint32_t source_id = 1;        ///< engine id in the packet header
  std::uint32_t sampling = 1;         ///< 1-in-N, stamped into each record
  std::size_t max_records_per_packet = 24;
  /// Emit template flowsets every `template_refresh_packets` packets
  /// (and always in the first packet), as real exporters do.
  std::uint32_t template_refresh_packets = 20;
};

/// Stateful NetFlow v9 exporter: turns FlowRecords into export packets.
class Exporter {
 public:
  explicit Exporter(ExporterConfig config) noexcept : config_{config} {}

  /// Encodes `records` into one or more export packets. Each call advances
  /// the sequence number by the number of records emitted (per RFC 3954 the
  /// v9 sequence counts *packets*, but several major implementations count
  /// records; we follow the RFC and count packets).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t unix_secs);

  [[nodiscard]] std::uint32_t packets_sent() const noexcept {
    return packets_sent_;
  }

 private:
  void write_templates(ByteWriter& w) const;

  ExporterConfig config_;
  std::uint32_t packets_sent_ = 0;
};

/// Decoder statistics, exposed for monitoring and tests.
struct CollectorStats {
  std::uint64_t packets = 0;
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  std::uint64_t unknown_template_flowsets = 0;
  std::uint64_t malformed_packets = 0;
};

/// Stateful NetFlow v9 collector: learns templates, decodes data flowsets.
class Collector {
 public:
  /// Decodes one export packet, appending decoded records to `out`.
  /// Returns false when the packet was malformed (partial decode results
  /// may still have been appended).
  bool ingest(std::span<const std::uint8_t> packet,
              std::vector<FlowRecord>& out);

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

 private:
  struct TemplateField {
    std::uint16_t type;
    std::uint16_t length;
  };
  using Template = std::vector<TemplateField>;

  bool decode_template_flowset(ByteReader& r, std::uint32_t source_id);
  bool decode_data_flowset(ByteReader& r, std::uint16_t flowset_id,
                           std::uint32_t source_id,
                           std::vector<FlowRecord>& out);

  // Templates are scoped by (source id, template id) per RFC 3954 §5.
  std::map<std::pair<std::uint32_t, std::uint16_t>, Template> templates_;
  CollectorStats stats_;
};

}  // namespace haystack::flow::nf9
