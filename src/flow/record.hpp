// Flow record and flow key value types.
//
// A FlowRecord is the unified in-memory form of one NetFlow v9 / IPFIX data
// record: the 5-tuple, byte/packet counters, TCP flag union, timestamps,
// and the sampling interval under which it was exported. Both codecs
// round-trip this type exactly.
#pragma once

#include <compare>
#include <cstdint>

#include "net/ip_address.hpp"
#include "net/ports.hpp"
#include "util/hash.hpp"

namespace haystack::flow {

/// TCP flag bits as exported in flow records.
namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

/// Directionless 5-tuple key used for flow caching and deduplication.
struct FlowKey {
  net::IpAddress src;
  net::IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) noexcept =
      default;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = util::hash_combine(src.hash(), dst.hash());
    h = util::hash_combine(h, (std::uint64_t{src_port} << 32) |
                                  (std::uint64_t{dst_port} << 16) | proto);
    return h;
  }
};

/// One exported flow record.
struct FlowRecord {
  FlowKey key;
  std::uint64_t packets = 0;     ///< sampled packet count as exported
  std::uint64_t bytes = 0;       ///< sampled byte count as exported
  std::uint8_t tcp_flags = 0;    ///< union of TCP flags over the flow
  std::uint64_t start_ms = 0;    ///< flow start, ms on the simulation axis
  std::uint64_t end_ms = 0;      ///< flow end
  std::uint32_t sampling = 1;    ///< 1-in-N packet sampling interval

  friend constexpr auto operator<=>(const FlowRecord&,
                                    const FlowRecord&) noexcept = default;

  /// True when at least one packet carried a payload-bearing (non-SYN/RST/
  /// FIN-only) segment. The IXP pipeline requires this to guard against
  /// spoofed traffic: "we require TCP traffic to see at least one packet
  /// without [control] flags, indicating that a TCP connection was
  /// successfully established" (Sec. 6.3).
  [[nodiscard]] constexpr bool shows_established_tcp() const noexcept {
    if (key.proto != static_cast<std::uint8_t>(net::Proto::kTcp)) return true;
    return (tcp_flags & tcpflags::kAck) != 0 &&
           (tcp_flags & tcpflags::kPsh) != 0;
  }
};

}  // namespace haystack::flow

template <>
struct std::hash<haystack::flow::FlowKey> {
  std::size_t operator()(const haystack::flow::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
