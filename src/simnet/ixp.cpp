#include "simnet/ixp.hpp"

#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

namespace {

std::uint64_t sampled_count(util::Pcg32& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 0.05) {
    return rng.chance(lambda * (1.0 - 0.5 * lambda)) ? 1 : 0;
  }
  return rng.poisson(lambda);
}

// Member address space starts at 80.0.0.0/8; each member owns a /16 block
// allocated in registration order (mirrors Backend::build_topology).
constexpr std::uint32_t kIxpSpaceBase = 0x50000000;

}  // namespace

WildIxpSim::WildIxpSim(const Backend& backend, const DomainRateModel& rates,
                       const IxpConfig& config)
    : backend_{backend}, rates_{rates}, config_{config} {
  const auto& units = backend.catalog().units();
  chains_.resize(units.size());
  for (const DetectionUnit& u : units) {
    UnitId cur = u.id;
    for (;;) {
      chains_[u.id].push_back(cur);
      const auto& parent = units[cur].parent;
      if (!parent) break;
      cur = *parent;
    }
  }
}

std::uint32_t WildIxpSim::households_of(net::Asn member) const {
  const auto& eyeballs = backend_.ixp_eyeballs();
  for (std::size_t i = 0; i < eyeballs.size(); ++i) {
    if (eyeballs[i] == member) {
      return static_cast<std::uint32_t>(
          static_cast<double>(config_.eyeball_households) /
          std::pow(static_cast<double>(i + 1), config_.eyeball_skew));
    }
  }
  // Non-eyeball members: a handful of devices (office deployments etc.).
  util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x1c6d, member, 0);
  return static_cast<std::uint32_t>(
      rng.poisson(config_.member_device_mean) * 2);
}

void WildIxpSim::member_observations(net::Asn member,
                                     std::uint32_t households, bool eyeball,
                                     util::DayBin day,
                                     const Sink& sink) const {
  if (households == 0) return;
  const Catalog& catalog = backend_.catalog();
  const double inv_n = 1.0 / static_cast<double>(config_.sampling);
  const std::uint64_t day_ms =
      static_cast<std::uint64_t>(day) * 24 * 3'600'000;

  // Member base address: member index within the joint registration order.
  const auto& members = backend_.ixp_members();
  std::uint32_t member_index = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == member) {
      member_index = static_cast<std::uint32_t>(i);
      break;
    }
  }
  const std::uint32_t base = kIxpSpaceBase + (member_index << 16);

  // Ownership candidates with penetrations, as in the ISP population.
  IxpObs obs;
  for (std::uint32_t h = 0; h < households; ++h) {
    util::Pcg32 own =
        util::derive_rng(config_.seed ^ 0x07b41e,
                         util::hash_combine(member, h), 0);
    util::Pcg32 rng =
        util::derive_rng(config_.seed ^ 0x5a3c21,
                         util::hash_combine(member, h), day);
    const net::IpAddress device_ip =
        net::IpAddress::v4(base + (h % 0xffffU));

    auto simulate_device = [&](UnitId unit_id) {
      for (const UnitId uid : chains_[unit_id]) {
        const DetectionUnit& unit = catalog.units()[uid];
        // Routing asymmetry: does (member, vendor infra) cross the fabric?
        util::Pcg32 route = util::derive_rng(
            config_.seed ^ 0x90a7e5,
            util::hash_combine(member, util::fnv1a(unit.sld)), 0);
        if (!route.chance(config_.cross_ixp_probability)) continue;

        for (const UnitDomain* dom : catalog.domains_of(uid)) {
          // Daily aggregate: duty applies per hour; over 24h the expected
          // contacted fraction saturates, so use the full-day mean rate.
          const double daily_rate =
              rates_.idle_rate(uid, dom->index) * 24.0 *
              unit.idle_domain_duty;
          const std::uint64_t sampled =
              sampled_count(rng, daily_rate * inv_n);
          if (sampled == 0) continue;

          const bool tcp = dom->port != 123;
          if (tcp) {
            // Spoofing guard: require evidence of an established
            // connection among the sampled packets. A sampled packet is a
            // bare-handshake segment with probability ~0.1.
            const double p_all_handshake = std::pow(0.1, double(sampled));
            if (rng.chance(p_all_handshake)) continue;
          }

          const auto& ips = backend_.ips_of(uid, dom->index, day);
          obs.member = member;
          obs.device_ip = device_ip;
          obs.unit = uid;
          obs.domain_index = dom->index;
          flow::FlowRecord& rec = obs.flow;
          rec.key.src = device_ip;
          rec.key.dst =
              ips[rng.bounded(static_cast<std::uint32_t>(ips.size()))];
          rec.key.src_port =
              static_cast<std::uint16_t>(32768 + rng.bounded(28000));
          rec.key.dst_port = dom->port;
          rec.key.proto = tcp ? 6 : 17;
          rec.tcp_flags =
              tcp ? (flow::tcpflags::kAck | flow::tcpflags::kPsh) : 0;
          rec.packets = sampled;
          rec.bytes = sampled * (200 + rng.bounded(900));
          rec.start_ms = day_ms + rng.bounded(80'000'000);
          rec.end_ms = rec.start_ms + rng.bounded(600'000);
          rec.sampling = config_.sampling;
          sink(obs);
        }
      }
    };

    if (eyeball) {
      for (const Product& p : catalog.products()) {
        if (!p.unit || p.penetration <= 0.0) continue;
        if (own.chance(p.penetration)) simulate_device(*p.unit);
      }
      for (const DetectionUnit& u : catalog.units()) {
        if (u.wild_extra_penetration > 0.0 &&
            own.chance(u.wild_extra_penetration)) {
          simulate_device(u.id);
        }
      }
    } else {
      // Non-eyeball members host individual devices, not whole households:
      // pick one unit, weighted by overall popularity.
      const auto& units = catalog.units();
      simulate_device(
          units[own.bounded(static_cast<std::uint32_t>(units.size()))].id);
    }
  }
}

void WildIxpSim::day_observations(util::DayBin day, const Sink& sink) const {
  const auto& eyeballs = backend_.ixp_eyeballs();
  for (const net::Asn member : backend_.ixp_members()) {
    const bool eyeball =
        std::find(eyeballs.begin(), eyeballs.end(), member) != eyeballs.end();
    member_observations(member, households_of(member), eyeball, day, sink);
  }
}

}  // namespace haystack::simnet
