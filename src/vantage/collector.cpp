#include "vantage/collector.hpp"

#include <algorithm>
#include <bit>
#include <string_view>
#include <unordered_map>

#include "core/checkpoint.hpp"

namespace haystack::vantage {

namespace {

bool fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

Collector::Collector(const core::Hitlist& hitlist, const core::RuleSet& rules,
                     const CollectorConfig& config, obs::Observability* obs)
    : detector_{hitlist, rules, config.detector},
      rules_{rules},
      config_{config},
      obs_{obs} {}

void Collector::ingest(const core::Observation& obs) {
  const auto hit = detector_.observe(obs.subscriber, obs.server, obs.port,
                                     obs.packets, obs.hour);
  // Only matches whose service has a rule create/update an evidence row
  // (Detector::observe returns early otherwise) — mirror that exactly so
  // deltas never reference rows the detector does not hold.
  if (hit && rules_.rule_for(hit->service) != nullptr) {
    touched_.insert({obs.subscriber, hit->service});
  }
}

std::vector<std::uint8_t> Collector::seal_epoch(util::HourBin epoch) {
  flow::EvidenceDelta delta;
  delta.collector = config_.id;
  delta.seq = next_seq_++;
  delta.epoch = epoch;
  delta.kind = flow::DeltaKind::kDelta;
  delta.threshold_bits =
      std::bit_cast<std::uint64_t>(config_.detector.threshold);
  delta.flows = detector_.stats().flows;
  delta.matched = detector_.stats().matched;

  // touched_ iterates sorted by (subscriber, service), so both the label
  // table (first-use order) and the row order are deterministic functions
  // of the sealed state.
  std::unordered_map<std::string_view, std::uint32_t> label_index;
  for (const auto& [subscriber, service] : touched_) {
    const core::Evidence* ev = detector_.evidence(subscriber, service);
    if (ev == nullptr) continue;  // unreachable: touched rows exist
    const core::DetectionRule* rule = rules_.rule_for(service);
    const auto [it, inserted] = label_index.try_emplace(
        std::string_view{rule->name},
        static_cast<std::uint32_t>(delta.labels.size()));
    if (inserted) delta.labels.push_back(rule->name);
    flow::DeltaRow row;
    row.subscriber = subscriber;
    row.label = it->second;
    row.mask0 = ev->mask(0);
    row.mask1 = ev->mask(1);
    row.packets = ev->packets();
    row.first_seen = ev->first_seen();
    delta.rows.push_back(row);
  }
  touched_.clear();

  auto bytes = flow::encode_delta(delta);
  Pending pending;
  pending.bytes = bytes;
  pending.ticks_left = config_.initial_backoff;
  pending.backoff = config_.initial_backoff;
  unacked_.emplace(epoch, std::move(pending));
  ++deltas_sealed_;
  return bytes;
}

void Collector::handle_ack(util::HourBin epoch) {
  if (acked_ && *acked_ >= epoch) return;
  acked_ = epoch;
  unacked_.erase(unacked_.begin(), unacked_.upper_bound(epoch));
}

std::vector<std::vector<std::uint8_t>> Collector::tick() {
  std::vector<std::vector<std::uint8_t>> due;
  for (auto& [epoch, pending] : unacked_) {
    if (pending.ticks_left > 0) {
      --pending.ticks_left;
      continue;
    }
    due.push_back(pending.bytes);
    pending.backoff = std::min(pending.backoff * 2, config_.max_backoff);
    pending.ticks_left = pending.backoff;
    ++retransmissions_;
  }
  return due;
}

bool Collector::install_snapshot(const flow::EvidenceDelta& snapshot,
                                 std::string* error) {
  if (snapshot.kind != flow::DeltaKind::kSnapshot) {
    return fail(error, "not a snapshot delta");
  }
  if (snapshot.threshold_bits !=
      std::bit_cast<std::uint64_t>(config_.detector.threshold)) {
    return fail(error, "snapshot built under a different threshold");
  }
  // Resolve every label before touching any state, so a bad snapshot
  // leaves the collector exactly as constructed (empty).
  std::vector<core::ServiceId> services;
  services.reserve(snapshot.rows.size());
  for (const flow::DeltaRow& row : snapshot.rows) {
    core::ServiceId service = 0;
    if (!core::resolve_service_label(snapshot.labels[row.label], rules_,
                                     service)) {
      return fail(error, "snapshot references an unknown rule name");
    }
    services.push_back(service);
  }

  detector_.clear();
  detector_.restore_stats({snapshot.flows, snapshot.matched});
  for (std::size_t i = 0; i < snapshot.rows.size(); ++i) {
    const flow::DeltaRow& row = snapshot.rows[i];
    core::Evidence ev;
    ev.set_mask(0, row.mask0);
    ev.set_mask(1, row.mask1);
    ev.set_packets(row.packets);
    ev.set_first_seen(row.first_seen);
    // satisfied_hour stays kNever: a collector never ships it and never
    // evaluates global satisfaction — the aggregator owns that field.
    detector_.restore_evidence(row.subscriber, services[i], ev);
  }
  touched_.clear();
  unacked_.clear();
  acked_ = snapshot.epoch;
  if (obs_ != nullptr) {
    obs_->recorder.record(obs::EventKind::kCollectorResync, config_.id,
                          snapshot.epoch, snapshot.rows.size());
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace haystack::vantage
