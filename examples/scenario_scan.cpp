// Scenario-driven scan: the isp_scan workflow, parameterized by a text
// scenario file instead of recompilation — market-share what-ifs, sampling
// studies, churn sensitivity.
//
// Usage: scenario_scan <scenario-file> [day]
//
// Example scenario file:
//   lines 60000
//   sampling 2000
//   penetration "Echo Dot" 0.08
//   wild_extra "Alexa Enabled" 0.15
#include <fstream>
#include <iostream>
#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/scenario.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  if (argc < 2) {
    std::cerr << "usage: scenario_scan <scenario-file> [day]\n";
    return 2;
  }
  std::ifstream file{argv[1]};
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::string error;
  const auto scenario = simnet::parse_scenario(file, &error);
  if (!scenario) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }
  const util::DayBin day =
      argc > 2 ? static_cast<util::DayBin>(std::atoi(argv[2])) : 0;

  simnet::Catalog catalog;
  if (!scenario->apply_overrides(catalog, &error)) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{
      catalog, scenario->apply(simnet::PopulationConfig{})};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          scenario->apply(simnet::WildIspConfig{})};

  std::cout << "Scenario: " << population.line_count() << " lines, 1:"
            << wild.config().sampling << " sampling, day "
            << util::day_label(day) << "\n";

  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  for (util::HourBin h = util::day_start(day); h < util::day_start(day) + 24;
       ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      detector.observe(obs.line, obs.flow.key.dst, obs.flow.key.dst_port,
                       obs.flow.packets, h);
    });
  }

  std::map<core::ServiceId, std::size_t> per_service;
  std::set<core::SubscriberKey> any;
  detector.for_each_evidence([&](core::SubscriberKey line,
                                 core::ServiceId service,
                                 const core::Evidence&) {
    if (detector.detected(line, service)) {
      ++per_service[service];
      any.insert(line);
    }
  });

  util::TextTable table;
  table.header({"Service", "Lines detected", "Share"});
  std::vector<std::pair<std::size_t, const core::DetectionRule*>> ranked;
  for (const auto& rule : rules.rules) {
    const auto it = per_service.find(rule.service);
    ranked.emplace_back(it == per_service.end() ? 0 : it->second, &rule);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [count, rule] : ranked) {
    if (count == 0) break;
    table.row({rule->name, util::fmt_count(count),
               util::fmt_percent(double(count) / population.line_count(),
                                 2)});
  }
  table.print(std::cout);
  std::cout << "\nLines with any IoT activity: "
            << util::fmt_count(any.size()) << " ("
            << util::fmt_percent(double(any.size()) /
                                 population.line_count())
            << ")\n";
  return 0;
}
