// Flat open-addressing evidence map (ISSUE 6 tentpole).
//
// The per-(subscriber, service) evidence table is the single hottest data
// structure in the detector: one probe per hitlist match. A node-based
// unordered_map costs an allocation per insert and at least two dependent
// cache misses per lookup (bucket array, then node). This map stores the
// key and the Evidence payload inline in one slot array, so the common
// case — find or insert of a warm entry — touches exactly one cache line,
// and clear() between analysis bins reuses capacity without freeing.
//
// Not a general map: no erase (the detector never removes evidence), keys
// are (u64 subscriber, u16 service), and iteration order is unspecified —
// every consumer (checkpoints, differential snapshots) sorts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace haystack::core {

template <typename EvidenceT>
class FlatEvidenceMap {
 public:
  FlatEvidenceMap() { rehash(kInitialSlots); }

  /// Returns the entry for (subscriber, service), default-constructing it
  /// if absent; `inserted` reports which happened.
  EvidenceT& find_or_insert(std::uint64_t subscriber, std::uint16_t service,
                            bool& inserted) {
    // >=: rehash *before* the insert that would push the load factor past
    // 0.5, keeping the documented ≤0.5 bound an invariant (the old `>`
    // rehashed one insert late).
    if ((size_ + 1) * 2 >= entries_.size()) rehash(entries_.size() * 2);
    Entry& e = *probe(subscriber, service);
    inserted = e.service_plus1 == 0;
    if (inserted) {
      e.subscriber = subscriber;
      e.service_plus1 = std::uint32_t{service} + 1;
      e.ev = EvidenceT{};
      ++size_;
    }
    return e.ev;
  }

  /// Hints the cache to load the home slot of (subscriber, service); the
  /// sharded worker issues this a few items ahead of the apply loop so
  /// the (usually cold) evidence line is in flight by the time
  /// find_or_insert probes it.
  void prefetch(std::uint64_t subscriber, std::uint16_t service) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t h =
        util::hash_combine(subscriber, service) * 0x9E3779B97F4A7C15ULL;
    __builtin_prefetch(&entries_[static_cast<std::size_t>(h >> shift_)]);
#else
    (void)subscriber;
    (void)service;
#endif
  }

  [[nodiscard]] const EvidenceT* find(std::uint64_t subscriber,
                                      std::uint16_t service) const {
    const Entry& e = *const_cast<FlatEvidenceMap*>(this)->probe(subscriber,
                                                                service);
    return e.service_plus1 == 0 ? nullptr : &e.ev;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Bytes held by the slot array (the map's entire heap footprint —
  /// surfaced as the per-shard evidence_bytes obs gauge, ISSUE 9).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return std::uint64_t{entries_.capacity()} * sizeof(Entry);
  }

  /// Drops every entry; slot capacity is retained for reuse.
  void clear() {
    for (Entry& e : entries_) e.service_plus1 = 0;
    size_ = 0;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (e.service_plus1 != 0) {
        fn(e.subscriber,
           static_cast<std::uint16_t>(e.service_plus1 - 1), e.ev);
      }
    }
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;  // power of two

  struct Entry {
    std::uint64_t subscriber = 0;
    std::uint32_t service_plus1 = 0;  ///< service + 1; 0 marks an empty slot
    EvidenceT ev{};
  };

  /// First slot that either holds (subscriber, service) or is empty.
  [[nodiscard]] Entry* probe(std::uint64_t subscriber,
                             std::uint16_t service) {
    // Fibonacci finalizer: hash_combine is a boost-style mix whose low
    // bits alone are not uniform enough for power-of-two masking.
    const std::uint64_t h =
        util::hash_combine(subscriber, service) * 0x9E3779B97F4A7C15ULL;
    std::size_t slot = static_cast<std::size_t>(h >> shift_);
    for (;;) {
      Entry& e = entries_[slot];
      if (e.service_plus1 == 0 ||
          (e.subscriber == subscriber &&
           e.service_plus1 == std::uint32_t{service} + 1)) {
        return &e;
      }
      slot = (slot + 1) & mask_;
    }
  }

  void rehash(std::size_t slots) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(slots, Entry{});
    mask_ = slots - 1;
    shift_ = 64U;
    while ((std::size_t{1} << (64U - shift_)) < slots) --shift_;
    for (Entry& e : old) {
      if (e.service_plus1 == 0) continue;
      *probe(e.subscriber,
             static_cast<std::uint16_t>(e.service_plus1 - 1)) = e;
    }
  }

  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace haystack::core
