#include "telemetry/home_capture.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace haystack::telemetry {

MeteringResult HomePacketPipeline::meter_hour(
    const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour) {
  (void)hour;  // the events carry absolute timestamps already
  MeteringResult result;

  // Materialize packet events, globally time-ordered (flows within an hour
  // overlap, so per-flow emission order would present the cache with time
  // running backwards).
  std::vector<flow::PacketEvent> packets;

  for (const auto& lf : flows) {
    const flow::FlowRecord& rec = lf.flow;
    result.packets_in += rec.packets;
    result.bytes_in += rec.bytes;

    // One event per packet up to the materialization cap; beyond it,
    // events stand for packet bursts. Bytes are conserved exactly: each
    // event takes an equal share of what remains, and the final event
    // absorbs the remainder (events_left == 1 there).
    const std::uint64_t n = std::max<std::uint64_t>(
        1, std::min(rec.packets, config_.max_packets_per_flow));
    const std::uint64_t span =
        rec.end_ms > rec.start_ms ? rec.end_ms - rec.start_ms : 1;
    std::uint64_t bytes_left = rec.bytes;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t events_left = n - i;
      const std::uint64_t bytes_here = bytes_left / events_left;
      flow::PacketEvent event;
      event.key = rec.key;
      event.bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(bytes_here, 0xffffffffULL));
      event.tcp_flags =
          i == 0 ? rec.tcp_flags
                 : static_cast<std::uint8_t>(
                       rec.tcp_flags & ~flow::tcpflags::kSyn);
      event.timestamp_ms = rec.start_ms + (span * i) / n;
      packets.push_back(event);
      bytes_left -= bytes_here;
    }
    result.events_in += n;
  }

  std::sort(packets.begin(), packets.end(),
            [](const flow::PacketEvent& a, const flow::PacketEvent& b) {
              return a.timestamp_ms < b.timestamp_ms;
            });
  for (const auto& event : packets) {
    cache_.add(event, result.flows);
  }
  return result;
}

std::vector<flow::FlowRecord> HomePacketPipeline::drain() {
  std::vector<flow::FlowRecord> out;
  cache_.flush_all(out);
  return out;
}

}  // namespace haystack::telemetry
