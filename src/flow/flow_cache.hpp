// Flow cache: aggregates per-packet observations into flow records with
// active/idle timeout expiry, as a router's metering process does
// (RFC 3954 §2, RFC 7011 terminology: metering process + expiry).
//
// The Home-VP pipeline uses this to turn simulated packet events into the
// unsampled ground-truth flows; the exporter tests drive it with synthetic
// packet streams.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/flow_batch.hpp"
#include "flow/record.hpp"

namespace haystack::flow {

/// One observed packet (already past any packet sampling stage).
struct PacketEvent {
  FlowKey key;
  std::uint32_t bytes = 0;
  std::uint8_t tcp_flags = 0;
  std::uint64_t timestamp_ms = 0;
};

/// Cache configuration. Defaults mirror common router settings.
struct FlowCacheConfig {
  std::uint64_t active_timeout_ms = 60'000;   ///< export long-lived flows
  std::uint64_t idle_timeout_ms = 15'000;     ///< expire silent flows
  std::size_t max_entries = 1 << 20;          ///< emergency expiry bound
};

/// Packet-to-flow aggregation with timeout-driven expiry.
///
/// Call add() per packet (monotonically non-decreasing timestamps expected;
/// reordering within the idle timeout is tolerated), then flush_expired()
/// periodically and flush_all() at end of input.
class FlowCache {
 public:
  explicit FlowCache(FlowCacheConfig config) : config_{config} {}

  /// Ingests one packet. Any records expired by this packet's timestamp are
  /// appended to `out`.
  void add(const PacketEvent& packet, std::vector<FlowRecord>& out);

  /// Expires every flow idle or active beyond its timeout at `now_ms`.
  void flush_expired(std::uint64_t now_ms, std::vector<FlowRecord>& out);

  /// Expires everything unconditionally.
  void flush_all(std::vector<FlowRecord>& out);

  // FlowBatch-sink overloads (ISSUE 6): identical expiry semantics, but
  // expired records append into SoA columns. Records are copied by value
  // into the batch, so an arena-recycled batch never references cache
  // memory (and vice versa) — the emergency-expiry lifetime contract the
  // stress tier pins down. An emergency expiry can flush up to
  // max_entries records into one batch; BatchArena trims that capacity
  // when the lease is released.
  void add(const PacketEvent& packet, FlowBatch& out);
  void flush_expired(std::uint64_t now_ms, FlowBatch& out);
  void flush_all(FlowBatch& out);

  [[nodiscard]] std::size_t active_flows() const noexcept {
    return cache_.size();
  }

  /// Times the cache hit max_entries and flushed wholesale. A nonzero
  /// value means max_entries is undersized for the traffic mix (ISSUE 5:
  /// surfaced as a metric and a kCacheEmergencyExpiry flight event by the
  /// ingest pipeline).
  [[nodiscard]] std::uint64_t emergency_expiries() const noexcept {
    return emergency_expiries_;
  }

 private:
  struct Entry {
    FlowRecord record;
  };

  // Shared implementation over the two sink shapes; defined in the .cpp.
  template <typename Out>
  void add_impl(const PacketEvent& packet, Out& out);
  template <typename Out>
  void flush_expired_impl(std::uint64_t now_ms, Out& out);
  template <typename Out>
  void flush_all_impl(Out& out);

  FlowCacheConfig config_;
  std::unordered_map<FlowKey, Entry> cache_;
  std::uint64_t last_sweep_ms_ = 0;
  std::uint64_t emergency_expiries_ = 0;
};

}  // namespace haystack::flow
