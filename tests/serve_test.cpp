// Live control plane suite (ISSUE 8).
//
// The differential core: a DetectionSnapshot taken from fresh views of a
// running ShardedDetector — with NO drain() anywhere on the read path —
// must answer bit-for-bit identically to one single-process Detector fed
// the identical stream, across shard counts {1, 4, 16}: evidence rows,
// detection hours, loss-aware verdicts (including the ruleset_version
// tag), throughput counters, and the Fig. 12-style drill-downs.
//
// Satellites pinned here:
//   - published-epoch consistency: per-shard epochs, versions, and
//     observation counts are monotone under full ingest, views are
//     internally consistent (never torn), and ViewHub epoch regressions
//     stay zero;
//   - hot-reload cutover: verdicts rendered before the reload carry the
//     old version id, verdicts after carry the new one, evaluation
//     semantics actually switch at the boundary, and no answer ever
//     mixes requirements from two versions;
//   - the sustained soak: queries (live + fresh), reloads, and threshold
//     alerts all running against 8 shards at full ingest rate (the TSan
//     workload for `ctest -L serve`);
//   - AlertEngine kind-by-kind unit semantics and the flight-recorder /
//     source-tag wiring;
//   - vantage tier: Aggregator::live() is merge-prefix-consistent
//     mid-epoch, equals the post-seal answer once the barrier closes,
//     and never blocks a reader across collector kill/restart, failed
//     restore, and clear().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "core/rule_version.hpp"
#include "core/sharded_detector.hpp"
#include "serve/control.hpp"
#include "util/rng.hpp"
#include "util/shared_slot.hpp"
#include "vantage/fleet.hpp"

namespace haystack::serve {
namespace {

using core::Evidence;
using core::Observation;
using core::ServiceId;
using core::SubscriberKey;

constexpr unsigned kHours = 48;

struct TestScenario {
  core::RuleSet rules;
  core::DetectorConfig config;
  std::vector<std::vector<Observation>> stream;  ///< index == hour
  SubscriberKey subscriber_pool = 0;
};

net::IpAddress service_ip(ServiceId s, std::uint16_t m) {
  return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
}

// Randomized rule universe + hour-bucketed observation stream; everything
// derives from `seed` (same recipe as tests/differential_test.cpp and
// tests/vantage_test.cpp, so failures cross-reference).
TestScenario make_scenario(std::uint64_t seed) {
  util::Pcg32 rng = util::derive_rng(seed, 0x7a9e, 0);
  TestScenario sc;

  constexpr double kThresholds[] = {0.1, 0.25, 0.4, 0.6, 0.8, 1.0};
  sc.config.threshold = kThresholds[seed % std::size(kThresholds)];

  const unsigned n_services = 3 + rng.bounded(6);
  for (unsigned s = 0; s < n_services; ++s) {
    core::DetectionRule rule;
    rule.service = static_cast<ServiceId>(s);
    rule.name = "svc" + std::to_string(s);
    rule.level = core::Level::kManufacturer;
    rule.monitored_domains = 1 + rng.bounded(16);
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      rule.monitored_indices.push_back(m);
    }
    if (s > 0 && rng.chance(0.5)) {
      rule.parent = static_cast<ServiceId>(rng.bounded(s));
    }
    if (rng.chance(0.4)) {
      rule.critical_monitored_index =
          static_cast<std::uint16_t>(rng.bounded(rule.monitored_domains));
      rule.critical_sufficient = rng.chance(0.5);
    }
    sc.rules.rules.push_back(std::move(rule));
  }
  for (const auto& rule : sc.rules.rules) {
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      for (util::DayBin day = 0; day < kHours / 24; ++day) {
        sc.rules.hitlist.add(service_ip(rule.service, m), 443, day,
                             {rule.service, m});
      }
    }
  }

  sc.subscriber_pool = 1 + rng.bounded(120);
  sc.stream.resize(kHours);
  const std::size_t n_obs = 500 + rng.bounded(2500);
  for (std::size_t i = 0; i < n_obs; ++i) {
    Observation obs;
    obs.subscriber =
        1 + rng.bounded(static_cast<std::uint32_t>(sc.subscriber_pool));
    obs.packets = 1 + rng.bounded(100);
    obs.hour = rng.bounded(kHours);
    const std::uint32_t kind = rng.bounded(10);
    const auto s = static_cast<ServiceId>(rng.bounded(n_services));
    const auto m = static_cast<std::uint16_t>(
        rng.bounded(sc.rules.rules[s].monitored_domains));
    if (kind < 7) {
      obs.server = service_ip(s, m);
      obs.port = 443;
    } else if (kind < 9) {
      obs.server = service_ip(s, m);
      obs.port = static_cast<std::uint16_t>(1024 + rng.bounded(50000));
    } else {
      obs.server = net::IpAddress::v4(0xC6336400U + rng.bounded(256));
      obs.port = 443;
    }
    sc.stream[obs.hour].push_back(obs);
  }
  return sc;
}

using EvidenceRow =
    std::tuple<SubscriberKey, ServiceId, std::uint64_t, std::uint64_t,
               std::uint16_t, std::uint64_t, util::HourBin, util::HourBin>;

template <typename T>
std::vector<EvidenceRow> evidence_rows(const T& holder) {
  std::vector<EvidenceRow> rows;
  holder.for_each_evidence(
      [&rows](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                          ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

template <typename T>
std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
detection_map(const T& holder, const TestScenario& sc) {
  std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
      out;
  for (SubscriberKey sub = 1; sub <= sc.subscriber_pool; ++sub) {
    for (const auto& rule : sc.rules.rules) {
      out[{sub, rule.service}] = holder.detection_hour(sub, rule.service);
    }
  }
  return out;
}

core::Detector run_baseline(const TestScenario& sc) {
  core::Detector baseline{sc.rules.hitlist, sc.rules, sc.config};
  for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
    for (const Observation& obs : sc.stream[h]) {
      baseline.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                       obs.hour);
    }
  }
  return baseline;
}

void expect_verdicts_match(const DetectionSnapshot& snap,
                           const core::Detector& baseline,
                           const TestScenario& sc, const char* what) {
  for (SubscriberKey sub = 1; sub <= sc.subscriber_pool; ++sub) {
    for (const auto& rule : sc.rules.rules) {
      const core::Verdict got = snap.verdict(sub, rule.service);
      const core::Verdict want = baseline.verdict(sub, rule.service);
      ASSERT_EQ(got.detected, want.detected)
          << what << " sub=" << sub << " svc=" << rule.service;
      ASSERT_EQ(got.confidence, want.confidence)
          << what << " sub=" << sub << " svc=" << rule.service;
      ASSERT_EQ(got.hour, want.hour)
          << what << " sub=" << sub << " svc=" << rule.service;
      ASSERT_EQ(got.ruleset_version, want.ruleset_version)
          << what << " sub=" << sub << " svc=" << rule.service;
    }
  }
}

// --- the differential core -------------------------------------------------

class ServeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

// A fresh snapshot of a streaming ShardedDetector — taken while the
// detector is live, with no drain() call anywhere — must equal the
// single-process drained-synchronous pass bit for bit, for any shard
// count. The deprecated drain-on-read accessors are gone; detected()/
// verdict()/stats()/for_each_evidence on the detector itself must give
// the same answers through the snapshot layer.
TEST_P(ServeDifferentialTest, SnapshotMatchesDrainedSyncAcrossShardCounts) {
  const TestScenario sc = make_scenario(GetParam());
  const core::Detector baseline = run_baseline(sc);
  const auto baseline_rows = evidence_rows(baseline);
  const auto baseline_map = detection_map(baseline, sc);

  for (const unsigned shards : {1U, 4U, 16U}) {
    const std::string what = "shards=" + std::to_string(shards);
    core::ShardedDetector det{sc.rules.hitlist, sc.rules, sc.config, shards,
                              /*queue_capacity=*/64};
    for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
      det.enqueue_batch(sc.stream[h]);
    }

    // Snapshot layer, not drain: fresh views ride publish tokens only.
    const DetectionSnapshot snap{det.fresh_views()};
    EXPECT_EQ(evidence_rows(snap), baseline_rows) << what;
    EXPECT_EQ(detection_map(snap, sc), baseline_map) << what;
    expect_verdicts_match(snap, baseline, sc, what.c_str());
    EXPECT_EQ(snap.stats().flows, baseline.stats().flows) << what;
    EXPECT_EQ(snap.stats().matched, baseline.stats().matched) << what;
    EXPECT_EQ(snap.satisfied(), baseline.satisfied_total()) << what;
    EXPECT_EQ(snap.min_ruleset_version(), 1U) << what;
    EXPECT_EQ(snap.max_ruleset_version(), 1U) << what;

    // The detector's own read accessors route through the same layer.
    EXPECT_EQ(evidence_rows(det), baseline_rows) << what;
    EXPECT_EQ(detection_map(det, sc), baseline_map) << what;
    EXPECT_EQ(det.stats().flows, baseline.stats().flows) << what;
    EXPECT_EQ(det.view_hub().epoch_regressions(), 0U) << what;

    // Fig. 12 drill-down: per-service detected counts equal the baseline
    // census; heavy-hitter rank 1 carries the true maximum.
    std::map<ServiceId, std::uint64_t> expected_detected;
    std::map<SubscriberKey, std::uint32_t> per_sub;
    for (const auto& [key, hour] : baseline_map) {
      if (!hour) continue;
      ++expected_detected[key.second];
      ++per_sub[key.first];
    }
    std::uint64_t census_total = 0;
    for (const auto& row : snap.service_counts()) {
      EXPECT_EQ(row.detected_subscribers, expected_detected[row.service])
          << what << " svc=" << row.service;
      census_total += row.detected_subscribers;
    }
    std::uint64_t baseline_total = 0;
    for (const auto& [svc, n] : expected_detected) baseline_total += n;
    EXPECT_EQ(census_total, baseline_total) << what;
    if (!per_sub.empty()) {
      std::uint32_t max_services = 0;
      for (const auto& [sub, n] : per_sub) {
        max_services = std::max(max_services, n);
      }
      const auto top = snap.heavy_hitters(1);
      ASSERT_EQ(top.size(), 1U) << what;
      EXPECT_EQ(top[0].detected_services, max_services) << what;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ServeDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// A snapshot is a value: one taken before ingest keeps answering from its
// epoch-0 views no matter how much traffic lands afterwards.
TEST(ServeSnapshot, SnapshotsAreImmutableValues) {
  const TestScenario sc = make_scenario(3);
  core::ShardedDetector det{sc.rules.hitlist, sc.rules, sc.config, 4};
  const DetectionSnapshot before{det.live_views()};
  EXPECT_EQ(before.observations(), 0U);
  EXPECT_TRUE(evidence_rows(before).empty());

  for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
    det.enqueue_batch(sc.stream[h]);
  }
  const DetectionSnapshot after{det.fresh_views()};
  EXPECT_GT(after.observations(), 0U);
  EXPECT_FALSE(evidence_rows(after).empty());

  // The old snapshot is untouched: still epoch 0, still empty.
  EXPECT_EQ(before.observations(), 0U);
  EXPECT_TRUE(evidence_rows(before).empty());
  for (const auto e : before.epochs()) EXPECT_EQ(e, 0U);
}

// --- published-epoch consistency (property tests) --------------------------

// Under full ingest, a concurrent reader must see per-shard epochs,
// versions, and observation counts move monotonically, and every view it
// grabs must be internally consistent — the satisfied counter equals the
// number of satisfied evidence rows in the same view (a torn read could
// not keep them equal).
TEST(ServeProperty, EpochsMonotoneAndViewsNeverTorn) {
  const TestScenario sc = make_scenario(5);
  constexpr unsigned kShards = 8;
  core::ShardedDetector det{sc.rules.hitlist, sc.rules, sc.config, kShards,
                            /*queue_capacity=*/256, nullptr,
                            {.auto_publish_observations = 1000}};

  std::atomic<bool> done{false};
  std::thread ingest{[&] {
    for (int pass = 0; pass < 4; ++pass) {
      for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
        det.enqueue_batch(sc.stream[h]);
      }
    }
    done.store(true, std::memory_order_release);
  }};

  std::vector<std::uint64_t> last_epoch(kShards, 0);
  std::vector<std::uint64_t> last_obs(kShards, 0);
  std::vector<std::uint64_t> last_version(kShards, 0);
  std::uint64_t iterations = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto views = det.live_views();
    ASSERT_EQ(views.size(), kShards);
    for (unsigned s = 0; s < kShards; ++s) {
      const auto& v = *views[s];
      ASSERT_EQ(v.shard, s);
      ASSERT_GE(v.epoch, last_epoch[s]);
      ASSERT_GE(v.observations, last_obs[s]);
      ASSERT_GE(v.ruleset_version, last_version[s]);
      if (v.epoch > 0) {
        ASSERT_NE(v.compiled, nullptr);
        ASSERT_EQ(v.compiled->id, v.ruleset_version);
        std::uint64_t satisfied_rows = 0;
        v.evidence.for_each([&](SubscriberKey, ServiceId,
                                const Evidence& ev) {
          satisfied_rows += ev.satisfied_hour() != Evidence::kNever ? 1U : 0U;
        });
        ASSERT_EQ(satisfied_rows, v.satisfied)
            << "torn view: shard " << s << " epoch " << v.epoch;
      }
      last_epoch[s] = v.epoch;
      last_obs[s] = v.observations;
      last_version[s] = v.ruleset_version;
    }
    ++iterations;
  }
  ingest.join();
  EXPECT_GT(iterations, 0U);
  EXPECT_EQ(det.view_hub().epoch_regressions(), 0U);
  EXPECT_EQ(det.cutover_regressions(), 0U);

  // And the final fresh snapshot still equals the sequential replay of
  // the 4x-repeated stream (packets accumulate; masks idempotent).
  TestScenario repeated = sc;
  for (auto& hour : repeated.stream) {
    const auto once = hour;
    for (int extra = 1; extra < 4; ++extra) {
      hour.insert(hour.end(), once.begin(), once.end());
    }
  }
  const core::Detector baseline = run_baseline(repeated);
  const DetectionSnapshot snap{det.fresh_views()};
  EXPECT_EQ(evidence_rows(snap), evidence_rows(baseline));
  EXPECT_EQ(snap.satisfied(), baseline.satisfied_total());
}

// --- hot-reload cutover ----------------------------------------------------

// Deterministic cutover semantics on a hand-built one-service rule set:
// threshold 1.0 requires all 4 monitored domains, the reload drops the
// requirement to 1. Verdicts rendered before the reload are tagged v1,
// after it v2; evaluation genuinely switches (the same evidence that was
// insufficient under v1 satisfies under v2 once the next observation is
// applied under the new version).
TEST(ServeReload, CutoverRetagsAndChangesEvaluation) {
  core::RuleSet rules;
  core::DetectionRule rule;
  rule.service = 0;
  rule.name = "svc0";
  rule.level = core::Level::kManufacturer;
  rule.monitored_domains = 4;
  for (std::uint16_t m = 0; m < 4; ++m) rule.monitored_indices.push_back(m);
  rules.rules.push_back(rule);
  for (std::uint16_t m = 0; m < 4; ++m) {
    for (util::DayBin day = 0; day < 2; ++day) {
      rules.hitlist.add(service_ip(0, m), 443, day, {0, m});
    }
  }
  const SubscriberKey sub = 7;

  core::ShardedDetector det{rules.hitlist, rules, {.threshold = 1.0}, 4};
  det.enqueue_batch(std::vector<Observation>{
      {sub, service_ip(0, 0), 443, 3, 0}});

  core::Verdict v = det.verdict(sub, 0);
  EXPECT_FALSE(v.detected);
  EXPECT_EQ(v.ruleset_version, 1U);
  EXPECT_EQ(det.current_version()->id, 1U);

  // Hot-reload: same rules, threshold 0.25 => one domain suffices.
  const auto reloaded = std::make_shared<const core::RuleSet>(rules);
  const std::uint64_t id = det.reload_rules(reloaded, {.threshold = 0.25});
  EXPECT_EQ(id, 2U);
  EXPECT_EQ(det.current_version()->id, 2U);

  // The cutover republishes every shard even with no traffic: a snapshot
  // reports the new version uniformly.
  const DetectionSnapshot cut{det.fresh_views()};
  EXPECT_EQ(cut.min_ruleset_version(), 2U);
  EXPECT_EQ(cut.max_ruleset_version(), 2U);

  // The old single-domain evidence was never stamped under v1 and a
  // reload does not rewrite history: still undetected, but now tagged v2.
  v = det.verdict(sub, 0);
  EXPECT_FALSE(v.detected);
  EXPECT_EQ(v.ruleset_version, 2U);

  // The next observation applies under v2's relaxed requirement.
  det.enqueue_batch(std::vector<Observation>{
      {sub, service_ip(0, 1), 443, 2, 1}});
  v = det.verdict(sub, 0);
  EXPECT_TRUE(v.detected);
  EXPECT_EQ(v.hour, std::optional<util::HourBin>{1});
  EXPECT_EQ(v.ruleset_version, 2U);
  EXPECT_EQ(det.cutover_regressions(), 0U);

  // config()/rules() follow the current version.
  EXPECT_DOUBLE_EQ(det.config().threshold, 0.25);
}

// Concurrent reloads serialize by version id: the highest id wins the
// producer side and every shard converges to it.
TEST(ServeReload, ConcurrentReloadsConvergeToHighestVersion) {
  const TestScenario sc = make_scenario(2);
  core::ShardedDetector det{sc.rules.hitlist, sc.rules, sc.config, 4};
  const auto shared_rules = std::make_shared<const core::RuleSet>(sc.rules);

  std::vector<std::thread> admins;
  for (int t = 0; t < 4; ++t) {
    admins.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        det.reload_rules(shared_rules,
                         {.threshold = 0.3 + 0.1 * (t % 3)});
      }
    });
  }
  for (auto& a : admins) a.join();

  // 4 threads x 8 reloads after construction-time v1.
  EXPECT_EQ(det.current_version()->id, 33U);
  const DetectionSnapshot snap{det.fresh_views()};
  EXPECT_EQ(snap.min_ruleset_version(), 33U);
  EXPECT_EQ(snap.max_ruleset_version(), 33U);
  EXPECT_EQ(det.cutover_regressions(), 0U);
}

// --- the sustained soak (queries + reloads + alerts under full ingest) -----

// The acceptance soak: 8 shards at full ingest rate while one thread
// hammers live and fresh snapshots, another cycles rule hot-reloads, and
// the alert engine rides every publication. Every answer must be tagged
// with exactly one version (never a mix), per-shard versions must be
// monotone, and the run must end with zero cutover/epoch regressions and
// at least one new-detection alert (each pass plants a fresh "beacon"
// subscriber that fully covers service 0).
TEST(ServeSoak, QueriesReloadsAlertsUnderFullIngest) {
  const TestScenario sc = make_scenario(1);
  constexpr unsigned kShards = 8;
  constexpr int kPasses = 6;
  obs::Observability obs;
  core::ShardedDetector det{sc.rules.hitlist, sc.rules,
                            {.threshold = 0.4},  kShards,
                            /*queue_capacity=*/256, &obs,
                            {.auto_publish_observations = 1000}};
  ControlPlane control{det, {.min_new_detections = 1}, &obs};
  const auto shared_rules = std::make_shared<const core::RuleSet>(sc.rules);
  const std::uint16_t beacon_domains = sc.rules.rules[0].monitored_domains;

  std::atomic<bool> done{false};
  std::thread ingest{[&] {
    std::vector<Observation> beacon;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
        det.enqueue_batch(sc.stream[h]);
      }
      // One brand-new subscriber per pass covers every monitored domain
      // of service 0 -> a guaranteed coverage-met transition.
      beacon.clear();
      const SubscriberKey sub = 1'000'000 + static_cast<SubscriberKey>(pass);
      for (std::uint16_t m = 0; m < beacon_domains; ++m) {
        beacon.push_back({sub, service_ip(0, m), 443, 1,
                          static_cast<util::HourBin>(pass % kHours)});
      }
      det.enqueue_batch(beacon);
    }
    done.store(true, std::memory_order_release);
  }};

  // Both control-plane loops run at least a handful of iterations even if
  // ingest outruns them (the stream is small; the TSan build is not).
  std::thread admin{[&] {
    int i = 0;
    while (i < 4 || !done.load(std::memory_order_acquire)) {
      control.reload(shared_rules,
                     {.threshold = (i++ % 2) == 0 ? 0.4 : 0.6});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }};

  std::vector<std::uint64_t> last_version(kShards, 0);
  std::uint64_t fresh_queries = 0;
  while (fresh_queries < 8 || !done.load(std::memory_order_acquire)) {
    const bool fresh = (fresh_queries++ % 4) == 0;
    const DetectionSnapshot snap =
        fresh ? control.fresh_snapshot() : control.snapshot();
    ASSERT_LE(snap.min_ruleset_version(), snap.max_ruleset_version());
    for (unsigned s = 0; s < kShards; ++s) {
      const auto& view = snap.view(s);
      ASSERT_GE(view.ruleset_version, last_version[s]);
      last_version[s] = view.ruleset_version;
    }
    // No mixed-version answers: a verdict carries exactly the version of
    // the one view that rendered it.
    for (SubscriberKey sub = 1; sub <= 16; ++sub) {
      const core::Verdict v = snap.verdict(sub, 0);
      ASSERT_EQ(v.ruleset_version,
                snap.view(det.owner_shard(sub)).ruleset_version);
    }
    static_cast<void>(snap.service_counts());
    static_cast<void>(snap.heavy_hitters(4));
  }
  ingest.join();
  admin.join();

  EXPECT_EQ(det.cutover_regressions(), 0U);
  EXPECT_EQ(det.view_hub().epoch_regressions(), 0U);
  EXPECT_GT(control.queries_served(), 0U);
  EXPECT_GT(control.reloads_applied(), 0U);
  EXPECT_GE(control.alerts().new_detection_alerts(), 1U);

  // After the dust settles every shard is on the final version.
  const DetectionSnapshot final_snap = control.fresh_snapshot();
  EXPECT_EQ(final_snap.min_ruleset_version(),
            final_snap.max_ruleset_version());
  EXPECT_EQ(final_snap.max_ruleset_version(), det.current_version()->id);

  // Alert events rode the flight recorder with the serve source tag.
  bool saw_alert_event = false;
  for (const auto& e : obs.recorder.dump()) {
    if (e.kind != obs::EventKind::kAlertNewDetection) continue;
    saw_alert_event = true;
    EXPECT_EQ(e.source >> 24U, std::uint32_t{'q'});
    EXPECT_LT(e.source & 0x00ffffffU, kShards);
  }
  EXPECT_TRUE(saw_alert_event);
}

// --- AlertEngine unit semantics --------------------------------------------

core::ShardView make_view(unsigned shard, std::uint64_t epoch,
                          std::uint64_t satisfied, double loss,
                          bool degraded) {
  core::ShardView v;
  v.shard = shard;
  v.epoch = epoch;
  v.satisfied = satisfied;
  v.ruleset_version = 1;
  v.observed_loss = loss;
  v.degraded = degraded;
  return v;
}

TEST(ServeAlerts, EngineRaisesEachKindOnItsEdge) {
  obs::Observability obs;
  AlertEngine engine{{.min_new_detections = 2, .loss_spike_delta = 0.05},
                     &obs};

  // First publication has no predecessor delta to alert on.
  const auto first = make_view(3, 1, 5, 0.0, false);
  engine.on_publish(nullptr, first);
  EXPECT_EQ(engine.total_alerts(), 0U);

  // +1 detection: below min_new_detections.
  const auto small = make_view(3, 2, 6, 0.0, false);
  engine.on_publish(&first, small);
  EXPECT_EQ(engine.new_detection_alerts(), 0U);

  // +2 detections: fires.
  const auto big = make_view(3, 3, 8, 0.0, false);
  engine.on_publish(&small, big);
  EXPECT_EQ(engine.new_detection_alerts(), 1U);

  // Loss creeps under the spike delta: quiet. Jumps past it: fires.
  const auto creep = make_view(3, 4, 8, 0.04, false);
  engine.on_publish(&big, creep);
  EXPECT_EQ(engine.loss_spike_alerts(), 0U);
  const auto spike = make_view(3, 5, 8, 0.12, false);
  engine.on_publish(&creep, spike);
  EXPECT_EQ(engine.loss_spike_alerts(), 1U);

  // Degraded edge fires once; staying degraded does not re-fire.
  const auto degraded = make_view(3, 6, 8, 0.12, true);
  engine.on_publish(&spike, degraded);
  EXPECT_EQ(engine.confidence_degraded_alerts(), 1U);
  const auto still = make_view(3, 7, 8, 0.12, true);
  engine.on_publish(&degraded, still);
  EXPECT_EQ(engine.confidence_degraded_alerts(), 1U);

  EXPECT_EQ(engine.total_alerts(), 3U);

  // Every event carries the serve source tag for shard 3.
  std::size_t alert_events = 0;
  for (const auto& e : obs.recorder.dump()) {
    if (e.kind != obs::EventKind::kAlertNewDetection &&
        e.kind != obs::EventKind::kAlertConfidenceDegraded &&
        e.kind != obs::EventKind::kAlertLossSpike) {
      continue;
    }
    ++alert_events;
    EXPECT_EQ(e.source, alert_source(3));
  }
  EXPECT_EQ(alert_events, 3U);
}

TEST(ServeAlerts, NullObservabilityStillCountsTotals) {
  AlertEngine engine{{.min_new_detections = 1}};
  const auto a = make_view(0, 1, 0, 0.0, false);
  const auto b = make_view(0, 2, 4, 0.0, false);
  engine.on_publish(&a, b);
  EXPECT_EQ(engine.new_detection_alerts(), 1U);
}

// --- ViewHub unit semantics ------------------------------------------------

TEST(ServeViewHub, SeedsEmptyViewsAndKeepsEpochsMonotone) {
  core::ViewHub hub{2};
  for (unsigned s = 0; s < 2; ++s) {
    const auto v = hub.view(s);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->shard, s);
    EXPECT_EQ(v->epoch, 0U);
  }

  auto v5 = std::make_shared<core::ShardView>(make_view(0, 5, 0, 0.0, false));
  hub.publish(v5);
  EXPECT_EQ(hub.view(0)->epoch, 5U);

  // A regression is counted and dropped; the published view survives.
  hub.publish(std::make_shared<core::ShardView>(
      make_view(0, 4, 0, 0.0, false)));
  EXPECT_EQ(hub.view(0)->epoch, 5U);
  EXPECT_EQ(hub.epoch_regressions(), 1U);

  // Equal-epoch republish is allowed (rule cutovers re-seed at the same
  // epoch) and does not count as a regression.
  auto v5b = std::make_shared<core::ShardView>(make_view(0, 5, 9, 0.0, false));
  hub.publish(v5b);
  EXPECT_EQ(hub.view(0)->satisfied, 9U);
  EXPECT_EQ(hub.epoch_regressions(), 1U);

  // Shard 1 is independent.
  EXPECT_EQ(hub.view(1)->epoch, 0U);
}

TEST(ServeViewHub, WaitEpochWakesWhenTargetPublishes) {
  core::ViewHub hub{1};
  std::atomic<bool> woke{false};
  std::thread waiter{[&] {
    hub.wait_epoch(0, 3);
    woke.store(true, std::memory_order_release);
  }};
  hub.publish(std::make_shared<core::ShardView>(
      make_view(0, 1, 0, 0.0, false)));
  hub.publish(std::make_shared<core::ShardView>(
      make_view(0, 3, 0, 0.0, false)));
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
  // Already-satisfied targets return immediately.
  hub.wait_epoch(0, 2);
}

// --- vantage tier: aggregator live snapshots -------------------------------

using vantage::Aggregator;
using vantage::AggregatorConfig;
using vantage::Collector;
using vantage::CollectorConfig;
using vantage::Fleet;
using vantage::FleetConfig;

// Mid-epoch offers must never surface through live(): the snapshot only
// ever advances when the barrier seals, so a reader sees state as of a
// sealed epoch — never a half-merged one.
TEST(ServeVantage, LiveSnapshotIsMergePrefixConsistent) {
  const TestScenario sc = make_scenario(4);
  AggregatorConfig acfg;
  acfg.detector = sc.config;
  CollectorConfig c0cfg;
  c0cfg.id = 0;
  c0cfg.detector = sc.config;
  CollectorConfig c1cfg = c0cfg;
  c1cfg.id = 1;
  Collector c0{sc.rules.hitlist, sc.rules, c0cfg};
  Collector c1{sc.rules.hitlist, sc.rules, c1cfg};

  Aggregator agg{sc.rules.hitlist, sc.rules, acfg};
  agg.add_collector(0, 0);
  agg.add_collector(1, 0);

  for (const Observation& obs : sc.stream[0]) {
    ((obs.subscriber % 2 == 0) ? c0 : c1).ingest(obs);
  }
  const auto d0 = c0.seal_epoch(0);
  const auto d1 = c1.seal_epoch(0);

  const auto before = agg.live();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->merged_through, std::nullopt);
  EXPECT_EQ(before->epochs_sealed, 0U);

  // Half the epoch lands: staged, not sealed — live() must not move.
  ASSERT_TRUE(agg.offer(d0).accepted);
  const auto mid = agg.live();
  EXPECT_EQ(mid->merged_through, std::nullopt);
  EXPECT_EQ(mid->epochs_sealed, 0U);
  std::size_t mid_rows = 0;
  mid->evidence.for_each(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++mid_rows; });
  EXPECT_EQ(mid_rows, 0U);

  // The second delta closes the barrier: live() now equals the locked
  // query surface exactly.
  ASSERT_TRUE(agg.offer(d1).accepted);
  const auto sealed = agg.live();
  EXPECT_EQ(sealed->merged_through, std::optional<util::HourBin>{0});
  EXPECT_EQ(sealed->epochs_sealed, 1U);
  EXPECT_EQ(sealed->merged_through, agg.merged_through());
  std::vector<EvidenceRow> live_rows;
  sealed->evidence.for_each(
      [&](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        live_rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                               ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(live_rows.begin(), live_rows.end());
  EXPECT_EQ(live_rows, evidence_rows(agg));
  EXPECT_EQ(sealed->stats.flows, agg.stats().flows);

  // The mid-epoch snapshot a reader may still hold is untouched.
  EXPECT_EQ(mid->epochs_sealed, 0U);

  // Failed restore honors the cleared-on-failed-restore contract on the
  // live surface too.
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(agg.restore(garbage));
  const auto cleared = agg.live();
  EXPECT_EQ(cleared->merged_through, std::nullopt);
  std::size_t cleared_rows = 0;
  cleared->evidence.for_each(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++cleared_rows; });
  EXPECT_EQ(cleared_rows, 0U);
  // ...and the sealed snapshot taken before the wipe still answers.
  EXPECT_EQ(sealed->epochs_sealed, 1U);
}

// A reader spinning on live() across a scripted collector kill/restart
// study is never blocked and only ever sees the sealed prefix advance;
// the final snapshot equals the single-process baseline bit for bit.
TEST(ServeVantage, KillRestartNeverBlocksLiveReader) {
  const TestScenario sc = make_scenario(6);
  FleetConfig fcfg;
  fcfg.collectors = 4;
  fcfg.detector = sc.config;
  fcfg.seed = 6;
  fcfg.kill_collector = 2;
  fcfg.kill_hour = 12;
  fcfg.restart_hour = 30;
  Fleet fleet{sc.rules.hitlist, sc.rules, fcfg};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader{[&] {
    std::uint64_t last_sealed = 0;
    std::optional<util::HourBin> last_through;
    do {  // at least one read even if the study outruns this thread
      const auto s = fleet.aggregator().live();
      ASSERT_NE(s, nullptr);
      ASSERT_GE(s->epochs_sealed, last_sealed);
      if (last_through && s->merged_through) {
        ASSERT_GE(*s->merged_through, *last_through);
      }
      last_sealed = s->epochs_sealed;
      last_through = s->merged_through;
      reads.fetch_add(1, std::memory_order_relaxed);
    } while (!done.load(std::memory_order_acquire));
  }};

  for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
    fleet.process_hour(h, sc.stream[h]);
  }
  ASSERT_TRUE(fleet.finish());
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0U);

  const core::Detector baseline = run_baseline(sc);
  const auto live = fleet.aggregator().live();
  EXPECT_EQ(live->merged_through, std::optional<util::HourBin>{kHours - 1});
  std::vector<EvidenceRow> rows;
  live->evidence.for_each(
      [&](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                          ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, evidence_rows(baseline));
  EXPECT_EQ(detection_map(*live, sc), detection_map(baseline, sc));

  // clear() publishes an empty snapshot; held ones stay valid.
  fleet.aggregator().clear();
  const auto empty = fleet.aggregator().live();
  std::size_t empty_rows = 0;
  empty->evidence.for_each(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++empty_rows; });
  EXPECT_EQ(empty_rows, 0U);
  EXPECT_EQ(empty->merged_through, std::nullopt);
  EXPECT_EQ(live->merged_through, std::optional<util::HourBin>{kHours - 1});
}


// ---------------------------------------------------------------------------
// util::SharedSlot — the TSan-clean published-pointer slot under the
// ViewHub, the compiled-rule version, and the aggregator LiveSnapshot.
// ---------------------------------------------------------------------------

TEST(ServeSharedSlot, LoadStoreRoundTripAndRetiredValueReleased) {
  util::SharedSlot<const int> slot;
  EXPECT_EQ(slot.load(), nullptr);

  auto a = std::make_shared<const int>(7);
  slot.store(a);
  EXPECT_EQ(*slot.load(), 7);
  EXPECT_EQ(a.use_count(), 2);  // slot + local

  slot.store(std::make_shared<const int>(9));
  EXPECT_EQ(*slot.load(), 9);
  EXPECT_EQ(a.use_count(), 1);  // retired value dropped by the slot
}

TEST(ServeSharedSlot, ConcurrentReadersAlwaysSeeAPublishedValue) {
  util::SharedSlot<const std::uint64_t> slot{
      std::make_shared<const std::uint64_t>(0)};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      do {
        const auto p = slot.load();
        ASSERT_NE(p, nullptr);
        // Writers publish increasing values; a reader may see repeats but
        // never travel backwards (single writer, one slot).
        EXPECT_GE(*p, last);
        last = *p;
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  for (std::uint64_t v = 1; v <= 2000; ++v) {
    slot.store(std::make_shared<const std::uint64_t>(v));
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0U);
  EXPECT_EQ(*slot.load(), 2000U);
}

}  // namespace
}  // namespace haystack::serve
