// Parameterized property suites: invariants that must hold across sweeps
// of seeds, sizes, and configuration values rather than at single points.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "core/detector.hpp"
#include "pipeline/bounded_queue.hpp"
#include "dns/fqdn.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v5.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/sampler.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace haystack {
namespace {

// ---------------------------------------------------------------------------
// Codec round trips across record counts and family mixes.

struct CodecCase {
  std::size_t records;
  unsigned v6_modulo;  // every Nth record is IPv6 (0 = none)
};

class CodecRoundtrip : public ::testing::TestWithParam<CodecCase> {
 protected:
  static std::vector<flow::FlowRecord> make_records(const CodecCase& c) {
    std::vector<flow::FlowRecord> records;
    util::Pcg32 rng{99, c.records};
    for (std::size_t i = 0; i < c.records; ++i) {
      flow::FlowRecord rec;
      const bool v6 = c.v6_modulo != 0 && i % c.v6_modulo == 0;
      if (v6) {
        rec.key.src = net::IpAddress::v6(rng(), rng());
        rec.key.dst = net::IpAddress::v6(rng(), rng());
      } else {
        rec.key.src = net::IpAddress::v4(rng());
        rec.key.dst = net::IpAddress::v4(rng());
      }
      rec.key.src_port = static_cast<std::uint16_t>(rng());
      rec.key.dst_port = static_cast<std::uint16_t>(rng());
      rec.key.proto = rng.chance(0.8) ? 6 : 17;
      rec.tcp_flags = static_cast<std::uint8_t>(rng());
      rec.packets = 1 + rng.bounded(100000);
      rec.bytes = rec.packets * (40 + rng.bounded(1400));
      rec.start_ms = rng();
      rec.end_ms = rec.start_ms + rng.bounded(100000);
      rec.sampling = 1000;
      records.push_back(rec);
    }
    return records;
  }
};

TEST_P(CodecRoundtrip, NetflowV9Lossless) {
  auto input = make_records(GetParam());
  flow::nf9::Exporter exporter{{}};
  flow::nf9::Collector collector;
  std::vector<flow::FlowRecord> output;
  for (const auto& p : exporter.export_flows(input, 1)) {
    ASSERT_TRUE(collector.ingest(p, output));
  }
  // v9 timestamps are 32-bit on the wire; mask for comparison.
  for (auto& r : input) {
    r.start_ms &= 0xffffffffULL;
    r.end_ms &= 0xffffffffULL;
  }
  std::sort(input.begin(), input.end());
  std::sort(output.begin(), output.end());
  EXPECT_EQ(input, output);
}

TEST_P(CodecRoundtrip, IpfixLossless) {
  auto input = make_records(GetParam());
  flow::ipfix::Exporter exporter{{}};
  flow::ipfix::Collector collector;
  std::vector<flow::FlowRecord> output;
  for (const auto& m : exporter.export_flows(input, 1)) {
    ASSERT_TRUE(collector.ingest(m, output));
  }
  std::sort(input.begin(), input.end());
  std::sort(output.begin(), output.end());
  EXPECT_EQ(input, output);
  EXPECT_EQ(collector.stats().sequence_gaps, 0u);
}

TEST_P(CodecRoundtrip, NetflowV5LosslessForV4) {
  auto input = make_records(GetParam());
  flow::nf5::Exporter exporter{{.engine_id = 1, .sampling = 1000}};
  flow::nf5::Collector collector;
  std::vector<flow::FlowRecord> output;
  for (const auto& p : exporter.export_flows(input, 1)) {
    ASSERT_TRUE(collector.ingest(p, output));
  }
  std::vector<flow::FlowRecord> v4_only;
  for (auto r : input) {
    if (!r.key.src.is_v4()) continue;
    // v5 carries 32-bit counters/timestamps.
    r.packets &= 0xffffffffULL;
    r.bytes &= 0xffffffffULL;
    r.start_ms &= 0xffffffffULL;
    r.end_ms &= 0xffffffffULL;
    v4_only.push_back(r);
  }
  std::sort(v4_only.begin(), v4_only.end());
  std::sort(output.begin(), output.end());
  EXPECT_EQ(v4_only, output);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundtrip,
    ::testing::Values(CodecCase{1, 0}, CodecCase{7, 2}, CodecCase{24, 0},
                      CodecCase{25, 3}, CodecCase{100, 5},
                      CodecCase{999, 4}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return "n" + std::to_string(info.param.records) + "_v6mod" +
             std::to_string(info.param.v6_modulo);
    });

// ---------------------------------------------------------------------------
// Sampling-thinning invariants across intervals.

class SamplerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamplerProperty, ThinningIsUnbiased) {
  const std::uint32_t interval = GetParam();
  util::Pcg32 rng{interval, 1};
  flow::FlowRecord rec;
  rec.key.src = net::IpAddress::v4(1);
  rec.key.dst = net::IpAddress::v4(2);
  rec.packets = 5000;
  rec.bytes = 5000 * 600;

  constexpr int kTrials = 30000;
  std::uint64_t total_sampled = 0;
  int visible = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (const auto thin = flow::thin_flow(rec, interval, rng)) {
      total_sampled += thin->packets;
      ++visible;
      EXPECT_LE(thin->packets, rec.packets);
      EXPECT_LE(thin->bytes, rec.bytes);
    }
  }
  // E[sampled] = packets/N regardless of N.
  const double expected = 5000.0 / interval * kTrials;
  EXPECT_NEAR(static_cast<double>(total_sampled), expected,
              expected * 0.1 + 5 * std::sqrt(expected));
  // Visibility matches 1-(1-1/N)^packets.
  const double p_visible =
      1.0 - std::pow(1.0 - 1.0 / interval, double(rec.packets));
  EXPECT_NEAR(static_cast<double>(visible) / kTrials, p_visible,
              0.02 + 3 * std::sqrt(p_visible * (1 - p_visible) / kTrials));
}

INSTANTIATE_TEST_SUITE_P(Intervals, SamplerProperty,
                         ::testing::Values(2u, 10u, 100u, 1000u, 10000u));

// ---------------------------------------------------------------------------
// FQDN invariants across random names.

class FqdnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FqdnProperty, NormalizationIsIdempotentAndRegistrableIsSuffix) {
  util::Pcg32 rng{GetParam(), 77};
  static constexpr const char* kTlds[] = {"com", "net", "io", "co.uk",
                                          "com.cn", "unknowntld"};
  for (int i = 0; i < 300; ++i) {
    std::string name;
    const unsigned labels = 1 + rng.bounded(4);
    for (unsigned l = 0; l < labels; ++l) {
      const unsigned len = 1 + rng.bounded(12);
      for (unsigned c = 0; c < len; ++c) {
        name += static_cast<char>(
            rng.chance(0.5) ? ('a' + rng.bounded(26))
                            : ('A' + rng.bounded(26)));
      }
      name += '.';
    }
    name += kTlds[rng.bounded(6)];

    const dns::Fqdn fqdn{name};
    ASSERT_TRUE(fqdn.valid()) << name;
    // Idempotent normalization.
    EXPECT_EQ(dns::Fqdn{fqdn.str()}.str(), fqdn.str());
    // registrable() is a suffix of the name and itself a fixed point.
    const dns::Fqdn reg = fqdn.registrable();
    EXPECT_TRUE(fqdn.is_subdomain_of(reg)) << fqdn.str();
    EXPECT_EQ(reg.registrable(), reg);
    // Label count of the registrable domain is suffix-label-count + 1
    // (or the whole name when shorter).
    EXPECT_LE(reg.label_count(), fqdn.label_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FqdnProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Trie vs linear scan, across random universes.

class TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieProperty, MatchesLinearScan) {
  util::Pcg32 rng{GetParam(), 5};
  net::PrefixTrie<unsigned> trie;
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    const bool v6 = rng.chance(0.3);
    const net::IpAddress base =
        v6 ? net::IpAddress::v6(rng(), rng()) : net::IpAddress::v4(rng());
    const unsigned max_len = v6 ? 64 : 28;
    const auto prefix = net::Prefix::of(base, 4 + rng.bounded(max_len));
    trie.insert(prefix, static_cast<unsigned>(prefixes.size()));
    prefixes.push_back(prefix);
  }
  for (int i = 0; i < 1000; ++i) {
    const bool v6 = rng.chance(0.3);
    const net::IpAddress addr =
        v6 ? net::IpAddress::v6(rng(), rng()) : net::IpAddress::v4(rng());
    unsigned best_len = 0;
    bool found = false;
    for (const auto& p : prefixes) {
      if (p.contains(addr)) {
        found = true;
        best_len = std::max(best_len, p.length());
      }
    }
    const auto result = trie.lookup(addr);
    ASSERT_EQ(result.has_value(), found);
    if (result) EXPECT_EQ(prefixes[*result].length(), best_len);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Detector threshold monotonicity: raising D never creates detections.

class ThresholdProperty : public ::testing::TestWithParam<double> {
 protected:
  static core::RuleSet make_rules() {
    core::RuleSet rules;
    core::DetectionRule rule;
    rule.service = 0;
    rule.name = "svc";
    rule.monitored_domains = 12;
    for (std::uint16_t i = 0; i < 12; ++i) {
      rule.monitored_indices.push_back(i);
      for (util::DayBin d = 0; d < util::kStudyDays; ++d) {
        rules.hitlist.add(net::IpAddress::v4(0x0A000000U + i), 443, d,
                          {0, i});
      }
    }
    rules.rules.push_back(rule);
    return rules;
  }
};

TEST_P(ThresholdProperty, RequiredDomainsFormulaAndMonotonicity) {
  const double d = GetParam();
  const auto rules = make_rules();
  const auto& rule = rules.rules[0];
  // max(1, floor(D*N)).
  const unsigned expected = std::max(1u, static_cast<unsigned>(d * 12));
  EXPECT_EQ(rule.required_domains(d), expected);

  // Feed k distinct domains; detection iff k >= required.
  for (unsigned k = 1; k <= 12; ++k) {
    core::Detector det{rules.hitlist, rules, {.threshold = d}};
    for (unsigned i = 0; i < k; ++i) {
      det.observe(1, net::IpAddress::v4(0x0A000000U + i), 443, 1, 0);
    }
    EXPECT_EQ(det.detected(1, 0), k >= expected) << "k=" << k << " D=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         ::testing::Values(0.05, 0.1, 0.25, 0.4, 0.5, 0.75,
                                           1.0));

// ---------------------------------------------------------------------------
// Bounded-queue delivery properties (ISSUE 3): across randomized
// capacities and producer counts, the queue must deliver every item
// exactly once — no drops, no duplicates — and preserve each producer's
// submission order (per-producer FIFO), the invariant the streaming
// pipeline's determinism rests on.

struct QueueCase {
  std::size_t capacity;
  unsigned producers;
  bool waves;  ///< consume via pop_wave instead of pop
};

class QueueProperty : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueProperty, ExactlyOnceInPerProducerOrder) {
  const QueueCase c = GetParam();
  constexpr std::uint64_t kPerProducer = 1500;
  // Items are (producer, seq) packed into one word.
  pipeline::BoundedQueue<std::uint64_t> queue{c.capacity};

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < c.producers; ++p) {
    producers.emplace_back([&queue, p] {
      // Jittered pacing (seeded per producer) varies the interleavings.
      util::Pcg32 rng{0x9e37u, p};
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push((std::uint64_t{p} << 32) | i));
        if (rng.chance(0.05)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(c.producers, 0);
  std::uint64_t received = 0;
  std::vector<std::uint64_t> wave;
  const auto check = [&](std::uint64_t item) {
    const auto p = static_cast<unsigned>(item >> 32);
    const std::uint64_t seq = item & 0xffffffffu;
    ASSERT_LT(p, c.producers);
    // Strictly sequential per producer: any drop, duplicate, or
    // reordering shows up as a seq mismatch here.
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
    ++next_seq[p];
    ++received;
  };
  while (received < c.producers * kPerProducer) {
    if (c.waves) {
      wave.clear();
      const std::size_t n = queue.pop_wave(wave, 7);
      ASSERT_GT(n, 0u);
      for (const auto item : wave) check(item);
    } else {
      const auto item = queue.pop();
      ASSERT_TRUE(item.has_value());
      check(*item);
    }
  }
  for (auto& t : producers) t.join();

  for (unsigned p = 0; p < c.producers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer) << "producer " << p;
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.enqueued, c.producers * kPerProducer);
  EXPECT_EQ(stats.dequeued, c.producers * kPerProducer);
  EXPECT_EQ(queue.depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Queues, QueueProperty,
    ::testing::Values(QueueCase{1, 1, false}, QueueCase{1, 4, true},
                      QueueCase{2, 2, false}, QueueCase{7, 4, true},
                      QueueCase{7, 8, false}, QueueCase{64, 4, false},
                      QueueCase{64, 8, true}, QueueCase{1024, 2, true},
                      QueueCase{1024, 8, false}));

}  // namespace
}  // namespace haystack
