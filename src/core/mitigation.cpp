#include "core/mitigation.hpp"

namespace haystack::core {

const AclEntry* MitigationPlan::match(const net::IpAddress& ip,
                                      std::uint16_t port) const {
  const auto it = index_.find({ip, port});
  return it == index_.end() ? nullptr : &entries_[it->second];
}

bool MitigationPlanner::request(std::string_view service_name,
                                MitigationAction action) {
  const auto* rule = rules_.rule_by_name(service_name);
  if (rule == nullptr) return false;
  requests_[rule->service] = action;
  return true;
}

MitigationPlan MitigationPlanner::compile(util::DayBin day) const {
  MitigationPlan plan;
  rules_.hitlist.for_each([&](util::DayBin entry_day,
                              const net::IpAddress& ip, std::uint16_t port,
                              const Hit& hit) {
    if (entry_day != day) return;
    const auto it = requests_.find(hit.service);
    if (it == requests_.end()) return;
    AclEntry entry;
    entry.ip = ip;
    entry.port = port;
    entry.action = it->second;
    entry.service = hit.service;
    if (entry.action == MitigationAction::kRedirect) {
      entry.redirect_to = sinkhole_;
    }
    const auto [slot, inserted] =
        plan.index_.try_emplace({ip, port}, plan.entries_.size());
    if (inserted) plan.entries_.push_back(entry);
  });
  return plan;
}

}  // namespace haystack::core
