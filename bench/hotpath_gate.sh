#!/usr/bin/env bash
# Hot-path throughput regression gate (ISSUE 6).
#
# Builds bench/perf_pipeline at -O2, runs the streaming-pipeline benchmark
# at 1 / 4 / 8 shards, and compares per-shard-count flows/sec against the
# committed baseline in BENCH_hotpath.json. Any shard count regressing by
# more than 5% fails the gate — the same pattern bench/obs_overhead.sh
# uses for the instrumentation budget.
#
#   bench/hotpath_gate.sh                 # gate against committed baseline
#   BENCH_UPDATE=1 bench/hotpath_gate.sh  # re-measure, rewrite baseline
#   BENCH_REPS=5 bench/hotpath_gate.sh    # more repetitions
#
# The committed BENCH_hotpath.json also records the pre-PR (seed-era
# record-at-a-time) throughput measured with this same harness on the same
# container, so the speedup claim in EXPERIMENTS.md stays reproducible.
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="$(nproc)"
reps="${BENCH_REPS:-3}"

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "${jobs}" --target perf_pipeline >/dev/null
./build-bench/bench/perf_pipeline \
  --benchmark_filter='BM_StreamingPipeline/(1|4|8)/' \
  --benchmark_repetitions="${reps}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out=build-bench/bench_hotpath.json \
  --benchmark_min_warmup_time=0.2 \
  --benchmark_min_time=1

BENCH_UPDATE="${BENCH_UPDATE:-0}" python3 - <<'PY'
import json
import os

with open("build-bench/bench_hotpath.json") as f:
    doc = json.load(f)

fresh = {}
for b in doc["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    shard = b["run_name"].split("/")[1]  # BM_StreamingPipeline/8/real_time
    fresh[shard] = b["items_per_second"]
if not fresh:
    raise SystemExit("FAIL: no BM_StreamingPipeline medians in bench output")

# Seed-era (pre-PR) hot path measured with this harness on this container:
# record-at-a-time decode, per-observation hitlist map lookups, unordered
# evidence map, per-chunk shard submission.
PRE_PR = {"1": 11.83e6, "4": 9.41e6, "8": 7.74e6}

for shard in sorted(fresh, key=int):
    line = f"BM_StreamingPipeline/{shard}: {fresh[shard] / 1e6:.2f} M flows/s"
    if shard in PRE_PR:
        line += (f"  (pre-PR {PRE_PR[shard] / 1e6:.2f} M, "
                 f"{fresh[shard] / PRE_PR[shard]:.2f}x)")
    print(line)

path = "BENCH_hotpath.json"
update = os.environ.get("BENCH_UPDATE", "0") == "1"
baseline = None
if os.path.exists(path):
    with open(path) as f:
        baseline = json.load(f).get("flows_per_sec")

failures = []
if baseline and not update:
    for shard, base in baseline.items():
        cur = fresh.get(shard)
        if cur is None or base == 0:
            continue
        delta = (cur - base) / base
        print(f"  vs committed baseline /{shard}: {delta * 100:+.2f}%")
        if delta < -0.05:
            failures.append(
                f"BM_StreamingPipeline/{shard}: {cur / 1e6:.2f} M flows/s is "
                f"{-delta * 100:.2f}% below the committed "
                f"{base / 1e6:.2f} M flows/s")

if update or baseline is None:
    out = {
        "schema": "haystack-hotpath-bench-v1",
        "benchmark": "BM_StreamingPipeline",
        "metric": (f"items_per_second (flows/s), median of "
                   f"{os.environ.get('BENCH_REPS', '3')} repetitions at -O2"),
        "flows_per_sec": fresh,
        "pre_pr_flows_per_sec": PRE_PR,
        "speedup_vs_pre_pr": {
            s: round(fresh[s] / PRE_PR[s], 3) for s in fresh if s in PRE_PR
        },
        "note": ("Measured on a single-core container: producer decode/"
                 "intern and shard workers time-slice one CPU, so shard "
                 "counts cannot scale throughput and the per-observation "
                 "serial floor bounds the achievable speedup."),
    }
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")

if failures:
    raise SystemExit("FAIL: " + "; ".join(failures))
print("hot-path throughput within 5% of the committed baseline")
PY
