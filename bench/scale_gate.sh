#!/usr/bin/env bash
# Paper-scale regression gate (ISSUE 9).
#
# Builds bench/scale_bench at -O2 and runs the full two-week wild-ISP
# study once per population size in HAYSTACK_SCALE_SET (one process per
# size, so peak RSS is attributable). Each run's flows/sec and peak RSS
# are compared against the matching row of the committed
# BENCH_scale.json: a >5% throughput drop or a >10% peak-RSS growth
# fails the gate — the same shape as bench/hotpath_gate.sh.
#
#   bench/scale_gate.sh                      # gate the default 1M point
#   HAYSTACK_SCALE_SET="1000000 5000000 15000000" \
#     BENCH_UPDATE=1 bench/scale_gate.sh     # re-measure all paper rows
#   HAYSTACK_SCALE_HOURS=48 bench/scale_gate.sh  # shorter study (not
#                                            # comparable to the baseline)
#
# BENCH_UPDATE=1 merges the fresh rows into BENCH_scale.json, keeping
# committed rows for sizes not re-measured — so the CI-speed 1M refresh
# never drops the expensive 5M/15M rows.
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="$(nproc)"
hours="${HAYSTACK_SCALE_HOURS:-336}"
sizes="${HAYSTACK_SCALE_SET:-1000000}"

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "${jobs}" --target scale_bench >/dev/null

mkdir -p build-bench/scale
for n in ${sizes}; do
  echo "scale_bench: ${n} lines x ${hours} hours ..."
  HAYSTACK_LINES="${n}" HAYSTACK_SCALE_HOURS="${hours}" \
    ./build-bench/bench/scale_bench > "build-bench/scale/row_${n}.json"
done

BENCH_UPDATE="${BENCH_UPDATE:-0}" HAYSTACK_SCALE_SET="${sizes}" \
  HAYSTACK_SCALE_HOURS="${hours}" python3 - <<'PY'
import json
import os

sizes = os.environ["HAYSTACK_SCALE_SET"].split()
hours = int(os.environ["HAYSTACK_SCALE_HOURS"])
update = os.environ.get("BENCH_UPDATE", "0") == "1"

fresh = {}
for n in sizes:
    with open(f"build-bench/scale/row_{n}.json") as f:
        fresh[n] = json.load(f)

for n in sizes:
    row = fresh[n]
    print(f"  {int(n):>9,} lines: {row['flows_per_sec'] / 1e6:6.2f} M flows/s, "
          f"peak RSS {row['peak_rss_bytes'] / 2**20:8.1f} MiB, "
          f"evidence {row['evidence_entries']:,} entries "
          f"({row['evidence_bytes'] / 2**20:.1f} MiB), "
          f"median TTD {row['median_ttd_hours']} h")

path = "BENCH_scale.json"
baseline = {}
if os.path.exists(path):
    with open(path) as f:
        baseline = {str(r["lines"]): r for r in json.load(f)["rows"]}

failures = []
if baseline and not update:
    for n in sizes:
        base = baseline.get(n)
        if base is None or base.get("hours") != hours:
            print(f"  {int(n):>9,} lines: no comparable committed row, skipped")
            continue
        cur = fresh[n]
        dthr = (cur["flows_per_sec"] - base["flows_per_sec"]) \
            / base["flows_per_sec"]
        drss = (cur["peak_rss_bytes"] - base["peak_rss_bytes"]) \
            / base["peak_rss_bytes"]
        print(f"  vs committed /{n}: flows/s {dthr * 100:+.2f}%, "
              f"peak RSS {drss * 100:+.2f}%")
        if dthr < -0.05:
            failures.append(
                f"{n} lines: {cur['flows_per_sec'] / 1e6:.2f} M flows/s is "
                f"{-dthr * 100:.2f}% below the committed "
                f"{base['flows_per_sec'] / 1e6:.2f} M flows/s")
        if drss > 0.10:
            failures.append(
                f"{n} lines: peak RSS {cur['peak_rss_bytes'] / 2**20:.1f} MiB "
                f"is {drss * 100:.2f}% above the committed "
                f"{base['peak_rss_bytes'] / 2**20:.1f} MiB")

if update or not baseline:
    merged = dict(baseline)
    merged.update(fresh)
    out = {
        "schema": "haystack-scale-bench-v1",
        "metric": ("full wild-ISP study, one process per population size "
                   "at -O2; flows/sec over the detection loop, peak RSS "
                   "via getrusage"),
        "gate": ("scale_gate.sh fails on >5% flows/sec drop or >10% "
                 "peak-RSS growth vs these rows"),
        "rows": [merged[k] for k in sorted(merged, key=int)],
    }
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")

if failures:
    raise SystemExit("FAIL: " + "; ".join(failures))
print("scale study within budget of the committed baseline")
PY
