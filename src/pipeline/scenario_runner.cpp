#include "pipeline/scenario_runner.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "obs/export.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"
#include "telemetry/border_fleet.hpp"

namespace haystack::pipeline {

std::optional<StreamingReplayResult> replay_scenario_streaming(
    const simnet::Scenario& scenario, const StreamingReplayConfig& config,
    std::string* error) {
  simnet::Catalog catalog;
  if (!scenario.apply_overrides(catalog, error)) return std::nullopt;

  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog,
                                scenario.apply(simnet::PopulationConfig{})};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          scenario.apply(simnet::WildIspConfig{})};

  // WildIspSim already applies the scenario's packet sampling, so the
  // fleet exports at 1:1 — its job here is the wire: v9 encoding, options
  // announcements, and whatever impairment the scenario configures.
  // One Observability for the whole run: fleet wire events and pipeline
  // stage metrics land in the same registry/recorder, so the final scrape
  // tells the full story from exporter to evidence map.
  obs::Observability observability;

  telemetry::BorderFleetConfig fcfg;
  fcfg.seed = scenario.seed.value_or(2022);
  fcfg.routers = std::max(1u, config.routers);
  fcfg.sampling = 1;
  fcfg.impairment = scenario.impairment();
  fcfg.obs = &observability;
  telemetry::BorderRouterFleet fleet{fcfg};

  IngestConfig icfg;
  icfg.shards = scenario.pipeline_shards.value_or(config.shards);
  icfg.queue_capacity =
      scenario.pipeline_queue.value_or(config.queue_capacity);
  icfg.max_wave = scenario.pipeline_wave.value_or(config.max_wave);
  icfg.detector.threshold = config.threshold;
  icfg.anonymization_key = config.anonymization_key;
  icfg.obs = &observability;
  IngestPipeline pipe{rules.hitlist, rules, icfg};

  std::vector<flow::FlowRecord> records;
  for (util::HourBin h = config.start_hour;
       h < config.start_hour + config.hours; ++h) {
    records.clear();
    wild.hour_observations(
        h, [&](const simnet::WildObs& obs) { records.push_back(obs.flow); });
    for (auto& datagram : fleet.export_hour(records, h)) {
      pipe.push_datagram(std::move(datagram), h);
    }
  }
  StreamingReplayResult result;
  result.self_check = pipe.self_check();  // before shutdown seals the cache
  pipe.shutdown();
  result.stats = pipe.stats();
  if (config.capture_observability) {
    result.metrics_prometheus = obs::to_prometheus(observability.registry);
    result.flight_events = observability.recorder.dump();
  }
  result.datagrams = result.stats.datagrams;
  result.observations = result.stats.observations;

  std::map<core::ServiceId, std::size_t> per_service;
  std::unordered_set<core::SubscriberKey> any;
  const auto& det = pipe.detector();
  det.for_each_evidence([&](core::SubscriberKey subscriber,
                            core::ServiceId service, const core::Evidence&) {
    if (det.detected(subscriber, service)) {
      ++per_service[service];
      any.insert(subscriber);
    }
  });
  result.subscribers_detected = any.size();
  for (const auto& rule : rules.rules) {
    const auto it = per_service.find(rule.service);
    if (it != per_service.end() && it->second > 0) {
      result.per_service.emplace_back(rule.name, it->second);
    }
  }
  std::sort(result.per_service.begin(), result.per_service.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  return result;
}

std::optional<VantageReplayResult> replay_scenario_vantage(
    const simnet::Scenario& scenario, const VantageReplayConfig& config,
    std::string* error) {
  simnet::Catalog catalog;
  if (!scenario.apply_overrides(catalog, error)) return std::nullopt;

  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog,
                                scenario.apply(simnet::PopulationConfig{})};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          scenario.apply(simnet::WildIspConfig{})};

  obs::Observability observability;

  vantage::FleetConfig fcfg;
  fcfg.collectors = scenario.vantage_collectors.value_or(config.collectors);
  fcfg.detector.threshold = config.threshold;
  fcfg.delta_impairment = scenario.delta_impairment();
  fcfg.ack_loss = scenario.ack_loss.value_or(0.0);
  fcfg.seed = scenario.seed.value_or(1);
  fcfg.kill_collector = scenario.vantage_kill_collector;
  fcfg.kill_hour = scenario.vantage_kill_hour;
  fcfg.restart_hour = scenario.vantage_restart_hour;
  vantage::Fleet fleet{rules.hitlist, rules, fcfg, &observability};

  // The same direction/anonymization mapping the streaming pipeline
  // applies, so the merged evidence map is comparable bit-for-bit with a
  // single-process replay of the identical flows.
  const Normalizer normalize = default_normalizer(config.anonymization_key);

  VantageReplayResult result;
  std::vector<core::Observation> hour_obs;
  for (util::HourBin h = config.start_hour;
       h < config.start_hour + config.hours; ++h) {
    hour_obs.clear();
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      if (auto normalized = normalize(obs.flow, h)) {
        hour_obs.push_back(*normalized);
      }
    });
    result.observations += hour_obs.size();
    fleet.process_hour(h, hour_obs);
  }
  result.drained = fleet.finish();
  result.datagrams = fleet.datagrams_sent();
  result.delta_bytes = fleet.bytes_sent();
  result.retransmissions = fleet.total_retransmissions();

  const vantage::Aggregator& agg = fleet.aggregator();
  result.merged_through = agg.merged_through();
  result.counters = agg.counters();
  if (config.capture_observability) {
    result.metrics_prometheus = obs::to_prometheus(observability.registry);
    result.flight_events = observability.recorder.dump();
  }

  // Collect the evidence keys first, then query detection hours: both
  // accessors take the aggregator mutex, so calling detection_hour() from
  // inside the for_each_evidence callback would self-deadlock.
  std::vector<std::pair<core::SubscriberKey, core::ServiceId>> keys;
  agg.for_each_evidence([&](core::SubscriberKey subscriber,
                            core::ServiceId service, const core::Evidence&) {
    keys.emplace_back(subscriber, service);
  });
  std::map<core::ServiceId, std::size_t> per_service;
  std::unordered_set<core::SubscriberKey> any;
  for (const auto& [subscriber, service] : keys) {
    if (agg.detection_hour(subscriber, service)) {
      ++per_service[service];
      any.insert(subscriber);
    }
  }
  result.subscribers_detected = any.size();
  for (const auto& rule : rules.rules) {
    const auto it = per_service.find(rule.service);
    if (it != per_service.end() && it->second > 0) {
      result.per_service.emplace_back(rule.name, it->second);
    }
  }
  std::sort(result.per_service.begin(), result.per_service.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  return result;
}

}  // namespace haystack::pipeline
