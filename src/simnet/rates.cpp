#include "simnet/rates.hpp"

#include <algorithm>
#include <cassert>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

DomainRateModel::DomainRateModel(const Catalog& catalog, std::uint64_t seed,
                                 double sigma)
    : catalog_{catalog} {
  unit_offsets_.assign(catalog.units().size() + 1, 0);
  // catalog.domains() is grouped by unit in unit-id order; record offsets.
  const auto& domains = catalog.domains();
  rates_.reserve(domains.size());
  std::size_t row = 0;
  for (const DetectionUnit& unit : catalog.units()) {
    unit_offsets_[unit.id] = static_cast<std::uint32_t>(row);
    while (row < domains.size() && domains[row].unit == unit.id) {
      util::Pcg32 rng = util::derive_rng(
          seed ^ 0xd0337a7e,
          util::hash_combine(unit.id, domains[row].index), 0);
      double mult = rng.lognormal(0.0, sigma);
      // The unit's lead domain (its control-plane endpoint — AVS for Alexa,
      // samsungotn.net for Samsung) is reliably chatty: clamp its draw so a
      // single unlucky multiplier cannot silence a whole detection unit.
      if (domains[row].index == 0) mult = std::clamp(mult, 0.8, 4.0);
      rates_.push_back(unit.idle_pkts_per_domain_hour * mult);
      ++row;
    }
  }
  unit_offsets_[catalog.units().size()] = static_cast<std::uint32_t>(row);
  assert(row == domains.size());
}

double DomainRateModel::idle_rate(UnitId unit, unsigned domain_index) const {
  return rates_[unit_offsets_[unit] + domain_index];
}

}  // namespace haystack::simnet
