#include "flow/flow_batch.hpp"

#include <algorithm>
#include <utility>

namespace haystack::flow {

void FlowBatch::clear() {
  src.clear();
  dst.clear();
  src_port.clear();
  dst_port.clear();
  proto.clear();
  tcp_flags.clear();
  packets.clear();
  bytes.clear();
  start_ms.clear();
  end_ms.clear();
  sampling.clear();
}

void FlowBatch::reserve(std::size_t rows) {
  src.reserve(rows);
  dst.reserve(rows);
  src_port.reserve(rows);
  dst_port.reserve(rows);
  proto.reserve(rows);
  tcp_flags.reserve(rows);
  packets.reserve(rows);
  bytes.reserve(rows);
  start_ms.reserve(rows);
  end_ms.reserve(rows);
  sampling.reserve(rows);
}

std::size_t FlowBatch::append_defaults() {
  const std::size_t row = src.size();
  src.emplace_back();
  dst.emplace_back();
  src_port.push_back(0);
  dst_port.push_back(0);
  proto.push_back(6);
  tcp_flags.push_back(0);
  packets.push_back(0);
  bytes.push_back(0);
  start_ms.push_back(0);
  end_ms.push_back(0);
  sampling.push_back(1);
  return row;
}

void FlowBatch::push(const FlowRecord& rec) {
  src.push_back(rec.key.src);
  dst.push_back(rec.key.dst);
  src_port.push_back(rec.key.src_port);
  dst_port.push_back(rec.key.dst_port);
  proto.push_back(rec.key.proto);
  tcp_flags.push_back(rec.tcp_flags);
  packets.push_back(rec.packets);
  bytes.push_back(rec.bytes);
  start_ms.push_back(rec.start_ms);
  end_ms.push_back(rec.end_ms);
  sampling.push_back(rec.sampling);
}

FlowRecord FlowBatch::record(std::size_t i) const {
  FlowRecord rec;
  rec.key.src = src[i];
  rec.key.dst = dst[i];
  rec.key.src_port = src_port[i];
  rec.key.dst_port = dst_port[i];
  rec.key.proto = proto[i];
  rec.tcp_flags = tcp_flags[i];
  rec.packets = packets[i];
  rec.bytes = bytes[i];
  rec.start_ms = start_ms[i];
  rec.end_ms = end_ms[i];
  rec.sampling = sampling[i];
  return rec;
}

std::size_t FlowBatch::capacity_rows() const {
  // src/dst dominate per-row bytes, but any column may have been grown
  // independently by reserve(); take the max.
  std::size_t rows = std::max(src.capacity(), dst.capacity());
  rows = std::max(rows, packets.capacity());
  rows = std::max(rows, bytes.capacity());
  rows = std::max(rows, start_ms.capacity());
  rows = std::max(rows, end_ms.capacity());
  rows = std::max(rows, sampling.capacity());
  rows = std::max({rows, src_port.capacity(), dst_port.capacity(),
                   proto.capacity(), tcp_flags.capacity()});
  return rows;
}

void FlowBatch::shrink_to_fit() {
  // swap-with-empty releases capacity deterministically (shrink_to_fit
  // is only a request).
  FlowBatch empty;
  *this = std::move(empty);
}

void BatchArena::Releaser::operator()(FlowBatch* batch) const {
  if (batch == nullptr) return;
  if (arena_ == nullptr) {
    delete batch;
    return;
  }
  arena_->release(batch);
}

BatchArena::Lease BatchArena::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++acquired_;
  if (!free_.empty()) {
    ++reused_;
    FlowBatch* batch = free_.back().release();
    free_.pop_back();
    return Lease(batch, Releaser(this));
  }
  return Lease(new FlowBatch(), Releaser(this));
}

void BatchArena::release(FlowBatch* batch) {
  std::unique_ptr<FlowBatch> owned(batch);
  owned->clear();
  bool trimmed = false;
  if (owned->capacity_rows() > config_.trim_rows) {
    owned->shrink_to_fit();
    trimmed = true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (trimmed) ++trimmed_;
  if (free_.size() < config_.max_pool) {
    free_.push_back(std::move(owned));
  }
}

BatchArena::Stats BatchArena::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{acquired_, reused_, trimmed_, free_.size()};
}

}  // namespace haystack::flow
