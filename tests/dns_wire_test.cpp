// Tests for the DNS message codec and the resolver feed: encode/decode
// round trips, compression-pointer handling, malformed-input rejection,
// and the allowlist-scoped feed into PassiveDnsDb.
#include <gtest/gtest.h>

#include "dns/dns_wire.hpp"
#include "dns/resolver_feed.hpp"

namespace haystack::dns {
namespace {

TEST(DnsWireTest, EncodeDecodeRoundtrip) {
  std::vector<WireRecord> answers;
  WireRecord cname;
  cname.name = Fqdn{"api.ring.com"};
  cname.type = WireType::kCname;
  cname.ttl = 300;
  cname.target = Fqdn{"api-vm.ec2compute.cloudsim.net"};
  answers.push_back(cname);
  WireRecord a;
  a.name = Fqdn{"api-vm.ec2compute.cloudsim.net"};
  a.type = WireType::kA;
  a.ttl = 60;
  a.address = *net::IpAddress::parse("52.1.2.3");
  answers.push_back(a);
  WireRecord aaaa;
  aaaa.name = Fqdn{"api.ring.com"};
  aaaa.type = WireType::kAaaa;
  aaaa.ttl = 60;
  aaaa.address = *net::IpAddress::parse("2001:db8::7");
  answers.push_back(aaaa);

  const auto bytes =
      encode_response(0x1234, Fqdn{"api.ring.com"}, answers);
  const auto msg = decode_message(bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->id, 0x1234);
  EXPECT_TRUE(msg->is_response);
  ASSERT_TRUE(msg->question.has_value());
  EXPECT_EQ(msg->question->str(), "api.ring.com");
  ASSERT_EQ(msg->answers.size(), 3u);
  EXPECT_EQ(msg->answers[0].type, WireType::kCname);
  EXPECT_EQ(msg->answers[0].target.str(),
            "api-vm.ec2compute.cloudsim.net");
  EXPECT_EQ(msg->answers[1].address, *net::IpAddress::parse("52.1.2.3"));
  EXPECT_EQ(msg->answers[2].address, *net::IpAddress::parse("2001:db8::7"));
}

TEST(DnsWireTest, CompressionPointersDecode) {
  // Hand-build: question "a.example.com", answer name points back to it.
  std::vector<std::uint8_t> m = {
      0x00, 0x01,              // id
      0x80, 0x00,              // response flags
      0x00, 0x01,              // qdcount
      0x00, 0x01,              // ancount
      0x00, 0x00, 0x00, 0x00,  // ns/ar
      // question: a.example.com
      1, 'a', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
      0x00, 0x01, 0x00, 0x01,  // qtype A, class IN
      // answer: pointer to offset 12 (the question name)
      0xc0, 0x0c,
      0x00, 0x01, 0x00, 0x01,              // type A, class IN
      0x00, 0x00, 0x00, 0x3c,              // ttl 60
      0x00, 0x04, 192, 0, 2, 1,            // rdlength 4, 192.0.2.1
  };
  const auto msg = decode_message(m);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->answers.size(), 1u);
  EXPECT_EQ(msg->answers[0].name.str(), "a.example.com");
  EXPECT_EQ(msg->answers[0].address, *net::IpAddress::parse("192.0.2.1"));
}

TEST(DnsWireTest, PointerLoopRejected) {
  std::vector<std::uint8_t> m = {
      0x00, 0x01, 0x80, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
      // question name: pointer to itself
      0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode_message(m).has_value());
}

TEST(DnsWireTest, TruncationRejected) {
  const auto full = encode_response(1, Fqdn{"x.example.com"}, {});
  for (std::size_t cut = 1; cut < 12; ++cut) {
    std::vector<std::uint8_t> truncated{full.begin(),
                                        full.begin() + static_cast<long>(cut)};
    EXPECT_FALSE(decode_message(truncated).has_value()) << cut;
  }
}

TEST(DnsWireTest, SectionCountsExceedingMessageRejected) {
  // A 17-byte message claiming 65535 answers can never satisfy its own
  // header (each answer needs at least 11 bytes); the decoder must reject
  // it up front instead of grinding through the claimed count.
  std::vector<std::uint8_t> m = {
      0x00, 0x01, 0x80, 0x00,
      0x00, 0x00,              // qdcount 0
      0xff, 0xff,              // ancount 65535
      0x00, 0x00, 0x00, 0x00,
      1, 'x', 0, 0x00, 0x01,   // stray bytes, nowhere near 65535 answers
  };
  EXPECT_FALSE(decode_message(m).has_value());
  // Same for an impossible question count.
  m[4] = 0xff;
  m[5] = 0xff;
  m[6] = 0;
  m[7] = 0;
  EXPECT_FALSE(decode_message(m).has_value());
}

TEST(DnsWireTest, EveryPrefixOfFullResponseRejected) {
  // The header states the section counts, so every strict prefix of a
  // valid response must fail to decode — no partial-answer acceptance.
  WireRecord a;
  a.name = Fqdn{"camera.tplinkcloud.com"};
  a.type = WireType::kA;
  a.ttl = 60;
  a.address = *net::IpAddress::parse("198.51.100.7");
  WireRecord cname;
  cname.name = Fqdn{"dev.tplinkcloud.com"};
  cname.type = WireType::kCname;
  cname.target = Fqdn{"camera.tplinkcloud.com"};
  const auto full =
      encode_response(9, Fqdn{"dev.tplinkcloud.com"}, {cname, a});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix{
        full.begin(), full.begin() + static_cast<long>(cut)};
    EXPECT_FALSE(decode_message(prefix).has_value()) << "prefix " << cut;
  }
  EXPECT_TRUE(decode_message(full).has_value());
}

TEST(DnsWireTest, ForwardPointerRejected) {
  // Compression pointers must point strictly backward (RFC 1035 prior
  // occurrence); a forward pointer is malformed even if in bounds.
  std::vector<std::uint8_t> m = {
      0x00, 0x01, 0x80, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
      0xc0, 0x10,  // question name: pointer to offset 16 (ahead of here)
      0x00, 0x01, 1, 'a', 0, 0x00,
  };
  EXPECT_FALSE(decode_message(m).has_value());
}

TEST(DnsWireTest, LabelLengthOverrunRejected) {
  // Label length byte larger than the remaining message.
  std::vector<std::uint8_t> m = {
      0x00, 0x01, 0x80, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
      40, 'a', 'b', 'c',  // claims 40 octets, 3 present
  };
  EXPECT_FALSE(decode_message(m).has_value());
}

TEST(DnsWireTest, UnknownAnswerTypesSkipped) {
  // TXT record (type 16) in the answer section: skipped, not fatal.
  std::vector<std::uint8_t> m = {
      0x00, 0x01, 0x80, 0x00, 0x00, 0x00, 0x00, 0x01,
      0x00, 0x00, 0x00, 0x00,
      // answer: x.example.com TXT "hi"
      1, 'x', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
      0x00, 0x10, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3c, 0x00, 0x03, 2, 'h',
      'i',
  };
  const auto msg = decode_message(m);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->answers.empty());
}

TEST(ResolverFeedTest, FeedsPassiveDnsDb) {
  PassiveDnsDb db;
  ResolverFeed feed{db};
  WireRecord a;
  a.name = Fqdn{"api.ring.com"};
  a.type = WireType::kA;
  a.address = *net::IpAddress::parse("140.1.2.3");
  const auto msg = encode_response(1, a.name, {a});
  EXPECT_TRUE(feed.ingest(msg, 3));
  EXPECT_EQ(feed.stats().answers_kept, 1u);
  const auto res = db.resolve(Fqdn{"api.ring.com"}, {3, 3});
  ASSERT_EQ(res.ips.size(), 1u);
  EXPECT_EQ(res.ips[0], a.address);
  EXPECT_TRUE(db.resolve(Fqdn{"api.ring.com"}, {0, 2}).ips.empty());
}

TEST(ResolverFeedTest, AllowlistScopesRetention) {
  PassiveDnsDb db;
  ResolverFeed feed{db};
  feed.allow_sld(Fqdn{"ring.com"});

  WireRecord iot;
  iot.name = Fqdn{"api.ring.com"};
  iot.type = WireType::kA;
  iot.address = *net::IpAddress::parse("140.1.2.3");
  WireRecord browsing;
  browsing.name = Fqdn{"private.socialsite.com"};
  browsing.type = WireType::kA;
  browsing.address = *net::IpAddress::parse("10.9.9.9");

  feed.ingest(encode_response(1, iot.name, {iot}), 0);
  feed.ingest(encode_response(2, browsing.name, {browsing}), 0);
  EXPECT_EQ(feed.stats().answers_kept, 1u);
  EXPECT_EQ(feed.stats().answers_filtered, 1u);
  EXPECT_TRUE(db.has_records(Fqdn{"api.ring.com"}, {0, 0}));
  EXPECT_FALSE(db.has_records(Fqdn{"private.socialsite.com"}, {0, 0}));
}

TEST(ResolverFeedTest, MalformedCounted) {
  PassiveDnsDb db;
  ResolverFeed feed{db};
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(feed.ingest(junk, 0));
  EXPECT_EQ(feed.stats().malformed, 1u);
}

}  // namespace
}  // namespace haystack::dns
