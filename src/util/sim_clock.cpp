#include "util/sim_clock.hpp"

#include <array>
#include <cstdio>

namespace haystack::util {

namespace {

struct CalendarDay {
  const char* month;
  unsigned day;
};

CalendarDay calendar_of(DayBin day) {
  // Study starts Nov 15. November has 30 days.
  const unsigned nov = 15 + day;
  if (nov <= 30) return {"Nov", nov};
  return {"Dec", nov - 30};
}

}  // namespace

std::string day_label(DayBin day) {
  const CalendarDay c = calendar_of(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s-%02u", c.month, c.day);
  return buf;
}

std::string hour_label(HourBin hour) {
  const CalendarDay c = calendar_of(day_of(hour));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%s-%02u %02u:00", c.month, c.day,
                hour_of_day(hour));
  return buf;
}

double diurnal_weight(unsigned hour_of_day) noexcept {
  // Piecewise profile normalized to mean 1.0 over 24 hours.
  // Sum of the raw weights below is 24.0.
  static constexpr std::array<double, 24> kProfile = {
      0.55, 0.45, 0.38, 0.35, 0.35, 0.46,  // 00-05: overnight trough
      0.72, 0.90, 1.10, 1.05, 1.00, 1.00,  // 06-11: morning bump
      1.02, 1.00, 0.98, 1.00, 1.10, 1.35,  // 12-17: afternoon ramp
      1.75, 1.90, 1.85, 1.60, 1.25, 0.89,  // 18-23: evening peak
  };
  return kProfile[hour_of_day % 24];
}

}  // namespace haystack::util
