#include "pipeline/ingest.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "telemetry/anonymize.hpp"

namespace haystack::pipeline {

Normalizer default_normalizer(std::uint64_t anonymization_key) {
  return [anonymization_key](const flow::FlowRecord& rec, util::HourBin hour)
             -> std::optional<core::Observation> {
    return core::Observation{
        .subscriber = telemetry::anonymize(rec.key.src, anonymization_key),
        .server = rec.key.dst,
        .port = rec.key.dst_port,
        .packets = rec.packets,
        .hour = hour,
    };
  };
}

namespace {

// Export version word (first two bytes, network order): 5 = NetFlow v5,
// 9 = NetFlow v9, 10 = IPFIX.
[[nodiscard]] std::uint16_t sniff_version(
    const std::vector<std::uint8_t>& bytes) noexcept {
  if (bytes.size() < 2) return 0;
  return static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
}

}  // namespace

IngestPipeline::IngestPipeline(const core::Hitlist& hitlist,
                               const core::RuleSet& rules,
                               const IngestConfig& config,
                               Normalizer normalizer)
    : config_{config},
      fast_normalize_{!normalizer},
      normalizer_{normalizer ? std::move(normalizer)
                             : default_normalizer(config.anonymization_key)},
      owned_obs_{config.obs != nullptr
                     ? nullptr
                     : std::make_unique<obs::Observability>()},
      obs_{config.obs != nullptr ? config.obs : owned_obs_.get()},
      detector_{hitlist,
                rules,
                config.detector,
                std::max(1u, config.shards),
                config.queue_capacity,
                obs_,
                config.snapshots},
      nf9_{flow::nf9::CollectorConfig{.dedup_window = config.dedup_window,
                                      .recorder = &obs_->recorder}},
      ipfix_{flow::ipfix::CollectorConfig{.dedup_window = config.dedup_window,
                                          .recorder = &obs_->recorder}},
      cache_{config.metering},
      datagrams_{obs_->registry.counter("pipeline_datagrams_total")},
      malformed_{obs_->registry.counter("pipeline_malformed_datagrams_total")},
      unknown_version_{
          obs_->registry.counter("pipeline_unknown_version_total")},
      packets_metered_{
          obs_->registry.counter("pipeline_packets_metered_total")},
      metered_flows_{obs_->registry.counter("pipeline_metered_flows_total")},
      metered_packets_out_{
          obs_->registry.counter("pipeline_metered_packets_out_total")},
      flows_decoded_{obs_->registry.counter("pipeline_flows_decoded_total")},
      flows_in_{obs_->registry.counter("pipeline_flows_in_total")},
      observations_{obs_->registry.counter("pipeline_observations_total")},
      observations_direct_{
          obs_->registry.counter("pipeline_observations_direct_total")},
      dropped_direction_{
          obs_->registry.counter("pipeline_dropped_direction_total")},
      emergency_expiries_{
          obs_->registry.counter("metering_emergency_expiries_total")},
      self_check_failures_{
          obs_->registry.counter("pipeline_self_check_failures_total")},
      cache_depth_{obs_->registry.gauge("metering_cache_depth")},
      cache_high_water_{obs_->registry.gauge("metering_cache_high_water")},
      decode_ns_per_record_{
          obs_->registry.histogram("decode_batch_ns_per_record")},
      decode_recovered_{
          obs_->registry.gauge("decode_recovered_records")},
      decode_parked_{obs_->registry.gauge("decode_parked_flowsets")} {
  // Wiring time: installs the alert engine as the detector's publish
  // hook before any observation can flow.
  control_ = std::make_unique<serve::ControlPlane>(detector_, config_.alerts,
                                                   obs_);
  nf5_.set_recorder(&obs_->recorder);
  auto make_stage = [this](std::uint32_t tag) {
    const obs::Labels labels{{"stage", obs::stage_name(tag)}};
    StageInstruments inst;
    inst.wave_ns = obs_->registry.histogram("stage_wave_ns", labels);
    inst.wave_items = obs_->registry.histogram("stage_wave_items", labels);
    return inst;
  };
  meter_obs_ = make_stage(obs::kStageMeter);
  decode_obs_ = make_stage(obs::kStageDecode);
  normalize_obs_ = make_stage(obs::kStageNormalize);
  auto stage_config = [this](const StageInstruments& inst, std::uint32_t tag) {
    ShardPoolConfig stage{.shards = 1,
                         .queue_capacity = config_.queue_capacity,
                         .max_wave = config_.max_wave};
    stage.wave_ns = inst.wave_ns.get();
    stage.wave_items = inst.wave_items.get();
    stage.recorder = &obs_->recorder;
    stage.stage_tag = tag;
    stage.slow_wave_ns = config_.slow_wave_ns;
    return stage;
  };
  normalize_ = std::make_unique<ShardPool<DecodedBatch>>(
      stage_config(normalize_obs_, obs::kStageNormalize),
      [this](unsigned, std::vector<DecodedBatch>& wave) {
        normalize_wave(wave);
      });
  decode_ = std::make_unique<ShardPool<Datagram>>(
      stage_config(decode_obs_, obs::kStageDecode),
      [this](unsigned, std::vector<Datagram>& wave) { decode_wave(wave); });
  metering_ = std::make_unique<ShardPool<MeterItem>>(
      stage_config(meter_obs_, obs::kStageMeter),
      [this](unsigned, std::vector<MeterItem>& wave) { meter_wave(wave); });
}

IngestPipeline::~IngestPipeline() { shutdown(); }

bool IngestPipeline::push_datagram(std::vector<std::uint8_t> bytes,
                                   util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  obs_->recorder.set_hour(hour);
  if (!decode_->submit(0, Datagram{hour, std::move(bytes)})) return false;
  datagrams_->add(1);
  return true;
}

bool IngestPipeline::push_packet(const flow::PacketEvent& packet,
                                 util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  obs_->recorder.set_hour(hour);
  if (!metering_->submit(0, MeterItem{hour, packet})) return false;
  packets_metered_->add(1);
  return true;
}

bool IngestPipeline::push_flows(std::vector<flow::FlowRecord> flows,
                                util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  obs_->recorder.set_hour(hour);
  const std::uint64_t n = flows.size();
  auto rows = arena_.acquire();
  rows->reserve(n);
  for (const auto& rec : flows) rows->push(rec);
  if (!normalize_->submit(0, DecodedBatch{hour, std::move(rows)})) {
    return false;
  }
  flows_in_->add(n);
  return true;
}

bool IngestPipeline::push_observations(std::vector<core::Observation> chunk) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (!chunk.empty()) obs_->recorder.set_hour(chunk.back().hour);
  observations_->add(chunk.size());
  observations_direct_->add(chunk.size());
  detector_.enqueue_batch(chunk);
  return true;
}

void IngestPipeline::drain() {
  // Topological order: each stage's drain happens-before the next stage's
  // submitted-counter snapshot, so anything a stage forwarded downstream
  // is covered by the downstream barrier.
  if (metering_ && metering_->running()) metering_->drain();
  if (decode_ && decode_->running()) decode_->drain();
  if (normalize_ && normalize_->running()) normalize_->drain();
  detector_.drain();
}

void IngestPipeline::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  closed_.store(true, std::memory_order_release);
  // Stop in dependency order: each stage's consumers downstream are still
  // alive while it drains, so nothing deadlocks on a full queue.
  metering_->stop();
  // The metering worker is gone; flush the cache remnants on this thread
  // (reusing its scratch lease, which the stopped worker no longer owns).
  if (!meter_rows_) meter_rows_ = arena_.acquire();
  cache_.flush_all(*meter_rows_);
  cache_depth_->set(cache_.active_flows());
  emit_metered(std::move(meter_rows_),
               last_meter_hour_.load(std::memory_order_relaxed));
  decode_->stop();
  normalize_->stop();
  detector_.drain();  // detect stage stays alive for reads
  obs_->recorder.record(obs::EventKind::kPipelineShutdown, 0,
                        observations_->value(), datagrams_->value());
}

void IngestPipeline::meter_wave(std::vector<MeterItem>& wave) {
  for (const MeterItem& item : wave) {
    last_meter_hour_.store(item.hour, std::memory_order_relaxed);
    if (!meter_rows_) meter_rows_ = arena_.acquire();
    cache_.add(item.packet, *meter_rows_);
    const std::uint64_t panics = cache_.emergency_expiries();
    if (panics != last_emergency_expiries_) {
      emergency_expiries_->add(panics - last_emergency_expiries_);
      obs_->recorder.record(obs::EventKind::kCacheEmergencyExpiry,
                            obs::kStageMeter, meter_rows_->size(),
                            panics - last_emergency_expiries_);
      last_emergency_expiries_ = panics;
    }
    const std::size_t depth = cache_.active_flows();
    cache_depth_->set(depth);
    cache_high_water_->max_of(depth);
    if (!meter_rows_->empty()) {
      emit_metered(std::move(meter_rows_), item.hour);
    }
  }
}

void IngestPipeline::emit_metered(flow::BatchArena::Lease rows,
                                  util::HourBin hour) {
  if (!rows || rows->empty()) return;
  metered_flows_->add(rows->size());
  std::uint64_t packets = 0;
  for (const std::uint64_t p : rows->packets) packets += p;
  metered_packets_out_->add(packets);
  normalize_->submit(0, DecodedBatch{hour, std::move(rows)});
}

void IngestPipeline::decode_wave(std::vector<Datagram>& wave) {
  std::vector<flow::FlowRecord> v5_scratch;
  [[maybe_unused]] std::uint64_t wave_ns = 0;
  [[maybe_unused]] std::uint64_t wave_rows = 0;
  for (const Datagram& dgram : wave) {
    auto rows = arena_.acquire();
    bool ok = false;
    [[maybe_unused]] std::chrono::steady_clock::time_point t0;
    if constexpr (!obs::kStripped) t0 = std::chrono::steady_clock::now();
    switch (sniff_version(dgram.bytes)) {
      case 5:
        // v5 is a fixed self-describing layout with no template state;
        // decode through the record path and copy into the batch.
        v5_scratch.clear();
        ok = nf5_.ingest(dgram.bytes, v5_scratch);
        for (const auto& rec : v5_scratch) rows->push(rec);
        break;
      case 9:
        ok = nf9_.ingest_batch(dgram.bytes, *rows);
        break;
      case 10:
        ok = ipfix_.ingest_batch(dgram.bytes, *rows);
        break;
      default:
        unknown_version_->add(1);
        continue;
    }
    if constexpr (!obs::kStripped) {
      wave_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      wave_rows += rows->size();
    }
    if (!ok) malformed_->add(1);
    if (rows->empty()) continue;
    flows_decoded_->add(rows->size());
    normalize_->submit(0, DecodedBatch{dgram.hour, std::move(rows)});
  }
  if constexpr (!obs::kStripped) {
    if (wave_rows != 0) decode_ns_per_record_->record(wave_ns / wave_rows);
  }
  decode_recovered_->set(static_cast<std::int64_t>(
      nf9_.stats().recovered_records + ipfix_.stats().recovered_records));
  decode_parked_->set(static_cast<std::int64_t>(
      nf9_.stats().buffered_flowsets + ipfix_.stats().buffered_sets));
}

void IngestPipeline::normalize_wave(std::vector<DecodedBatch>& wave) {
  if (fast_normalize_) {
    // Stock-normalizer fast path: read SoA columns straight into interned
    // observations — no FlowRecord, no core::Observation, no second
    // hitlist hash downstream. Exactly equivalent to the generic path
    // below under default_normalizer (which never drops a flow).
    std::vector<core::InternedObs> chunk;
    // Pin the compiled rule version for this wave (ISSUE 8): a hot-reload
    // mid-wave must not swap the index under us, and a version pinned
    // here stays alive until the wave's observations are applied.
    const auto version = detector_.current_version();
    const core::SignatureIndex& sig_index = *version->index;
    const std::uint64_t key = config_.anonymization_key;
    for (const DecodedBatch& batch : wave) {
      const flow::FlowBatch& rows = *batch.rows;
      const util::DayBin day = util::day_of(batch.hour);
      chunk.clear();
      chunk.reserve(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        chunk.push_back(core::InternedObs{
            telemetry::anonymize(rows.src[i], key), rows.packets[i],
            sig_index.sig_of(rows.dst[i], rows.dst_port[i], day),
            batch.hour});
      }
      if (chunk.empty()) continue;
      observations_->add(chunk.size());
      detector_.enqueue_interned(chunk);
    }
    return;
  }
  std::vector<core::Observation> chunk;
  for (const DecodedBatch& batch : wave) {
    const flow::FlowBatch& rows = *batch.rows;
    chunk.clear();
    chunk.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (auto obs = normalizer_(rows.record(i), batch.hour)) {
        chunk.push_back(*obs);
      } else {
        dropped_direction_->add(1);
      }
    }
    if (chunk.empty()) continue;
    observations_->add(chunk.size());
    detector_.enqueue_batch(chunk);
  }
}

IngestPipeline::Stats IngestPipeline::stats() const {
  Stats out;
  out.metering = metering_->stats_total();
  out.decode = decode_->stats_total();
  out.normalize = normalize_->stats_total();
  out.detect_shards.reserve(detector_.shard_count());
  for (unsigned s = 0; s < detector_.shard_count(); ++s) {
    out.detect_shards.push_back(detector_.shard_queue_stats(s));
    out.detect += out.detect_shards.back();
  }
  out.datagrams = datagrams_->value();
  out.malformed_datagrams = malformed_->value();
  out.unknown_version = unknown_version_->value();
  out.packets_metered = packets_metered_->value();
  out.metered_flows = metered_flows_->value();
  out.metered_packets_out = metered_packets_out_->value();
  out.flows_decoded = flows_decoded_->value();
  out.flows_in = flows_in_->value();
  out.observations = observations_->value();
  out.observations_direct = observations_direct_->value();
  out.dropped_direction = dropped_direction_->value();
  out.emergency_expiries = emergency_expiries_->value();
  out.self_check_failures = self_check_failures_->value();
  out.metering_depth = static_cast<std::size_t>(cache_depth_->value());
  out.metering_high_water =
      static_cast<std::size_t>(cache_high_water_->value());
  out.decode_recovered_records =
      static_cast<std::uint64_t>(decode_recovered_->value());
  out.decode_parked_flowsets =
      static_cast<std::uint64_t>(decode_parked_->value());
  return out;
}

IngestPipeline::SelfCheck IngestPipeline::self_check() {
  drain();
  const Stats s = stats();
  SelfCheck out;
  auto fail = [&](std::string detail) {
    out.ok = false;
    if (!out.detail.empty()) out.detail += "; ";
    out.detail += detail;
  };
  // Flow conservation: every record that reached the normalize stage —
  // from the metering cache, the decoders, or push_flows — became exactly
  // one observation or one direction-drop. Direct observations bypass
  // normalize, so they are subtracted from the observation total.
  const std::uint64_t normalized = s.observations - s.observations_direct;
  const std::uint64_t entered =
      s.metered_flows + s.flows_decoded + s.flows_in;
  if (normalized + s.dropped_direction != entered) {
    fail("flow conservation: " + std::to_string(normalized) +
         " normalized + " + std::to_string(s.dropped_direction) +
         " dropped != " + std::to_string(entered) + " entered");
  }
  // Packet conservation through the metering cache: once the cache is
  // empty (after shutdown()'s flush), every metered packet must have left
  // inside an expired flow record.
  if (s.metering_depth == 0 &&
      s.packets_metered != s.metered_packets_out) {
    fail("packet conservation: " + std::to_string(s.packets_metered) +
         " metered != " + std::to_string(s.metered_packets_out) +
         " emitted with empty cache");
  }
  // Queue sanity: no stage may report consuming more than was produced.
  const struct {
    const char* name;
    const telemetry::StageStats& st;
  } stages[] = {{"metering", s.metering},
                {"decode", s.decode},
                {"normalize", s.normalize},
                {"detect", s.detect}};
  for (const auto& stage : stages) {
    if (stage.st.dequeued > stage.st.enqueued) {
      fail(std::string(stage.name) + " queue: dequeued " +
           std::to_string(stage.st.dequeued) + " > enqueued " +
           std::to_string(stage.st.enqueued));
    }
  }
  if (!out.ok) {
    self_check_failures_->add(1);
    obs_->recorder.record(obs::EventKind::kSelfCheckFailed, 0,
                          self_check_failures_->value(), 0);
  }
  return out;
}

}  // namespace haystack::pipeline
