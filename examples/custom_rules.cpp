// Bring-your-own-data: using the core methodology WITHOUT the simulator.
//
// Everything in core/ is input-agnostic. This example builds the inputs by
// hand — a passive-DNS database, a certificate-scan database, and the
// ServiceSpecs your own testbed analysis would produce — generates rules,
// and then detects devices from raw NetFlow v9 export packets, byte-for-
// byte as a collector would receive them from a router.
#include <iostream>

#include "core/detector.hpp"
#include "core/infra_classifier.hpp"
#include "core/rules.hpp"
#include "flow/netflow_v9.hpp"
#include "telemetry/anonymize.hpp"

int main() {
  using namespace haystack;

  // --- External data (normally: DNSDB/Censys exports) -------------------
  dns::PassiveDnsDb pdns;
  const auto cam_ip = *net::IpAddress::parse("198.51.100.10");
  const auto cam_ip2 = *net::IpAddress::parse("198.51.100.11");
  const auto cdn_ip = *net::IpAddress::parse("203.0.113.7");
  // acme-cam.example's two API endpoints sit on dedicated addresses...
  pdns.add_a(dns::Fqdn{"api.acme-cam.example"}, cam_ip, 0, 13);
  pdns.add_a(dns::Fqdn{"stream.acme-cam.example"}, cam_ip2, 0, 13);
  // ...while its firmware CDN is shared with an unrelated tenant.
  pdns.add_a(dns::Fqdn{"fw.acme-cam.example"}, cdn_ip, 0, 13);
  pdns.add_a(dns::Fqdn{"cdn.unrelated-shop.example"}, cdn_ip, 0, 13);

  tlscert::CertScanDb scans;  // no HTTPS fallback needed in this example

  // --- Manual-analysis output: one candidate service --------------------
  core::ServiceSpec spec;
  spec.id = 0;
  spec.name = "Acme Camera";
  spec.level = core::Level::kManufacturer;
  for (const char* name : {"api.acme-cam.example", "stream.acme-cam.example",
                           "fw.acme-cam.example"}) {
    core::ServiceDomain d;
    d.fqdn = dns::Fqdn{name};
    d.port = 443;
    spec.domains.push_back(d);
  }

  // --- Rule generation ---------------------------------------------------
  const core::InfraClassifier classifier{pdns, scans, 0, 13};
  const core::RuleSet rules =
      core::generate_rules({spec}, classifier, core::RuleGenConfig{});
  const auto* rule = rules.rule_by_name("Acme Camera");
  std::cout << "Rule for Acme Camera monitors " << rule->monitored_domains
            << " of 3 candidate domains (the CDN-hosted one was classified "
               "shared and dropped)\n";

  // --- Raw NetFlow v9 input ----------------------------------------------
  // A router exports two flows: a subscriber talking to the camera API,
  // and unrelated web traffic.
  flow::FlowRecord iot_flow;
  iot_flow.key.src = *net::IpAddress::parse("100.64.7.42");
  iot_flow.key.dst = cam_ip;
  iot_flow.key.src_port = 51000;
  iot_flow.key.dst_port = 443;
  iot_flow.key.proto = 6;
  iot_flow.packets = 3;
  iot_flow.bytes = 1800;
  iot_flow.sampling = 1000;
  flow::FlowRecord web_flow = iot_flow;
  web_flow.key.dst = *net::IpAddress::parse("93.184.216.34");

  flow::nf9::Exporter exporter{{.source_id = 11, .sampling = 1000}};
  const auto packets =
      exporter.export_flows(std::vector{iot_flow, web_flow}, 1574000000);
  std::cout << "Router exported " << packets.size()
            << " NetFlow v9 packet(s), " << packets[0].size() << " bytes\n";

  // --- Collector + detector ----------------------------------------------
  flow::nf9::Collector collector;
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  net::AsnRegistry asns;  // empty: direction falls back to port heuristic

  std::vector<flow::FlowRecord> decoded;
  for (const auto& packet : packets) collector.ingest(packet, decoded);
  for (const auto& rec : decoded) {
    telemetry::NormalizedFlow norm;
    if (!telemetry::normalize_direction(rec, asns, norm)) continue;
    const auto subscriber = telemetry::anonymize(norm.subscriber, /*key=*/7);
    detector.observe(subscriber, norm.server, norm.server_port, rec.packets,
                     /*hour=*/0);
  }

  const auto subscriber =
      telemetry::anonymize(*net::IpAddress::parse("100.64.7.42"), 7);
  std::cout << "Acme Camera detected behind the (anonymized) line: "
            << (detector.detected(subscriber, rule->service) ? "yes" : "no")
            << "\n";
  return 0;
}
