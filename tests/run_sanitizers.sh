#!/usr/bin/env bash
# Builds and runs the test suite under the sanitizers (ISSUE 1).
#
#   tests/run_sanitizers.sh            # ASan+UBSan full suite, then TSan
#   tests/run_sanitizers.sh asan       # ASan+UBSan only
#   tests/run_sanitizers.sh tsan       # TSan only
#
# ASan+UBSan runs the entire suite (unit + differential + fuzz smoke +
# fault matrix); the fuzz targets additionally get a longer 10k-iteration
# pass per codec, and the fault-injection matrix (ctest label `fault`,
# which includes the issue's seeded compound-impairment fleet run) gets an
# explicit second pass so the acceptance workload is visible in the log
# even when the full suite is trimmed. TSan runs the threaded workloads:
# the differential sweep (whose per-scenario shard sweep hammers
# ShardedDetector worker threads and the streaming IngestPipeline), the
# concurrency stress/soak suite (ctest label `stress`: backpressure,
# shutdown mid-stream, restart-after-drain), the observability suite
# (ctest label `obs`: concurrent scrape-while-ingesting under load,
# ISSUE 5), the multi-vantage suite (ctest label `vantage`: concurrent
# aggregator offer/query, ISSUE 7), the live control plane suite (ctest
# label `serve`: snapshot queries, hot-reloads, and alerts against full
# ingest, ISSUE 8), the paper-scale suite (ctest label `scale`: the
# block-cache LRU under cross-thread devices_of pins plus the
# million-entry evidence-map rehash storm, ISSUE 9), and the sharded
# detector and streaming-pipeline unit tests.
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc)"

run_asan() {
  echo "== ASan+UBSan =="
  cmake -B build-asan -S . -DHAYSTACK_SANITIZE=address,undefined
  cmake --build build-asan -j "${jobs}"
  (cd build-asan && ctest --output-on-failure -j "${jobs}")
  (cd build-asan && ctest --output-on-failure -j "${jobs}" -L fault)
  for codec in netflow_v9 ipfix dns_wire vantage_delta; do
    "./build-asan/tests/fuzz/fuzz_${codec}" --iterations 10000 --seed 1
  done
}

run_tsan() {
  echo "== TSan =="
  cmake -B build-tsan -S . -DHAYSTACK_SANITIZE=thread
  cmake --build build-tsan -j "${jobs}"
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L differential)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L stress)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L obs)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L vantage)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L serve)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" -L scale)
  (cd build-tsan && ctest --output-on-failure -j "${jobs}" \
    -R "Sharded|Queue|Ingest|Streaming")
}

case "${mode}" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *)    echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac
echo "sanitizer runs passed"
