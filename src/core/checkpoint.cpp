#include "core/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <string>
#include <tuple>

#include "core/intern.hpp"
#include "flow/wire.hpp"

namespace haystack::core {

bool resolve_service_label(std::string_view label, const RuleSet& rules,
                           ServiceId& out) {
  if (label.starts_with("svc/")) {
    const std::string_view digits = label.substr(4);
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(
        digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
        value > 0xffffU) {
      return false;
    }
    out = static_cast<ServiceId>(value);
    return true;
  }
  const DetectionRule* rule = rules.rule_by_name(label);
  if (rule == nullptr) return false;
  out = rule->service;
  return true;
}

namespace {

struct Entry {
  SubscriberKey subscriber;
  ServiceId service;
  Evidence evidence;
};

constexpr std::size_t kEntryBytesV1 = 8 + 2 + 8 + 8 + 2 + 8 + 4 + 4;
constexpr std::size_t kEntryBytesV2 = 8 + 4 + 8 + 8 + 2 + 8 + 4 + 4;
// v3 (compact): smallest possible row (handle, flags, mask0, u32 packets,
// u16 first_seen) and group header (subscriber, row count) — used only to
// bound count fields before reserve().
constexpr std::size_t kMinRowBytesV3 = 4 + 1 + 8 + 4 + 2;
constexpr std::size_t kGroupHeaderBytesV3 = 8 + 4;

// v3 row flags.
constexpr std::uint8_t kFlagMask1 = 0x01;      // mask word 1 present
constexpr std::uint8_t kFlagWidePackets = 0x02;  // packets need u64
constexpr std::uint8_t kFlagSatisfied = 0x04;  // satisfied_hour present
constexpr std::uint8_t kKnownFlags =
    kFlagMask1 | kFlagWidePackets | kFlagSatisfied;
// Largest hour the packed Evidence stores exactly (u16, 0xffff = never).
constexpr std::uint32_t kMaxStoredHour = 0xfffe;

template <typename DetectorT>
std::vector<Entry> collect_entries(const DetectorT& detector) {
  std::vector<Entry> entries;
  detector.for_each_evidence(
      [&entries](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        entries.push_back({sub, svc, ev});
      });
  // Hash-map iteration order is not deterministic across runs; sorting
  // makes identical state produce identical checkpoint bytes.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.subscriber, a.service) <
                     std::tie(b.subscriber, b.service);
            });
  return entries;
}

void encode_header(flow::ByteWriter& w, std::uint32_t version,
                   double threshold, const Detector::Stats& stats) {
  w.u32(kCheckpointMagic);
  w.u32(version);
  w.u64(std::bit_cast<std::uint64_t>(threshold));
  w.u64(stats.flows);
  w.u64(stats.matched);
}

void encode_evidence(flow::ByteWriter& w, const Evidence& ev) {
  w.u64(ev.mask(0));
  w.u64(ev.mask(1));
  w.u16(ev.distinct());
  w.u64(ev.packets());
  w.u32(ev.first_seen());
  w.u32(ev.satisfied_hour());
}

// Builds the per-entry intern handles shared by the v2 and v3 layouts:
// rule names first in rule order (matching the live SignatureIndex handle
// layout), then "svc/<id>" labels for ruleless rows.
void build_handle_table(const std::vector<Entry>& entries,
                        const RuleSet& rules, InternTable& table,
                        std::vector<std::uint32_t>& handles) {
  for (const auto& r : rules.rules) table.intern(r.name);
  handles.reserve(entries.size());
  for (const auto& e : entries) {
    const DetectionRule* rule = rules.rule_for(e.service);
    handles.push_back(rule != nullptr
                          ? table.intern(rule->name)
                          : table.intern("svc/" +
                                         std::to_string(e.service)));
  }
}

std::vector<std::uint8_t> encode_v1(const std::vector<Entry>& entries,
                                    double threshold,
                                    const Detector::Stats& stats) {
  flow::ByteWriter w;
  encode_header(w, kCheckpointVersion, threshold, stats);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u64(e.subscriber);
    w.u16(e.service);
    encode_evidence(w, e.evidence);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_v2(const std::vector<Entry>& entries,
                                    const RuleSet& rules, double threshold,
                                    const Detector::Stats& stats) {
  // The blob is self-contained: restore resolves handles through the
  // embedded table, never the live one.
  std::vector<std::uint32_t> handles;
  InternTable table;
  build_handle_table(entries, rules, table, handles);

  flow::ByteWriter w;
  encode_header(w, kCheckpointVersionInterned, threshold, stats);
  std::vector<std::uint8_t> table_bytes;
  table.serialize(table_bytes);
  w.bytes(table_bytes);
  w.u64(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    w.u64(entries[i].subscriber);
    w.u32(handles[i]);
    encode_evidence(w, entries[i].evidence);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_v3(const std::vector<Entry>& entries,
                                    const RuleSet& rules, double threshold,
                                    const Detector::Stats& stats) {
  std::vector<std::uint32_t> handles;
  InternTable table;
  build_handle_table(entries, rules, table, handles);

  flow::ByteWriter w;
  encode_header(w, kCheckpointVersionCompact, threshold, stats);
  std::vector<std::uint8_t> table_bytes;
  table.serialize(table_bytes);
  w.bytes(table_bytes);

  // Rows grouped by subscriber (entries are sorted, so groups are the
  // maximal equal-subscriber runs): the u64 subscriber is written once per
  // group instead of once per row, and each row spends a flag byte to drop
  // the fields that are almost always absent at scale (second mask word,
  // wide packet counters, unsatisfied rows).
  std::uint64_t groups = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].subscriber != entries[i - 1].subscriber) {
      ++groups;
    }
  }
  w.u64(groups);
  for (std::size_t i = 0; i < entries.size();) {
    const SubscriberKey subscriber = entries[i].subscriber;
    std::size_t end = i;
    while (end < entries.size() && entries[end].subscriber == subscriber) {
      ++end;
    }
    w.u64(subscriber);
    w.u32(static_cast<std::uint32_t>(end - i));
    for (; i < end; ++i) {
      const Evidence& ev = entries[i].evidence;
      std::uint8_t flags = 0;
      if (ev.mask(1) != 0) flags |= kFlagMask1;
      if (ev.packets() > 0xffffffffULL) flags |= kFlagWidePackets;
      if (ev.satisfied()) flags |= kFlagSatisfied;
      w.u32(handles[i]);
      w.u8(flags);
      w.u64(ev.mask(0));
      if (flags & kFlagMask1) w.u64(ev.mask(1));
      if (flags & kFlagWidePackets) {
        w.u64(ev.packets());
      } else {
        w.u32(static_cast<std::uint32_t>(ev.packets()));
      }
      w.u16(static_cast<std::uint16_t>(ev.first_seen()));
      if (flags & kFlagSatisfied) {
        w.u16(static_cast<std::uint16_t>(ev.satisfied_hour()));
      }
    }
  }
  return w.take();
}

struct Parsed {
  Detector::Stats stats;
  std::vector<Entry> entries;
};

// Strict v1/v2 evidence decode. The packed Evidence stores hours as u16
// and derives `distinct` from the mask, so the wire fields are validated
// rather than silently narrowed: a blob whose distinct does not match the
// mask popcount, or whose hours exceed what the study clock can produce,
// never came from this system and is rejected like any other malformed
// body (canonical re-encode stays byte-identical for everything accepted).
bool parse_evidence(flow::ByteReader& r, Evidence& ev) {
  ev.set_mask(0, r.u64());
  ev.set_mask(1, r.u64());
  const std::uint16_t distinct = r.u16();
  ev.set_packets(r.u64());
  const std::uint32_t first_seen = r.u32();
  const std::uint32_t satisfied = r.u32();
  if (distinct != ev.distinct()) return false;
  if (first_seen > kMaxStoredHour) return false;
  if (satisfied != Evidence::kNever && satisfied > kMaxStoredHour) {
    return false;
  }
  ev.set_first_seen(first_seen);
  ev.set_satisfied_hour(satisfied);
  return true;
}

bool parse_impl(std::span<const std::uint8_t> blob, double threshold,
                const RuleSet& rules, Parsed& out, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  flow::ByteReader r{blob};
  if (r.u32() != kCheckpointMagic) return fail("bad checkpoint magic");
  const std::uint32_t version = r.u32();
  if (!r.ok()) return fail("truncated checkpoint header");
  if (version != kCheckpointVersion &&
      version != kCheckpointVersionInterned &&
      version != kCheckpointVersionCompact) {
    return fail("unsupported checkpoint version");
  }
  const std::uint64_t threshold_bits = r.u64();
  if (threshold_bits != std::bit_cast<std::uint64_t>(threshold)) {
    return fail("checkpoint written under a different threshold");
  }
  out.stats.flows = r.u64();
  out.stats.matched = r.u64();
  if (!r.ok()) return fail("truncated checkpoint header");

  InternTable table;
  if (version == kCheckpointVersionInterned ||
      version == kCheckpointVersionCompact) {
    std::size_t consumed = 0;
    if (!table.restore(r.rest(), consumed)) {
      return fail("malformed checkpoint intern table");
    }
    r.skip(consumed);
  }

  const auto resolve = [&](std::uint32_t handle, ServiceId& svc,
                           const char*& why) {
    if (handle >= table.size()) {
      why = "checkpoint references an unknown intern handle";
      return false;
    }
    if (!resolve_service_label(table.name(handle), rules, svc)) {
      why = "checkpoint references an unknown rule name";
      return false;
    }
    return true;
  };

  if (version == kCheckpointVersionCompact) {
    const std::uint64_t groups = r.u64();
    if (!r.ok()) return fail("truncated checkpoint header");
    if (groups > r.remaining() / kGroupHeaderBytesV3) {
      return fail("truncated checkpoint body");
    }
    for (std::uint64_t g = 0; g < groups; ++g) {
      const SubscriberKey subscriber = r.u64();
      const std::uint32_t rows = r.u32();
      if (!r.ok()) return fail("truncated checkpoint body");
      if (rows == 0) return fail("empty checkpoint subscriber group");
      if (g > 0 && subscriber <= out.entries.back().subscriber) {
        return fail("checkpoint groups out of order");
      }
      if (rows > r.remaining() / kMinRowBytesV3) {
        return fail("truncated checkpoint body");
      }
      for (std::uint32_t i = 0; i < rows; ++i) {
        Entry e{};
        e.subscriber = subscriber;
        const std::uint32_t handle = r.u32();
        const std::uint8_t flags = r.u8();
        if (!r.ok()) return fail("truncated checkpoint body");
        if ((flags & ~kKnownFlags) != 0) {
          return fail("unknown checkpoint row flags");
        }
        const char* why = nullptr;
        if (!resolve(handle, e.service, why)) return fail(why);
        e.evidence.set_mask(0, r.u64());
        if (flags & kFlagMask1) e.evidence.set_mask(1, r.u64());
        const std::uint64_t packets =
            (flags & kFlagWidePackets) ? r.u64() : r.u32();
        // Canonical width: small counters must use the narrow encoding.
        if ((flags & kFlagWidePackets) && packets <= 0xffffffffULL) {
          return fail("non-canonical checkpoint packet width");
        }
        if ((flags & kFlagMask1) && e.evidence.mask(1) == 0) {
          return fail("non-canonical checkpoint mask width");
        }
        e.evidence.set_packets(packets);
        const std::uint16_t first_seen = r.u16();
        if (first_seen > kMaxStoredHour) {
          return fail("checkpoint hour out of range");
        }
        e.evidence.set_first_seen(first_seen);
        if (flags & kFlagSatisfied) {
          const std::uint16_t satisfied = r.u16();
          if (satisfied > kMaxStoredHour) {
            return fail("checkpoint hour out of range");
          }
          e.evidence.set_satisfied_hour(satisfied);
        }
        out.entries.push_back(e);
      }
    }
    if (!r.ok() || r.remaining() != 0) {
      return fail("malformed checkpoint body");
    }
    return true;
  }

  const std::uint64_t count = r.u64();
  if (!r.ok()) return fail("truncated checkpoint header");
  const std::size_t entry_bytes =
      version == kCheckpointVersion ? kEntryBytesV1 : kEntryBytesV2;
  // Reject counts the blob cannot hold before reserve() turns them into
  // an allocation.
  if (count > r.remaining() / entry_bytes) {
    return fail("truncated checkpoint body");
  }
  if (count * entry_bytes != r.remaining()) {
    return fail("trailing bytes after checkpoint body");
  }
  out.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e{};
    e.subscriber = r.u64();
    if (version == kCheckpointVersion) {
      e.service = r.u16();
    } else {
      const std::uint32_t handle = r.u32();
      const char* why = nullptr;
      if (!resolve(handle, e.service, why)) return fail(why);
    }
    if (!parse_evidence(r, e.evidence)) {
      return fail("inconsistent checkpoint evidence row");
    }
    out.entries.push_back(e);
  }
  if (!r.ok() || r.remaining() != 0) return fail("malformed checkpoint body");
  return true;
}

template <typename DetectorT>
std::vector<std::uint8_t> save_with_event(const DetectorT& detector,
                                          obs::FlightRecorder* recorder,
                                          std::uint32_t version) {
  const auto entries = collect_entries(detector);
  auto blob =
      version == kCheckpointVersion
          ? encode_v1(entries, detector.config().threshold, detector.stats())
      : version == kCheckpointVersionInterned
          ? encode_v2(entries, detector.rules(),
                      detector.config().threshold, detector.stats())
          : encode_v3(entries, detector.rules(),
                      detector.config().threshold, detector.stats());
  if (recorder != nullptr) {
    recorder->record(obs::EventKind::kCheckpointSave, 0, entries.size(),
                     blob.size());
  }
  return blob;
}

template <typename DetectorT>
bool restore_with_event(std::span<const std::uint8_t> blob,
                        DetectorT& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  Parsed parsed;
  if (!parse_impl(blob, detector.config().threshold, detector.rules(),
                  parsed, error)) {
    if (recorder != nullptr) {
      recorder->record(obs::EventKind::kCheckpointRejected, 0, blob.size());
    }
    return false;
  }
  detector.clear();
  detector.restore_stats(parsed.stats);
  for (const auto& e : parsed.entries) {
    detector.restore_evidence(e.subscriber, e.service, e.evidence);
  }
  if (recorder != nullptr) {
    recorder->record(obs::EventKind::kCheckpointRestore, 0,
                     parsed.entries.size(), blob.size());
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const Detector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersion);
}

std::vector<std::uint8_t> save_checkpoint(const ShardedDetector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersion);
}

std::vector<std::uint8_t> save_checkpoint_interned(
    const Detector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersionInterned);
}

std::vector<std::uint8_t> save_checkpoint_interned(
    const ShardedDetector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersionInterned);
}

std::vector<std::uint8_t> save_checkpoint_compact(
    const Detector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersionCompact);
}

std::vector<std::uint8_t> save_checkpoint_compact(
    const ShardedDetector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, kCheckpointVersionCompact);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        Detector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        ShardedDetector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

}  // namespace haystack::core
