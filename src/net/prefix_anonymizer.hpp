// Prefix-preserving address anonymization (Crypto-PAn-style).
//
// The paper's ethics sections anonymize user addresses before analysis.
// A plain keyed hash (telemetry::anonymize) destroys all structure; some
// analyses — the /24 aggregation of Fig. 13, per-prefix rollups — need an
// anonymizer that *preserves prefix relationships*: two addresses sharing
// a k-bit prefix map to outputs sharing exactly a k-bit prefix, and
// nothing more.
//
// Construction (the classic one): walk the address MSB→LSB; at bit i, XOR
// the real bit with a pseudorandom function of the key and the i-bit
// prefix already consumed. Same key + same prefix → same flip decisions,
// which is precisely the prefix-preservation property. The PRF here is the
// repository's keyed SplitMix/FNV mix — deterministic, seedable, and fast;
// swap in a keyed AES for cryptographic strength without changing the
// structure.
#pragma once

#include <cstdint>

#include "net/ip_address.hpp"

namespace haystack::net {

/// Deterministic prefix-preserving anonymizer.
class PrefixPreservingAnonymizer {
 public:
  explicit PrefixPreservingAnonymizer(std::uint64_t key) noexcept
      : key_{key} {}

  /// Anonymizes an address within its own family.
  [[nodiscard]] IpAddress anonymize(const IpAddress& addr) const noexcept;

  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_;
};

/// Length of the longest common prefix of two same-family addresses, in
/// bits. Returns 0 for cross-family pairs.
[[nodiscard]] unsigned common_prefix_length(const IpAddress& a,
                                            const IpAddress& b) noexcept;

}  // namespace haystack::net
