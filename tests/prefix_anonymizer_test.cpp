// Property tests for prefix-preserving anonymization: the defining
// invariant is that the longest common prefix of any two addresses is
// preserved EXACTLY (not just at least) by anonymization.
#include <gtest/gtest.h>

#include <set>

#include "net/prefix_anonymizer.hpp"
#include "util/rng.hpp"

namespace haystack::net {
namespace {

class AnonymizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnonymizerProperty, PreservesCommonPrefixExactlyV4) {
  const PrefixPreservingAnonymizer anon{GetParam()};
  util::Pcg32 rng{GetParam(), 3};
  for (int i = 0; i < 500; ++i) {
    const auto a = IpAddress::v4(rng());
    // Derive b sharing a random-length prefix with a.
    const unsigned shared = rng.bounded(33);
    std::uint32_t b_val = a.v4_value();
    if (shared < 32) {
      // Flip the bit right after the shared prefix, randomize the rest.
      b_val ^= 1U << (31 - shared);
      const std::uint32_t tail_mask =
          shared + 1 >= 32 ? 0 : ((1U << (31 - shared)) - 1);
      b_val = (b_val & ~tail_mask) | (rng() & tail_mask);
    }
    const auto b = IpAddress::v4(b_val);
    ASSERT_EQ(common_prefix_length(a, b), std::min(shared, 32u));

    const auto anon_a = anon.anonymize(a);
    const auto anon_b = anon.anonymize(b);
    EXPECT_EQ(common_prefix_length(anon_a, anon_b),
              common_prefix_length(a, b))
        << a.to_string() << " / " << b.to_string();
  }
}

TEST_P(AnonymizerProperty, PreservesCommonPrefixExactlyV6) {
  const PrefixPreservingAnonymizer anon{GetParam()};
  util::Pcg32 rng{GetParam(), 9};
  for (int i = 0; i < 200; ++i) {
    const auto a = IpAddress::v6(
        (std::uint64_t{rng()} << 32) | rng(),
        (std::uint64_t{rng()} << 32) | rng());
    const unsigned shared = rng.bounded(129);
    // Build b: copy a, flip bit `shared` (if any), randomize the tail.
    std::uint64_t hi = a.hi();
    std::uint64_t lo = a.lo();
    for (unsigned bit = shared; bit < 128; ++bit) {
      const bool value = bit == shared ? !a.bit(bit) : rng.chance(0.5);
      if (bit < 64) {
        const std::uint64_t mask = std::uint64_t{1} << (63 - bit);
        hi = value ? (hi | mask) : (hi & ~mask);
      } else {
        const std::uint64_t mask = std::uint64_t{1} << (127 - bit);
        lo = value ? (lo | mask) : (lo & ~mask);
      }
    }
    const auto b = IpAddress::v6(hi, lo);
    const auto anon_a = anon.anonymize(a);
    const auto anon_b = anon.anonymize(b);
    EXPECT_EQ(common_prefix_length(anon_a, anon_b),
              common_prefix_length(a, b));
  }
}

TEST_P(AnonymizerProperty, DeterministicAndInjective) {
  const PrefixPreservingAnonymizer anon{GetParam()};
  util::Pcg32 rng{GetParam(), 11};
  std::set<IpAddress> outputs;
  std::set<IpAddress> inputs;
  for (int i = 0; i < 2000; ++i) {
    const auto addr = IpAddress::v4(rng());
    if (!inputs.insert(addr).second) continue;
    const auto once = anon.anonymize(addr);
    EXPECT_EQ(once, anon.anonymize(addr));
    // Prefix preservation forces injectivity (distinct inputs differ at
    // some bit i; outputs then differ at bit i too).
    EXPECT_TRUE(outputs.insert(once).second);
  }
}

TEST_P(AnonymizerProperty, DifferentKeysDiverge) {
  const PrefixPreservingAnonymizer a{GetParam()};
  const PrefixPreservingAnonymizer b{GetParam() + 1};
  util::Pcg32 rng{GetParam(), 13};
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    const auto addr = IpAddress::v4(rng());
    if (a.anonymize(addr) == b.anonymize(addr)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

INSTANTIATE_TEST_SUITE_P(Keys, AnonymizerProperty,
                         ::testing::Values(1u, 42u, 0xdeadbeefu,
                                           0xffffffffffffffffull));

TEST(AnonymizerTest, ActuallyChangesAddresses) {
  const PrefixPreservingAnonymizer anon{7};
  int changed = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto addr = IpAddress::v4(0x64400000 + i * 977);
    if (anon.anonymize(addr) != addr) ++changed;
  }
  EXPECT_GT(changed, 95);
}

TEST(AnonymizerTest, CommonPrefixLengthBasics) {
  EXPECT_EQ(common_prefix_length(IpAddress::v4(0), IpAddress::v4(0)), 32u);
  EXPECT_EQ(common_prefix_length(IpAddress::v4(0),
                                 IpAddress::v4(0x80000000U)),
            0u);
  EXPECT_EQ(common_prefix_length(IpAddress::v4(0), IpAddress::v6(0, 0)),
            0u);
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("10.0.0.1"),
                                 *IpAddress::parse("10.0.0.2")),
            30u);
}

}  // namespace
}  // namespace haystack::net
