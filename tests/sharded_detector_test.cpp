// Tests for the sharded detector: equivalence with the single-shard
// detector on identical input, shard routing stability, and batch
// processing under concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/sharded_detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace haystack::core {
namespace {

class ShardedDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    rules_ = new RuleSet(simnet::build_ruleset(*backend_));

    // One wild day of observations as a reusable batch.
    simnet::Population population{*catalog_, {.lines = 20'000}};
    simnet::DomainRateModel rates{*catalog_, 7};
    simnet::WildIspSim wild{*backend_, population, rates,
                            simnet::WildIspConfig{}};
    batch_ = new std::vector<Observation>();
    for (util::HourBin h = 0; h < 24; ++h) {
      wild.hour_observations(h, [&](const simnet::WildObs& o) {
        batch_->push_back({o.line, o.flow.key.dst, o.flow.key.dst_port,
                           o.flow.packets, h});
      });
    }
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete rules_;
    delete backend_;
    delete catalog_;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static RuleSet* rules_;
  static std::vector<Observation>* batch_;
};

simnet::Catalog* ShardedDetectorTest::catalog_ = nullptr;
simnet::Backend* ShardedDetectorTest::backend_ = nullptr;
RuleSet* ShardedDetectorTest::rules_ = nullptr;
std::vector<Observation>* ShardedDetectorTest::batch_ = nullptr;

TEST_F(ShardedDetectorTest, ParallelMatchesSequential) {
  ShardedDetector one{rules_->hitlist, *rules_, {.threshold = 0.4}, 1};
  ShardedDetector eight{rules_->hitlist, *rules_, {.threshold = 0.4}, 8};
  one.process_batch(*batch_);
  eight.process_batch(*batch_);

  EXPECT_EQ(one.stats().flows, eight.stats().flows);
  EXPECT_EQ(one.stats().matched, eight.stats().matched);

  // Identical detection verdicts and hours for every subscriber/service.
  std::size_t compared = 0;
  one.for_each_evidence([&](SubscriberKey s, ServiceId sv,
                            const Evidence& ev) {
    ++compared;
    EXPECT_EQ(one.detected(s, sv), eight.detected(s, sv));
    EXPECT_EQ(one.detection_hour(s, sv), eight.detection_hour(s, sv));
    (void)ev;
  });
  EXPECT_GT(compared, 1000u);

  std::size_t count_one = 0;
  std::size_t count_eight = 0;
  one.for_each_evidence(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++count_one; });
  eight.for_each_evidence(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++count_eight; });
  EXPECT_EQ(count_one, count_eight);
}

// Full per-subscriber evidence state as a sortable value, so two detectors
// can be compared bit for bit rather than through sampled queries.
using EvidenceRow =
    std::tuple<SubscriberKey, ServiceId, std::uint64_t, std::uint64_t,
               std::uint16_t, std::uint64_t, util::HourBin, util::HourBin>;

std::vector<EvidenceRow> snapshot(const ShardedDetector& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence(
      [&](SubscriberKey s, ServiceId sv, const Evidence& ev) {
        rows.emplace_back(s, sv, ev.mask(0), ev.mask(1), ev.distinct(),
                          ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_F(ShardedDetectorTest, ObserveMatchesProcessBatch) {
  // Streaming observations one at a time and processing them as one batch
  // must land in the identical evidence state.
  ShardedDetector streamed{rules_->hitlist, *rules_, {.threshold = 0.4}, 4};
  ShardedDetector batched{rules_->hitlist, *rules_, {.threshold = 0.4}, 4};
  for (const auto& obs : *batch_) streamed.observe(obs);
  batched.process_batch(*batch_);

  EXPECT_EQ(streamed.stats().flows, batched.stats().flows);
  EXPECT_EQ(streamed.stats().matched, batched.stats().matched);
  const auto a = snapshot(streamed);
  const auto b = snapshot(batched);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST_F(ShardedDetectorTest, DeterministicAcrossShardCounts) {
  // The shard count is a throughput knob, never an accuracy knob: every
  // shard count must produce the same evidence bits, and repeated runs at
  // the same count must be byte-identical (thread scheduling invisible).
  ShardedDetector baseline{rules_->hitlist, *rules_, {.threshold = 0.4}, 1};
  baseline.process_batch(*batch_);
  const auto expected = snapshot(baseline);
  ASSERT_FALSE(expected.empty());

  for (const unsigned shards : {2u, 4u, 8u, 16u}) {
    ShardedDetector det{rules_->hitlist, *rules_, {.threshold = 0.4},
                        shards};
    det.process_batch(*batch_);
    EXPECT_EQ(snapshot(det), expected) << "shards=" << shards;
  }
  ShardedDetector again{rules_->hitlist, *rules_, {.threshold = 0.4}, 8};
  again.process_batch(*batch_);
  EXPECT_EQ(snapshot(again), expected);
}

TEST_F(ShardedDetectorTest, SingleObservePathWorks) {
  ShardedDetector det{rules_->hitlist, *rules_, {.threshold = 0.4}, 4};
  for (const auto& obs : *batch_) det.observe(obs);
  EXPECT_EQ(det.stats().flows, batch_->size());
}

TEST_F(ShardedDetectorTest, ClearResetsAllShards) {
  ShardedDetector det{rules_->hitlist, *rules_, {.threshold = 0.4}, 4};
  det.process_batch(*batch_);
  det.clear();
  std::size_t remaining = 0;
  det.for_each_evidence(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++remaining; });
  EXPECT_EQ(remaining, 0u);
}

TEST_F(ShardedDetectorTest, ShardCountClampedToAtLeastOne) {
  ShardedDetector det{rules_->hitlist, *rules_, {}, 0};
  EXPECT_EQ(det.shard_count(), 1u);
}

}  // namespace
}  // namespace haystack::core
