#include "simnet/wild_isp.hpp"

#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

namespace {

/// Draws a sampled packet count with mean `lambda`, using a one-uniform
/// Bernoulli fast path for tiny rates (the overwhelmingly common case at
/// 1-in-1000 sampling).
std::uint64_t sampled_count(util::Pcg32& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 0.05) {
    // P(N>=1) = 1-e^-l ~= l - l^2/2; P(N>=2 | N>=1) < l/2, negligible.
    return rng.chance(lambda * (1.0 - 0.5 * lambda)) ? 1 : 0;
  }
  return rng.poisson(lambda);
}

}  // namespace

WildIspSim::WildIspSim(const Backend& backend, const Population& population,
                       const DomainRateModel& rates,
                       const WildIspConfig& config)
    : backend_{backend},
      population_{population},
      rates_{rates},
      config_{config} {
  const auto& units = backend.catalog().units();
  chains_.resize(units.size());
  for (const DetectionUnit& u : units) {
    UnitId cur = u.id;
    for (;;) {
      chains_[u.id].push_back(cur);
      const auto& parent = units[cur].parent;
      if (!parent) break;
      cur = *parent;
    }
  }
}

bool WildIspSim::device_active(LineId line, std::uint32_t device_index,
                               util::HourBin hour) const {
  const auto devices = population_.devices_of(line);
  if (device_index >= devices.size()) return false;
  const DetectionUnit& unit =
      backend_.catalog().units()[devices[device_index].unit];
  const double diurnal = util::diurnal_weight(util::hour_of_day(hour));
  // Entertainment-class devices (high diurnal strength) are simply used
  // more hours per day than sensors and plugs; scale the base probability
  // accordingly before applying the hour-of-day shape.
  const double p =
      config_.base_active_prob * (1.0 + 2.0 * unit.diurnal_strength) *
      (1.0 + unit.diurnal_strength * (diurnal - 1.0));
  util::Pcg32 rng = util::derive_rng(
      config_.seed ^ 0xac71f17e,
      util::hash_combine(line, device_index), hour);
  return rng.chance(p);
}

bool WildIspSim::device_heavy(LineId line, std::uint32_t device_index,
                              util::HourBin hour) const {
  const auto devices = population_.devices_of(line);
  if (device_index >= devices.size()) return false;
  const DetectionUnit& unit =
      backend_.catalog().units()[devices[device_index].unit];
  const double diurnal = util::diurnal_weight(util::hour_of_day(hour));
  const double p =
      config_.heavy_session_prob * (1.0 + 2.0 * unit.diurnal_strength) *
      (1.0 + unit.diurnal_strength * (diurnal - 1.0));
  util::Pcg32 rng = util::derive_rng(
      config_.seed ^ 0x6ea57e55,
      util::hash_combine(line, device_index), hour);
  return rng.chance(p);
}

void WildIspSim::hour_observations(util::HourBin hour,
                                   const Sink& sink) const {
  const Catalog& catalog = backend_.catalog();
  const util::DayBin day = util::day_of(hour);
  const double inv_n = 1.0 / static_cast<double>(config_.sampling);
  const std::uint64_t hour_ms = static_cast<std::uint64_t>(hour) * 3'600'000;

  WildObs obs;
  population_.for_each_active_line([&](const LineId line,
                                       const std::span<const OwnedDevice>
                                           devices) {
    const net::IpAddress subscriber = population_.address_of(line, day);
    const bool v6_capable = population_.dual_stack(line);
    const net::IpAddress subscriber6 =
        v6_capable ? population_.address6_of(line) : net::IpAddress{};

    for (std::uint32_t di = 0; di < devices.size(); ++di) {
      const OwnedDevice& dev = devices[di];
      const bool heavy = device_heavy(line, di, hour);
      const bool active = heavy || device_active(line, di, hour);

      util::Pcg32 rng = util::derive_rng(
          config_.seed ^ 0x3f10b5,
          util::hash_combine(line, di), hour);

      for (const UnitId uid : chains_[dev.unit]) {
        const DetectionUnit& unit = catalog.units()[uid];
        double effective_mult = 1.0;
        if (heavy) {
          effective_mult =
              unit.active_multiplier * config_.heavy_session_factor;
        } else if (active) {
          effective_mult = unit.active_multiplier;
        }
        for (const UnitDomain* dom : catalog.domains_of(uid)) {
          // Duty cycle: not every domain is contacted every hour.
          if (unit.idle_domain_duty < 1.0 && !active &&
              !rng.chance(unit.idle_domain_duty)) {
            continue;
          }
          const double lambda =
              rates_.idle_rate(uid, dom->index) * effective_mult * inv_n;
          const std::uint64_t sampled = sampled_count(rng, lambda);
          if (sampled == 0) continue;

          // Happy eyeballs: dual-stack lines prefer v6 when the backend
          // publishes AAAA records.
          const auto& ips6 = backend_.ips6_of(uid, dom->index);
          const bool use_v6 =
              v6_capable && !ips6.empty() && rng.chance(0.6);
          const auto& ips =
              use_v6 ? ips6 : backend_.ips_of(uid, dom->index, day);
          obs.line = line;
          obs.subscriber = subscriber;
          obs.unit = uid;
          obs.domain_index = dom->index;
          flow::FlowRecord& rec = obs.flow;
          rec.key.src = use_v6 ? subscriber6 : subscriber;
          rec.key.dst =
              ips[rng.bounded(static_cast<std::uint32_t>(ips.size()))];
          rec.key.src_port =
              static_cast<std::uint16_t>(32768 + rng.bounded(28000));
          rec.key.dst_port = dom->port;
          rec.key.proto = dom->port == 123 ? 17 : 6;
          rec.tcp_flags = flow::tcpflags::kAck | flow::tcpflags::kPsh;
          rec.packets = sampled;
          rec.bytes = sampled * (200 + rng.bounded(900));
          rec.start_ms = hour_ms + rng.bounded(3'500'000);
          rec.end_ms = rec.start_ms + rng.bounded(60'000);
          rec.sampling = config_.sampling;
          sink(obs);
        }
      }
    }
  });
}

}  // namespace haystack::simnet
