// Tests for rule-set serialization: full round trip against the generated
// rule set, plus syntax-error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "core/rule_export.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"

namespace haystack::core {
namespace {

TEST(RuleExportTest, FullRoundtrip) {
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const RuleSet original = simnet::build_ruleset(backend);

  std::stringstream stream;
  export_rules(original, stream);
  std::string error;
  const auto imported = import_rules(stream, &error);
  ASSERT_TRUE(imported.has_value()) << error;

  ASSERT_EQ(imported->rules.size(), original.rules.size());
  for (std::size_t i = 0; i < original.rules.size(); ++i) {
    const auto& a = original.rules[i];
    const auto& b = imported->rules[i];
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.monitored_domains, b.monitored_domains);
    EXPECT_EQ(a.monitored_indices, b.monitored_indices);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.critical_monitored_index, b.critical_monitored_index);
    EXPECT_EQ(a.critical_sufficient, b.critical_sufficient);
  }
  EXPECT_EQ(imported->excluded.size(), original.excluded.size());
  EXPECT_EQ(imported->hitlist.total_size(), original.hitlist.total_size());

  // Spot-check hitlist equivalence via lookups.
  std::size_t checked = 0;
  original.hitlist.for_each([&](util::DayBin day, const net::IpAddress& ip,
                                std::uint16_t port, const Hit& hit) {
    if (++checked % 17 != 0) return;
    const auto found = imported->hitlist.lookup(ip, port, day);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->service, hit.service);
    EXPECT_EQ(found->domain_index, hit.domain_index);
  });
  EXPECT_GT(checked, 100u);
}

TEST(RuleExportTest, SyntaxErrorsReported) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::istringstream is{text};
    std::string error;
    EXPECT_FALSE(import_rules(is, &error).has_value()) << text;
    EXPECT_NE(error.find(fragment), std::string::npos) << error;
  };
  expect_error("bogus\t1\n", "unknown record");
  expect_error("rule\t1\tnonsense\t3\t-\t-\t0\tX\n", "bad level");
  expect_error("mon\t1\t0\t0\n", "mon before rule");
  expect_error("hit\t99\t1.2.3.4\t443\t0\t0\n", "bad hit address/day");
  expect_error("hit\t0\tnot-an-ip\t443\t0\t0\n", "bad hit address/day");
}

TEST(RuleExportTest, CommentsAndBlankLinesIgnored) {
  std::istringstream is{
      "# comment\n\nrule\t3\tproduct\t2\t-\t0\t1\tSome Device\n"
      "mon\t3\t0\t4\nmon\t3\t1\t9\n"};
  const auto imported = import_rules(is);
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->rules.size(), 1u);
  EXPECT_EQ(imported->rules[0].name, "Some Device");
  EXPECT_EQ(imported->rules[0].monitored_indices,
            (std::vector<std::uint16_t>{4, 9}));
  EXPECT_TRUE(imported->rules[0].critical_sufficient);
}

}  // namespace
}  // namespace haystack::core
