#include "simnet/population.hpp"

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

namespace {
// Subscriber space: 100.64.0.0/10.
constexpr std::uint32_t kSubscriberBase = 0x64400000;
// Lines per regional address pool; each pool spans four /24s (1024 addrs).
constexpr std::uint32_t kLinesPerRegion = 64;
constexpr std::uint32_t kRegionAddrSpan = 1024;
}  // namespace

Population::Population(const Catalog& catalog,
                       const PopulationConfig& config)
    : catalog_{catalog}, config_{config} {
  offsets_.reserve(config_.lines + 1);
  offsets_.push_back(0);

  // Pre-extract the ownership candidates: real products plus virtual
  // wild-extra devices per unit.
  struct Candidate {
    std::optional<ProductId> product;
    UnitId unit;
    double penetration;
  };
  std::vector<Candidate> candidates;
  for (const Product& p : catalog.products()) {
    if (p.unit && p.penetration > 0.0) {
      candidates.push_back({p.id, *p.unit, p.penetration});
    }
  }
  for (const DetectionUnit& u : catalog.units()) {
    if (u.wild_extra_penetration > 0.0) {
      candidates.push_back({std::nullopt, u.id, u.wild_extra_penetration});
    }
  }

  for (LineId line = 0; line < config_.lines; ++line) {
    util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x0cc07a11, line, 0);
    bool any = false;
    for (const Candidate& c : candidates) {
      if (rng.chance(c.penetration)) {
        devices_.push_back({c.product, c.unit});
        any = true;
      }
    }
    offsets_.push_back(static_cast<std::uint32_t>(devices_.size()));
    if (any) active_lines_.push_back(line);
  }
}

std::span<const OwnedDevice> Population::devices_of(LineId line) const {
  return {devices_.data() + offsets_[line],
          devices_.data() + offsets_[line + 1]};
}

unsigned Population::epoch_of(LineId line, util::DayBin day) const {
  unsigned epoch = 0;
  for (util::DayBin d = 1; d <= day; ++d) {
    util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x707a7e, line, d);
    if (rng.chance(config_.daily_rotation_probability)) ++epoch;
  }
  return epoch;
}

net::IpAddress Population::address_of(LineId line, util::DayBin day) const {
  const std::uint32_t region = line / kLinesPerRegion;
  const unsigned epoch = epoch_of(line, day);
  const std::uint32_t slot = static_cast<std::uint32_t>(
      util::hash_combine(util::fnv1a_u64(line), epoch) % kRegionAddrSpan);
  return net::IpAddress::v4(kSubscriberBase + region * kRegionAddrSpan +
                            slot);
}

bool Population::dual_stack(LineId line) const {
  util::Pcg32 rng = util::derive_rng(config_.seed ^ 0xd5a15ac, line, 0);
  return rng.chance(config_.dual_stack_fraction);
}

net::IpAddress Population::address6_of(LineId line) const {
  // One /64 per line under the ISP's 2001:db8:6400::/40.
  return net::IpAddress::v6(0x20010db864000000ULL | line, 1);
}

double Population::device_penetration() const noexcept {
  return config_.lines == 0
             ? 0.0
             : static_cast<double>(active_lines_.size()) /
                   static_cast<double>(config_.lines);
}

}  // namespace haystack::simnet
