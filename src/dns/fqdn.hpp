// Fully-qualified domain name value type.
//
// Detection signatures in the paper are keyed on FQDNs and on their
// "second-level domain" (SLD) — the registrable domain one label below the
// public suffix (e.g. the SLD of "avs-alexa.na.amazon.com" is "amazon.com",
// of "foo.co.uk" it is "foo.co.uk"'s owner "foo.co.uk" -> registrable
// "foo.co.uk"). The exclusivity rule of Sec. 4.2.1 ("an IP is exclusively
// used if it only serves domains from a single SLD and its CNAMEs") depends
// on this extraction, so it is implemented against an embedded subset of
// the public-suffix list covering the suffixes that occur in the catalog.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace haystack::dns {

/// Immutable, case-normalized domain name. Regular value type.
class Fqdn {
 public:
  Fqdn() = default;

  /// Normalizes: lowercases, strips one trailing dot. An empty or
  /// syntactically hopeless name yields an Fqdn with valid() == false.
  explicit Fqdn(std::string_view name);

  /// The normalized textual form.
  [[nodiscard]] const std::string& str() const noexcept { return name_; }

  /// False when the input was empty, had empty labels, or exceeded the
  /// 253-octet limit.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Labels from most specific to TLD, e.g. {"avs-alexa","na","amazon","com"}.
  [[nodiscard]] std::vector<std::string_view> labels() const;

  /// Number of labels.
  [[nodiscard]] std::size_t label_count() const noexcept;

  /// The registrable domain ("SLD" in the paper's terminology): one label
  /// below the public suffix. Returns the whole name when it already is a
  /// registrable domain or when it is a bare public suffix.
  [[nodiscard]] Fqdn registrable() const;

  /// True when this name equals `ancestor` or is a subdomain of it.
  [[nodiscard]] bool is_subdomain_of(const Fqdn& ancestor) const noexcept;

  /// Wildcard-pattern match per the paper's certificate rule: `pattern` may
  /// begin with "*." which matches exactly one leading label; otherwise an
  /// exact (case-normalized) comparison.
  [[nodiscard]] bool matches_pattern(const Fqdn& pattern) const noexcept;

  /// Stable hash of the normalized name.
  [[nodiscard]] std::uint64_t hash() const noexcept {
    return util::fnv1a(name_);
  }

  friend auto operator<=>(const Fqdn& a, const Fqdn& b) noexcept {
    return a.name_ <=> b.name_;
  }
  friend bool operator==(const Fqdn& a, const Fqdn& b) noexcept {
    return a.name_ == b.name_;
  }

 private:
  std::string name_;
  bool valid_ = false;
};

/// True when `suffix` ("com", "co.uk", ...) is in the embedded public-suffix
/// subset.
[[nodiscard]] bool is_public_suffix(std::string_view suffix) noexcept;

}  // namespace haystack::dns

template <>
struct std::hash<haystack::dns::Fqdn> {
  std::size_t operator()(const haystack::dns::Fqdn& f) const noexcept {
    return static_cast<std::size_t>(f.hash());
  }
};
