// Shared export-stream sequence tracking (ISSUE 2).
//
// All three codecs carry a 32-bit sequence counter in their packet headers
// — v5 counts flows, v9 counts packets, IPFIX counts data records — and all
// three previously grew their own ad-hoc gap detection. This header unifies
// them behind one tracker that classifies every observed sequence number
// with correct 32-bit wraparound semantics:
//
//   * kInOrder  — exactly the expected value;
//   * kGap      — ahead of expectation: the in-between units are presumed
//                 lost (until a late replay credits them back);
//   * kReplay   — behind expectation but within the reorder window: a
//                 delayed or duplicated datagram, not a restart;
//   * kRestart  — behind expectation by more than the reorder window: the
//                 exporter process restarted and its counter reset.
//
// The forward/backward decision uses the signed difference of unsigned
// 32-bit values, so a stream wrapping from 0xffffffff to 0 is "forward by
// one", not a 4-billion-unit gap.
//
// DatagramDeduper is the companion UDP-level duplicate suppressor: a small
// ring of datagram hashes. Export headers embed monotonic sequence numbers
// and timestamps, so byte-identical datagrams within the window are
// genuine network duplicates, not distinct exports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace haystack::flow {

/// Classification of one observed sequence number.
enum class SequenceEvent : std::uint8_t {
  kFirst,    ///< first datagram of the stream
  kInOrder,  ///< matches expectation exactly
  kGap,      ///< ahead of expectation; units in between presumed lost
  kReplay,   ///< behind expectation, within the reorder window
  kRestart,  ///< behind expectation beyond the window: counter reset
};

/// Result of classifying a sequence number.
struct SequenceOutcome {
  SequenceEvent event = SequenceEvent::kFirst;
  /// Units (flows/packets/records, per codec) presumed lost; kGap only.
  std::uint32_t lost_units = 0;
};

/// Per-stream sequence tracker with wraparound-correct gap accounting.
///
/// Usage is two-phase so callers can act on the classification (clear
/// template state on kRestart, count a gap event) before committing:
///
///   const auto outcome = tracker.classify(seq);
///   ...react...
///   tracker.commit(seq, units_in_this_datagram, outcome);
class SequenceTracker {
 public:
  SequenceTracker() = default;
  explicit SequenceTracker(std::uint32_t reorder_window) noexcept
      : reorder_window_{reorder_window} {}

  [[nodiscard]] SequenceOutcome classify(std::uint32_t seq) const noexcept {
    if (!have_) return {SequenceEvent::kFirst, 0};
    const auto delta = static_cast<std::int32_t>(seq - expected_);
    if (delta == 0) return {SequenceEvent::kInOrder, 0};
    if (delta > 0) {
      return {SequenceEvent::kGap, static_cast<std::uint32_t>(delta)};
    }
    if (static_cast<std::uint32_t>(-delta) <= reorder_window_) {
      return {SequenceEvent::kReplay, 0};
    }
    return {SequenceEvent::kRestart, 0};
  }

  /// Advances the tracker past a datagram carrying `units` units whose
  /// classification was `outcome`.
  void commit(std::uint32_t seq, std::uint32_t units,
              const SequenceOutcome& outcome) noexcept {
    have_ = true;
    received_ += units;
    switch (outcome.event) {
      case SequenceEvent::kReplay:
        // A datagram previously presumed lost arrived after all; credit
        // its units back. Expectation is unchanged: the stream head has
        // already moved past this datagram.
        lost_ -= std::min<std::uint64_t>(lost_, units);
        break;
      case SequenceEvent::kGap:
        lost_ += outcome.lost_units;
        expected_ = seq + units;
        break;
      default:
        expected_ = seq + units;
        break;
    }
  }

  /// Credits units that were received but only became decodable later
  /// (template-loss recovery) into the received total.
  void credit_recovered(std::uint64_t units) noexcept { received_ += units; }

  /// Jumps the expectation forward to `seq_end` when that is ahead of it.
  /// Used after template-loss recovery: the recovered records occupy the
  /// sequence space up to `seq_end`, and without the jump the next
  /// datagram would re-report that space as a gap (phantom loss).
  void advance_past(std::uint32_t seq_end) noexcept {
    if (have_ && static_cast<std::int32_t>(seq_end - expected_) > 0) {
      expected_ = seq_end;
    }
  }

  /// Forgets stream state (after a restart was handled by the caller).
  void reset() noexcept {
    have_ = false;
    expected_ = 0;
  }

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t lost() const noexcept { return lost_; }

  /// Estimated loss fraction of this stream: lost / (lost + received).
  [[nodiscard]] double loss_fraction() const noexcept {
    const std::uint64_t total = received_ + lost_;
    return total == 0 ? 0.0
                      : static_cast<double>(lost_) /
                            static_cast<double>(total);
  }

 private:
  std::uint32_t reorder_window_ = 64;
  bool have_ = false;
  std::uint32_t expected_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t lost_ = 0;
};

/// Health summary of one export stream, for telemetry surfacing.
struct SourceHealth {
  std::uint64_t received_units = 0;  ///< units seen (flows/packets/records)
  std::uint64_t lost_units = 0;      ///< units presumed lost to the network
  std::uint32_t restarts = 0;        ///< exporter restarts detected

  [[nodiscard]] double loss_fraction() const noexcept {
    const std::uint64_t total = received_units + lost_units;
    return total == 0 ? 0.0
                      : static_cast<double>(lost_units) /
                            static_cast<double>(total);
  }
};

/// Suppresses byte-identical datagrams within a sliding window. A window
/// of 0 disables suppression (the default for bare collectors, so replayed
/// captures and prefix-truncation tests behave as plain decoders).
class DatagramDeduper {
 public:
  DatagramDeduper() = default;
  explicit DatagramDeduper(std::size_t window) : ring_(window, 0) {}

  /// Returns true when `datagram` hashes equal to one of the last
  /// `window` datagrams; otherwise records it and returns false.
  [[nodiscard]] bool seen_before(std::span<const std::uint8_t> datagram) {
    if (ring_.empty()) return false;
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the bytes
    for (const std::uint8_t b : datagram) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
    if (h == 0) h = 1;  // 0 marks an empty slot
    if (std::find(ring_.begin(), ring_.end(), h) != ring_.end()) return true;
    ring_[next_] = h;
    next_ = (next_ + 1) % ring_.size();
    return false;
  }

 private:
  std::vector<std::uint64_t> ring_;
  std::size_t next_ = 0;
};

}  // namespace haystack::flow
