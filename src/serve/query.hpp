// Point-in-time detection queries over published read views (ISSUE 8).
//
// A DetectionSnapshot is a value: it pins one ShardView per shard (grabbed
// lock-light from the ViewHub (one published-pointer copy), or token-refreshed by the control plane) and
// answers every query from those immutable views — per-subscriber
// detection/verdict/evidence, whole-population Fig. 12-style per-service
// drill-downs, and heavy-hitter rankings — while ingest keeps running.
// Consistency: each shard's view is a prefix of that shard's serial
// application order at its published epoch, and a subscriber's evidence
// lives in exactly one shard, so every per-subscriber answer (and every
// per-service count, which sums per-subscriber facts) is prefix-consistent
// with the ingest order. The snapshot stays valid — and keeps answering
// identically — no matter what ingest, reloads, or clears happen after it
// was taken.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/read_view.hpp"
#include "core/sharded_detector.hpp"

namespace haystack::serve {

/// One row of a Fig. 12-style drill-down: how many subscribers a service
/// was detected for in this snapshot (hierarchy-aware), and how many have
/// any evidence toward it.
struct ServiceCount {
  core::ServiceId service = 0;
  std::string name;  ///< from the owning view's compiled rules
  std::uint64_t detected_subscribers = 0;
  std::uint64_t evidence_subscribers = 0;
};

/// Heavy-hitter row: subscribers ranked by detected services, then by
/// cumulative sampled packets.
struct HeavyHitter {
  core::SubscriberKey subscriber = 0;
  std::uint32_t detected_services = 0;
  std::uint64_t packets = 0;
};

/// One service's evidence for a subscriber-profile drill-down.
struct ProfileRow {
  core::ServiceId service = 0;
  std::string name;
  core::Evidence evidence{};
  bool detected = false;  ///< hierarchy-aware, within the snapshot
};

/// Immutable multi-shard detection snapshot. Cheap to copy (shared views).
class DetectionSnapshot {
 public:
  /// `views` must be one view per shard, in shard order — exactly what
  /// ViewHub::views() / ShardedDetector::{live,fresh}_views() return.
  explicit DetectionSnapshot(
      std::vector<std::shared_ptr<const core::ShardView>> views);

  // --- per-subscriber queries (answered by the owning shard's view) ----
  [[nodiscard]] bool detected(core::SubscriberKey subscriber,
                              core::ServiceId service) const {
    return owner(subscriber).detected(subscriber, service);
  }
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      core::SubscriberKey subscriber, core::ServiceId service) const {
    return owner(subscriber).detection_hour(subscriber, service);
  }
  /// Verdict tagged with the owning view's ruleset_version.
  [[nodiscard]] core::Verdict verdict(core::SubscriberKey subscriber,
                                      core::ServiceId service) const {
    return owner(subscriber).verdict(subscriber, service);
  }
  [[nodiscard]] const core::Evidence* evidence(
      core::SubscriberKey subscriber, core::ServiceId service) const {
    return owner(subscriber).evidence_row(subscriber, service);
  }

  /// All of one subscriber's evidence rows, hierarchy-evaluated.
  [[nodiscard]] std::vector<ProfileRow> subscriber_profile(
      core::SubscriberKey subscriber) const;

  // --- whole-population drill-downs ------------------------------------
  /// Per-service detection counts (Fig. 12 drill-down), sorted by
  /// detected_subscribers descending, then service id.
  [[nodiscard]] std::vector<ServiceCount> service_counts() const;

  /// Top-k subscribers by detected services (ties: packets, then key).
  [[nodiscard]] std::vector<HeavyHitter> heavy_hitters(std::size_t k) const;

  /// Visits every evidence row, shard-major in shard order — identical
  /// order to ShardedDetector::for_each_evidence at the same epochs.
  void for_each_evidence(
      const std::function<void(core::SubscriberKey, core::ServiceId,
                               const core::Evidence&)>& fn) const;

  // --- snapshot metadata ------------------------------------------------
  [[nodiscard]] core::ViewStats stats() const;  ///< summed over shards
  [[nodiscard]] std::uint64_t observations() const;
  [[nodiscard]] std::uint64_t satisfied() const;
  /// Published epochs, one per shard (the consistency stamp).
  [[nodiscard]] std::vector<std::uint64_t> epochs() const;
  /// Lowest / highest compiled-rule version across the shard views. Equal
  /// everywhere except in the short window while a cutover propagates.
  [[nodiscard]] std::uint64_t min_ruleset_version() const;
  [[nodiscard]] std::uint64_t max_ruleset_version() const;
  [[nodiscard]] bool degraded() const;  ///< any shard degraded

  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(views_.size());
  }
  [[nodiscard]] const core::ShardView& view(unsigned shard) const {
    return *views_[shard];
  }

 private:
  [[nodiscard]] const core::ShardView& owner(
      core::SubscriberKey subscriber) const {
    return *views_[core::shard_of_key(subscriber, views_.size())];
  }

  std::vector<std::shared_ptr<const core::ShardView>> views_;
};

}  // namespace haystack::serve
