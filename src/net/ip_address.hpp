// IP address value type covering both IPv4 and IPv6.
//
// Stored as a 128-bit big-endian value plus a family tag; IPv4 occupies the
// low 32 bits. All flow records, hitlists, and tries in the repository key
// on this type. Parsing and formatting implement the canonical textual
// forms (dotted quad; RFC 5952 compressed hex for IPv6).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/hash.hpp"

namespace haystack::net {

/// Address family tag.
enum class Family : std::uint8_t { kIpv4 = 4, kIpv6 = 6 };

/// Immutable IP address (IPv4 or IPv6). Regular value type: copyable,
/// totally ordered (family first, then numeric value), hashable.
class IpAddress {
 public:
  /// Default-constructs the IPv4 unspecified address 0.0.0.0.
  constexpr IpAddress() noexcept = default;

  /// Builds an IPv4 address from a host-order 32-bit value,
  /// e.g. 0x0A000001 == 10.0.0.1.
  [[nodiscard]] static constexpr IpAddress v4(std::uint32_t host_order) noexcept {
    IpAddress a;
    a.family_ = Family::kIpv4;
    a.hi_ = 0;
    a.lo_ = host_order;
    return a;
  }

  /// Builds an IPv6 address from two host-order 64-bit halves
  /// (hi = first 8 bytes on the wire, lo = last 8 bytes).
  [[nodiscard]] static constexpr IpAddress v6(std::uint64_t hi,
                                              std::uint64_t lo) noexcept {
    IpAddress a;
    a.family_ = Family::kIpv6;
    a.hi_ = hi;
    a.lo_ = lo;
    return a;
  }

  /// Parses a textual address of either family. Returns nullopt on any
  /// syntax error (no exceptions on the parse path).
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] constexpr Family family() const noexcept { return family_; }
  [[nodiscard]] constexpr bool is_v4() const noexcept {
    return family_ == Family::kIpv4;
  }
  [[nodiscard]] constexpr bool is_v6() const noexcept {
    return family_ == Family::kIpv6;
  }

  /// Host-order IPv4 value. Only meaningful when is_v4().
  [[nodiscard]] constexpr std::uint32_t v4_value() const noexcept {
    return static_cast<std::uint32_t>(lo_);
  }

  /// High/low 64-bit halves of the 128-bit value (IPv4 in the low 32 bits).
  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// Bit at position `i` counted from the most significant end of the
  /// address (bit 0 is the top bit). IPv4 addresses have 32 bits, IPv6 128.
  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    if (family_ == Family::kIpv4) {
      return ((lo_ >> (31 - i)) & 1U) != 0;
    }
    if (i < 64) return ((hi_ >> (63 - i)) & 1U) != 0;
    return ((lo_ >> (127 - i)) & 1U) != 0;
  }

  /// Number of bits in an address of this family (32 or 128).
  [[nodiscard]] constexpr unsigned bit_width() const noexcept {
    return family_ == Family::kIpv4 ? 32 : 128;
  }

  /// The 16-byte network-order representation (IPv4-mapped layout is NOT
  /// used: a v4 address fills bytes 12..15 with the rest zero, and keeps its
  /// family tag).
  [[nodiscard]] std::array<std::uint8_t, 16> bytes() const noexcept;

  /// Canonical text form.
  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash (family-sensitive).
  [[nodiscard]] constexpr std::uint64_t hash() const noexcept {
    return util::hash_combine(
        util::hash_combine(util::fnv1a_u64(hi_), util::fnv1a_u64(lo_)),
        static_cast<std::uint64_t>(family_));
  }

  friend constexpr auto operator<=>(const IpAddress& a,
                                    const IpAddress& b) noexcept {
    if (const auto c = a.family_ <=> b.family_; c != 0) return c;
    if (const auto c = a.hi_ <=> b.hi_; c != 0) return c;
    return a.lo_ <=> b.lo_;
  }
  friend constexpr bool operator==(const IpAddress&,
                                   const IpAddress&) noexcept = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
  Family family_ = Family::kIpv4;
};

}  // namespace haystack::net

template <>
struct std::hash<haystack::net::IpAddress> {
  std::size_t operator()(const haystack::net::IpAddress& a) const noexcept {
    return static_cast<std::size_t>(a.hash());
  }
};
