// Versioned, precompiled rule state (ISSUE 8 tentpole).
//
// The live control plane hot-reloads rule sets, hitlists, and thresholds
// while ingest runs. That only works if "the rules" are an immutable value
// the hot path can hold by pointer: a CompiledRuleVersion bundles one
// rule set + detector config + the per-service dispatch tables the detect
// loop reads (rule_of / RuleFast) + the boundary SignatureIndex compiled
// from that version's hitlist, all tagged with a monotonically increasing
// version id. Producers and shard workers pass shared_ptrs to these
// around; a reload builds the next version off the hot path and swaps a
// pointer — nothing ever mutates a published version.
//
// The evaluation helpers (eval_detection_hour / eval_verdict) are the ONE
// implementation of the hierarchy-aware read path: the live Detector and
// the epoch-published read views (core/read_view.hpp) both call them, so
// snapshot queries are bit-for-bit the synchronous answers by
// construction, and every Verdict carries the version id it was evaluated
// under.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/evidence_map.hpp"
#include "core/hitlist.hpp"
#include "core/rules.hpp"
#include "core/signature_index.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

class InternTable;

/// Anonymized subscriber identifier (mirrors detector.hpp; declared here
/// so the eval helpers don't need the full detector header).
using SubscriberKey = std::uint64_t;

/// Detector configuration (shared with detector.hpp via this header).
struct DetectorConfig {
  /// Domain-coverage threshold D (Sec. 4.3.2; the paper's conservative
  /// default is 0.4).
  double threshold = 0.4;
  /// Estimated observation-channel loss fraction above which the detector
  /// runs in degraded mode: verdicts become low-confidence, and the
  /// evidence requirement is relaxed in proportion to the loss (ISSUE 2).
  double loss_tolerance = 0.05;
};

/// Confidence qualifier for loss-aware verdicts.
enum class Confidence : std::uint8_t {
  kHigh,  ///< full evidence requirement met on a healthy channel
  kLow,   ///< verdict rendered under a degraded observation channel
};

/// A loss-aware detection verdict (ISSUE 2). On a healthy channel this is
/// just detection_hour() with kHigh confidence. When the estimated loss
/// exceeds the tolerance, missing evidence may be the channel's fault:
/// services satisfying a loss-relaxed requirement are reported detected at
/// kLow confidence (with no hour, since the full requirement never fired),
/// and negative verdicts are themselves flagged kLow.
struct Verdict {
  bool detected = false;
  Confidence confidence = Confidence::kHigh;
  /// Detection hour; set only for full-evidence (kHigh) detections.
  std::optional<util::HourBin> hour;
  /// Rule-set version the verdict was evaluated under (ISSUE 8). Every
  /// verdict is rendered from exactly one CompiledRuleVersion — there is
  /// no way to mix requirements from two versions in one answer.
  std::uint64_t ruleset_version = 0;
};

/// Per-(subscriber, service) evidence state.
struct Evidence {
  /// Bitset over monitored-domain positions (up to 128; Fire TV's 34 is
  /// the catalog maximum).
  std::array<std::uint64_t, 2> mask{0, 0};
  std::uint16_t distinct = 0;
  std::uint64_t packets = 0;          ///< cumulative sampled packets
  util::HourBin first_seen = 0;
  /// Hour the rule's own coverage requirement was first met; kNever until.
  util::HourBin satisfied_hour = kNever;

  static constexpr util::HourBin kNever = 0xffffffffU;

  [[nodiscard]] bool sees(std::uint16_t position) const noexcept {
    return (mask[position >> 6] >> (position & 63U)) & 1U;
  }
};

/// Per-service data precompiled once per version so the interned detect
/// path never dereferences a DetectionRule: the evidence requirement under
/// the version's threshold and the critical-domain bitset (nonzero only
/// when the critical domain alone is sufficient).
struct RuleFast {
  std::array<std::uint64_t, 2> critical_mask{0, 0};
  std::uint16_t required = 1;
  bool has_rule = false;
};

/// One immutable compiled rule version. Built by compile(); never mutated
/// after publication. Shard workers, producers, and read views share it by
/// shared_ptr, so a version stays alive exactly as long as any in-flight
/// chunk, snapshot, or verdict still references it.
struct CompiledRuleVersion {
  /// Monotonic version id; 1 is the construction-time version.
  std::uint64_t id = 1;
  /// The rule set this version compiles. Never null. For the
  /// construction-time version this aliases the caller-owned set (the
  /// pre-reload lifetime contract); for reloaded versions `owned` keeps
  /// it alive.
  const RuleSet* rules = nullptr;
  /// The daily hitlist raw-IP lookups resolve against — usually
  /// &rules->hitlist, but the construction-time version honors a
  /// separately supplied hitlist (the pre-ISSUE-8 constructor contract).
  const Hitlist* hitlist = nullptr;
  std::shared_ptr<const RuleSet> owned;
  DetectorConfig config{};
  /// Rule pointer per service id for O(1) dispatch (into *rules).
  std::vector<const DetectionRule*> rule_of;
  std::vector<RuleFast> fast_rules;  ///< parallel to rule_of
  /// Boundary (IP, port, day) -> Signature index compiled from this
  /// version's hitlist. Null when the version was compiled without one
  /// (a plain single-shard Detector never consults it).
  std::shared_ptr<const SignatureIndex> index;

  [[nodiscard]] const DetectionRule* rule_for(ServiceId service) const {
    return service < rule_of.size() ? rule_of[service] : nullptr;
  }
};

/// Compiles `rules` + `config` into an immutable version. When
/// `build_index` is set, also compiles the SignatureIndex from `hitlist`
/// and interns rule/domain labels into `intern` (which may be null).
/// `owned` carries ownership for reloaded sets and may be null for the
/// construction-time version (caller guarantees lifetime).
[[nodiscard]] std::shared_ptr<const CompiledRuleVersion> compile_rules(
    const Hitlist& hitlist, const RuleSet& rules,
    const DetectorConfig& config, std::uint64_t id,
    std::shared_ptr<const RuleSet> owned, bool build_index,
    InternTable* intern);

/// Hierarchy-aware detection over any evidence map: the hour at which the
/// service and all of its ancestors were satisfied for this subscriber,
/// or nullopt. The single read-path implementation shared by the live
/// Detector and the published read views.
[[nodiscard]] std::optional<util::HourBin> eval_detection_hour(
    const FlatEvidenceMap<Evidence>& evidence, const CompiledRuleVersion& v,
    SubscriberKey subscriber, ServiceId service);

/// Loss-aware verdict over any evidence map, tagged with v.id.
[[nodiscard]] Verdict eval_verdict(const FlatEvidenceMap<Evidence>& evidence,
                                   const CompiledRuleVersion& v,
                                   double observed_loss,
                                   SubscriberKey subscriber,
                                   ServiceId service);

}  // namespace haystack::core
