// Ablation: hiding an IoT service behind shared infrastructure.
//
// Sec. 7.4: "Given that we are unable to identify IoT services if they are
// using shared infrastructures (e.g., CDNs), this also points out a good
// way to hide IoT services." This bench takes detectable services and
// re-hosts growing fractions of their domains on the shared CDN, showing
// how detectability degrades and at what point the rule generator drops
// the service entirely.
#include <iostream>

#include "common.hpp"
#include "core/infra_classifier.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto& backend = world.backend();

  // Build a synthetic passive-DNS view in which the first K primary
  // domains of each targeted service are CDN-fronted (co-tenant records
  // make them classify shared); the rest keep their real records.
  const std::vector<std::string> kTargets = {"Amazon Product", "Yi Camera",
                                             "Ring Doorbell"};

  util::print_banner(std::cout,
                     "Ablation: CDN-fronting as a hiding countermeasure");
  util::TextTable table;
  table.header({"Service", "Fronted fraction", "Monitored domains",
                "Rule survives"});

  for (const auto& target : kTargets) {
    const auto* unit = world.catalog().unit_by_name(target);
    for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      dns::PassiveDnsDb pdns;
      const auto cdn_ip = *net::IpAddress::parse("23.0.0.250");
      pdns.add_a(dns::Fqdn{"othertenant.example.com"}, cdn_ip, 0,
                 util::kStudyDays - 1);

      // Copy the real records, fronting the first K primary domains of the
      // target (and only those).
      for (const auto& u : world.catalog().units()) {
        unsigned primaries_seen = 0;
        for (const auto* dom : world.catalog().domains_of(u.id)) {
          const bool front =
              u.id == unit->id &&
              dom->role == simnet::DomainRole::kPrimary &&
              static_cast<double>(primaries_seen) <
                  fraction * unit->primary_domains;
          if (dom->role == simnet::DomainRole::kPrimary) ++primaries_seen;
          if (dom->dnsdb_missing) continue;
          if (front) {
            pdns.add_cname(dom->fqdn,
                           dns::Fqdn{dom->fqdn.str() + ".edge.simcdn.net"},
                           0, util::kStudyDays - 1);
            pdns.add_a(dns::Fqdn{dom->fqdn.str() + ".edge.simcdn.net"},
                       cdn_ip, 0, util::kStudyDays - 1);
          } else {
            const auto& hosting = backend.hosting_of(u.id, dom->index);
            const dns::Fqdn* head = &dom->fqdn;
            if (hosting.cname.valid()) {
              pdns.add_cname(dom->fqdn, hosting.cname, 0,
                             util::kStudyDays - 1);
              head = &hosting.cname;
            }
            for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
              for (const auto& ip : hosting.daily_ips[day]) {
                pdns.add_a(*head, ip, day, day);
              }
            }
            if (hosting.shared) {
              for (const auto& ip : hosting.daily_ips[0]) {
                for (const auto& tenant : backend.pdns().domains_on(
                         ip, {0, util::kStudyDays - 1})) {
                  pdns.add_a(tenant, ip, 0, util::kStudyDays - 1);
                }
              }
            }
          }
        }
      }

      const core::InfraClassifier classifier{pdns, backend.scans(), 0,
                                             util::kStudyDays - 1};
      const auto rules = core::generate_rules(
          simnet::build_service_specs(backend), classifier,
          core::RuleGenConfig{});
      const auto* rule = rules.rule_by_name(target);
      table.row({target, util::fmt_percent(fraction, 0),
                 rule != nullptr ? std::to_string(rule->monitored_domains)
                                 : "0",
                 rule != nullptr ? "yes" : "NO (hidden)"});
    }
  }
  table.print(std::cout);
  std::cout << "\nOnce the dedicated fraction falls below the rule "
               "generator's minimum, the service disappears from the "
               "hitlist — the vendor has hidden it (at the cost of routing "
               "all control traffic through a CDN).\n";
  return 0;
}
