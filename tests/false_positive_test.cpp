// The paper's false-positive crosscheck (Sec. 5): "We crosscheck possible
// false positives by running another experiment where we only enable a
// small subset of IoT devices. We then apply our detection methodology to
// these traces and do not identify any devices that are not explicitly
// part of the experiment."
#include <gtest/gtest.h>

#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/manual_analysis.hpp"
#include "telemetry/vantage.hpp"

namespace haystack {
namespace {

class FalsePositiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    rules_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete rules_;
    delete backend_;
    delete catalog_;
  }

  // Runs a subset experiment over the active window and returns the
  // detected service names.
  static std::set<std::string> run_subset(
      std::vector<std::string> products) {
    simnet::GroundTruthConfig config;
    config.enabled_products = std::move(products);
    simnet::GroundTruthSim gt{*backend_, config};
    telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};
    core::Detector det{rules_->hitlist, *rules_, {.threshold = 0.4}};
    for (util::HourBin h = 0; h < util::day_start(4); ++h) {
      for (const auto& f : isp.observe(gt.hour_flows(h), h)) {
        det.observe(1, f.flow.key.dst, f.flow.key.dst_port,
                    f.flow.packets, h);
      }
    }
    std::set<std::string> detected;
    for (const auto& rule : rules_->rules) {
      if (det.detected(1, rule.service)) detected.insert(rule.name);
    }
    return detected;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static core::RuleSet* rules_;
};

simnet::Catalog* FalsePositiveTest::catalog_ = nullptr;
simnet::Backend* FalsePositiveTest::backend_ = nullptr;
core::RuleSet* FalsePositiveTest::rules_ = nullptr;

TEST_F(FalsePositiveTest, CameraSubsetDetectsOnlyCameras) {
  const auto detected =
      run_subset({"Yi Cam", "Ring Doorbell", "Amcrest Cam"});
  EXPECT_TRUE(detected.contains("Yi Camera"));
  EXPECT_TRUE(detected.contains("Ring Doorbell"));
  EXPECT_TRUE(detected.contains("Amcrest Cam."));
  EXPECT_EQ(detected.size(), 3u)
      << "unexpected detections: " << [&] {
           std::string s;
           for (const auto& d : detected) s += d + " ";
           return s;
         }();
}

TEST_F(FalsePositiveTest, EchoSubsetDetectsTheAmazonChainOnly) {
  const auto detected = run_subset({"Echo Dot"});
  // The Echo speaks the Alexa platform and the Amazon manufacturer
  // domains — all true positives by the hierarchy definition.
  EXPECT_TRUE(detected.contains("Alexa Enabled"));
  EXPECT_TRUE(detected.contains("Amazon Product"));
  // It must NOT look like a Fire TV (the product-level sibling).
  EXPECT_FALSE(detected.contains("Fire TV"));
  EXPECT_EQ(detected.size(), 2u);
}

TEST_F(FalsePositiveTest, SamsungApplianceDoesNotBecomeATv) {
  const auto detected = run_subset({"Samsung Fridge", "Samsung Dryer"});
  EXPECT_TRUE(detected.contains("Samsung IoT"));
  EXPECT_FALSE(detected.contains("Samsung TV"));
}

TEST_F(FalsePositiveTest, NothingEnabledNothingDetected) {
  const auto detected = run_subset({"No Such Product"});
  EXPECT_TRUE(detected.empty());
}

}  // namespace
}  // namespace haystack
