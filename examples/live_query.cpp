// Live control plane demo (ISSUE 8): query a running detector without
// stopping it.
//
// One thread streams a day of wild ISP traffic into an 8-shard
// ShardedDetector at full rate while the main thread — through
// serve::ControlPlane — takes point-in-time snapshots, watches detections
// land, hot-reloads the rule set to a stricter threshold mid-stream, and
// finally prints a Fig. 12-style per-service drill-down, the heavy-hitter
// lines, and the alert events the run raised. No query ever drains the
// pipeline: live snapshots are wait-free, fresh snapshots ride publish
// tokens through the shard queues.
//
// Usage: live_query [lines] [day]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/sharded_detector.hpp"
#include "serve/control.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  const std::uint32_t lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 20'000;
  const util::DayBin day =
      argc > 2 ? static_cast<util::DayBin>(std::atoi(argv[2])) : 0;

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const auto rules = std::make_shared<const core::RuleSet>(
      simnet::build_ruleset(backend));
  simnet::Population population{catalog, {.lines = lines}};
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates,
                          simnet::WildIspConfig{}};

  obs::Observability obs;
  core::ShardedDetector detector{rules->hitlist, *rules,
                                 {.threshold = 0.4},
                                 /*shards=*/8,
                                 /*queue_capacity=*/1024,
                                 &obs,
                                 // auto-republish so live (wait-free)
                                 // snapshots track ingest on their own
                                 {.auto_publish_observations = 50'000}};
  serve::ControlPlane control{detector, {.min_new_detections = 1}, &obs};

  std::cout << "Streaming " << lines << " lines, day "
            << util::day_label(day) << ", with live queries...\n\n";

  // Ingest thread: a full day at maximum rate.
  std::atomic<bool> done{false};
  std::thread ingest{[&] {
    std::vector<core::Observation> batch;
    for (util::HourBin h = util::day_start(day);
         h < util::day_start(day) + 24; ++h) {
      batch.clear();
      wild.hour_observations(h, [&](const simnet::WildObs& o) {
        batch.push_back(core::Observation{o.line, o.flow.key.dst,
                                          o.flow.key.dst_port,
                                          o.flow.packets, h});
      });
      detector.enqueue_batch(batch);
    }
    done.store(true, std::memory_order_release);
  }};

  // Control plane: poll live snapshots while ingest runs; hot-reload to a
  // stricter threshold (0.4 -> 0.5) partway through the stream.
  bool reloaded = false;
  const auto hot_reload = [&] {
    const auto id = control.reload(rules, {.threshold = 0.5});
    std::cout << "  >> hot-reloaded rules as version " << id
              << " (threshold 0.5); in-flight waves finish on v1\n";
    reloaded = true;
  };
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto snap = control.snapshot();  // wait-free
    std::cout << "  live: " << util::fmt_count(snap.observations())
              << " obs applied, " << util::fmt_count(snap.satisfied())
              << " rules satisfied, ruleset v"
              << snap.max_ruleset_version() << "\n";
    if (!reloaded) hot_reload();
  }
  if (!reloaded) hot_reload();  // the stream outran the first poll
  ingest.join();

  // Final answers from a fresh snapshot covering everything enqueued.
  const auto snap = control.fresh_snapshot();
  std::cout << "\nPer-service drill-down (ruleset v"
            << snap.max_ruleset_version() << ", epochs";
  for (const auto e : snap.epochs()) std::cout << " " << e;
  std::cout << "):\n";
  util::TextTable table;
  table.header({"Service", "Lines detected", "Lines with evidence"});
  for (const auto& row : snap.service_counts()) {
    table.row({row.name, util::fmt_count(row.detected_subscribers),
               util::fmt_count(row.evidence_subscribers)});
  }
  table.print(std::cout);

  std::cout << "\nHeavy hitters (top 5 lines by detected services):\n";
  for (const auto& h : snap.heavy_hitters(5)) {
    std::cout << "  line " << h.subscriber << ": " << h.detected_services
              << " services, " << util::fmt_count(h.packets)
              << " sampled packets\n";
  }

  const auto& alerts = control.alerts();
  std::cout << "\nAlerts raised: " << alerts.new_detection_alerts()
            << " new-detection, " << alerts.confidence_degraded_alerts()
            << " confidence-degraded, " << alerts.loss_spike_alerts()
            << " loss-spike\n";
  std::cout << "Cutover regressions (must be 0): "
            << detector.cutover_regressions() << "\n";
  std::cout << "Snapshot queries served: " << control.queries_served()
            << "; view publications: " << detector.view_hub().publishes()
            << "\n";
  return 0;
}
