// Simulation time base.
//
// The paper's measurement window is November 15–28 2019 (two weeks). All
// per-hour and per-day aggregation in the reproduction uses the types here:
// an HourBin is the number of whole hours since Nov 15 2019 00:00 (study
// timezone), a DayBin the number of whole days. The ground-truth experiment
// schedules (active Nov 15–18, idle Nov 23–25) are expressed on the same
// axis.
#pragma once

#include <cstdint>
#include <string>

namespace haystack::util {

/// Whole hours since the start of the study window (Nov 15 2019, 00:00).
using HourBin = std::uint32_t;

/// Whole days since the start of the study window (Nov 15 == day 0).
using DayBin = std::uint32_t;

/// Hours in the full two-week study period (Nov 15 .. Nov 28 inclusive).
inline constexpr HourBin kStudyHours = 14 * 24;

/// Days in the full study period.
inline constexpr DayBin kStudyDays = 14;

/// Day-of-study on which the *active* ground-truth experiments ran
/// (Nov 15–18, paper Sec. 2.3).
inline constexpr DayBin kActiveFirstDay = 0;   // Nov 15
inline constexpr DayBin kActiveLastDay = 3;    // Nov 18

/// Day-of-study on which the *idle* ground-truth experiments ran
/// (Nov 23–25, paper Sec. 2.3).
inline constexpr DayBin kIdleFirstDay = 8;     // Nov 23
inline constexpr DayBin kIdleLastDay = 10;     // Nov 25

/// Converts an hour bin to its containing day bin.
[[nodiscard]] constexpr DayBin day_of(HourBin hour) noexcept {
  return hour / 24;
}

/// Hour-of-day (0..23) in the ISP's local timezone.
[[nodiscard]] constexpr unsigned hour_of_day(HourBin hour) noexcept {
  return hour % 24;
}

/// First hour bin of a day.
[[nodiscard]] constexpr HourBin day_start(DayBin day) noexcept {
  return day * 24;
}

/// True when the hour falls inside the active ground-truth experiment window.
[[nodiscard]] constexpr bool in_active_window(HourBin hour) noexcept {
  const DayBin d = day_of(hour);
  return d >= kActiveFirstDay && d <= kActiveLastDay;
}

/// True when the hour falls inside the idle ground-truth experiment window.
[[nodiscard]] constexpr bool in_idle_window(HourBin hour) noexcept {
  const DayBin d = day_of(hour);
  return d >= kIdleFirstDay && d <= kIdleLastDay;
}

/// Calendar label for a day bin, e.g. "Nov-15". Days past Nov-30 roll into
/// December, though the study window never reaches that far.
[[nodiscard]] std::string day_label(DayBin day);

/// Calendar label for an hour bin, e.g. "Nov-15 13:00".
[[nodiscard]] std::string hour_label(HourBin hour);

/// Diurnal human-activity weight for an hour of day, normalized so the
/// daily mean is 1.0. Shape: low overnight trough (03:00–05:00), small
/// morning bump, evening peak around 18:00–21:00 — matching the usage
/// pattern the paper reports for entertainment-class devices (Sec. 6.2).
[[nodiscard]] double diurnal_weight(unsigned hour_of_day) noexcept;

}  // namespace haystack::util
