// Multi-vantage collection fleet harness (ISSUE 7).
//
// Wires N Collectors and one Aggregator into the full fault-tolerant
// collection loop: observations route to a collector by server address
// (server.hash() % N, mirroring BorderRouterFleet::router_of — one
// vantage per border-router slice), each hour every live collector seals
// a delta, the delta rides a per-collector flow::ImpairedLink (the delta
// channel itself drops/duplicates/reorders/truncates), the aggregator
// stages and seals epochs behind its barrier, and merged-epoch acks flow
// back over a lossy ack channel driving retransmission and spool pruning.
//
// Crash modeling: kill_collector/kill_hour destroys one collector object
// (losing all its in-memory state); restart_hour builds a fresh one,
// installs the aggregator's snapshot of its last MERGED epoch, and
// replays the spooled observation hours after it. The spool models the
// vantage's local capture WAL: the tap keeps writing while the collector
// process is down (otherwise those observations would be gone and no
// fleet could match a single-process detector bit-for-bit), and entries
// are pruned only once their hour is acked — exactly the window a
// restart needs.
//
// finish() drains the tail: retransmission ticks, link flushes, and ack
// pumps until every live collector is acked through the last processed
// hour. On a clean channel one round suffices; impaired channels converge
// within the retry backoff bounds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "flow/impairment.hpp"
#include "vantage/aggregator.hpp"
#include "vantage/collector.hpp"

namespace haystack::vantage {

struct FleetConfig {
  unsigned collectors = 4;
  core::DetectorConfig detector{};
  /// Impairment applied to every collector's delta channel (each link is
  /// seeded independently by xor-ing the collector id into `seed`).
  /// nullopt means a pristine channel.
  std::optional<flow::ImpairmentConfig> delta_impairment;
  /// Probability an ack to a collector is lost (independent per pump).
  double ack_loss = 0.0;
  std::uint64_t seed = 1;
  /// Scripted mid-study crash: collector `kill_collector` dies at the
  /// start of `kill_hour` and comes back at the start of `restart_hour`.
  std::optional<unsigned> kill_collector;
  std::optional<util::HourBin> kill_hour;
  std::optional<util::HourBin> restart_hour;
  std::uint32_t initial_backoff = 1;
  std::uint32_t max_backoff = 8;
  std::uint32_t reorder_window = 64;
  std::uint32_t stale_after = 3;
};

class Fleet {
 public:
  /// `hitlist`/`rules` must outlive the fleet.
  Fleet(const core::Hitlist& hitlist, const core::RuleSet& rules,
        const FleetConfig& config, obs::Observability* obs = nullptr);

  /// Collector owning a server address (the vantage slice function).
  [[nodiscard]] unsigned collector_of(const net::IpAddress& server) const {
    return static_cast<unsigned>(server.hash() % config_.collectors);
  }

  /// Drives one hour: routes/spools observations, ingests them into live
  /// collectors, runs the scripted kill/restart, seals and transmits the
  /// hour's deltas, pumps retries and acks. Hours must be fed in
  /// increasing order, contiguously (empty hours still advance the epoch
  /// barrier via heartbeat deltas).
  void process_hour(util::HourBin hour,
                    std::span<const core::Observation> observations);

  /// Drains retransmissions/acks until every live collector is acked
  /// through the last processed hour; false when `max_ticks` rounds were
  /// not enough (a collector left dead, or an absurdly hostile channel).
  [[nodiscard]] bool finish(unsigned max_ticks = 10000);

  [[nodiscard]] Aggregator& aggregator() noexcept { return aggregator_; }
  [[nodiscard]] const Aggregator& aggregator() const noexcept {
    return aggregator_;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool alive(unsigned id) const {
    return id < collectors_.size() && collectors_[id] != nullptr;
  }
  [[nodiscard]] const Collector* collector(unsigned id) const {
    return id < collectors_.size() ? collectors_[id].get() : nullptr;
  }
  /// Datagrams handed to the delta channel (before impairment).
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept {
    return datagrams_sent_;
  }
  /// Bytes handed to the delta channel (before impairment).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t total_retransmissions() const;

 private:
  void start(util::HourBin first_hour);
  void kill(unsigned id);
  void restart(unsigned id, util::HourBin hour);
  void transmit(unsigned id, std::vector<std::uint8_t> datagram);
  void tick_retries();
  void flush_links();
  void pump_acks();
  [[nodiscard]] std::unique_ptr<Collector> make_collector(unsigned id);

  const core::Hitlist& hitlist_;
  const core::RuleSet& rules_;
  FleetConfig config_;
  obs::Observability* obs_ = nullptr;
  Aggregator aggregator_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  std::vector<std::unique_ptr<flow::ImpairedLink>> links_;
  /// Per-collector, per-hour observation spool (the capture WAL).
  std::vector<std::map<util::HourBin, std::vector<core::Observation>>> spool_;
  util::Pcg32 ack_rng_;
  bool started_ = false;
  util::HourBin start_hour_ = 0;
  util::HourBin last_hour_ = 0;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace haystack::vantage
