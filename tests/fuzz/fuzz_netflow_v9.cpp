// Structure-aware fuzzer for the NetFlow v9 collector.
//
// Corpus: real Exporter output (template + data packets, both families,
// several record counts). Structure-aware mutations target the v9 framing:
// flowset length fields, template ids (0 / 1 / 255 / 256 / 257), template
// field counts, and truncation at flowset boundaries.
//
// Properties checked per input:
//   - ingest() returns (no crash, no OOB — sanitizers enforce the latter);
//   - decoded record count is bounded by the packet size (every record
//     consumes at least one body byte);
//   - a malformed verdict increments the malformed_packets counter;
//   - the collector remains usable afterwards: a pristine template+data
//     packet still decodes to the expected records.
#include <cstdint>
#include <span>
#include <vector>

#include "flow/netflow_v9.hpp"
#include "fuzz_harness.hpp"

namespace {

using haystack::fuzz::Bytes;
using namespace haystack::flow;

FlowRecord sample_record(std::uint32_t salt, bool v6) {
  FlowRecord rec;
  if (v6) {
    rec.key.src = haystack::net::IpAddress::v6(0x20010db8ULL << 32, salt);
    rec.key.dst = haystack::net::IpAddress::v6(0x20010db8ULL << 32,
                                               0x10000ULL + salt);
  } else {
    rec.key.src = haystack::net::IpAddress::v4(0x0a000000U + salt);
    rec.key.dst = haystack::net::IpAddress::v4(0x34000000U + salt * 7);
  }
  rec.key.src_port = static_cast<std::uint16_t>(30000 + salt);
  rec.key.dst_port = 443;
  rec.key.proto = 6;
  rec.tcp_flags = 0x1b;
  rec.packets = 1 + salt;
  rec.bytes = 100 + salt * 11;
  rec.start_ms = salt * 1000;
  rec.end_ms = salt * 1000 + 400;
  rec.sampling = 1000;
  return rec;
}

std::vector<Bytes> build_corpus() {
  std::vector<Bytes> corpus;
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{40}}) {
    nf9::Exporter exporter{{.source_id = 7, .sampling = 1000,
                            .max_records_per_packet = 24,
                            .template_refresh_packets = 1}};
    std::vector<FlowRecord> records;
    for (std::uint32_t i = 0; i < n; ++i) {
      records.push_back(sample_record(i, i % 3 == 0));
    }
    for (auto& packet : exporter.export_flows(records, 1574000000)) {
      corpus.push_back(std::move(packet));
    }
  }
  return corpus;
}

// v9 framing offsets: 20-byte header, then flowsets at (id u16, length
// u16) boundaries. In a template-first packet the field-spec list (type
// u16, length u16 pairs) starts at offset 28.
void structure_mutate(Bytes& data, haystack::util::Pcg32& rng) {
  if (data.size() < 24) return;
  switch (rng.bounded(6)) {
    case 0: {  // corrupt the first flowset's length field
      const std::uint16_t v = static_cast<std::uint16_t>(rng.bounded(0x10000));
      data[22] = static_cast<std::uint8_t>(v >> 8);
      data[23] = static_cast<std::uint8_t>(v);
      break;
    }
    case 1: {  // swap/poison a template id somewhere in the body
      constexpr std::uint16_t kIds[] = {0, 1, 255, 256, 257, 0x8000};
      const std::uint16_t id = kIds[rng.bounded(6)];
      const std::size_t pos =
          20 + rng.bounded(static_cast<std::uint32_t>(data.size() - 21));
      data[pos] = static_cast<std::uint8_t>(id >> 8);
      data[pos + 1] = static_cast<std::uint8_t>(id);
      break;
    }
    case 2: {  // template field-count corruption (offset 26 in a
               // template-first packet: header 20 + id 2 + len 2 + tid 2)
      if (data.size() < 28) break;
      const std::uint16_t v = rng.chance(0.5)
                                  ? static_cast<std::uint16_t>(rng.bounded(64))
                                  : static_cast<std::uint16_t>(
                                        0xff00 | rng.bounded(256));
      data[26] = static_cast<std::uint8_t>(v >> 8);
      data[27] = static_cast<std::uint8_t>(v);
      break;
    }
    case 3: {  // declared-length lie: a template field's length slot set
               // to 0 / tiny / enormous, so the compiled plan's record
               // length disagrees with what the data flowset carries
      constexpr std::uint16_t kLies[] = {0, 1, 3, 5, 0x00ff, 0xffff};
      const std::size_t pos = 30 + 4 * rng.bounded(8);
      if (pos + 1 >= data.size()) break;
      const std::uint16_t v = kLies[rng.bounded(6)];
      data[pos] = static_cast<std::uint8_t>(v >> 8);
      data[pos + 1] = static_cast<std::uint8_t>(v);
      break;
    }
    case 4: {  // template redefinition mid-stream: flip a field *type*,
               // so the persistent collector sees the same template id
               // re-announced with a different layout and must recompile
               // its plan (offsets shift for every later field)
      const std::size_t pos = 28 + 4 * rng.bounded(8);
      if (pos + 1 >= data.size()) break;
      const std::uint16_t v = static_cast<std::uint16_t>(rng.bounded(512));
      data[pos] = static_cast<std::uint8_t>(v >> 8);
      data[pos + 1] = static_cast<std::uint8_t>(v);
      break;
    }
    default:  // truncate at a pseudo-flowset boundary (4-byte aligned)
      data.resize(20 + 4 * rng.bounded(
                           static_cast<std::uint32_t>(data.size() / 4)));
      break;
  }
}

bool check(std::span<const std::uint8_t> input) {
  // Each reference collector is mirrored by a batch collector fed the
  // identical input sequence: ingest() (record-at-a-time walk) and
  // ingest_batch() (compiled-plan zero-copy decode) must agree on the
  // verdict, the statistics, and every decoded row — bit for bit — for
  // ARBITRARY bytes, not just well-formed exporter output. This is the
  // fuzz-shaped form of the differential tier at the decode entry point.
  static nf9::Collector persistent;  // stateful across iterations
  static nf9::Collector persistent_batch;
  nf9::Collector fresh;
  nf9::Collector fresh_batch;
  struct Pair {
    nf9::Collector* ref;
    nf9::Collector* batch;
  };
  for (const Pair p : {Pair{&persistent, &persistent_batch},
                       Pair{&fresh, &fresh_batch}}) {
    std::vector<FlowRecord> out;
    const std::uint64_t malformed_before = p.ref->stats().malformed_packets;
    // A template in this packet can release flowsets parked by earlier
    // iterations, so the record-per-byte bound covers those bytes too.
    const std::size_t budget = input.size() + p.ref->pending_bytes();
    const bool accepted = p.ref->ingest(input, out);
    if (out.size() > budget) return false;  // record-per-byte bound
    if (!accepted &&
        p.ref->stats().malformed_packets == malformed_before) {
      return false;  // rejection must be accounted
    }

    FlowBatch batch;
    if (p.batch->ingest_batch(input, batch) != accepted) return false;
    if (batch.size() != out.size()) return false;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (batch.record(i) != out[i]) return false;
    }
    if (p.batch->stats().malformed_packets !=
            p.ref->stats().malformed_packets ||
        p.batch->stats().records != p.ref->stats().records ||
        p.batch->stats().recovered_records !=
            p.ref->stats().recovered_records) {
      return false;
    }
  }
  // The persistent collectors must still decode pristine traffic: a
  // fuzzed packet may legitimately poison templates (that is
  // protocol-valid), so re-announce templates the way a real exporter
  // would and round-trip — through both decode paths.
  nf9::Exporter exporter{{.source_id = 991, .template_refresh_packets = 1}};
  std::vector<FlowRecord> records{sample_record(3, false),
                                  sample_record(4, true)};
  std::vector<FlowRecord> decoded;
  FlowBatch decoded_batch;
  for (const auto& packet : exporter.export_flows(records, 1574000000)) {
    if (!persistent.ingest(packet, decoded)) return false;
    if (!persistent_batch.ingest_batch(packet, decoded_batch)) return false;
  }
  if (decoded_batch.size() != decoded.size()) return false;
  return decoded.size() == records.size();
}

}  // namespace

#ifdef HAYSTACK_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)check({data, size});
  return 0;
}
#else
int main(int argc, char** argv) {
  const auto config = haystack::fuzz::parse_args(argc, argv);
  return haystack::fuzz::run_fuzz("fuzz_netflow_v9", config, build_corpus(),
                                  structure_mutate, check);
}
#endif
