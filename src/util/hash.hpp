// Stable, seedable hashing used for anonymization, sharding, and RNG stream
// derivation. std::hash is implementation-defined, so anything whose value
// must be reproducible across builds (test expectations, anonymized
// subscriber ids) goes through these functions instead.
#pragma once

#include <cstdint>
#include <string_view>

namespace haystack::util {

/// FNV-1a 64-bit over an arbitrary byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a 64-bit over a 64-bit integer (byte-wise, endian independent).
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t v) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Boost-style combine of two 64-bit hashes.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace haystack::util
