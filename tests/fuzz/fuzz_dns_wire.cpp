// Structure-aware fuzzer for the DNS message decoder.
//
// Corpus: valid responses produced by encode_response (A / AAAA / CNAME
// chains, multiple answers) plus one hand-built message using compression
// pointers. Structure-aware mutations target the places DNS parsers
// historically die: label length bytes (0, 63, 64, 0xc0), compression
// pointer injection (self-pointers, forward pointers, pointer chains),
// section count corruption, and rdlength corruption.
//
// Properties: decode_message() either returns a message or nullopt — never
// crashes or reads out of bounds (sanitizers enforce) — and any returned
// message respects its own invariants (every answer is one of the three
// supported RR types; names are bounded by the RFC 1035 255-octet limit).
#include <cstdint>
#include <span>
#include <vector>

#include "dns/dns_wire.hpp"
#include "fuzz_harness.hpp"

namespace {

using haystack::fuzz::Bytes;
using namespace haystack::dns;

std::vector<Bytes> build_corpus() {
  std::vector<Bytes> corpus;

  {  // CNAME chain + addresses, the resolver-feed shape.
    std::vector<WireRecord> answers;
    WireRecord cname;
    cname.name = Fqdn{"api.ring.com"};
    cname.type = WireType::kCname;
    cname.ttl = 300;
    cname.target = Fqdn{"api-vm.ec2compute.cloudsim.net"};
    answers.push_back(cname);
    WireRecord a;
    a.name = Fqdn{"api-vm.ec2compute.cloudsim.net"};
    a.type = WireType::kA;
    a.ttl = 60;
    a.address = *haystack::net::IpAddress::parse("52.1.2.3");
    answers.push_back(a);
    WireRecord aaaa;
    aaaa.name = Fqdn{"api.ring.com"};
    aaaa.type = WireType::kAaaa;
    aaaa.ttl = 60;
    aaaa.address = *haystack::net::IpAddress::parse("2001:db8::7");
    answers.push_back(aaaa);
    corpus.push_back(
        encode_response(0x1234, Fqdn{"api.ring.com"}, answers));
  }

  {  // Minimal response, no answers.
    corpus.push_back(encode_response(7, Fqdn{"x.example.com"}, {}));
  }

  {  // Hand-built message whose answer name is a compression pointer.
    Bytes m = {
        0x00, 0x01, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01,
        0x00, 0x00, 0x00, 0x00,
        1, 'a', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
        0x00, 0x01, 0x00, 0x01,
        0xc0, 0x0c,                       // pointer to offset 12
        0x00, 0x01, 0x00, 0x01,           // type A, class IN
        0x00, 0x00, 0x00, 0x3c,           // ttl
        0x00, 0x04, 192, 0, 2, 1,         // rdata
    };
    corpus.push_back(std::move(m));
  }
  return corpus;
}

void structure_mutate(Bytes& data, haystack::util::Pcg32& rng) {
  if (data.size() < 14) return;
  const auto body_pos = [&] {
    return 12 + rng.bounded(static_cast<std::uint32_t>(data.size() - 13));
  };
  switch (rng.bounded(5)) {
    case 0: {  // corrupt a section count (qd/an/ns/ar)
      const std::size_t pos = 4 + 2 * rng.bounded(4);
      data[pos] = static_cast<std::uint8_t>(rng.bounded(256));
      data[pos + 1] = static_cast<std::uint8_t>(rng.bounded(256));
      break;
    }
    case 1: {  // inject a compression pointer: self, forward, or random
      const std::size_t pos = body_pos();
      if (pos + 1 >= data.size()) break;
      const std::uint16_t target =
          rng.chance(0.4) ? static_cast<std::uint16_t>(pos)      // self
          : rng.chance(0.5)
              ? static_cast<std::uint16_t>(data.size() - 1)      // forward
              : static_cast<std::uint16_t>(rng.bounded(0x4000));  // random
      data[pos] = static_cast<std::uint8_t>(0xc0U | (target >> 8));
      data[pos + 1] = static_cast<std::uint8_t>(target);
      break;
    }
    case 2: {  // label length corruption: 0, max, over-max, reserved bits
      constexpr std::uint8_t kLens[] = {0, 1, 62, 63, 64, 0x80, 0xbf};
      data[body_pos()] = kLens[rng.bounded(7)];
      break;
    }
    case 3: {  // rdlength-style u16 corruption near the tail
      const std::size_t pos =
          data.size() - 2 -
          rng.bounded(static_cast<std::uint32_t>(
              std::min<std::size_t>(data.size() - 13, 12)));
      data[pos] = static_cast<std::uint8_t>(rng.bounded(256));
      data[pos + 1] = 0xff;
      break;
    }
    default:  // truncate inside the body
      data.resize(12 + rng.bounded(
                           static_cast<std::uint32_t>(data.size() - 12)));
      break;
  }
}

bool check(std::span<const std::uint8_t> input) {
  const auto msg = decode_message(input);
  if (!msg) return true;  // clean rejection
  for (const auto& rr : msg->answers) {
    if (rr.type != WireType::kA && rr.type != WireType::kAaaa &&
        rr.type != WireType::kCname) {
      return false;
    }
    if (rr.name.str().size() > 255 || rr.target.str().size() > 255) {
      return false;
    }
  }
  if (msg->question && msg->question->str().size() > 255) return false;
  return true;
}

}  // namespace

#ifdef HAYSTACK_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)check({data, size});
  return 0;
}
#else
int main(int argc, char** argv) {
  const auto config = haystack::fuzz::parse_args(argc, argv);
  return haystack::fuzz::run_fuzz("fuzz_dns_wire", config, build_corpus(),
                                  structure_mutate, check);
}
#endif
