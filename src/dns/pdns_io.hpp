// Passive-DNS bulk import/export — the MISP/Farsight-style flat dump.
//
// A production deployment periodically snapshots the passive-DNS database
// for rule rebuilds on other machines; the line-oriented format here is
// the smallest faithful carrier:
//
//   # haystack pdns v1
//   a     <name> <ip> <first-day> <last-day>
//   aaaa  <name> <ip> <first-day> <last-day>
//   cname <name> <target> <first-day> <last-day>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "dns/passive_dns.hpp"

namespace haystack::dns {

/// Writes every record of `db`.
void export_pdns(const PassiveDnsDb& db, std::ostream& os);

/// Reads records into a fresh database. Returns nullopt on syntax errors,
/// describing the problem via `error` when non-null.
[[nodiscard]] std::optional<PassiveDnsDb> import_pdns(
    std::istream& is, std::string* error = nullptr);

}  // namespace haystack::dns
