#include "net/prefix.hpp"

#include <algorithm>

namespace haystack::net {

namespace {

// Clears all bits of (hi,lo) below the first `length` bits of a 128-bit
// value laid out as two 64-bit halves.
void mask_128(std::uint64_t& hi, std::uint64_t& lo, unsigned length) {
  if (length >= 128) return;
  if (length >= 64) {
    const unsigned low_bits = length - 64;
    lo = low_bits == 0 ? 0 : (lo >> (64 - low_bits)) << (64 - low_bits);
  } else {
    lo = 0;
    hi = length == 0 ? 0 : (hi >> (64 - length)) << (64 - length);
  }
}

}  // namespace

Prefix Prefix::of(IpAddress base, unsigned length) noexcept {
  Prefix p;
  p.length_ = std::min(length, base.bit_width());
  if (base.is_v4()) {
    std::uint32_t v = base.v4_value();
    v = p.length_ == 0 ? 0 : (v >> (32 - p.length_)) << (32 - p.length_);
    p.base_ = IpAddress::v4(v);
  } else {
    std::uint64_t hi = base.hi();
    std::uint64_t lo = base.lo();
    mask_128(hi, lo, p.length_);
    p.base_ = IpAddress::v6(hi, lo);
  }
  return p;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  for (const char c : text.substr(slash + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + static_cast<unsigned>(c - '0');
    if (length > 128) return std::nullopt;
  }
  if (length > addr->bit_width()) return std::nullopt;
  return Prefix::of(*addr, length);
}

bool Prefix::contains(const IpAddress& addr) const noexcept {
  if (addr.family() != base_.family()) return false;
  return Prefix::of(addr, length_).base() == base_;
}

bool Prefix::covers(const Prefix& other) const noexcept {
  if (other.family() != family() || other.length_ < length_) return false;
  return contains(other.base_);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

Prefix aggregate_of(const IpAddress& addr) noexcept {
  return Prefix::of(addr, addr.is_v4() ? 24 : 56);
}

}  // namespace haystack::net
