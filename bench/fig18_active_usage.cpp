// Figure 18 reproduction: subscriber lines with *actively used*
// Alexa-enabled devices per hour, against the lines merely detected
// (active or idle) per hour and per day. Active use = more than 10 sampled
// packets toward the service in the hour (Sec. 7.1).
#include <iostream>
#include <set>
#include <vector>

#include "common.hpp"
#include "core/usage.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto alexa = world.service("Alexa Enabled");

  core::UsageClassifier usage{{.packet_threshold = 10}};
  struct HourRow {
    util::HourBin hour;
    std::size_t detected;
    std::size_t active;
  };
  std::vector<HourRow> hours;
  std::vector<std::size_t> daily;

  bench::WildSweep sweep{world};
  sweep.set_on_match([&](const simnet::WildObs& o, const core::Hit& hit,
                         util::HourBin) {
    if (hit.service == alexa) {
      usage.observe(o.line, hit.service, o.flow.packets);
    }
  });
  sweep.set_hourly([&](util::HourBin h, const bench::BinResult& bin) {
    const auto it = bin.by_service.find(alexa);
    const std::size_t detected =
        it == bin.by_service.end() ? 0 : it->second.size();
    std::set<std::uint64_t> active_lines;
    for (const auto& a : usage.end_hour()) active_lines.insert(a.subscriber);
    hours.push_back({h, detected, active_lines.size()});
  });
  sweep.set_daily([&](util::HourBin, const bench::BinResult& bin) {
    const auto it = bin.by_service.find(alexa);
    daily.push_back(it == bin.by_service.end() ? 0 : it->second.size());
  });
  // One week is enough for the diurnal shape (Nov 22–28 in the paper).
  sweep.run(util::day_start(7), util::kStudyHours);

  util::print_banner(std::cout,
                     "Figure 18: subscribers with active Alexa use per "
                     "hour (threshold >10 sampled pkts/h, population " +
                         util::fmt_count(world.lines()) + ")");
  util::TextTable table;
  table.header({"Hour", "Detected (any state)", "Actively used",
                "Active@15M"});
  for (const auto& row : hours) {
    if (row.hour % 3 != 0) continue;
    table.row({util::hour_label(row.hour), util::fmt_count(row.detected),
               util::fmt_count(row.active),
               util::fmt_count(static_cast<std::uint64_t>(
                   row.active * world.scale_to_paper()))});
  }
  table.print(std::cout);

  std::size_t peak_active = 0, trough_active = SIZE_MAX;
  for (const auto& row : hours) {
    peak_active = std::max(peak_active, row.active);
    trough_active = std::min(trough_active, row.active);
  }
  std::cout << "\nDaily detected (for reference): "
            << util::fmt_count(daily.empty() ? 0 : daily.front())
            << " lines/day. Active-use peak/trough per hour: "
            << util::fmt_count(peak_active) << "/"
            << util::fmt_count(trough_active)
            << ". Paper: ~27k active lines at daytime/weekend peaks (of "
               "15M), following the human diurnal pattern.\n";
  return 0;
}
