// Catalog invariants: the testbed roster and domain accounting must match
// the paper's Table 1 and Sec. 4 numbers exactly, because every downstream
// statistic is phrased against them.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "simnet/catalog.hpp"

namespace haystack::simnet {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(CatalogTest, Has56UniqueProducts) {
  EXPECT_EQ(catalog_.products().size(), 56u);
}

TEST_F(CatalogTest, Has96Instances) {
  EXPECT_EQ(catalog_.instances().size(), 96u);
}

TEST_F(CatalogTest, Has40Vendors) { EXPECT_EQ(catalog_.vendor_count(), 40u); }

TEST_F(CatalogTest, CategoryBreakdownMatchesTable1) {
  std::map<Category, unsigned> counts;
  for (const auto& p : catalog_.products()) ++counts[p.category];
  EXPECT_EQ(counts[Category::kSurveillance], 13u);
  EXPECT_EQ(counts[Category::kSmartHubs], 8u);
  EXPECT_EQ(counts[Category::kHomeAutomation], 14u);
  EXPECT_EQ(counts[Category::kVideo], 5u);
  EXPECT_EQ(counts[Category::kAudio], 6u);
  EXPECT_EQ(counts[Category::kAppliances], 10u);
}

TEST_F(CatalogTest, IoTSpecificDomainTotalIs434) {
  // Sec. 4.2.1: 434 IoT-specific domains (415 primary + 19 support).
  EXPECT_EQ(catalog_.domains().size(), 434u);
}

TEST_F(CatalogTest, SupportDomainsTotal19) {
  unsigned support = 0;
  for (const auto& d : catalog_.domains()) {
    if (d.role == DomainRole::kSupport) ++support;
  }
  EXPECT_EQ(support, 19u);
}

TEST_F(CatalogTest, GenericDomainsTotal90) {
  // 524 observed - 434 IoT-specific.
  EXPECT_EQ(catalog_.generic_domains().size(), 90u);
}

TEST_F(CatalogTest, DnsdbMissingDomainsTotal15With8Recoverable) {
  unsigned missing = 0;
  unsigned recoverable = 0;
  std::set<UnitId> recoverable_units;
  for (const auto& d : catalog_.domains()) {
    if (!d.dnsdb_missing) continue;
    ++missing;
    if (d.https) {
      ++recoverable;
      recoverable_units.insert(d.unit);
    }
  }
  EXPECT_EQ(missing, 15u);
  EXPECT_EQ(recoverable, 8u);
  // "8 out of 15 of the domains which belong to 5 devices".
  EXPECT_EQ(recoverable_units.size(), 5u);
}

TEST_F(CatalogTest, MonitoredPrimaryCountsFollowFig10) {
  // Spot-check the Fig. 10 domain counts.
  const auto* alexa = catalog_.unit_by_name("Alexa Enabled");
  ASSERT_NE(alexa, nullptr);
  EXPECT_EQ(alexa->primary_domains, 1u);

  const auto* amazon = catalog_.unit_by_name("Amazon Product");
  ASSERT_NE(amazon, nullptr);
  EXPECT_EQ(amazon->primary_domains, 33u);  // 33 beyond the AVS domain
  ASSERT_TRUE(amazon->parent.has_value());
  EXPECT_EQ(*amazon->parent, alexa->id);

  const auto* firetv = catalog_.unit_by_name("Fire TV");
  ASSERT_NE(firetv, nullptr);
  EXPECT_EQ(firetv->primary_domains, 34u);  // 34 beyond Amazon's
  ASSERT_TRUE(firetv->parent.has_value());
  EXPECT_EQ(*firetv->parent, amazon->id);

  const auto* samsung = catalog_.unit_by_name("Samsung IoT");
  ASSERT_NE(samsung, nullptr);
  EXPECT_EQ(samsung->primary_domains, 14u);

  const auto* samsung_tv = catalog_.unit_by_name("Samsung TV");
  ASSERT_NE(samsung_tv, nullptr);
  EXPECT_EQ(samsung_tv->primary_domains, 16u);
  ASSERT_TRUE(samsung_tv->parent.has_value());
  EXPECT_EQ(*samsung_tv->parent, samsung->id);
}

TEST_F(CatalogTest, DetectableUnitLevelCountsMatchPaper) {
  // 20 manufacturer rules + 11 product rules + platform rules (Sec. 4.3.2).
  unsigned platform = 0;
  unsigned manufacturer = 0;
  unsigned product = 0;
  for (const auto& u : catalog_.units()) {
    if (u.backend == BackendKind::kShared) continue;  // excluded backends
    if (u.name == "LG TV" || u.name == "WeMo Plug" || u.name == "Wink Hub") {
      continue;  // excluded for data reasons
    }
    switch (u.level) {
      case DetectionLevel::kPlatform:
        ++platform;
        break;
      case DetectionLevel::kManufacturer:
        ++manufacturer;
        break;
      case DetectionLevel::kProduct:
        ++product;
        break;
    }
  }
  EXPECT_EQ(manufacturer, 20u);
  EXPECT_EQ(product, 11u);
  EXPECT_EQ(platform, 6u);  // 6 platform-level units over 4 distinct backends
  EXPECT_EQ(platform + manufacturer + product, 37u);  // Fig. 10 rows
}

TEST_F(CatalogTest, CriticalDomainsCarryRealNames) {
  const auto* alexa = catalog_.unit_by_name("Alexa Enabled");
  const auto& alexa_domains = catalog_.domains_of(alexa->id);
  EXPECT_EQ(alexa_domains[0]->fqdn.str(), "avs-alexa.na.amazon.com");

  const auto* samsung = catalog_.unit_by_name("Samsung IoT");
  const auto& samsung_domains = catalog_.domains_of(samsung->id);
  EXPECT_EQ(samsung_domains[0]->fqdn.str(), "samsungotn.net");
}

TEST_F(CatalogTest, AllUnitDomainsValidAndUnique) {
  std::unordered_set<std::string> seen;
  for (const auto& d : catalog_.domains()) {
    EXPECT_TRUE(d.fqdn.valid()) << d.fqdn.str();
    EXPECT_TRUE(seen.insert(d.fqdn.str()).second)
        << "duplicate domain: " << d.fqdn.str();
  }
}

TEST_F(CatalogTest, IdleOnlyProductsAreTheSamsungAppliances) {
  std::set<std::string> idle_only;
  for (const auto& p : catalog_.products()) {
    if (p.idle_only) idle_only.insert(p.name);
  }
  EXPECT_EQ(idle_only, (std::set<std::string>{"Samsung Dryer",
                                              "Samsung Fridge"}));
}

TEST_F(CatalogTest, ExcludedBackendsMatchPaperList) {
  // Google Home, Apple TV, Lefun: shared. LG TV: 1/4 usable. WeMo/Wink:
  // insufficient data. SwitchBot: shared platform (one of the undetected
  // manufacturers).
  std::set<std::string> shared_units;
  for (const auto& u : catalog_.units()) {
    if (u.backend == BackendKind::kShared) shared_units.insert(u.name);
  }
  EXPECT_EQ(shared_units,
            (std::set<std::string>{"Apple TV", "Google Home", "Lefun Cam",
                                   "SwitchBot"}));
}

TEST_F(CatalogTest, EveryProductMapsToAUnit) {
  for (const auto& p : catalog_.products()) {
    ASSERT_TRUE(p.unit.has_value()) << p.name;
    EXPECT_LT(*p.unit, catalog_.units().size());
  }
}

TEST_F(CatalogTest, DomainsOfIndexConsistent) {
  std::size_t total = 0;
  for (const auto& u : catalog_.units()) {
    const auto& domains = catalog_.domains_of(u.id);
    total += domains.size();
    for (std::size_t i = 0; i < domains.size(); ++i) {
      EXPECT_EQ(domains[i]->unit, u.id);
      EXPECT_EQ(domains[i]->index, i);
    }
  }
  EXPECT_EQ(total, catalog_.domains().size());
}

}  // namespace
}  // namespace haystack::simnet
