#include "core/usage.hpp"

namespace haystack::core {

void UsageClassifier::observe(std::uint64_t subscriber, ServiceId service,
                              std::uint64_t packets) {
  hour_packets_[{subscriber, service}] += packets;
}

std::vector<UsageClassifier::ActiveUse> UsageClassifier::end_hour() {
  std::vector<ActiveUse> active;
  for (const auto& [key, packets] : hour_packets_) {
    if (packets > config_.packet_threshold) {
      active.push_back({key.subscriber, key.service, packets});
    }
  }
  hour_packets_.clear();
  return active;
}

}  // namespace haystack::core
