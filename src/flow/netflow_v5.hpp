// NetFlow v5 codec — the fixed-format legacy export still emitted by a
// large share of deployed routers. Production collectors at an ISP ingest
// a mix of v5 and v9; the methodology is format-agnostic once records are
// normalized, so the repository carries both.
//
// v5 is IPv4-only: 24-byte header + up to 30 fixed 48-byte records. The
// sampling interval travels in the header (bits 0..13 of the last field),
// not per record.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/gap_tracker.hpp"
#include "flow/record.hpp"
#include "flow/wire.hpp"
#include "obs/flight_recorder.hpp"

namespace haystack::flow::nf5 {

inline constexpr std::size_t kMaxRecordsPerPacket = 30;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kRecordBytes = 48;

/// Exporter configuration.
struct ExporterConfig {
  std::uint8_t engine_id = 1;
  /// 1-in-N sampling interval, stamped into the header (14 bits).
  std::uint16_t sampling = 1;
};

/// Stateless v5 exporter (no templates). IPv6 records are not encodable
/// and are skipped; the count of skipped records is returned via stats.
class Exporter {
 public:
  explicit Exporter(ExporterConfig config) noexcept : config_{config} {}

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t unix_secs);

  [[nodiscard]] std::uint32_t flows_sent() const noexcept {
    return flows_sent_;
  }
  [[nodiscard]] std::uint64_t skipped_ipv6() const noexcept {
    return skipped_ipv6_;
  }

 private:
  ExporterConfig config_;
  std::uint32_t flows_sent_ = 0;
  std::uint64_t skipped_ipv6_ = 0;
};

/// Decoder statistics.
struct CollectorStats {
  std::uint64_t packets = 0;
  std::uint64_t records = 0;
  std::uint64_t malformed_packets = 0;
  std::uint64_t sequence_gaps = 0;           ///< gap events observed
  std::uint64_t estimated_lost_flows = 0;    ///< flows presumed lost
  std::uint64_t reordered_packets = 0;       ///< late (replayed) datagrams
  std::uint64_t exporter_restarts = 0;       ///< sequence resets detected
};

/// v5 collector. Applies the header's sampling interval to every record.
/// Sequence tracking (the v5 sequence counts *flows*) runs on the shared
/// wraparound-correct SequenceTracker.
class Collector {
 public:
  bool ingest(std::span<const std::uint8_t> packet,
              std::vector<FlowRecord>& out);

  [[nodiscard]] const CollectorStats& stats() const noexcept {
    return stats_;
  }

  /// Stream health: flow-level loss estimate and restarts.
  [[nodiscard]] SourceHealth health() const {
    return {tracker_.received(), tracker_.lost(), restarts_};
  }

  /// Optional flight recorder for restart/gap/replay events (ISSUE 5);
  /// v5 has no config struct, so the recorder is attached post-hoc.
  void set_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  obs::FlightRecorder* recorder_ = nullptr;
  CollectorStats stats_;
  // Reordering by a few datagrams spans at most a few hundred flows
  // (30 flows per packet); anything further back is a restarted exporter.
  SequenceTracker tracker_{256};
  std::uint32_t restarts_ = 0;
};

}  // namespace haystack::flow::nf5
