#include "flow/delta_wire.hpp"

#include <limits>

#include "flow/wire.hpp"

namespace haystack::flow {

namespace {

bool fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

// Fixed-size portion of one serialized v1 row: u64 subscriber + u32 label
// + 2×u64 mask + u64 packets + u32 first_seen.
constexpr std::size_t kRowBytes = 8 + 4 + 8 + 8 + 8 + 4;
// Smallest possible v2 row: subscriber + label + flags + mask0 + u32
// packets + first_seen (only used to bound the row count pre-reserve).
constexpr std::size_t kMinRowBytesV2 = 8 + 4 + 1 + 8 + 4 + 4;

// v2 row flags.
constexpr std::uint8_t kFlagMask1 = 0x01;
constexpr std::uint8_t kFlagWidePackets = 0x02;
constexpr std::uint8_t kKnownFlags = kFlagMask1 | kFlagWidePackets;

}  // namespace

std::vector<std::uint8_t> encode_delta(const EvidenceDelta& delta) {
  ByteWriter w;
  w.u32(kDeltaMagic);
  w.u32(delta.version);
  w.u32(delta.collector);
  w.u32(delta.seq);
  w.u32(delta.epoch);
  w.u8(static_cast<std::uint8_t>(delta.kind));
  w.u64(delta.threshold_bits);
  w.u64(delta.flows);
  w.u64(delta.matched);
  w.u32(static_cast<std::uint32_t>(delta.labels.size()));
  for (const std::string& label : delta.labels) {
    w.u16(static_cast<std::uint16_t>(label.size()));
    w.bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
             label.size()});
  }
  w.u64(delta.rows.size());
  for (const DeltaRow& row : delta.rows) {
    w.u64(row.subscriber);
    w.u32(row.label);
    if (delta.version == kDeltaVersion) {
      w.u64(row.mask0);
      w.u64(row.mask1);
      w.u64(row.packets);
      w.u32(row.first_seen);
      continue;
    }
    std::uint8_t flags = 0;
    if (row.mask1 != 0) flags |= kFlagMask1;
    if (row.packets > 0xffffffffULL) flags |= kFlagWidePackets;
    w.u8(flags);
    w.u64(row.mask0);
    if (flags & kFlagMask1) w.u64(row.mask1);
    if (flags & kFlagWidePackets) {
      w.u64(row.packets);
    } else {
      w.u32(static_cast<std::uint32_t>(row.packets));
    }
    w.u32(row.first_seen);
  }
  return w.take();
}

bool decode_delta(std::span<const std::uint8_t> datagram, EvidenceDelta& out,
                  std::string* error) {
  ByteReader r{datagram};
  if (r.u32() != kDeltaMagic) return fail(error, "bad magic");
  const std::uint32_t version = r.u32();
  if (version != kDeltaVersion && version != kDeltaVersionCompact) {
    return fail(error, "unsupported version");
  }
  out.version = version;
  out.collector = r.u32();
  out.seq = r.u32();
  out.epoch = r.u32();
  const std::uint8_t kind = r.u8();
  if (!r.ok()) return fail(error, "truncated header");
  if (kind > static_cast<std::uint8_t>(DeltaKind::kSnapshot)) {
    return fail(error, "unknown delta kind");
  }
  out.kind = static_cast<DeltaKind>(kind);
  out.threshold_bits = r.u64();
  out.flows = r.u64();
  out.matched = r.u64();

  const std::uint32_t label_count = r.u32();
  if (!r.ok()) return fail(error, "truncated header");
  // Each label costs at least its 2-byte length prefix; a count the buffer
  // cannot possibly hold is rejected before any allocation.
  if (static_cast<std::size_t>(label_count) * 2 > r.remaining()) {
    return fail(error, "label count exceeds datagram");
  }
  out.labels.clear();
  out.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    const std::uint16_t len = r.u16();
    if (len > r.remaining()) return fail(error, "truncated label");
    std::string label(len, '\0');
    if (!r.bytes({reinterpret_cast<std::uint8_t*>(label.data()), label.size()})) {
      return fail(error, "truncated label");
    }
    out.labels.push_back(std::move(label));
  }

  const std::uint64_t row_count = r.u64();
  if (!r.ok()) return fail(error, "truncated row count");
  // Strict: a delta is a single datagram, so the row section must consume
  // exactly the remaining bytes — this rejects both truncation (including
  // ImpairedLink tail-cuts) and trailing garbage. The division guards keep
  // the products from wrapping on an adversarial count. v2 rows are
  // variable-length, so the exact-fit check happens after the walk.
  if (version == kDeltaVersion) {
    if (row_count > r.remaining() / kRowBytes ||
        row_count * kRowBytes != r.remaining()) {
      return fail(error, "row section size mismatch");
    }
  } else if (row_count > r.remaining() / kMinRowBytesV2) {
    return fail(error, "row section size mismatch");
  }
  out.rows.clear();
  out.rows.reserve(static_cast<std::size_t>(row_count));
  for (std::uint64_t i = 0; i < row_count; ++i) {
    DeltaRow row;
    row.subscriber = r.u64();
    row.label = r.u32();
    if (version == kDeltaVersion) {
      row.mask0 = r.u64();
      row.mask1 = r.u64();
      row.packets = r.u64();
      row.first_seen = r.u32();
    } else {
      const std::uint8_t flags = r.u8();
      if (!r.ok()) return fail(error, "truncated rows");
      if ((flags & ~kKnownFlags) != 0) {
        return fail(error, "unknown row flags");
      }
      row.mask0 = r.u64();
      row.mask1 = (flags & kFlagMask1) ? r.u64() : 0;
      row.packets = (flags & kFlagWidePackets) ? r.u64() : r.u32();
      row.first_seen = r.u32();
      // Canonical widths keep decode→encode byte-identical: a narrow value
      // in a wide field (or a present-but-zero mask word) is rejected.
      if ((flags & kFlagMask1) && row.mask1 == 0) {
        return fail(error, "non-canonical mask width");
      }
      if ((flags & kFlagWidePackets) && row.packets <= 0xffffffffULL) {
        return fail(error, "non-canonical packet width");
      }
    }
    if (row.label >= label_count) return fail(error, "label index out of range");
    out.rows.push_back(row);
  }
  if (!r.ok() || r.remaining() != 0) return fail(error, "truncated rows");
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace haystack::flow
