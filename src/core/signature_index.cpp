#include "core/signature_index.hpp"

#include <bit>
#include <map>
#include <string>
#include <unordered_map>

#include "net/prefix.hpp"

namespace haystack::core {

void SignatureIndex::build(const Hitlist& hitlist, const RuleSet& rules,
                           InternTable* domains) {
  // Rule names first, in rule order, so interned rule handles are dense
  // and reproducible (HSCK v2 relies on this ordering contract only
  // through the serialized table itself, but density keeps it compact).
  if (domains != nullptr) {
    for (const auto& rule : rules.rules) {
      domains->intern(rule.name);
    }
    for (const auto& rule : rules.rules) {
      for (const std::uint16_t idx : rule.monitored_indices) {
        domains->intern(rule.name + "/" + std::to_string(idx));
      }
    }
  }

  days_ = util::kStudyDays;  // Hitlist's fixed day range

  // Pass 1: intern every distinct (IP, port) endpoint to a dense id.
  struct Endpoint {
    net::IpAddress ip;
    std::uint16_t port;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> v4_id;
  std::map<std::pair<net::IpAddress, std::uint16_t>, std::uint32_t> v6_id;
  std::vector<Endpoint> endpoints;
  hitlist.for_each([&](util::DayBin, const net::IpAddress& ip,
                       std::uint16_t port, const Hit&) {
    if (ip.is_v4()) {
      const std::uint64_t key = (std::uint64_t{ip.v4_value()} << 16) | port;
      if (v4_id.emplace(key, static_cast<std::uint32_t>(endpoints.size()))
              .second) {
        endpoints.push_back({ip, port});
      }
    } else {
      if (v6_id.emplace(std::pair{ip, port},
                        static_cast<std::uint32_t>(endpoints.size()))
              .second) {
        endpoints.push_back({ip, port});
      }
    }
  });
  endpoint_count_ = endpoints.size();
  stride_ = endpoint_count_;

  // IPv4 flat table: power-of-two, load factor <= 0.5.
  v4_table_.clear();
  if (!v4_id.empty()) {
    const std::size_t slots =
        std::bit_ceil(std::max<std::size_t>(8, v4_id.size() * 2));
    v4_table_.assign(slots, V4Slot{});
    v4_mask_ = slots - 1;
    v4_shift_ =
        64U - static_cast<unsigned>(std::countr_zero(slots));
    for (const auto& [key, id] : v4_id) {
      std::size_t slot = static_cast<std::size_t>((key * kFib) >> v4_shift_);
      while (v4_table_[slot].key != kEmptyKey) slot = (slot + 1) & v4_mask_;
      v4_table_[slot] = {key, id};
    }
  }

  // IPv6 route: /128 prefix -> group index; one port list per address.
  v6_route_ = net::PrefixTrie<std::uint32_t>{};
  v6_ports_.clear();
  std::map<net::IpAddress, std::uint32_t> v6_group;
  for (const auto& [key, id] : v6_id) {
    const auto [git, inserted] = v6_group.emplace(
        key.first, static_cast<std::uint32_t>(v6_ports_.size()));
    if (inserted) {
      v6_ports_.emplace_back();
      v6_route_.insert(net::Prefix::of(key.first, 128), git->second);
    }
    v6_ports_[git->second].emplace_back(key.second, id);
  }

  // Pass 2: fill the day-major signature table.
  sig_.assign(static_cast<std::size_t>(days_) * stride_, kNoSig);
  hitlist.for_each([&](util::DayBin day, const net::IpAddress& ip,
                       std::uint16_t port, const Hit& hit) {
    std::uint32_t id;
    if (ip.is_v4()) {
      id = v4_id.at((std::uint64_t{ip.v4_value()} << 16) | port);
    } else {
      id = v6_id.at(std::pair{ip, port});
    }
    const Signature packed =
        (Signature{hit.service} << 16) | hit.domain_index;
    // (service, domain_index) == (0xffff, 0xffff) would alias the miss
    // sentinel; the catalog never gets near 65535 services, but skip
    // rather than corrupt if it ever did.
    if (packed == kNoSig) return;
    sig_[static_cast<std::size_t>(day) * stride_ + id] = packed;
  });
}

}  // namespace haystack::core
