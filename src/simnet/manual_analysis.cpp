#include "simnet/manual_analysis.hpp"

#include "core/infra_classifier.hpp"

namespace haystack::simnet {

std::vector<core::ServiceSpec> build_service_specs(const Backend& backend) {
  const Catalog& catalog = backend.catalog();
  std::vector<core::ServiceSpec> specs;
  specs.reserve(catalog.units().size());

  for (const DetectionUnit& unit : catalog.units()) {
    core::ServiceSpec spec;
    spec.id = unit.id;
    spec.name = unit.name;
    switch (unit.level) {
      case DetectionLevel::kPlatform:
        spec.level = core::Level::kPlatform;
        break;
      case DetectionLevel::kManufacturer:
        spec.level = core::Level::kManufacturer;
        break;
      case DetectionLevel::kProduct:
        spec.level = core::Level::kProduct;
        break;
    }
    if (unit.parent) spec.parent = *unit.parent;
    spec.critical_sufficient = unit.name == "Samsung IoT";

    unsigned primary_seen = 0;
    for (const UnitDomain* dom : catalog.domains_of(unit.id)) {
      core::ServiceDomain sd;
      sd.fqdn = dom->fqdn;
      sd.port = dom->port;
      sd.https = dom->https;
      if (dom->https) sd.banner = backend.banner_checksum(dom->fqdn);
      sd.support = dom->role == DomainRole::kSupport;
      sd.iot_exclusive = dom->role != DomainRole::kNonExclusive;
      if (dom->role == DomainRole::kPrimary) {
        if (primary_seen == unit.critical_domain) {
          spec.critical_index = static_cast<unsigned>(spec.domains.size());
        }
        ++primary_seen;
      }
      spec.domains.push_back(std::move(sd));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

core::DomainKnowledge build_domain_knowledge(const Catalog& catalog) {
  core::DomainKnowledge knowledge;
  for (const UnitDomain& dom : catalog.domains()) {
    const dns::Fqdn sld = dom.fqdn.registrable();
    if (dom.role == DomainRole::kSupport) {
      knowledge.support_slds.insert(sld);
    } else {
      knowledge.manufacturer_slds.insert(sld);
    }
  }
  for (const dns::Fqdn& generic : catalog.generic_domains()) {
    knowledge.generic_fqdns.insert(generic);
    const dns::Fqdn sld = generic.registrable();
    if (!knowledge.manufacturer_slds.contains(sld)) {
      knowledge.generic_slds.insert(sld);
    }
  }
  return knowledge;
}

std::vector<dns::Fqdn> observed_domains(const Catalog& catalog) {
  std::vector<dns::Fqdn> out;
  out.reserve(catalog.domains().size() +
              catalog.generic_domains().size());
  for (const UnitDomain& dom : catalog.domains()) out.push_back(dom.fqdn);
  for (const dns::Fqdn& generic : catalog.generic_domains()) {
    out.push_back(generic);
  }
  return out;
}

core::RuleSet build_ruleset(const Backend& backend,
                            const core::RuleGenConfig& config) {
  const core::InfraClassifier classifier{backend.pdns(), backend.scans(),
                                         config.first_day, config.last_day};
  return core::generate_rules(build_service_specs(backend), classifier,
                              config);
}

}  // namespace haystack::simnet
