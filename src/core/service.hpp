// IoT service model — the unit of detection.
//
// A ServiceSpec is the product of the paper's "manual analysis" step: the
// grouping of ground-truth-observed domains into an IoT service (one per
// platform / manufacturer / product detection target), with side
// information such as the critical domain (avs-alexa.*.amazon.com,
// samsungotn.net) and the detection hierarchy (Fire TV under Amazon
// Product under Alexa Enabled).
//
// Everything downstream (infrastructure classification, hitlist, rules,
// detector) consumes ServiceSpecs; nothing in core depends on the
// simulation — feed it specs derived from real testbed captures and it
// runs unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/fqdn.hpp"

namespace haystack::core {

/// Detection granularity (Sec. 4.3.1), coarse to fine.
enum class Level : std::uint8_t { kPlatform, kManufacturer, kProduct };

[[nodiscard]] constexpr std::string_view level_name(Level l) noexcept {
  switch (l) {
    case Level::kPlatform:
      return "Platform";
    case Level::kManufacturer:
      return "Manufacturer";
    case Level::kProduct:
      return "Product";
  }
  return "?";
}

/// Service identifier: index into the spec list.
using ServiceId = std::uint16_t;

/// One domain observed for a service in the ground truth.
struct ServiceDomain {
  dns::Fqdn fqdn;
  std::uint16_t port = 443;
  bool https = false;
  /// HTTPS banner checksum recorded by the ground-truth probe; enables the
  /// certificate-scan fallback when passive DNS has no record.
  std::optional<std::uint64_t> banner;
  /// True for support domains (complementary third-party services).
  bool support = false;
  /// False when the domain is known to be contacted by non-IoT products of
  /// the same vendor too (the paper's non-exclusive Samsung domains) —
  /// observed and classified, but never monitored.
  bool iot_exclusive = true;
};

/// A candidate IoT service.
struct ServiceSpec {
  ServiceId id = 0;
  std::string name;
  Level level = Level::kManufacturer;
  /// Primary-domain candidates (classification decides which become
  /// monitored). Order is stable; `critical_index` points into it.
  std::vector<ServiceDomain> domains;
  /// Detection-hierarchy parent (must be detected before this service).
  std::optional<ServiceId> parent;
  /// Index of the critical domain within `domains`.
  unsigned critical_index = 0;
  /// When true, observing the critical domain alone suffices for detection
  /// regardless of the coverage threshold (Samsung's firmware-update
  /// domain, Sec. 4.3.2).
  bool critical_sufficient = false;
};

}  // namespace haystack::core
