// Compiled template-plan tests (ISSUE 6 tentpole + satellite 3).
//
// Pins the compile-time contract of flow::plan — which templates compile
// `fast`, how unsupported and duplicate fields map to ops — and the
// execute-time equivalence against the record-at-a-time reference walk.
// Several cases are named fuzz regressions: inputs the structure-aware
// fuzzers surfaced while the zero-copy decode path was being built, kept
// here so they can never quietly regress.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "flow/flow_batch.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/template_plan.hpp"

namespace haystack::flow::plan {
namespace {

// Field numbers shared by v9 and IPFIX (the v9 type space seeds the IPFIX
// IE space).
constexpr std::uint16_t kInBytes = 1;
constexpr std::uint16_t kInPkts = 2;
constexpr std::uint16_t kProtocol = 4;
constexpr std::uint16_t kL4DstPort = 11;
constexpr std::uint16_t kIpv4SrcAddr = 8;
constexpr std::uint16_t kIpv4DstAddr = 12;
constexpr std::uint16_t kFirstSwitched = 22;
constexpr std::uint16_t kFlowStartMs = 152;

TEST(TemplatePlan, CompilesFixedV9TemplateWithCorrectOffsets) {
  const std::vector<WireField> fields{
      {kIpv4SrcAddr, 4, false}, {kIpv4DstAddr, 4, false},
      {kL4DstPort, 2, false},   {kInPkts, 4, false},
      {kInBytes, 8, false},
  };
  const CompiledPlan plan = compile_netflow_v9(fields);
  ASSERT_TRUE(plan.fast);
  EXPECT_EQ(plan.record_len, 22u);
  ASSERT_EQ(plan.ops.size(), 5u);
  EXPECT_EQ(plan.ops[0].dst, Dst::kSrcV4);
  EXPECT_EQ(plan.ops[0].offset, 0u);
  EXPECT_EQ(plan.ops[1].dst, Dst::kDstV4);
  EXPECT_EQ(plan.ops[1].offset, 4u);
  EXPECT_EQ(plan.ops[2].dst, Dst::kDstPort);
  EXPECT_EQ(plan.ops[2].offset, 8u);
  EXPECT_EQ(plan.ops[3].dst, Dst::kPackets32);
  EXPECT_EQ(plan.ops[3].offset, 10u);
  EXPECT_EQ(plan.ops[4].dst, Dst::kBytes64);
  EXPECT_EQ(plan.ops[4].offset, 14u);
}

TEST(TemplatePlan, IpfixVariableLengthForcesReferenceWalk) {
  // Fuzz regression: an IPFIX template with a variable-length IE
  // (declared length 0xffff) has per-record framing the fixed-offset plan
  // cannot represent; it must compile slow, never a 65535-byte field.
  const std::vector<WireField> fields{
      {kIpv4DstAddr, 4, false},
      {292, 0xffff, false},  // subTemplateList, variable length
      {kL4DstPort, 2, false},
  };
  const CompiledPlan plan = compile_ipfix(fields);
  EXPECT_FALSE(plan.fast);
  EXPECT_TRUE(plan.ops.empty());

  // The same declared length in v9 *is* a fixed 65535-byte field (v9 has
  // no variable-length framing): one such field alone still fits u16
  // offsets and compiles fast.
  const std::vector<WireField> v9_fields{{999, 0xffff, false}};
  const CompiledPlan v9_plan = compile_netflow_v9(v9_fields);
  EXPECT_TRUE(v9_plan.fast);
  EXPECT_EQ(v9_plan.record_len, 0xffffu);
  EXPECT_TRUE(v9_plan.ops.empty());  // unknown type: skipped, no op
}

TEST(TemplatePlan, RecordsPastU16OffsetsCompileSlow) {
  // Fuzz regression ("declared-length lies"): two 65535-byte paddings
  // push a later field's offset past what u16 ops can encode. Emitting a
  // truncated offset would decode from the wrong bytes; the plan must
  // refuse and route through the reference walk instead.
  const std::vector<WireField> fields{
      {998, 0xffff, false},
      {999, 0xffff, false},
      {kIpv4DstAddr, 4, false},
  };
  const CompiledPlan plan = compile_netflow_v9(fields);
  EXPECT_FALSE(plan.fast);
  EXPECT_TRUE(plan.ops.empty());
}

TEST(TemplatePlan, EnterpriseAndUnsupportedFieldsSkipAtDeclaredLength) {
  // Enterprise IEs and (type, length) pairs the reference decoder does
  // not understand get no op, but their declared length still advances
  // the offset — exactly the reference's skip-at-declared-length rule.
  const std::vector<WireField> fields{
      {kIpv4SrcAddr, 4, true},    // enterprise bit: skip even a known id
      {kIpv4DstAddr, 8, false},   // length lie: v4 address must be 4 bytes
      {kProtocol, 1, false},
      {kFlowStartMs, 4, false},   // IPFIX ms IE must be 8 bytes
      {kL4DstPort, 2, false},
  };
  const CompiledPlan plan = compile_ipfix(fields);
  ASSERT_TRUE(plan.fast);
  EXPECT_EQ(plan.record_len, 4u + 8u + 1u + 4u + 2u);
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[0].dst, Dst::kProto);
  EXPECT_EQ(plan.ops[0].offset, 12u);
  EXPECT_EQ(plan.ops[1].dst, Dst::kDstPort);
  EXPECT_EQ(plan.ops[1].offset, 17u);
}

TEST(TemplatePlan, TimestampFieldsAreCodecSpecific) {
  // FIRST_SWITCHED is v9-only; flowStartMilliseconds is IPFIX-only. Each
  // codec must skip the other's timestamp instead of mis-decoding it.
  const std::vector<WireField> v9_time{{kFirstSwitched, 4, false}};
  EXPECT_EQ(compile_netflow_v9(v9_time).ops.size(), 1u);
  EXPECT_TRUE(compile_ipfix(v9_time).ops.empty());

  const std::vector<WireField> ipfix_time{{kFlowStartMs, 8, false}};
  EXPECT_TRUE(compile_netflow_v9(ipfix_time).ops.empty());
  EXPECT_EQ(compile_ipfix(ipfix_time).ops.size(), 1u);
}

TEST(TemplatePlan, EmptyTemplateCompilesFastWithZeroRecordLen) {
  // Fuzz regression: a zero-field template compiles to record_len == 0,
  // which violates execute()'s precondition (it would divide by zero).
  // The collectors guard it — a fast plan with record_len 0 makes the
  // data flowset malformed, exactly like the reference walk's "record
  // consumed no bytes" check. This pins the shape the guard keys on.
  const CompiledPlan plan = compile_netflow_v9({});
  EXPECT_TRUE(plan.fast);
  EXPECT_EQ(plan.record_len, 0u);
  EXPECT_TRUE(plan.ops.empty());
}

TEST(TemplatePlan, DuplicateFieldsLastWriteWins) {
  // Duplicate fields each get an op in template order, so execute()'s
  // later op overwrites the earlier — matching the reference walk, which
  // assigns the record member once per field occurrence.
  const std::vector<WireField> fields{
      {kIpv4DstAddr, 4, false},
      {kIpv4DstAddr, 4, false},
  };
  const CompiledPlan plan = compile_netflow_v9(fields);
  ASSERT_TRUE(plan.fast);
  ASSERT_EQ(plan.ops.size(), 2u);

  const std::array<std::uint8_t, 8> body{
      0x01, 0x02, 0x03, 0x04,   // first occurrence
      0xAA, 0xBB, 0xCC, 0xDD};  // second occurrence: must win
  FlowBatch batch;
  ASSERT_EQ(execute(plan, body, batch), 1u);
  EXPECT_EQ(batch.dst[0], net::IpAddress::v4(0xAABBCCDDu));
}

TEST(TemplatePlan, ExecuteFillsDefaultsAndIgnoresTrailingPartialRecord) {
  const std::vector<WireField> fields{{kL4DstPort, 2, false}};
  const CompiledPlan plan = compile_netflow_v9(fields);
  ASSERT_TRUE(plan.fast);

  // 2 full records + 1 trailing byte: the partial record is padding, as
  // in the reference walk.
  const std::array<std::uint8_t, 5> body{0x01, 0xBB, 0x00, 0x50, 0xFF};
  FlowBatch batch;
  ASSERT_EQ(execute(plan, body, batch), 2u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.dst_port[0], 0x01BBu);
  EXPECT_EQ(batch.dst_port[1], 0x0050u);
  // Untouched columns carry FlowRecord's member defaults.
  for (std::size_t i = 0; i < 2; ++i) {
    const FlowRecord rec = batch.record(i);
    const FlowRecord fresh;
    EXPECT_EQ(rec.key.proto, fresh.key.proto);      // 6
    EXPECT_EQ(rec.sampling, fresh.sampling);        // 1
    EXPECT_EQ(rec.packets, fresh.packets);
    EXPECT_EQ(rec.key.src, fresh.key.src);
    EXPECT_EQ(rec.key.dst_port, 0u + batch.dst_port[i]);
  }
}

// ---------------------------------------------------------------------------
// Wire-level equivalence: for real exporter traffic, ingest_batch rows
// must reconstruct bit-for-bit the FlowRecords the reference walk emits.
// (The differential tier sweeps this at pipeline scale; this is the
// narrow, debuggable version.)

std::vector<FlowRecord> sample_records(std::size_t n) {
  std::vector<FlowRecord> records;
  for (std::uint32_t i = 0; i < n; ++i) {
    FlowRecord rec;
    if (i % 3 == 0) {
      rec.key.src = net::IpAddress::v6(0x20010db8ULL << 32, i);
      rec.key.dst = net::IpAddress::v6(0x20010db8ULL << 32, 0x10000ULL + i);
    } else {
      rec.key.src = net::IpAddress::v4(0x0a000000U + i);
      rec.key.dst = net::IpAddress::v4(0x34000000U + i * 7);
    }
    rec.key.src_port = static_cast<std::uint16_t>(30000 + i);
    rec.key.dst_port = 443;
    rec.key.proto = 6;
    rec.tcp_flags = 0x1b;
    rec.packets = 1 + i;
    rec.bytes = 100 + i * 11;
    rec.start_ms = i * 1000;
    rec.end_ms = i * 1000 + 400;
    rec.sampling = 1000;
    records.push_back(rec);
  }
  return records;
}

void expect_same_records(const std::vector<FlowRecord>& reference,
                         const FlowBatch& batch) {
  ASSERT_EQ(batch.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const FlowRecord& a = reference[i];
    const FlowRecord b = batch.record(i);
    EXPECT_EQ(a.key.src, b.key.src) << "row " << i;
    EXPECT_EQ(a.key.dst, b.key.dst) << "row " << i;
    EXPECT_EQ(a.key.src_port, b.key.src_port) << "row " << i;
    EXPECT_EQ(a.key.dst_port, b.key.dst_port) << "row " << i;
    EXPECT_EQ(a.key.proto, b.key.proto) << "row " << i;
    EXPECT_EQ(a.tcp_flags, b.tcp_flags) << "row " << i;
    EXPECT_EQ(a.packets, b.packets) << "row " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "row " << i;
    EXPECT_EQ(a.start_ms, b.start_ms) << "row " << i;
    EXPECT_EQ(a.end_ms, b.end_ms) << "row " << i;
    EXPECT_EQ(a.sampling, b.sampling) << "row " << i;
  }
}

TEST(TemplatePlan, NetflowV9BatchMatchesReferenceWalk) {
  nf9::Exporter exporter{{.source_id = 5, .sampling = 1000,
                          .template_refresh_packets = 1}};
  const auto records = sample_records(60);
  const auto packets = exporter.export_flows(records, 1574000000);

  nf9::Collector ref;
  nf9::Collector fast;
  std::vector<FlowRecord> ref_out;
  FlowBatch batch;
  for (const auto& packet : packets) {
    ASSERT_TRUE(ref.ingest(packet, ref_out));
    ASSERT_TRUE(fast.ingest_batch(packet, batch));
  }
  expect_same_records(ref_out, batch);
  EXPECT_EQ(ref.stats().records, fast.stats().records);
  EXPECT_EQ(ref.stats().templates_learned, fast.stats().templates_learned);
}

TEST(TemplatePlan, IpfixBatchMatchesReferenceWalk) {
  ipfix::Exporter exporter{{.observation_domain = 9, .sampling = 500}};
  const auto records = sample_records(60);
  const auto packets = exporter.export_flows(records, 1574000000);

  ipfix::Collector ref;
  ipfix::Collector fast;
  std::vector<FlowRecord> ref_out;
  FlowBatch batch;
  for (const auto& packet : packets) {
    ASSERT_TRUE(ref.ingest(packet, ref_out));
    ASSERT_TRUE(fast.ingest_batch(packet, batch));
  }
  expect_same_records(ref_out, batch);
  EXPECT_EQ(ref.stats().records, fast.stats().records);
}

TEST(TemplatePlan, TemplateRedefinitionMidStreamRecompilesThePlan) {
  // Fuzz regression: a template id re-announced with a different layout
  // mid-stream must recompile the plan; decoding later data under the
  // stale plan reads the wrong offsets. Two exporters share template id
  // 256 with different record layouts (sampling stamped vs not), and the
  // batch collector must track the redefinition exactly as the reference
  // does.
  const auto records = sample_records(8);

  nf9::Exporter first{{.source_id = 3, .sampling = 1,
                       .template_refresh_packets = 1}};
  nf9::Exporter second{{.source_id = 3, .sampling = 77,
                        .template_refresh_packets = 1}};

  nf9::Collector ref;
  nf9::Collector fast;
  std::vector<FlowRecord> ref_out;
  FlowBatch batch;
  for (auto* exporter : {&first, &second}) {
    for (const auto& packet :
         exporter->export_flows(records, 1574000000)) {
      ref.ingest(packet, ref_out);
      fast.ingest_batch(packet, batch);
    }
  }
  expect_same_records(ref_out, batch);
}

}  // namespace
}  // namespace haystack::flow::plan
