// Reference-model differential tests (ISSUE 1 tentpole).
//
// Each scenario builds a randomized rule universe (service count, domain
// counts, hierarchy edges, critical-domain flags all drawn from a seeded
// Pcg32), generates a randomized observation stream against it (hitlist
// hits, near-misses on port, and plain misses), and then replays the
// identical stream through:
//
//   - Detector                  (the optimized streaming engine),
//   - ReferenceDetector         (the naive log-replay oracle),
//   - ShardedDetector           (shards in {1, 2, 4, 8, 16}), via
//                               process_batch at several batch sizes and
//                               via the single-observation observe path.
//
// Agreement is asserted bit-for-bit: the set of (subscriber, service)
// evidence pairs, every Evidence field (mask words, distinct count,
// packets, first_seen, satisfied_hour), and the hierarchy-aware detection
// hour for every (subscriber, service) combination.
//
// These tests are also the designated TSan workload for process_batch:
// `HAYSTACK_SANITIZE=thread` builds run them to prove the partition-per-
// shard scheme really has no cross-thread evidence sharing (see
// tests/run_sanitizers.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <span>
#include <tuple>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/reference_detector.hpp"
#include "core/sharded_detector.hpp"
#include "flow/impairment.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v9.hpp"
#include "pipeline/ingest.hpp"
#include "util/rng.hpp"

namespace haystack::core {
namespace {

constexpr unsigned kShardSweep[] = {1, 2, 4, 8, 16};

struct Scenario {
  RuleSet rules;
  DetectorConfig config;
  std::vector<Observation> stream;
  SubscriberKey subscriber_pool = 0;  ///< subscribers are 1..pool
};

net::IpAddress service_ip(ServiceId s, std::uint16_t m) {
  return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
}

// Randomized rule universe + observation stream. Everything derives from
// `seed`, so a failure reproduces from the gtest parameter alone.
Scenario make_scenario(std::uint64_t seed) {
  util::Pcg32 rng = util::derive_rng(seed, 0xd1ff, 0);
  Scenario sc;

  // Threshold sweep: exercise the floor(D*N) boundary at several D,
  // including the degenerate D=1.0 (all domains) and tiny-D (=> 1 domain).
  constexpr double kThresholds[] = {0.1, 0.25, 0.4, 0.6, 0.8, 1.0};
  sc.config.threshold = kThresholds[seed % std::size(kThresholds)];

  const unsigned n_services = 3 + rng.bounded(8);
  for (unsigned s = 0; s < n_services; ++s) {
    DetectionRule rule;
    rule.service = static_cast<ServiceId>(s);
    rule.name = "svc" + std::to_string(s);
    rule.level = Level::kManufacturer;
    rule.monitored_domains = 1 + rng.bounded(20);
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      rule.monitored_indices.push_back(m);
    }
    // Parents always have a smaller id, so the hierarchy is acyclic;
    // chains up to the full service count are possible.
    if (s > 0 && rng.chance(0.5)) {
      rule.parent = static_cast<ServiceId>(rng.bounded(s));
    }
    if (rng.chance(0.4)) {
      rule.critical_monitored_index =
          static_cast<std::uint16_t>(rng.bounded(rule.monitored_domains));
      rule.critical_sufficient = rng.chance(0.5);
    }
    sc.rules.rules.push_back(std::move(rule));
  }

  // Hitlist over the days the stream can touch (hours < 72 => days 0..2).
  for (const auto& rule : sc.rules.rules) {
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      for (util::DayBin day = 0; day < 3; ++day) {
        sc.rules.hitlist.add(service_ip(rule.service, m), 443, day,
                             {rule.service, m});
      }
    }
  }

  sc.subscriber_pool = 1 + rng.bounded(150);
  const std::size_t n_obs = 500 + rng.bounded(3500);
  sc.stream.reserve(n_obs);
  for (std::size_t i = 0; i < n_obs; ++i) {
    Observation obs;
    obs.subscriber = 1 + rng.bounded(static_cast<std::uint32_t>(
                             sc.subscriber_pool));
    obs.packets = 1 + rng.bounded(100);
    obs.hour = rng.bounded(72);
    const std::uint32_t kind = rng.bounded(10);
    const auto s = static_cast<ServiceId>(rng.bounded(n_services));
    const auto m = static_cast<std::uint16_t>(
        rng.bounded(sc.rules.rules[s].monitored_domains));
    if (kind < 7) {
      obs.server = service_ip(s, m);  // hitlist hit
      obs.port = 443;
    } else if (kind < 9) {
      obs.server = service_ip(s, m);  // right IP, wrong port
      obs.port = static_cast<std::uint16_t>(1024 + rng.bounded(50000));
    } else {
      obs.server = net::IpAddress::v4(0xC6336400U + rng.bounded(256));
      obs.port = 443;  // miss entirely
    }
    sc.stream.push_back(obs);
  }
  return sc;
}

// Canonical bit-for-bit snapshot of a detector's evidence state.
using EvidenceRow =
    std::tuple<SubscriberKey, ServiceId, std::uint64_t, std::uint64_t,
               std::uint16_t, std::uint64_t, util::HourBin, util::HourBin>;

template <typename DetectorT>
std::vector<EvidenceRow> snapshot(const DetectorT& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence([&](SubscriberKey sub, ServiceId svc,
                            const Evidence& ev) {
    rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                      ev.packets(), ev.first_seen(), ev.satisfied_hour());
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Detection verdicts for the full (subscriber, service) cross product.
template <typename DetectorT>
std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
detection_map(const DetectorT& det, const Scenario& sc) {
  std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
      out;
  for (SubscriberKey sub = 1; sub <= sc.subscriber_pool; ++sub) {
    for (const auto& rule : sc.rules.rules) {
      out[{sub, rule.service}] = det.detection_hour(sub, rule.service);
    }
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeBitForBit) {
  const Scenario sc = make_scenario(GetParam());

  // Baseline: the plain streaming detector, one observe per flow.
  Detector baseline{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) {
    baseline.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                     obs.hour);
  }
  const auto baseline_rows = snapshot(baseline);
  const auto baseline_verdicts = detection_map(baseline, sc);

  // Oracle: naive log replay must produce the same verdicts and the same
  // evidence-derived quantities.
  ReferenceDetector reference{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) reference.observe(obs);
  ASSERT_EQ(detection_map(reference, sc), baseline_verdicts);

  std::vector<std::pair<SubscriberKey, ServiceId>> baseline_keys;
  for (const auto& row : baseline_rows) {
    baseline_keys.emplace_back(std::get<0>(row), std::get<1>(row));
  }
  ASSERT_EQ(reference.evidence_keys(), baseline_keys);
  for (const auto& row : baseline_rows) {
    const auto ref =
        reference.evidence(std::get<0>(row), std::get<1>(row));
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(ref->seen.size(), std::get<4>(row));       // distinct
    EXPECT_EQ(ref->packets, std::get<5>(row));           // packets
    EXPECT_EQ(ref->first_seen, std::get<6>(row));        // first_seen
    EXPECT_EQ(ref->satisfied_hour.value_or(Evidence::kNever),
              std::get<7>(row));                         // satisfied_hour
    // The bitmask words must encode exactly the reference's seen-set.
    for (std::uint16_t pos = 0; pos < 128; ++pos) {
      const std::uint64_t word =
          pos < 64 ? std::get<2>(row) : std::get<3>(row);
      const bool bit = (word >> (pos & 63U)) & 1U;
      EXPECT_EQ(bit, ref->seen.count(pos) > 0) << "position " << pos;
    }
  }

  // Sharded: every shard count, batched at a seed-dependent batch size.
  const std::size_t batch_sizes[] = {1, 64, 997, sc.stream.size()};
  for (const unsigned shards : kShardSweep) {
    ShardedDetector sharded{sc.rules.hitlist, sc.rules, sc.config, shards};
    const std::size_t batch =
        batch_sizes[(GetParam() + shards) % std::size(batch_sizes)];
    std::span<const Observation> rest{sc.stream};
    while (!rest.empty()) {
      const std::size_t n = std::min(batch, rest.size());
      sharded.process_batch(rest.subspan(0, n));
      rest = rest.subspan(n);
    }
    EXPECT_EQ(snapshot(sharded), baseline_rows) << "shards=" << shards;
    EXPECT_EQ(detection_map(sharded, sc), baseline_verdicts)
        << "shards=" << shards;
    EXPECT_EQ(sharded.stats().flows, sc.stream.size());
  }

  // Sharded single-observation path must equal the batched path.
  ShardedDetector inline_path{sc.rules.hitlist, sc.rules, sc.config, 8};
  for (const auto& obs : sc.stream) inline_path.observe(obs);
  EXPECT_EQ(snapshot(inline_path), baseline_rows);
}

// >= 24 seeded scenarios x 6 threshold values (threshold cycles with the
// seed), comfortably past the issue's 20-scenario floor.
INSTANTIATE_TEST_SUITE_P(Scenarios, DifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 24));

// Streaming-pipeline equivalence (ISSUE 3): observations flowing through
// the asynchronous staged pipeline — bounded queues, adaptive waves,
// persistent shard workers — must land in evidence state bit-for-bit
// identical to the synchronous engines, for any shard count, any queue
// capacity (including the pathological capacity 1), and any producer
// chunking. Determinism is structural (per-subscriber FIFO through a
// single-consumer shard queue), not schedule luck, so this holds on every
// run.
TEST_P(DifferentialTest, StreamingPipelineMatchesSynchronousEngines) {
  const Scenario sc = make_scenario(GetParam());

  Detector baseline{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) {
    baseline.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                     obs.hour);
  }
  const auto baseline_rows = snapshot(baseline);
  const auto baseline_verdicts = detection_map(baseline, sc);

  ReferenceDetector reference{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) reference.observe(obs);
  ASSERT_EQ(detection_map(reference, sc), baseline_verdicts);

  const std::size_t capacities[] = {1, 2, 64, 4096};
  const std::size_t chunk_sizes[] = {1, 17, 256};
  for (const unsigned shards : {1u, 4u, 16u}) {
    pipeline::IngestConfig cfg;
    cfg.shards = shards;
    cfg.queue_capacity =
        capacities[(GetParam() + shards) % std::size(capacities)];
    cfg.max_wave = 1 + GetParam() % 64;
    cfg.detector = sc.config;
    pipeline::IngestPipeline pipe{sc.rules.hitlist, sc.rules, cfg};

    const std::size_t chunk =
        chunk_sizes[(GetParam() + shards) % std::size(chunk_sizes)];
    for (std::size_t off = 0; off < sc.stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, sc.stream.size() - off);
      ASSERT_TRUE(pipe.push_observations(
          {sc.stream.begin() + static_cast<std::ptrdiff_t>(off),
           sc.stream.begin() + static_cast<std::ptrdiff_t>(off + n)}));
    }
    pipe.drain();
    EXPECT_EQ(snapshot(pipe.detector()), baseline_rows)
        << "shards=" << shards << " capacity=" << cfg.queue_capacity;
    EXPECT_EQ(detection_map(pipe.detector(), sc), baseline_verdicts)
        << "shards=" << shards;
    EXPECT_EQ(pipe.detector().stats().flows, sc.stream.size());

    // Synchronous ShardedDetector on the same stream, same shard count.
    ShardedDetector sharded{sc.rules.hitlist, sc.rules, sc.config, shards};
    sharded.process_batch(sc.stream);
    EXPECT_EQ(snapshot(pipe.detector()), snapshot(sharded))
        << "shards=" << shards;

    // Shutdown keeps the evidence readable and unchanged.
    pipe.shutdown();
    EXPECT_EQ(snapshot(pipe.detector()), baseline_rows);
  }
}

// Checkpoint/restore differential (ISSUE 2): a mid-run save → restore →
// continue must reproduce the uninterrupted run's evidence masks and
// detection hours bit-for-bit, across engines and shard counts.
TEST_P(DifferentialTest, CheckpointRestoreMatchesUninterruptedRun) {
  const Scenario sc = make_scenario(GetParam());

  Detector uninterrupted{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) uninterrupted.observe(obs.subscriber,
                                                          obs.server,
                                                          obs.port,
                                                          obs.packets,
                                                          obs.hour);
  const auto expected_rows = snapshot(uninterrupted);
  const auto expected_verdicts = detection_map(uninterrupted, sc);

  // Crash mid-stream, checkpoint, restore into a *fresh* detector, replay
  // only the tail.
  const std::size_t cut = sc.stream.size() / 2;
  Detector first_half{sc.rules.hitlist, sc.rules, sc.config};
  for (std::size_t i = 0; i < cut; ++i) {
    const auto& obs = sc.stream[i];
    first_half.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                       obs.hour);
  }
  const auto blob = save_checkpoint(first_half);
  // Same state serializes to identical bytes (hash-map order must not
  // leak into the checkpoint).
  ASSERT_EQ(save_checkpoint(first_half), blob);

  Detector resumed{sc.rules.hitlist, sc.rules, sc.config};
  ASSERT_TRUE(restore_checkpoint(blob, resumed));
  for (std::size_t i = cut; i < sc.stream.size(); ++i) {
    const auto& obs = sc.stream[i];
    resumed.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                    obs.hour);
  }
  EXPECT_EQ(snapshot(resumed), expected_rows);
  EXPECT_EQ(detection_map(resumed, sc), expected_verdicts);
  EXPECT_EQ(resumed.stats().flows, uninterrupted.stats().flows);
  EXPECT_EQ(resumed.stats().matched, uninterrupted.stats().matched);

  // Cross-engine: the same checkpoint restores into a ShardedDetector
  // (different shard counts re-partition the restored evidence).
  for (const unsigned shards : {1u, 4u}) {
    ShardedDetector sharded{sc.rules.hitlist, sc.rules, sc.config, shards};
    ASSERT_TRUE(restore_checkpoint(blob, sharded));
    for (std::size_t i = cut; i < sc.stream.size(); ++i) {
      sharded.observe(sc.stream[i]);
    }
    EXPECT_EQ(snapshot(sharded), expected_rows) << "shards=" << shards;
    EXPECT_EQ(detection_map(sharded, sc), expected_verdicts)
        << "shards=" << shards;
    // And a sharded detector's own checkpoint bytes equal the flat
    // detector's for identical state.
    EXPECT_EQ(save_checkpoint(sharded), save_checkpoint(resumed))
        << "shards=" << shards;
  }
}

TEST(CheckpointTest, RejectsCorruptAndMismatchedBlobs) {
  const Scenario sc = make_scenario(1);
  Detector det{sc.rules.hitlist, sc.rules, sc.config};
  for (const auto& obs : sc.stream) {
    det.observe(obs.subscriber, obs.server, obs.port, obs.packets, obs.hour);
  }
  const auto blob = save_checkpoint(det);
  const auto rows = snapshot(det);

  const auto expect_rejected = [&](std::vector<std::uint8_t> bad,
                                   const char* what) {
    Detector victim{sc.rules.hitlist, sc.rules, sc.config};
    victim.observe(sc.stream[0].subscriber, sc.stream[0].server,
                   sc.stream[0].port, sc.stream[0].packets,
                   sc.stream[0].hour);
    const auto before = snapshot(victim);
    std::string error;
    EXPECT_FALSE(restore_checkpoint(bad, victim, &error)) << what;
    EXPECT_FALSE(error.empty()) << what;
    // A failed restore must leave the detector untouched.
    EXPECT_EQ(snapshot(victim), before) << what;
  };

  {
    auto bad = blob;
    bad[0] ^= 0xff;
    expect_rejected(std::move(bad), "magic");
  }
  {
    auto bad = blob;
    bad[7] ^= 0x01;  // version low byte
    expect_rejected(std::move(bad), "version");
  }
  {
    auto bad = blob;
    bad[8] ^= 0x80;  // threshold bits
    expect_rejected(std::move(bad), "threshold");
  }
  {
    auto bad = blob;
    bad.resize(bad.size() - 1);
    expect_rejected(std::move(bad), "truncated");
  }
  {
    auto bad = blob;
    bad.push_back(0);
    expect_rejected(std::move(bad), "trailing");
  }
  expect_rejected({}, "empty");

  // A detector configured with a different threshold refuses the blob.
  DetectorConfig other = sc.config;
  other.threshold = sc.config.threshold == 0.25 ? 0.4 : 0.25;
  Detector mismatched{sc.rules.hitlist, sc.rules, other};
  EXPECT_FALSE(restore_checkpoint(blob, mismatched));

  // And the good blob still round-trips.
  Detector clean{sc.rules.hitlist, sc.rules, sc.config};
  ASSERT_TRUE(restore_checkpoint(blob, clean));
  EXPECT_EQ(snapshot(clean), rows);
}

// A larger, repeated workload aimed at TSan: many batches, many threads,
// interleaved queries between batches. Under HAYSTACK_SANITIZE=thread this
// is the test that would expose any evidence sharing across shard workers.
TEST(DifferentialTsanWorkload, RepeatedBatchesStayDeterministic) {
  const Scenario sc = make_scenario(0xbeef);
  ShardedDetector a{sc.rules.hitlist, sc.rules, sc.config, 8};
  ShardedDetector b{sc.rules.hitlist, sc.rules, sc.config, 8};
  std::span<const Observation> stream{sc.stream};
  for (std::size_t off = 0; off < stream.size(); off += 256) {
    const auto chunk = stream.subspan(off, std::min<std::size_t>(
                                               256, stream.size() - off));
    a.process_batch(chunk);
    b.process_batch(chunk);
    // Query concurrently-written state between batches (reads are only
    // safe between process_batch calls; this pins that contract).
    EXPECT_EQ(a.stats().flows, b.stats().flows);
  }
  EXPECT_EQ(snapshot(a), snapshot(b));
}

// ---------------------------------------------------------------------------
// Wire-level differential sweep (ISSUE 6 satellite): the streaming SoA
// fast path — push_datagram → compiled-template batch decode →
// fast-normalize → interned shard workers — must equal a seed-era
// record-at-a-time reference (Collector::ingest + default_normalizer +
// flat Detector::observe) bit for bit, for both stateful codecs, across
// shard counts and deterministic fault-matrix impairments. Template loss
// (dropped/reordered template flowsets) must park-and-recover identically
// under compiled-template plans, pinned by comparing recovered-record
// counts between the two decode paths.

enum class WireCodec { kNetflowV9, kIpfix };

struct WireImpairment {
  const char* name;
  flow::ImpairmentConfig link;
  /// Template refresh cadence (packets); small values re-announce
  /// templates often enough for park-and-recover to fire under loss.
  std::uint32_t template_refresh = 20;
};

/// One datagram with the hour it was delivered at. Reordered datagrams
/// inherit the delivery hour of the transmit() call that released them —
/// the same rule for both decode paths, so equivalence is unaffected.
struct WireDatagram {
  util::HourBin hour = 0;
  std::vector<std::uint8_t> bytes;
};

/// Exports the scenario stream as wire datagrams and runs them through a
/// seeded impaired link. Observations become flow records (subscriber →
/// source address, server → destination), chunked into per-hour export
/// packets of up to 18 records.
std::vector<WireDatagram> make_wire_stream(const Scenario& sc,
                                           WireCodec codec,
                                           const WireImpairment& imp) {
  constexpr std::size_t kRecordsPerChunk = 18;
  flow::nf9::Exporter nf9{
      {.source_id = 7, .sampling = 1,
       .template_refresh_packets = imp.template_refresh}};
  flow::ipfix::Exporter ipfix{{.observation_domain = 7, .sampling = 1}};
  flow::ImpairedLink link{imp.link};

  std::vector<WireDatagram> out;
  std::span<const Observation> rest{sc.stream};
  while (!rest.empty()) {
    const std::size_t n = std::min(kRecordsPerChunk, rest.size());
    const util::HourBin hour = rest.front().hour;
    std::vector<flow::FlowRecord> records;
    records.reserve(n);
    for (const auto& obs : rest.subspan(0, n)) {
      flow::FlowRecord rec;
      rec.key.src = net::IpAddress::v4(
          0xC0A80000U + static_cast<std::uint32_t>(obs.subscriber));
      rec.key.dst = obs.server;
      rec.key.src_port = 40000;
      rec.key.dst_port = obs.port;
      rec.key.proto = 6;
      rec.tcp_flags = 0x1b;
      rec.packets = obs.packets;
      rec.bytes = obs.packets * 64;
      rec.start_ms = std::uint64_t{hour} * 1000;
      rec.end_ms = std::uint64_t{hour} * 1000 + 500;
      rec.sampling = 1;
      records.push_back(rec);
    }
    rest = rest.subspan(n);

    const auto packets =
        codec == WireCodec::kNetflowV9
            ? nf9.export_flows(records, 1'600'000'000U + hour * 3600U)
            : ipfix.export_flows(records, 1'600'000'000U + hour * 3600U);
    for (auto& packet : packets) {
      for (auto& delivered : link.transmit(std::move(packet))) {
        out.push_back({hour, std::move(delivered)});
      }
    }
  }
  const util::HourBin last_hour =
      sc.stream.empty() ? 0 : sc.stream.back().hour;
  for (auto& delivered : link.flush()) {
    out.push_back({last_hour, std::move(delivered)});
  }
  return out;
}

/// Record-at-a-time reference result: flat-detector evidence plus the
/// decode accounting the streaming side must reproduce.
struct WireReference {
  std::vector<EvidenceRow> rows;
  std::uint64_t malformed = 0;
  std::uint64_t recovered_records = 0;
  std::uint64_t flows = 0;
};

WireReference run_wire_reference(const Scenario& sc, WireCodec codec,
                                 const std::vector<WireDatagram>& stream,
                                 std::uint64_t anonymization_key) {
  // Collector knobs must match the pipeline's decode stage (same dedup
  // window) or the comparison would be between different protocols.
  flow::nf9::Collector nf9{flow::nf9::CollectorConfig{.dedup_window = 64}};
  flow::ipfix::Collector ipfix{
      flow::ipfix::CollectorConfig{.dedup_window = 64}};
  const auto normalize = pipeline::default_normalizer(anonymization_key);
  Detector det{sc.rules.hitlist, sc.rules, sc.config};

  WireReference ref;
  std::vector<flow::FlowRecord> records;
  for (const auto& datagram : stream) {
    records.clear();
    const bool ok = codec == WireCodec::kNetflowV9
                        ? nf9.ingest(datagram.bytes, records)
                        : ipfix.ingest(datagram.bytes, records);
    if (!ok) ++ref.malformed;
    for (const auto& rec : records) {
      if (const auto obs = normalize(rec, datagram.hour)) {
        ++ref.flows;
        det.observe(obs->subscriber, obs->server, obs->port, obs->packets,
                    obs->hour);
      }
    }
  }
  ref.rows = snapshot(det);
  ref.recovered_records = codec == WireCodec::kNetflowV9
                              ? nf9.stats().recovered_records
                              : ipfix.stats().recovered_records;
  return ref;
}

TEST_P(DifferentialTest, WireStreamMatchesRecordAtATimeReference) {
  const Scenario sc = make_scenario(GetParam());

  const WireImpairment impairments[] = {
      {.name = "clean", .link = {.seed = 1}},
      // Heavy loss + reordering with frequent template re-announcement:
      // data flowsets routinely outrun or outlive their template, so the
      // compiled-plan park-and-recover path fires.
      {.name = "template_loss",
       .link = {.seed = 2, .drop = 0.2, .reorder = 0.3, .reorder_hold = 4},
       .template_refresh = 3},
      {.name = "dup_reorder",
       .link = {.seed = 3, .duplicate = 0.25, .reorder = 0.25,
                .reorder_hold = 3}},
  };
  const WireCodec codecs[] = {WireCodec::kNetflowV9, WireCodec::kIpfix};

  for (const auto codec : codecs) {
    for (const auto& imp : impairments) {
      const auto stream = make_wire_stream(sc, codec, imp);
      const std::uint64_t key = 0x68617973;  // IngestConfig default
      const auto ref = run_wire_reference(sc, codec, stream, key);

      for (const unsigned shards : {1u, 4u, 16u}) {
        pipeline::IngestConfig cfg;
        cfg.shards = shards;
        cfg.detector = sc.config;
        cfg.anonymization_key = key;
        pipeline::IngestPipeline pipe{sc.rules.hitlist, sc.rules, cfg};
        for (const auto& datagram : stream) {
          auto copy = datagram.bytes;
          ASSERT_TRUE(pipe.push_datagram(std::move(copy), datagram.hour));
        }
        pipe.drain();

        const auto st = pipe.stats();
        const auto label = std::string{imp.name} + " codec=" +
                           (codec == WireCodec::kNetflowV9 ? "v9" : "ipfix") +
                           " shards=" + std::to_string(shards);
        EXPECT_EQ(snapshot(pipe.detector()), ref.rows) << label;
        EXPECT_EQ(pipe.detector().stats().flows, ref.flows) << label;
        EXPECT_EQ(st.malformed_datagrams, ref.malformed) << label;
        // Park-and-recover must behave identically under compiled plans.
        EXPECT_EQ(st.decode_recovered_records, ref.recovered_records)
            << label;
        const auto check = pipe.self_check();
        EXPECT_TRUE(check.ok) << label << ": " << check.detail;
      }
    }
  }
}

// The template-loss scenario must actually exercise recovery for at least
// one seed/codec — otherwise the sweep above could be vacuous. Seeded, so
// this is deterministic.
TEST(WireDifferentialCoverage, TemplateLossScenarioRecoversRecords) {
  const Scenario sc = make_scenario(3);
  const WireImpairment imp{
      .name = "template_loss",
      .link = {.seed = 2, .drop = 0.2, .reorder = 0.3, .reorder_hold = 4},
      .template_refresh = 3};
  std::uint64_t recovered = 0;
  for (const auto codec : {WireCodec::kNetflowV9, WireCodec::kIpfix}) {
    const auto stream = make_wire_stream(sc, codec, imp);
    recovered +=
        run_wire_reference(sc, codec, stream, 0x68617973).recovered_records;
  }
  EXPECT_GT(recovered, 0u);
}

}  // namespace
}  // namespace haystack::core
