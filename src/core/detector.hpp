// Streaming IoT-device detector (paper Secs. 5/6).
//
// Consumes sampled flow observations one at a time: each flow's server-side
// (IP, port) is looked up in the daily hitlist; a match contributes one
// piece of evidence — "subscriber S contacted monitored domain m of service
// X". A service counts as detected for a subscriber once evidence covers
// max(1, floor(D*N)) of its N monitored domains (or its critical domain,
// when that alone is sufficient), *and* its hierarchy parent is detected
// (Samsung TV requires Samsung IoT first; Fire TV requires Amazon Product).
//
// The detector is deliberately tiny per flow: one hash lookup plus a bitset
// update, which is what makes the methodology viable at ISP scale
// ("millions of IoT devices within minutes").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/evidence_map.hpp"
#include "core/hitlist.hpp"
#include "core/rules.hpp"
#include "core/signature_index.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

/// Anonymized subscriber identifier (from telemetry::anonymize, or any
/// stable 64-bit key).
using SubscriberKey = std::uint64_t;

/// Detector configuration.
struct DetectorConfig {
  /// Domain-coverage threshold D (Sec. 4.3.2; the paper's conservative
  /// default is 0.4).
  double threshold = 0.4;
  /// Estimated observation-channel loss fraction above which the detector
  /// runs in degraded mode: verdicts become low-confidence, and the
  /// evidence requirement is relaxed in proportion to the loss (ISSUE 2).
  double loss_tolerance = 0.05;
};

/// Confidence qualifier for loss-aware verdicts.
enum class Confidence : std::uint8_t {
  kHigh,  ///< full evidence requirement met on a healthy channel
  kLow,   ///< verdict rendered under a degraded observation channel
};

/// A loss-aware detection verdict (ISSUE 2). On a healthy channel this is
/// just detection_hour() with kHigh confidence. When the estimated loss
/// exceeds the tolerance, missing evidence may be the channel's fault:
/// services satisfying a loss-relaxed requirement are reported detected at
/// kLow confidence (with no hour, since the full requirement never fired),
/// and negative verdicts are themselves flagged kLow.
struct Verdict {
  bool detected = false;
  Confidence confidence = Confidence::kHigh;
  /// Detection hour; set only for full-evidence (kHigh) detections.
  std::optional<util::HourBin> hour;
};

/// Per-(subscriber, service) evidence state.
struct Evidence {
  /// Bitset over monitored-domain positions (up to 128; Fire TV's 34 is
  /// the catalog maximum).
  std::array<std::uint64_t, 2> mask{0, 0};
  std::uint16_t distinct = 0;
  std::uint64_t packets = 0;          ///< cumulative sampled packets
  util::HourBin first_seen = 0;
  /// Hour the rule's own coverage requirement was first met; kNever until.
  util::HourBin satisfied_hour = kNever;

  static constexpr util::HourBin kNever = 0xffffffffU;

  [[nodiscard]] bool sees(std::uint16_t position) const noexcept {
    return (mask[position >> 6] >> (position & 63U)) & 1U;
  }
};

/// Registry handles one detector instance bumps as it observes (ISSUE 5).
/// Null handles disable each hook. ShardedDetector wires one set per shard
/// (labels {{"shard", N}}), so hot counters never share a cache line
/// across shards; the time-to-detection histogram may be shared because
/// detection transitions are rare.
struct DetectorInstruments {
  std::shared_ptr<obs::Counter> flows;            ///< observations fed
  std::shared_ptr<obs::Counter> matched;          ///< hitlist matches
  std::shared_ptr<obs::Counter> rules_satisfied;  ///< coverage-met events
  std::shared_ptr<obs::Gauge> evidence_entries;   ///< evidence-map size
  /// Hours from first evidence to rule satisfaction, per transition.
  std::shared_ptr<obs::Histogram> time_to_detection_hours;
  /// kDegradedEnter/kDegradedExit events on loss-tolerance crossings
  /// (source = `source`, a = loss in ppm).
  obs::FlightRecorder* recorder = nullptr;
  std::uint32_t source = 0;
};

/// The streaming detector.
class Detector {
 public:
  Detector(const Hitlist& hitlist, const RuleSet& rules,
           const DetectorConfig& config);

  /// Feeds one sampled flow observation (already direction-normalized:
  /// `server`/`port` are the service side). Returns the hitlist match, if
  /// any — callers use this to avoid a second lookup.
  std::optional<Hit> observe(SubscriberKey subscriber,
                             const net::IpAddress& server, std::uint16_t port,
                             std::uint64_t packets, util::HourBin hour);

  /// Interned fast path (ISSUE 6): feeds one observation whose hitlist
  /// lookup was already resolved to a packed signature at the enqueue
  /// boundary (`SignatureIndex::sig_of`). `sig == kNoSig` counts the
  /// flow and returns, exactly like a hitlist miss in observe(). For any
  /// observation stream, produces bit-identical evidence, stats, and
  /// instrument bumps to observe() — the differential tier pins this.
  void observe_interned(SubscriberKey subscriber, Signature sig,
                        std::uint64_t packets, util::HourBin hour);

  /// Wave-batched variant for the sharded worker loop: applies the
  /// evidence update for one observation but defers flow/match counting
  /// to a single add_observation_counts() call per wave (two counter
  /// updates per wave instead of two per observation). Returns whether
  /// the signature matched. Final stats and instrument totals are
  /// bit-identical to the per-observation path.
  bool observe_interned_uncounted(SubscriberKey subscriber, Signature sig,
                                  std::uint64_t packets, util::HourBin hour);

  /// Folds wave totals from observe_interned_uncounted() into stats_ and
  /// the flow/match instruments.
  void add_observation_counts(std::uint64_t flows, std::uint64_t matched);

  /// Prefetches the evidence slot a future observation will touch (no-op
  /// for misses). Purely a cache hint — never changes state.
  void prefetch_evidence(SubscriberKey subscriber, Signature sig) const {
    if (sig == kNoSig) return;
    evidence_.prefetch(subscriber, sig_service(sig));
  }

  /// Hierarchy-aware detection: the hour at which the service and all of
  /// its ancestors were satisfied for this subscriber, or nullopt.
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const {
    return detection_hour(subscriber, service).has_value();
  }

  /// Loss-aware verdict (see Verdict). Uses the loss set through
  /// set_observed_loss() against config().loss_tolerance.
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const;

  /// Feeds the current estimated loss fraction of the observation channel
  /// (e.g. flow::nf9::Collector::estimated_loss()). Clamped to [0, 1].
  void set_observed_loss(double fraction) noexcept;
  [[nodiscard]] double observed_loss() const noexcept {
    return observed_loss_;
  }
  /// True when the channel loss exceeds the configured tolerance.
  [[nodiscard]] bool degraded() const noexcept {
    return observed_loss_ > config_.loss_tolerance;
  }

  /// Raw evidence for diagnostics/tests; nullptr when none.
  [[nodiscard]] const Evidence* evidence(SubscriberKey subscriber,
                                         ServiceId service) const;

  /// Visits every (subscriber, service, evidence) triple.
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  /// Drops all evidence (per-bin analyses re-use one detector).
  void clear();

  /// Throughput counters.
  struct Stats {
    std::uint64_t flows = 0;
    std::uint64_t matched = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Checkpoint support (core/checkpoint.hpp): installs one evidence row /
  /// the saved throughput counters verbatim. Restored state is bit-for-bit
  /// what for_each_evidence()/stats() produced at save time.
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Stats& stats) noexcept { stats_ = stats; }

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const RuleSet& rules() const noexcept { return rules_; }

  /// Attaches registry instrumentation (ISSUE 5). Call at wiring time,
  /// before observations flow.
  void set_instruments(DetectorInstruments instruments) {
    instruments_ = std::move(instruments);
  }
  [[nodiscard]] const DetectorInstruments& instruments() const noexcept {
    return instruments_;
  }

 private:
  /// Per-service data precompiled at construction so the interned path
  /// never dereferences a DetectionRule: the evidence requirement under
  /// config_.threshold and the critical-domain bitset (nonzero only when
  /// the critical domain alone is sufficient).
  struct RuleFast {
    std::array<std::uint64_t, 2> critical_mask{0, 0};
    std::uint16_t required = 1;
    bool has_rule = false;
  };

  /// Evidence update shared by observe() and observe_interned(); both
  /// paths must stay bit-identical (differential tier).
  void apply_match(SubscriberKey subscriber, ServiceId service,
                   std::uint16_t pos, const RuleFast& fast,
                   std::uint64_t packets, util::HourBin hour);

  const Hitlist& hitlist_;
  const RuleSet& rules_;
  DetectorConfig config_;
  // Rule pointer per service id for O(1) dispatch.
  std::vector<const DetectionRule*> rule_of_;
  std::vector<RuleFast> fast_rules_;  ///< parallel to rule_of_
  /// Flat open-addressing table: one cache line per probe on the hot
  /// path (see core/evidence_map.hpp).
  FlatEvidenceMap<Evidence> evidence_;
  Stats stats_;
  double observed_loss_ = 0.0;
  DetectorInstruments instruments_;
};

}  // namespace haystack::core
