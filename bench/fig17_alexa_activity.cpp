// Figure 17 reproduction: per-hour packet counts for a single Alexa-enabled
// device (one Echo Dot instance), at the Home-VP and the sampled ISP-VP,
// across the active and idle experiment windows. Activity spikes exceed 1k
// packets/hour at home and 10 at the ISP; idle hours never reach those.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};

  // Pick the first Echo Dot instance.
  const auto* echo = world.catalog().product_by_name("Echo Dot");
  simnet::InstanceId instance = 0;
  for (const auto& inst : world.catalog().instances()) {
    if (inst.product == echo->id) {
      instance = inst.id;
      break;
    }
  }

  util::print_banner(std::cout,
                     "Figure 17: single Alexa-enabled device, packets/hour");
  const auto* avs_unit = world.catalog().unit_by_name("Alexa Enabled");
  util::TextTable table;
  table.header({"Hour", "Window", "Home-VP pkts", "ISP-VP pkts",
                "ISP AVS-only pkts", "Interactions"});
  std::uint64_t max_home_active = 0, max_home_idle = 0;
  std::uint64_t max_isp_active = 0, max_isp_idle = 0;
  std::uint64_t max_avs_active = 0, max_avs_idle = 0;
  for (util::HourBin h = 0; h < util::kStudyHours; ++h) {
    const bool active = util::in_active_window(h);
    const bool idle = util::in_idle_window(h);
    if (!active && !idle) continue;
    const auto home = world.gt().hour_flows(h);
    const auto sampled = isp.observe(home, h);
    std::uint64_t home_pkts = 0, isp_pkts = 0, avs_pkts = 0;
    for (const auto& f : home) {
      if (f.instance == instance) home_pkts += f.flow.packets;
    }
    for (const auto& f : sampled) {
      if (f.instance != instance) continue;
      isp_pkts += f.flow.packets;
      // The Sec. 7.1 usage threshold operates on the Alexa *service*
      // traffic specifically (the AVS domain).
      if (f.unit && *f.unit == avs_unit->id) avs_pkts += f.flow.packets;
    }
    if (active) {
      max_avs_active = std::max(max_avs_active, avs_pkts);
    } else {
      max_avs_idle = std::max(max_avs_idle, avs_pkts);
    }
    if (active) {
      max_home_active = std::max(max_home_active, home_pkts);
      max_isp_active = std::max(max_isp_active, isp_pkts);
    } else {
      max_home_idle = std::max(max_home_idle, home_pkts);
      max_isp_idle = std::max(max_isp_idle, isp_pkts);
    }
    if (h % 3 == 0) {
      table.row({util::hour_label(h), active ? "active" : "idle",
                 util::fmt_count(home_pkts), util::fmt_count(isp_pkts),
                 util::fmt_count(avs_pkts),
                 std::to_string(world.gt().interactions_in(instance, h))});
    }
  }
  table.print(std::cout);
  std::cout << "\nPeaks: active " << util::fmt_count(max_home_active)
            << " pkts/h at home / " << util::fmt_count(max_isp_active)
            << " at ISP (AVS-only: " << util::fmt_count(max_avs_active)
            << "); idle " << util::fmt_count(max_home_idle) << " / "
            << util::fmt_count(max_isp_idle) << " (AVS-only: "
            << util::fmt_count(max_avs_idle)
            << "). Paper: activity spikes exceed 1k at home and 10 at the "
               "ISP; idle never reaches those ranges — our AVS-only "
               "series shows the active/idle separation the Sec. 7.1 "
               "threshold exploits (heavy streaming sessions, modelled in "
               "the wild simulation, are what push past 10).\n";
  return 0;
}
