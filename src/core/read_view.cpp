#include "core/read_view.hpp"

namespace haystack::core {

ViewHub::ViewHub(unsigned shards) : shards_{shards == 0 ? 1U : shards} {
  cells_ = std::make_unique<Cell[]>(shards_);
  for (unsigned s = 0; s < shards_; ++s) {
    auto v = std::make_shared<ShardView>();
    v->shard = s;
    cells_[s].view.store(std::move(v));
  }
}

std::shared_ptr<const ShardView> ViewHub::view(unsigned shard) const {
  return cells_[shard].view.load();
}

std::vector<std::shared_ptr<const ShardView>> ViewHub::views() const {
  std::vector<std::shared_ptr<const ShardView>> out;
  out.reserve(shards_);
  for (unsigned s = 0; s < shards_; ++s) out.push_back(view(s));
  return out;
}

void ViewHub::publish(std::shared_ptr<const ShardView> v) {
  const unsigned s = v->shard;
  // Single writer per cell (the owning shard worker), so load-then-store
  // cannot interleave with another publish to the same cell.
  const auto prev = cells_[s].view.load();
  if (prev != nullptr && v->epoch < prev->epoch) {
    regressions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  cells_[s].view.store(std::move(v));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (waiters_.load(std::memory_order_seq_cst) != 0) {
    // Empty critical section pairs the notify with the waiter's predicate
    // check so no wait_epoch wakeup is lost.
    { std::lock_guard lock{mu_}; }
    cv_.notify_all();
  }
}

void ViewHub::wait_epoch(unsigned shard, std::uint64_t epoch) const {
  if (view(shard)->epoch >= epoch) return;
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock lock{mu_};
    cv_.wait(lock, [&] { return view(shard)->epoch >= epoch; });
  }
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace haystack::core
