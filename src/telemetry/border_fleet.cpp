#include "telemetry/border_fleet.hpp"

#include <cassert>

#include "util/hash.hpp"

namespace haystack::telemetry {

namespace {
constexpr std::uint32_t kSourceIdBase = 100;
}

BorderRouterFleet::BorderRouterFleet(const BorderFleetConfig& config)
    : config_{config} {
  exporters_.reserve(config.routers);
  for (unsigned r = 0; r < config.routers; ++r) {
    exporters_.emplace_back(flow::nf9::ExporterConfig{
        .source_id = kSourceIdBase + r,
        .sampling = config.sampling,
        .max_records_per_packet = 24,
        .template_refresh_packets = 16,
    });
  }
}

unsigned BorderRouterFleet::router_of(const net::IpAddress& dst) const {
  return static_cast<unsigned>(dst.hash() % config_.routers);
}

std::vector<simnet::LabeledFlow> BorderRouterFleet::observe(
    const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour) {
  const std::uint32_t unix_secs = 1574000000U + hour * 3600U;

  // Periodic options announcements (always in hour 0).
  if (hour % std::max(1u, config_.announce_every) == 0) {
    for (unsigned r = 0; r < config_.routers; ++r) {
      const auto packet = flow::nf9::encode_sampling_announcement(
          {.source_id = kSourceIdBase + r,
           .interval = config_.sampling,
           .algorithm = flow::nf9::SamplingAlgorithm::kRandom},
          unix_secs, announce_sequence_++);
      sampling_.ingest(packet);
    }
  }

  // Partition by router, sample, keep label order per router.
  std::vector<std::vector<flow::FlowRecord>> per_router(config_.routers);
  std::vector<std::vector<const simnet::LabeledFlow*>> labels(
      config_.routers);
  for (const auto& lf : flows) {
    const unsigned r = router_of(lf.flow.key.dst);
    util::Pcg32 rng = util::derive_rng(
        config_.seed ^ r, lf.flow.key.hash() ^ lf.flow.start_ms, hour);
    if (auto thin = flow::thin_flow(lf.flow, config_.sampling, rng)) {
      // Routers export records without a per-record sampling field when
      // options announcements carry it; clear the field so the collector
      // side must rely on the registry (provenance honesty).
      thin->sampling = 0;
      per_router[r].push_back(*thin);
      labels[r].push_back(&lf);
    }
  }

  // Export + central ingest, per router.
  std::vector<simnet::LabeledFlow> merged;
  for (unsigned r = 0; r < config_.routers; ++r) {
    if (per_router[r].empty()) continue;
    std::vector<flow::FlowRecord> decoded;
    decoded.reserve(per_router[r].size());
    for (const auto& packet :
         exporters_[r].export_flows(per_router[r], unix_secs)) {
      const bool ok = collector_.ingest(packet, decoded);
      assert(ok);
      (void)ok;
      // The sampling registry inspects every packet too (it ignores
      // non-options flowsets).
      sampling_.ingest(packet);
    }
    assert(decoded.size() == labels[r].size());
    const auto interval =
        sampling_.interval_of(kSourceIdBase + r).value_or(1);
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      simnet::LabeledFlow out = *labels[r][i];
      out.flow = decoded[i];
      out.flow.sampling = interval;  // provenance: from the announcement
      merged.push_back(std::move(out));
    }
  }
  return merged;
}

}  // namespace haystack::telemetry
