#include "obs/export.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>

namespace haystack::obs {

namespace {

void append_escaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

void append_label_set(std::string& out, const Labels& labels,
                      const std::string* extra_key = nullptr,
                      const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += *extra_key;
    out += "=\"";
    append_escaped(out, *extra_value);
    out += '"';
  }
  out += '}';
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const std::string kLe = "le";

}  // namespace

std::string to_prometheus(const MetricRegistry& registry) {
  std::string out;
  for (const auto& s : registry.snapshot()) {
    out += "# TYPE ";
    out += s.name;
    out += ' ';
    out += kind_name(s.kind);
    out += '\n';
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.name;
        append_label_set(out, s.labels);
        out += ' ' + std::to_string(s.counter) + '\n';
        break;
      case MetricKind::kGauge:
        out += s.name;
        append_label_set(out, s.labels);
        out += ' ' + std::to_string(s.gauge) + '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          if (s.hist.buckets[b] == 0) continue;
          cumulative += s.hist.buckets[b];
          const std::string le =
              std::to_string(Histogram::upper_bound(b));
          out += s.name + "_bucket";
          append_label_set(out, s.labels, &kLe, &le);
          out += ' ' + std::to_string(cumulative) + '\n';
        }
        const std::string inf = "+Inf";
        out += s.name + "_bucket";
        append_label_set(out, s.labels, &kLe, &inf);
        out += ' ' + std::to_string(s.hist.count) + '\n';
        out += s.name + "_sum";
        append_label_set(out, s.labels);
        out += ' ' + std::to_string(s.hist.sum) + '\n';
        out += s.name + "_count";
        append_label_set(out, s.labels);
        out += ' ' + std::to_string(s.hist.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const MetricRegistry& registry) {
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const auto& s : registry.snapshot()) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"kind\":\"";
    out += kind_name(s.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      append_escaped(out, k);
      out += "\":\"";
      append_escaped(out, v);
      out += '"';
    }
    out += '}';
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(s.hist.count);
        out += ",\"sum\":" + std::to_string(s.hist.sum);
        out += ",\"buckets\":{";
        bool first_bucket = true;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          if (s.hist.buckets[b] == 0) continue;
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += '"' + std::to_string(Histogram::upper_bound(b)) + "\":" +
                 std::to_string(s.hist.buckets[b]);
        }
        out += '}';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Parsers. They accept exactly the grammar the emitters above produce.

namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool parse_label_block(std::string_view line, std::size_t& pos,
                       std::map<std::string, std::string>& labels,
                       std::string* error) {
  ++pos;  // consume '{'
  while (pos < line.size() && line[pos] != '}') {
    std::size_t eq = line.find('=', pos);
    if (eq == std::string_view::npos) {
      return fail(error, "label without '='");
    }
    const std::string key{line.substr(pos, eq - pos)};
    pos = eq + 1;
    if (pos >= line.size() || line[pos] != '"') {
      return fail(error, "label value not quoted");
    }
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        ++pos;
        value += line[pos] == 'n' ? '\n' : line[pos];
      } else {
        value += line[pos];
      }
      ++pos;
    }
    if (pos >= line.size()) return fail(error, "unterminated label value");
    ++pos;  // closing quote
    labels.emplace(key, value);
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  if (pos >= line.size()) return fail(error, "unterminated label block");
  ++pos;  // consume '}'
  return true;
}

}  // namespace

std::optional<std::vector<ParsedSample>> parse_prometheus(
    std::string_view text, std::string* error) {
  std::vector<ParsedSample> out;
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view line =
        text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') continue;

    ParsedSample sample;
    std::size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) != 0 ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    if (pos == 0) {
      fail(error, "line does not start with a metric name");
      return std::nullopt;
    }
    sample.name = std::string{line.substr(0, pos)};
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_label_block(line, pos, sample.labels, error)) {
        return std::nullopt;
      }
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) {
      fail(error, "missing value on line for " + sample.name);
      return std::nullopt;
    }
    char* end = nullptr;
    const std::string value_text{line.substr(pos)};
    sample.value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      fail(error, "unparseable value for " + sample.name);
      return std::nullopt;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

// Minimal JSON reader for the snapshot grammar emitted by to_json().
namespace {

struct JsonReader {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      err = std::string{"expected '"} + c + "'";
      return false;
    }
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool read_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;
        out += text[pos] == 'n' ? '\n' : text[pos];
      } else {
        out += text[pos];
      }
      ++pos;
    }
    if (pos >= text.size()) {
      err = "unterminated string";
      return false;
    }
    ++pos;
    return true;
  }
  bool read_number(double& out) {
    skip_ws();
    const std::string slice{text.substr(pos, 32)};
    char* end = nullptr;
    out = std::strtod(slice.c_str(), &end);
    if (end == slice.c_str()) {
      err = "expected a number";
      return false;
    }
    pos += static_cast<std::size_t>(end - slice.c_str());
    return true;
  }
};

}  // namespace

std::optional<std::vector<ParsedSample>> parse_json(std::string_view text,
                                                    std::string* error) {
  JsonReader r;
  r.text = text;
  const auto bail = [&]() -> std::optional<std::vector<ParsedSample>> {
    if (error != nullptr) *error = r.err.empty() ? "parse error" : r.err;
    return std::nullopt;
  };

  std::vector<ParsedSample> out;
  std::string key;
  if (!r.expect('{') || !r.read_string(key) || key != "metrics" ||
      !r.expect(':') || !r.expect('[')) {
    return bail();
  }
  while (!r.peek(']')) {
    if (!r.expect('{')) return bail();
    std::string name;
    std::string kind;
    std::map<std::string, std::string> labels;
    double value = 0.0;
    double count = 0.0;
    double sum = 0.0;
    std::vector<std::pair<std::string, double>> buckets;
    while (!r.peek('}')) {
      if (!r.read_string(key) || !r.expect(':')) return bail();
      if (key == "name") {
        if (!r.read_string(name)) return bail();
      } else if (key == "kind") {
        if (!r.read_string(kind)) return bail();
      } else if (key == "labels") {
        if (!r.expect('{')) return bail();
        while (!r.peek('}')) {
          std::string lk;
          std::string lv;
          if (!r.read_string(lk) || !r.expect(':') || !r.read_string(lv)) {
            return bail();
          }
          labels.emplace(std::move(lk), std::move(lv));
          if (r.peek(',')) r.expect(',');
        }
        if (!r.expect('}')) return bail();
      } else if (key == "value") {
        if (!r.read_number(value)) return bail();
      } else if (key == "count") {
        if (!r.read_number(count)) return bail();
      } else if (key == "sum") {
        if (!r.read_number(sum)) return bail();
      } else if (key == "buckets") {
        if (!r.expect('{')) return bail();
        while (!r.peek('}')) {
          std::string upper;
          double bucket_count = 0.0;
          if (!r.read_string(upper) || !r.expect(':') ||
              !r.read_number(bucket_count)) {
            return bail();
          }
          buckets.emplace_back(std::move(upper), bucket_count);
          if (r.peek(',')) r.expect(',');
        }
        if (!r.expect('}')) return bail();
      } else {
        r.err = "unknown key '" + key + "'";
        return bail();
      }
      if (r.peek(',')) r.expect(',');
    }
    if (!r.expect('}')) return bail();
    if (r.peek(',')) r.expect(',');

    if (kind == "histogram") {
      // Flatten to the same cumulative series the Prometheus parser yields.
      double cumulative = 0.0;
      for (const auto& [upper, bucket_count] : buckets) {
        cumulative += bucket_count;
        ParsedSample s;
        s.name = name + "_bucket";
        s.labels = labels;
        s.labels.emplace("le", upper);
        s.value = cumulative;
        out.push_back(std::move(s));
      }
      ParsedSample inf;
      inf.name = name + "_bucket";
      inf.labels = labels;
      inf.labels.emplace("le", "+Inf");
      inf.value = count;
      out.push_back(std::move(inf));
      ParsedSample s_sum;
      s_sum.name = name + "_sum";
      s_sum.labels = labels;
      s_sum.value = sum;
      out.push_back(std::move(s_sum));
      ParsedSample s_count;
      s_count.name = name + "_count";
      s_count.labels = labels;
      s_count.value = count;
      out.push_back(std::move(s_count));
    } else {
      ParsedSample s;
      s.name = std::move(name);
      s.labels = std::move(labels);
      s.value = value;
      out.push_back(std::move(s));
    }
  }
  if (!r.expect(']') || !r.expect('}')) return bail();
  return out;
}

}  // namespace haystack::obs
