// Fault-injection matrix (ISSUE 2, ctest label `fault`).
//
// Every UDP failure mode the export path can produce — drop, duplicate,
// reorder, truncate, exporter restart — is injected deterministically
// (flow::ImpairedLink) into both stateful codecs (NetFlow v9, IPFIX) and
// checked against the pristine run of the same traffic:
//
//   - duplicates and reordering are *lossless*: the decoded record
//     multiset matches the pristine run bit-for-bit, and the net
//     per-source loss estimate returns to zero;
//   - drops degrade to a *subset* of the pristine records, with the loss
//     estimate accounting exactly for what the link swallowed;
//   - truncation never crashes or desyncs, and every delivered datagram
//     lands in exactly one of {decoded, malformed, duplicate};
//   - a mid-stream exporter restart is detected, stale templates are
//     discarded, and the new incarnation's records decode cleanly.
//
// The final test drives the whole BorderRouterFleet pipeline under a
// seeded compound impairment (>=5% drop + duplication + reordering +
// truncation + one exporter restart) and checks the end-to-end accounting
// identities. Under ASan/UBSan (tests/run_sanitizers.sh) this is the
// acceptance run the issue requires.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/detector.hpp"
#include "flow/impairment.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v9.hpp"
#include "simnet/ground_truth.hpp"
#include "telemetry/border_fleet.hpp"

namespace haystack {
namespace {

using flow::FlowRecord;

FlowRecord make_record(std::uint32_t salt) {
  FlowRecord rec;
  if (salt % 4 == 0) {
    rec.key.src = net::IpAddress::v6(0x20010db8ULL << 32, salt);
    rec.key.dst = net::IpAddress::v6(0x20010db8ULL << 32, 0x9000ULL + salt);
  } else {
    rec.key.src = net::IpAddress::v4(0x0a000000U + salt);
    rec.key.dst = net::IpAddress::v4(0x34000000U + salt * 3);
  }
  rec.key.src_port = static_cast<std::uint16_t>(30000 + salt % 20000);
  rec.key.dst_port = 443;
  rec.key.proto = 6;
  rec.tcp_flags = 0x1b;
  rec.packets = 1 + salt % 90;
  rec.bytes = 100 + salt * 17 % 100000;
  rec.start_ms = salt * 977ULL;
  rec.end_ms = salt * 977ULL + 400;
  rec.sampling = 1000;
  return rec;
}

std::vector<FlowRecord> make_records(std::uint32_t n,
                                     std::uint32_t salt0 = 0) {
  std::vector<FlowRecord> records;
  records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    records.push_back(make_record(salt0 + i));
  }
  return records;
}

// Single-family records => exactly one data set per IPFIX message, which
// keeps the record-sequence resync after template recovery exact (mixed
// families split a message across sets, where the loss estimate is
// deliberately conservative).
std::vector<FlowRecord> make_records_v4(std::uint32_t n) {
  std::vector<FlowRecord> records;
  records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    records.push_back(make_record(1 + i * 4));  // salt % 4 != 0: always v4
  }
  return records;
}

std::vector<FlowRecord> sorted(std::vector<FlowRecord> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// decoded must be a sub-multiset of baseline (degradation, never garbage).
bool sub_multiset(std::vector<FlowRecord> decoded,
                  std::vector<FlowRecord> baseline) {
  std::sort(decoded.begin(), decoded.end());
  std::sort(baseline.begin(), baseline.end());
  return std::includes(baseline.begin(), baseline.end(), decoded.begin(),
                       decoded.end());
}

TEST(ImpairedLinkTest, AccountingInvariantHoldsInEveryMode) {
  const flow::ImpairmentConfig configs[] = {
      {.seed = 11, .drop = 0.3},
      {.seed = 12, .duplicate = 0.4},
      {.seed = 13, .reorder = 0.4},
      {.seed = 14, .truncate = 0.4},
      {.seed = 15, .drop = 0.1, .duplicate = 0.1, .reorder = 0.1,
       .truncate = 0.1},
  };
  for (const auto& config : configs) {
    flow::ImpairedLink link{config};
    std::uint64_t out_count = 0;
    for (std::uint32_t i = 0; i < 500; ++i) {
      std::vector<std::uint8_t> datagram(20 + i % 100, 0xab);
      out_count += link.transmit(std::move(datagram)).size();
      const auto& s = link.stats();
      ASSERT_EQ(s.datagrams_in + s.duplicated,
                s.delivered + s.dropped + link.held());
    }
    out_count += link.flush().size();
    const auto& s = link.stats();
    EXPECT_EQ(link.held(), 0u);
    EXPECT_EQ(out_count, s.delivered);
    EXPECT_EQ(s.datagrams_in, 500u);
    EXPECT_EQ(s.datagrams_in + s.duplicated, s.delivered + s.dropped);
    if (config.drop > 0) {
      EXPECT_GT(s.dropped, 0u);
    }
    if (config.duplicate > 0) {
      EXPECT_GT(s.duplicated, 0u);
    }
    if (config.reorder > 0) {
      EXPECT_GT(s.reordered, 0u);
    }
    if (config.truncate > 0) {
      EXPECT_GT(s.truncated, 0u);
    }
  }
}

TEST(ImpairedLinkTest, SameSeedReplaysSameFaultSchedule) {
  const flow::ImpairmentConfig config{.seed = 99, .drop = 0.2,
                                      .duplicate = 0.2, .reorder = 0.2,
                                      .truncate = 0.2};
  flow::ImpairedLink a{config};
  flow::ImpairedLink b{config};
  for (std::uint32_t i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> datagram(24 + i % 64,
                                       static_cast<std::uint8_t>(i));
    auto out_a = a.transmit(datagram);
    auto out_b = b.transmit(std::move(datagram));
    ASSERT_EQ(out_a, out_b) << "diverged at datagram " << i;
  }
  EXPECT_EQ(a.flush(), b.flush());
}

// ---------------------------------------------------------------------------
// v9 matrix

struct V9Run {
  flow::nf9::Collector collector;
  std::vector<FlowRecord> decoded;
  flow::ImpairmentStats link_stats;
};

// Pipes `records` through a v9 exporter and an impaired link into a fresh
// collector. With `prime`, one pristine packet is delivered out-of-band
// first, so a drop of the impaired stream's first packet is still visible
// as a gap; a pristine sentinel packet closes the stream so trailing
// drops are visible too. Neither bypass packet counts in link stats.
V9Run run_v9(const std::vector<FlowRecord>& records,
             const flow::ImpairmentConfig& impairment,
             std::uint32_t template_refresh, bool prime = false) {
  V9Run run{flow::nf9::Collector{flow::nf9::CollectorConfig{
                .dedup_window = 4096}},
            {}, {}};
  flow::nf9::Exporter exporter{{.source_id = 31,
                                .max_records_per_packet = 4,
                                .template_refresh_packets =
                                    template_refresh}};
  if (prime) {
    std::vector<FlowRecord> primer{make_record(0xeeeee)};
    for (const auto& packet : exporter.export_flows(primer, 1573996400)) {
      EXPECT_TRUE(run.collector.ingest(packet, run.decoded));
    }
  }
  flow::ImpairedLink link{impairment};
  for (auto& packet : exporter.export_flows(records, 1574000000)) {
    for (const auto& datagram : link.transmit(std::move(packet))) {
      (void)run.collector.ingest(datagram, run.decoded);
    }
  }
  for (const auto& datagram : link.flush()) {
    (void)run.collector.ingest(datagram, run.decoded);
  }
  run.link_stats = link.stats();
  std::vector<FlowRecord> sentinel{make_record(0xfffff)};
  for (const auto& packet : exporter.export_flows(sentinel, 1574003600)) {
    EXPECT_TRUE(run.collector.ingest(packet, run.decoded));
  }
  return run;
}

std::vector<FlowRecord> v9_baseline(const std::vector<FlowRecord>& records,
                                    std::uint32_t template_refresh,
                                    bool prime = false) {
  flow::nf9::Exporter exporter{{.source_id = 31,
                                .max_records_per_packet = 4,
                                .template_refresh_packets =
                                    template_refresh}};
  flow::nf9::Collector collector;
  std::vector<FlowRecord> out;
  if (prime) {
    std::vector<FlowRecord> primer{make_record(0xeeeee)};
    for (const auto& packet : exporter.export_flows(primer, 1573996400)) {
      EXPECT_TRUE(collector.ingest(packet, out));
    }
  }
  for (const auto& packet : exporter.export_flows(records, 1574000000)) {
    EXPECT_TRUE(collector.ingest(packet, out));
  }
  std::vector<FlowRecord> sentinel{make_record(0xfffff)};
  for (const auto& packet : exporter.export_flows(sentinel, 1574003600)) {
    EXPECT_TRUE(collector.ingest(packet, out));
  }
  return out;
}

TEST(FaultMatrixV9, DropIsAccountedExactly) {
  const auto records = make_records(300);
  // Every packet carries templates, so drops cost records but never park.
  auto run = run_v9(records, {.seed = 5, .drop = 0.15}, 1, /*prime=*/true);
  const auto baseline = v9_baseline(records, 1, /*prime=*/true);
  EXPECT_GT(run.link_stats.dropped, 0u);
  EXPECT_TRUE(sub_multiset(run.decoded, baseline));
  // Net per-source loss equals exactly what the link swallowed (the v9
  // sequence counts packets).
  EXPECT_EQ(run.collector.health(31).lost_units, run.link_stats.dropped);
  EXPECT_GT(run.collector.estimated_loss(), 0.0);
  // +2: the out-of-band primer and sentinel packets.
  EXPECT_EQ(run.collector.stats().packets, run.link_stats.delivered + 2);
}

TEST(FaultMatrixV9, DuplicationIsLossless) {
  const auto records = make_records(300);
  auto run = run_v9(records, {.seed = 6, .duplicate = 0.35}, 5);
  EXPECT_GT(run.link_stats.duplicated, 0u);
  EXPECT_EQ(sorted(run.decoded), sorted(v9_baseline(records, 5)));
  EXPECT_EQ(run.collector.stats().duplicate_packets,
            run.link_stats.duplicated);
  EXPECT_EQ(run.collector.health(31).lost_units, 0u);
}

TEST(FaultMatrixV9, ReorderingIsLosslessViaTemplateBuffering) {
  const auto records = make_records(300);
  // Sparse template announcements: held-back template packets force data
  // flowsets through the park-and-recover path.
  auto run = run_v9(records, {.seed = 7, .reorder = 0.35}, 5);
  EXPECT_GT(run.link_stats.reordered, 0u);
  EXPECT_EQ(sorted(run.decoded), sorted(v9_baseline(records, 5)));
  EXPECT_EQ(run.collector.health(31).lost_units, 0u);
  EXPECT_EQ(run.collector.stats().evicted_flowsets, 0u);
}

TEST(FaultMatrixV9, TruncationNeverDesyncsAndIsFullyAccounted) {
  const auto records = make_records(300);
  auto run = run_v9(records, {.seed = 8, .truncate = 0.3}, 1);
  EXPECT_GT(run.link_stats.truncated, 0u);
  EXPECT_GT(run.collector.stats().malformed_packets, 0u);
  EXPECT_TRUE(sub_multiset(run.decoded, v9_baseline(records, 1)));
  // Every delivered datagram is exactly one of {ok, malformed, duplicate}.
  const auto& s = run.collector.stats();
  EXPECT_EQ(s.packets + s.malformed_packets + s.duplicate_packets,
            run.link_stats.delivered + 1);  // +1 sentinel
}

TEST(FaultMatrixV9, CompoundImpairmentKeepsAccountingIdentity) {
  const auto records = make_records(400);
  auto run = run_v9(records,
                    {.seed = 9, .drop = 0.08, .duplicate = 0.05,
                     .reorder = 0.05, .truncate = 0.04},
                    5);
  EXPECT_TRUE(sub_multiset(run.decoded, v9_baseline(records, 5)));
  const auto& s = run.collector.stats();
  EXPECT_EQ(s.packets + s.malformed_packets + s.duplicate_packets,
            run.link_stats.delivered + 1);
  EXPECT_GT(run.collector.estimated_loss(), 0.0);
}

TEST(FaultMatrixV9, MidStreamExporterRestartRecovers) {
  const auto first_half = make_records(300);
  const auto second_half = make_records(100, 1000);
  flow::nf9::Collector collector;
  std::vector<FlowRecord> decoded;
  flow::nf9::Exporter first{{.source_id = 31, .max_records_per_packet = 4,
                             .template_refresh_packets = 5}};
  for (const auto& p : first.export_flows(first_half, 1574000000)) {
    EXPECT_TRUE(collector.ingest(p, decoded));
  }
  // Crash: the replacement resets its sequence and boot time.
  flow::nf9::Exporter second{{.source_id = 31, .max_records_per_packet = 4,
                              .template_refresh_packets = 5,
                              .boot_unix_secs = 1574007200}};
  for (const auto& p : second.export_flows(second_half, 1574007200)) {
    EXPECT_TRUE(collector.ingest(p, decoded));
  }
  EXPECT_EQ(collector.stats().exporter_restarts, 1u);
  EXPECT_EQ(collector.health(31).restarts, 1u);
  std::vector<FlowRecord> all = first_half;
  all.insert(all.end(), second_half.begin(), second_half.end());
  EXPECT_EQ(sorted(decoded), sorted(all));
}

// ---------------------------------------------------------------------------
// IPFIX matrix

struct IpfixRun {
  flow::ipfix::Collector collector;
  std::vector<FlowRecord> decoded;
  flow::ImpairmentStats link_stats;
};

IpfixRun run_ipfix(const std::vector<FlowRecord>& records,
                   const flow::ImpairmentConfig& impairment,
                   std::uint32_t template_refresh, bool prime = false) {
  IpfixRun run{flow::ipfix::Collector{flow::ipfix::CollectorConfig{
                   .dedup_window = 4096}},
               {}, {}};
  flow::ipfix::Exporter exporter{{.observation_domain = 62,
                                  .max_records_per_message = 5,
                                  .template_refresh_messages =
                                      template_refresh}};
  if (prime) {
    std::vector<FlowRecord> primer{make_record(0xeeeee)};
    for (const auto& m : exporter.export_flows(primer, 1573996400)) {
      EXPECT_TRUE(run.collector.ingest(m, run.decoded));
    }
  }
  flow::ImpairedLink link{impairment};
  for (auto& message : exporter.export_flows(records, 1574000000)) {
    for (const auto& datagram : link.transmit(std::move(message))) {
      (void)run.collector.ingest(datagram, run.decoded);
    }
  }
  for (const auto& datagram : link.flush()) {
    (void)run.collector.ingest(datagram, run.decoded);
  }
  run.link_stats = link.stats();
  std::vector<FlowRecord> sentinel{make_record(0xfffff)};
  for (const auto& message : exporter.export_flows(sentinel, 1574003600)) {
    EXPECT_TRUE(run.collector.ingest(message, run.decoded));
  }
  return run;
}

std::vector<FlowRecord> ipfix_baseline(
    const std::vector<FlowRecord>& records, std::uint32_t template_refresh,
    bool prime = false) {
  flow::ipfix::Exporter exporter{{.observation_domain = 62,
                                  .max_records_per_message = 5,
                                  .template_refresh_messages =
                                      template_refresh}};
  flow::ipfix::Collector collector;
  std::vector<FlowRecord> out;
  if (prime) {
    std::vector<FlowRecord> primer{make_record(0xeeeee)};
    for (const auto& m : exporter.export_flows(primer, 1573996400)) {
      EXPECT_TRUE(collector.ingest(m, out));
    }
  }
  for (const auto& message : exporter.export_flows(records, 1574000000)) {
    EXPECT_TRUE(collector.ingest(message, out));
  }
  std::vector<FlowRecord> sentinel{make_record(0xfffff)};
  for (const auto& message : exporter.export_flows(sentinel, 1574003600)) {
    EXPECT_TRUE(collector.ingest(message, out));
  }
  return out;
}

TEST(FaultMatrixIpfix, DropIsAccountedInRecords) {
  const auto records = make_records(300);
  auto run =
      run_ipfix(records, {.seed = 25, .drop = 0.15}, 1, /*prime=*/true);
  EXPECT_GT(run.link_stats.dropped, 0u);
  const auto baseline = ipfix_baseline(records, 1, /*prime=*/true);
  EXPECT_TRUE(sub_multiset(run.decoded, baseline));
  // The IPFIX sequence counts *records*: the estimated loss must equal
  // exactly the records that were in the dropped messages.
  EXPECT_EQ(run.collector.health(62).lost_units,
            baseline.size() - run.decoded.size());
  EXPECT_GT(run.collector.estimated_loss(), 0.0);
}

TEST(FaultMatrixIpfix, DuplicationIsLossless) {
  const auto records = make_records(300);
  auto run = run_ipfix(records, {.seed = 26, .duplicate = 0.35}, 5);
  EXPECT_GT(run.link_stats.duplicated, 0u);
  EXPECT_EQ(sorted(run.decoded), sorted(ipfix_baseline(records, 5)));
  EXPECT_EQ(run.collector.stats().duplicate_messages,
            run.link_stats.duplicated);
  EXPECT_EQ(run.collector.health(62).lost_units, 0u);
}

TEST(FaultMatrixIpfix, ReorderingIsLosslessViaTemplateBuffering) {
  // Single-family records: one data set per message, so the post-recovery
  // sequence resync is exact and no phantom gap is reported.
  const auto records = make_records_v4(300);
  auto run = run_ipfix(records, {.seed = 27, .reorder = 0.35}, 5);
  EXPECT_GT(run.link_stats.reordered, 0u);
  EXPECT_EQ(sorted(run.decoded), sorted(ipfix_baseline(records, 5)));
  EXPECT_EQ(run.collector.health(62).lost_units, 0u);
  EXPECT_EQ(run.collector.stats().evicted_sets, 0u);
}

TEST(FaultMatrixIpfix, TruncationNeverDesyncsAndIsFullyAccounted) {
  const auto records = make_records(300);
  auto run = run_ipfix(records, {.seed = 28, .truncate = 0.3}, 1);
  EXPECT_GT(run.link_stats.truncated, 0u);
  EXPECT_GT(run.collector.stats().malformed_messages, 0u);
  EXPECT_TRUE(sub_multiset(run.decoded, ipfix_baseline(records, 1)));
  const auto& s = run.collector.stats();
  EXPECT_EQ(s.messages + s.malformed_messages + s.duplicate_messages,
            run.link_stats.delivered + 1);  // +1 sentinel
}

TEST(FaultMatrixIpfix, MidStreamExporterRestartRecovers) {
  // Push the first incarnation past the 2048-record reorder window so the
  // replacement's sequence reset is unambiguous.
  const auto first_half = make_records(2200);
  const auto second_half = make_records(100, 5000);
  flow::ipfix::Collector collector;
  std::vector<FlowRecord> decoded;
  flow::ipfix::Exporter first{{.observation_domain = 62,
                               .max_records_per_message = 20,
                               .template_refresh_messages = 5}};
  for (const auto& m : first.export_flows(first_half, 1574000000)) {
    EXPECT_TRUE(collector.ingest(m, decoded));
  }
  flow::ipfix::Exporter second{{.observation_domain = 62,
                                .max_records_per_message = 20,
                                .template_refresh_messages = 5}};
  for (const auto& m : second.export_flows(second_half, 1574007200)) {
    EXPECT_TRUE(collector.ingest(m, decoded));
  }
  EXPECT_EQ(collector.stats().exporter_restarts, 1u);
  std::vector<FlowRecord> all = first_half;
  all.insert(all.end(), second_half.begin(), second_half.end());
  EXPECT_EQ(sorted(decoded), sorted(all));
}

// ---------------------------------------------------------------------------
// Loss-aware verdicts

core::RuleSet four_domain_rules() {
  core::RuleSet rules;
  core::DetectionRule rule;
  rule.service = 1;
  rule.name = "svc";
  rule.monitored_domains = 4;
  rule.monitored_indices = {0, 1, 2, 3};
  rules.rules.push_back(std::move(rule));
  for (std::uint16_t m = 0; m < 4; ++m) {
    for (util::DayBin day = 0; day < 3; ++day) {
      rules.hitlist.add(net::IpAddress::v4(0x0a010000U + m), 443, day,
                        {1, m});
    }
  }
  return rules;
}

TEST(LossAwareVerdictTest, LowConfidenceDetectionUnderLoss) {
  const auto rules = four_domain_rules();
  // Threshold 1.0: all four domains required for a clean detection.
  core::Detector det{rules.hitlist, rules, {.threshold = 1.0}};
  for (std::uint16_t m = 0; m < 3; ++m) {  // only 3 of 4 observed
    det.observe(7, net::IpAddress::v4(0x0a010000U + m), 443, 5, 1);
  }
  // Pristine channel: not detected, and confidently so.
  auto v = det.verdict(7, 1);
  EXPECT_FALSE(v.detected);
  EXPECT_EQ(v.confidence, core::Confidence::kHigh);

  // 30% estimated loss (beyond the default 5% tolerance): the requirement
  // relaxes to floor(4 * 0.7) = 2 domains, so the three observed domains
  // flag a low-confidence detection.
  det.set_observed_loss(0.30);
  EXPECT_TRUE(det.degraded());
  v = det.verdict(7, 1);
  EXPECT_TRUE(v.detected);
  EXPECT_EQ(v.confidence, core::Confidence::kLow);
  EXPECT_FALSE(v.hour.has_value());  // never cleanly satisfied

  // Loss within tolerance: no relaxation, verdict back to high-confidence
  // negative.
  det.set_observed_loss(0.02);
  EXPECT_FALSE(det.degraded());
  v = det.verdict(7, 1);
  EXPECT_FALSE(v.detected);
  EXPECT_EQ(v.confidence, core::Confidence::kHigh);

  // Full evidence yields a high-confidence detection even under loss.
  det.observe(7, net::IpAddress::v4(0x0a010003U), 443, 5, 2);
  det.set_observed_loss(0.30);
  v = det.verdict(7, 1);
  EXPECT_TRUE(v.detected);
  EXPECT_EQ(v.confidence, core::Confidence::kHigh);
  ASSERT_TRUE(v.hour.has_value());
  EXPECT_EQ(*v.hour, 2u);
}

// ---------------------------------------------------------------------------
// Fleet acceptance run (the issue's seeded impairment scenario)

std::vector<simnet::LabeledFlow> synth_hour(std::uint32_t hour,
                                            std::uint32_t flows) {
  std::vector<simnet::LabeledFlow> out;
  out.reserve(flows);
  for (std::uint32_t i = 0; i < flows; ++i) {
    simnet::LabeledFlow lf;
    lf.instance = 1 + i % 40;
    lf.domain_index = i % 6;
    lf.flow = make_record(hour * 100003U + i);
    lf.flow.sampling = 1;
    out.push_back(std::move(lf));
  }
  return out;
}

TEST(FleetFaultInjection, SeededImpairmentRunStaysFullyAccounted) {
  telemetry::BorderFleetConfig config;
  config.routers = 3;
  config.sampling = 1;  // keep every flow: accounting must be exact
  config.impairment = flow::ImpairmentConfig{.seed = 77,
                                             .drop = 0.08,
                                             .duplicate = 0.05,
                                             .reorder = 0.05,
                                             .truncate = 0.03};
  config.restart_router = 1;
  config.restart_hour = 6;
  telemetry::BorderRouterFleet fleet{config};

  std::uint64_t merged_total = 0;
  for (std::uint32_t hour = 0; hour < 12; ++hour) {
    const auto flows = synth_hour(hour, 300);
    const auto merged = fleet.observe(flows, hour);
    merged_total += merged.size();
    EXPECT_LE(merged.size(), flows.size());
    for (const auto& lf : merged) {
      EXPECT_EQ(lf.flow.sampling, config.sampling);
    }
  }

  // One restart, detected by the collector.
  EXPECT_EQ(fleet.restarts_performed(), 1u);
  EXPECT_GE(fleet.collector_stats().exporter_restarts, 1u);

  // Link-level accounting closes.
  const auto link = fleet.impairment_stats();
  EXPECT_GT(link.dropped, 0u);
  EXPECT_GT(link.duplicated, 0u);
  EXPECT_GT(link.truncated, 0u);
  EXPECT_EQ(link.datagrams_in + link.duplicated,
            link.delivered + link.dropped);

  // Collector-level accounting closes: every delivered datagram is exactly
  // one of {decoded, malformed, duplicate}.
  const auto& s = fleet.collector_stats();
  EXPECT_EQ(s.packets + s.malformed_packets + s.duplicate_packets,
            link.delivered);

  // Record-level accounting closes: every decoded record either matched a
  // label or was explicitly counted as unlabeled (late duplicates beyond
  // the suppression window).
  EXPECT_EQ(merged_total + fleet.unlabeled_records(), s.records);

  // Loss surfaced through telemetry.
  EXPECT_GT(fleet.estimated_loss(), 0.0);
  EXPECT_GT(fleet.loss_series().at(11), 0.0);

  // And it plugs into the detector's degradation signal.
  const auto rules = four_domain_rules();
  core::Detector det{rules.hitlist, rules, {.threshold = 1.0}};
  det.set_observed_loss(fleet.estimated_loss());
  EXPECT_TRUE(det.degraded());  // ~8% drop rate > 5% tolerance
}

TEST(FleetFaultInjection, PristineFleetIsUnimpaired) {
  telemetry::BorderFleetConfig config;
  config.routers = 3;
  config.sampling = 1;
  telemetry::BorderRouterFleet fleet{config};
  std::uint64_t merged_total = 0;
  for (std::uint32_t hour = 0; hour < 4; ++hour) {
    merged_total += fleet.observe(synth_hour(hour, 200), hour).size();
  }
  EXPECT_EQ(merged_total, 4u * 200u);
  EXPECT_EQ(fleet.estimated_loss(), 0.0);
  EXPECT_EQ(fleet.unlabeled_records(), 0u);
  EXPECT_EQ(fleet.impairment_stats().datagrams_in, 0u);
}

}  // namespace
}  // namespace haystack
