#include "flow/netflow_v5.hpp"

#include <algorithm>

namespace haystack::flow::nf5 {

std::vector<std::vector<std::uint8_t>> Exporter::export_flows(
    std::span<const FlowRecord> records, std::uint32_t unix_secs) {
  // Collect encodable (IPv4) records first.
  std::vector<const FlowRecord*> v4;
  v4.reserve(records.size());
  for (const auto& rec : records) {
    if (rec.key.src.is_v4() && rec.key.dst.is_v4()) {
      v4.push_back(&rec);
    } else {
      ++skipped_ipv6_;
    }
  }

  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t index = 0; index < v4.size();
       index += kMaxRecordsPerPacket) {
    const std::size_t count =
        std::min(kMaxRecordsPerPacket, v4.size() - index);
    ByteWriter w;
    w.u16(5);
    w.u16(static_cast<std::uint16_t>(count));
    w.u32(unix_secs * 1000U);          // sysUptime
    w.u32(unix_secs);                  // unix secs
    w.u32(0);                          // residual nanoseconds
    w.u32(flows_sent_);                // flow sequence
    w.u8(0);                           // engine type
    w.u8(config_.engine_id);
    // sampling: mode (2 bits) << 14 | interval (14 bits); mode 1 = packet
    // interval sampling.
    const std::uint16_t mode = config_.sampling > 1 ? 1 : 0;
    w.u16(static_cast<std::uint16_t>((mode << 14) |
                                     (config_.sampling & 0x3fffU)));

    for (std::size_t i = 0; i < count; ++i) {
      const FlowRecord& rec = *v4[index + i];
      w.u32(rec.key.src.v4_value());
      w.u32(rec.key.dst.v4_value());
      w.u32(0);  // next hop
      w.u16(0);  // input ifindex
      w.u16(0);  // output ifindex
      w.u32(static_cast<std::uint32_t>(rec.packets));
      w.u32(static_cast<std::uint32_t>(rec.bytes));
      w.u32(static_cast<std::uint32_t>(rec.start_ms));
      w.u32(static_cast<std::uint32_t>(rec.end_ms));
      w.u16(rec.key.src_port);
      w.u16(rec.key.dst_port);
      w.u8(0);  // pad
      w.u8(rec.tcp_flags);
      w.u8(rec.key.proto);
      w.u8(0);   // tos
      w.u16(0);  // src AS
      w.u16(0);  // dst AS
      w.u8(0);   // src mask
      w.u8(0);   // dst mask
      w.u16(0);  // pad
    }
    flows_sent_ += static_cast<std::uint32_t>(count);
    packets.push_back(w.take());
  }
  return packets;
}

bool Collector::ingest(std::span<const std::uint8_t> packet,
                       std::vector<FlowRecord>& out) {
  ByteReader r{packet};
  const std::uint16_t version = r.u16();
  const std::uint16_t count = r.u16();
  r.u32();  // sysUptime
  r.u32();  // unix secs
  r.u32();  // nanoseconds
  const std::uint32_t sequence = r.u32();
  r.u8();   // engine type
  r.u8();   // engine id
  const std::uint16_t sampling_field = r.u16();
  if (!r.ok() || version != 5 || count > kMaxRecordsPerPacket ||
      packet.size() != kHeaderBytes + count * kRecordBytes) {
    ++stats_.malformed_packets;
    return false;
  }
  ++stats_.packets;
  auto outcome = tracker_.classify(sequence);
  switch (outcome.event) {
    case SequenceEvent::kGap:
      ++stats_.sequence_gaps;
      stats_.estimated_lost_flows += outcome.lost_units;
      if (recorder_ != nullptr) {
        recorder_->record(obs::EventKind::kSequenceGap, 0,
                          outcome.lost_units);
      }
      break;
    case SequenceEvent::kReplay:
      ++stats_.reordered_packets;
      if (recorder_ != nullptr) {
        recorder_->record(obs::EventKind::kSequenceReplay, 0, 1);
      }
      break;
    case SequenceEvent::kRestart:
      ++stats_.exporter_restarts;
      ++restarts_;
      if (recorder_ != nullptr) {
        recorder_->record(obs::EventKind::kExporterRestart, 0, restarts_);
      }
      tracker_.reset();
      outcome = tracker_.classify(sequence);  // now kFirst
      break;
    default:
      break;
  }
  tracker_.commit(sequence, count, outcome);

  const std::uint16_t mode = sampling_field >> 14;
  const std::uint32_t interval =
      mode == 0 ? 1 : std::max<std::uint32_t>(1, sampling_field & 0x3fffU);

  for (std::uint16_t i = 0; i < count; ++i) {
    FlowRecord rec;
    rec.key.src = net::IpAddress::v4(r.u32());
    rec.key.dst = net::IpAddress::v4(r.u32());
    r.u32();  // next hop
    r.u16();
    r.u16();
    rec.packets = r.u32();
    rec.bytes = r.u32();
    rec.start_ms = r.u32();
    rec.end_ms = r.u32();
    rec.key.src_port = r.u16();
    rec.key.dst_port = r.u16();
    r.u8();
    rec.tcp_flags = r.u8();
    rec.key.proto = r.u8();
    r.u8();
    r.u16();
    r.u16();
    r.u8();
    r.u8();
    r.u16();
    rec.sampling = interval;
    if (!r.ok()) {
      ++stats_.malformed_packets;
      return false;
    }
    out.push_back(rec);
    ++stats_.records;
  }
  return true;
}

}  // namespace haystack::flow::nf5
