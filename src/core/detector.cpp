#include "core/detector.hpp"

#include <algorithm>

namespace haystack::core {

Detector::Detector(const Hitlist& hitlist, const RuleSet& rules,
                   const DetectorConfig& config)
    : hitlist_{&hitlist},
      compiled_{compile_rules(hitlist, rules, config, /*id=*/1, nullptr,
                              /*build_index=*/false, nullptr)} {}

Detector::Detector(std::shared_ptr<const CompiledRuleVersion> version)
    : hitlist_{version->hitlist}, compiled_{std::move(version)} {}

void Detector::adopt_version(
    std::shared_ptr<const CompiledRuleVersion> version) {
  hitlist_ = version->hitlist;
  compiled_ = std::move(version);
}

void Detector::apply_match(SubscriberKey subscriber, ServiceId service,
                           std::uint16_t pos, const RuleFast& fast,
                           std::uint64_t packets, util::HourBin hour) {
  bool inserted = false;
  Evidence& ev = evidence_.find_or_insert(subscriber, service, inserted);
  if (inserted) {
    ev.set_first_seen(hour);
    if (instruments_.evidence_entries) {
      instruments_.evidence_entries->set(
          static_cast<std::int64_t>(evidence_.size()));
    }
    if (instruments_.evidence_bytes) {
      instruments_.evidence_bytes->set(
          static_cast<std::int64_t>(evidence_.memory_bytes()));
    }
  }
  ev.add_packets(packets);

  if (pos < 128 && !ev.sees(pos)) ev.set_bit(pos);

  if (!ev.satisfied()) {
    // critical_mask is nonzero only when the rule's critical domain alone
    // is sufficient; the AND tests sees(critical index) in one bit op.
    const bool critical_ok =
        ((ev.mask(0) & fast.critical_mask[0]) |
         (ev.mask(1) & fast.critical_mask[1])) != 0;
    if (critical_ok || ev.distinct() >= fast.required) {
      ev.set_satisfied_hour(hour);
      ++satisfied_total_;
      if (instruments_.rules_satisfied) instruments_.rules_satisfied->add(1);
      if (instruments_.time_to_detection_hours) {
        instruments_.time_to_detection_hours->record(hour - ev.first_seen());
      }
    }
  }
}

std::optional<Hit> Detector::observe(SubscriberKey subscriber,
                                     const net::IpAddress& server,
                                     std::uint16_t port,
                                     std::uint64_t packets,
                                     util::HourBin hour) {
  ++stats_.flows;
  if (instruments_.flows) instruments_.flows->add(1);
  const auto hit = hitlist_->lookup(server, port, util::day_of(hour));
  if (!hit) return std::nullopt;
  ++stats_.matched;
  if (instruments_.matched) instruments_.matched->add(1);

  const DetectionRule* rule = compiled_->rule_for(hit->service);
  if (rule == nullptr) return hit;

  apply_match(subscriber, hit->service, hit->domain_index,
              compiled_->fast_rules[hit->service], packets, hour);
  return hit;
}

void Detector::observe_interned(SubscriberKey subscriber, Signature sig,
                                std::uint64_t packets, util::HourBin hour) {
  ++stats_.flows;
  if (instruments_.flows) instruments_.flows->add(1);
  if (sig == kNoSig) return;
  ++stats_.matched;
  if (instruments_.matched) instruments_.matched->add(1);

  const ServiceId service = sig_service(sig);
  if (service >= compiled_->fast_rules.size() ||
      !compiled_->fast_rules[service].has_rule) {
    return;
  }
  apply_match(subscriber, service, sig_domain_index(sig),
              compiled_->fast_rules[service], packets, hour);
}

bool Detector::observe_interned_uncounted(SubscriberKey subscriber,
                                          Signature sig,
                                          std::uint64_t packets,
                                          util::HourBin hour) {
  if (sig == kNoSig) return false;
  const ServiceId service = sig_service(sig);
  if (service < compiled_->fast_rules.size() &&
      compiled_->fast_rules[service].has_rule) {
    apply_match(subscriber, service, sig_domain_index(sig),
                compiled_->fast_rules[service], packets, hour);
  }
  return true;
}

void Detector::add_observation_counts(std::uint64_t flows,
                                      std::uint64_t matched) {
  stats_.flows += flows;
  stats_.matched += matched;
  if (instruments_.flows && flows != 0) instruments_.flows->add(flows);
  if (instruments_.matched && matched != 0) {
    instruments_.matched->add(matched);
  }
}

void Detector::set_observed_loss(double fraction) noexcept {
  const bool was_degraded = degraded();
  observed_loss_.store(std::clamp(fraction, 0.0, 1.0),
                       std::memory_order_relaxed);
  if (instruments_.recorder != nullptr && degraded() != was_degraded) {
    const auto ppm = static_cast<std::uint64_t>(observed_loss() * 1e6);
    instruments_.recorder->record(degraded() ? obs::EventKind::kDegradedEnter
                                             : obs::EventKind::kDegradedExit,
                                  instruments_.source, ppm);
  }
}

void Detector::restore_evidence(SubscriberKey subscriber, ServiceId service,
                                const Evidence& evidence) {
  bool inserted = false;
  evidence_.find_or_insert(subscriber, service, inserted) = evidence;
  if (instruments_.evidence_entries) {
    instruments_.evidence_entries->set(
        static_cast<std::int64_t>(evidence_.size()));
  }
}

const Evidence* Detector::evidence(SubscriberKey subscriber,
                                   ServiceId service) const {
  return evidence_.find(subscriber, service);
}

void Detector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  evidence_.for_each([&](SubscriberKey subscriber, ServiceId service,
                         const Evidence& ev) { fn(subscriber, service, ev); });
}

void Detector::clear() {
  evidence_.clear();
  if (instruments_.evidence_entries) instruments_.evidence_entries->set(0);
}

}  // namespace haystack::core
