// Wild subscriber population of the ISP (paper Sec. 6.2).
//
// Models N broadband subscriber lines. Each line owns a set of IoT devices
// drawn from the catalog's per-product penetration rates, plus "virtual"
// devices representing third-party hardware that integrates a platform the
// testbed covers (the Alexa-in-a-fridge case — DetectionUnit::
// wild_extra_penetration). Ownership, addressing, and identifier churn are
// all deterministic functions of (seed, line), so any slice of the
// population can be regenerated independently.
//
// Addressing model: each line lives in a regional pool of four /24s shared
// with 63 neighbours. Identifier rotation (router reboots, daily
// re-assignment) moves the line to a different address within its pool,
// which is exactly the effect Fig. 13 smooths by aggregating at /24 level.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "simnet/catalog.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// Subscriber line index.
using LineId = std::uint32_t;

/// One device owned by a line.
struct OwnedDevice {
  /// Product, or nullopt for a virtual wild-extra device of `unit`.
  std::optional<ProductId> product;
  /// The device's own detection unit (ancestors implied).
  UnitId unit = 0;
};

/// Population tunables.
struct PopulationConfig {
  std::uint64_t seed = 99;
  std::uint32_t lines = 200'000;
  /// Per-day probability that a line's identifier rotates (router reboot,
  /// re-assignment; the ISP's churn is "pretty low", Sec. 6.2).
  double daily_rotation_probability = 0.03;
  /// Fraction of lines with IPv6 connectivity.
  double dual_stack_fraction = 0.35;
};

/// The materialized population.
class Population {
 public:
  Population(const Catalog& catalog, const PopulationConfig& config);

  [[nodiscard]] std::uint32_t line_count() const noexcept {
    return config_.lines;
  }

  /// Devices owned by a line (possibly empty).
  [[nodiscard]] std::span<const OwnedDevice> devices_of(LineId line) const;

  /// Lines that own at least one device, ascending.
  [[nodiscard]] const std::vector<LineId>& lines_with_devices()
      const noexcept {
    return active_lines_;
  }

  /// The subscriber address (identifier) of a line on a given day,
  /// reflecting identifier rotation.
  [[nodiscard]] net::IpAddress address_of(LineId line,
                                          util::DayBin day) const;

  /// True when the line has IPv6 connectivity (dual stack).
  [[nodiscard]] bool dual_stack(LineId line) const;

  /// The line's IPv6 identifier (a /56-derived address). Valid only for
  /// dual-stack lines; stable across the window (v6 prefixes rotate far
  /// less than v4 addresses at real ISPs).
  [[nodiscard]] net::IpAddress address6_of(LineId line) const;

  /// Number of identifier rotations the line has experienced up to and
  /// including `day`.
  [[nodiscard]] unsigned epoch_of(LineId line, util::DayBin day) const;

  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const PopulationConfig& config() const noexcept {
    return config_;
  }

  /// Fraction of lines owning at least one catalog or virtual device.
  [[nodiscard]] double device_penetration() const noexcept;

 private:
  const Catalog& catalog_;
  PopulationConfig config_;
  // CSR layout: devices of line i are devices_[offsets_[i] .. offsets_[i+1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<OwnedDevice> devices_;
  std::vector<LineId> active_lines_;
};

}  // namespace haystack::simnet
