// Detection-rule generation (paper Sec. 4.3 / Fig. 7).
//
// For every candidate service, classify each primary domain's backend,
// keep the dedicated + IoT-exclusive ones as *monitored* domains, build
// the daily hitlist from their service IPs, and emit a DetectionRule. A
// service is excluded when too little of its backend is dedicated (the
// Google/Apple/Lefun shared-infrastructure cases, and LG TV with 1 of 4
// domains left) or when no data exists at all (WeMo, Wink).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hitlist.hpp"
#include "core/infra_classifier.hpp"
#include "core/service.hpp"

namespace haystack::core {

/// A generated rule for one detectable service.
struct DetectionRule {
  ServiceId service = 0;
  std::string name;
  Level level = Level::kManufacturer;
  /// Number of monitored domains N (what Fig. 10 reports per device).
  unsigned monitored_domains = 0;
  /// Positions (domain indices of the ServiceSpec) of monitored domains.
  std::vector<std::uint16_t> monitored_indices;
  std::optional<ServiceId> parent;
  /// Monitored position of the critical domain, or nullopt when the
  /// critical domain did not survive classification.
  std::optional<std::uint16_t> critical_monitored_index;
  bool critical_sufficient = false;

  /// Evidence requirement for threshold D: max(1, floor(D*N)) distinct
  /// monitored domains (Sec. 4.3.2).
  [[nodiscard]] unsigned required_domains(double threshold) const noexcept {
    const auto k = static_cast<unsigned>(
        threshold * static_cast<double>(monitored_domains));
    return k == 0 ? 1 : k;
  }
};

/// Why a service did not get a rule.
enum class ExclusionReason : std::uint8_t {
  kSharedBackend,        ///< most/all domains on shared infrastructure
  kInsufficientData,     ///< nothing classifiable (no DNS, no certificates)
};

/// A service that was filtered out (Sec. 4.2.3).
struct ExcludedService {
  ServiceId service = 0;
  std::string name;
  ExclusionReason reason = ExclusionReason::kSharedBackend;
  unsigned dedicated_domains = 0;
  unsigned total_domains = 0;
};

/// Aggregate classification statistics — the Sec. 4.2 headline numbers.
struct ClassificationStats {
  std::size_t domains_total = 0;        ///< IoT-specific domains examined
  std::size_t dedicated = 0;            ///< via passive DNS
  std::size_t shared = 0;
  std::size_t dnsdb_missing = 0;        ///< no passive-DNS record (15)
  std::size_t via_cert_scan = 0;        ///< recovered by the fallback (8)
  std::size_t unresolved = 0;           ///< still unknown (7)
};

/// Rule-generator configuration.
struct RuleGenConfig {
  /// Minimum fraction of a service's primary domains that must be
  /// dedicated for the service to stay detectable. LG TV (1/4 = 0.25)
  /// falls below the default and is excluded, as in the paper.
  double min_dedicated_fraction = 0.30;
  /// Analysis window.
  util::DayBin first_day = 0;
  util::DayBin last_day = util::kStudyDays - 1;
};

/// Output of rule generation.
struct RuleSet {
  std::vector<DetectionRule> rules;
  std::vector<ExcludedService> excluded;
  Hitlist hitlist;
  ClassificationStats stats;

  /// Rule for a service id, or nullptr.
  [[nodiscard]] const DetectionRule* rule_for(ServiceId service) const;
  /// Rule by service name, or nullptr.
  [[nodiscard]] const DetectionRule* rule_by_name(
      std::string_view name) const;
};

/// Runs classification over all specs and generates rules + hitlist.
[[nodiscard]] RuleSet generate_rules(const std::vector<ServiceSpec>& specs,
                                     const InfraClassifier& classifier,
                                     const RuleGenConfig& config);

}  // namespace haystack::core
