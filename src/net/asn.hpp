// Autonomous-system registry: prefix -> origin AS mapping plus per-AS
// metadata. The IXP analysis (Sec. 6.3, Figs. 15/16) attributes each
// detected IP to a member AS and distinguishes eyeball (residential) member
// ASes from the rest; the ethics pipeline uses the cloud/CDN flag for the
// server-IP heuristic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/prefix_trie.hpp"

namespace haystack::net {

/// AS number.
using Asn = std::uint32_t;

/// Coarse AS role taxonomy, enough for the paper's eyeball-vs-rest and
/// cloud/CDN distinctions.
enum class AsRole : std::uint8_t {
  kEyeball,   ///< residential access network
  kCloud,     ///< cloud/hosting provider (dedicated-IP infrastructure)
  kCdn,       ///< content delivery network (shared infrastructure)
  kTransit,   ///< transit/other
};

/// Per-AS metadata.
struct AsInfo {
  Asn asn = 0;
  std::string name;
  AsRole role = AsRole::kTransit;
};

/// Prefix-to-origin registry with longest-prefix-match lookups.
class AsnRegistry {
 public:
  /// Registers an AS. Re-announcing an existing ASN updates its metadata.
  void add_as(const AsInfo& info);

  /// Announces `prefix` as originated by `asn`. More specific announcements
  /// win on lookup, as in BGP.
  void announce(const Prefix& prefix, Asn asn);

  /// Origin AS of `addr`, or nullopt when uncovered.
  [[nodiscard]] std::optional<Asn> origin(const IpAddress& addr) const;

  /// Metadata for `asn`, or nullptr when unknown.
  [[nodiscard]] const AsInfo* info(Asn asn) const;

  /// Convenience: role of the AS originating `addr` (kTransit when unknown).
  [[nodiscard]] AsRole role_of(const IpAddress& addr) const;

  /// True when `addr` originates from a cloud or CDN AS — the second half
  /// of the paper's server-IP heuristic.
  [[nodiscard]] bool is_cloud_or_cdn(const IpAddress& addr) const;

  /// All registered ASes in registration order.
  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept {
    return infos_;
  }

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return trie_.size();
  }

 private:
  PrefixTrie<Asn> trie_;
  std::vector<AsInfo> infos_;
  std::unordered_map<Asn, std::size_t> index_;
};

}  // namespace haystack::net
