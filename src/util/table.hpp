// Plain-text table rendering for the bench harnesses. Every figure/table
// reproduction prints its series through this so the output is uniform and
// machine-greppable (aligned columns plus an optional CSV dump).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace haystack::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so output is stable across runs.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Row width need not match the header; columns are
  /// sized to the widest cell seen.
  void row(std::vector<std::string> cells);

  /// Renders with two-space column separation, header underlined.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, minimal quoting).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fraction digits.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

/// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
[[nodiscard]] std::string fmt_count(std::uint64_t v);

/// Formats a ratio as a percentage string, e.g. 0.163 -> "16.3%".
[[nodiscard]] std::string fmt_percent(double ratio, int digits = 1);

/// Prints a section banner used by every bench binary, so that figure output
/// is self-describing, e.g. "== Figure 6: heavy-hitter visibility ==".
void print_banner(std::ostream& os, std::string_view title);

}  // namespace haystack::util
