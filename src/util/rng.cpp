#include "util/rng.hpp"

#include <cmath>

namespace haystack::util {

std::uint64_t Pcg32::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint64_t count = 0;
    do {
      product *= uniform();
      ++count;
    } while (product > limit);
    return count - 1;
  }
  // Gaussian approximation, adequate for large means used in traffic volume.
  const double sample = mean + std::sqrt(mean) * normal();
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(sample));
}

std::uint64_t Pcg32::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double u = 1.0 - uniform();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Pcg32::exponential(double mean) noexcept {
  const double u = 1.0 - uniform();  // avoid log(0)
  return -mean * std::log(u);
}

double Pcg32::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Pcg32::normal() noexcept {
  // Box-Muller; discard the second variate to stay stateless.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

Pcg32 derive_rng(std::uint64_t global_seed, std::uint64_t entity,
                 std::uint64_t bin) noexcept {
  const std::uint64_t a = splitmix64(global_seed ^ 0x6a09e667f3bcc908ULL);
  const std::uint64_t b = splitmix64(a ^ entity);
  const std::uint64_t c = splitmix64(b ^ bin);
  return Pcg32{c, splitmix64(c ^ 0xbb67ae8584caa73bULL)};
}

}  // namespace haystack::util
