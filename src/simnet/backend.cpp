#include "simnet/backend.hpp"

#include <cassert>
#include <string>

#include "util/hash.hpp"

namespace haystack::simnet {

namespace {

constexpr std::uint32_t key_of(UnitId unit, unsigned index) {
  return (static_cast<std::uint32_t>(unit) << 16) | index;
}

// Address blocks (IPv4, host-order bases).
constexpr std::uint32_t kCloudBase = 0x34000000;   // 52.0.0.0/11
constexpr std::uint32_t kCdnBase = 0x17000000;     // 23.0.0.0/12
constexpr std::uint32_t kVendorBase = 0x8C000000;  // 140.0.0.0/8, /16 each
constexpr std::uint32_t kGenericBase = 0xC0000200; // 192.0.2.0 region
constexpr std::uint32_t kIxpSpaceBase = 0x50000000; // 80.0.0.0/8 for members

}  // namespace

Backend::Backend(const Catalog& catalog, const BackendConfig& config)
    : catalog_{catalog},
      config_{config},
      rng_{util::splitmix64(config.seed ^ 0x6261636b656e64ULL), 17} {
  build_topology();
  host_unit_domains();
  host_generic_domains();
  populate_scan_db();
}

void Backend::build_topology() {
  asns_.add_as({topo::kIspAs, "SimISP Residential", net::AsRole::kEyeball});
  asns_.announce(*net::Prefix::parse("100.64.0.0/10"), topo::kIspAs);

  asns_.add_as({topo::kCloudAs, "SimCloud (EC2-like)", net::AsRole::kCloud});
  asns_.announce(*net::Prefix::parse("52.0.0.0/11"), topo::kCloudAs);

  asns_.add_as({topo::kCdnAs, "SimCDN (Akamai-like)", net::AsRole::kCdn});
  asns_.announce(*net::Prefix::parse("23.0.0.0/12"), topo::kCdnAs);

  asns_.add_as({topo::kGenericAs, "Generic Hosting", net::AsRole::kTransit});
  asns_.announce(*net::Prefix::parse("192.0.0.0/16"), topo::kGenericAs);

  // IXP members: eyeballs first, then transit/content members. Each gets a
  // /16 out of 80.0.0.0/8.
  std::uint32_t block = 0;
  for (unsigned i = 0; i < config_.ixp_eyeball_count; ++i) {
    const net::Asn asn = topo::kIxpEyeballBase + i;
    asns_.add_as({asn, "Eyeball member " + std::to_string(i),
                  net::AsRole::kEyeball});
    asns_.announce(
        net::Prefix::of(net::IpAddress::v4(kIxpSpaceBase + (block++ << 16)),
                        16),
        asn);
    ixp_eyeballs_.push_back(asn);
    ixp_members_.push_back(asn);
  }
  for (unsigned i = 0; i < config_.ixp_member_count; ++i) {
    const net::Asn asn = topo::kIxpMemberBase + i;
    asns_.add_as(
        {asn, "IXP member " + std::to_string(i), net::AsRole::kTransit});
    asns_.announce(
        net::Prefix::of(net::IpAddress::v4(kIxpSpaceBase + (block++ << 16)),
                        16),
        asn);
    ixp_members_.push_back(asn);
  }

  // CDN address pool.
  cdn_pool_.reserve(config_.cdn_pool_size);
  for (unsigned i = 0; i < config_.cdn_pool_size; ++i) {
    cdn_pool_.push_back(net::IpAddress::v4(kCdnBase + i));
  }
}

net::IpAddress Backend::alloc_dedicated_ip(const DetectionUnit& unit,
                                           std::uint64_t salt) {
  (void)salt;
  if (unit.backend == BackendKind::kDedicatedCloud) {
    // Exclusive cloud VM address; sequential allocation from the cloud
    // block (tenants do not share addresses while allocated).
    return net::IpAddress::v4(kCloudBase + (next_cloud_ip_++));
  }
  // Manufacturer-operated infrastructure: one /16 block and one AS per
  // vendor SLD, addresses allocated sequentially within the block.
  auto [it, inserted] = vendor_as_.try_emplace(unit.sld, 0);
  if (inserted) {
    const std::uint32_t block = next_vendor_block_++;
    const net::Asn asn = topo::kVendorAsBase + block;
    it->second = asn;
    vendor_block_[unit.sld] = block;
    asns_.add_as({asn, unit.sld, net::AsRole::kTransit});
    asns_.announce(
        net::Prefix::of(net::IpAddress::v4(kVendorBase + (block << 16)), 16),
        asn);
  }
  const std::uint32_t block = vendor_block_.at(unit.sld);
  std::uint32_t& next = vendor_next_ip_[unit.sld];
  return net::IpAddress::v4(kVendorBase + (block << 16) + (next++));
}

void Backend::host_unit_domains() {
  for (const DetectionUnit& unit : catalog_.units()) {
    const auto domains = catalog_.domains_of(unit.id);
    for (const UnitDomain* dom : domains) {
      HostedDomain hosted;
      hosted.domain = dom;
      const bool shared_role = dom->role == DomainRole::kSharedObserved ||
                               unit.backend == BackendKind::kShared;
      hosted.shared = shared_role;
      hosted.cloud_vm = !shared_role &&
                        unit.backend == BackendKind::kDedicatedCloud;

      util::Pcg32 rng = util::derive_rng(config_.seed, dom->fqdn.hash(), 0);

      if (shared_role) {
        // CDN hosting: CNAME into the CDN namespace; per-day IP set drawn
        // from the shared pool.
        hosted.cname =
            dns::Fqdn{dom->fqdn.str() + ".edgekey.simcdn.net"};
        for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
          auto& ips = hosted.daily_ips[day];
          for (unsigned k = 0; k < config_.cdn_ips_per_domain; ++k) {
            ips.push_back(cdn_pool_[rng.bounded(
                static_cast<std::uint32_t>(cdn_pool_.size()))]);
          }
        }
      } else {
        // Dual-stack: about half of the dedicated backends also publish
        // AAAA records (one stable v6 address under the vendor's /48).
        util::Pcg32 v6rng =
            util::derive_rng(config_.seed ^ 0x76d5, dom->fqdn.hash(), 6);
        if (v6rng.chance(config_.dual_stack_fraction)) {
          hosted.v6_ips.push_back(net::IpAddress::v6(
              0x20010db8dead0000ULL, 0x1000ULL + (next_v6_ip_++)));
        }
        // Dedicated hosting with daily churn.
        const unsigned n_ips = 1 + static_cast<unsigned>(
                                       dom->fqdn.hash() %
                                       config_.dedicated_ip_spread);
        if (hosted.cloud_vm) {
          // The EC2-tenant pattern from Sec. 4.2.1: devA.com ->
          // devA-vm.ec2compute.cloudsim.net -> a.b.c.d, with the IP
          // reverse-mapping only to this chain.
          const std::string stem =
              dom->fqdn.str().substr(0, dom->fqdn.str().find('.'));
          hosted.cname = dns::Fqdn{stem + "-vm" +
                                   std::to_string(dom->fqdn.hash() % 1000) +
                                   ".ec2compute.cloudsim.net"};
        }
        std::vector<net::IpAddress> current;
        for (unsigned k = 0; k < n_ips; ++k) {
          current.push_back(alloc_dedicated_ip(unit, k));
        }
        for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
          if (day > 0 && rng.chance(config_.daily_remap_probability)) {
            // Remap a random subset (at least one) to fresh addresses.
            const unsigned n_change = 1 + rng.bounded(n_ips);
            for (unsigned c = 0; c < n_change; ++c) {
              current[rng.bounded(n_ips)] =
                  alloc_dedicated_ip(unit, day * 100 + c);
            }
          }
          hosted.daily_ips[day] = current;
        }
      }

      // Passive-DNS records (honouring the coverage gaps).
      if (!dom->dnsdb_missing) {
        const dns::Fqdn* chain_head = &dom->fqdn;
        if (hosted.cname.valid()) {
          pdns_.add_cname(dom->fqdn, hosted.cname, 0, util::kStudyDays - 1);
          chain_head = &hosted.cname;
        }
        for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
          for (const auto& ip : hosted.daily_ips[day]) {
            pdns_.add_a(*chain_head, ip, day, day);
          }
        }
        for (const auto& ip6 : hosted.v6_ips) {
          pdns_.add_a(*chain_head, ip6, 0, util::kStudyDays - 1);
        }
        if (hosted.shared) {
          // Unrelated tenants on the same CDN IPs, which is what the
          // exclusivity test trips over.
          for (const auto& ip : hosted.daily_ips[0]) {
            const std::uint64_t ip_salt = ip.hash();
            for (unsigned t = 0; t < config_.cdn_tenants_per_ip; ++t) {
              const std::string tenant =
                  "site" + std::to_string(ip_salt % 9973) + "-" +
                  std::to_string(t) + ".tenant" + std::to_string(t % 37) +
                  ".com";
              pdns_.add_a(dns::Fqdn{tenant}, ip, 0, util::kStudyDays - 1);
            }
          }
        }
      }

      hosted_.emplace(key_of(unit.id, dom->index), std::move(hosted));
    }
  }
}

void Backend::host_generic_domains() {
  const auto& generics = catalog_.generic_domains();
  generic_hosting_.resize(generics.size());
  for (std::size_t i = 0; i < generics.size(); ++i) {
    util::Pcg32 rng = util::derive_rng(config_.seed, generics[i].hash(), 1);
    const unsigned n_ips = 2 + rng.bounded(6);
    std::vector<net::IpAddress> current;
    for (unsigned k = 0; k < n_ips; ++k) {
      // Generic services live in the generic block or on the CDN.
      if (rng.chance(0.4)) {
        current.push_back(
            cdn_pool_[rng.bounded(static_cast<std::uint32_t>(cdn_pool_.size()))]);
      } else {
        current.push_back(net::IpAddress::v4(
            kGenericBase + (static_cast<std::uint32_t>(i) << 8) + k));
      }
    }
    for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
      generic_hosting_[i][day] = current;
    }
    for (const auto& ip : current) {
      pdns_.add_a(generics[i], ip, 0, util::kStudyDays - 1);
    }
  }
}

void Backend::populate_scan_db() {
  for (const auto& [key, hosted] : hosted_) {
    const UnitDomain& dom = *hosted.domain;
    if (!dom.https) continue;

    tlscert::Certificate cert;
    if (hosted.shared) {
      // CDN certificate: covers the tenant name but carries unrelated SANs
      // (multi-tenant SNI certificate) — fails the paper's "no other SAN"
      // requirement.
      cert.subject_cn = dom.fqdn;
      cert.sans.emplace_back("shared-edge.simcdn.net");
      cert.sans.emplace_back("othertenant" +
                             std::to_string(dom.fqdn.hash() % 997) + ".com");
      cert.issuer = "SimCDN Multi-Tenant CA";
    } else {
      // Dedicated certificate: wildcard at the vendor SLD, no foreign SAN.
      const dns::Fqdn sld = dom.fqdn.registrable();
      cert.subject_cn = dns::Fqdn{"*." + sld.str()};
      cert.sans.push_back(sld);
      cert.issuer = "SimTrust CA";
    }
    const std::uint64_t banner = banner_checksum(dom.fqdn);
    for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
      for (const auto& ip : hosted.daily_ips[day]) {
        scans_.add({ip, cert, banner, day, day});
      }
    }
  }
}

const std::vector<net::IpAddress>& Backend::ips_of(UnitId unit,
                                                   unsigned domain_index,
                                                   util::DayBin day) const {
  const auto it = hosted_.find(key_of(unit, domain_index));
  assert(it != hosted_.end());
  return it->second.daily_ips[std::min<util::DayBin>(day,
                                                     util::kStudyDays - 1)];
}

const std::vector<net::IpAddress>& Backend::ips6_of(
    UnitId unit, unsigned domain_index) const {
  const auto it = hosted_.find(key_of(unit, domain_index));
  assert(it != hosted_.end());
  return it->second.v6_ips;
}

const HostedDomain& Backend::hosting_of(UnitId unit,
                                        unsigned domain_index) const {
  const auto it = hosted_.find(key_of(unit, domain_index));
  assert(it != hosted_.end());
  return it->second;
}

const std::vector<net::IpAddress>& Backend::generic_ips_of(
    std::size_t generic_index, util::DayBin day) const {
  return generic_hosting_[generic_index]
                         [std::min<util::DayBin>(day, util::kStudyDays - 1)];
}

std::uint64_t Backend::banner_checksum(const dns::Fqdn& domain) const {
  return util::hash_combine(util::fnv1a(domain.str()),
                            0x62616e6e65720aULL);
}

}  // namespace haystack::simnet
