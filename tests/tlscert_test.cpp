// Unit tests for the tlscert substrate: the paper's certificate-matching
// rule (SLD-anchored, no unrelated SAN) and the scan database queries.
#include <gtest/gtest.h>

#include "tlscert/certificate.hpp"
#include "tlscert/scan_db.hpp"

namespace haystack::tlscert {
namespace {

Certificate dedicated_cert(const std::string& sld) {
  Certificate cert;
  cert.subject_cn = dns::Fqdn{"*." + sld};
  cert.sans.emplace_back(sld);
  cert.issuer = "SimTrust CA";
  return cert;
}

TEST(CertMatchTest, WildcardAtSldMatches) {
  const auto cert = dedicated_cert("deve.com");
  EXPECT_TRUE(matches_domain(cert, dns::Fqdn{"c.deve.com"}));
  EXPECT_TRUE(matches_domain(cert, dns::Fqdn{"api.deve.com"}));
}

TEST(CertMatchTest, UnrelatedSanDisqualifies) {
  Certificate cert = dedicated_cert("deve.com");
  cert.sans.emplace_back("othertenant.com");
  EXPECT_FALSE(matches_domain(cert, dns::Fqdn{"c.deve.com"}));
}

TEST(CertMatchTest, WrongSldDoesNotMatch) {
  const auto cert = dedicated_cert("deve.com");
  EXPECT_FALSE(matches_domain(cert, dns::Fqdn{"c.devx.com"}));
}

TEST(CertMatchTest, DeepWildcardDoesNotCoverTwoLabels) {
  // "*.deve.com" covers one label only; an exact SAN is needed deeper.
  const auto cert = dedicated_cert("deve.com");
  EXPECT_FALSE(matches_domain(cert, dns::Fqdn{"a.b.deve.com"}));
  Certificate deep = cert;
  deep.sans.emplace_back("a.b.deve.com");
  EXPECT_TRUE(matches_domain(deep, dns::Fqdn{"a.b.deve.com"}));
}

TEST(CertMatchTest, NameCoversAtSld) {
  EXPECT_TRUE(
      name_covers_at_sld(dns::Fqdn{"*.deve.com"}, dns::Fqdn{"c.deve.com"}));
  EXPECT_TRUE(
      name_covers_at_sld(dns::Fqdn{"c.deve.com"}, dns::Fqdn{"c.deve.com"}));
  EXPECT_FALSE(
      name_covers_at_sld(dns::Fqdn{"*.devx.com"}, dns::Fqdn{"c.deve.com"}));
}

TEST(CertMatchTest, FingerprintStableAndIdentitySensitive) {
  const auto a = dedicated_cert("deve.com");
  const auto b = dedicated_cert("deve.com");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  const auto c = dedicated_cert("other.com");
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

class ScanDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScanObservation obs;
    obs.ip = *net::IpAddress::parse("52.0.0.1");
    obs.cert = dedicated_cert("deve.com");
    obs.banner_checksum = 777;
    obs.first_day = 0;
    obs.last_day = 13;
    db_.add(obs);
    obs.ip = *net::IpAddress::parse("52.0.0.2");
    db_.add(obs);
    // Different banner on a third IP: must not be returned.
    obs.ip = *net::IpAddress::parse("52.0.0.3");
    obs.banner_checksum = 888;
    db_.add(obs);
  }
  CertScanDb db_;
};

TEST_F(ScanDbTest, FindsAllIpsServingDomainWithBanner) {
  const auto ips =
      db_.ips_serving_domain(dns::Fqdn{"c.deve.com"}, 777, {0, 13});
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_EQ(ips[0], *net::IpAddress::parse("52.0.0.1"));
  EXPECT_EQ(ips[1], *net::IpAddress::parse("52.0.0.2"));
}

TEST_F(ScanDbTest, BannerChecksumFilters) {
  EXPECT_TRUE(
      db_.ips_serving_domain(dns::Fqdn{"c.deve.com"}, 999, {0, 13}).empty());
}

TEST_F(ScanDbTest, WindowFilters) {
  ScanObservation late;
  late.ip = *net::IpAddress::parse("52.0.0.9");
  late.cert = dedicated_cert("late.com");
  late.banner_checksum = 1;
  late.first_day = 10;
  late.last_day = 13;
  db_.add(late);
  EXPECT_TRUE(
      db_.ips_serving_domain(dns::Fqdn{"x.late.com"}, 1, {0, 5}).empty());
  EXPECT_EQ(
      db_.ips_serving_domain(dns::Fqdn{"x.late.com"}, 1, {10, 10}).size(),
      1u);
}

TEST_F(ScanDbTest, ObservationForIp) {
  const auto obs =
      db_.observation_for(*net::IpAddress::parse("52.0.0.1"), {0, 13});
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->banner_checksum, 777u);
  EXPECT_FALSE(
      db_.observation_for(*net::IpAddress::parse("52.9.9.9"), {0, 13})
          .has_value());
}

TEST_F(ScanDbTest, FingerprintQuery) {
  const auto fp = dedicated_cert("deve.com").fingerprint();
  EXPECT_EQ(db_.ips_with_fingerprint(fp, 777, {0, 13}).size(), 2u);
  EXPECT_EQ(db_.ips_with_fingerprint(fp, 888, {0, 13}).size(), 1u);
  EXPECT_TRUE(db_.ips_with_fingerprint(12345, 777, {0, 13}).empty());
}

}  // namespace
}  // namespace haystack::tlscert
