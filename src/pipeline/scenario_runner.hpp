// End-to-end ISP scenario replay through the streaming pipeline.
//
// Glues the simulated world (simnet::Scenario → WildIspSim) to the wire
// (telemetry::BorderRouterFleet::export_hour) to the streaming collector
// (IngestPipeline): every hour of wild traffic is exported as real
// NetFlow v9 datagrams — options announcements, impaired links, exporter
// restarts and all — and pushed into the pipeline's datagram intake, the
// deployment shape of the paper's ISP vantage point. Scenario files can
// shape the pipeline itself (pipeline_shards / pipeline_queue /
// pipeline_wave keys).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/ingest.hpp"
#include "simnet/scenario.hpp"
#include "vantage/fleet.hpp"

namespace haystack::pipeline {

struct StreamingReplayConfig {
  util::HourBin start_hour = 0;
  unsigned hours = 24;
  unsigned routers = 4;
  /// Pipeline shape; the scenario's pipeline_* keys override these.
  unsigned shards = 4;
  std::size_t queue_capacity = 1024;
  std::size_t max_wave = 64;
  double threshold = 0.4;
  std::uint64_t anonymization_key = 0x68617973;
  /// When true the result carries the full metric scrape and flight-event
  /// tail of the run (ISSUE 5).
  bool capture_observability = true;
};

struct StreamingReplayResult {
  std::uint64_t datagrams = 0;     ///< export datagrams pushed
  std::uint64_t observations = 0;  ///< observations reaching the shards
  std::size_t subscribers_detected = 0;  ///< any service
  /// (service name, subscribers detected), descending by count.
  std::vector<std::pair<std::string, std::size_t>> per_service;
  IngestPipeline::Stats stats;  ///< post-shutdown stage telemetry
  /// Prometheus text scrape of the pipeline + fleet registry, taken after
  /// shutdown; empty when capture_observability is off.
  std::string metrics_prometheus;
  /// Flight-recorder contents (oldest → newest) at the end of the run.
  std::vector<obs::Event> flight_events;
  /// Post-drain conservation self-check outcome.
  IngestPipeline::SelfCheck self_check;
};

/// Replays `config.hours` hours of the scenario's wild ISP through the
/// export fleet into a streaming pipeline. Returns nullopt (with `error`)
/// when the scenario references unknown catalog names.
[[nodiscard]] std::optional<StreamingReplayResult> replay_scenario_streaming(
    const simnet::Scenario& scenario, const StreamingReplayConfig& config,
    std::string* error = nullptr);

struct VantageReplayConfig {
  util::HourBin start_hour = 0;
  unsigned hours = 24;
  /// Fleet size; the scenario's vantage_collectors key overrides it.
  unsigned collectors = 4;
  double threshold = 0.4;
  std::uint64_t anonymization_key = 0x68617973;
  bool capture_observability = true;
};

struct VantageReplayResult {
  std::uint64_t observations = 0;  ///< normalized observations routed
  std::uint64_t datagrams = 0;     ///< deltas handed to the channel
  std::uint64_t delta_bytes = 0;   ///< bytes handed to the channel
  std::uint64_t retransmissions = 0;
  bool drained = false;  ///< finish() converged within its tick budget
  std::optional<util::HourBin> merged_through;
  vantage::Aggregator::Counters counters;
  std::size_t subscribers_detected = 0;  ///< any service, merged map
  /// (service name, subscribers detected), descending by count.
  std::vector<std::pair<std::string, std::size_t>> per_service;
  std::string metrics_prometheus;
  std::vector<obs::Event> flight_events;
};

/// Replays `config.hours` hours of the scenario's wild ISP through a
/// multi-vantage collector fleet (vantage::Fleet): observations are
/// normalized exactly as the streaming pipeline would, routed to
/// collectors by vantage slice, shipped as evidence deltas over the
/// scenario's delta-channel impairment, and merged by the aggregator.
/// The scenario's vantage_* / delta_* / ack_loss keys shape the fleet.
/// Returns nullopt (with `error`) on unknown catalog names.
[[nodiscard]] std::optional<VantageReplayResult> replay_scenario_vantage(
    const simnet::Scenario& scenario, const VantageReplayConfig& config,
    std::string* error = nullptr);

}  // namespace haystack::pipeline
