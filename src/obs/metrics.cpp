#include "obs/metrics.hpp"

#include <algorithm>

namespace haystack::obs {

std::uint64_t histogram_quantile(const Histogram::Snapshot& snapshot,
                                 double q) noexcept {
  if (snapshot.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(snapshot.count));
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += snapshot.buckets[b];
    if (cumulative > target || cumulative == snapshot.count) {
      return Histogram::upper_bound(b);
    }
  }
  return Histogram::upper_bound(Histogram::kBuckets - 1);
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

MetricRegistry::Entry& MetricRegistry::find_or_create(const std::string& name,
                                                      const Labels& labels,
                                                      MetricKind kind,
                                                      bool& kind_mismatch) {
  const std::string key = series_key(name, labels);
  const auto [it, inserted] = metrics_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    entry.name = name;
    entry.labels = labels;
    entry.kind = kind;
  }
  kind_mismatch = entry.kind != kind;
  return entry;
}

std::shared_ptr<Counter> MetricRegistry::counter(const std::string& name,
                                                 const Labels& labels) {
  std::lock_guard lock{mu_};
  bool mismatch = false;
  Entry& entry = find_or_create(name, labels, MetricKind::kCounter, mismatch);
  if (mismatch) return std::make_shared<Counter>();  // detached, unexported
  if (!entry.counter) entry.counter = std::make_shared<Counter>();
  return entry.counter;
}

std::shared_ptr<Gauge> MetricRegistry::gauge(const std::string& name,
                                             const Labels& labels) {
  std::lock_guard lock{mu_};
  bool mismatch = false;
  Entry& entry = find_or_create(name, labels, MetricKind::kGauge, mismatch);
  if (mismatch) return std::make_shared<Gauge>();
  if (!entry.gauge) entry.gauge = std::make_shared<Gauge>();
  return entry.gauge;
}

std::shared_ptr<Histogram> MetricRegistry::histogram(const std::string& name,
                                                     const Labels& labels) {
  std::lock_guard lock{mu_};
  bool mismatch = false;
  Entry& entry =
      find_or_create(name, labels, MetricKind::kHistogram, mismatch);
  if (mismatch) return std::make_shared<Histogram>();
  if (!entry.histogram) entry.histogram = std::make_shared<Histogram>();
  return entry.histogram;
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::lock_guard lock{mu_};
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    Sample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = entry.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard lock{mu_};
  return metrics_.size();
}

void MetricRegistry::clear() {
  std::lock_guard lock{mu_};
  metrics_.clear();
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace haystack::obs
