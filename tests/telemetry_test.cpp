// Tests for the telemetry layer: counters, heavy-hitter views, direction
// normalization / anonymization, and the IXP vantage's established-TCP
// guard.
#include <gtest/gtest.h>

#include "net/asn.hpp"
#include "pipeline/bounded_queue.hpp"
#include "telemetry/anonymize.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/vantage.hpp"

namespace haystack::telemetry {
namespace {

TEST(UniqueCounterTest, CountsDistinct) {
  UniqueCounter<int> counter;
  EXPECT_TRUE(counter.add(1));
  EXPECT_FALSE(counter.add(1));
  EXPECT_TRUE(counter.add(2));
  EXPECT_EQ(counter.count(), 2u);
  EXPECT_TRUE(counter.contains(1));
  counter.clear();
  EXPECT_EQ(counter.count(), 0u);
}

TEST(HeavyHitterTest, TopFractionByBytes) {
  HeavyHitterView hh;
  // Ten IPs, weights 10..1.
  for (std::uint32_t i = 0; i < 10; ++i) {
    hh.add_reference(net::IpAddress::v4(i), (10 - i) * 100);
  }
  // Mark the top-3 and one light IP visible.
  hh.mark_visible(net::IpAddress::v4(0));
  hh.mark_visible(net::IpAddress::v4(1));
  hh.mark_visible(net::IpAddress::v4(2));
  hh.mark_visible(net::IpAddress::v4(9));
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.1), 1.0);   // top-1
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.3), 1.0);   // top-3
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.5), 0.6);   // 3 of top-5
  EXPECT_DOUBLE_EQ(hh.visible_fraction(), 0.4);
  EXPECT_EQ(hh.reference_count(), 10u);
}

TEST(HourlySeriesTest, BoundsAndAccumulation) {
  HourlySeries series;
  series.add(0, 2.0);
  series.add(0, 3.0);
  series.set(10, 7.0);
  EXPECT_DOUBLE_EQ(series.at(0), 5.0);
  EXPECT_DOUBLE_EQ(series.at(10), 7.0);
  EXPECT_DOUBLE_EQ(series.at(1), 0.0);
  EXPECT_EQ(series.values().size(), util::kStudyHours);
  EXPECT_THROW(series.at(util::kStudyHours), std::out_of_range);
}

TEST(HourlySeriesTest, OutOfRangeWritesThrowAndLeaveSeriesIntact) {
  HourlySeries series;
  series.set(3, 1.5);
  EXPECT_THROW(series.set(util::kStudyHours, 9.0), std::out_of_range);
  EXPECT_THROW(series.add(util::kStudyHours + 100, 9.0), std::out_of_range);
  EXPECT_DOUBLE_EQ(series.at(3), 1.5);  // failed writes changed nothing
  EXPECT_EQ(series.values().size(), util::kStudyHours);
}

TEST(HeavyHitterTest, EmptyReferenceSetYieldsZeroNotDivideByZero) {
  HeavyHitterView hh;
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.1), 0.0);
  EXPECT_DOUBLE_EQ(hh.visible_fraction(), 0.0);
  EXPECT_EQ(hh.reference_count(), 0u);
  // Visibility marks without references must not fabricate coverage.
  hh.mark_visible(net::IpAddress::v4(1));
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hh.visible_fraction(), 0.0);
}

TEST(HeavyHitterTest, ByteTiesAtTopFractionBoundaryAreDeterministic) {
  HeavyHitterView hh;
  // Two clear heavies, then four IPs tied at 100 bytes straddling the
  // top-50% cut (top-3 of 6). Which tied IPs make the cut is an internal
  // ordering detail, so the test marks *all* tied IPs visible — the
  // fraction must then be exact regardless of the tie-break.
  hh.add_reference(net::IpAddress::v4(0), 1000);
  hh.add_reference(net::IpAddress::v4(1), 900);
  for (std::uint32_t i = 2; i < 6; ++i) {
    hh.add_reference(net::IpAddress::v4(i), 100);
  }
  hh.mark_visible(net::IpAddress::v4(0));
  for (std::uint32_t i = 2; i < 6; ++i) {
    hh.mark_visible(net::IpAddress::v4(i));
  }
  // Top-3 = {1000, 900, one of the tied 100s}: the heavy at 900 is the
  // only invisible candidate, so exactly 2 of 3 are visible no matter
  // which tied IP wins the last slot.
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.5), 2.0 / 3.0);
  // With no visibility marks at all the answer is exactly zero.
  hh.clear();
  for (std::uint32_t i = 0; i < 4; ++i) {
    hh.add_reference(net::IpAddress::v4(i), 100);  // all tied
  }
  EXPECT_DOUBLE_EQ(hh.visible_fraction_of_top(0.5), 0.0);
}

// --- StageStats aggregation (ISSUE 5 satellite) ----------------------------

TEST(StageStatsTest, AggregationSumsHighWatersAndMaxesMaxDepth) {
  StageStats total;
  StageStats a;
  a.enqueued = 100;
  a.dequeued = 90;
  a.max_depth = 900;
  a.high_water_sum = 900;
  a.capacity = 1024;
  StageStats b;
  b.enqueued = 50;
  b.dequeued = 50;
  b.max_depth = 400;
  b.high_water_sum = 400;
  b.capacity = 1024;
  total += a;
  total += b;
  EXPECT_EQ(total.enqueued, 150u);
  EXPECT_EQ(total.dequeued, 140u);
  // The stage never had a queue deeper than 900 — but it buffered up to
  // 1300 items simultaneously. Summing max_depth would fabricate the
  // former; maxing high_water_sum would understate the latter.
  EXPECT_EQ(total.max_depth, 900u);
  EXPECT_EQ(total.high_water_sum, 1300u);
  EXPECT_EQ(total.capacity, 2048u);
}

TEST(StageStatsTest, QueueSnapshotKeepsDequeuedWithinEnqueued) {
  // Live BoundedQueue snapshots must satisfy dequeued <= enqueued and
  // report a single queue's high_water_sum equal to its max_depth.
  pipeline::BoundedQueue<int> queue{4};
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  auto stats = queue.stats();
  EXPECT_LE(stats.dequeued, stats.enqueued);
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.dequeued, 0u);
  (void)queue.pop();
  stats = queue.stats();
  EXPECT_LE(stats.dequeued, stats.enqueued);
  EXPECT_EQ(stats.dequeued, 1u);
  EXPECT_EQ(stats.high_water_sum, stats.max_depth);
  EXPECT_EQ(stats.max_depth, 2u);
}

TEST(AnonymizeTest, KeyedAndStable) {
  const auto ip = *net::IpAddress::parse("100.64.1.2");
  EXPECT_EQ(anonymize(ip, 7), anonymize(ip, 7));
  EXPECT_NE(anonymize(ip, 7), anonymize(ip, 8));
  EXPECT_NE(anonymize(ip, 7),
            anonymize(*net::IpAddress::parse("100.64.1.3"), 7));
}

class DirectionTest : public ::testing::Test {
 protected:
  DirectionTest() {
    asns_.add_as({64520, "CDN", net::AsRole::kCdn});
    asns_.announce(*net::Prefix::parse("23.0.0.0/12"), 64520);
  }
  net::AsnRegistry asns_;
};

TEST_F(DirectionTest, SubscriberToServerKept) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("140.1.0.1");
  rec.key.dst_port = 443;
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.subscriber, rec.key.src);
  EXPECT_EQ(norm.server, rec.key.dst);
  EXPECT_EQ(norm.server_port, 443);
}

TEST_F(DirectionTest, ReverseDirectionFlipped) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("140.1.0.1");
  rec.key.src_port = 443;
  rec.key.dst = *net::IpAddress::parse("100.64.1.2");
  rec.key.dst_port = 50000;
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.subscriber, rec.key.dst);
  EXPECT_EQ(norm.server, rec.key.src);
  EXPECT_EQ(norm.server_port, 443);
}

TEST_F(DirectionTest, CdnOriginCountsAsServerRegardlessOfPort) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("23.0.0.9");
  rec.key.dst_port = 12345;  // odd port, but CDN AS
  NormalizedFlow norm;
  ASSERT_TRUE(normalize_direction(rec, asns_, norm));
  EXPECT_EQ(norm.server, rec.key.dst);
}

TEST_F(DirectionTest, PeerToPeerDropped) {
  flow::FlowRecord rec;
  rec.key.src = *net::IpAddress::parse("100.64.1.2");
  rec.key.src_port = 50000;
  rec.key.dst = *net::IpAddress::parse("100.64.1.9");
  rec.key.dst_port = 51000;
  NormalizedFlow norm;
  EXPECT_FALSE(normalize_direction(rec, asns_, norm));
}

TEST(IxpVantageTest, EstablishedTcpGuardDropsSynOnly) {
  IxpVantage vantage{{.sampling = 1, .wire_roundtrip = false,
                      .require_established_tcp = true}};
  simnet::LabeledFlow syn_only;
  syn_only.flow.key.src = net::IpAddress::v4(1);
  syn_only.flow.key.dst = net::IpAddress::v4(2);
  syn_only.flow.key.proto = 6;
  syn_only.flow.tcp_flags = flow::tcpflags::kSyn;
  syn_only.flow.packets = 10;

  simnet::LabeledFlow established = syn_only;
  established.flow.tcp_flags =
      flow::tcpflags::kSyn | flow::tcpflags::kAck | flow::tcpflags::kPsh;

  simnet::LabeledFlow udp = syn_only;
  udp.flow.key.proto = 17;
  udp.flow.tcp_flags = 0;

  const auto out =
      vantage.observe({syn_only, established, udp}, 0);
  // SYN-only is dropped; the established TCP flow and UDP pass.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].flow.shows_established_tcp());
  EXPECT_TRUE(out[1].flow.shows_established_tcp());
}

}  // namespace
}  // namespace haystack::telemetry
