// Ground-truth testbed simulation (paper Sec. 2).
//
// Reproduces the controlled experiments: 96 device instances across two
// testbeds (EU = testbed 1, US = testbed 2) whose traffic is tunneled into
// one ISP subscriber line (the Home-VP). The schedule follows the paper:
//
//   * active experiments Nov 15–18 — 9,810 automated interactions (power
//     cycles and functional interactions), with testbed 1 starting half a
//     day after testbed 2;
//   * idle experiments Nov 23–25 — devices merely connected, with a boot
//     spike in the first hour.
//
// Every emitted flow is labeled with its ground truth (instance, unit,
// domain), so the visibility analyses (Figs. 5/6/8/9/17) can compare the
// Home-VP view against the sampled ISP view without re-identification.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/record.hpp"
#include "simnet/backend.hpp"
#include "simnet/catalog.hpp"
#include "simnet/rates.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// One ground-truth flow with its labels.
struct LabeledFlow {
  InstanceId instance = 0;
  /// Unit the destination domain belongs to; nullopt for generic domains.
  std::optional<UnitId> unit;
  /// Domain index within the unit, or index into the generic-domain list.
  unsigned domain_index = 0;
  flow::FlowRecord flow;
};

/// Testbed configuration.
struct GroundTruthConfig {
  std::uint64_t seed = 7;
  /// Total automated interactions over the active window (paper: 9,810).
  unsigned total_interactions = 9810;
  /// Spread (sigma of the log-normal) of per-domain traffic rates around
  /// the unit mean; produces the Fig. 8/9 laconic-vs-gossip split.
  double domain_rate_sigma = 1.5;
  /// Mean packets per individual flow before splitting.
  unsigned mean_flow_packets = 30;
  /// Generic (non-IoT) domains contacted per instance.
  unsigned generic_domains_per_instance = 4;
  /// One-shot content/analytics fetches triggered per interaction.
  unsigned fanout_per_interaction = 12;
  /// When non-empty, only instances of the named products generate
  /// traffic — the paper's false-positive crosscheck ("another experiment
  /// where we only enable a small subset of IoT devices", Sec. 5).
  std::vector<std::string> enabled_products;
};

/// Deterministic hourly traffic generator for the testbeds.
class GroundTruthSim {
 public:
  GroundTruthSim(const Backend& backend, const GroundTruthConfig& config);

  /// All Home-VP flows for one hour (unsampled ground truth). Empty outside
  /// the experiment windows.
  [[nodiscard]] std::vector<LabeledFlow> hour_flows(util::HourBin hour) const;

  /// Number of automated interactions scheduled for (instance, hour).
  [[nodiscard]] unsigned interactions_in(InstanceId instance,
                                         util::HourBin hour) const;

  /// True when the instance's testbed has started for the active window
  /// (testbed 1 lags testbed 2 by half a day, Sec. 3).
  [[nodiscard]] bool instance_started(InstanceId instance,
                                      util::HourBin hour) const;

  /// True when the instance participates in this experiment run (always,
  /// unless GroundTruthConfig::enabled_products restricts the set).
  [[nodiscard]] bool instance_enabled(InstanceId instance) const;

  /// Mean idle packets/hour for a specific unit domain (the Fig. 8 series).
  [[nodiscard]] double domain_idle_rate(UnitId unit,
                                        unsigned domain_index) const;

  /// The Home-VP subscriber address all testbed traffic originates from.
  [[nodiscard]] net::IpAddress home_vp_ip() const noexcept {
    return home_vp_ip_;
  }

  [[nodiscard]] const Backend& backend() const noexcept { return backend_; }

 private:
  void emit_domain_flows(InstanceId instance, const DetectionUnit& unit,
                         const UnitDomain& dom, util::HourBin hour,
                         double rate, std::vector<LabeledFlow>& out) const;
  void emit_generic_flows(InstanceId instance, util::HourBin hour,
                          std::vector<LabeledFlow>& out) const;
  void emit_interaction_fanout(InstanceId instance, util::HourBin hour,
                               unsigned interactions,
                               std::vector<LabeledFlow>& out) const;

  const Backend& backend_;
  GroundTruthConfig config_;
  DomainRateModel rates_;
  net::IpAddress home_vp_ip_;
  /// Per-instance mean interactions per active-window hour.
  double interactions_per_hour_ = 0.0;
};

}  // namespace haystack::simnet
