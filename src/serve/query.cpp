#include "serve/query.hpp"

#include <algorithm>
#include <unordered_map>

namespace haystack::serve {

DetectionSnapshot::DetectionSnapshot(
    std::vector<std::shared_ptr<const core::ShardView>> views)
    : views_{std::move(views)} {}

std::vector<ProfileRow> DetectionSnapshot::subscriber_profile(
    core::SubscriberKey subscriber) const {
  const core::ShardView& v = owner(subscriber);
  std::vector<ProfileRow> rows;
  v.evidence.for_each([&](core::SubscriberKey sub, core::ServiceId service,
                          const core::Evidence& ev) {
    if (sub != subscriber) return;
    ProfileRow row;
    row.service = service;
    if (const auto* rule = v.compiled->rule_for(service)) {
      row.name = rule->name;
    }
    row.evidence = ev;
    row.detected = v.detected(subscriber, service);
    rows.push_back(std::move(row));
  });
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.service < b.service;
            });
  return rows;
}

std::vector<ServiceCount> DetectionSnapshot::service_counts() const {
  std::unordered_map<core::ServiceId, ServiceCount> by_service;
  for (const auto& view : views_) {
    view->evidence.for_each([&](core::SubscriberKey sub,
                                core::ServiceId service,
                                const core::Evidence&) {
      ServiceCount& c = by_service[service];
      if (c.name.empty()) {
        c.service = service;
        if (const auto* rule = view->compiled->rule_for(service)) {
          c.name = rule->name;
        }
      }
      ++c.evidence_subscribers;
      if (view->detected(sub, service)) ++c.detected_subscribers;
    });
  }
  std::vector<ServiceCount> out;
  out.reserve(by_service.size());
  for (auto& [service, count] : by_service) out.push_back(std::move(count));
  std::sort(out.begin(), out.end(),
            [](const ServiceCount& a, const ServiceCount& b) {
              if (a.detected_subscribers != b.detected_subscribers) {
                return a.detected_subscribers > b.detected_subscribers;
              }
              return a.service < b.service;
            });
  return out;
}

std::vector<HeavyHitter> DetectionSnapshot::heavy_hitters(
    std::size_t k) const {
  // A subscriber's evidence lives in exactly one shard, so per-subscriber
  // accumulation never needs a cross-shard merge.
  std::unordered_map<core::SubscriberKey, HeavyHitter> by_subscriber;
  for (const auto& view : views_) {
    view->evidence.for_each([&](core::SubscriberKey sub,
                                core::ServiceId service,
                                const core::Evidence& ev) {
      HeavyHitter& h = by_subscriber[sub];
      h.subscriber = sub;
      h.packets += ev.packets();
      if (view->detected(sub, service)) ++h.detected_services;
    });
  }
  std::vector<HeavyHitter> out;
  out.reserve(by_subscriber.size());
  for (auto& [sub, hitter] : by_subscriber) out.push_back(hitter);
  const auto rank = [](const HeavyHitter& a, const HeavyHitter& b) {
    if (a.detected_services != b.detected_services) {
      return a.detected_services > b.detected_services;
    }
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.subscriber < b.subscriber;
  };
  if (out.size() > k) {
    std::partial_sort(out.begin(), out.begin() + static_cast<long>(k),
                      out.end(), rank);
    out.resize(k);
  } else {
    std::sort(out.begin(), out.end(), rank);
  }
  return out;
}

void DetectionSnapshot::for_each_evidence(
    const std::function<void(core::SubscriberKey, core::ServiceId,
                             const core::Evidence&)>& fn) const {
  for (const auto& view : views_) view->evidence.for_each(fn);
}

core::ViewStats DetectionSnapshot::stats() const {
  core::ViewStats total;
  for (const auto& view : views_) {
    total.flows += view->stats.flows;
    total.matched += view->stats.matched;
  }
  return total;
}

std::uint64_t DetectionSnapshot::observations() const {
  std::uint64_t total = 0;
  for (const auto& view : views_) total += view->observations;
  return total;
}

std::uint64_t DetectionSnapshot::satisfied() const {
  std::uint64_t total = 0;
  for (const auto& view : views_) total += view->satisfied;
  return total;
}

std::vector<std::uint64_t> DetectionSnapshot::epochs() const {
  std::vector<std::uint64_t> out;
  out.reserve(views_.size());
  for (const auto& view : views_) out.push_back(view->epoch);
  return out;
}

std::uint64_t DetectionSnapshot::min_ruleset_version() const {
  std::uint64_t lo = ~std::uint64_t{0};
  for (const auto& view : views_) lo = std::min(lo, view->ruleset_version);
  return views_.empty() ? 0 : lo;
}

std::uint64_t DetectionSnapshot::max_ruleset_version() const {
  std::uint64_t hi = 0;
  for (const auto& view : views_) hi = std::max(hi, view->ruleset_version);
  return hi;
}

bool DetectionSnapshot::degraded() const {
  for (const auto& view : views_) {
    if (view->degraded) return true;
  }
  return false;
}

}  // namespace haystack::serve
