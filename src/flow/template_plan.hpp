// Compiled per-template decode plans (ISSUE 6 tentpole).
//
// The reference decoders (nf9::Collector::decode_data_flowset,
// ipfix::Collector::decode_data_set) re-walk the template's field list for
// every record, dispatching a switch per field. Since the template's
// *declared* lengths fully determine record framing — every field branch
// consumes exactly its declared length — the walk can be compiled once per
// template into a flat list of (destination column, byte offset) ops plus
// a fixed record length. Executing the plan then decodes a whole data
// set with fixed-offset big-endian loads straight into `FlowBatch`
// columns: no ByteReader, no per-field dispatch, no FlowRecord.
//
// Equivalence contract (enforced by the differential tier and the fuzz
// targets): for any template and body, `execute` appends exactly the rows
// the reference walk would have produced, bit for bit. Templates the plan
// cannot represent at fixed offsets — IPFIX variable-length fields
// (length 0xffff), whose per-record size varies — compile with
// `fast == false`, and the collector falls back to the reference walk.
// Fields whose (type, length) pair the reference would skip (unknown
// types, unsupported declared lengths — "declared-length lies") simply
// get no op: the offset accumulation skips them, exactly like the
// reference's skip-at-declared-length rule. Duplicate fields get one op
// each in template order, so the last write wins as in the reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "flow/flow_batch.hpp"

namespace haystack::flow::plan {

/// Destination column + load width for one decoded field.
enum class Dst : std::uint8_t {
  kSrcV4,       ///< 4-byte IPv4 source address
  kDstV4,       ///< 4-byte IPv4 destination address
  kSrcV6,       ///< 16-byte IPv6 source address
  kDstV6,       ///< 16-byte IPv6 destination address
  kSrcPort,     ///< u16
  kDstPort,     ///< u16
  kProto,       ///< u8
  kTcpFlags,    ///< u8
  kPackets64,   ///< u64 packet delta
  kPackets32,   ///< u32 packet delta (v9 exporters commonly use 4 bytes)
  kBytes64,     ///< u64 octet delta
  kBytes32,     ///< u32 octet delta
  kStart32,     ///< u32 FIRST_SWITCHED (v9, sysUptime ms)
  kEnd32,       ///< u32 LAST_SWITCHED (v9)
  kStart64,     ///< u64 flowStartMilliseconds (IPFIX)
  kEnd64,       ///< u64 flowEndMilliseconds (IPFIX)
  kSampling,    ///< u32 sampling interval
};

struct FieldOp {
  Dst dst;
  std::uint16_t offset;  ///< byte offset of the field within the record
};

/// One template's compiled decode plan.
struct CompiledPlan {
  std::size_t record_len = 0;  ///< declared bytes per record (fast plans)
  /// False when the template cannot be decoded at fixed offsets (IPFIX
  /// variable-length fields, or a record too large for u16 offsets);
  /// callers must use the reference walk instead.
  bool fast = false;
  std::vector<FieldOp> ops;  ///< in template order; later ops overwrite
};

/// Codec-neutral view of one template field, as parsed off the wire.
struct WireField {
  std::uint16_t id = 0;      ///< v9 field type / IPFIX IE (enterprise bit
                             ///< already stripped)
  std::uint16_t length = 0;  ///< declared length; 0xffff = IPFIX variable
  bool enterprise = false;   ///< IPFIX enterprise-specific field
};

/// Compiles a NetFlow v9 template. v9 has no variable-length fields, so
/// the result is always `fast` unless the record exceeds u16 offsets.
[[nodiscard]] CompiledPlan compile_netflow_v9(
    std::span<const WireField> fields);

/// Compiles an IPFIX template. Variable-length fields (declared length
/// 0xffff — checked before the enterprise bit, mirroring the reference
/// decoder) force `fast = false`. Enterprise fields are fixed-length
/// skips.
[[nodiscard]] CompiledPlan compile_ipfix(std::span<const WireField> fields);

/// Decodes `body` under a fast plan, appending floor(body.size() /
/// record_len) rows to `out`. Returns the number of rows appended.
/// Preconditions: `plan.fast` and `plan.record_len > 0`.
std::size_t execute(const CompiledPlan& plan,
                    std::span<const std::uint8_t> body, FlowBatch& out);

}  // namespace haystack::flow::plan
