// Figure 14 reproduction: the per-day detected-subscriber counts for the 32
// IoT device types that are neither Alexa Enabled nor Samsung, annotated
// with each device's market-popularity bucket in the ISP's country.
#include <iostream>
#include <map>
#include <vector>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;

  static const std::set<std::string> kExcluded = {
      "Alexa Enabled", "Amazon Product", "Fire TV", "Samsung IoT",
      "Samsung TV"};

  // Collect daily counts per service.
  std::map<core::ServiceId, std::vector<std::size_t>> daily;
  bench::WildSweep sweep{world};
  sweep.set_daily([&](util::HourBin, const bench::BinResult& bin) {
    for (const auto& rule : world.rules().rules) {
      const auto it = bin.by_service.find(rule.service);
      daily[rule.service].push_back(
          it == bin.by_service.end() ? 0 : it->second.size());
    }
  });
  sweep.run(0, util::kStudyHours);

  // Popularity annotation: the most popular product mapped to each unit.
  auto popularity_of = [&](const core::DetectionRule& rule) {
    const auto* unit = world.catalog().unit_by_name(rule.name);
    simnet::Popularity best = simnet::Popularity::kOther;
    for (const auto pid : world.catalog().products_of(unit->id)) {
      const auto& p = world.catalog().products()[pid];
      if (static_cast<int>(p.popularity) < static_cast<int>(best)) {
        best = p.popularity;
      }
    }
    return best;
  };

  // Sort rows by mean count descending, as the figure's visual ordering.
  struct Row {
    const core::DetectionRule* rule;
    double mean;
  };
  std::vector<Row> rows;
  for (const auto& rule : world.rules().rules) {
    if (kExcluded.contains(rule.name)) continue;
    double mean = 0;
    for (const auto c : daily[rule.service]) mean += double(c);
    mean /= double(daily[rule.service].size());
    rows.push_back({&rule, mean});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mean > b.mean; });

  util::print_banner(std::cout,
                     "Figure 14: daily subscriber lines per IoT device "
                     "type (32 types, population " +
                         util::fmt_count(world.lines()) + ")");
  util::TextTable table;
  table.header({"Device (level)", "Popularity", "Mean lines/day", "Min",
                "Max", "@15M"});
  for (const auto& row : rows) {
    const auto& series = daily[row.rule->service];
    const auto [min_it, max_it] =
        std::minmax_element(series.begin(), series.end());
    table.row(
        {row.rule->name + " (" +
             std::string{core::level_name(row.rule->level)} + ")",
         std::string{simnet::popularity_name(popularity_of(*row.rule))},
         util::fmt_double(row.mean, 1), util::fmt_count(*min_it),
         util::fmt_count(*max_it),
         util::fmt_count(static_cast<std::uint64_t>(
             row.mean * world.scale_to_paper()))});
  }
  table.print(std::cout);
  std::cout << "\nRows: " << rows.size()
            << " (paper: 32). Counts are stable across days; popular "
               "devices dominate, while off-market devices (Microseven) "
               "still show isolated deployments.\n";
  return 0;
}
