// Background reporter (ISSUE 5): a thread that periodically scrapes the
// MetricRegistry, renders the snapshot (Prometheus text or JSON) and hands
// it to a caller-supplied sink — the in-process stand-in for an external
// scrape endpoint. The scrape path only reads atomics and copies strings,
// so it is safe to run full-rate while every pipeline stage is ingesting
// (the TSan pass in tests/run_sanitizers.sh covers exactly that overlap).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace haystack::obs {

enum class ExportFormat : std::uint8_t { kPrometheus, kJson };

struct ReporterConfig {
  std::chrono::milliseconds period{1000};
  ExportFormat format = ExportFormat::kPrometheus;
  /// When set, each scrape also records EventKind::kScrape (a = scrape #,
  /// b = rendered bytes) so dumps show when observation itself happened.
  FlightRecorder* recorder = nullptr;
};

/// Periodic scraper. start() spawns the thread; stop() (or destruction)
/// joins it. The sink runs on the reporter thread.
class Reporter {
 public:
  using Sink = std::function<void(const std::string& rendered)>;

  Reporter(MetricRegistry& registry, ReporterConfig config, Sink sink);
  ~Reporter();

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  void start();
  void stop();

  /// Renders and delivers one scrape synchronously on the calling thread
  /// (works whether or not the background thread is running).
  void scrape_now();

  /// Completed scrapes (background + scrape_now).
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

 private:
  void run();
  void do_scrape();

  MetricRegistry& registry_;
  const ReporterConfig config_;
  const Sink sink_;

  std::atomic<std::uint64_t> scrapes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace haystack::obs
