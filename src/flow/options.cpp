#include "flow/options.hpp"

namespace haystack::flow::nf9 {

std::vector<std::uint8_t> encode_sampling_announcement(
    const SamplingAnnouncement& announcement, std::uint32_t unix_secs,
    std::uint32_t sequence) {
  ByteWriter w;
  w.u16(9);
  w.u16(2);  // two flowsets: options template + options data
  w.u32(unix_secs * 1000U);
  w.u32(unix_secs);
  w.u32(sequence);
  w.u32(announcement.source_id);

  // Options template flowset (id 1): template id, scope length (bytes),
  // option length (bytes), then scope fields and option fields.
  {
    const std::size_t len_off = w.size() + 2;
    w.u16(1);
    w.u16(0);
    w.u16(kOptionsTemplateId);
    w.u16(4);   // scope section: one (type, len) pair = 4 bytes
    w.u16(8);   // options section: two pairs = 8 bytes
    w.u16(kScopeSystem);
    w.u16(0);   // system scope carries no data bytes
    w.u16(kFieldSamplingInterval);
    w.u16(4);
    w.u16(kFieldSamplingAlgorithm);
    w.u16(1);
    // Pad flowset to 32-bit boundary.
    const std::size_t unpadded = w.size() - (len_off - 2);
    w.pad((4 - unpadded % 4) % 4);
    w.patch_u16(len_off,
                static_cast<std::uint16_t>(w.size() - (len_off - 2)));
  }

  // Options data flowset (id = options template id).
  {
    const std::size_t len_off = w.size() + 2;
    w.u16(kOptionsTemplateId);
    w.u16(0);
    w.u32(announcement.interval);
    w.u8(static_cast<std::uint8_t>(announcement.algorithm));
    const std::size_t unpadded = w.size() - (len_off - 2);
    w.pad((4 - unpadded % 4) % 4);
    w.patch_u16(len_off,
                static_cast<std::uint16_t>(w.size() - (len_off - 2)));
  }
  return w.take();
}

bool SamplingRegistry::ingest(std::span<const std::uint8_t> packet) {
  ByteReader r{packet};
  const std::uint16_t version = r.u16();
  r.u16();  // count
  r.u32();
  r.u32();
  r.u32();
  const std::uint32_t source_id = r.u32();
  if (!r.ok() || version != 9) return false;

  bool learned = false;
  while (r.ok() && r.remaining() >= 4) {
    const std::uint16_t flowset_id = r.u16();
    const std::uint16_t length = r.u16();
    if (length < 4 ||
        static_cast<std::size_t>(length - 4) > r.remaining()) {
      return learned;
    }
    ByteReader body = r.slice(length - 4U);

    if (flowset_id == 1) {
      // Options template: record the layout.
      while (body.ok() && body.remaining() >= 6) {
        const std::uint16_t template_id = body.u16();
        const std::uint16_t scope_bytes = body.u16();
        const std::uint16_t option_bytes = body.u16();
        Layout layout;
        layout.scope_bytes = 0;
        // Scope section: sum the *data* lengths.
        std::uint16_t consumed = 0;
        while (consumed < scope_bytes && body.ok()) {
          body.u16();  // scope type
          layout.scope_bytes += body.u16();
          consumed += 4;
        }
        consumed = 0;
        while (consumed < option_bytes && body.ok()) {
          const std::uint16_t type = body.u16();
          const std::uint16_t len = body.u16();
          layout.fields.emplace_back(type, len);
          consumed += 4;
        }
        if (body.ok()) layouts_[{source_id, template_id}] = layout;
        // Padding (if any) is consumed by the outer slice boundary.
        if (body.remaining() < 6) break;
      }
    } else if (flowset_id >= 256) {
      const auto it = layouts_.find({source_id, flowset_id});
      if (it == layouts_.end()) continue;
      const Layout& layout = it->second;
      std::size_t record_bytes = layout.scope_bytes;
      for (const auto& [type, len] : layout.fields) record_bytes += len;
      if (record_bytes == 0) continue;
      while (body.ok() && body.remaining() >= record_bytes) {
        body.skip(layout.scope_bytes);
        State state;
        bool got_interval = false;
        for (const auto& [type, len] : layout.fields) {
          if (type == kFieldSamplingInterval && len == 4) {
            state.interval = body.u32();
            got_interval = true;
          } else if (type == kFieldSamplingAlgorithm && len == 1) {
            state.algorithm = static_cast<SamplingAlgorithm>(body.u8());
          } else {
            body.skip(len);
          }
        }
        if (body.ok() && got_interval) {
          if (state.interval == 0) {
            // Zero would divide-by-zero every upscaling consumer; treat
            // as "no sampling" and account for the broken announcement.
            state.interval = 1;
            ++zero_interval_announcements_;
          }
          state_[source_id] = state;
          learned = true;
        }
      }
    }
  }
  return learned;
}

std::optional<std::uint32_t> SamplingRegistry::interval_of(
    std::uint32_t source_id) const {
  const auto it = state_.find(source_id);
  if (it == state_.end()) return std::nullopt;
  return it->second.interval;
}

std::optional<SamplingAlgorithm> SamplingRegistry::algorithm_of(
    std::uint32_t source_id) const {
  const auto it = state_.find(source_id);
  if (it == state_.end()) return std::nullopt;
  return it->second.algorithm;
}

}  // namespace haystack::flow::nf9
