// Sharded, thread-parallel detector with a persistent worker pool.
//
// The per-flow work is one hash lookup plus a bitset update, so a single
// core already absorbs an ISP's sampled flow volume (see bench/
// perf_pipeline). For headroom — or for replaying weeks of archived flows
// "within minutes" — the detector shards by subscriber: evidence for one
// subscriber lives in exactly one shard, shards share the immutable
// hitlist and rules, and each shard owns a long-lived worker thread
// consuming its own bounded queue of observation chunks
// (pipeline::ShardPool). Batches stream through persistent workers
// instead of spawning threads per batch, enqueue_batch() lets an upstream
// pipeline stage keep feeding without a barrier, and blocking
// backpressure bounds memory when producers outrun the shards.
//
// Ordering contract: observations for one subscriber always route to the
// same shard queue (FIFO, single consumer), so per-subscriber relative
// order — and therefore the evidence bits — is identical to a sequential
// replay, for any shard count, queue capacity, or batching.
//
// Read APIs first wait for quiescence (drain()), so anything observed or
// batched before a read is visible to it — the synchronous contract is
// unchanged. observe() and enqueue_batch() are safe to call concurrently
// from multiple threads (including concurrently with process_batch).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/detector.hpp"
#include "obs/observability.hpp"
#include "pipeline/shard_pool.hpp"

namespace haystack::core {

/// One flow observation, direction-normalized.
struct Observation {
  SubscriberKey subscriber = 0;
  net::IpAddress server;
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
  util::HourBin hour = 0;
};

/// Detector sharded by subscriber key.
class ShardedDetector {
 public:
  /// `shards` worker partitions (>= 1), each with its own bounded chunk
  /// queue of `queue_capacity` entries. Shares `hitlist`/`rules` which
  /// must outlive the detector. When `obs` is non-null, each shard gets
  /// per-shard registry instruments (labels {{"shard", N}}) including its
  /// own detect-stage wave histograms, and the shard pool records
  /// backpressure/slow-wave flight events.
  ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                  const DetectorConfig& config, unsigned shards,
                  std::size_t queue_capacity = 1024,
                  obs::Observability* obs = nullptr);
  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  /// Processes a batch synchronously: partitions by subscriber shard,
  /// enqueues one chunk per shard, and waits for quiescence. Observations
  /// for one subscriber keep their relative order.
  void process_batch(std::span<const Observation> batch);

  /// Streaming path: like process_batch but without the barrier — the
  /// caller may keep enqueueing while shard workers consume. Blocks only
  /// when a shard queue is full (backpressure).
  void enqueue_batch(std::span<const Observation> batch);

  /// Single-observation path, routed through the owning shard's queue —
  /// safe to call concurrently with process_batch/enqueue_batch from any
  /// thread. Applied by the time any read API returns.
  void observe(const Observation& obs);

  /// Quiescence barrier: returns once everything enqueued before the call
  /// has been applied. All read APIs call this implicitly.
  void drain() const;

  /// Hierarchy-aware detection (delegates to the owning shard).
  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const;
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  /// Loss-aware verdict (delegates to the owning shard).
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const;

  /// Propagates the estimated channel loss to every shard.
  void set_observed_loss(double fraction) noexcept;

  /// Checkpoint support: routes the evidence row to its owning shard /
  /// installs the saved totals (in shard 0, so stats() reproduces them).
  /// Not safe concurrently with producers (restore is a cold path).
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Detector::Stats& stats);

  /// Visits evidence across all shards (single-threaded).
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  void clear();

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] Detector::Stats stats() const;
  /// Shared per-shard configuration.
  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return shards_[0]->config();
  }

  /// Per-shard ingest-queue telemetry (depth/throughput/stalls).
  [[nodiscard]] telemetry::StageStats shard_queue_stats(
      unsigned shard) const;

 private:
  using Chunk = std::vector<Observation>;

  [[nodiscard]] std::size_t shard_of(SubscriberKey subscriber) const {
    return util::fnv1a_u64(subscriber) % shards_.size();
  }

  std::vector<std::unique_ptr<Detector>> shards_;
  // Keep the per-shard detect-stage wave histograms alive for the pool's
  // lifetime (the pool config holds raw pointers into them).
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_ns_;
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_items_;
  // mutable: drain() is logically const — it completes writes that the
  // API contract already promised were visible.
  mutable std::unique_ptr<pipeline::ShardPool<Chunk>> pool_;
};

}  // namespace haystack::core
