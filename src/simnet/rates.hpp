// Per-domain traffic-rate model shared by the testbed and wild simulators.
//
// Every unit domain gets a deterministic mean idle packets/hour: the unit's
// base rate times a log-normal multiplier keyed on the domain identity.
// The multiplier's spread produces the paper's Fig. 8/9 picture — most
// device/domain pairs around 10^2 packets/hour, a laconic tail near 1, and
// gossip domains reaching 10^4.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/catalog.hpp"

namespace haystack::simnet {

/// Cached per-domain mean idle rates.
class DomainRateModel {
 public:
  /// `sigma` is the log-normal spread of per-domain multipliers.
  DomainRateModel(const Catalog& catalog, std::uint64_t seed,
                  double sigma = 1.5);

  /// Mean idle packets/hour for the domain at `domain_index` of `unit`.
  [[nodiscard]] double idle_rate(UnitId unit, unsigned domain_index) const;

  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }

 private:
  const Catalog& catalog_;
  // Indexed in catalog.domains() order.
  std::vector<double> rates_;
  std::vector<std::uint32_t> unit_offsets_;  // first domain row per unit
};

}  // namespace haystack::simnet
