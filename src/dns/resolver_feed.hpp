// ISP-resolver DNS feed (paper Sec. 7.4).
//
// "Our analysis could be simplified if an ISP/IXP had access to all DNS
// queries and responses. Even having a partial list, e.g., from the local
// DNS resolver of the ISP, could improve our methodology."
//
// ResolverFeed implements that improvement path: it consumes wire-format
// DNS *responses* observed at the resolver, extracts the A/AAAA/CNAME
// answer records, and materializes them into a PassiveDnsDb that the
// standard classification pipeline consumes — no code change downstream.
// A privacy budget is enforced: only answers for names on an allowlist
// (the IoT-candidate domains) are retained, so the feed never becomes a
// general user-browsing log.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>

#include "dns/dns_wire.hpp"
#include "dns/passive_dns.hpp"
#include "util/sim_clock.hpp"

namespace haystack::dns {

/// Feed statistics.
struct FeedStats {
  std::uint64_t messages = 0;
  std::uint64_t malformed = 0;
  std::uint64_t answers_kept = 0;
  std::uint64_t answers_filtered = 0;  ///< dropped by the allowlist
};

/// Streaming resolver-log consumer.
class ResolverFeed {
 public:
  /// `db` outlives the feed. An empty allowlist keeps everything (lab use
  /// only; production deployments must scope the feed).
  explicit ResolverFeed(PassiveDnsDb& db) : db_{db} {}

  /// Restricts retention to names whose registrable domain is listed.
  void allow_sld(const Fqdn& sld) { allowlist_.insert(sld); }

  /// Ingests one wire-format DNS message observed on `day`. Queries and
  /// malformed messages are counted and dropped.
  bool ingest(std::span<const std::uint8_t> message, util::DayBin day);

  [[nodiscard]] const FeedStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] bool allowed(const Fqdn& name) const;

  PassiveDnsDb& db_;
  std::unordered_set<Fqdn> allowlist_;
  FeedStats stats_;
};

}  // namespace haystack::dns
