#include "core/sharded_detector.hpp"

#include <algorithm>

namespace haystack::core {

ShardedDetector::ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                                 const DetectorConfig& config,
                                 unsigned shards,
                                 std::size_t queue_capacity,
                                 obs::Observability* obs) {
  const unsigned n = std::max(1u, shards);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Detector>(hitlist, rules, config));
    if (obs != nullptr) {
      // Per-shard counter/gauge series so hot increments never share a
      // cache line across shards; the time-to-detection histogram is one
      // series (detection transitions are rare).
      const obs::Labels shard_labels{{"shard", std::to_string(s)}};
      DetectorInstruments inst;
      inst.flows = obs->registry.counter("detector_flows_total", shard_labels);
      inst.matched =
          obs->registry.counter("detector_matched_total", shard_labels);
      inst.rules_satisfied =
          obs->registry.counter("detector_rules_satisfied_total", shard_labels);
      inst.evidence_entries =
          obs->registry.gauge("detector_evidence_entries", shard_labels);
      inst.time_to_detection_hours =
          obs->registry.histogram("detector_time_to_detection_hours");
      inst.recorder = &obs->recorder;
      inst.source = s;
      shards_.back()->set_instruments(std::move(inst));
    }
  }
  // Persistent workers: one long-lived thread per shard, consuming that
  // shard's chunk queue. The handler runs on worker s and touches only
  // shards_[s], so the hot path stays lock-free on evidence state.
  pipeline::ShardPoolConfig pool_config{.shards = n,
                                        .queue_capacity = queue_capacity,
                                        .max_wave = 64};
  if (obs != nullptr) {
    // One wave-span series per shard: wave records happen on every worker
    // wake-up, so a single shared histogram would put all workers on the
    // same atomic cache lines — measured at >15% streaming-bench overhead
    // at 8 shards versus ~1% with per-shard series.
    detect_wave_ns_.reserve(n);
    detect_wave_items_.reserve(n);
    pool_config.wave_ns_by_shard.reserve(n);
    pool_config.wave_items_by_shard.reserve(n);
    for (unsigned s = 0; s < n; ++s) {
      const obs::Labels stage{{"shard", std::to_string(s)},
                              {"stage", obs::stage_name(obs::kStageDetect)}};
      detect_wave_ns_.push_back(
          obs->registry.histogram("stage_wave_ns", stage));
      detect_wave_items_.push_back(
          obs->registry.histogram("stage_wave_items", stage));
      pool_config.wave_ns_by_shard.push_back(detect_wave_ns_.back().get());
      pool_config.wave_items_by_shard.push_back(
          detect_wave_items_.back().get());
    }
    pool_config.recorder = &obs->recorder;
    pool_config.stage_tag = obs::kStageDetect;
  }
  pool_ = std::make_unique<pipeline::ShardPool<Chunk>>(
      pool_config,
      [this](unsigned s, std::vector<Chunk>& wave) {
        Detector& det = *shards_[s];
        for (const Chunk& chunk : wave) {
          for (const Observation& obs : chunk) {
            det.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                        obs.hour);
          }
        }
      });
}

ShardedDetector::~ShardedDetector() { pool_->stop(); }

void ShardedDetector::observe(const Observation& obs) {
  pool_->submit(static_cast<unsigned>(shard_of(obs.subscriber)),
                Chunk{obs});
}

void ShardedDetector::enqueue_batch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  if (n == 1) {
    pool_->submit(0, Chunk{batch.begin(), batch.end()});
    return;
  }
  // Partition preserving per-subscriber order; one chunk per shard keeps
  // queue traffic proportional to shards, not observations.
  std::vector<Chunk> parts(n);
  for (auto& p : parts) p.reserve(batch.size() / n + 1);
  for (const auto& obs : batch) {
    parts[shard_of(obs.subscriber)].push_back(obs);
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!parts[s].empty()) {
      pool_->submit(static_cast<unsigned>(s), std::move(parts[s]));
    }
  }
}

void ShardedDetector::process_batch(std::span<const Observation> batch) {
  enqueue_batch(batch);
  pool_->drain();
}

void ShardedDetector::drain() const { pool_->drain(); }

bool ShardedDetector::detected(SubscriberKey subscriber,
                               ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detected(subscriber, service);
}

std::optional<util::HourBin> ShardedDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->detection_hour(subscriber, service);
}

Verdict ShardedDetector::verdict(SubscriberKey subscriber,
                                 ServiceId service) const {
  drain();
  return shards_[shard_of(subscriber)]->verdict(subscriber, service);
}

void ShardedDetector::set_observed_loss(double fraction) noexcept {
  drain();
  for (const auto& shard : shards_) shard->set_observed_loss(fraction);
}

void ShardedDetector::restore_evidence(SubscriberKey subscriber,
                                       ServiceId service,
                                       const Evidence& evidence) {
  drain();
  shards_[shard_of(subscriber)]->restore_evidence(subscriber, service,
                                                  evidence);
}

void ShardedDetector::restore_stats(const Detector::Stats& stats) {
  drain();
  shards_[0]->restore_stats(stats);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->restore_stats({});
  }
}

void ShardedDetector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  drain();
  for (const auto& shard : shards_) shard->for_each_evidence(fn);
}

void ShardedDetector::clear() {
  drain();
  for (const auto& shard : shards_) shard->clear();
}

Detector::Stats ShardedDetector::stats() const {
  drain();
  Detector::Stats total;
  for (const auto& shard : shards_) {
    total.flows += shard->stats().flows;
    total.matched += shard->stats().matched;
  }
  return total;
}

telemetry::StageStats ShardedDetector::shard_queue_stats(
    unsigned shard) const {
  return pool_->stats(shard);
}

}  // namespace haystack::core
