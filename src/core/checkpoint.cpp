#include "core/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

#include "flow/wire.hpp"

namespace haystack::core {

namespace {

struct Entry {
  SubscriberKey subscriber;
  ServiceId service;
  Evidence evidence;
};

template <typename DetectorT>
std::vector<std::uint8_t> save_impl(const DetectorT& detector,
                                    double threshold,
                                    const Detector::Stats& stats) {
  std::vector<Entry> entries;
  detector.for_each_evidence(
      [&entries](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        entries.push_back({sub, svc, ev});
      });
  // Hash-map iteration order is not deterministic across runs; sorting
  // makes identical state produce identical checkpoint bytes.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.subscriber, a.service) <
                     std::tie(b.subscriber, b.service);
            });

  flow::ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(std::bit_cast<std::uint64_t>(threshold));
  w.u64(stats.flows);
  w.u64(stats.matched);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u64(e.subscriber);
    w.u16(e.service);
    w.u64(e.evidence.mask[0]);
    w.u64(e.evidence.mask[1]);
    w.u16(e.evidence.distinct);
    w.u64(e.evidence.packets);
    w.u32(e.evidence.first_seen);
    w.u32(e.evidence.satisfied_hour);
  }
  return w.take();
}

struct Parsed {
  Detector::Stats stats;
  std::vector<Entry> entries;
};

bool parse_impl(std::span<const std::uint8_t> blob, double threshold,
                Parsed& out, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  flow::ByteReader r{blob};
  if (r.u32() != kCheckpointMagic) return fail("bad checkpoint magic");
  const std::uint32_t version = r.u32();
  if (!r.ok()) return fail("truncated checkpoint header");
  if (version != kCheckpointVersion) {
    return fail("unsupported checkpoint version");
  }
  const std::uint64_t threshold_bits = r.u64();
  if (threshold_bits != std::bit_cast<std::uint64_t>(threshold)) {
    return fail("checkpoint written under a different threshold");
  }
  out.stats.flows = r.u64();
  out.stats.matched = r.u64();
  const std::uint64_t count = r.u64();
  if (!r.ok()) return fail("truncated checkpoint header");
  // Each entry is 42 bytes; reject counts the blob cannot hold before
  // reserve() turns them into an allocation.
  constexpr std::size_t kEntryBytes = 8 + 2 + 8 + 8 + 2 + 8 + 4 + 4;
  if (count > r.remaining() / kEntryBytes) {
    return fail("truncated checkpoint body");
  }
  if (count * kEntryBytes != r.remaining()) {
    return fail("trailing bytes after checkpoint body");
  }
  out.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e{};
    e.subscriber = r.u64();
    e.service = r.u16();
    e.evidence.mask[0] = r.u64();
    e.evidence.mask[1] = r.u64();
    e.evidence.distinct = r.u16();
    e.evidence.packets = r.u64();
    e.evidence.first_seen = r.u32();
    e.evidence.satisfied_hour = r.u32();
    out.entries.push_back(e);
  }
  if (!r.ok() || r.remaining() != 0) return fail("malformed checkpoint body");
  return true;
}

template <typename DetectorT>
std::vector<std::uint8_t> save_with_event(const DetectorT& detector,
                                          obs::FlightRecorder* recorder) {
  auto blob =
      save_impl(detector, detector.config().threshold, detector.stats());
  if (recorder != nullptr) {
    constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;
    constexpr std::size_t kEntryBytes = 8 + 2 + 8 + 8 + 2 + 8 + 4 + 4;
    recorder->record(obs::EventKind::kCheckpointSave, 0,
                     (blob.size() - kHeaderBytes) / kEntryBytes, blob.size());
  }
  return blob;
}

template <typename DetectorT>
bool restore_with_event(std::span<const std::uint8_t> blob,
                        DetectorT& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  Parsed parsed;
  if (!parse_impl(blob, detector.config().threshold, parsed, error)) {
    if (recorder != nullptr) {
      recorder->record(obs::EventKind::kCheckpointRejected, 0, blob.size());
    }
    return false;
  }
  detector.clear();
  detector.restore_stats(parsed.stats);
  for (const auto& e : parsed.entries) {
    detector.restore_evidence(e.subscriber, e.service, e.evidence);
  }
  if (recorder != nullptr) {
    recorder->record(obs::EventKind::kCheckpointRestore, 0,
                     parsed.entries.size(), blob.size());
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const Detector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder);
}

std::vector<std::uint8_t> save_checkpoint(const ShardedDetector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        Detector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        ShardedDetector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

}  // namespace haystack::core
