// Figure 10 reproduction: time to detect every unit from sampled ISP data,
// per detection threshold D in {0.1 .. 1.0}, for the active and idle
// ground-truth windows — plus the Sec. 5 summary percentages at D=0.4.
#include <iostream>
#include <map>

#include "common.hpp"
#include "core/detector.hpp"

using namespace haystack;

namespace {

// Detection latency (hours after the unit's first Home-VP traffic) per
// service for one window and threshold; missing = not detected.
std::map<core::ServiceId, unsigned> run_window(const bench::SimWorld& world,
                                               util::HourBin start,
                                               util::HourBin end,
                                               double threshold) {
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};
  core::Detector det{world.rules().hitlist, world.rules(),
                     {.threshold = threshold}};
  std::map<core::ServiceId, util::HourBin> first_traffic;
  for (util::HourBin h = start; h < end; ++h) {
    const auto home = world.gt().hour_flows(h);
    for (const auto& f : home) {
      if (f.unit && !first_traffic.contains(*f.unit)) {
        first_traffic[*f.unit] = h;
      }
    }
    for (const auto& f : isp.observe(home, h)) {
      det.observe(1, f.flow.key.dst, f.flow.key.dst_port, f.flow.packets,
                  h);
    }
  }
  std::map<core::ServiceId, unsigned> latency;
  for (const auto& rule : world.rules().rules) {
    if (const auto dh = det.detection_hour(1, rule.service)) {
      const auto t0 = first_traffic.contains(rule.service)
                          ? first_traffic[rule.service]
                          : start;
      latency[rule.service] = *dh - t0;
    }
  }
  return latency;
}

void print_window(const bench::SimWorld& world, const char* label,
                  util::HourBin start, util::HourBin end) {
  static constexpr double kThresholds[] = {0.1, 0.25, 0.4, 0.6, 0.8, 1.0};
  std::map<double, std::map<core::ServiceId, unsigned>> results;
  for (const double d : kThresholds) {
    results[d] = run_window(world, start, end, d);
  }

  util::print_banner(std::cout, std::string{"Figure 10 ("} + label +
                                    "): hours to detect per threshold D");
  util::TextTable table;
  table.header({"Unit (level)", "N", "D=0.1", "D=0.25", "D=0.4", "D=0.6",
                "D=0.8", "D=1.0"});
  for (const auto& rule : world.rules().rules) {
    std::vector<std::string> row{
        rule.name + " (" + std::string{core::level_name(rule.level)} + ")",
        std::to_string(rule.monitored_domains)};
    for (const double d : kThresholds) {
      const auto it = results[d].find(rule.service);
      row.push_back(it == results[d].end() ? "-"
                                           : std::to_string(it->second) + "h");
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  // Sec. 5 summary at the conservative D=0.4.
  const auto& at04 = results[0.4];
  unsigned total = 0, w1 = 0, w24 = 0, w72 = 0;
  unsigned pr_total = 0, pr1 = 0, pr24 = 0, pr72 = 0;
  for (const auto& rule : world.rules().rules) {
    if (rule.level == core::Level::kPlatform) continue;
    ++total;
    if (rule.level == core::Level::kProduct) ++pr_total;
    const auto it = at04.find(rule.service);
    if (it == at04.end()) continue;
    const unsigned t = it->second;
    if (t <= 1) { ++w1; if (rule.level == core::Level::kProduct) ++pr1; }
    if (t <= 24) { ++w24; if (rule.level == core::Level::kProduct) ++pr24; }
    if (t <= 72) { ++w72; if (rule.level == core::Level::kProduct) ++pr72; }
  }
  std::cout << "\nD=0.4, manufacturer+product units (" << total
            << "): within 1h " << util::fmt_percent(double(w1) / total)
            << ", 24h " << util::fmt_percent(double(w24) / total) << ", 72h "
            << util::fmt_percent(double(w72) / total) << "\n";
  std::cout << "D=0.4, product-level units (" << pr_total << "): within 1h "
            << util::fmt_percent(double(pr1) / pr_total) << ", 24h "
            << util::fmt_percent(double(pr24) / pr_total) << ", 72h "
            << util::fmt_percent(double(pr72) / pr_total) << "\n";
}

}  // namespace

int main() {
  bench::SimWorld world;
  print_window(world, "active experiments", 0, util::day_start(4));
  print_window(world, "idle experiments",
               util::day_start(util::kIdleFirstDay),
               util::day_start(util::kIdleFirstDay) + 72);
  std::cout << "\nPaper: active 72/93/96% within 1/24/72h (Man.+Pr., "
               "D=0.4); idle 40/73/76%; product-level active 63/81/90%; "
               "6 devices undetectable across the idle window.\n";
  return 0;
}
