#include "dns/resolver_feed.hpp"

namespace haystack::dns {

bool ResolverFeed::allowed(const Fqdn& name) const {
  return allowlist_.empty() || allowlist_.contains(name.registrable());
}

bool ResolverFeed::ingest(std::span<const std::uint8_t> message,
                          util::DayBin day) {
  const auto parsed = decode_message(message);
  if (!parsed) {
    ++stats_.malformed;
    return false;
  }
  ++stats_.messages;
  if (!parsed->is_response || parsed->rcode != 0) return true;

  for (const auto& rr : parsed->answers) {
    if (!allowed(rr.name)) {
      ++stats_.answers_filtered;
      continue;
    }
    switch (rr.type) {
      case WireType::kA:
      case WireType::kAaaa:
        db_.add_a(rr.name, rr.address, day, day);
        break;
      case WireType::kCname:
        db_.add_cname(rr.name, rr.target, day, day);
        break;
    }
    ++stats_.answers_kept;
  }
  return true;
}

}  // namespace haystack::dns
