// Vantage-point pipelines (paper Figs. 3/4).
//
// A vantage point turns ground-truth flows into what its collector actually
// records:
//
//   * HomeVantage — the instrumented subscriber line: full, unsampled view.
//   * IspVantage — border-router NetFlow: 1-in-N packet sampling (binomial
//     thinning per flow), then optionally a *real* NetFlow v9
//     encode-transmit-decode round trip, so the wire codec sits on the
//     measurement path exactly as in production.
//   * IxpVantage — IPFIX at an order-of-magnitude lower sampling, plus the
//     established-TCP guard the paper applies against spoofing.
//
// All three preserve the simulation's ground-truth labels alongside each
// surviving flow so that evaluation code can compute visibility without
// re-identification.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/ipfix.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/sampler.hpp"
#include "simnet/ground_truth.hpp"
#include "util/rng.hpp"

namespace haystack::telemetry {

/// The unsampled home vantage: identity, provided for pipeline symmetry.
class HomeVantage {
 public:
  /// Returns the flows unchanged.
  [[nodiscard]] static std::vector<simnet::LabeledFlow> observe(
      std::vector<simnet::LabeledFlow> flows) {
    return flows;
  }
};

/// ISP border NetFlow vantage.
class IspVantage {
 public:
  struct Config {
    std::uint64_t seed = 2020;
    std::uint32_t sampling = 1000;
    /// When set, every surviving flow batch is round-tripped through the
    /// NetFlow v9 exporter and collector.
    bool wire_roundtrip = true;
  };

  explicit IspVantage(const Config& config)
      : config_{config},
        exporter_{{.source_id = 7, .sampling = config.sampling,
                   .max_records_per_packet = 24,
                   .template_refresh_packets = 16}} {}

  /// Applies packet sampling (and the optional wire round trip) to one
  /// hour's flows. Labels of surviving flows are preserved by order.
  [[nodiscard]] std::vector<simnet::LabeledFlow> observe(
      const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour);

  /// Collector statistics of the wire path (templates, records, errors).
  [[nodiscard]] const flow::nf9::CollectorStats& wire_stats() const noexcept {
    return collector_.stats();
  }

 private:
  Config config_;
  flow::nf9::Exporter exporter_;
  flow::nf9::Collector collector_;
};

/// IXP fabric IPFIX vantage.
class IxpVantage {
 public:
  struct Config {
    std::uint64_t seed = 2021;
    std::uint32_t sampling = 10'000;
    bool wire_roundtrip = true;
    /// Require TCP flows to show an established connection (Sec. 6.3).
    bool require_established_tcp = true;
  };

  explicit IxpVantage(const Config& config)
      : config_{config},
        exporter_{{.observation_domain = 42, .sampling = config.sampling,
                   .max_records_per_message = 24,
                   .template_refresh_messages = 16}} {}

  [[nodiscard]] std::vector<simnet::LabeledFlow> observe(
      const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour);

  [[nodiscard]] const flow::ipfix::CollectorStats& wire_stats()
      const noexcept {
    return collector_.stats();
  }

 private:
  Config config_;
  flow::ipfix::Exporter exporter_;
  flow::ipfix::Collector collector_;
};

}  // namespace haystack::telemetry
