// NetFlow v9 export packet codec (RFC 3954).
//
// The ISP vantage point in the paper collects NetFlow v9 from all border
// routers. This codec implements the real wire format: the 20-byte packet
// header, template flowsets (id 0) describing record layouts as
// (field type, length) pairs, and data flowsets carrying back-to-back
// records padded to 32-bit alignment.
//
// The encoder emits one template per address family (IPv4 template 256,
// IPv6 template 257) followed by data flowsets. The decoder is
// template-driven and stateful across packets, exactly as a production
// collector must be: templates learned from earlier packets decode data
// flowsets of later ones; data flowsets whose template is unknown are
// counted and skipped, not errors.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "flow/flow_batch.hpp"
#include "flow/gap_tracker.hpp"
#include "flow/record.hpp"
#include "flow/template_plan.hpp"
#include "flow/wire.hpp"
#include "obs/flight_recorder.hpp"

namespace haystack::flow::nf9 {

/// NetFlow v9 field type numbers used by this implementation (RFC 3954 §8).
enum class FieldType : std::uint16_t {
  kInBytes = 1,
  kInPkts = 2,
  kProtocol = 4,
  kTcpFlags = 6,
  kL4SrcPort = 7,
  kIpv4SrcAddr = 8,
  kL4DstPort = 11,
  kIpv4DstAddr = 12,
  kLastSwitched = 21,
  kFirstSwitched = 22,
  kIpv6SrcAddr = 27,
  kIpv6DstAddr = 28,
  kSamplingInterval = 34,
};

/// Template ids chosen by the exporter (must be >= 256).
inline constexpr std::uint16_t kTemplateV4 = 256;
inline constexpr std::uint16_t kTemplateV6 = 257;

/// Exporter configuration.
struct ExporterConfig {
  std::uint32_t source_id = 1;        ///< engine id in the packet header
  std::uint32_t sampling = 1;         ///< 1-in-N, stamped into each record
  std::size_t max_records_per_packet = 24;
  /// Emit template flowsets every `template_refresh_packets` packets
  /// (and always in the first packet), as real exporters do.
  std::uint32_t template_refresh_packets = 20;
  /// Unix time the exporter process booted; sysUptime in the packet
  /// header is `(unix_secs - boot_unix_secs) * 1000`. A restarted
  /// exporter gets a recent boot time, so its uptime regresses toward
  /// zero — the second restart signal collectors key on.
  std::uint32_t boot_unix_secs = 0;
};

/// Stateful NetFlow v9 exporter: turns FlowRecords into export packets.
class Exporter {
 public:
  explicit Exporter(ExporterConfig config) noexcept : config_{config} {}

  /// Encodes `records` into one or more export packets. Each call advances
  /// the sequence number by the number of records emitted (per RFC 3954 the
  /// v9 sequence counts *packets*, but several major implementations count
  /// records; we follow the RFC and count packets).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t unix_secs);

  [[nodiscard]] std::uint32_t packets_sent() const noexcept {
    return packets_sent_;
  }

 private:
  void write_templates(ByteWriter& w) const;

  ExporterConfig config_;
  std::uint32_t packets_sent_ = 0;
};

/// Collector resilience knobs (ISSUE 2). The defaults keep a bare
/// collector byte-compatible with a plain decoder except that data
/// flowsets arriving before their template are parked and recovered.
struct CollectorConfig {
  /// Bound on parked data flowsets awaiting their template; the oldest is
  /// evicted (and counted) when the bound is hit. 0 disables buffering.
  std::size_t max_pending_flowsets = 64;
  /// Backward sequence distance (in packets) still treated as a reordered
  /// or replayed datagram; anything further back is an exporter restart.
  std::uint32_t reorder_window = 64;
  /// Duplicate-datagram suppression window (datagrams); 0 disables.
  std::size_t dedup_window = 0;
  /// sysUptime regression (ms) beyond which the exporter is considered
  /// restarted even when the sequence number happens to line up.
  std::uint32_t uptime_restart_slack_ms = 60'000;
  /// Optional flight recorder: restart/gap/replay/park/recover/evict
  /// events are recorded with source = the export source id (ISSUE 5).
  obs::FlightRecorder* recorder = nullptr;
};

/// Decoder statistics, exposed for monitoring and tests. Every ingested
/// datagram lands in exactly one of {packets, malformed_packets,
/// duplicate_packets}.
struct CollectorStats {
  std::uint64_t packets = 0;          ///< datagrams fully decoded
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  std::uint64_t unknown_template_flowsets = 0;
  std::uint64_t malformed_packets = 0;
  std::uint64_t duplicate_packets = 0;     ///< suppressed UDP duplicates
  std::uint64_t sequence_gaps = 0;         ///< gap events observed
  std::uint64_t estimated_lost_packets = 0;  ///< packets presumed lost
  std::uint64_t reordered_packets = 0;     ///< late (replayed) datagrams
  std::uint64_t exporter_restarts = 0;     ///< sequence/uptime resets seen
  std::uint64_t buffered_flowsets = 0;     ///< data flowsets ever parked
  std::uint64_t recovered_flowsets = 0;    ///< parked, then decoded
  std::uint64_t recovered_records = 0;     ///< records from recovery
  std::uint64_t evicted_flowsets = 0;      ///< parked, then discarded
};

/// Stateful NetFlow v9 collector: learns templates, decodes data flowsets,
/// and tolerates the UDP failure modes of real export paths — data before
/// template (parked + recovered), duplicates (suppressed), reordering and
/// loss (classified via the sequence), and exporter restarts (template
/// state reset).
class Collector {
 public:
  Collector() : Collector(CollectorConfig{}) {}
  explicit Collector(const CollectorConfig& config)
      : config_{config}, deduper_{config.dedup_window} {}

  /// Decodes one export packet, appending decoded records to `out`.
  /// Returns false when the packet was malformed (partial decode results
  /// may still have been appended). This is the record-at-a-time
  /// reference walk the differential tier pins `ingest_batch` against.
  bool ingest(std::span<const std::uint8_t> packet,
              std::vector<FlowRecord>& out);

  /// Batch decode: identical protocol handling and statistics to
  /// `ingest`, but data flowsets decode via the template's compiled
  /// field-offset plan straight into `out`'s columns (ISSUE 6). For any
  /// packet and collector state, appends exactly the rows `ingest` would
  /// have appended, bit for bit.
  bool ingest_batch(std::span<const std::uint8_t> packet, FlowBatch& out);

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

  /// Per-source stream health (loss estimate, restarts). Zeroes when the
  /// source was never seen.
  [[nodiscard]] SourceHealth health(std::uint32_t source_id) const;

  /// Aggregate estimated datagram loss fraction across all sources.
  [[nodiscard]] double estimated_loss() const;

  /// Data flowsets currently parked awaiting their template, and the bytes
  /// they hold (each parked record body byte can release at most one
  /// record later — the fuzzers use this as a decode bound).
  [[nodiscard]] std::size_t pending_flowsets() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept;

 private:
  struct TemplateField {
    std::uint16_t type;
    std::uint16_t length;
  };
  using Template = std::vector<TemplateField>;

  /// A learned template plus its decode plan, compiled once at learn time
  /// (templates are learned off the hot path; data flowsets are not).
  struct TemplateEntry {
    Template fields;
    plan::CompiledPlan plan;
  };

  struct PendingFlowset {
    std::uint32_t source_id = 0;
    std::uint16_t template_id = 0;
    std::vector<std::uint8_t> body;
  };

  struct PerSource {
    SequenceTracker tracker;
    bool have_uptime = false;
    std::uint32_t last_uptime = 0;
    std::uint32_t restarts = 0;
  };

  // `ingest` and `ingest_batch` share one protocol implementation,
  // parameterized over the record sink (RecordSink appends FlowRecords
  // via the reference walk; BatchSink executes the compiled plan into
  // FlowBatch columns). Defined in the .cpp; both instantiations live
  // there.
  template <typename Sink>
  bool ingest_impl(std::span<const std::uint8_t> packet, Sink& sink);
  template <typename Sink>
  bool decode_template_flowset(ByteReader& r, std::uint32_t source_id,
                               Sink& sink);
  template <typename Sink>
  bool decode_data(ByteReader& r, const TemplateEntry& entry, Sink& sink);
  template <typename Sink>
  void recover_pending(std::uint32_t source_id, std::uint16_t template_id,
                       Sink& sink);
  bool decode_data_flowset(ByteReader& r, const Template& tmpl,
                           std::vector<FlowRecord>& out);
  void park_flowset(std::uint32_t source_id, std::uint16_t template_id,
                    ByteReader& body);
  void handle_restart(std::uint32_t source_id, PerSource& source);

  CollectorConfig config_;
  // Templates are scoped by (source id, template id) per RFC 3954 §5.
  std::map<std::pair<std::uint32_t, std::uint16_t>, TemplateEntry>
      templates_;
  std::map<std::uint32_t, PerSource> sources_;
  std::deque<PendingFlowset> pending_;
  DatagramDeduper deduper_;
  CollectorStats stats_;
};

}  // namespace haystack::flow::nf9
