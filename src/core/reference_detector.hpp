// Deliberately naive reference model of the streaming detector.
//
// This is the oracle side of the differential tests (tests/
// differential_test.cpp): it replays the same Observation stream as
// Detector / ShardedDetector, but with the most obvious data structures
// and control flow available — an append-only observation log, a
// std::map keyed by (subscriber, service), a std::set of seen domain
// positions instead of a bitmask, and a linear scan over the rule list
// instead of the O(1) dispatch table. Every derived quantity (evidence,
// satisfaction hour, hierarchy-aware detection hour) is recomputed from
// the log on demand, so an incremental-update bug in the optimized
// detectors cannot be mirrored here.
//
// Semantics intentionally duplicated from the spec (paper Secs. 4.3/5),
// not from detector.cpp:
//   - a (subscriber, service) pair's evidence is the set of distinct
//     monitored-domain positions observed via hitlist matches, with
//     positions >= 128 contributing packets but never coverage (the
//     optimized detector's bitmask contract; the catalog maximum is 34);
//   - the service is satisfied at the hour of the first observation that
//     brings coverage to max(1, floor(D*N)) distinct domains, or that
//     shows the critical domain when it alone is sufficient;
//   - a service is detected once it and all hierarchy ancestors are
//     satisfied; the detection hour is the latest satisfaction hour on
//     the chain.
//
// Single-threaded, unoptimized, and proud of it. Do not use outside
// tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/detector.hpp"
#include "core/sharded_detector.hpp"

namespace haystack::core {

/// Naively recomputed per-(subscriber, service) evidence.
struct ReferenceEvidence {
  std::set<std::uint16_t> seen;  ///< distinct monitored positions (< 128)
  std::uint64_t packets = 0;
  util::HourBin first_seen = 0;
  std::optional<util::HourBin> satisfied_hour;
};

/// The reference model. Same constructor contract as Detector: `hitlist`
/// and `rules` must outlive the model.
class ReferenceDetector {
 public:
  ReferenceDetector(const Hitlist& hitlist, const RuleSet& rules,
                    const DetectorConfig& config)
      : hitlist_{hitlist}, rules_{rules}, config_{config} {}

  /// Appends one observation to the log. Nothing is computed here.
  void observe(const Observation& obs) {
    log_.push_back(obs);
    dirty_ = true;
  }

  /// Convenience overload mirroring Detector::observe's signature.
  void observe(SubscriberKey subscriber, const net::IpAddress& server,
               std::uint16_t port, std::uint64_t packets,
               util::HourBin hour) {
    observe(Observation{subscriber, server, port, packets, hour});
  }

  /// Evidence recomputed from the log, or nullopt when the pair never
  /// matched the hitlist.
  [[nodiscard]] std::optional<ReferenceEvidence> evidence(
      SubscriberKey subscriber, ServiceId service) const;

  /// Hierarchy-aware detection hour (see file comment), or nullopt.
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const {
    return detection_hour(subscriber, service).has_value();
  }

  /// All (subscriber, service) pairs with any evidence, sorted.
  [[nodiscard]] std::vector<std::pair<SubscriberKey, ServiceId>>
  evidence_keys() const;

  void clear() {
    log_.clear();
    dirty_ = true;
  }

  [[nodiscard]] std::size_t log_size() const noexcept { return log_.size(); }

 private:
  /// Finds the rule for a service by linear scan (no dispatch table).
  [[nodiscard]] const DetectionRule* find_rule(ServiceId service) const;

  /// Replays the whole log into the evidence map.
  void replay() const;

  const Hitlist& hitlist_;
  const RuleSet& rules_;
  DetectorConfig config_;
  std::vector<Observation> log_;

  // Lazily recomputed cache of the full replay; invalidated by observe().
  mutable bool dirty_ = true;
  mutable std::map<std::pair<SubscriberKey, ServiceId>, ReferenceEvidence>
      replayed_;
};

}  // namespace haystack::core
