// Figure 9 reproduction: ECDF of average packets/hour per (device, domain)
// pair across all IoT-specific domains, idle vs active experiments,
// measured from the generated Home-VP traffic.
#include <iostream>
#include <map>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;

  // Accumulate per (instance, unit, domain) packet totals per window.
  struct Key {
    simnet::InstanceId instance;
    simnet::UnitId unit;
    unsigned domain;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::uint64_t> active_pkts, idle_pkts;
  unsigned active_hours = 0, idle_hours = 0;

  for (util::HourBin h = 0; h < util::kStudyHours; ++h) {
    const bool active = util::in_active_window(h);
    const bool idle = util::in_idle_window(h);
    if (!active && !idle) continue;
    if (active) ++active_hours;
    if (idle) ++idle_hours;
    for (const auto& f : world.gt().hour_flows(h)) {
      if (!f.unit) continue;  // generic domains are excluded in Sec. 4.1
      auto& map = active ? active_pkts : idle_pkts;
      map[{f.instance, *f.unit, f.domain_index}] += f.flow.packets;
    }
  }

  auto build = [](const std::map<Key, std::uint64_t>& pkts, unsigned hours) {
    util::Ecdf ecdf;
    for (const auto& [key, total] : pkts) {
      ecdf.add(static_cast<double>(total) / hours);
    }
    ecdf.freeze();
    return ecdf;
  };
  auto active_ecdf = build(active_pkts, active_hours);
  auto idle_ecdf = build(idle_pkts, idle_hours);

  util::print_banner(std::cout,
                     "Figure 9: ECDF of avg packets/hour per device+domain");
  util::TextTable table;
  table.header({"Avg pkts/hour", "ECDF active", "ECDF idle"});
  for (const double x : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0,
                         10000.0}) {
    table.row({util::fmt_double(x, 0),
               util::fmt_double(active_ecdf.fraction_at(x), 3),
               util::fmt_double(idle_ecdf.fraction_at(x), 3)});
  }
  table.print(std::cout);

  std::cout << "\nMedians: active "
            << util::fmt_double(active_ecdf.quantile(0.5), 1)
            << " pkts/h, idle "
            << util::fmt_double(idle_ecdf.quantile(0.5), 1)
            << " pkts/h; active tail reaches "
            << util::fmt_double(active_ecdf.quantile(0.999), 0)
            << " pkts/h (paper: spikes past 10k during active use)\n";
  return 0;
}
