#include "core/intern.hpp"

#include <mutex>

namespace haystack::core {

std::uint32_t InternTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  // Re-check: another thread may have interned it between the locks.
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto handle = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view{names_.back()}, handle);
  return handle;
}

std::uint32_t InternTable::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

std::string_view InternTable::name(std::uint32_t handle) const {
  std::shared_lock lock(mutex_);
  return names_[handle];
}

std::size_t InternTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

void InternTable::clear() {
  std::unique_lock lock(mutex_);
  index_.clear();
  names_.clear();
}

void InternTable::serialize(std::vector<std::uint8_t>& out) const {
  std::shared_lock lock(mutex_);
  const auto count = static_cast<std::uint32_t>(names_.size());
  out.push_back(static_cast<std::uint8_t>(count >> 24));
  out.push_back(static_cast<std::uint8_t>(count >> 16));
  out.push_back(static_cast<std::uint8_t>(count >> 8));
  out.push_back(static_cast<std::uint8_t>(count));
  for (const auto& n : names_) {
    const auto len = static_cast<std::uint16_t>(n.size());
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(len));
    out.insert(out.end(), n.begin(), n.end());
  }
}

bool InternTable::restore(std::span<const std::uint8_t> data,
                          std::size_t& offset) {
  clear();
  if (offset > data.size() || data.size() - offset < 4) return false;
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) count = (count << 8) | data[offset++];
  bool ok = true;
  {
    std::unique_lock lock(mutex_);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (data.size() - offset < 2) {
        ok = false;
        break;
      }
      std::uint16_t len = static_cast<std::uint16_t>(
          (std::uint16_t{data[offset]} << 8) | data[offset + 1]);
      offset += 2;
      if (data.size() - offset < len) {
        ok = false;
        break;
      }
      names_.emplace_back(
          reinterpret_cast<const char*>(data.data()) + offset, len);
      offset += len;
      // Duplicate names in the image would silently alias handles; reject.
      if (!index_.emplace(std::string_view{names_.back()}, i).second) {
        ok = false;
        break;
      }
    }
  }
  // Never leave the table half-populated: a failed restore clears.
  if (!ok) clear();
  return ok;
}

}  // namespace haystack::core
