// Performance benchmarks (google-benchmark) for the hot path: the claim
// behind "our technique scales ... can identify millions of IoT devices
// within minutes" rests on flow-record codec throughput and per-flow
// detector cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <vector>

#include "common.hpp"
#include "core/sharded_detector.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/sampler.hpp"
#include "obs/metrics.hpp"
#include "pipeline/ingest.hpp"

namespace {

using namespace haystack;

std::vector<flow::FlowRecord> make_records(std::size_t n) {
  std::vector<flow::FlowRecord> records;
  records.reserve(n);
  util::Pcg32 rng{123, 5};
  for (std::size_t i = 0; i < n; ++i) {
    flow::FlowRecord rec;
    rec.key.src = net::IpAddress::v4(0x64400000 + rng.bounded(1 << 20));
    rec.key.dst = net::IpAddress::v4(0x8C000000 + rng.bounded(1 << 16));
    rec.key.src_port = static_cast<std::uint16_t>(32768 + rng.bounded(28000));
    rec.key.dst_port = 443;
    rec.key.proto = 6;
    rec.tcp_flags = 0x1a;
    rec.packets = 1 + rng.bounded(100);
    rec.bytes = rec.packets * 700;
    rec.start_ms = i;
    rec.end_ms = i + 100;
    rec.sampling = 1000;
    records.push_back(rec);
  }
  return records;
}

void BM_NetflowV9Encode(benchmark::State& state) {
  const auto records = make_records(1024);
  flow::nf9::Exporter exporter{{}};
  for (auto _ : state) {
    auto packets = exporter.export_flows(records, 1574000000);
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NetflowV9Encode);

void BM_NetflowV9Roundtrip(benchmark::State& state) {
  const auto records = make_records(1024);
  flow::nf9::Exporter exporter{{}};
  flow::nf9::Collector collector;
  for (auto _ : state) {
    std::vector<flow::FlowRecord> out;
    out.reserve(1024);
    for (const auto& packet : exporter.export_flows(records, 1574000000)) {
      collector.ingest(packet, out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NetflowV9Roundtrip);

void BM_IpfixRoundtrip(benchmark::State& state) {
  const auto records = make_records(1024);
  flow::ipfix::Exporter exporter{{}};
  flow::ipfix::Collector collector;
  for (auto _ : state) {
    std::vector<flow::FlowRecord> out;
    out.reserve(1024);
    for (const auto& msg : exporter.export_flows(records, 1574000000)) {
      collector.ingest(msg, out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_IpfixRoundtrip);

void BM_ThinFlow(benchmark::State& state) {
  const auto records = make_records(1024);
  util::Pcg32 rng{7, 9};
  for (auto _ : state) {
    for (const auto& rec : records) {
      auto thin = flow::thin_flow(rec, 1000, rng);
      benchmark::DoNotOptimize(thin);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ThinFlow);

// Detector throughput against the real hitlist: the per-flow cost that
// bounds ISP-scale deployment.
void BM_DetectorObserve(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  core::Detector det{world->rules().hitlist, world->rules(),
                     {.threshold = 0.4}};
  // Pre-resolve a mix of matching and non-matching destinations.
  std::vector<std::pair<net::IpAddress, std::uint16_t>> targets;
  const auto* alexa = world->catalog().unit_by_name("Alexa Enabled");
  const auto& ips = world->backend().ips_of(alexa->id, 0, 0);
  for (const auto& ip : ips) targets.emplace_back(ip, 443);
  for (std::uint32_t i = 0; i < 16; ++i) {
    targets.emplace_back(net::IpAddress::v4(0x08080800 + i), 443);
  }
  util::Pcg32 rng{1, 2};
  std::uint64_t subscriber = 0;
  for (auto _ : state) {
    const auto& [ip, port] =
        targets[rng.bounded(static_cast<std::uint32_t>(targets.size()))];
    det.observe(++subscriber % 100000, ip, port, 2, 12);
    benchmark::DoNotOptimize(det);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorObserve);

void BM_HitlistLookup(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  const auto& hitlist = world->rules().hitlist;
  const auto* alexa = world->catalog().unit_by_name("Alexa Enabled");
  const auto ip = world->backend().ips_of(alexa->id, 0, 3)[0];
  for (auto _ : state) {
    auto hit = hitlist.lookup(ip, 443, 3);
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitlistLookup);

void BM_WildHourSimulation(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  core::Detector det{world->rules().hitlist, world->rules(),
                     {.threshold = 0.4}};
  for (auto _ : state) {
    std::size_t n = 0;
    world->wild().hour_observations(18, [&](const simnet::WildObs& o) {
      det.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                  o.flow.packets, 18);
      ++n;
    });
    benchmark::DoNotOptimize(n);
    det.clear();
  }
}
BENCHMARK(BM_WildHourSimulation)->Unit(benchmark::kMillisecond);

// Two hours of wild observations, the shared workload for the sharded /
// streaming comparisons below.
const std::vector<core::Observation>& wild_batch(bench::SimWorld& world) {
  static std::vector<core::Observation>* batch = [&world] {
    auto* b = new std::vector<core::Observation>();
    for (util::HourBin h = 18; h < 20; ++h) {
      world.wild().hour_observations(h, [&](const simnet::WildObs& o) {
        b->push_back({o.line, o.flow.key.dst, o.flow.key.dst_port,
                      o.flow.packets, h});
      });
    }
    return b;
  }();
  return *batch;
}

void BM_ShardedBatch(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  const auto& batch = wild_batch(*world);
  const auto shards = static_cast<unsigned>(state.range(0));
  core::ShardedDetector det{world->rules().hitlist, world->rules(),
                            {.threshold = 0.4}, shards};
  for (auto _ : state) {
    det.process_batch(batch);
    det.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
// Real time, not CPU time: the serial partitioning pass dominates wall
// time at hour-sized batches, so the honest headline is per-shard CPU
// relief, not end-to-end speedup.
BENCHMARK(BM_ShardedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Ingestion as it actually arrives — in datagram-sized chunks — processed
// synchronously: one full quiescence barrier per chunk. The baseline the
// streaming pipeline is measured against.
void BM_SyncChunkedBatch(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  const auto& batch = wild_batch(*world);
  constexpr std::size_t kChunk = 256;
  const auto shards = static_cast<unsigned>(state.range(0));
  core::ShardedDetector det{world->rules().hitlist, world->rules(),
                            {.threshold = 0.4}, shards};
  for (auto _ : state) {
    std::span<const core::Observation> rest{batch};
    while (!rest.empty()) {
      const std::size_t n = std::min(kChunk, rest.size());
      det.process_batch(rest.subspan(0, n));  // barrier per chunk
      rest = rest.subspan(n);
    }
    det.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SyncChunkedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Same chunked arrival through the streaming pipeline: chunks enqueue
// without a barrier, shard workers consume concurrently, one drain at the
// end. The win over BM_SyncChunkedBatch is the amortized barrier cost —
// the difference between a replay harness and a streaming service.
void BM_StreamingPipeline(benchmark::State& state) {
  static bench::SimWorld* world = new bench::SimWorld();
  const auto& batch = wild_batch(*world);
  constexpr std::size_t kChunk = 256;
  pipeline::IngestConfig cfg;
  cfg.shards = static_cast<unsigned>(state.range(0));
  pipeline::IngestPipeline pipe{world->rules().hitlist, world->rules(), cfg};
  for (auto _ : state) {
    std::span<const core::Observation> rest{batch};
    while (!rest.empty()) {
      const std::size_t n = std::min(kChunk, rest.size());
      pipe.push_observations({rest.begin(), rest.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    n)});
      rest = rest.subspan(n);
    }
    pipe.drain();
    pipe.detector().clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_StreamingPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Observability hot path in isolation (ISSUE 5): one relaxed counter add
// plus one histogram record — the marginal cost an instrumented pipeline
// pays per counted event. Under -DHAYSTACK_OBS_STRIPPED=ON the histogram
// record compiles out and this measures the residual counter cost, so
// bench/obs_overhead.sh can price the instrumentation delta exactly.
void BM_ObsHotPath(benchmark::State& state) {
  obs::MetricRegistry registry;
  auto counter = registry.counter("bench_events_total");
  auto hist = registry.histogram("bench_latency_ns");
  std::uint64_t v = 0;
  for (auto _ : state) {
    counter->add(1);
    hist->record(v++ & 0xffff);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHotPath);

}  // namespace

BENCHMARK_MAIN();
