// Live control plane benchmark (ISSUE 8): query latency under full
// ingest, and the ingest-throughput cost of serving queries at all.
//
// One day of wild-ISP traffic is pre-materialized into hour batches
// (isolating simulation cost from measurement), then replayed through an
// 8-shard ShardedDetector at maximum rate while a query thread issues
// snapshots at a fixed target rate. Three rates are measured:
//
//   0 q/s     — the ingest-only baseline;
//   100 q/s   — the acceptance point (bench/serve_overhead.sh gates the
//               ingest-throughput delta vs idle at <= 3% here);
//   1000 q/s  — the abuse point, to show the wait-free read side does not
//               collapse under query pressure.
//
// Per rate we report ingest observations/sec (best of BENCH_REPS runs,
// default 3), the throughput delta vs the 0 q/s baseline, and p50/p99
// latency for both query flavours: live (wait-free ViewHub loads) and
// fresh (token-refreshed, every 10th query).
//
// Writes a JSON summary (default BENCH_serve.json, argv[1] overrides):
//
//   bench/serve_bench [out.json]
//   HAYSTACK_LINES=40000 BENCH_REPS=5 BENCH_PASSES=8 bench/serve_bench
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/sharded_detector.hpp"
#include "serve/control.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace {

using namespace haystack;

constexpr unsigned kShards = 8;
constexpr util::HourBin kHours = 24;

// Sink so snapshot reads cannot be optimized away.
std::atomic<std::uint64_t> g_sink{0};

struct QuantileStats {
  std::uint64_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

QuantileStats quantiles(std::vector<std::uint64_t>& ns) {
  QuantileStats q;
  q.count = ns.size();
  if (ns.empty()) return q;
  std::sort(ns.begin(), ns.end());
  q.p50_ns = ns[ns.size() / 2];
  q.p99_ns = ns[(ns.size() * 99) / 100];
  return q;
}

struct RateResult {
  unsigned qps = 0;
  double ingest_obs_per_sec = 0.0;
  double delta_vs_idle = 0.0;  // filled in by main()
  QuantileStats live;
  QuantileStats fresh;
};

RateResult run_rate(const core::RuleSet& rules,
                    const std::vector<std::vector<core::Observation>>& hours,
                    unsigned qps, int passes, int reps) {
  std::uint64_t per_pass = 0;
  for (const auto& h : hours) per_pass += h.size();

  RateResult result;
  result.qps = qps;
  std::vector<std::uint64_t> live_ns;
  std::vector<std::uint64_t> fresh_ns;

  for (int rep = 0; rep < reps; ++rep) {
    core::ShardedDetector det{rules.hitlist, rules,
                              {.threshold = 0.4},
                              kShards,
                              /*queue_capacity=*/1024,
                              nullptr,
                              {.auto_publish_observations = 50'000}};
    serve::ControlPlane control{det};

    std::atomic<bool> done{false};
    std::thread query;
    if (qps > 0) {
      query = std::thread{[&] {
        const auto period =
            std::chrono::nanoseconds{1'000'000'000ULL / qps};
        auto next = std::chrono::steady_clock::now();
        std::uint64_t i = 0;
        while (!done.load(std::memory_order_acquire)) {
          next += period;
          std::this_thread::sleep_until(next);
          const auto t0 = std::chrono::steady_clock::now();
          if (i++ % 10 == 0) {
            const auto snap = control.fresh_snapshot();
            g_sink.fetch_add(snap.observations(),
                             std::memory_order_relaxed);
            fresh_ns.push_back(static_cast<std::uint64_t>(
                (std::chrono::steady_clock::now() - t0).count()));
          } else {
            const auto snap = control.snapshot();
            g_sink.fetch_add(snap.satisfied(), std::memory_order_relaxed);
            live_ns.push_back(static_cast<std::uint64_t>(
                (std::chrono::steady_clock::now() - t0).count()));
          }
        }
      }};
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      for (const auto& h : hours) det.enqueue_batch(h);
    }
    det.drain();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    done.store(true, std::memory_order_release);
    if (query.joinable()) query.join();

    const double rate =
        static_cast<double>(per_pass) * passes / std::max(secs, 1e-9);
    result.ingest_obs_per_sec = std::max(result.ingest_obs_per_sec, rate);
  }

  result.live = quantiles(live_ns);
  result.fresh = quantiles(fresh_ns);
  return result;
}

void write_json(const char* path, std::uint64_t lines, int passes, int reps,
                const std::vector<RateResult>& rates) {
  std::ofstream out{path};
  out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"lines\": " << lines << ",\n"
      << "  \"shards\": " << kShards << ",\n"
      << "  \"hours\": " << kHours << ",\n"
      << "  \"passes\": " << passes << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"rates\": [\n";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& r = rates[i];
    out << "    {\"queries_per_sec\": " << r.qps
        << ", \"ingest_obs_per_sec\": " << static_cast<std::uint64_t>(
               r.ingest_obs_per_sec)
        << ", \"ingest_delta_vs_idle\": " << r.delta_vs_idle
        << ",\n     \"query_live_ns\": {\"count\": " << r.live.count
        << ", \"p50\": " << r.live.p50_ns << ", \"p99\": " << r.live.p99_ns
        << "},\n     \"query_fresh_ns\": {\"count\": " << r.fresh.count
        << ", \"p50\": " << r.fresh.p50_ns
        << ", \"p99\": " << r.fresh.p99_ns << "}}"
        << (i + 1 < rates.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::uint64_t lines = bench::env_u64("HAYSTACK_LINES", 20'000);
  const int reps = static_cast<int>(bench::env_u64("BENCH_REPS", 3));
  const int passes = static_cast<int>(bench::env_u64("BENCH_PASSES", 4));

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog,
                                {.lines = static_cast<std::uint32_t>(lines)}};
  simnet::DomainRateModel rates_model{catalog, 7};
  simnet::WildIspSim wild{backend, population, rates_model,
                          simnet::WildIspConfig{}};

  std::vector<std::vector<core::Observation>> hours(kHours);
  std::uint64_t total = 0;
  for (util::HourBin h = 0; h < kHours; ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& o) {
      hours[h].push_back(core::Observation{o.line, o.flow.key.dst,
                                           o.flow.key.dst_port,
                                           o.flow.packets, h});
    });
    total += hours[h].size();
  }
  std::printf("world: %llu lines, %llu observations/day\n",
              static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(total));

  std::vector<RateResult> results;
  for (const unsigned qps : {0U, 100U, 1000U}) {
    results.push_back(run_rate(rules, hours, qps, passes, reps));
    const auto& r = results.back();
    std::printf("%5u q/s: ingest %.0f obs/s", qps, r.ingest_obs_per_sec);
    if (qps > 0) {
      std::printf("  live p50/p99 %llu/%llu ns  fresh p50/p99 %llu/%llu ns",
                  static_cast<unsigned long long>(r.live.p50_ns),
                  static_cast<unsigned long long>(r.live.p99_ns),
                  static_cast<unsigned long long>(r.fresh.p50_ns),
                  static_cast<unsigned long long>(r.fresh.p99_ns));
    }
    std::printf("\n");
  }

  const double idle = results[0].ingest_obs_per_sec;
  for (auto& r : results) {
    r.delta_vs_idle = idle > 0.0
                          ? (idle - r.ingest_obs_per_sec) / idle
                          : 0.0;
  }

  write_json(out_path, lines, passes, reps, results);
  std::printf("wrote %s\n", out_path);
  return 0;
}
