#include "core/detector.hpp"

#include <algorithm>

namespace haystack::core {

Detector::Detector(const Hitlist& hitlist, const RuleSet& rules,
                   const DetectorConfig& config)
    : hitlist_{hitlist}, rules_{rules}, config_{config} {
  ServiceId max_id = 0;
  for (const auto& r : rules.rules) max_id = std::max(max_id, r.service);
  rule_of_.assign(max_id + 1U, nullptr);
  for (const auto& r : rules.rules) rule_of_[r.service] = &r;

  // Precompile the per-service fast data (ISSUE 6): the threshold is
  // fixed for the detector's lifetime, so required_domains() and the
  // critical-domain mask are constants the interned path can use without
  // touching the rule.
  fast_rules_.assign(rule_of_.size(), RuleFast{});
  for (std::size_t s = 0; s < rule_of_.size(); ++s) {
    const DetectionRule* rule = rule_of_[s];
    if (rule == nullptr) continue;
    RuleFast& fast = fast_rules_[s];
    fast.has_rule = true;
    fast.required = static_cast<std::uint16_t>(std::min(
        rule->required_domains(config_.threshold), 0xffffU));
    if (rule->critical_sufficient && rule->critical_monitored_index &&
        *rule->critical_monitored_index < 128) {
      const std::uint16_t idx = *rule->critical_monitored_index;
      fast.critical_mask[idx >> 6] |= std::uint64_t{1} << (idx & 63U);
    }
  }
}

void Detector::apply_match(SubscriberKey subscriber, ServiceId service,
                           std::uint16_t pos, const RuleFast& fast,
                           std::uint64_t packets, util::HourBin hour) {
  bool inserted = false;
  Evidence& ev = evidence_.find_or_insert(subscriber, service, inserted);
  if (inserted) {
    ev.first_seen = hour;
    if (instruments_.evidence_entries) {
      instruments_.evidence_entries->set(
          static_cast<std::int64_t>(evidence_.size()));
    }
  }
  ev.packets += packets;

  if (pos < 128 && !ev.sees(pos)) {
    ev.mask[pos >> 6] |= std::uint64_t{1} << (pos & 63U);
    ++ev.distinct;
  }

  if (ev.satisfied_hour == Evidence::kNever) {
    // critical_mask is nonzero only when the rule's critical domain alone
    // is sufficient; the AND tests sees(critical index) in one bit op.
    const bool critical_ok =
        ((ev.mask[0] & fast.critical_mask[0]) |
         (ev.mask[1] & fast.critical_mask[1])) != 0;
    if (critical_ok || ev.distinct >= fast.required) {
      ev.satisfied_hour = hour;
      if (instruments_.rules_satisfied) instruments_.rules_satisfied->add(1);
      if (instruments_.time_to_detection_hours) {
        instruments_.time_to_detection_hours->record(hour - ev.first_seen);
      }
    }
  }
}

std::optional<Hit> Detector::observe(SubscriberKey subscriber,
                                     const net::IpAddress& server,
                                     std::uint16_t port,
                                     std::uint64_t packets,
                                     util::HourBin hour) {
  ++stats_.flows;
  if (instruments_.flows) instruments_.flows->add(1);
  const auto hit = hitlist_.lookup(server, port, util::day_of(hour));
  if (!hit) return std::nullopt;
  ++stats_.matched;
  if (instruments_.matched) instruments_.matched->add(1);

  const DetectionRule* rule =
      hit->service < rule_of_.size() ? rule_of_[hit->service] : nullptr;
  if (rule == nullptr) return hit;

  apply_match(subscriber, hit->service, hit->domain_index,
              fast_rules_[hit->service], packets, hour);
  return hit;
}

void Detector::observe_interned(SubscriberKey subscriber, Signature sig,
                                std::uint64_t packets, util::HourBin hour) {
  ++stats_.flows;
  if (instruments_.flows) instruments_.flows->add(1);
  if (sig == kNoSig) return;
  ++stats_.matched;
  if (instruments_.matched) instruments_.matched->add(1);

  const ServiceId service = sig_service(sig);
  if (service >= fast_rules_.size() || !fast_rules_[service].has_rule) return;
  apply_match(subscriber, service, sig_domain_index(sig),
              fast_rules_[service], packets, hour);
}

bool Detector::observe_interned_uncounted(SubscriberKey subscriber,
                                          Signature sig,
                                          std::uint64_t packets,
                                          util::HourBin hour) {
  if (sig == kNoSig) return false;
  const ServiceId service = sig_service(sig);
  if (service < fast_rules_.size() && fast_rules_[service].has_rule) {
    apply_match(subscriber, service, sig_domain_index(sig),
                fast_rules_[service], packets, hour);
  }
  return true;
}

void Detector::add_observation_counts(std::uint64_t flows,
                                      std::uint64_t matched) {
  stats_.flows += flows;
  stats_.matched += matched;
  if (instruments_.flows && flows != 0) instruments_.flows->add(flows);
  if (instruments_.matched && matched != 0) {
    instruments_.matched->add(matched);
  }
}

std::optional<util::HourBin> Detector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  util::HourBin latest = 0;
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule =
        *current < rule_of_.size() ? rule_of_[*current] : nullptr;
    if (rule == nullptr) return std::nullopt;
    const Evidence* ev = evidence_.find(subscriber, *current);
    if (ev == nullptr || ev->satisfied_hour == Evidence::kNever) {
      return std::nullopt;
    }
    latest = std::max(latest, ev->satisfied_hour);
    current = rule->parent;
  }
  return latest;
}

void Detector::set_observed_loss(double fraction) noexcept {
  const bool was_degraded = degraded();
  observed_loss_ = std::clamp(fraction, 0.0, 1.0);
  if (instruments_.recorder != nullptr && degraded() != was_degraded) {
    const auto ppm = static_cast<std::uint64_t>(observed_loss_ * 1e6);
    instruments_.recorder->record(degraded() ? obs::EventKind::kDegradedEnter
                                             : obs::EventKind::kDegradedExit,
                                  instruments_.source, ppm);
  }
}

Verdict Detector::verdict(SubscriberKey subscriber, ServiceId service) const {
  if (const auto hour = detection_hour(subscriber, service)) {
    return {true, Confidence::kHigh, hour};
  }
  if (!degraded()) return {false, Confidence::kHigh, std::nullopt};

  // Degraded channel: an estimated fraction `observed_loss_` of the
  // export stream never reached us, so scale the evidence requirement
  // down proportionally (never below one domain) and re-evaluate the
  // hierarchy chain on current evidence. Whatever the answer, it is
  // low-confidence.
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule =
        *current < rule_of_.size() ? rule_of_[*current] : nullptr;
    if (rule == nullptr) return {false, Confidence::kLow, std::nullopt};
    const Evidence* found = evidence_.find(subscriber, *current);
    if (found == nullptr) return {false, Confidence::kLow, std::nullopt};
    const Evidence& ev = *found;
    const bool critical_ok =
        rule->critical_sufficient && rule->critical_monitored_index &&
        ev.sees(*rule->critical_monitored_index);
    const unsigned required = rule->required_domains(config_.threshold);
    const auto relaxed = std::max<unsigned>(
        1, static_cast<unsigned>(static_cast<double>(required) *
                                 (1.0 - observed_loss_)));
    if (!critical_ok && ev.distinct < relaxed) {
      return {false, Confidence::kLow, std::nullopt};
    }
    current = rule->parent;
  }
  return {true, Confidence::kLow, std::nullopt};
}

void Detector::restore_evidence(SubscriberKey subscriber, ServiceId service,
                                const Evidence& evidence) {
  bool inserted = false;
  evidence_.find_or_insert(subscriber, service, inserted) = evidence;
  if (instruments_.evidence_entries) {
    instruments_.evidence_entries->set(
        static_cast<std::int64_t>(evidence_.size()));
  }
}

const Evidence* Detector::evidence(SubscriberKey subscriber,
                                   ServiceId service) const {
  return evidence_.find(subscriber, service);
}

void Detector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  evidence_.for_each([&](SubscriberKey subscriber, ServiceId service,
                         const Evidence& ev) { fn(subscriber, service, ev); });
}

void Detector::clear() {
  evidence_.clear();
  if (instruments_.evidence_entries) instruments_.evidence_entries->set(0);
}

}  // namespace haystack::core
