// Trace spans (ISSUE 5): RAII wall-clock timers feeding the registry's
// log2 histograms — the per-wave stage-latency distributions
// (meter → decode → normalize → detect) that show where a streaming
// deployment actually spends its time.
//
// Two time axes, deliberately distinct: span *durations* are steady-clock
// nanoseconds (latency is a hardware fact), while span *context* is
// sim-time — a span that overruns its slow threshold records a kSlowWave
// flight-recorder event stamped with the util::SimClock hour the recorder
// currently carries, so a post-mortem dump places the stall on the same
// hour axis as every other event.
//
// Under -DHAYSTACK_OBS_STRIPPED the timer compiles to nothing (no clock
// reads) — the baseline side of the instrumentation-overhead bench.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace haystack::obs {

[[nodiscard]] inline std::uint64_t steady_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped span: records elapsed nanoseconds into `latency` on destruction.
/// When a recorder and a non-zero threshold are supplied, an over-threshold
/// span additionally records EventKind::kSlowWave (source = `source`,
/// a = elapsed ns, b = `items`).
class SpanTimer {
 public:
  explicit SpanTimer(Histogram* latency, FlightRecorder* recorder = nullptr,
                     std::uint64_t slow_threshold_ns = 0,
                     std::uint32_t source = 0,
                     std::uint64_t items = 0) noexcept {
#ifndef HAYSTACK_OBS_STRIPPED
    latency_ = latency;
    recorder_ = recorder;
    slow_threshold_ns_ = slow_threshold_ns;
    source_ = source;
    items_ = items;
    if (latency_ != nullptr || (recorder_ != nullptr && slow_threshold_ns_)) {
      start_ = steady_nanos();
    }
#else
    (void)latency;
    (void)recorder;
    (void)slow_threshold_ns;
    (void)source;
    (void)items;
#endif
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Late item count (known only after the wave was claimed).
  void set_items(std::uint64_t items) noexcept {
#ifndef HAYSTACK_OBS_STRIPPED
    items_ = items;
#else
    (void)items;
#endif
  }

  ~SpanTimer() {
#ifndef HAYSTACK_OBS_STRIPPED
    if (start_ == 0) return;
    const std::uint64_t elapsed = steady_nanos() - start_;
    if (latency_ != nullptr) latency_->record(elapsed);
    if (recorder_ != nullptr && slow_threshold_ns_ != 0 &&
        elapsed >= slow_threshold_ns_) {
      recorder_->record(EventKind::kSlowWave, source_, elapsed, items_);
    }
#endif
  }

 private:
#ifndef HAYSTACK_OBS_STRIPPED
  Histogram* latency_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::uint64_t slow_threshold_ns_ = 0;
  std::uint32_t source_ = 0;
  std::uint64_t items_ = 0;
  std::uint64_t start_ = 0;
#endif
};

}  // namespace haystack::obs
