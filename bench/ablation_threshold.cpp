// Ablation: detection threshold D vs true/false positives in the wild.
//
// Sec. 4.3.2: "a larger threshold can increase the detection time, and
// some IoT devices may no longer be detectable. However, it [a smaller
// threshold] may also increase the false positive rate." The simulator
// knows ground truth (which lines own which devices), so this bench sweeps
// D over one wild day and reports, per threshold: true-positive coverage
// (detected lines that own a device of the service, averaged over
// services) and absolute false positives (detected lines that own none).
#include <iostream>
#include <map>
#include <set>

#include "common.hpp"
#include "core/detector.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto& catalog = world.catalog();
  const auto& population = world.population();

  // Ground truth: lines owning each unit (directly or via a descendant
  // unit whose devices also speak this unit's domains).
  std::map<core::ServiceId, std::set<simnet::LineId>> owners;
  population.for_each_active_line(
      [&](const simnet::LineId line,
          const std::span<const simnet::OwnedDevice> devices) {
        for (const auto& dev : devices) {
          simnet::UnitId unit = dev.unit;
          for (;;) {
            owners[unit].insert(line);
            const auto& parent = catalog.units()[unit].parent;
            if (!parent) break;
            unit = *parent;
          }
        }
      });

  util::print_banner(std::cout,
                     "Ablation: threshold D vs true/false positives "
                     "(one wild day, population " +
                         util::fmt_count(world.lines()) + ")");
  util::TextTable table;
  table.header({"D", "Mean TP coverage", "False positives", "Detected "
                "(line,svc) pairs"});

  for (const double d : {0.05, 0.1, 0.25, 0.4, 0.6, 0.8, 1.0}) {
    core::Detector det{world.rules().hitlist, world.rules(),
                       {.threshold = d}};
    for (util::HourBin h = 0; h < 24; ++h) {
      world.wild().hour_observations(h, [&](const simnet::WildObs& o) {
        det.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                    o.flow.packets, h);
      });
    }
    std::map<core::ServiceId, std::size_t> tp;
    std::size_t fp = 0;
    std::size_t pairs = 0;
    det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                              const core::Evidence&) {
      if (!det.detected(s, sv)) return;
      ++pairs;
      const auto it = owners.find(sv);
      if (it != owners.end() &&
          it->second.contains(static_cast<simnet::LineId>(s))) {
        ++tp[sv];
      } else {
        ++fp;
      }
    });
    double coverage_sum = 0;
    unsigned with_owners = 0;
    for (const auto& rule : world.rules().rules) {
      const auto it = owners.find(rule.service);
      if (it == owners.end() || it->second.empty()) continue;
      ++with_owners;
      coverage_sum += static_cast<double>(tp[rule.service]) /
                      static_cast<double>(it->second.size());
    }
    table.row({util::fmt_double(d, 2),
               util::fmt_percent(coverage_sum / with_owners),
               util::fmt_count(fp), util::fmt_count(pairs)});
  }
  table.print(std::cout);
  std::cout << "\nDedicated infrastructure keeps false positives at zero "
               "across the sweep (a non-owner cannot contact a dedicated "
               "service IP); the threshold instead trades *coverage* — "
               "the paper's conservative D=0.4 sits below the knee.\n";
  return 0;
}
