#include "dns/dns_wire.hpp"

#include <cstring>
#include <string>

namespace haystack::dns {

namespace {

constexpr std::uint16_t kFlagResponse = 0x8000;
constexpr std::uint16_t kClassIn = 1;
constexpr std::size_t kMaxNameLength = 255;
constexpr int kMaxPointerHops = 32;

void write_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void write_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  write_u16(out, static_cast<std::uint16_t>(v >> 16));
  write_u16(out, static_cast<std::uint16_t>(v));
}

// Encodes a name as uncompressed labels.
bool write_name(std::vector<std::uint8_t>& out, const Fqdn& name) {
  if (!name.valid()) return false;
  for (const auto label : name.labels()) {
    if (label.empty() || label.size() > 63) return false;
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return true;
}

// Reads a (possibly compressed) name starting at `pos` in `data`. On
// success advances `pos` past the name's in-place bytes and returns the
// dotted name.
std::optional<std::string> read_name(std::span<const std::uint8_t> data,
                                     std::size_t& pos) {
  std::string name;
  std::size_t cursor = pos;
  bool jumped = false;
  int hops = 0;

  for (;;) {
    if (cursor >= data.size()) return std::nullopt;
    const std::uint8_t len = data[cursor];
    if ((len & 0xc0U) == 0xc0U) {
      // Compression pointer.
      if (cursor + 1 >= data.size()) return std::nullopt;
      if (++hops > kMaxPointerHops) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3fU) << 8) | data[cursor + 1];
      if (!jumped) {
        pos = cursor + 2;
        jumped = true;
      }
      if (target >= cursor) {
        // Forward pointers enable trivial loops; RFC names always point
        // backward.
        return std::nullopt;
      }
      cursor = target;
      continue;
    }
    if ((len & 0xc0U) != 0) return std::nullopt;  // reserved label types
    if (len == 0) {
      if (!jumped) pos = cursor + 1;
      break;
    }
    if (cursor + 1 + len > data.size()) return std::nullopt;
    if (!name.empty()) name += '.';
    name.append(reinterpret_cast<const char*>(data.data() + cursor + 1),
                len);
    if (name.size() > kMaxNameLength) return std::nullopt;
    cursor += 1 + len;
  }
  return name;
}

std::uint16_t read_u16(std::span<const std::uint8_t> data, std::size_t pos) {
  return static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
}

}  // namespace

std::vector<std::uint8_t> encode_response(
    std::uint16_t id, const Fqdn& question,
    const std::vector<WireRecord>& answers) {
  std::vector<std::uint8_t> out;
  write_u16(out, id);
  write_u16(out, kFlagResponse);
  write_u16(out, 1);  // qdcount
  write_u16(out, static_cast<std::uint16_t>(answers.size()));
  write_u16(out, 0);  // nscount
  write_u16(out, 0);  // arcount

  write_name(out, question);
  write_u16(out, static_cast<std::uint16_t>(WireType::kA));
  write_u16(out, kClassIn);

  for (const auto& rr : answers) {
    write_name(out, rr.name);
    write_u16(out, static_cast<std::uint16_t>(rr.type));
    write_u16(out, kClassIn);
    write_u32(out, rr.ttl);
    switch (rr.type) {
      case WireType::kA: {
        write_u16(out, 4);
        write_u32(out, rr.address.v4_value());
        break;
      }
      case WireType::kAaaa: {
        write_u16(out, 16);
        const auto bytes = rr.address.bytes();
        out.insert(out.end(), bytes.begin(), bytes.end());
        break;
      }
      case WireType::kCname: {
        std::vector<std::uint8_t> target;
        write_name(target, rr.target);
        write_u16(out, static_cast<std::uint16_t>(target.size()));
        out.insert(out.end(), target.begin(), target.end());
        break;
      }
    }
  }
  return out;
}

std::optional<WireMessage> decode_message(
    std::span<const std::uint8_t> data) {
  if (data.size() < 12) return std::nullopt;
  WireMessage msg;
  msg.id = read_u16(data, 0);
  const std::uint16_t flags = read_u16(data, 2);
  msg.is_response = (flags & kFlagResponse) != 0;
  msg.rcode = flags & 0x0fU;
  const std::uint16_t qdcount = read_u16(data, 4);
  const std::uint16_t ancount = read_u16(data, 6);
  // Section counts the message cannot possibly hold are corruption, not
  // truncation: every question occupies >= 5 bytes (root name + type +
  // class) and every answer >= 11 (root name + fixed RR part).
  if (12 + std::size_t{qdcount} * 5 + std::size_t{ancount} * 11 >
      data.size()) {
    return std::nullopt;
  }

  std::size_t pos = 12;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    const auto name = read_name(data, pos);
    if (!name || pos + 4 > data.size()) return std::nullopt;
    if (q == 0) msg.question = Fqdn{*name};
    pos += 4;  // qtype + qclass
  }

  for (std::uint16_t a = 0; a < ancount; ++a) {
    const auto name = read_name(data, pos);
    if (!name || pos + 10 > data.size()) return std::nullopt;
    const std::uint16_t type = read_u16(data, pos);
    // class at pos+2 ignored
    std::uint32_t ttl = (static_cast<std::uint32_t>(read_u16(data, pos + 4))
                         << 16) |
                        read_u16(data, pos + 6);
    const std::uint16_t rdlength = read_u16(data, pos + 8);
    pos += 10;
    if (pos + rdlength > data.size()) return std::nullopt;

    WireRecord rr;
    rr.name = Fqdn{*name};
    rr.ttl = ttl;
    bool keep = true;
    switch (static_cast<WireType>(type)) {
      case WireType::kA: {
        if (rdlength != 4) return std::nullopt;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v = (v << 8) | data[pos + i];
        rr.type = WireType::kA;
        rr.address = net::IpAddress::v4(v);
        break;
      }
      case WireType::kAaaa: {
        if (rdlength != 16) return std::nullopt;
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;
        for (int i = 0; i < 8; ++i) hi = (hi << 8) | data[pos + i];
        for (int i = 8; i < 16; ++i) lo = (lo << 8) | data[pos + i];
        rr.type = WireType::kAaaa;
        rr.address = net::IpAddress::v6(hi, lo);
        break;
      }
      case WireType::kCname: {
        std::size_t target_pos = pos;
        const auto target = read_name(data, target_pos);
        if (!target) return std::nullopt;
        rr.type = WireType::kCname;
        rr.target = Fqdn{*target};
        break;
      }
      default:
        keep = false;  // unknown type: skip rdata
        break;
    }
    pos += rdlength;
    if (keep) msg.answers.push_back(std::move(rr));
  }
  return msg;
}

}  // namespace haystack::dns
