// Paper-scale property suite (ISSUE 9, `ctest -L scale`).
//
// The scale PR replaces the materialized per-line population CSR with
// lazy block-cached regeneration, packs Evidence to 28 bytes, and adds
// compact checkpoint/delta wire forms. Each of those is an "identical
// observable behaviour, smaller footprint" claim, and this suite pins the
// identical half:
//
//   - streaming Population == a materialized reference CSR, bit for bit,
//     at 10k/80k/200k lines (ownership, active sets, addressing across
//     rotation days, dual-stack draws) — the reference reimplements the
//     pre-PR generation inline so a regression in the lazy path cannot
//     hide behind a shared helper;
//   - a 15M-line population (the paper's ISP) stays inside 100.64.0.0/10
//     and inside the bounded block-cache memory budget;
//   - FlatEvidenceMap at a million entries: the ≤0.5 load-factor
//     invariant (the `>=` growth fix), memory_bytes() accounting, and
//     iteration completeness across every rehash step;
//   - HSCK v3 / HSVD v2 compact forms restore bit-identical evidence and
//     are strictly smaller than the formats they succeed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/detector.hpp"
#include "core/evidence_map.hpp"
#include "core/sharded_detector.hpp"
#include "flow/delta_wire.hpp"
#include "net/prefix.hpp"
#include "simnet/population.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack {
namespace {

// ---------------------------------------------------------------------
// Streaming population vs a materialized reference CSR.

// The pre-PR population: one eagerly built CSR over all lines. Ownership
// draws consume the per-line RNG stream in catalog candidate order —
// reimplemented here (not shared with src/) so the test is a true
// differential.
struct ReferenceCsr {
  std::vector<std::uint32_t> offsets;
  std::vector<simnet::OwnedDevice> devices;
  std::vector<simnet::LineId> active;
};

ReferenceCsr build_reference(const simnet::Catalog& catalog,
                             std::uint64_t seed, std::uint32_t lines) {
  struct Candidate {
    std::optional<simnet::ProductId> product;
    simnet::UnitId unit = 0;
    double penetration = 0.0;
  };
  std::vector<Candidate> candidates;
  for (const simnet::Product& p : catalog.products()) {
    if (p.unit && p.penetration > 0.0) {
      candidates.push_back({p.id, *p.unit, p.penetration});
    }
  }
  for (const simnet::DetectionUnit& u : catalog.units()) {
    if (u.wild_extra_penetration > 0.0) {
      candidates.push_back({std::nullopt, u.id, u.wild_extra_penetration});
    }
  }
  ReferenceCsr csr;
  csr.offsets.push_back(0);
  for (simnet::LineId line = 0; line < lines; ++line) {
    util::Pcg32 rng = util::derive_rng(seed ^ 0x0cc07a11, line, 0);
    bool any = false;
    for (const Candidate& c : candidates) {
      if (rng.chance(c.penetration)) {
        csr.devices.push_back({c.product, c.unit});
        any = true;
      }
    }
    csr.offsets.push_back(static_cast<std::uint32_t>(csr.devices.size()));
    if (any) csr.active.push_back(line);
  }
  return csr;
}

class StreamingVsMaterialized
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StreamingVsMaterialized, OwnershipBitForBit) {
  const std::uint32_t lines = GetParam();
  const simnet::Catalog catalog;
  // A tiny cache forces eviction/regeneration even at 10k lines, so the
  // comparison exercises rebuilt blocks, not just first-build ones.
  const simnet::Population population{
      catalog, {.seed = 99, .lines = lines, .cache_blocks = 2}};
  const ReferenceCsr ref = build_reference(catalog, 99, lines);

  for (simnet::LineId line = 0; line < lines; ++line) {
    const auto devices = population.devices_of(line);
    const std::uint32_t begin = ref.offsets[line];
    const std::uint32_t end = ref.offsets[line + 1];
    ASSERT_EQ(devices.size(), end - begin) << "line " << line;
    for (std::uint32_t i = 0; i < devices.size(); ++i) {
      ASSERT_EQ(devices[i].product, ref.devices[begin + i].product);
      ASSERT_EQ(devices[i].unit, ref.devices[begin + i].unit);
    }
  }

  // Streaming active-line walk: same lines, same order, same devices.
  std::vector<simnet::LineId> streamed;
  std::uint64_t streamed_devices = 0;
  population.for_each_active_line(
      [&](simnet::LineId line, std::span<const simnet::OwnedDevice> devs) {
        streamed.push_back(line);
        streamed_devices += devs.size();
      });
  EXPECT_EQ(streamed, ref.active);
  EXPECT_EQ(streamed_devices, ref.devices.size());
  EXPECT_EQ(population.active_line_count(), ref.active.size());
}

TEST_P(StreamingVsMaterialized, AddressingBitForBit) {
  const std::uint32_t lines = GetParam();
  const simnet::Catalog catalog;
  const simnet::Population population{catalog, {.seed = 99, .lines = lines}};

  // Pre-PR addressing, valid below the wrap point (4096 regions): no
  // modulo, straight regional-pool arithmetic. Every parameterized size
  // sits below 262 144 lines, so the lazy path must reproduce it exactly.
  const auto reference_address = [](simnet::LineId line, unsigned epoch) {
    const std::uint32_t region = line / 64;
    const std::uint32_t slot = static_cast<std::uint32_t>(
        util::hash_combine(util::fnv1a_u64(line), epoch) % 1024);
    return net::IpAddress::v4(0x64400000U + region * 1024 + slot);
  };
  const auto reference_epoch = [](simnet::LineId line, util::DayBin day) {
    unsigned epoch = 0;
    for (util::DayBin d = 1; d <= day; ++d) {
      util::Pcg32 rng = util::derive_rng(99 ^ 0x707a7e, line, d);
      if (rng.chance(0.03)) ++epoch;
    }
    return epoch;
  };

  for (simnet::LineId line = 0; line < lines; line += 101) {
    for (const util::DayBin day : {util::DayBin{0}, util::DayBin{6},
                                   util::DayBin{13}}) {
      const unsigned epoch = reference_epoch(line, day);
      ASSERT_EQ(population.epoch_of(line, day), epoch);
      ASSERT_EQ(population.address_of(line, day),
                reference_address(line, epoch))
          << "line " << line << " day " << day;
    }
    util::Pcg32 rng = util::derive_rng(99 ^ 0xd5a15ac, line, 0);
    ASSERT_EQ(population.dual_stack(line), rng.chance(0.35));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamingVsMaterialized,
                         ::testing::Values(10'000u, 80'000u, 200'000u));

TEST(ScalePopulation, PaperScaleAddressesStayInIspSpace) {
  // 15M lines — the paper's ISP. Construction is O(1) under the lazy
  // design; only the touched blocks materialize.
  const simnet::Catalog catalog;
  const simnet::Population population{catalog, {.lines = 15'000'000}};
  const auto isp_space = *net::Prefix::parse("100.64.0.0/10");
  for (simnet::LineId line = 0; line < 15'000'000; line += 1'000'003) {
    for (const util::DayBin day : {util::DayBin{0}, util::DayBin{13}}) {
      ASSERT_TRUE(isp_space.contains(population.address_of(line, day)))
          << "line " << line;
    }
  }
  // The top region wraps (15M/64 · 1024 far exceeds the /10 span) yet two
  // distinct lines must not be forced onto one address by the wrap alone.
  EXPECT_NE(population.address_of(14'999'999, 0),
            population.address_of(14'999'998, 0));
}

TEST(ScalePopulation, BlockCacheMemoryStaysBounded) {
  const simnet::Catalog catalog;
  const simnet::Population population{
      catalog, {.lines = 15'000'000, .cache_blocks = 8}};
  // Touch blocks scattered across the whole 15M-line range — far more
  // than the cache holds — and verify the footprint stays at the
  // 8-block budget instead of growing with the touched span.
  std::uint64_t peak = 0;
  for (simnet::LineId line = 0; line < 15'000'000; line += 500'009) {
    (void)population.devices_of(line);
    peak = std::max(peak, population.memory_bytes());
  }
  // 8 blocks × 4096 lines × (a few devices × 8B + offsets + slack): well
  // under 4 MiB; the old CSR held ~15M offsets + ~5M devices (>100 MiB).
  EXPECT_LT(peak, 4u << 20);
  EXPECT_GT(peak, 0u);
}

// ---------------------------------------------------------------------
// FlatEvidenceMap at scale.

TEST(ScaleEvidenceMap, MillionEntriesLoadFactorAndAccounting) {
  // Entry layout: u64 subscriber + u32 service_plus1 + 28-byte Evidence,
  // padded to 8-byte alignment. memory_bytes() must stay this * slots.
  constexpr std::uint64_t kEntryBytes = 40;
  constexpr std::uint32_t kCount = 1'000'000;
  core::FlatEvidenceMap<core::Evidence> map;

  for (std::uint32_t i = 0; i < kCount; ++i) {
    bool inserted = false;
    core::Evidence& ev =
        map.find_or_insert(0x100000000ULL + i * 7, i % 40, inserted);
    ASSERT_TRUE(inserted);
    ev.set_packets(i);
    ev.set_first_seen(i % 336);
    ev.or_mask(0, 1ULL << (i % 64));
    if ((i & 0xfff) == 0) {
      // ≤0.5 load factor at every growth step (the `>=` rehash fix: the
      // old `>` allowed one insert past the bound before growing).
      ASSERT_GE(map.memory_bytes(), map.size() * 2 * kEntryBytes)
          << "load factor above 0.5 at size " << map.size();
      ASSERT_EQ(map.memory_bytes() % kEntryBytes, 0u);
    }
  }
  ASSERT_EQ(map.size(), kCount);
  EXPECT_GE(map.memory_bytes(), std::uint64_t{kCount} * 2 * kEntryBytes);

  // Iteration completeness across all rehash steps: every entry exactly
  // once, payload intact.
  std::uint64_t visited = 0, packet_sum = 0;
  map.for_each([&](std::uint64_t subscriber, std::uint16_t service,
                   const core::Evidence& ev) {
    ASSERT_GE(subscriber, 0x100000000ULL);
    ASSERT_LT(service, 40);
    packet_sum += ev.packets();
    ++visited;
  });
  EXPECT_EQ(visited, kCount);
  EXPECT_EQ(packet_sum,
            (std::uint64_t{kCount} * (kCount - 1)) / 2);  // sum 0..N-1

  // Spot lookups after the final rehash.
  for (std::uint32_t i = 0; i < kCount; i += 9973) {
    const core::Evidence* ev = map.find(0x100000000ULL + i * 7, i % 40);
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->packets(), i);
  }
  EXPECT_EQ(map.find(0x100000000ULL, 41), nullptr);
}

TEST(ScaleEvidenceMap, GrowthKeepsLoadFactorBoundExactlyAtThreshold) {
  // Pin the `>=` fix at the exact boundary: with 1024 initial slots the
  // 512th insert must land in a grown table, never at load 0.5 + ε.
  core::FlatEvidenceMap<core::Evidence> map;
  constexpr std::uint64_t kEntryBytes = 40;
  for (std::uint32_t i = 0; i < 600; ++i) {
    bool inserted = false;
    map.find_or_insert(i, 0, inserted);
    ASSERT_TRUE(inserted);
    ASSERT_GE(map.memory_bytes() / kEntryBytes, 2 * map.size())
        << "after insert " << i + 1;
  }
}

// ---------------------------------------------------------------------
// Compact persistence formats (HSCK v3, HSVD v2).

struct RulesFixture {
  core::RuleSet rules;
  core::DetectorConfig config{.threshold = 0.5};

  RulesFixture() {
    for (core::ServiceId s = 0; s < 4; ++s) {
      core::DetectionRule rule;
      rule.service = s;
      rule.name = "vendor-" + std::to_string(s);
      rule.level = core::Level::kManufacturer;
      rule.monitored_domains = 8;
      for (std::uint16_t m = 0; m < 8; ++m) {
        rule.monitored_indices.push_back(m);
        for (util::DayBin day = 0; day < 2; ++day) {
          rules.hitlist.add(endpoint(s, m), 443, day, {s, m});
        }
      }
      rules.rules.push_back(std::move(rule));
    }
  }

  static net::IpAddress endpoint(core::ServiceId s, std::uint16_t m) {
    return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
  }

  void feed(core::Detector& det) const {
    for (core::SubscriberKey sub = 1; sub <= 40; ++sub) {
      for (std::uint16_t m = 0; m < 8; ++m) {
        const auto s = static_cast<core::ServiceId>((sub + m) % 4);
        // Large packet counts force the wide-packets flag on some rows.
        const std::uint64_t packets =
            sub == 7 ? 0x1'0000'0005ULL : 2 + m;
        det.observe(sub, endpoint(s, m), 443, packets, (sub + m) % 48);
      }
    }
  }
};

using EvidenceRow =
    std::tuple<core::SubscriberKey, core::ServiceId, std::uint64_t,
               std::uint64_t, std::uint16_t, std::uint64_t, util::HourBin,
               util::HourBin>;

template <typename DetectorT>
std::vector<EvidenceRow> evidence_rows(const DetectorT& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence([&](core::SubscriberKey sub, core::ServiceId svc,
                            const core::Evidence& ev) {
    rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                      ev.packets(), ev.first_seen(), ev.satisfied_hour());
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ScaleCheckpoint, V3RestoresIdenticalStateAndIsSmaller) {
  const RulesFixture fx;
  core::Detector det{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(det);
  const auto rows = evidence_rows(det);
  ASSERT_FALSE(rows.empty());

  const auto v2 = core::save_checkpoint_interned(det);
  const auto v3 = core::save_checkpoint_compact(det);
  EXPECT_EQ(v3[7], 3);  // u32 magic, then big-endian u32 version
  EXPECT_LT(v3.size(), v2.size());
  EXPECT_EQ(core::save_checkpoint_compact(det), v3);  // deterministic

  core::Detector restored{fx.rules.hitlist, fx.rules, fx.config};
  ASSERT_TRUE(core::restore_checkpoint(v3, restored));
  EXPECT_EQ(evidence_rows(restored), rows);
  EXPECT_EQ(restored.stats().flows, det.stats().flows);
  EXPECT_EQ(restored.stats().matched, det.stats().matched);

  // Sharded engines restore and re-serialize to the same v3 bytes.
  for (const unsigned shards : {1u, 4u}) {
    core::ShardedDetector sharded{fx.rules.hitlist, fx.rules, fx.config,
                                  shards};
    ASSERT_TRUE(core::restore_checkpoint(v3, sharded));
    EXPECT_EQ(evidence_rows(sharded), rows) << "shards=" << shards;
    EXPECT_EQ(core::save_checkpoint_compact(sharded), v3)
        << "shards=" << shards;
  }
}

TEST(ScaleCheckpoint, V3RejectsTruncationAndTrailingBytes) {
  const RulesFixture fx;
  core::Detector det{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(det);
  const auto v3 = core::save_checkpoint_compact(det);

  core::Detector target{fx.rules.hitlist, fx.rules, fx.config};
  for (const std::size_t cut : {v3.size() - 1, v3.size() / 2,
                                std::size_t{12}}) {
    std::string error;
    EXPECT_FALSE(core::restore_checkpoint(
        std::span{v3.data(), cut}, target, &error));
    EXPECT_FALSE(error.empty());
  }
  auto padded = v3;
  padded.push_back(0);
  EXPECT_FALSE(core::restore_checkpoint(padded, target));
  // The rejected restores must not have clobbered the (empty) target.
  EXPECT_TRUE(evidence_rows(target).empty());
}

flow::EvidenceDelta sample_delta(std::uint32_t version) {
  flow::EvidenceDelta delta;
  delta.version = version;
  delta.collector = 9;
  delta.seq = 3;
  delta.epoch = 17;
  delta.threshold_bits = 0x3fd999999999999aULL;
  delta.labels = {"vendor-0", "vendor-1"};
  for (std::uint32_t i = 0; i < 32; ++i) {
    flow::DeltaRow row;
    row.subscriber = 0x2000 + i;
    row.label = i % 2;
    row.mask0 = 0x5ULL << (i % 32);
    row.mask1 = i % 8 == 0 ? (1ULL << 40) : 0;     // mostly absent in v2
    row.packets = i % 5 == 0 ? 0x2'0000'0000ULL : 100 + i;
    row.first_seen = i;
    delta.rows.push_back(row);
  }
  return delta;
}

TEST(ScaleDelta, V2RoundTripsSmallerAndPreservesArrivalVersion) {
  const auto v1_bytes = flow::encode_delta(sample_delta(flow::kDeltaVersion));
  const auto v2_bytes =
      flow::encode_delta(sample_delta(flow::kDeltaVersionCompact));
  EXPECT_LT(v2_bytes.size(), v1_bytes.size());

  flow::EvidenceDelta from_v1, from_v2;
  ASSERT_TRUE(flow::decode_delta(v1_bytes, from_v1));
  ASSERT_TRUE(flow::decode_delta(v2_bytes, from_v2));
  EXPECT_EQ(from_v1.version, flow::kDeltaVersion);
  EXPECT_EQ(from_v2.version, flow::kDeltaVersionCompact);
  ASSERT_EQ(from_v1.rows.size(), from_v2.rows.size());
  for (std::size_t i = 0; i < from_v1.rows.size(); ++i) {
    EXPECT_EQ(from_v1.rows[i].subscriber, from_v2.rows[i].subscriber);
    EXPECT_EQ(from_v1.rows[i].mask0, from_v2.rows[i].mask0);
    EXPECT_EQ(from_v1.rows[i].mask1, from_v2.rows[i].mask1);
    EXPECT_EQ(from_v1.rows[i].packets, from_v2.rows[i].packets);
    EXPECT_EQ(from_v1.rows[i].first_seen, from_v2.rows[i].first_seen);
  }
  // Canonical: decoded messages re-encode to the bytes they arrived as,
  // both versions (the fuzzer's round-trip property, pinned here too).
  EXPECT_EQ(flow::encode_delta(from_v1), v1_bytes);
  EXPECT_EQ(flow::encode_delta(from_v2), v2_bytes);
}

TEST(ScaleDelta, V2RejectsNonCanonicalWidths) {
  // A v2 row claiming the wide-packets flag for a value that fits 32 bits
  // (or a present-but-zero mask word) would make decode→encode lossy, so
  // the decoder must reject it. Build the bytes by hand from a valid row.
  auto delta = sample_delta(flow::kDeltaVersionCompact);
  delta.rows.resize(1);
  delta.rows[0].mask1 = 0;
  delta.rows[0].packets = 50;
  const auto bytes = flow::encode_delta(delta);
  // Row layout after the 8-byte row count: u64 subscriber + u32 label,
  // then the flag byte.
  const std::size_t flags_at = bytes.size() - (8 + 4 + 1 + 8 + 4 + 4) + 12;
  flow::EvidenceDelta out;
  ASSERT_TRUE(flow::decode_delta(bytes, out));
  for (const std::uint8_t bad_flags : {0x01, 0x02, 0x04, 0xff}) {
    auto mutated = bytes;
    mutated[flags_at] = bad_flags;
    std::string error;
    EXPECT_FALSE(flow::decode_delta(mutated, out, &error))
        << "flags=" << int{bad_flags};
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace haystack
