// Incident forensics (paper Sec. 7.2).
//
// "If an IoT device is misbehaving, e.g., involved in network attacks or
// part of a botnet, our methodology can help the ISP/IXP in identifying
// what devices are common among the subscriber lines with suspicious
// traffic."
//
// rank_common_services() does exactly that: given the detector's evidence
// and the set of suspicious subscriber lines, it compares each service's
// prevalence among the suspicious lines with its prevalence in the overall
// detected population and ranks by lift. The compromised product's service
// stands out with lift >> 1.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/detector.hpp"

namespace haystack::core {

/// One row of the forensic ranking.
struct ServicePrevalence {
  ServiceId service = 0;
  std::string name;
  /// Fraction of suspicious lines with this service detected.
  double suspicious_share = 0.0;
  /// Fraction of all detected lines with this service detected.
  double baseline_share = 0.0;
  /// suspicious_share / baseline_share (0 when baseline empty).
  double lift = 0.0;
  std::size_t suspicious_count = 0;
};

/// Ranks services by how over-represented they are among `suspicious`
/// subscriber lines, most suspicious first. Services never detected among
/// the suspicious set are omitted.
[[nodiscard]] std::vector<ServicePrevalence> rank_common_services(
    const Detector& detector,
    const std::unordered_set<SubscriberKey>& suspicious);

}  // namespace haystack::core
