#include "telemetry/border_fleet.hpp"

#include <unordered_map>
#include <utility>

#include "util/hash.hpp"

namespace haystack::telemetry {

namespace {

constexpr std::uint32_t kSourceIdBase = 100;

flow::nf9::ExporterConfig exporter_config(const BorderFleetConfig& config,
                                          unsigned router,
                                          std::uint32_t boot_unix_secs) {
  return {
      .source_id = kSourceIdBase + router,
      .sampling = config.sampling,
      .max_records_per_packet = 24,
      .template_refresh_packets = 16,
      .boot_unix_secs = boot_unix_secs,
  };
}

}  // namespace

BorderRouterFleet::BorderRouterFleet(const BorderFleetConfig& config)
    : config_{config},
      // The export path is UDP: duplicates are a fact of life, so the
      // central collector always runs duplicate suppression. The window
      // covers one hour's fan-in from the whole fleet.
      collector_{flow::nf9::CollectorConfig{
          .dedup_window = 64,
          .recorder =
              config.obs != nullptr ? &config.obs->recorder : nullptr}} {
  if (config.obs != nullptr) {
    auto& reg = config.obs->registry;
    exported_datagrams_ = reg.counter("fleet_exported_datagrams_total");
    unlabeled_metric_ = reg.counter("fleet_unlabeled_records_total");
    restarts_metric_ = reg.counter("fleet_restarts_total");
    loss_ppm_ = reg.gauge("fleet_estimated_loss_ppm");
  }
  exporters_.reserve(config.routers);
  for (unsigned r = 0; r < config.routers; ++r) {
    exporters_.emplace_back(exporter_config(config, r, 0));
    if (config.impairment) {
      flow::ImpairmentConfig link = *config.impairment;
      link.seed = util::splitmix64(link.seed ^ (0x9e3779b97f4a7c15ULL * r));
      links_.emplace_back(link);
    }
  }
}

unsigned BorderRouterFleet::router_of(const net::IpAddress& dst) const {
  return static_cast<unsigned>(dst.hash() % config_.routers);
}

flow::ImpairmentStats BorderRouterFleet::impairment_stats() const {
  flow::ImpairmentStats total;
  for (const auto& link : links_) {
    const auto& s = link.stats();
    total.datagrams_in += s.datagrams_in;
    total.delivered += s.delivered;
    total.dropped += s.dropped;
    total.duplicated += s.duplicated;
    total.reordered += s.reordered;
    total.truncated += s.truncated;
  }
  return total;
}

void BorderRouterFleet::maybe_restart(util::HourBin hour,
                                      std::uint32_t unix_secs) {
  // Scheduled exporter crash: the router's export process restarts with a
  // fresh sequence counter, a recent boot time, and no memory of having
  // announced templates.
  if (config_.restart_router && *config_.restart_router < exporters_.size() &&
      hour == config_.restart_hour && restarts_performed_ == 0) {
    const unsigned r = *config_.restart_router;
    exporters_[r] =
        flow::nf9::Exporter{exporter_config(config_, r, unix_secs)};
    ++restarts_performed_;
    if (restarts_metric_) restarts_metric_->add(1);
    if (config_.obs != nullptr) {
      // Fleet-side view of the restart (the collector records its own
      // kExporterRestart when it detects the sequence reset on ingest).
      config_.obs->recorder.set_hour(hour);
      config_.obs->recorder.record(obs::EventKind::kExporterRestart,
                                   kSourceIdBase + r, restarts_performed_,
                                   /*b=*/1);
    }
  }
}

void BorderRouterFleet::note_loss(util::HourBin hour) {
  const double loss = collector_.estimated_loss();
  if (hour < util::kStudyHours) loss_series_.set(hour, loss);
  if (loss_ppm_) {
    loss_ppm_->set(static_cast<std::int64_t>(loss * 1'000'000.0));
  }
}

std::vector<std::vector<std::uint8_t>> BorderRouterFleet::announcements(
    util::HourBin hour, std::uint32_t unix_secs) {
  std::vector<std::vector<std::uint8_t>> packets;
  // Periodic options announcements (always in hour 0).
  if (hour % std::max(1u, config_.announce_every) == 0) {
    packets.reserve(config_.routers);
    for (unsigned r = 0; r < config_.routers; ++r) {
      packets.push_back(flow::nf9::encode_sampling_announcement(
          {.source_id = kSourceIdBase + r,
           .interval = config_.sampling,
           .algorithm = flow::nf9::SamplingAlgorithm::kRandom},
          unix_secs, announce_sequence_++));
    }
  }
  return packets;
}

std::vector<std::vector<std::uint8_t>> BorderRouterFleet::export_router(
    unsigned router, const std::vector<flow::FlowRecord>& records,
    std::uint32_t unix_secs) {
  std::vector<std::vector<std::uint8_t>> delivered;
  for (auto& packet : exporters_[router].export_flows(records, unix_secs)) {
    if (links_.empty()) {
      delivered.push_back(std::move(packet));
    } else {
      for (auto& datagram : links_[router].transmit(std::move(packet))) {
        delivered.push_back(std::move(datagram));
      }
    }
  }
  if (!links_.empty()) {
    // Hour boundary: anything still held for reordering arrives now.
    for (auto& datagram : links_[router].flush()) {
      delivered.push_back(std::move(datagram));
    }
  }
  if (exported_datagrams_) exported_datagrams_->add(delivered.size());
  return delivered;
}

std::vector<simnet::LabeledFlow> BorderRouterFleet::observe(
    const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour) {
  const std::uint32_t unix_secs = 1574000000U + hour * 3600U;

  maybe_restart(hour, unix_secs);

  // Announcements ride the same UDP path conceptually, but are
  // retransmitted every cycle, so the model delivers them directly to the
  // registry.
  for (const auto& packet : announcements(hour, unix_secs)) {
    sampling_.ingest(packet);
  }

  // Partition by router and sample.
  std::vector<std::vector<flow::FlowRecord>> per_router(config_.routers);
  std::vector<std::vector<const simnet::LabeledFlow*>> labels(
      config_.routers);
  for (const auto& lf : flows) {
    const unsigned r = router_of(lf.flow.key.dst);
    util::Pcg32 rng = util::derive_rng(
        config_.seed ^ r, lf.flow.key.hash() ^ lf.flow.start_ms, hour);
    if (auto thin = flow::thin_flow(lf.flow, config_.sampling, rng)) {
      // Routers export records without a per-record sampling field when
      // options announcements carry it; clear the field so the collector
      // side must rely on the registry (provenance honesty).
      thin->sampling = 0;
      per_router[r].push_back(*thin);
      labels[r].push_back(&lf);
    }
  }

  // Export → (impaired) link → central ingest, per router. With an
  // impaired path, datagrams can be dropped, duplicated, reordered or
  // truncated, so decoded records are matched back to their labels by
  // flow key instead of by position.
  std::vector<simnet::LabeledFlow> merged;
  for (unsigned r = 0; r < config_.routers; ++r) {
    if (per_router[r].empty()) continue;
    std::vector<flow::FlowRecord> decoded;
    decoded.reserve(per_router[r].size());
    const auto deliver = [&](std::span<const std::uint8_t> datagram) {
      // Malformed (e.g. truncated) datagrams are the collector's problem:
      // it rejects them and accounts the loss via the sequence tracker.
      (void)collector_.ingest(datagram, decoded);
      // The sampling registry inspects every packet too (it ignores
      // non-options flowsets and tolerates malformed input).
      sampling_.ingest(datagram);
    };
    for (const auto& datagram : export_router(r, per_router[r], unix_secs)) {
      deliver(datagram);
    }

    const auto interval =
        sampling_.interval_of(kSourceIdBase + r).value_or(1);
    std::unordered_multimap<flow::FlowKey, const simnet::LabeledFlow*>
        by_key;
    by_key.reserve(labels[r].size());
    for (const auto* lf : labels[r]) by_key.emplace(lf->flow.key, lf);
    for (const auto& rec : decoded) {
      const auto it = by_key.find(rec.key);
      if (it == by_key.end()) {
        ++unlabeled_records_;
        continue;
      }
      simnet::LabeledFlow out = *it->second;
      by_key.erase(it);
      out.flow = rec;
      out.flow.sampling = interval;  // provenance: from the announcement
      merged.push_back(std::move(out));
    }
  }
  if (unlabeled_metric_ &&
      unlabeled_records_ > unlabeled_metric_->value()) {
    unlabeled_metric_->add(unlabeled_records_ - unlabeled_metric_->value());
  }
  note_loss(hour);
  return merged;
}

std::vector<std::vector<std::uint8_t>> BorderRouterFleet::export_hour(
    const std::vector<flow::FlowRecord>& records, util::HourBin hour) {
  const std::uint32_t unix_secs = 1574000000U + hour * 3600U;

  maybe_restart(hour, unix_secs);

  // On the wire the announcements are datagrams like any other; the fleet's
  // own registry still learns them so sampling() keeps reporting.
  std::vector<std::vector<std::uint8_t>> out =
      announcements(hour, unix_secs);
  for (const auto& packet : out) sampling_.ingest(packet);

  // Partition by router and sample, exactly as observe() does.
  std::vector<std::vector<flow::FlowRecord>> per_router(config_.routers);
  for (const auto& rec : records) {
    const unsigned r = router_of(rec.key.dst);
    util::Pcg32 rng = util::derive_rng(config_.seed ^ r,
                                       rec.key.hash() ^ rec.start_ms, hour);
    if (auto thin = flow::thin_flow(rec, config_.sampling, rng)) {
      thin->sampling = 0;  // carried by the announcements, not the record
      per_router[r].push_back(*thin);
    }
  }

  for (unsigned r = 0; r < config_.routers; ++r) {
    if (per_router[r].empty()) continue;
    for (auto& datagram : export_router(r, per_router[r], unix_secs)) {
      out.push_back(std::move(datagram));
    }
  }
  return out;
}

}  // namespace haystack::telemetry
