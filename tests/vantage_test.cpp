// Multi-vantage collection suite (ISSUE 7).
//
// The differential core: a fleet of N collectors shipping evidence deltas
// over an impaired channel to the crash-consistent aggregator must land,
// after finish(), on a merged evidence map BIT-FOR-BIT identical to one
// single-process Detector fed the union stream hour by hour — across
// clean channels, compound drop/duplicate/reorder/truncate impairment,
// lossy acks, collector counts {1, 4, 16}, and a scripted mid-study
// collector kill/restart that resyncs from the aggregator snapshot.
//
// Satellites pinned here:
//   - intern-order regression: two collectors that intern the same rule
//     names in different orders still merge correctly (labels travel as
//     strings in the delta, never as process-local handles);
//   - cleared-on-failed-restore: a corrupt HSAG blob leaves the
//     aggregator empty, global and per-collector state alike;
//   - merge-algebra properties over randomized masks/thresholds:
//     commutativity, idempotency, associativity, satisfaction
//     monotonicity, and replay-after-gap convergence;
//   - HSVD wire strictness: every strict prefix and every trailing byte
//     of a valid delta is rejected;
//   - concurrent offer/query (the TSan workload for `ctest -L vantage`).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "core/evidence_merge.hpp"
#include "flow/delta_wire.hpp"
#include "pipeline/scenario_runner.hpp"
#include "util/rng.hpp"
#include "vantage/fleet.hpp"

namespace haystack::vantage {
namespace {

using core::Evidence;
using core::Observation;
using core::ServiceId;
using core::SubscriberKey;

constexpr unsigned kHours = 48;

struct TestScenario {
  core::RuleSet rules;
  core::DetectorConfig config;
  /// Observation stream grouped by hour (index == hour), the order the
  /// fleet — and the baseline — consume it.
  std::vector<std::vector<Observation>> stream;
  SubscriberKey subscriber_pool = 0;
};

net::IpAddress service_ip(ServiceId s, std::uint16_t m) {
  return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
}

// Randomized rule universe + hour-bucketed observation stream; everything
// derives from `seed` (same recipe as tests/differential_test.cpp).
TestScenario make_scenario(std::uint64_t seed) {
  util::Pcg32 rng = util::derive_rng(seed, 0x7a9e, 0);
  TestScenario sc;

  constexpr double kThresholds[] = {0.1, 0.25, 0.4, 0.6, 0.8, 1.0};
  sc.config.threshold = kThresholds[seed % std::size(kThresholds)];

  const unsigned n_services = 3 + rng.bounded(6);
  for (unsigned s = 0; s < n_services; ++s) {
    core::DetectionRule rule;
    rule.service = static_cast<ServiceId>(s);
    rule.name = "svc" + std::to_string(s);
    rule.level = core::Level::kManufacturer;
    rule.monitored_domains = 1 + rng.bounded(16);
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      rule.monitored_indices.push_back(m);
    }
    if (s > 0 && rng.chance(0.5)) {
      rule.parent = static_cast<ServiceId>(rng.bounded(s));
    }
    if (rng.chance(0.4)) {
      rule.critical_monitored_index =
          static_cast<std::uint16_t>(rng.bounded(rule.monitored_domains));
      rule.critical_sufficient = rng.chance(0.5);
    }
    sc.rules.rules.push_back(std::move(rule));
  }
  for (const auto& rule : sc.rules.rules) {
    for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
      for (util::DayBin day = 0; day < kHours / 24; ++day) {
        sc.rules.hitlist.add(service_ip(rule.service, m), 443, day,
                             {rule.service, m});
      }
    }
  }

  sc.subscriber_pool = 1 + rng.bounded(120);
  sc.stream.resize(kHours);
  const std::size_t n_obs = 500 + rng.bounded(2500);
  for (std::size_t i = 0; i < n_obs; ++i) {
    Observation obs;
    obs.subscriber =
        1 + rng.bounded(static_cast<std::uint32_t>(sc.subscriber_pool));
    obs.packets = 1 + rng.bounded(100);
    obs.hour = rng.bounded(kHours);
    const std::uint32_t kind = rng.bounded(10);
    const auto s = static_cast<ServiceId>(rng.bounded(n_services));
    const auto m = static_cast<std::uint16_t>(
        rng.bounded(sc.rules.rules[s].monitored_domains));
    if (kind < 7) {
      obs.server = service_ip(s, m);
      obs.port = 443;
    } else if (kind < 9) {
      obs.server = service_ip(s, m);
      obs.port = static_cast<std::uint16_t>(1024 + rng.bounded(50000));
    } else {
      obs.server = net::IpAddress::v4(0xC6336400U + rng.bounded(256));
      obs.port = 443;
    }
    sc.stream[obs.hour].push_back(obs);
  }
  return sc;
}

// Canonical bit-for-bit snapshot of an evidence holder (Detector or
// Aggregator — anything with for_each_evidence).
using EvidenceRow =
    std::tuple<SubscriberKey, ServiceId, std::uint64_t, std::uint64_t,
               std::uint16_t, std::uint64_t, util::HourBin, util::HourBin>;

template <typename T>
std::vector<EvidenceRow> snapshot(const T& holder) {
  std::vector<EvidenceRow> rows;
  holder.for_each_evidence(
      [&rows](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                          ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

template <typename T>
std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
detection_map(const T& holder, const TestScenario& sc) {
  std::map<std::pair<SubscriberKey, ServiceId>, std::optional<util::HourBin>>
      out;
  for (SubscriberKey sub = 1; sub <= sc.subscriber_pool; ++sub) {
    for (const auto& rule : sc.rules.rules) {
      out[{sub, rule.service}] = holder.detection_hour(sub, rule.service);
    }
  }
  return out;
}

// Single-process baseline over the identical hour-ordered stream.
core::Detector run_baseline(const TestScenario& sc) {
  core::Detector baseline{sc.rules.hitlist, sc.rules, sc.config};
  for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
    for (const Observation& obs : sc.stream[h]) {
      baseline.observe(obs.subscriber, obs.server, obs.port, obs.packets,
                       obs.hour);
    }
  }
  return baseline;
}

void expect_fleet_matches_baseline(const TestScenario& sc,
                                   const FleetConfig& fcfg,
                                   const char* what) {
  const core::Detector baseline = run_baseline(sc);
  Fleet fleet{sc.rules.hitlist, sc.rules, fcfg};
  for (util::HourBin h = 0; h < sc.stream.size(); ++h) {
    fleet.process_hour(h, sc.stream[h]);
  }
  ASSERT_TRUE(fleet.finish()) << what;
  EXPECT_EQ(fleet.aggregator().merged_through(),
            std::optional<util::HourBin>{kHours - 1})
      << what;
  EXPECT_EQ(snapshot(fleet.aggregator()), snapshot(baseline)) << what;
  EXPECT_EQ(detection_map(fleet.aggregator(), sc),
            detection_map(baseline, sc))
      << what;
  EXPECT_EQ(fleet.aggregator().stats().flows, baseline.stats().flows) << what;
  EXPECT_EQ(fleet.aggregator().stats().matched, baseline.stats().matched)
      << what;
}

class VantageDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VantageDifferentialTest, CleanChannelMatchesAcrossFleetSizes) {
  const TestScenario sc = make_scenario(GetParam());
  for (const unsigned collectors : {1u, 4u, 16u}) {
    FleetConfig fcfg;
    fcfg.collectors = collectors;
    fcfg.detector = sc.config;
    fcfg.seed = GetParam();
    expect_fleet_matches_baseline(
        sc, fcfg, ("collectors=" + std::to_string(collectors)).c_str());
  }
}

TEST_P(VantageDifferentialTest, ImpairedDeltaChannelStillMatchesBitForBit) {
  const TestScenario sc = make_scenario(GetParam());
  flow::ImpairmentConfig impair;
  impair.seed = GetParam() ^ 0xde17a;
  impair.drop = 0.15;
  impair.duplicate = 0.10;
  impair.reorder = 0.10;
  impair.truncate = 0.05;
  for (const unsigned collectors : {1u, 4u, 16u}) {
    FleetConfig fcfg;
    fcfg.collectors = collectors;
    fcfg.detector = sc.config;
    fcfg.seed = GetParam();
    fcfg.delta_impairment = impair;
    fcfg.ack_loss = 0.2;
    expect_fleet_matches_baseline(
        sc, fcfg,
        ("impaired collectors=" + std::to_string(collectors)).c_str());
  }
}

TEST_P(VantageDifferentialTest, MidStudyKillRestartMatchesBitForBit) {
  const TestScenario sc = make_scenario(GetParam());
  flow::ImpairmentConfig impair;
  impair.seed = GetParam() ^ 0x6b11;
  impair.drop = 0.10;
  impair.duplicate = 0.05;
  impair.reorder = 0.05;
  FleetConfig fcfg;
  fcfg.collectors = 4;
  fcfg.detector = sc.config;
  fcfg.seed = GetParam();
  fcfg.delta_impairment = impair;
  fcfg.kill_collector = static_cast<unsigned>(GetParam() % 4);
  fcfg.kill_hour = 12 + static_cast<util::HourBin>(GetParam() % 8);
  fcfg.restart_hour = 30 + static_cast<util::HourBin>(GetParam() % 8);
  expect_fleet_matches_baseline(sc, fcfg, "kill/restart");

  // And the degenerate restart-next-hour case on a clean channel.
  FleetConfig quick = fcfg;
  quick.delta_impairment.reset();
  quick.kill_hour = 20;
  quick.restart_hour = 21;
  expect_fleet_matches_baseline(sc, quick, "kill/restart next hour");
}

INSTANTIATE_TEST_SUITE_P(Scenarios, VantageDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// --- merge-algebra property tests (satellite) ---

Evidence random_evidence(util::Pcg32& rng) {
  Evidence ev;
  // Sparse-ish masks so merges actually change bit populations; distinct
  // is derived from the mask by the packed layout.
  for (unsigned i = 0; i < 2; ++i) {
    std::uint64_t word = 0;
    const unsigned bits = rng.bounded(12);
    for (unsigned b = 0; b < bits; ++b) word |= 1ULL << rng.bounded(64);
    ev.set_mask(i, word);
  }
  ev.set_packets(rng.bounded(100000));
  ev.set_first_seen(rng.bounded(500));
  ev.set_satisfied_hour(rng.chance(0.5) ? Evidence::kNever
                                        : rng.bounded(500));
  return ev;
}

bool same(const Evidence& a, const Evidence& b) {
  return a.mask(0) == b.mask(0) && a.mask(1) == b.mask(1) &&
         a.distinct() == b.distinct() && a.packets() == b.packets() &&
         a.first_seen() == b.first_seen() &&
         a.satisfied_hour() == b.satisfied_hour();
}

TEST(VantageMergeProperties, CommutativeIdempotentAssociative) {
  util::Pcg32 rng = util::derive_rng(7, 0x3e6e, 0);
  for (int i = 0; i < 2000; ++i) {
    const Evidence a = random_evidence(rng);
    const Evidence b = random_evidence(rng);
    const Evidence c = random_evidence(rng);

    Evidence ab = a;
    core::merge_evidence(ab, b);
    Evidence ba = b;
    core::merge_evidence(ba, a);
    EXPECT_TRUE(same(ab, ba)) << "merge must be commutative (iteration "
                              << i << ")";

    Evidence aa = a;
    core::merge_evidence(aa, a);
    EXPECT_TRUE(same(aa, a)) << "merge must be idempotent (iteration " << i
                             << ")";

    Evidence ab_c = ab;
    core::merge_evidence(ab_c, c);
    Evidence bc = b;
    core::merge_evidence(bc, c);
    Evidence a_bc = a;
    core::merge_evidence(a_bc, bc);
    EXPECT_TRUE(same(ab_c, a_bc))
        << "merge must be associative (iteration " << i << ")";
  }
}

TEST(VantageMergeProperties, SatisfactionIsMonotoneUnderMerge) {
  util::Pcg32 rng = util::derive_rng(11, 0x3e6e, 1);
  for (int i = 0; i < 2000; ++i) {
    core::DetectionRule rule;
    rule.service = 0;
    rule.name = "r";
    rule.monitored_domains =
        static_cast<std::uint16_t>(1 + rng.bounded(128));
    if (rng.chance(0.5)) {
      rule.critical_monitored_index =
          static_cast<std::uint16_t>(rng.bounded(rule.monitored_domains));
      rule.critical_sufficient = rng.chance(0.5);
    }
    const double threshold = 0.05 + 0.95 * (rng.bounded(1000) / 1000.0);
    const core::SatisfyRule satisfy =
        core::compile_satisfy_rule(rule, threshold);

    const Evidence a = random_evidence(rng);
    const Evidence b = random_evidence(rng);
    Evidence merged = a;
    core::merge_evidence(merged, b);
    if (core::evidence_satisfies(a, satisfy)) {
      EXPECT_TRUE(core::evidence_satisfies(merged, satisfy))
          << "satisfied evidence must stay satisfied after a merge "
             "(iteration "
          << i << ")";
    }
    // And satisfaction only ever depends on the mask/distinct, which the
    // merge grows: popcount(merged) >= popcount(a).
    EXPECT_GE(merged.distinct(), a.distinct());
  }
}

// Seals three epochs from two real collectors, then delivers the deltas to
// a second aggregator in a hostile order — a gap (epoch 2 before 0 and 1),
// replays, and a stale post-merge retransmission — and requires exact
// convergence to the in-order aggregator.
TEST(VantageMergeProperties, ReplayAfterGapConvergesExactly) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TestScenario sc = make_scenario(seed);
    AggregatorConfig acfg;
    acfg.detector = sc.config;

    CollectorConfig c0cfg;
    c0cfg.id = 0;
    c0cfg.detector = sc.config;
    CollectorConfig c1cfg = c0cfg;
    c1cfg.id = 1;
    Collector c0{sc.rules.hitlist, sc.rules, c0cfg};
    Collector c1{sc.rules.hitlist, sc.rules, c1cfg};

    std::vector<std::vector<std::uint8_t>> d0;
    std::vector<std::vector<std::uint8_t>> d1;
    for (util::HourBin h = 0; h < 3; ++h) {
      for (const Observation& obs : sc.stream[h]) {
        ((obs.subscriber % 2 == 0) ? c0 : c1).ingest(obs);
      }
      d0.push_back(c0.seal_epoch(h));
      d1.push_back(c1.seal_epoch(h));
    }

    Aggregator in_order{sc.rules.hitlist, sc.rules, acfg};
    in_order.add_collector(0, 0);
    in_order.add_collector(1, 0);
    for (util::HourBin h = 0; h < 3; ++h) {
      EXPECT_TRUE(in_order.offer(d0[h]).accepted);
      EXPECT_TRUE(in_order.offer(d1[h]).accepted);
    }
    ASSERT_EQ(in_order.merged_through(), std::optional<util::HourBin>{2});

    Aggregator hostile{sc.rules.hitlist, sc.rules, acfg};
    hostile.add_collector(0, 0);
    hostile.add_collector(1, 0);
    EXPECT_TRUE(hostile.offer(d0[2]).accepted);  // gap: epochs 0,1 missing
    EXPECT_TRUE(hostile.offer(d1[0]).accepted);
    EXPECT_TRUE(hostile.offer(d0[0]).accepted);  // seals epoch 0
    EXPECT_EQ(hostile.merged_through(), std::optional<util::HourBin>{0});
    EXPECT_TRUE(hostile.offer(d0[1]).accepted);
    EXPECT_TRUE(hostile.offer(d0[1]).accepted);  // duplicate of staged
    EXPECT_TRUE(hostile.offer(d1[2]).accepted);
    EXPECT_TRUE(hostile.offer(d1[1]).accepted);  // seals epochs 1 and 2
    ASSERT_EQ(hostile.merged_through(), std::optional<util::HourBin>{2});
    const auto stale = hostile.offer(d0[2]);  // replay of a merged epoch
    EXPECT_TRUE(stale.accepted);
    EXPECT_EQ(stale.detail, "stale");

    EXPECT_EQ(snapshot(hostile), snapshot(in_order)) << "seed=" << seed;
    EXPECT_EQ(hostile.stats().flows, in_order.stats().flows);
    EXPECT_EQ(hostile.stats().matched, in_order.stats().matched);
    EXPECT_GT(hostile.counters().duplicates, 0U);
    EXPECT_EQ(hostile.counters().stale, 1U);
  }
}

// --- intern-order regression (satellite) ---

// Two collectors touch the same two rules in OPPOSITE first-use order, so
// their delta label tables disagree position-by-position; the aggregator
// must remap by name, never by table index.
TEST(VantageInternOrder, CollectorsWithDifferentLabelOrdersMergeCorrectly) {
  core::RuleSet rules;
  for (const char* name : {"alpha", "beta"}) {
    core::DetectionRule rule;
    rule.service = static_cast<ServiceId>(rules.rules.size());
    rule.name = name;
    rule.monitored_domains = 2;
    rule.monitored_indices = {0, 1};
    rules.rules.push_back(std::move(rule));
  }
  for (const auto& rule : rules.rules) {
    for (std::uint16_t m = 0; m < 2; ++m) {
      rules.hitlist.add(service_ip(rule.service, m), 443, 0,
                        {rule.service, m});
    }
  }
  core::DetectorConfig dcfg;
  dcfg.threshold = 1.0;  // both domains required

  const auto obs = [](SubscriberKey sub, ServiceId svc, std::uint16_t m) {
    Observation o;
    o.subscriber = sub;
    o.server = service_ip(svc, m);
    o.port = 443;
    o.packets = 3;
    o.hour = 0;
    return o;
  };

  CollectorConfig c0cfg;
  c0cfg.detector = dcfg;
  CollectorConfig c1cfg = c0cfg;
  c1cfg.id = 1;
  Collector c0{rules.hitlist, rules, c0cfg};
  Collector c1{rules.hitlist, rules, c1cfg};
  // Collector 0's lowest subscriber touches alpha; collector 1's lowest
  // touches beta — their label tables come out in opposite orders.
  c0.ingest(obs(1, 0, 0));
  c0.ingest(obs(2, 1, 0));
  c1.ingest(obs(3, 1, 1));
  c1.ingest(obs(4, 0, 1));
  const auto bytes0 = c0.seal_epoch(0);
  const auto bytes1 = c1.seal_epoch(0);

  flow::EvidenceDelta delta0;
  flow::EvidenceDelta delta1;
  ASSERT_TRUE(flow::decode_delta(bytes0, delta0));
  ASSERT_TRUE(flow::decode_delta(bytes1, delta1));
  ASSERT_EQ(delta0.labels, (std::vector<std::string>{"alpha", "beta"}));
  ASSERT_EQ(delta1.labels, (std::vector<std::string>{"beta", "alpha"}));

  AggregatorConfig acfg;
  acfg.detector = dcfg;
  Aggregator agg{rules.hitlist, rules, acfg};
  agg.add_collector(0, 0);
  agg.add_collector(1, 0);
  EXPECT_TRUE(agg.offer(bytes0).accepted);
  EXPECT_TRUE(agg.offer(bytes1).accepted);
  ASSERT_EQ(agg.merged_through(), std::optional<util::HourBin>{0});

  core::Detector single{rules.hitlist, rules, dcfg};
  for (const auto& o :
       {obs(1, 0, 0), obs(2, 1, 0), obs(3, 1, 1), obs(4, 0, 1)}) {
    single.observe(o.subscriber, o.server, o.port, o.packets, o.hour);
  }
  EXPECT_EQ(snapshot(agg), snapshot(single));
  // Spot-check the remap: subscriber 4 touched "alpha" (service 0) even
  // though its row's label index is 1 in collector 1's table.
  const auto ev = agg.evidence(4, 0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->mask(0), 2U);  // domain position 1
}

// --- crash-consistent save/restore (satellite) ---

class VantageRestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sc_ = make_scenario(3);
    fcfg_.collectors = 3;
    fcfg_.detector = sc_.config;
  }

  // Runs half the study and returns the fleet (merged state non-trivial).
  std::unique_ptr<Fleet> half_study() {
    auto fleet = std::make_unique<Fleet>(sc_.rules.hitlist, sc_.rules, fcfg_);
    for (util::HourBin h = 0; h < kHours / 2; ++h) {
      fleet->process_hour(h, sc_.stream[h]);
    }
    return fleet;
  }

  TestScenario sc_;
  FleetConfig fcfg_;
};

TEST_F(VantageRestoreTest, SaveRestoreRoundTripsBitForBit) {
  auto fleet = half_study();
  const Aggregator& agg = fleet->aggregator();
  const auto blob = agg.save();

  AggregatorConfig acfg;
  acfg.detector = sc_.config;
  Aggregator restored{sc_.rules.hitlist, sc_.rules, acfg};
  std::string err;
  ASSERT_TRUE(restored.restore(blob, &err)) << err;
  EXPECT_EQ(snapshot(restored), snapshot(agg));
  EXPECT_EQ(restored.merged_through(), agg.merged_through());
  EXPECT_EQ(restored.stats().flows, agg.stats().flows);
  EXPECT_EQ(restored.stats().matched, agg.stats().matched);
  for (std::uint32_t id = 0; id < fcfg_.collectors; ++id) {
    EXPECT_EQ(restored.acked_through(id), agg.acked_through(id));
    EXPECT_EQ(restored.snapshot_for(id), agg.snapshot_for(id));
  }
}

TEST_F(VantageRestoreTest, RestoredAggregatorResumesWithoutDoubleCounting) {
  auto fleet = half_study();
  const auto blob = fleet->aggregator().save();
  std::string err;
  ASSERT_TRUE(fleet->aggregator().restore(blob, &err)) << err;
  // Staged-but-unmerged epochs died with the "crash"; the unacked deltas
  // are still queued collector-side and retransmit during the remaining
  // hours, so the run must still finish bit-for-bit.
  for (util::HourBin h = kHours / 2; h < kHours; ++h) {
    fleet->process_hour(h, sc_.stream[h]);
  }
  ASSERT_TRUE(fleet->finish());
  const core::Detector baseline = run_baseline(sc_);
  EXPECT_EQ(snapshot(fleet->aggregator()), snapshot(baseline));
  EXPECT_EQ(fleet->aggregator().stats().flows, baseline.stats().flows);
}

TEST_F(VantageRestoreTest, FailedRestoreClearsAllState) {
  auto fleet = half_study();
  Aggregator& agg = fleet->aggregator();
  ASSERT_FALSE(snapshot(agg).empty());
  auto blob = agg.save();

  // Corrupt the header threshold: structurally valid prefix, wrong world.
  blob[11] ^= 0xff;
  std::string err;
  EXPECT_FALSE(agg.restore(blob, &err));
  EXPECT_FALSE(err.empty());

  // Cleared-on-failed-restore: nothing survives, global or per-collector.
  EXPECT_TRUE(snapshot(agg).empty());
  EXPECT_EQ(agg.merged_through(), std::nullopt);
  EXPECT_EQ(agg.stats().flows, 0U);
  EXPECT_EQ(agg.stats().matched, 0U);
  for (std::uint32_t id = 0; id < fcfg_.collectors; ++id) {
    EXPECT_EQ(agg.acked_through(id), std::nullopt);
    EXPECT_TRUE(agg.snapshot_for(id).empty());
  }
}

TEST_F(VantageRestoreTest, TruncatedAndGarbageBlobsAllClear) {
  auto fleet = half_study();
  Aggregator& agg = fleet->aggregator();
  const auto blob = agg.save();
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{17}, blob.size() / 2,
        blob.size() - 1}) {
    AggregatorConfig acfg;
    acfg.detector = sc_.config;
    Aggregator victim{sc_.rules.hitlist, sc_.rules, acfg};
    std::vector<std::uint8_t> cutblob{blob.begin(),
                                      blob.begin() + static_cast<long>(cut)};
    EXPECT_FALSE(victim.restore(cutblob));
    EXPECT_TRUE(snapshot(victim).empty());
    EXPECT_EQ(victim.merged_through(), std::nullopt);
  }
}

// --- HSVD wire strictness ---

flow::EvidenceDelta sample_delta() {
  flow::EvidenceDelta delta;
  delta.collector = 7;
  delta.seq = 42;
  delta.epoch = 13;
  delta.kind = flow::DeltaKind::kDelta;
  delta.threshold_bits = std::bit_cast<std::uint64_t>(0.4);
  delta.flows = 1234;
  delta.matched = 99;
  delta.labels = {"alexa", "ring-doorbell"};
  flow::DeltaRow row;
  row.subscriber = 0x1122334455667788ULL;
  row.label = 1;
  row.mask0 = 0b1011;
  row.mask1 = 1ULL << 63;
  row.packets = 555;
  row.first_seen = 12;
  delta.rows.push_back(row);
  row.subscriber = 0x99;
  row.label = 0;
  delta.rows.push_back(row);
  return delta;
}

TEST(VantageDeltaWire, RoundTripsEveryField) {
  const flow::EvidenceDelta delta = sample_delta();
  const auto bytes = flow::encode_delta(delta);
  flow::EvidenceDelta out;
  std::string err;
  ASSERT_TRUE(flow::decode_delta(bytes, out, &err)) << err;
  EXPECT_EQ(out.collector, delta.collector);
  EXPECT_EQ(out.seq, delta.seq);
  EXPECT_EQ(out.epoch, delta.epoch);
  EXPECT_EQ(out.kind, delta.kind);
  EXPECT_EQ(out.threshold_bits, delta.threshold_bits);
  EXPECT_EQ(out.flows, delta.flows);
  EXPECT_EQ(out.matched, delta.matched);
  EXPECT_EQ(out.labels, delta.labels);
  ASSERT_EQ(out.rows.size(), delta.rows.size());
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    EXPECT_EQ(out.rows[i].subscriber, delta.rows[i].subscriber);
    EXPECT_EQ(out.rows[i].label, delta.rows[i].label);
    EXPECT_EQ(out.rows[i].mask0, delta.rows[i].mask0);
    EXPECT_EQ(out.rows[i].mask1, delta.rows[i].mask1);
    EXPECT_EQ(out.rows[i].packets, delta.rows[i].packets);
    EXPECT_EQ(out.rows[i].first_seen, delta.rows[i].first_seen);
  }
  // Canonical: re-encoding the parse reproduces the input byte-for-byte.
  EXPECT_EQ(flow::encode_delta(out), bytes);
}

TEST(VantageDeltaWire, EveryPrefixAndAnyTrailingByteRejected) {
  const auto bytes = flow::encode_delta(sample_delta());
  flow::EvidenceDelta out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(flow::decode_delta(
        std::span<const std::uint8_t>{bytes.data(), len}, out))
        << "prefix length " << len;
  }
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(flow::decode_delta(extended, out));
}

TEST(VantageDeltaWire, RejectsStructuralCorruption) {
  flow::EvidenceDelta out;
  {
    auto bytes = flow::encode_delta(sample_delta());
    bytes[0] ^= 0xff;  // magic
    EXPECT_FALSE(flow::decode_delta(bytes, out));
  }
  {
    auto bytes = flow::encode_delta(sample_delta());
    bytes[7] ^= 0xff;  // version
    EXPECT_FALSE(flow::decode_delta(bytes, out));
  }
  {
    auto delta = sample_delta();
    delta.rows[0].label = 9;  // out-of-range label index
    EXPECT_FALSE(flow::decode_delta(flow::encode_delta(delta), out));
  }
  {
    auto bytes = flow::encode_delta(sample_delta());
    bytes[20] = 2;  // kind byte past kSnapshot
    EXPECT_FALSE(flow::decode_delta(bytes, out));
  }
}

// --- aggregator admission control ---

TEST(VantageAggregator, RejectsForeignAndMalformedDeltas) {
  const TestScenario sc = make_scenario(1);
  AggregatorConfig acfg;
  acfg.detector = sc.config;
  Aggregator agg{sc.rules.hitlist, sc.rules, acfg};
  agg.add_collector(0, 0);

  CollectorConfig ccfg;
  ccfg.detector = sc.config;
  Collector c0{sc.rules.hitlist, sc.rules, ccfg};
  for (const Observation& obs : sc.stream[0]) c0.ingest(obs);

  // Unknown collector id.
  {
    Collector stranger{sc.rules.hitlist, sc.rules,
                       CollectorConfig{.id = 9, .detector = sc.config}};
    const auto r = agg.offer(stranger.seal_epoch(0));
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.detail, "unknown collector");
  }
  // Threshold mismatch.
  {
    core::DetectorConfig other = sc.config;
    other.threshold = sc.config.threshold / 2 + 0.01;
    Collector wrong{sc.rules.hitlist, sc.rules,
                    CollectorConfig{.id = 0, .detector = other}};
    const auto r = agg.offer(wrong.seal_epoch(0));
    EXPECT_FALSE(r.accepted);
  }
  // Snapshot kind on the delta path.
  {
    flow::EvidenceDelta snap;
    snap.kind = flow::DeltaKind::kSnapshot;
    snap.threshold_bits = std::bit_cast<std::uint64_t>(sc.config.threshold);
    const auto r = agg.offer(flow::encode_delta(snap));
    EXPECT_FALSE(r.accepted);
  }
  // Unknown rule name.
  {
    flow::EvidenceDelta alien;
    alien.collector = 0;
    alien.kind = flow::DeltaKind::kDelta;
    alien.threshold_bits = std::bit_cast<std::uint64_t>(sc.config.threshold);
    alien.labels = {"no-such-rule"};
    flow::DeltaRow row;
    row.label = 0;
    row.subscriber = 1;
    alien.rows.push_back(row);
    const auto r = agg.offer(flow::encode_delta(alien));
    EXPECT_FALSE(r.accepted);
  }
  // Garbage bytes.
  EXPECT_FALSE(agg.offer(std::vector<std::uint8_t>{1, 2, 3}).accepted);

  EXPECT_EQ(agg.counters().rejected, 5U);
  EXPECT_EQ(agg.merged_through(), std::nullopt);  // nothing ever staged
  // And the legitimate delta still lands.
  EXPECT_TRUE(agg.offer(c0.seal_epoch(0)).accepted);
  EXPECT_EQ(agg.merged_through(), std::optional<util::HourBin>{0});
}

TEST(VantageAggregator, HeartbeatHealthTracksLag) {
  const TestScenario sc = make_scenario(2);
  AggregatorConfig acfg;
  acfg.detector = sc.config;
  acfg.stale_after = 3;
  Aggregator agg{sc.rules.hitlist, sc.rules, acfg};
  agg.add_collector(0, 0);
  agg.add_collector(1, 0);

  CollectorConfig c0cfg;
  c0cfg.detector = sc.config;
  Collector c0{sc.rules.hitlist, sc.rules, c0cfg};
  CollectorConfig c1cfg = c0cfg;
  c1cfg.id = 1;
  Collector c1{sc.rules.hitlist, sc.rules, c1cfg};

  // Collector 0 keeps sealing; collector 1 goes silent: after stale_after
  // epochs of lag its heartbeat health flips false, stalling no one (the
  // barrier just waits).
  std::vector<std::vector<std::uint8_t>> held;
  for (util::HourBin h = 0; h < 6; ++h) {
    EXPECT_TRUE(agg.offer(c0.seal_epoch(h)).accepted);
    held.push_back(c1.seal_epoch(h));  // sealed but never transmitted
  }
  EXPECT_TRUE(agg.healthy(0));
  EXPECT_FALSE(agg.healthy(1));
  EXPECT_EQ(agg.merged_through(), std::nullopt);  // barrier held the line

  for (const auto& bytes : held) EXPECT_TRUE(agg.offer(bytes).accepted);
  EXPECT_TRUE(agg.healthy(0));
  EXPECT_TRUE(agg.healthy(1));
  EXPECT_EQ(agg.merged_through(), std::optional<util::HourBin>{5});
}

TEST(VantageCollector, RetransmitsWithBoundedBackoffUntilAcked) {
  const TestScenario sc = make_scenario(4);
  CollectorConfig ccfg;
  ccfg.detector = sc.config;
  ccfg.initial_backoff = 1;
  ccfg.max_backoff = 4;
  Collector col{sc.rules.hitlist, sc.rules, ccfg};
  for (const Observation& obs : sc.stream[0]) col.ingest(obs);
  const auto original = col.seal_epoch(0);
  EXPECT_EQ(col.unacked(), 1U);

  // Backoff 1 → first retransmission on the second tick, then the gap
  // doubles (3 ticks, then 5) and clamps at the max_backoff of 4.
  std::vector<unsigned> due_ticks;
  for (unsigned tick = 1; tick <= 16; ++tick) {
    for (auto& bytes : col.tick()) {
      EXPECT_EQ(bytes, original);  // verbatim original datagram
      due_ticks.push_back(tick);
    }
  }
  EXPECT_EQ(due_ticks, (std::vector<unsigned>{2, 5, 10, 15}));
  EXPECT_EQ(col.retransmissions(), 4U);

  col.handle_ack(0);
  EXPECT_EQ(col.unacked(), 0U);
  EXPECT_EQ(col.acked_through(), std::optional<util::HourBin>{0});
  for (unsigned tick = 0; tick < 8; ++tick) {
    EXPECT_TRUE(col.tick().empty());
  }
}

// --- concurrency (the TSan workload for `ctest -L vantage`) ---

TEST(VantageConcurrency, ConcurrentOffersAndQueriesConvergeDeterministically) {
  const TestScenario sc = make_scenario(5);
  constexpr util::HourBin kEpochs = 24;

  // Pre-seal both collectors' deltas so the threads only touch the
  // aggregator.
  std::vector<std::vector<std::uint8_t>> d0;
  std::vector<std::vector<std::uint8_t>> d1;
  {
    CollectorConfig c0cfg;
    c0cfg.detector = sc.config;
    CollectorConfig c1cfg = c0cfg;
    c1cfg.id = 1;
    Collector c0{sc.rules.hitlist, sc.rules, c0cfg};
    Collector c1{sc.rules.hitlist, sc.rules, c1cfg};
    for (util::HourBin h = 0; h < kEpochs; ++h) {
      for (const Observation& obs : sc.stream[h]) {
        ((obs.subscriber % 2 == 0) ? c0 : c1).ingest(obs);
      }
      d0.push_back(c0.seal_epoch(h));
      d1.push_back(c1.seal_epoch(h));
    }
  }

  AggregatorConfig acfg;
  acfg.detector = sc.config;
  Aggregator sequential{sc.rules.hitlist, sc.rules, acfg};
  sequential.add_collector(0, 0);
  sequential.add_collector(1, 0);
  for (util::HourBin h = 0; h < kEpochs; ++h) {
    ASSERT_TRUE(sequential.offer(d0[h]).accepted);
    ASSERT_TRUE(sequential.offer(d1[h]).accepted);
  }

  obs::Observability observability;
  Aggregator concurrent{sc.rules.hitlist, sc.rules, acfg, &observability};
  concurrent.add_collector(0, 0);
  concurrent.add_collector(1, 0);
  std::thread t0{[&] {
    for (const auto& bytes : d0) EXPECT_TRUE(concurrent.offer(bytes).accepted);
  }};
  std::thread t1{[&] {
    for (const auto& bytes : d1) EXPECT_TRUE(concurrent.offer(bytes).accepted);
  }};
  std::thread reader{[&] {
    std::uint64_t sink = 0;
    for (int i = 0; i < 3000; ++i) {
      sink += concurrent.counters().offered;
      sink += concurrent.merged_through().value_or(0);
      sink += concurrent.healthy(0) ? 1 : 0;
      sink += concurrent.stats().flows;
      if (const auto ev = concurrent.evidence(1, 0)) sink += ev->packets();
    }
    EXPECT_GE(sink, 0U);
  }};
  t0.join();
  t1.join();
  reader.join();

  EXPECT_EQ(concurrent.merged_through(),
            std::optional<util::HourBin>{kEpochs - 1});
  EXPECT_EQ(snapshot(concurrent), snapshot(sequential));
  EXPECT_EQ(concurrent.stats().flows, sequential.stats().flows);
}

// --- scenario plumbing (parser keys + end-to-end runner) ---

TEST(VantageScenario, ParsesVantageAndDeltaChannelKeys) {
  std::istringstream text{R"(
vantage_collectors 6
delta_drop 0.1
delta_duplicate 0.05
delta_reorder 0.02
delta_truncate 0.01
delta_seed 99
ack_loss 0.2
vantage_kill_collector 2
vantage_kill_hour 8
vantage_restart_hour 16
)"};
  std::string err;
  const auto scenario = simnet::parse_scenario(text, &err);
  ASSERT_TRUE(scenario.has_value()) << err;
  EXPECT_EQ(scenario->vantage_collectors, 6U);
  EXPECT_EQ(scenario->ack_loss, 0.2);
  EXPECT_EQ(scenario->vantage_kill_collector, 2U);
  EXPECT_EQ(scenario->vantage_kill_hour, 8U);
  EXPECT_EQ(scenario->vantage_restart_hour, 16U);
  const auto impair = scenario->delta_impairment();
  ASSERT_TRUE(impair.has_value());
  EXPECT_EQ(impair->seed, 99U);
  EXPECT_EQ(impair->drop, 0.1);
  EXPECT_EQ(impair->duplicate, 0.05);
  EXPECT_EQ(impair->reorder, 0.02);
  EXPECT_EQ(impair->truncate, 0.01);

  // No delta_* keys → pristine channel; bad probability → parse error.
  std::istringstream plain{"vantage_collectors 2\n"};
  const auto bare = simnet::parse_scenario(plain);
  ASSERT_TRUE(bare.has_value());
  EXPECT_FALSE(bare->delta_impairment().has_value());
  std::istringstream bad{"delta_drop 1.5\n"};
  EXPECT_FALSE(simnet::parse_scenario(bad).has_value());
  std::istringstream zero{"vantage_collectors 0\n"};
  EXPECT_FALSE(simnet::parse_scenario(zero).has_value());
}

TEST(VantageScenario, EndToEndRunnerDrains) {
  std::istringstream text{R"(
lines 1500
seed 11
vantage_collectors 3
delta_drop 0.1
delta_duplicate 0.05
ack_loss 0.1
)"};
  const auto scenario = simnet::parse_scenario(text);
  ASSERT_TRUE(scenario.has_value());
  pipeline::VantageReplayConfig cfg;
  cfg.hours = 6;
  cfg.capture_observability = true;
  std::string err;
  const auto result = pipeline::replay_scenario_vantage(*scenario, cfg, &err);
  ASSERT_TRUE(result.has_value()) << err;
  EXPECT_TRUE(result->drained);
  EXPECT_EQ(result->merged_through, std::optional<util::HourBin>{5});
  EXPECT_GT(result->observations, 0U);
  EXPECT_GT(result->datagrams, 0U);
  EXPECT_GT(result->counters.epochs_sealed, 0U);
  EXPECT_NE(result->metrics_prometheus.find("vantage_epochs_sealed_total"),
            std::string::npos);
}

}  // namespace
}  // namespace haystack::vantage
