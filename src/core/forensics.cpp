#include "core/forensics.hpp"

#include <algorithm>
#include <map>

namespace haystack::core {

std::vector<ServicePrevalence> rank_common_services(
    const Detector& detector,
    const std::unordered_set<SubscriberKey>& suspicious) {
  std::map<ServiceId, std::size_t> suspicious_hits;
  std::map<ServiceId, std::size_t> baseline_hits;
  std::unordered_set<SubscriberKey> all_detected;
  std::unordered_set<SubscriberKey> suspicious_detected;

  detector.for_each_evidence([&](SubscriberKey subscriber, ServiceId service,
                                 const Evidence&) {
    if (!detector.detected(subscriber, service)) return;
    ++baseline_hits[service];
    all_detected.insert(subscriber);
    if (suspicious.contains(subscriber)) {
      ++suspicious_hits[service];
      suspicious_detected.insert(subscriber);
    }
  });

  std::vector<ServicePrevalence> ranking;
  const double n_suspicious =
      std::max<std::size_t>(1, suspicious_detected.size());
  const double n_all = std::max<std::size_t>(1, all_detected.size());
  for (const auto& [service, count] : suspicious_hits) {
    ServicePrevalence row;
    row.service = service;
    const auto* rule = detector.rules().rule_for(service);
    row.name = rule != nullptr ? rule->name : std::to_string(service);
    row.suspicious_count = count;
    row.suspicious_share = static_cast<double>(count) / n_suspicious;
    row.baseline_share =
        static_cast<double>(baseline_hits[service]) / n_all;
    row.lift = row.baseline_share > 0.0
                   ? row.suspicious_share / row.baseline_share
                   : 0.0;
    ranking.push_back(std::move(row));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const ServicePrevalence& a, const ServicePrevalence& b) {
              return a.lift > b.lift;
            });
  return ranking;
}

}  // namespace haystack::core
