// Epoch-swapped read views over shard state (ISSUE 8 tentpole).
//
// Every read API in this repo used to drain the pipeline — a quiescence
// barrier a production system serving live traffic cannot afford. This
// layer is the RCU-style alternative: each shard worker, at a wave
// boundary, clones its detection-relevant state into an immutable
// ShardView and publishes it into the ViewHub with one pointer swap
// (util::SharedSlot — chosen over std::atomic<shared_ptr>, whose GCC 12
// reader side is formally racy; see shared_slot.hpp). Readers grab the
// current view with one pointer copy — they never touch a queue, never
// take the coalescing mutex, and never wait on ingest; publication
// critical sections are a pointer move, so producers and readers only
// ever contend for nanoseconds.
//
// Consistency contract (the "published epoch"): a shard's chunks are
// applied in one total order by its single worker, and a view published
// at epoch E reflects exactly the first E chunks of that order — a
// prefix, never a torn mid-wave state (views are built between waves).
// A multi-shard snapshot is a vector of such prefixes, one per shard; a
// subscriber's evidence lives in exactly one shard, so every
// per-subscriber answer is prefix-consistent with the ingest order, and
// per-shard epochs are monotone (asserted by the serve property tests).
//
// Freshness is policy, not mechanism: views refresh when a publish token
// rides through the shard queue (ShardedDetector::fresh_view — covers
// everything enqueued before the request, the non-draining replacement
// for the old read barrier) or automatically every
// SnapshotPolicy::auto_publish_observations applied observations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/evidence_map.hpp"
#include "core/rule_version.hpp"
#include "util/shared_slot.hpp"

namespace haystack::core {

/// Publication policy for the epoch-swapped read views.
struct SnapshotPolicy {
  /// Republish a shard's view automatically once this many observations
  /// have been applied since its last publish; 0 publishes on demand only
  /// (publish tokens and rule cutovers still refresh).
  std::uint64_t auto_publish_observations = 0;
};

/// Throughput counters (mirrors Detector::Stats; duplicated here to keep
/// this header free of the full detector).
struct ViewStats {
  std::uint64_t flows = 0;
  std::uint64_t matched = 0;
};

/// One shard's immutable published view. Built by the shard worker at a
/// wave boundary, then never mutated — readers share it by shared_ptr.
struct ShardView {
  unsigned shard = 0;
  /// Chunks applied when published — the view is exactly this prefix of
  /// the shard's serial application order.
  std::uint64_t epoch = 0;
  std::uint64_t observations = 0;  ///< observations applied at publish
  /// Cumulative coverage-met transitions (new-detection alert basis).
  std::uint64_t satisfied = 0;
  std::uint64_t ruleset_version = 0;
  /// The compiled rules active when the view was published; every query
  /// against this view evaluates under exactly this version.
  std::shared_ptr<const CompiledRuleVersion> compiled;
  ViewStats stats{};  ///< includes boundary-filtered misses
  double observed_loss = 0.0;
  bool degraded = false;
  FlatEvidenceMap<Evidence> evidence;

  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const {
    return eval_detection_hour(evidence, *compiled, subscriber, service);
  }
  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const {
    return detection_hour(subscriber, service).has_value();
  }
  /// Verdict tagged with this view's ruleset_version.
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const {
    return eval_verdict(evidence, *compiled, observed_loss, subscriber,
                        service);
  }
  [[nodiscard]] const Evidence* evidence_row(SubscriberKey subscriber,
                                             ServiceId service) const {
    return evidence.find(subscriber, service);
  }
};

/// Per-shard publication cells. publish() is called only by the owning
/// shard's worker (one writer per cell); view()/views() are safe from any
/// number of reader threads concurrently with publication and never
/// block ingest. wait_epoch() parks a control-plane caller until a
/// shard's published epoch reaches a target (the fresh_view protocol).
class ViewHub {
 public:
  explicit ViewHub(unsigned shards);

  ViewHub(const ViewHub&) = delete;
  ViewHub& operator=(const ViewHub&) = delete;

  /// Current published view of one shard; never null after construction
  /// (an empty epoch-0 view is published at startup).
  [[nodiscard]] std::shared_ptr<const ShardView> view(unsigned shard) const;

  /// Current views of every shard, grabbed one pointer copy apiece. The
  /// vector is a snapshot-of-pointers: each element is prefix-consistent
  /// at its own published epoch.
  [[nodiscard]] std::vector<std::shared_ptr<const ShardView>> views() const;

  /// Publishes a new view for v->shard (owning worker only). Epochs must
  /// be monotone per shard; regressions are counted, dropped, and assert
  /// in the serve property tests.
  void publish(std::shared_ptr<const ShardView> v);

  /// Blocks until shard's published epoch >= `epoch`. Control-plane path
  /// only — never called from a shard worker (it would wait on itself).
  void wait_epoch(unsigned shard, std::uint64_t epoch) const;

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  /// Views ever published (all shards).
  [[nodiscard]] std::uint64_t publishes() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// Publish calls dropped for violating per-shard epoch monotonicity
  /// (always 0 unless the single-writer contract is broken).
  [[nodiscard]] std::uint64_t epoch_regressions() const noexcept {
    return regressions_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    util::SharedSlot<const ShardView> view;
  };

  unsigned shards_;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> regressions_{0};
  // wait_epoch parking (control-plane only; workers notify when waiters
  // are registered, same discipline as ShardPool::drain).
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::atomic<int> waiters_{0};
};

}  // namespace haystack::core
