// Streaming ingest pipeline (the paper's deployment shape).
//
// The scalability claim — "identify millions of IoT devices within
// minutes" from sampled NetFlow/IPFIX at a 15M-subscriber ISP (Sec. 6) —
// rests on sustained ingest throughput, so detection runs as a streaming
// service: concurrent stages connected by bounded queues with blocking
// backpressure, not a batch replay.
//
//   push_packet ──▶ [metering] ──┐            (FlowCache, router-side)
//   push_datagram ─▶ [decode] ───┼─▶ [normalize] ─▶ [detect × shards]
//   push_flows ──────────────────┘
//   push_observations ──────────────────────────▶ (straight to shards)
//
// Each bracketed stage is one worker thread over a BoundedQueue (the
// detect stage is the ShardedDetector's persistent per-shard pool); a
// full queue blocks the producer, so overload propagates back to the
// datagram source instead of growing memory. The decode stage speaks all
// three wire formats (NetFlow v5/v9, IPFIX), sniffed per datagram by the
// version word. drain() is a topological quiescence barrier; shutdown()
// closes intake, flushes the metering cache, and drains every stage in
// dependency order. Per-stage depth/throughput/stall counters surface as
// telemetry::StageStats.
//
// Determinism: datagrams decode in push order, flows normalize in decode
// order, and per-subscriber observation order is preserved through the
// shard queues — so the final evidence map is bit-for-bit identical to a
// synchronous replay (asserted by tests/differential_test.cpp for any
// shard count and queue capacity).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/sharded_detector.hpp"
#include "flow/flow_batch.hpp"
#include "flow/flow_cache.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v5.hpp"
#include "flow/netflow_v9.hpp"
#include "obs/observability.hpp"
#include "pipeline/shard_pool.hpp"
#include "serve/control.hpp"

namespace haystack::pipeline {

/// Maps a decoded flow record to a direction-normalized observation;
/// nullopt drops the flow from analysis (e.g. no server-looking side).
using Normalizer = std::function<std::optional<core::Observation>(
    const flow::FlowRecord&, util::HourBin)>;

/// Canonical-orientation normalizer: flows arrive subscriber→server (the
/// repo's generators and any pre-normalized feed); the subscriber address
/// is anonymized with a keyed hash before it becomes the evidence key.
[[nodiscard]] Normalizer default_normalizer(std::uint64_t anonymization_key);

struct IngestConfig {
  unsigned shards = 4;
  /// Per-stage queue capacity, in items (datagrams / flow batches /
  /// observation chunks respectively).
  std::size_t queue_capacity = 1024;
  /// Adaptive-batching bound per consumer wake-up.
  std::size_t max_wave = 64;
  core::DetectorConfig detector{};
  /// Metering stage (packet intake) flow cache.
  flow::FlowCacheConfig metering{};
  /// Decode-stage duplicate-suppression window (datagrams per source).
  std::size_t dedup_window = 64;
  /// Key for default_normalizer when no normalizer is supplied.
  std::uint64_t anonymization_key = 0x68617973;  // "hays"
  /// Observability sink (ISSUE 5). When null, the pipeline owns a private
  /// obs::Observability — tests stay hermetic; a daemon embedding several
  /// pipelines passes one shared instance (e.g. &obs::Observability::
  /// global()) so a single scrape covers them all.
  obs::Observability* obs = nullptr;
  /// Stage-wave duration above which a kSlowWave flight event is recorded;
  /// 0 disables (the default keeps fault dumps free of timing noise).
  std::uint64_t slow_wave_ns = 0;
  /// Read-view publication policy (ISSUE 8): how often shard workers
  /// republish live views on their own (fresh snapshots and reload
  /// cutovers always refresh). 0 = on demand only.
  core::SnapshotPolicy snapshots{};
  /// Alerting thresholds for the serve-layer control plane.
  serve::AlertConfig alerts{};
};

/// The streaming service. One instance owns all stage threads.
class IngestPipeline {
 public:
  IngestPipeline(const core::Hitlist& hitlist, const core::RuleSet& rules,
                 const IngestConfig& config, Normalizer normalizer = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Raw export datagram (NetFlow v5/v9 or IPFIX, sniffed by version).
  /// Blocks when the decode queue is full. False after shutdown().
  bool push_datagram(std::vector<std::uint8_t> bytes, util::HourBin hour);

  /// Router-side packet intake: metered through the FlowCache into flow
  /// records (active/idle/emergency expiry), then normalized and
  /// detected. False after shutdown().
  bool push_packet(const flow::PacketEvent& packet, util::HourBin hour);

  /// Already-decoded flow records (enter at the normalize stage).
  bool push_flows(std::vector<flow::FlowRecord> flows, util::HourBin hour);

  /// Already-normalized observations (enter at the detect stage).
  bool push_observations(std::vector<core::Observation> chunk);

  /// Topological quiescence barrier: once it returns, every input pushed
  /// before the call has flowed through all stages into the evidence map.
  /// The metering cache keeps its resident (unexpired) flows.
  void drain();

  /// Drain-then-stop: refuses new input, flushes the metering cache,
  /// drains and joins every stage in dependency order. Idempotent; the
  /// detector stays readable afterwards.
  void shutdown();

  /// The detect stage. Reads are safe any time — they are served from
  /// epoch-published views covering everything already at the detect
  /// stage (ISSUE 8); call drain() first when upstream stages must be
  /// settled too.
  [[nodiscard]] core::ShardedDetector& detector() noexcept {
    return detector_;
  }
  [[nodiscard]] const core::ShardedDetector& detector() const noexcept {
    return detector_;
  }

  /// The live control plane (ISSUE 8): wait-free snapshots, fresh
  /// (token-refreshed) snapshots, versioned rule hot-reload, and
  /// threshold alerting — all safe under full ingest.
  [[nodiscard]] serve::ControlPlane& control() noexcept { return *control_; }
  [[nodiscard]] const serve::ControlPlane& control() const noexcept {
    return *control_;
  }

  /// Thin facade over the metric registry (ISSUE 5): every counter below
  /// reads the registry series of the same quantity, so this struct and a
  /// scrape can never disagree.
  struct Stats {
    telemetry::StageStats metering;   ///< packet queue
    telemetry::StageStats decode;     ///< datagram queue
    telemetry::StageStats normalize;  ///< flow-batch queue
    telemetry::StageStats detect;     ///< all shard queues aggregated
    std::vector<telemetry::StageStats> detect_shards;
    std::uint64_t datagrams = 0;           ///< accepted by push_datagram
    std::uint64_t malformed_datagrams = 0; ///< rejected by the codecs
    std::uint64_t unknown_version = 0;     ///< unsniffable version word
    std::uint64_t packets_metered = 0;     ///< accepted by push_packet
    std::uint64_t metered_flows = 0;       ///< records the cache expired
    std::uint64_t metered_packets_out = 0; ///< packet conservation check
    std::uint64_t flows_decoded = 0;       ///< records out of the codecs
    std::uint64_t flows_in = 0;            ///< accepted by push_flows
    std::uint64_t observations = 0;        ///< entered the detect stage
    std::uint64_t observations_direct = 0; ///< via push_observations
    std::uint64_t dropped_direction = 0;   ///< normalizer returned nullopt
    std::uint64_t emergency_expiries = 0;  ///< metering cache panics
    std::uint64_t self_check_failures = 0; ///< conservation violations
    std::size_t metering_depth = 0;        ///< resident cache flows
    std::size_t metering_high_water = 0;   ///< max resident cache flows
    /// Decode-stage template-recovery telemetry (nf9 + IPFIX summed),
    /// exact after drain(): records decoded out of parked flowsets/sets,
    /// and flowsets/sets ever parked awaiting a template.
    std::uint64_t decode_recovered_records = 0;
    std::uint64_t decode_parked_flowsets = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// The pipeline's observability bundle (its own, or the one injected via
  /// IngestConfig::obs): scrape `observability().registry`, dump
  /// `observability().recorder`.
  [[nodiscard]] obs::Observability& observability() noexcept { return *obs_; }
  [[nodiscard]] const obs::Observability& observability() const noexcept {
    return *obs_;
  }

  /// Conservation self-check (ISSUE 5). Call after drain(): verifies that
  /// every flow that entered any intake left through exactly one of
  /// {observation, direction-drop}, and — once shutdown() has flushed the
  /// metering cache — that metered packets are conserved through the
  /// cache. A violation bumps pipeline_self_check_failures_total, records
  /// a kSelfCheckFailed flight event, and is returned with a reason.
  struct SelfCheck {
    bool ok = true;
    std::string detail;  ///< empty when ok
  };
  SelfCheck self_check();

 private:
  struct MeterItem {
    util::HourBin hour = 0;
    flow::PacketEvent packet;
  };
  struct Datagram {
    util::HourBin hour = 0;
    std::vector<std::uint8_t> bytes;
  };
  /// Normalize-queue item (ISSUE 6): an arena-leased SoA batch. The lease
  /// is released (batch returns to arena_'s pool) when the item is
  /// consumed, so rows never outlive a wave.
  struct DecodedBatch {
    util::HourBin hour = 0;
    flow::BatchArena::Lease rows;
  };

  void meter_wave(std::vector<MeterItem>& wave);
  void decode_wave(std::vector<Datagram>& wave);
  void normalize_wave(std::vector<DecodedBatch>& wave);
  void emit_metered(flow::BatchArena::Lease rows, util::HourBin hour);

  IngestConfig config_;
  /// True when running the stock normalizer: normalize reads SoA columns
  /// straight into interned observations, never materializing FlowRecord
  /// or core::Observation. Must be declared before normalizer_ (it is
  /// initialized from the constructor parameter before the move).
  bool fast_normalize_ = false;
  Normalizer normalizer_;

  // Observability must precede detector_: the member-init-list hands obs_
  // to the ShardedDetector (and the stage pools) at construction.
  std::unique_ptr<obs::Observability> owned_obs_;
  obs::Observability* obs_;  // never null
  struct StageInstruments {
    std::shared_ptr<obs::Histogram> wave_ns;
    std::shared_ptr<obs::Histogram> wave_items;
  };
  StageInstruments meter_obs_;
  StageInstruments decode_obs_;
  StageInstruments normalize_obs_;

  // Wave-batch arena. Declared before every stage pool (and the scratch
  // lease below) so leases held in queue items or stage state are
  // destroyed before the arena — the lifetime contract of
  // flow::BatchArena (DESIGN.md §9).
  flow::BatchArena arena_;

  // Declaration order is reverse-topological so default destruction (after
  // shutdown()) tears down consumers last-to-first.
  /// Declared before detector_ so it is destroyed after it: shard
  /// workers may invoke the alert publish hook until the detector joins
  /// them. Constructed (in the ctor body) right after detector_.
  std::unique_ptr<serve::ControlPlane> control_;
  core::ShardedDetector detector_;
  std::unique_ptr<ShardPool<DecodedBatch>> normalize_;
  std::unique_ptr<ShardPool<Datagram>> decode_;
  std::unique_ptr<ShardPool<MeterItem>> metering_;

  // Decode-stage codec state (touched only by the decode worker).
  flow::nf9::Collector nf9_;
  flow::ipfix::Collector ipfix_;
  flow::nf5::Collector nf5_;

  // Metering-stage state (touched only by the metering worker, except the
  // post-stop flush in shutdown()). meter_rows_ is the lazily-acquired
  // scratch lease expired flows accumulate into between emissions.
  flow::FlowCache cache_;
  flow::BatchArena::Lease meter_rows_;
  std::atomic<std::uint32_t> last_meter_hour_{0};
  std::uint64_t last_emergency_expiries_ = 0;  // metering worker only

  std::atomic<bool> closed_{false};
  bool shutdown_done_ = false;

  // Registry-backed counters (ISSUE 5): these *are* the pipeline's
  // throughput state — the Stats facade and the exporters read the same
  // atomics. Handles are resolved once at construction; the hot path is
  // one relaxed fetch_add, same as the ad-hoc atomics they replaced.
  std::shared_ptr<obs::Counter> datagrams_;
  std::shared_ptr<obs::Counter> malformed_;
  std::shared_ptr<obs::Counter> unknown_version_;
  std::shared_ptr<obs::Counter> packets_metered_;
  std::shared_ptr<obs::Counter> metered_flows_;
  std::shared_ptr<obs::Counter> metered_packets_out_;
  std::shared_ptr<obs::Counter> flows_decoded_;
  std::shared_ptr<obs::Counter> flows_in_;
  std::shared_ptr<obs::Counter> observations_;
  std::shared_ptr<obs::Counter> observations_direct_;
  std::shared_ptr<obs::Counter> dropped_direction_;
  std::shared_ptr<obs::Counter> emergency_expiries_;
  std::shared_ptr<obs::Counter> self_check_failures_;
  std::shared_ptr<obs::Gauge> cache_depth_;
  std::shared_ptr<obs::Gauge> cache_high_water_;
  /// ISSUE 6 series: per-wave batch-decode cost and template-recovery
  /// snapshots (set by the decode worker, read by scrapes and stats()).
  std::shared_ptr<obs::Histogram> decode_ns_per_record_;
  std::shared_ptr<obs::Gauge> decode_recovered_;
  std::shared_ptr<obs::Gauge> decode_parked_;
};

}  // namespace haystack::pipeline
