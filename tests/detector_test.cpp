// Unit tests for the streaming detector: threshold arithmetic, evidence
// accumulation, the critical-domain shortcut, the detection hierarchy, and
// the usage classifier.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/usage.hpp"

namespace haystack::core {
namespace {

// Builds a small rule universe:
//   service 0 "Platform"  — 1 domain, no parent
//   service 1 "Vendor"    — 5 domains, parent Platform
//   service 2 "Gadget"    — 10 domains, parent Vendor
//   service 3 "Firmware"  — 14 domains, critical-sufficient at position 2
class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest() {
    auto add_rule = [this](ServiceId id, std::string name, unsigned n,
                           std::optional<ServiceId> parent,
                           std::optional<std::uint16_t> critical,
                           bool critical_sufficient) {
      DetectionRule rule;
      rule.service = id;
      rule.name = std::move(name);
      rule.level = Level::kManufacturer;
      rule.monitored_domains = n;
      for (std::uint16_t i = 0; i < n; ++i) {
        rule.monitored_indices.push_back(i);
      }
      rule.parent = parent;
      rule.critical_monitored_index = critical;
      rule.critical_sufficient = critical_sufficient;
      rules_.rules.push_back(std::move(rule));
    };
    add_rule(0, "Platform", 1, std::nullopt, 0, false);
    add_rule(1, "Vendor", 5, 0, std::nullopt, false);
    add_rule(2, "Gadget", 10, 1, std::nullopt, false);
    add_rule(3, "Firmware", 14, std::nullopt, 2, true);

    // Hitlist: service s, domain m lives at IP 10.s.0.m port 443, all days.
    for (const auto& rule : rules_.rules) {
      for (std::uint16_t m = 0; m < rule.monitored_domains; ++m) {
        for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
          rules_.hitlist.add(ip_of(rule.service, m), 443, day,
                             {rule.service, m});
        }
      }
    }
  }

  static net::IpAddress ip_of(ServiceId s, std::uint16_t m) {
    return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
  }

  RuleSet rules_;
};

TEST_F(DetectorTest, SingleDomainServiceDetectsOnFirstFlow) {
  Detector det{rules_.hitlist, rules_, {.threshold = 0.4}};
  EXPECT_FALSE(det.detected(1, 0));
  const auto hit = det.observe(1, ip_of(0, 0), 443, 3, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->service, 0);
  EXPECT_EQ(det.detection_hour(1, 0), 5u);
}

TEST_F(DetectorTest, UnknownServerIpIsIgnored) {
  Detector det{rules_.hitlist, rules_, {}};
  EXPECT_FALSE(
      det.observe(1, *net::IpAddress::parse("9.9.9.9"), 443, 1, 0)
          .has_value());
  EXPECT_EQ(det.stats().flows, 1u);
  EXPECT_EQ(det.stats().matched, 0u);
}

TEST_F(DetectorTest, PortMustMatch) {
  Detector det{rules_.hitlist, rules_, {}};
  EXPECT_FALSE(det.observe(1, ip_of(0, 0), 80, 1, 0).has_value());
}

TEST_F(DetectorTest, ThresholdGatesDetection) {
  // Vendor: 5 domains, D=0.4 -> requires 2 distinct domains; repeated
  // flows to one domain must not satisfy it.
  Detector det{rules_.hitlist, rules_, {.threshold = 0.4}};
  // Parent platform first so hierarchy does not mask the assertion.
  det.observe(1, ip_of(0, 0), 443, 1, 0);
  for (int i = 0; i < 10; ++i) det.observe(1, ip_of(1, 0), 443, 1, 1);
  EXPECT_FALSE(det.detected(1, 1));
  det.observe(1, ip_of(1, 3), 443, 1, 7);
  EXPECT_EQ(det.detection_hour(1, 1), 7u);
}

TEST_F(DetectorTest, HierarchyRequiresAncestors) {
  // Gadget (10 domains, D=0.4 -> 4) satisfied, but Vendor/Platform not:
  // detection must be withheld until the whole chain is satisfied.
  Detector det{rules_.hitlist, rules_, {.threshold = 0.4}};
  for (std::uint16_t m = 0; m < 4; ++m) {
    det.observe(7, ip_of(2, m), 443, 1, 2);
  }
  EXPECT_FALSE(det.detected(7, 2));
  det.observe(7, ip_of(1, 0), 443, 1, 3);
  det.observe(7, ip_of(1, 1), 443, 1, 4);
  EXPECT_FALSE(det.detected(7, 2));  // platform still missing
  det.observe(7, ip_of(0, 0), 443, 1, 9);
  // Detection hour is when the *last* of the chain was satisfied — for
  // both Gadget and Vendor that is the platform's hour.
  EXPECT_EQ(det.detection_hour(7, 2), 9u);
  EXPECT_EQ(det.detection_hour(7, 1), 9u);
}

TEST_F(DetectorTest, CriticalDomainAloneSuffices) {
  // Firmware: 14 domains, D=0.4 would need 5, but seeing the critical
  // domain (position 2) alone is sufficient (the Samsung rule).
  Detector det{rules_.hitlist, rules_, {.threshold = 0.4}};
  det.observe(9, ip_of(3, 2), 443, 1, 11);
  EXPECT_EQ(det.detection_hour(9, 3), 11u);
}

TEST_F(DetectorTest, NonCriticalSingleDomainDoesNotSuffice) {
  Detector det{rules_.hitlist, rules_, {.threshold = 0.4}};
  det.observe(9, ip_of(3, 1), 443, 1, 11);
  EXPECT_FALSE(det.detected(9, 3));
}

TEST_F(DetectorTest, SubscribersAreIndependent) {
  Detector det{rules_.hitlist, rules_, {}};
  det.observe(1, ip_of(0, 0), 443, 1, 0);
  EXPECT_TRUE(det.detected(1, 0));
  EXPECT_FALSE(det.detected(2, 0));
}

TEST_F(DetectorTest, EvidenceAccumulatesPackets) {
  Detector det{rules_.hitlist, rules_, {}};
  det.observe(1, ip_of(1, 0), 443, 5, 0);
  det.observe(1, ip_of(1, 1), 443, 7, 1);
  const Evidence* ev = det.evidence(1, 1);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->packets(), 12u);
  EXPECT_EQ(ev->distinct(), 2u);
  EXPECT_EQ(ev->first_seen(), 0u);
  EXPECT_TRUE(ev->sees(0));
  EXPECT_TRUE(ev->sees(1));
  EXPECT_FALSE(ev->sees(2));
}

TEST_F(DetectorTest, ClearResetsEvidence) {
  Detector det{rules_.hitlist, rules_, {}};
  det.observe(1, ip_of(0, 0), 443, 1, 0);
  det.clear();
  EXPECT_FALSE(det.detected(1, 0));
}

TEST_F(DetectorTest, ForEachEvidenceEnumerates) {
  Detector det{rules_.hitlist, rules_, {}};
  det.observe(1, ip_of(0, 0), 443, 1, 0);
  det.observe(2, ip_of(1, 0), 443, 1, 0);
  std::size_t count = 0;
  det.for_each_evidence(
      [&](SubscriberKey, ServiceId, const Evidence&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST_F(DetectorTest, ThresholdOneRequiresAllDomains) {
  Detector det{rules_.hitlist, rules_, {.threshold = 1.0}};
  det.observe(5, ip_of(0, 0), 443, 1, 0);  // platform
  for (std::uint16_t m = 0; m + 1 < 5; ++m) {
    det.observe(5, ip_of(1, m), 443, 1, m);
  }
  EXPECT_FALSE(det.detected(5, 1));
  det.observe(5, ip_of(1, 4), 443, 1, 20);
  EXPECT_EQ(det.detection_hour(5, 1), 20u);
}

TEST(UsageTest, ThresholdSeparatesActiveFromIdle) {
  UsageClassifier usage{{.packet_threshold = 10}};
  usage.observe(1, 0, 6);
  usage.observe(1, 0, 5);   // total 11 > 10 -> active
  usage.observe(2, 0, 10);  // exactly the threshold -> idle
  usage.observe(3, 1, 50);
  auto active = usage.end_hour();
  std::sort(active.begin(), active.end(),
            [](const auto& a, const auto& b) {
              return a.subscriber < b.subscriber;
            });
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].subscriber, 1u);
  EXPECT_EQ(active[0].packets, 11u);
  EXPECT_EQ(active[1].subscriber, 3u);
  // The accumulator resets per hour.
  EXPECT_TRUE(usage.end_hour().empty());
}

}  // namespace
}  // namespace haystack::core
