// Paper-scale study benchmark (ISSUE 9): runs the wild-ISP detection
// study at the paper's real population sizes (up to its 15 M subscriber
// lines) and reports the scaling metrics EXPERIMENTS.md tracks — peak
// RSS, sustained flows/sec, evidence footprint, and time-to-detection —
// as one JSON object on stdout.
//
// One population size per process, so getrusage() peak RSS is
// attributable to that size:
//
//   HAYSTACK_LINES=15000000 ./scale_bench > row.json
//
// Knobs (all env):
//   HAYSTACK_LINES        population size     (default 1000000)
//   HAYSTACK_SCALE_HOURS  study length, hours (default 336 = two weeks)
//   HAYSTACK_SEED         simulation seed     (default 42)
//
// bench/scale_gate.sh wraps this binary, gates flows/sec and peak RSS
// against the committed BENCH_scale.json, and (BENCH_UPDATE=1) rewrites
// the baseline rows.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "common.hpp"

namespace {

using namespace haystack;

std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main() {
  const auto hours =
      static_cast<util::HourBin>(bench::env_u64("HAYSTACK_SCALE_HOURS", 336));
  // SimWorld reads HAYSTACK_LINES itself; the figure benches default to
  // 80 000 lines, but the scale tier's floor is a paper-shaped 1 M.
  setenv("HAYSTACK_LINES", "1000000", /*overwrite=*/0);

  const auto t_build0 = std::chrono::steady_clock::now();
  bench::SimWorld world;
  const auto t_build1 = std::chrono::steady_clock::now();

  // One cumulative detector for the whole study, exactly as the paper's
  // deployment accretes evidence over its observation window — this is
  // what makes the evidence-map footprint a scaling metric rather than a
  // per-bin transient.
  core::Detector detector{world.rules().hitlist, world.rules(),
                          {.threshold = 0.4}};

  std::uint64_t flows = 0;
  const auto t_run0 = std::chrono::steady_clock::now();
  for (util::HourBin h = 0; h < hours; ++h) {
    world.wild().hour_observations(h, [&](const simnet::WildObs& o) {
      detector.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                       o.flow.packets, h);
      ++flows;
    });
  }
  const auto t_run1 = std::chrono::steady_clock::now();

  std::vector<std::uint32_t> ttd;
  std::unordered_set<core::SubscriberKey> detected;
  detector.for_each_evidence([&](core::SubscriberKey s, core::ServiceId,
                                 const core::Evidence& ev) {
    if (!ev.satisfied()) return;
    ttd.push_back(ev.satisfied_hour() - ev.first_seen());
    detected.insert(s);
  });
  std::uint32_t median_ttd = 0;
  if (!ttd.empty()) {
    const auto mid = ttd.begin() + static_cast<std::ptrdiff_t>(ttd.size() / 2);
    std::nth_element(ttd.begin(), mid, ttd.end());
    median_ttd = *mid;
  }

  const double build_sec = seconds_between(t_build0, t_build1);
  const double run_sec = seconds_between(t_run0, t_run1);
  const double flows_per_sec =
      run_sec > 0.0 ? static_cast<double>(flows) / run_sec : 0.0;

  std::printf("{\n");
  std::printf("  \"schema\": \"haystack-scale-bench-v1\",\n");
  std::printf("  \"lines\": %llu,\n",
              static_cast<unsigned long long>(world.lines()));
  std::printf("  \"hours\": %llu,\n", static_cast<unsigned long long>(hours));
  std::printf("  \"flows\": %llu,\n", static_cast<unsigned long long>(flows));
  std::printf("  \"build_sec\": %.3f,\n", build_sec);
  std::printf("  \"run_sec\": %.3f,\n", run_sec);
  std::printf("  \"flows_per_sec\": %.1f,\n", flows_per_sec);
  std::printf("  \"peak_rss_bytes\": %llu,\n",
              static_cast<unsigned long long>(peak_rss_bytes()));
  std::printf("  \"population_bytes\": %llu,\n",
              static_cast<unsigned long long>(
                  world.population().memory_bytes()));
  std::printf("  \"evidence_entries\": %llu,\n",
              static_cast<unsigned long long>(detector.evidence_map().size()));
  std::printf("  \"evidence_bytes\": %llu,\n",
              static_cast<unsigned long long>(
                  detector.evidence_map().memory_bytes()));
  std::printf("  \"satisfied_pairs\": %llu,\n",
              static_cast<unsigned long long>(ttd.size()));
  std::printf("  \"detected_lines\": %llu,\n",
              static_cast<unsigned long long>(detected.size()));
  std::printf("  \"median_ttd_hours\": %llu\n",
              static_cast<unsigned long long>(median_ttd));
  std::printf("}\n");
  return 0;
}
