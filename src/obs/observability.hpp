// Bundle of the two observability primitives a component needs wired in:
// the metric registry (numbers) and the flight recorder (events). The
// pipeline owns one Observability per instance by default so tests stay
// hermetic; long-lived daemons can share Observability::global().
#pragma once

#include <cstdint>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace haystack::obs {

/// Stage tags used as the `source` of pipeline-stage flight events
/// (kBackpressureStall, kSlowWave) and as the {"stage", ...} label text.
enum StageTag : std::uint32_t {
  kStageMeter = 1,
  kStageDecode = 2,
  kStageNormalize = 3,
  kStageDetect = 4,
};

[[nodiscard]] constexpr const char* stage_name(std::uint32_t tag) noexcept {
  switch (tag) {
    case kStageMeter: return "meter";
    case kStageDecode: return "decode";
    case kStageNormalize: return "normalize";
    case kStageDetect: return "detect";
    default: return "unknown";
  }
}

struct Observability {
  MetricRegistry registry;
  FlightRecorder recorder{1024};

  /// Process-wide instance (leaked, never destroyed — safe to touch from
  /// static teardown paths).
  static Observability& global() {
    static Observability* g = new Observability();
    return *g;
  }
};

}  // namespace haystack::obs
