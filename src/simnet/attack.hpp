// Botnet attack scenario (paper Sec. 7.2 / the Mirai motivation).
//
// Infects a fraction of the lines owning one product with attack tooling;
// during the attack window those lines flood a victim address. The ISP
// sees the flood in the same sampled NetFlow as everything else. The
// incident-response loop (examples/incident_response.cpp) then uses the
// detection evidence to find the device common to the attacking lines.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flow/record.hpp"
#include "simnet/population.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// Attack scenario tunables.
struct AttackConfig {
  std::uint64_t seed = 666;
  /// Product whose firmware is compromised.
  std::string product_name = "Wansview Cam";
  /// Fraction of owning lines that are actually infected.
  double infection_rate = 0.7;
  /// Flood target.
  net::IpAddress victim = net::IpAddress::v4(0xC6336401);  // 198.51.100.1
  std::uint16_t victim_port = 80;
  /// Unsampled attack packets per infected line per hour.
  double attack_pkts_per_hour = 50'000.0;
  /// ISP packet-sampling interval.
  std::uint32_t sampling = 1000;
};

/// One sampled attack-flow observation.
struct AttackObs {
  LineId line = 0;
  net::IpAddress subscriber;
  flow::FlowRecord flow;
};

/// The compromised-device fleet.
class BotnetSim {
 public:
  BotnetSim(const Population& population, const AttackConfig& config);

  /// Lines participating in the attack.
  [[nodiscard]] const std::vector<LineId>& infected() const noexcept {
    return infected_;
  }

  /// Emits the sampled attack observations for one hour.
  void hour_attack_observations(
      util::HourBin hour,
      const std::function<void(const AttackObs&)>& sink) const;

  [[nodiscard]] const AttackConfig& config() const noexcept {
    return config_;
  }

 private:
  const Population& population_;
  AttackConfig config_;
  std::vector<LineId> infected_;
};

}  // namespace haystack::simnet
