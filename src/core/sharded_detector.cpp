#include "core/sharded_detector.hpp"

#include <algorithm>
#include <utility>

namespace haystack::core {

ShardedDetector::ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                                 const DetectorConfig& config,
                                 unsigned shards,
                                 std::size_t queue_capacity,
                                 obs::Observability* obs,
                                 SnapshotPolicy snapshots)
    : policy_{snapshots}, hub_{std::max(1U, shards)} {
  const unsigned n = hub_.shards();
  // Compile version 1: the boundary signature index, the rule-name intern
  // table, and the per-service dispatch tables, shared by every shard.
  auto v1 = compile_rules(hitlist, rules, config, /*id=*/1, nullptr,
                          /*build_index=*/true, &intern_);
  version_.store(v1);
  if (obs != nullptr) {
    sig_lookups_ = obs->registry.counter("signature_lookups_total");
    sig_hits_ = obs->registry.counter("signature_hits_total");
    publishes_ = obs->registry.counter("view_publishes_total");
    reloads_ = obs->registry.counter("ruleset_reloads_total");
    version_gauge_ = obs->registry.gauge("ruleset_version");
    version_gauge_->set(1);
    obs->registry.gauge("intern_table_size")
        ->set(static_cast<std::int64_t>(intern_.size()));
    obs->registry.gauge("signature_endpoints")
        ->set(static_cast<std::int64_t>(v1->index->endpoint_count()));
  }

  missed_ = std::make_unique<PaddedCount[]>(n);
  pending_.resize(n);
  submitted_.assign(n, 0);
  work_.resize(n);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Detector>(v1));
    work_[s].active = v1;
    if (obs != nullptr) {
      // Per-shard counter/gauge series so hot increments never share a
      // cache line across shards; the time-to-detection histogram is one
      // series (detection transitions are rare).
      const obs::Labels shard_labels{{"shard", std::to_string(s)}};
      DetectorInstruments inst;
      inst.flows = obs->registry.counter("detector_flows_total", shard_labels);
      inst.matched =
          obs->registry.counter("detector_matched_total", shard_labels);
      inst.rules_satisfied =
          obs->registry.counter("detector_rules_satisfied_total", shard_labels);
      inst.evidence_entries =
          obs->registry.gauge("detector_evidence_entries", shard_labels);
      inst.evidence_bytes =
          obs->registry.gauge("detector_evidence_bytes", shard_labels);
      inst.time_to_detection_hours =
          obs->registry.histogram("detector_time_to_detection_hours");
      inst.recorder = &obs->recorder;
      inst.source = s;
      shards_.back()->set_instruments(std::move(inst));
    }
  }
  // Seed the hub with real (empty, epoch-0, version-1) views before any
  // chunk can flow, so live_view() is never version-less.
  for (unsigned s = 0; s < n; ++s) {
    auto v = std::make_shared<ShardView>();
    v->shard = s;
    v->ruleset_version = v1->id;
    v->compiled = v1;
    hub_.publish(std::move(v));
  }
  // Persistent workers: one long-lived thread per shard, consuming that
  // shard's chunk queue. The handler runs on worker s and touches only
  // shards_[s] / work_[s], so the hot path stays lock-free on evidence
  // state.
  pipeline::ShardPoolConfig pool_config{.shards = n,
                                        .queue_capacity = queue_capacity,
                                        .max_wave = 64};
  if (obs != nullptr) {
    // One wave-span series per shard: wave records happen on every worker
    // wake-up, so a single shared histogram would put all workers on the
    // same atomic cache lines — measured at >15% streaming-bench overhead
    // at 8 shards versus ~1% with per-shard series.
    detect_wave_ns_.reserve(n);
    detect_wave_items_.reserve(n);
    pool_config.wave_ns_by_shard.reserve(n);
    pool_config.wave_items_by_shard.reserve(n);
    for (unsigned s = 0; s < n; ++s) {
      const obs::Labels stage{{"shard", std::to_string(s)},
                              {"stage", obs::stage_name(obs::kStageDetect)}};
      detect_wave_ns_.push_back(
          obs->registry.histogram("stage_wave_ns", stage));
      detect_wave_items_.push_back(
          obs->registry.histogram("stage_wave_items", stage));
      pool_config.wave_ns_by_shard.push_back(detect_wave_ns_.back().get());
      pool_config.wave_items_by_shard.push_back(
          detect_wave_items_.back().get());
    }
    pool_config.recorder = &obs->recorder;
    pool_config.stage_tag = obs::kStageDetect;
  }
  pool_ = std::make_unique<pipeline::ShardPool<Chunk>>(
      pool_config, [this](unsigned s, std::vector<Chunk>& wave) {
        handle_wave(s, wave);
      });
}

ShardedDetector::~ShardedDetector() {
  flush_pending();
  pool_->stop();
}

void ShardedDetector::handle_wave(unsigned s, std::vector<Chunk>& wave) {
  Detector& det = *shards_[s];
  WorkState& ws = work_[s];
  std::uint64_t flows = 0;
  std::uint64_t matched = 0;
  bool publish_due = false;
  // Evidence slots for distinct subscribers are effectively random lines
  // in a table far larger than cache, so the apply loop is
  // memory-latency-bound; prefetching a few items ahead overlaps those
  // misses.
  constexpr std::size_t kAhead = 8;
  for (const Chunk& chunk : wave) {
    // Version cutover: every chunk is applied under exactly the version
    // it was tagged with at submit time. Tagging happens under the same
    // mutex reload_rules swaps under, so per-shard tags are monotone;
    // the regression counter proves it in the serve soak.
    if (chunk.version != ws.active) {
      if (chunk.version->id > ws.active->id) {
        det.adopt_version(chunk.version);
        ws.active = chunk.version;
        publish_due = true;  // snapshots must see the new version promptly
      } else if (chunk.version->id < ws.active->id) {
        cutover_regressions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    flows += chunk.items.size();
    const std::size_t count = chunk.items.size();
    for (std::size_t i = 0; i < count; ++i) {
      if (i + kAhead < count) {
        const InternedObs& ahead = chunk.items[i + kAhead];
        det.prefetch_evidence(ahead.subscriber, ahead.sig);
      }
      const InternedObs& o = chunk.items[i];
      matched += det.observe_interned_uncounted(o.subscriber, o.sig,
                                                o.packets, o.hour)
                     ? 1U
                     : 0U;
    }
    ++ws.applied_chunks;
    ws.applied_obs += count;
    ws.obs_since_publish += count;
    if (chunk.publish) publish_due = true;
  }
  det.add_observation_counts(flows, matched);
  if (publish_due ||
      (policy_.auto_publish_observations > 0 &&
       ws.obs_since_publish >= policy_.auto_publish_observations)) {
    publish_view(s, ws);
  }
}

void ShardedDetector::publish_view(unsigned s, WorkState& ws) {
  const Detector& det = *shards_[s];
  auto v = std::make_shared<ShardView>();
  v->shard = s;
  v->epoch = ws.applied_chunks;
  v->observations = ws.applied_obs;
  v->satisfied = det.satisfied_total();
  v->ruleset_version = ws.active->id;
  v->compiled = ws.active;
  v->stats.flows =
      det.stats().flows + missed_[s].v.load(std::memory_order_relaxed);
  v->stats.matched = det.stats().matched;
  v->observed_loss = det.observed_loss();
  v->degraded = det.degraded();
  v->evidence = det.evidence_map();  // slot-order-preserving copy
  ws.obs_since_publish = 0;
  const std::shared_ptr<const ShardView> prev = hub_.view(s);
  const std::shared_ptr<const ShardView> now = std::move(v);
  hub_.publish(now);
  if (publishes_) publishes_->add(1);
  if (publish_hook_) publish_hook_(prev.get(), *now);
}

void ShardedDetector::submit_locked(std::size_t s, Chunk chunk) const {
  // Submit under pending_mu_ (callers hold it): every shard-queue
  // submission happens with the mutex held, so submissions occur in
  // append order and a concurrent flush can never overtake a full-chunk
  // submit for the same subscriber. Workers never take pending_mu_, so a
  // backpressure block here still makes progress.
  pool_->submit(static_cast<unsigned>(s), std::move(chunk));
  ++submitted_[s];
}

void ShardedDetector::flush_shard_locked(std::size_t s) const {
  if (pending_[s].empty()) return;
  // Tag with the version current *now*: reload_rules flushes every
  // pending buffer before swapping, so anything still pending was
  // appended (and interned) under the current version.
  Chunk chunk{version_.load(),
              std::move(pending_[s]), /*publish=*/false};
  pending_[s] = {};
  submit_locked(s, std::move(chunk));
}

void ShardedDetector::flush_pending() const {
  std::lock_guard lock{pending_mu_};
  for (std::size_t s = 0; s < pending_.size(); ++s) flush_shard_locked(s);
}

void ShardedDetector::observe(const Observation& obs) {
  const auto ver = current_version();
  std::uint64_t hits = 0;
  const InternedObs interned = intern_obs(*ver->index, obs, hits);
  bump_sig_counters(1, hits);
  const auto s = shard_of(obs.subscriber);
  if (interned.sig == kNoSig) {
    // Boundary miss filter: a miss only ever bumps the flow counter, so
    // fold it into the shard's miss tally instead of waking its worker.
    count_misses(s, 1);
    return;
  }
  std::lock_guard lock{pending_mu_};
  pending_[s].push_back(interned);
  if (pending_[s].size() >= kCoalesceItems) {
    Chunk full{version_.load(),
               std::move(pending_[s]), /*publish=*/false};
    pending_[s] = {};
    pending_[s].reserve(kCoalesceItems);
    submit_locked(s, std::move(full));
  }
}

void ShardedDetector::enqueue_batch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  const auto ver = current_version();
  std::uint64_t hits = 0;
  std::vector<std::uint64_t> misses(n, 0);
  // Partition preserving per-subscriber order, filtering misses at the
  // boundary (they carry no evidence — only a flow count) and coalescing
  // the matching minority into the per-shard pending chunks. Queue
  // traffic is then proportional to kCoalesceItems flushes, not to
  // producer chunk boundaries, and on wild traffic — where roughly half
  // the flows miss the hitlist — the shard queues carry only matches.
  {
    std::lock_guard lock{pending_mu_};
    for (const auto& obs : batch) {
      const InternedObs interned = intern_obs(*ver->index, obs, hits);
      const auto s = shard_of(obs.subscriber);
      if (interned.sig == kNoSig) {
        ++misses[s];
        continue;
      }
      pending_[s].push_back(interned);
      if (pending_[s].size() >= kCoalesceItems) {
        Chunk full{version_.load(),
                   std::move(pending_[s]), /*publish=*/false};
        pending_[s] = {};
        pending_[s].reserve(kCoalesceItems);
        submit_locked(s, std::move(full));
      }
    }
  }
  bump_sig_counters(batch.size(), hits);
  for (std::size_t s = 0; s < n; ++s) count_misses(s, misses[s]);
}

void ShardedDetector::enqueue_interned(std::span<const InternedObs> batch) {
  if (batch.empty()) return;
  const std::size_t n = shards_.size();
  std::uint64_t hits = 0;
  std::vector<std::uint64_t> misses(n, 0);
  {
    std::lock_guard lock{pending_mu_};
    for (const auto& o : batch) {
      const auto s = shard_of(o.subscriber);
      if (o.sig == kNoSig) {
        ++misses[s];
        continue;
      }
      hits += 1;
      pending_[s].push_back(o);
      if (pending_[s].size() >= kCoalesceItems) {
        Chunk full{version_.load(),
                   std::move(pending_[s]), /*publish=*/false};
        pending_[s] = {};
        pending_[s].reserve(kCoalesceItems);
        submit_locked(s, std::move(full));
      }
    }
  }
  bump_sig_counters(batch.size(), hits);
  for (std::size_t s = 0; s < n; ++s) count_misses(s, misses[s]);
}

void ShardedDetector::process_batch(std::span<const Observation> batch) {
  enqueue_batch(batch);
  drain();
}

void ShardedDetector::drain() const {
  flush_pending();
  pool_->drain();
}

std::shared_ptr<const ShardView> ShardedDetector::fresh_view(
    unsigned shard) const {
  std::uint64_t target = 0;
  {
    std::lock_guard lock{pending_mu_};
    flush_shard_locked(shard);
    submit_locked(shard,
                  Chunk{version_.load(),
                        {},
                        /*publish=*/true});
    target = submitted_[shard];
  }
  // The token is chunk number `target` in this shard's FIFO; the wave
  // containing it publishes at epoch >= target, covering everything
  // enqueued before this call. No other shard is touched.
  hub_.wait_epoch(shard, target);
  return hub_.view(shard);
}

std::vector<std::shared_ptr<const ShardView>> ShardedDetector::fresh_views()
    const {
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> targets(n, 0);
  {
    std::lock_guard lock{pending_mu_};
    for (std::size_t s = 0; s < n; ++s) {
      flush_shard_locked(s);
      submit_locked(s, Chunk{version_.load(),
                             {},
                             /*publish=*/true});
      targets[s] = submitted_[s];
    }
  }
  // All tokens are in flight before any wait: shards refresh in parallel.
  std::vector<std::shared_ptr<const ShardView>> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    hub_.wait_epoch(static_cast<unsigned>(s), targets[s]);
    out.push_back(hub_.view(static_cast<unsigned>(s)));
  }
  return out;
}

std::uint64_t ShardedDetector::reload_rules(
    std::shared_ptr<const RuleSet> rules, const DetectorConfig& config) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock{pending_mu_};
    id = next_version_id_++;
  }
  // Compile off the hot path: the new SignatureIndex build and the
  // intern-table deltas (thread-safe, append-only, stable handles) run
  // without pending_mu_, so producers never stall on a reload.
  const RuleSet& r = *rules;
  auto v = compile_rules(r.hitlist, r, config, id, rules,
                         /*build_index=*/true, &intern_);
  {
    std::lock_guard lock{pending_mu_};
    // Flush everything appended under the pre-reload version first (the
    // flush tags it with the old version), then swap: in-flight waves
    // finish on the old version, everything after applies on the new one.
    for (std::size_t s = 0; s < pending_.size(); ++s) flush_shard_locked(s);
    const auto cur = version_.load();
    if (v->id > cur->id) {
      version_.store(v);
    }
    // Cutover tokens: wake every shard so it adopts and republishes even
    // with no traffic — the next snapshot reports the new version.
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      submit_locked(s, Chunk{version_.load(),
                             {},
                             /*publish=*/true});
    }
  }
  if (reloads_) reloads_->add(1);
  if (version_gauge_) {
    version_gauge_->set(static_cast<std::int64_t>(current_version()->id));
  }
  return v->id;
}

bool ShardedDetector::detected(SubscriberKey subscriber,
                               ServiceId service) const {
  return fresh_view(owner_shard(subscriber))->detected(subscriber, service);
}

std::optional<util::HourBin> ShardedDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  return fresh_view(owner_shard(subscriber))
      ->detection_hour(subscriber, service);
}

Verdict ShardedDetector::verdict(SubscriberKey subscriber,
                                 ServiceId service) const {
  return fresh_view(owner_shard(subscriber))->verdict(subscriber, service);
}

void ShardedDetector::set_observed_loss(double fraction) noexcept {
  drain();
  for (const auto& shard : shards_) shard->set_observed_loss(fraction);
}

void ShardedDetector::restore_evidence(SubscriberKey subscriber,
                                       ServiceId service,
                                       const Evidence& evidence) {
  drain();
  shards_[shard_of(subscriber)]->restore_evidence(subscriber, service,
                                                  evidence);
}

void ShardedDetector::restore_stats(const Detector::Stats& stats) {
  drain();
  shards_[0]->restore_stats(stats);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->restore_stats({});
  }
  // The restored totals already include any boundary-filtered misses.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    missed_[s].v.store(0, std::memory_order_relaxed);
  }
  // Republish so wait-free live views reflect the restored state too
  // (the fresh-view read APIs would refresh on their own).
  static_cast<void>(fresh_views());
}

void ShardedDetector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  // Fresh views preserve the live tables' slot order, so iteration order
  // matches a drained pass over the shards exactly.
  for (const auto& view : fresh_views()) {
    view->evidence.for_each([&](SubscriberKey subscriber, ServiceId service,
                                const Evidence& ev) {
      fn(subscriber, service, ev);
    });
  }
}

void ShardedDetector::clear() {
  drain();
  for (const auto& shard : shards_) shard->clear();
  // Republish so stale pre-clear detections never linger in live views.
  static_cast<void>(fresh_views());
}

Detector::Stats ShardedDetector::stats() const {
  Detector::Stats total;
  for (const auto& view : fresh_views()) {
    total.flows += view->stats.flows;  // includes boundary-filtered misses
    total.matched += view->stats.matched;
  }
  return total;
}

telemetry::StageStats ShardedDetector::shard_queue_stats(
    unsigned shard) const {
  return pool_->stats(shard);
}

}  // namespace haystack::core
