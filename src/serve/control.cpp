#include "serve/control.hpp"

#include <chrono>

namespace haystack::serve {

namespace {
[[nodiscard]] std::int64_t elapsed_ns(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

ControlPlane::ControlPlane(core::ShardedDetector& detector,
                           AlertConfig alert_config, obs::Observability* obs)
    : detector_{&detector}, alerts_{alert_config, obs} {
  if (obs != nullptr) {
    query_counter_ =
        obs->registry.counter("serve_queries_total", {{"kind", "live"}});
    fresh_query_counter_ =
        obs->registry.counter("serve_queries_total", {{"kind", "fresh"}});
    reload_counter_ = obs->registry.counter("serve_reloads_total");
    query_ns_ = obs->registry.histogram("serve_query_ns");
  }
  detector_->set_publish_hook(
      [this](const core::ShardView* prev, const core::ShardView& now) {
        alerts_.on_publish(prev, now);
      });
}

DetectionSnapshot ControlPlane::snapshot() const {
  const auto start = std::chrono::steady_clock::now();
  DetectionSnapshot snap{detector_->live_views()};
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (query_counter_) query_counter_->add(1);
  if (query_ns_) query_ns_->record(elapsed_ns(start));
  return snap;
}

DetectionSnapshot ControlPlane::fresh_snapshot() const {
  const auto start = std::chrono::steady_clock::now();
  DetectionSnapshot snap{detector_->fresh_views()};
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (fresh_query_counter_) fresh_query_counter_->add(1);
  if (query_ns_) query_ns_->record(elapsed_ns(start));
  return snap;
}

std::uint64_t ControlPlane::reload(std::shared_ptr<const core::RuleSet> rules,
                                   const core::DetectorConfig& config) {
  const std::uint64_t id = detector_->reload_rules(std::move(rules), config);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  if (reload_counter_) reload_counter_->add(1);
  return id;
}

}  // namespace haystack::serve
