// Tests for the wild population model: ownership statistics, determinism,
// addressing, and identifier churn (the Fig. 13 mechanics).
#include <gtest/gtest.h>

#include <set>

#include "net/prefix.hpp"
#include "simnet/population.hpp"

namespace haystack::simnet {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    population_ = new Population(*catalog_, {.lines = 50'000});
  }
  static void TearDownTestSuite() {
    delete population_;
    delete catalog_;
  }
  static Catalog* catalog_;
  static Population* population_;
};

Catalog* PopulationTest::catalog_ = nullptr;
Population* PopulationTest::population_ = nullptr;

TEST_F(PopulationTest, PenetrationNearConfiguredRates) {
  // ~20% of lines own at least one device in the paper; with the virtual
  // wild-extra devices our ownership lands around 30%.
  EXPECT_GT(population_->device_penetration(), 0.20);
  EXPECT_LT(population_->device_penetration(), 0.45);
}

TEST_F(PopulationTest, PerProductOwnershipMatchesPenetration) {
  const Product* echo = catalog_->product_by_name("Echo Dot");
  ASSERT_NE(echo, nullptr);
  std::size_t owners = 0;
  for (LineId line = 0; line < population_->line_count(); ++line) {
    for (const auto& dev : population_->devices_of(line)) {
      if (dev.product && *dev.product == echo->id) ++owners;
    }
  }
  const double rate =
      static_cast<double>(owners) / population_->line_count();
  EXPECT_NEAR(rate, echo->penetration, echo->penetration * 0.15);
}

TEST_F(PopulationTest, VirtualWildExtraDevicesExist) {
  std::size_t virtual_devices = 0;
  population_->for_each_active_line(
      [&](LineId, std::span<const OwnedDevice> devices) {
        for (const auto& dev : devices) {
          if (!dev.product) ++virtual_devices;
        }
      });
  // Alexa-extra alone is 7.7% of lines.
  EXPECT_GT(virtual_devices, population_->line_count() / 20);
}

TEST_F(PopulationTest, DevicesOfIsDeterministic) {
  Population other{*catalog_, {.lines = 50'000}};
  for (LineId line = 0; line < 1000; ++line) {
    const auto a = population_->devices_of(line);
    const auto b = other.devices_of(line);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].unit, b[i].unit);
      EXPECT_EQ(a[i].product, b[i].product);
    }
  }
}

TEST_F(PopulationTest, AddressesStayInIspSpace) {
  const auto isp_space = *net::Prefix::parse("100.64.0.0/10");
  for (LineId line = 0; line < 2000; line += 37) {
    for (util::DayBin day = 0; day < util::kStudyDays; day += 3) {
      EXPECT_TRUE(isp_space.contains(population_->address_of(line, day)));
    }
  }
}

TEST_F(PopulationTest, RotationChangesAddressWithinRegionalPool) {
  // When the epoch changes, the address changes but stays within the
  // line's four-/24 regional pool.
  std::size_t rotated = 0;
  for (LineId line = 0; line < 5000; ++line) {
    const auto first = population_->address_of(line, 0);
    const auto last =
        population_->address_of(line, util::kStudyDays - 1);
    if (population_->epoch_of(line, util::kStudyDays - 1) > 0) {
      ++rotated;
      // Same 1024-address pool: same /22-aligned region.
      EXPECT_EQ(first.v4_value() / 1024, last.v4_value() / 1024);
    } else {
      EXPECT_EQ(first, last);
    }
  }
  // 3%/day over 13 transitions: ~33% of lines rotate at least once.
  EXPECT_NEAR(static_cast<double>(rotated) / 5000.0, 0.33, 0.05);
}

TEST_F(PopulationTest, EpochIsMonotone) {
  for (LineId line = 0; line < 200; ++line) {
    unsigned prev = 0;
    for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
      const unsigned e = population_->epoch_of(line, day);
      EXPECT_GE(e, prev);
      EXPECT_LE(e - prev, 1u);
      prev = e;
    }
  }
}

TEST_F(PopulationTest, CumulativeAddressesGrowFasterThanSlash24s) {
  // The Fig. 13 effect: cumulative unique addresses keep growing through
  // identifier rotation while /24 aggregates saturate.
  std::set<net::IpAddress> addresses;
  std::set<net::Prefix> slash24s;
  std::vector<std::size_t> addr_curve;
  std::vector<std::size_t> s24_curve;
  for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
    population_->for_each_active_line(
        [&](const LineId line, std::span<const OwnedDevice>) {
          const auto addr = population_->address_of(line, day);
          addresses.insert(addr);
          slash24s.insert(net::aggregate_of(addr));
        });
    addr_curve.push_back(addresses.size());
    s24_curve.push_back(slash24s.size());
  }
  const double addr_growth =
      static_cast<double>(addr_curve.back()) / addr_curve.front();
  const double s24_growth =
      static_cast<double>(s24_curve.back()) / s24_curve.front();
  EXPECT_GT(addr_growth, 1.15);
  EXPECT_LT(s24_growth, addr_growth);
  EXPECT_LT(s24_growth, 1.05);  // /24 view saturates almost immediately
}

}  // namespace
}  // namespace haystack::simnet
