// Unit tests for the util substrate: RNG reproducibility and distribution
// sanity, hashing stability, the simulation clock, statistics, and table
// formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace haystack::util {
namespace {

TEST(Pcg32Test, Deterministic) {
  Pcg32 a{42, 1};
  Pcg32 b{42, 1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32Test, StreamsDiffer) {
  Pcg32 a{42, 1};
  Pcg32 b{42, 2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, BoundedStaysInBounds) {
  Pcg32 rng{7, 7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32Test, UniformInUnitInterval) {
  Pcg32 rng{9, 3};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Pcg32Test, PoissonMeanMatches) {
  Pcg32 rng{11, 5};
  for (const double mean : {0.5, 3.0, 25.0, 100.0, 1000.0}) {
    double sum = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    const double observed = sum / kN;
    EXPECT_NEAR(observed, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Pcg32Test, GeometricAndExponentialMeans) {
  Pcg32 rng{13, 5};
  double geo_sum = 0.0;
  double exp_sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    geo_sum += static_cast<double>(rng.geometric(0.25));
    exp_sum += rng.exponential(4.0);
  }
  EXPECT_NEAR(geo_sum / kN, 3.0, 0.15);  // (1-p)/p = 3
  EXPECT_NEAR(exp_sum / kN, 4.0, 0.2);
}

TEST(Pcg32Test, LognormalMedian) {
  Pcg32 rng{17, 5};
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], std::exp(1.0), 0.15);
}

TEST(DeriveRngTest, IndependentPerEntityAndBin) {
  Pcg32 a = derive_rng(1, 2, 3);
  Pcg32 b = derive_rng(1, 2, 3);
  EXPECT_EQ(a(), b());
  Pcg32 c = derive_rng(1, 2, 4);
  Pcg32 d = derive_rng(1, 3, 3);
  const auto va = derive_rng(1, 2, 3)();
  EXPECT_NE(va, c());
  EXPECT_NE(va, d());
}

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a 64 reference: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("haystack"), fnv1a("haystack"));
}

TEST(HashTest, CombineNotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(SimClockTest, WindowsMatchPaperSchedule) {
  // Nov 15 00:00 is hour 0.
  EXPECT_TRUE(in_active_window(0));
  EXPECT_TRUE(in_active_window(day_start(3) + 23));   // Nov 18 23:00
  EXPECT_FALSE(in_active_window(day_start(4)));       // Nov 19
  EXPECT_TRUE(in_idle_window(day_start(8)));          // Nov 23
  EXPECT_TRUE(in_idle_window(day_start(10) + 23));    // Nov 25 23:00
  EXPECT_FALSE(in_idle_window(day_start(11)));        // Nov 26
}

TEST(SimClockTest, Labels) {
  EXPECT_EQ(day_label(0), "Nov-15");
  EXPECT_EQ(day_label(13), "Nov-28");
  EXPECT_EQ(hour_label(25), "Nov-16 01:00");
}

TEST(SimClockTest, DiurnalWeightNormalized) {
  double sum = 0.0;
  for (unsigned h = 0; h < 24; ++h) sum += diurnal_weight(h);
  EXPECT_NEAR(sum / 24.0, 1.0, 1e-9);
  // Evening peak above overnight trough.
  EXPECT_GT(diurnal_weight(19), 3.0 * diurnal_weight(3));
}

TEST(EcdfTest, FractionsAndQuantiles) {
  Ecdf ecdf;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) ecdf.add(v);
  ecdf.freeze();
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 4.0);
}

TEST(RunningStatsTest, MomentsAndExtremes) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(TopFractionTest, SelectsHeaviest) {
  const std::vector<std::uint64_t> weights{10, 500, 20, 300, 5};
  const auto top20 = top_fraction_indices(weights, 0.2);
  ASSERT_EQ(top20.size(), 1u);
  EXPECT_EQ(top20[0], 1u);
  const auto top40 = top_fraction_indices(weights, 0.4);
  ASSERT_EQ(top40.size(), 2u);
  EXPECT_EQ(top40[0], 1u);
  EXPECT_EQ(top40[1], 3u);
  EXPECT_TRUE(top_fraction_indices({}, 0.5).empty());
}

TEST(TableTest, FormatsAlignedAndCsv) {
  TextTable t;
  t.header({"a", "bee"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a    bee"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bee\n1,2\n333,4\n");
}

TEST(TableTest, CsvQuoting) {
  TextTable t;
  t.row({"x,y", "he said \"hi\""});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(FormatTest, Numbers) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_percent(0.163), "16.3%");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace haystack::util
