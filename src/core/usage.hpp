// Active-vs-idle usage classification (paper Sec. 7.1).
//
// Two signals distinguish an actively used device from an idle one in
// sampled data: (i) some domains only appear during active use, and
// (ii) the sampled packet volume spikes. The paper uses the second for
// Alexa-enabled devices — more than `packet_threshold` sampled packets per
// hour toward a service marks the subscriber as actively using it in that
// hour (threshold 10, Fig. 17/18).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/service.hpp"
#include "util/hash.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

/// Usage-classifier configuration.
struct UsageConfig {
  /// Sampled packets/hour toward one service above which the device is
  /// considered in active use (paper: 10).
  std::uint64_t packet_threshold = 10;
};

/// Per-hour accumulation of sampled packets per (subscriber, service),
/// queried at bin close.
class UsageClassifier {
 public:
  explicit UsageClassifier(const UsageConfig& config) : config_{config} {}

  /// Accounts `packets` sampled toward `service` for `subscriber` in the
  /// current hour. Callers must finish an hour (end_hour) before starting
  /// the next.
  void observe(std::uint64_t subscriber, ServiceId service,
               std::uint64_t packets);

  /// Closes the current hour: returns the set of (subscriber, service)
  /// pairs classified active, and resets the accumulator.
  struct ActiveUse {
    std::uint64_t subscriber;
    ServiceId service;
    std::uint64_t packets;
  };
  [[nodiscard]] std::vector<ActiveUse> end_hour();

  [[nodiscard]] const UsageConfig& config() const noexcept { return config_; }

 private:
  struct Key {
    std::uint64_t subscriber;
    ServiceId service;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          util::hash_combine(k.subscriber, k.service));
    }
  };

  UsageConfig config_;
  std::unordered_map<Key, std::uint64_t, KeyHash> hour_packets_;
};

}  // namespace haystack::core
