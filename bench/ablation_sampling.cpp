// Ablation: detection speed vs packet-sampling rate.
//
// Sec. 7.4: "The subscriber or device detection speed varies depending ...
// also on the traffic capture sampling rates. The lower this rate, the
// more time it may take to detect a specific IoT device." This bench sweeps
// the sampling interval from 1:100 to 1:100000 over the active ground-truth
// window and reports detection coverage at 1/24/96 hours (D=0.4).
#include <iostream>
#include <map>

#include "common.hpp"
#include "core/detector.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;

  util::print_banner(std::cout,
                     "Ablation: detection coverage vs sampling interval "
                     "(active window, D=0.4)");
  util::TextTable table;
  table.header({"Sampling", "within 1h", "within 24h", "within 96h",
                "never"});

  for (const std::uint32_t interval :
       {100u, 300u, 1000u, 3000u, 10000u, 30000u, 100000u}) {
    telemetry::IspVantage vantage{
        {.sampling = interval, .wire_roundtrip = false}};
    core::Detector det{world.rules().hitlist, world.rules(),
                       {.threshold = 0.4}};
    std::map<core::ServiceId, util::HourBin> first_traffic;
    for (util::HourBin h = 0; h < util::day_start(4); ++h) {
      const auto home = world.gt().hour_flows(h);
      for (const auto& f : home) {
        if (f.unit && !first_traffic.contains(*f.unit)) {
          first_traffic[*f.unit] = h;
        }
      }
      for (const auto& f : vantage.observe(home, h)) {
        det.observe(1, f.flow.key.dst, f.flow.key.dst_port,
                    f.flow.packets, h);
      }
    }
    unsigned total = 0, w1 = 0, w24 = 0, w96 = 0, never = 0;
    for (const auto& rule : world.rules().rules) {
      if (rule.level == core::Level::kPlatform) continue;
      ++total;
      const auto dh = det.detection_hour(1, rule.service);
      if (!dh) {
        ++never;
        continue;
      }
      const auto t0 = first_traffic.contains(rule.service)
                          ? first_traffic[rule.service]
                          : 0;
      const unsigned latency = *dh - t0;
      if (latency <= 1) ++w1;
      if (latency <= 24) ++w24;
      ++w96;
    }
    table.row({"1:" + std::to_string(interval),
               util::fmt_percent(double(w1) / total),
               util::fmt_percent(double(w24) / total),
               util::fmt_percent(double(w96) / total),
               std::to_string(never)});
  }
  table.print(std::cout);
  std::cout << "\nThe ISP's 1:1000 and the IXP's 1:10000 sit on the steep "
               "part of this curve — the paper's observation that the "
               "IXP needs daily aggregation where the ISP detects within "
               "hours.\n";
  return 0;
}
