// Section 4 reproduction: the classification statistics —
//   4.1: 524 observed domains -> 415 Primary + 19 Support + 90 Generic;
//   4.2: 434 IoT-specific -> 217 dedicated, 202 shared, 15 without DNSDB
//        records, of which the certificate-scan fallback recovers 8
//        (belonging to 5 devices);
//   4.2.3/4.3: the excluded services and the surviving rule counts.
#include <iostream>

#include "common.hpp"
#include "core/domain_classifier.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;

  util::print_banner(std::cout, "Section 4.1: domain classification");
  const core::DomainClassifier classifier{
      simnet::build_domain_knowledge(world.catalog())};
  const auto stats =
      classifier.classify_all(simnet::observed_domains(world.catalog()));
  util::TextTable t1;
  t1.header({"Class", "Count", "Paper"});
  t1.row({"Observed domains", std::to_string(stats.total), "524"});
  t1.row({"Primary", std::to_string(stats.primary), "415"});
  t1.row({"Support", std::to_string(stats.support), "19"});
  t1.row({"Generic", std::to_string(stats.generic), "90"});
  t1.print(std::cout);

  util::print_banner(std::cout,
                     "Section 4.2: dedicated vs shared infrastructure");
  const auto& cls = world.rules().stats;
  util::TextTable t2;
  t2.header({"Outcome", "Count", "Paper"});
  t2.row({"Dedicated (passive DNS, incl. 19 support)",
          std::to_string(cls.dedicated + 19), "217"});
  t2.row({"Shared", std::to_string(cls.shared), "202"});
  t2.row({"No DNSDB record", std::to_string(cls.dnsdb_missing), "15"});
  t2.row({"  recovered via cert scan", std::to_string(cls.via_cert_scan),
          "8"});
  t2.row({"  still unresolved", std::to_string(cls.unresolved), "7"});
  t2.print(std::cout);

  util::print_banner(std::cout, "Section 4.2.3: excluded services");
  util::TextTable t3;
  t3.header({"Service", "Reason", "Dedicated/Total domains"});
  for (const auto& e : world.rules().excluded) {
    t3.row({e.name,
            e.reason == core::ExclusionReason::kSharedBackend
                ? "shared backend"
                : "insufficient data",
            std::to_string(e.dedicated_domains) + "/" +
                std::to_string(e.total_domains)});
  }
  t3.print(std::cout);

  util::print_banner(std::cout, "Section 4.3: generated detection rules");
  unsigned platform = 0, manufacturer = 0, product = 0;
  for (const auto& r : world.rules().rules) {
    switch (r.level) {
      case core::Level::kPlatform: ++platform; break;
      case core::Level::kManufacturer: ++manufacturer; break;
      case core::Level::kProduct: ++product; break;
    }
  }
  util::TextTable t4;
  t4.header({"Level", "Rules", "Paper"});
  t4.row({"Platform rows (4 distinct backends)", std::to_string(platform),
          "3 unique platforms + Alexa"});
  t4.row({"Manufacturer", std::to_string(manufacturer), "20"});
  t4.row({"Product", std::to_string(product), "11"});
  t4.row({"Total detectable units", std::to_string(world.rules().rules.size()),
          "37 (Fig. 10 rows)"});
  t4.print(std::cout);

  std::cout << "\nHitlist: " << world.rules().hitlist.total_size()
            << " (IP, port, day) entries across " << util::kStudyDays
            << " days, " << world.rules().hitlist.collisions()
            << " collisions\n";
  return 0;
}
