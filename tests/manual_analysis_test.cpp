// Tests for the manual-analysis bridge and the rate model: ServiceSpec
// construction from the catalog, banner plumbing, critical-domain marking,
// and rate determinism.
#include <gtest/gtest.h>

#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/rates.hpp"

namespace haystack::simnet {
namespace {

class ManualAnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    backend_ = new Backend(*catalog_, BackendConfig{});
    specs_ = new std::vector<core::ServiceSpec>(
        build_service_specs(*backend_));
  }
  static void TearDownTestSuite() {
    delete specs_;
    delete backend_;
    delete catalog_;
  }
  static Catalog* catalog_;
  static Backend* backend_;
  static std::vector<core::ServiceSpec>* specs_;
};

Catalog* ManualAnalysisTest::catalog_ = nullptr;
Backend* ManualAnalysisTest::backend_ = nullptr;
std::vector<core::ServiceSpec>* ManualAnalysisTest::specs_ = nullptr;

TEST_F(ManualAnalysisTest, OneSpecPerUnitWithMatchingIds) {
  ASSERT_EQ(specs_->size(), catalog_->units().size());
  for (std::size_t i = 0; i < specs_->size(); ++i) {
    EXPECT_EQ((*specs_)[i].id, catalog_->units()[i].id);
    EXPECT_EQ((*specs_)[i].name, catalog_->units()[i].name);
  }
}

TEST_F(ManualAnalysisTest, HttpsDomainsCarryBanners) {
  for (const auto& spec : *specs_) {
    for (const auto& dom : spec.domains) {
      EXPECT_EQ(dom.banner.has_value(), dom.https) << dom.fqdn.str();
      if (dom.banner) {
        EXPECT_EQ(*dom.banner, backend_->banner_checksum(dom.fqdn));
      }
    }
  }
}

TEST_F(ManualAnalysisTest, CriticalIndexPointsAtPrimaryDomain) {
  for (const auto& spec : *specs_) {
    ASSERT_LT(spec.critical_index, spec.domains.size()) << spec.name;
    EXPECT_FALSE(spec.domains[spec.critical_index].support) << spec.name;
  }
  // Samsung's critical domain is samsungotn.net and is sufficient.
  const auto* samsung = catalog_->unit_by_name("Samsung IoT");
  const auto& spec = (*specs_)[samsung->id];
  EXPECT_TRUE(spec.critical_sufficient);
  EXPECT_EQ(spec.domains[spec.critical_index].fqdn.str(), "samsungotn.net");
}

TEST_F(ManualAnalysisTest, NonExclusiveDomainsMarked) {
  const auto* samsung = catalog_->unit_by_name("Samsung IoT");
  const auto& spec = (*specs_)[samsung->id];
  unsigned non_exclusive = 0;
  for (const auto& dom : spec.domains) {
    if (!dom.iot_exclusive) ++non_exclusive;
  }
  EXPECT_EQ(non_exclusive, samsung->non_exclusive_domains);
}

TEST_F(ManualAnalysisTest, HierarchyMirrorsCatalog) {
  const auto* firetv = catalog_->unit_by_name("Fire TV");
  const auto& spec = (*specs_)[firetv->id];
  ASSERT_TRUE(spec.parent.has_value());
  EXPECT_EQ(*spec.parent, *firetv->parent);
}

TEST(RateModelTest, DeterministicAndPositive) {
  Catalog catalog;
  const DomainRateModel a{catalog, 7};
  const DomainRateModel b{catalog, 7};
  const DomainRateModel other{catalog, 8};
  int diverged = 0;
  for (const auto& unit : catalog.units()) {
    for (const auto* dom : catalog.domains_of(unit.id)) {
      const double rate = a.idle_rate(unit.id, dom->index);
      EXPECT_GT(rate, 0.0);
      EXPECT_EQ(rate, b.idle_rate(unit.id, dom->index));
      if (rate != other.idle_rate(unit.id, dom->index)) ++diverged;
    }
  }
  EXPECT_GT(diverged, 100);
}

TEST(RateModelTest, LeadDomainClampKeepsUnitsAlive) {
  // The lead (index-0) domain of every unit is clamped to [0.8, 4] times
  // the unit mean, so no unit can be silenced by one unlucky draw.
  Catalog catalog;
  const DomainRateModel rates{catalog, 7};
  for (const auto& unit : catalog.units()) {
    const double rate = rates.idle_rate(unit.id, 0);
    EXPECT_GE(rate, unit.idle_pkts_per_domain_hour * 0.8 - 1e-9) << unit.name;
    EXPECT_LE(rate, unit.idle_pkts_per_domain_hour * 4.0 + 1e-9) << unit.name;
  }
}

}  // namespace
}  // namespace haystack::simnet
