#include "flow/ipfix.hpp"

#include <algorithm>
#include <array>
#include <type_traits>

namespace haystack::flow::ipfix {

namespace {

struct FieldSpec {
  Ie ie;
  std::uint16_t length;
};

constexpr std::array<FieldSpec, 11> kV4Fields = {{
    {Ie::kSourceIpv4Address, 4},
    {Ie::kDestinationIpv4Address, 4},
    {Ie::kSourceTransportPort, 2},
    {Ie::kDestinationTransportPort, 2},
    {Ie::kProtocolIdentifier, 1},
    {Ie::kTcpControlBits, 1},
    {Ie::kPacketDeltaCount, 8},
    {Ie::kOctetDeltaCount, 8},
    {Ie::kFlowStartMilliseconds, 8},
    {Ie::kFlowEndMilliseconds, 8},
    {Ie::kSamplingInterval, 4},
}};

constexpr std::array<FieldSpec, 11> kV6Fields = {{
    {Ie::kSourceIpv6Address, 16},
    {Ie::kDestinationIpv6Address, 16},
    {Ie::kSourceTransportPort, 2},
    {Ie::kDestinationTransportPort, 2},
    {Ie::kProtocolIdentifier, 1},
    {Ie::kTcpControlBits, 1},
    {Ie::kPacketDeltaCount, 8},
    {Ie::kOctetDeltaCount, 8},
    {Ie::kFlowStartMilliseconds, 8},
    {Ie::kFlowEndMilliseconds, 8},
    {Ie::kSamplingInterval, 4},
}};

void write_record(ByteWriter& w, const FlowRecord& rec) {
  const auto src = rec.key.src.bytes();
  const auto dst = rec.key.dst.bytes();
  if (rec.key.src.is_v4()) {
    w.bytes(std::span{src}.subspan(12));
    w.bytes(std::span{dst}.subspan(12));
  } else {
    w.bytes(src);
    w.bytes(dst);
  }
  w.u16(rec.key.src_port);
  w.u16(rec.key.dst_port);
  w.u8(rec.key.proto);
  w.u8(rec.tcp_flags);
  w.u64(rec.packets);
  w.u64(rec.bytes);
  w.u64(rec.start_ms);
  w.u64(rec.end_ms);
  w.u32(rec.sampling);
}

// Record sinks for the shared decode implementation (see netflow_v9.cpp).
struct RecordSink {
  std::vector<FlowRecord>* out;
};

struct BatchSink {
  FlowBatch* out;
};

}  // namespace

std::vector<std::uint8_t> encode_sampling_options(
    std::uint32_t observation_domain, std::uint32_t interval,
    std::uint32_t export_time, std::uint32_t sequence) {
  ByteWriter w;
  w.u16(10);
  const std::size_t total_off = w.size();
  w.u16(0);
  w.u32(export_time);
  w.u32(sequence);
  w.u32(observation_domain);

  // Options template set (id 3): template id, field count, scope field
  // count, then scope fields followed by option fields (RFC 7011 §3.4.2.2).
  {
    const std::size_t len_off = w.size() + 2;
    w.u16(kOptionsTemplateSetId);
    w.u16(0);
    w.u16(kSamplingOptionsTemplateId);
    w.u16(3);  // total fields: 1 scope + 2 options
    w.u16(1);  // scope field count
    w.u16(149);  // observationDomainId as scope
    w.u16(4);
    w.u16(static_cast<std::uint16_t>(Ie::kSamplingInterval));
    w.u16(4);
    w.u16(kIeSamplingAlgorithm);
    w.u16(1);
    const std::size_t unpadded = w.size() - (len_off - 2);
    w.pad((4 - unpadded % 4) % 4);
    w.patch_u16(len_off,
                static_cast<std::uint16_t>(w.size() - (len_off - 2)));
  }
  // Options data set.
  {
    const std::size_t len_off = w.size() + 2;
    w.u16(kSamplingOptionsTemplateId);
    w.u16(0);
    w.u32(observation_domain);  // scope value
    w.u32(interval);
    w.u8(2);  // random sampling
    const std::size_t unpadded = w.size() - (len_off - 2);
    w.pad((4 - unpadded % 4) % 4);
    w.patch_u16(len_off,
                static_cast<std::uint16_t>(w.size() - (len_off - 2)));
  }
  w.patch_u16(total_off, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

void Exporter::write_templates(ByteWriter& w) const {
  const std::size_t length_offset = w.size() + 2;
  w.u16(kTemplateSetId);
  w.u16(0);  // length placeholder
  auto emit = [&w](std::uint16_t id, std::span<const FieldSpec> fields) {
    w.u16(id);
    w.u16(static_cast<std::uint16_t>(fields.size()));
    for (const auto& f : fields) {
      w.u16(static_cast<std::uint16_t>(f.ie));
      w.u16(f.length);
    }
  };
  emit(kTemplateV4, kV4Fields);
  emit(kTemplateV6, kV6Fields);
  w.patch_u16(length_offset,
              static_cast<std::uint16_t>(w.size() - (length_offset - 2)));
}

std::vector<std::vector<std::uint8_t>> Exporter::export_flows(
    std::span<const FlowRecord> records, std::uint32_t export_time) {
  std::vector<std::vector<std::uint8_t>> messages;
  std::size_t index = 0;
  while (index < records.size() || messages.empty()) {
    ByteWriter w;
    w.u16(10);  // version
    const std::size_t length_offset = w.size();
    w.u16(0);  // total length placeholder
    w.u32(export_time);
    w.u32(records_sent_);  // sequence: cumulative data records (RFC 7011)
    w.u32(config_.observation_domain);

    const bool with_templates =
        messages_sent_ % std::max<std::uint32_t>(
                             1, config_.template_refresh_messages) ==
        0;
    if (with_templates) write_templates(w);

    const std::size_t batch_end =
        std::min(records.size(), index + config_.max_records_per_message);
    std::uint32_t emitted = 0;
    for (const bool v4 : {true, false}) {
      std::size_t n_here = 0;
      for (std::size_t i = index; i < batch_end; ++i) {
        if (records[i].key.src.is_v4() == v4) ++n_here;
      }
      if (n_here == 0) continue;
      const std::size_t set_length_offset = w.size() + 2;
      w.u16(v4 ? kTemplateV4 : kTemplateV6);
      w.u16(0);
      for (std::size_t i = index; i < batch_end; ++i) {
        if (records[i].key.src.is_v4() == v4) {
          write_record(w, records[i]);
          ++emitted;
        }
      }
      const std::size_t unpadded = w.size() - (set_length_offset - 2);
      const std::size_t padding = (4 - unpadded % 4) % 4;
      w.pad(padding);
      w.patch_u16(set_length_offset,
                  static_cast<std::uint16_t>(unpadded + padding));
    }

    w.patch_u16(length_offset, static_cast<std::uint16_t>(w.size()));
    index = batch_end;
    records_sent_ += emitted;
    ++messages_sent_;
    messages.push_back(w.take());
    if (index >= records.size()) break;
  }
  return messages;
}

bool Collector::ingest(std::span<const std::uint8_t> message,
                       std::vector<FlowRecord>& out) {
  RecordSink sink{&out};
  return ingest_impl(message, sink);
}

bool Collector::ingest_batch(std::span<const std::uint8_t> message,
                             FlowBatch& out) {
  BatchSink sink{&out};
  return ingest_impl(message, sink);
}

template <typename Sink>
bool Collector::ingest_impl(std::span<const std::uint8_t> message,
                            Sink& sink) {
  ByteReader whole{message};
  const std::uint16_t version = whole.u16();
  const std::uint16_t total_length = whole.u16();
  whole.u32();  // export time
  const std::uint32_t sequence = whole.u32();
  const std::uint32_t domain = whole.u32();
  if (!whole.ok() || version != 10 || total_length != message.size() ||
      total_length < 16) {
    ++stats_.malformed_messages;
    return false;
  }

  if (config_.dedup_window > 0 && deduper_.seen_before(message)) {
    ++stats_.duplicate_messages;
    return true;
  }

  // Sequence classification per observation domain. The IPFIX sequence
  // counts data records, so a forward jump after a message whose data set
  // could not be decoded (template still missing) is a *resync* over the
  // parked records, not loss.
  PerDomain& state = domains_[domain];
  auto outcome = state.tracker.classify(sequence);
  if (outcome.event == SequenceEvent::kRestart) {
    handle_restart(domain, state);
    outcome = state.tracker.classify(sequence);  // now kFirst
  }
  if (outcome.event == SequenceEvent::kGap) {
    if (state.sequence_indeterminate) {
      outcome = {SequenceEvent::kInOrder, 0};  // resync past parked records
    } else {
      ++stats_.sequence_gaps;
      stats_.estimated_lost_records += outcome.lost_units;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kSequenceGap, domain,
                                 outcome.lost_units);
      }
    }
  } else if (outcome.event == SequenceEvent::kReplay) {
    ++stats_.reordered_messages;
    if (config_.recorder != nullptr) {
      config_.recorder->record(obs::EventKind::kSequenceReplay, domain, 1);
    }
  }

  const std::uint64_t records_before = stats_.records;
  const std::uint64_t recovered_before = stats_.recovered_records;
  const std::uint64_t buffered_before = stats_.buffered_sets;
  while (whole.ok() && whole.remaining() >= 4) {
    const std::uint16_t set_id = whole.u16();
    const std::uint16_t set_length = whole.u16();
    if (set_length < 4 || set_length - 4U > whole.remaining()) {
      ++stats_.malformed_messages;
      return false;
    }
    ByteReader body = whole.slice(set_length - 4U);
    if (set_id == kTemplateSetId) {
      if (!decode_template_set(body, domain, sink)) {
        ++stats_.malformed_messages;
        return false;
      }
    } else if (set_id == kOptionsTemplateSetId) {
      if (!decode_options_template_set(body, domain)) {
        ++stats_.malformed_messages;
        return false;
      }
    } else if (set_id >= 256) {
      if (options_templates_.contains({domain, set_id})) {
        if (!decode_options_data(body, set_id, domain)) {
          ++stats_.malformed_messages;
          return false;
        }
      } else {
        const auto it = templates_.find({domain, set_id});
        if (it == templates_.end()) {
          ++stats_.unknown_template_sets;
          park_set(domain, set_id, sequence, body);
        } else if (!decode_data(body, it->second, sink)) {
          ++stats_.malformed_messages;
          return false;
        }
      }
    }
  }
  if (!whole.ok()) {
    ++stats_.malformed_messages;
    return false;
  }
  // A malformed message returns above without committing: its records then
  // surface as a sequence gap (loss) on the next message, which is exactly
  // what happened to them. Recovered records were credited separately.
  const auto units = static_cast<std::uint32_t>(
      (stats_.records - records_before) -
      (stats_.recovered_records - recovered_before));
  state.tracker.commit(sequence, units, outcome);
  state.sequence_indeterminate = stats_.buffered_sets != buffered_before;
  ++stats_.messages;
  return true;
}

void Collector::handle_restart(std::uint32_t domain, PerDomain& state) {
  ++stats_.exporter_restarts;
  ++state.restarts;
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::EventKind::kExporterRestart, domain,
                             state.restarts);
  }
  state.tracker.reset();
  state.sequence_indeterminate = false;
  templates_.erase(templates_.lower_bound({domain, 0}),
                   templates_.upper_bound({domain, 0xffffU}));
  options_templates_.erase(options_templates_.lower_bound({domain, 0}),
                           options_templates_.upper_bound({domain, 0xffffU}));
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->domain == domain) {
      ++stats_.evicted_sets;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateEvicted, domain,
                                 it->template_id);
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Collector::park_set(std::uint32_t domain, std::uint16_t template_id,
                         std::uint32_t sequence, ByteReader& body) {
  if (config_.max_pending_sets == 0) return;
  if (pending_.size() >= config_.max_pending_sets) {
    ++stats_.evicted_sets;
    if (config_.recorder != nullptr) {
      config_.recorder->record(obs::EventKind::kTemplateEvicted,
                               pending_.front().domain,
                               pending_.front().template_id);
    }
    pending_.pop_front();
  }
  PendingSet parked;
  parked.domain = domain;
  parked.template_id = template_id;
  parked.sequence = sequence;
  parked.body.resize(body.remaining());
  body.bytes(parked.body);
  pending_.push_back(std::move(parked));
  ++stats_.buffered_sets;
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::EventKind::kTemplateParked, domain,
                             template_id);
  }
}

template <typename Sink>
void Collector::recover_pending(std::uint32_t domain,
                                std::uint16_t template_id, Sink& sink) {
  const auto it_tmpl = templates_.find({domain, template_id});
  if (it_tmpl == templates_.end()) return;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->domain != domain || it->template_id != template_id) {
      ++it;
      continue;
    }
    ByteReader body{it->body};
    const std::uint64_t before = stats_.records;
    if (decode_data(body, it_tmpl->second, sink)) {
      const std::uint64_t recovered = stats_.records - before;
      ++stats_.recovered_sets;
      stats_.recovered_records += recovered;
      // These records were skipped by the sequence resync when they were
      // parked; they are received after all, and they occupy the record-
      // sequence space [parked.sequence, parked.sequence + recovered), so
      // jump the expectation past it or the next message would re-report
      // that space as a phantom gap. (A message whose sets park under
      // *different* templates still undercounts the jump by the smaller
      // set — the loss estimate stays conservative there.)
      auto& tracker = domains_[domain].tracker;
      tracker.credit_recovered(recovered);
      tracker.advance_past(it->sequence +
                           static_cast<std::uint32_t>(recovered));
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateRecovered, domain,
                                 recovered);
      }
    } else {
      ++stats_.evicted_sets;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateEvicted, domain,
                                 template_id);
      }
    }
    it = pending_.erase(it);
  }
}

SourceHealth Collector::health(std::uint32_t observation_domain) const {
  const auto it = domains_.find(observation_domain);
  if (it == domains_.end()) return {};
  return {it->second.tracker.received(), it->second.tracker.lost(),
          it->second.restarts};
}

double Collector::estimated_loss() const {
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  for (const auto& [id, state] : domains_) {
    received += state.tracker.received();
    lost += state.tracker.lost();
  }
  const std::uint64_t total = received + lost;
  return total == 0 ? 0.0
                    : static_cast<double>(lost) / static_cast<double>(total);
}

std::size_t Collector::pending_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& p : pending_) bytes += p.body.size();
  return bytes;
}

template <typename Sink>
bool Collector::decode_template_set(ByteReader& r, std::uint32_t domain,
                                    Sink& sink) {
  while (r.ok() && r.remaining() >= 4) {
    const std::uint16_t template_id = r.u16();
    const std::uint16_t field_count = r.u16();
    if (template_id < 256) return false;
    // Each field spec is at least 4 bytes (8 with an enterprise number); a
    // count the set body cannot hold is a corrupted length field, rejected
    // before reserve() turns it into an allocation.
    if (std::size_t{field_count} * 4 > r.remaining()) return false;
    TemplateEntry entry;
    entry.fields.reserve(field_count);
    for (std::uint16_t i = 0; i < field_count; ++i) {
      std::uint16_t id = r.u16();
      const std::uint16_t length = r.u16();
      TemplateField field{};
      field.enterprise = (id & 0x8000U) != 0;
      field.id = id & 0x7fffU;
      field.length = length;
      if (field.enterprise) r.u32();  // enterprise number, skipped
      if (!r.ok()) return false;
      entry.fields.push_back(field);
    }
    // Compile the decode plan once per (re)announcement; variable-length
    // templates compile to a non-fast plan and use the reference walk.
    std::vector<plan::WireField> wire;
    wire.reserve(entry.fields.size());
    for (const auto& f : entry.fields) {
      wire.push_back({f.id, f.length, f.enterprise});
    }
    entry.plan = plan::compile_ipfix(wire);
    templates_[{domain, template_id}] = std::move(entry);
    ++stats_.templates_learned;
    recover_pending(domain, template_id, sink);
  }
  return r.ok();
}

template <typename Sink>
bool Collector::decode_data(ByteReader& r, const TemplateEntry& entry,
                            Sink& sink) {
  if constexpr (std::is_same_v<Sink, BatchSink>) {
    if (entry.plan.fast) {
      if (entry.plan.record_len == 0) return false;  // as the reference
      stats_.records += plan::execute(entry.plan, r.rest(), *sink.out);
      return true;
    }
    // Variable-length template: reference walk through a scratch vector,
    // preserving partial-decode behavior on malformed var-length framing.
    std::vector<FlowRecord> scratch;
    const bool ok = decode_data_set(r, entry.fields, scratch);
    for (const auto& rec : scratch) sink.out->push(rec);
    return ok;
  } else {
    return decode_data_set(r, entry.fields, *sink.out);
  }
}

bool Collector::decode_options_template_set(ByteReader& r,
                                            std::uint32_t domain) {
  while (r.ok() && r.remaining() >= 6) {
    const std::uint16_t template_id = r.u16();
    const std::uint16_t field_count = r.u16();
    const std::uint16_t scope_count = r.u16();
    if (template_id < 256 || scope_count > field_count) return false;
    if (std::size_t{field_count} * 4 > r.remaining()) return false;
    OptionsTemplate tmpl;
    for (std::uint16_t i = 0; i < field_count; ++i) {
      std::uint16_t id = r.u16();
      const std::uint16_t length = r.u16();
      TemplateField field{};
      field.enterprise = (id & 0x8000U) != 0;
      field.id = id & 0x7fffU;
      field.length = length;
      if (field.enterprise) r.u32();
      if (!r.ok()) return false;
      if (i < scope_count) {
        tmpl.scope_bytes += length;
      } else {
        tmpl.fields.push_back(field);
      }
    }
    options_templates_[{domain, template_id}] = std::move(tmpl);
    ++stats_.options_templates_learned;
    // Padding at set end: stop when too little remains for a header.
    if (r.remaining() < 6) break;
  }
  return r.ok();
}

bool Collector::decode_options_data(ByteReader& r, std::uint16_t set_id,
                                    std::uint32_t domain) {
  const auto it = options_templates_.find({domain, set_id});
  if (it == options_templates_.end()) return true;
  const OptionsTemplate& tmpl = it->second;
  std::size_t record_bytes = tmpl.scope_bytes;
  for (const auto& f : tmpl.fields) record_bytes += f.length;
  if (record_bytes == 0) return false;

  while (r.ok() && r.remaining() >= record_bytes) {
    r.skip(tmpl.scope_bytes);
    std::optional<std::uint32_t> interval;
    for (const auto& f : tmpl.fields) {
      if (!f.enterprise &&
          f.id == static_cast<std::uint16_t>(Ie::kSamplingInterval) &&
          f.length == 4) {
        interval = r.u32();
      } else {
        r.skip(f.length);
      }
    }
    if (!r.ok()) return false;
    if (interval) {
      // A zero announced interval would divide-by-zero every upscaling
      // consumer; clamp to 1 (no sampling) and count the anomaly.
      if (*interval == 0) {
        *interval = 1;
        ++stats_.zero_sampling_announcements;
      }
      announced_sampling_[domain] = *interval;
    }
  }
  return r.ok();
}

std::optional<std::uint32_t> Collector::announced_sampling(
    std::uint32_t observation_domain) const {
  const auto it = announced_sampling_.find(observation_domain);
  if (it == announced_sampling_.end()) return std::nullopt;
  return it->second;
}

bool Collector::decode_data_set(ByteReader& r, const Template& tmpl,
                                std::vector<FlowRecord>& out) {
  // Minimum fixed size of one record; variable-length fields contribute
  // their 1-byte length prefix.
  std::size_t min_len = 0;
  for (const auto& f : tmpl) {
    min_len += f.length == 0xffffU ? 1 : f.length;
  }
  if (min_len == 0) return false;

  while (r.ok() && r.remaining() >= min_len) {
    FlowRecord rec;
    for (const auto& f : tmpl) {
      std::uint16_t length = f.length;
      if (length == 0xffffU) {
        // RFC 7011 §7: variable length; 255 escapes to a 2-byte length.
        length = r.u8();
        if (length == 255) length = r.u16();
        r.skip(length);
        continue;
      }
      if (f.enterprise) {
        r.skip(length);
        continue;
      }
      // As in the NetFlow v9 decoder: the template's declared length
      // defines record framing, so a known IE with an unsupported declared
      // length is skipped at that length rather than decoded at the
      // "expected" size (which would desync every following field).
      const auto fixed = [&](std::uint16_t want) {
        if (length == want) return true;
        r.skip(length);
        return false;
      };
      switch (static_cast<Ie>(f.id)) {
        case Ie::kSourceIpv4Address:
          if (fixed(4)) rec.key.src = net::IpAddress::v4(r.u32());
          break;
        case Ie::kDestinationIpv4Address:
          if (fixed(4)) rec.key.dst = net::IpAddress::v4(r.u32());
          break;
        case Ie::kSourceIpv6Address:
          if (fixed(16)) {
            const std::uint64_t hi = r.u64();
            rec.key.src = net::IpAddress::v6(hi, r.u64());
          }
          break;
        case Ie::kDestinationIpv6Address:
          if (fixed(16)) {
            const std::uint64_t hi = r.u64();
            rec.key.dst = net::IpAddress::v6(hi, r.u64());
          }
          break;
        case Ie::kSourceTransportPort:
          if (fixed(2)) rec.key.src_port = r.u16();
          break;
        case Ie::kDestinationTransportPort:
          if (fixed(2)) rec.key.dst_port = r.u16();
          break;
        case Ie::kProtocolIdentifier:
          if (fixed(1)) rec.key.proto = r.u8();
          break;
        case Ie::kTcpControlBits:
          if (fixed(1)) rec.tcp_flags = r.u8();
          break;
        case Ie::kPacketDeltaCount:
          if (length == 8 || length == 4) {
            rec.packets = length == 8 ? r.u64() : r.u32();
          } else {
            r.skip(length);
          }
          break;
        case Ie::kOctetDeltaCount:
          if (length == 8 || length == 4) {
            rec.bytes = length == 8 ? r.u64() : r.u32();
          } else {
            r.skip(length);
          }
          break;
        case Ie::kFlowStartMilliseconds:
          if (fixed(8)) rec.start_ms = r.u64();
          break;
        case Ie::kFlowEndMilliseconds:
          if (fixed(8)) rec.end_ms = r.u64();
          break;
        case Ie::kSamplingInterval:
          if (fixed(4)) rec.sampling = r.u32();
          break;
        default:
          r.skip(length);
          break;
      }
    }
    if (!r.ok()) return false;
    out.push_back(rec);
    ++stats_.records;
  }
  return r.ok();
}

}  // namespace haystack::flow::ipfix
