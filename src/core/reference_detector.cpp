#include "core/reference_detector.hpp"

#include <algorithm>
#include <cmath>

namespace haystack::core {

const DetectionRule* ReferenceDetector::find_rule(ServiceId service) const {
  for (const auto& rule : rules_.rules) {
    if (rule.service == service) return &rule;
  }
  return nullptr;
}

void ReferenceDetector::replay() const {
  if (!dirty_) return;
  replayed_.clear();
  for (const Observation& obs : log_) {
    const auto hit =
        hitlist_.lookup(obs.server, obs.port, util::day_of(obs.hour));
    if (!hit) continue;
    const DetectionRule* rule = find_rule(hit->service);
    if (rule == nullptr) continue;

    auto [it, inserted] =
        replayed_.try_emplace({obs.subscriber, hit->service});
    ReferenceEvidence& ev = it->second;
    if (inserted) ev.first_seen = obs.hour;
    ev.packets += obs.packets;
    if (hit->domain_index < 128) ev.seen.insert(hit->domain_index);

    if (!ev.satisfied_hour) {
      // Independent statement of the Sec. 4.3.2 requirement: max(1,
      // floor(D*N)) distinct monitored domains, or the critical domain
      // alone when the rule says that suffices.
      const auto floor_dn = static_cast<unsigned>(std::floor(
          config_.threshold * static_cast<double>(rule->monitored_domains)));
      const unsigned required = std::max(1U, floor_dn);
      const bool critical_ok =
          rule->critical_sufficient &&
          rule->critical_monitored_index.has_value() &&
          ev.seen.count(*rule->critical_monitored_index) > 0;
      if (critical_ok || ev.seen.size() >= required) {
        ev.satisfied_hour = obs.hour;
      }
    }
  }
  dirty_ = false;
}

std::optional<ReferenceEvidence> ReferenceDetector::evidence(
    SubscriberKey subscriber, ServiceId service) const {
  replay();
  const auto it = replayed_.find({subscriber, service});
  if (it == replayed_.end()) return std::nullopt;
  return it->second;
}

std::optional<util::HourBin> ReferenceDetector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  replay();
  util::HourBin latest = 0;
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule = find_rule(*current);
    if (rule == nullptr) return std::nullopt;
    const auto it = replayed_.find({subscriber, *current});
    if (it == replayed_.end() || !it->second.satisfied_hour) {
      return std::nullopt;
    }
    latest = std::max(latest, *it->second.satisfied_hour);
    current = rule->parent;
  }
  return latest;
}

std::vector<std::pair<SubscriberKey, ServiceId>>
ReferenceDetector::evidence_keys() const {
  replay();
  std::vector<std::pair<SubscriberKey, ServiceId>> keys;
  keys.reserve(replayed_.size());
  for (const auto& [key, ev] : replayed_) keys.push_back(key);
  return keys;  // std::map iteration order is already sorted
}

}  // namespace haystack::core
