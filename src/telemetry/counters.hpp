// Aggregation utilities used by the evaluation harness: unique-entity
// counters, hourly series, and the byte-weighted heavy-hitter view that
// drives the paper's Fig. 6 visibility analysis.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip_address.hpp"
#include "util/sim_clock.hpp"

namespace haystack::telemetry {

/// Set-backed unique counter.
template <typename T>
class UniqueCounter {
 public:
  /// Returns true when the value was new.
  bool add(const T& value) { return set_.insert(value).second; }

  [[nodiscard]] std::size_t count() const noexcept { return set_.size(); }
  [[nodiscard]] bool contains(const T& value) const {
    return set_.contains(value);
  }
  void clear() { set_.clear(); }

  [[nodiscard]] const std::unordered_set<T>& values() const noexcept {
    return set_;
  }

 private:
  std::unordered_set<T> set_;
};

/// Per-IP byte accounting over one time bin; answers "which fraction of the
/// top-X% of service IPs (by bytes) was visible at the sampled vantage?"
class HeavyHitterView {
 public:
  /// Accounts `bytes` to `ip` as seen at the reference (unsampled) vantage.
  void add_reference(const net::IpAddress& ip, std::uint64_t bytes);

  /// Marks `ip` as visible at the sampled vantage.
  void mark_visible(const net::IpAddress& ip);

  /// Fraction of the top-`fraction` reference IPs (by byte count) that were
  /// marked visible. Returns 0 when the reference set is empty.
  [[nodiscard]] double visible_fraction_of_top(double fraction) const;

  /// Fraction of all reference IPs marked visible.
  [[nodiscard]] double visible_fraction() const;

  [[nodiscard]] std::size_t reference_count() const noexcept {
    return bytes_.size();
  }

  void clear();

 private:
  std::unordered_map<net::IpAddress, std::uint64_t> bytes_;
  std::unordered_set<net::IpAddress> visible_;
};

/// Fixed-length per-hour series over the study window.
class HourlySeries {
 public:
  HourlySeries() : values_(util::kStudyHours, 0.0) {}

  void set(util::HourBin hour, double v) { values_.at(hour) = v; }
  void add(util::HourBin hour, double v) { values_.at(hour) += v; }
  [[nodiscard]] double at(util::HourBin hour) const {
    return values_.at(hour);
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace haystack::telemetry
