// Table 1 reproduction: the testbed inventory — devices per category, with
// vendor, instance count, and detection-unit mapping.
#include <iostream>
#include <map>

#include "common.hpp"
#include "simnet/catalog.hpp"

int main() {
  using namespace haystack;
  const simnet::Catalog catalog;

  util::print_banner(std::cout, "Table 1: IoT devices under test");

  std::map<simnet::Category, std::vector<const simnet::Product*>> by_cat;
  for (const auto& p : catalog.products()) by_cat[p.category].push_back(&p);

  util::TextTable table;
  table.header({"Category", "Device", "Vendor", "Instances", "Detection unit",
                "Level"});
  for (const auto& [category, products] : by_cat) {
    for (const auto* p : products) {
      const auto& unit = catalog.units()[*p->unit];
      const bool excluded =
          unit.backend == simnet::BackendKind::kShared ||
          unit.name == "LG TV" || unit.name == "WeMo Plug" ||
          unit.name == "Wink Hub";
      table.row({std::string{simnet::category_name(category)},
                 p->name + (p->idle_only ? " (idle)" : ""), p->vendor,
                 std::to_string(p->instances),
                 excluded ? unit.name + " [excluded]" : unit.name,
                 std::string{simnet::level_suffix(unit.level)}});
    }
  }
  table.print(std::cout);

  std::cout << "\nTotals: " << catalog.products().size() << " products, "
            << catalog.instances().size() << " instances, "
            << catalog.vendor_count() << " vendors\n";
  return 0;
}
